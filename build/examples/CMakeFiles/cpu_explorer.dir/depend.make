# Empty dependencies file for cpu_explorer.
# This may be replaced when dependencies are built.
