file(REMOVE_RECURSE
  "CMakeFiles/cpu_explorer.dir/cpu_explorer.cpp.o"
  "CMakeFiles/cpu_explorer.dir/cpu_explorer.cpp.o.d"
  "cpu_explorer"
  "cpu_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
