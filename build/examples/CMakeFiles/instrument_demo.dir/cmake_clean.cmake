file(REMOVE_RECURSE
  "CMakeFiles/instrument_demo.dir/instrument_demo.cpp.o"
  "CMakeFiles/instrument_demo.dir/instrument_demo.cpp.o.d"
  "instrument_demo"
  "instrument_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrument_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
