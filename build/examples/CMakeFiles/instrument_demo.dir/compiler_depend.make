# Empty compiler generated dependencies file for instrument_demo.
# This may be replaced when dependencies are built.
