# Empty compiler generated dependencies file for lssc.
# This may be replaced when dependencies are built.
