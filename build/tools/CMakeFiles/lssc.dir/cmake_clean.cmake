file(REMOVE_RECURSE
  "CMakeFiles/lssc.dir/lssc.cpp.o"
  "CMakeFiles/lssc.dir/lssc.cpp.o.d"
  "lssc"
  "lssc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lssc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
