file(REMOVE_RECURSE
  "CMakeFiles/interp2_test.dir/Interp2Test.cpp.o"
  "CMakeFiles/interp2_test.dir/Interp2Test.cpp.o.d"
  "interp2_test"
  "interp2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
