file(REMOVE_RECURSE
  "CMakeFiles/bsl_test.dir/BslTest.cpp.o"
  "CMakeFiles/bsl_test.dir/BslTest.cpp.o.d"
  "bsl_test"
  "bsl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
