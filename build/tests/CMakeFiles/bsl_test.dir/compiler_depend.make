# Empty compiler generated dependencies file for bsl_test.
# This may be replaced when dependencies are built.
