file(REMOVE_RECURSE
  "CMakeFiles/tool_test.dir/ToolTest.cpp.o"
  "CMakeFiles/tool_test.dir/ToolTest.cpp.o.d"
  "tool_test"
  "tool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
