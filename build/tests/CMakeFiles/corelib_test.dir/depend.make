# Empty dependencies file for corelib_test.
# This may be replaced when dependencies are built.
