file(REMOVE_RECURSE
  "CMakeFiles/corelib_test.dir/CorelibTest.cpp.o"
  "CMakeFiles/corelib_test.dir/CorelibTest.cpp.o.d"
  "corelib_test"
  "corelib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corelib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
