file(REMOVE_RECURSE
  "CMakeFiles/corelib2_test.dir/Corelib2Test.cpp.o"
  "CMakeFiles/corelib2_test.dir/Corelib2Test.cpp.o.d"
  "corelib2_test"
  "corelib2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corelib2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
