# Empty compiler generated dependencies file for corelib2_test.
# This may be replaced when dependencies are built.
