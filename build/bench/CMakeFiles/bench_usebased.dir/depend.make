# Empty dependencies file for bench_usebased.
# This may be replaced when dependencies are built.
