file(REMOVE_RECURSE
  "CMakeFiles/bench_usebased.dir/bench_usebased.cpp.o"
  "CMakeFiles/bench_usebased.dir/bench_usebased.cpp.o.d"
  "bench_usebased"
  "bench_usebased.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usebased.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
