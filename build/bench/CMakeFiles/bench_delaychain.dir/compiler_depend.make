# Empty compiler generated dependencies file for bench_delaychain.
# This may be replaced when dependencies are built.
