file(REMOVE_RECURSE
  "CMakeFiles/bench_delaychain.dir/bench_delaychain.cpp.o"
  "CMakeFiles/bench_delaychain.dir/bench_delaychain.cpp.o.d"
  "bench_delaychain"
  "bench_delaychain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delaychain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
