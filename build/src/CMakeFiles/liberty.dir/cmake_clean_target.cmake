file(REMOVE_RECURSE
  "libliberty.a"
)
