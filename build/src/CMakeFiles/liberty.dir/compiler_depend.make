# Empty compiler generated dependencies file for liberty.
# This may be replaced when dependencies are built.
