
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/HandCodedSim.cpp" "src/CMakeFiles/liberty.dir/baseline/HandCodedSim.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/baseline/HandCodedSim.cpp.o.d"
  "/root/repo/src/baseline/OopSim.cpp" "src/CMakeFiles/liberty.dir/baseline/OopSim.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/baseline/OopSim.cpp.o.d"
  "/root/repo/src/baseline/StaticNet.cpp" "src/CMakeFiles/liberty.dir/baseline/StaticNet.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/baseline/StaticNet.cpp.o.d"
  "/root/repo/src/bsl/BehaviorRegistry.cpp" "src/CMakeFiles/liberty.dir/bsl/BehaviorRegistry.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/bsl/BehaviorRegistry.cpp.o.d"
  "/root/repo/src/bsl/BslProgram.cpp" "src/CMakeFiles/liberty.dir/bsl/BslProgram.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/bsl/BslProgram.cpp.o.d"
  "/root/repo/src/corelib/CoreBehaviors.cpp" "src/CMakeFiles/liberty.dir/corelib/CoreBehaviors.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/corelib/CoreBehaviors.cpp.o.d"
  "/root/repo/src/corelib/CpuBehaviors.cpp" "src/CMakeFiles/liberty.dir/corelib/CpuBehaviors.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/corelib/CpuBehaviors.cpp.o.d"
  "/root/repo/src/corelib/TraceGen.cpp" "src/CMakeFiles/liberty.dir/corelib/TraceGen.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/corelib/TraceGen.cpp.o.d"
  "/root/repo/src/driver/Compiler.cpp" "src/CMakeFiles/liberty.dir/driver/Compiler.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/driver/Compiler.cpp.o.d"
  "/root/repo/src/driver/Stats.cpp" "src/CMakeFiles/liberty.dir/driver/Stats.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/driver/Stats.cpp.o.d"
  "/root/repo/src/infer/InferenceEngine.cpp" "src/CMakeFiles/liberty.dir/infer/InferenceEngine.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/infer/InferenceEngine.cpp.o.d"
  "/root/repo/src/infer/Synthetic.cpp" "src/CMakeFiles/liberty.dir/infer/Synthetic.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/infer/Synthetic.cpp.o.d"
  "/root/repo/src/infer/Unifier.cpp" "src/CMakeFiles/liberty.dir/infer/Unifier.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/infer/Unifier.cpp.o.d"
  "/root/repo/src/interp/ExprEvaluator.cpp" "src/CMakeFiles/liberty.dir/interp/ExprEvaluator.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/interp/ExprEvaluator.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/liberty.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/interp/Value.cpp" "src/CMakeFiles/liberty.dir/interp/Value.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/interp/Value.cpp.o.d"
  "/root/repo/src/lss/AST.cpp" "src/CMakeFiles/liberty.dir/lss/AST.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/lss/AST.cpp.o.d"
  "/root/repo/src/lss/Lexer.cpp" "src/CMakeFiles/liberty.dir/lss/Lexer.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/lss/Lexer.cpp.o.d"
  "/root/repo/src/lss/Parser.cpp" "src/CMakeFiles/liberty.dir/lss/Parser.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/lss/Parser.cpp.o.d"
  "/root/repo/src/models/Models.cpp" "src/CMakeFiles/liberty.dir/models/Models.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/models/Models.cpp.o.d"
  "/root/repo/src/netlist/DotEmitter.cpp" "src/CMakeFiles/liberty.dir/netlist/DotEmitter.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/netlist/DotEmitter.cpp.o.d"
  "/root/repo/src/netlist/Netlist.cpp" "src/CMakeFiles/liberty.dir/netlist/Netlist.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/netlist/Netlist.cpp.o.d"
  "/root/repo/src/sim/Instrumentation.cpp" "src/CMakeFiles/liberty.dir/sim/Instrumentation.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/sim/Instrumentation.cpp.o.d"
  "/root/repo/src/sim/Scheduler.cpp" "src/CMakeFiles/liberty.dir/sim/Scheduler.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/sim/Scheduler.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "src/CMakeFiles/liberty.dir/sim/Simulator.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/sim/Simulator.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/liberty.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/support/SourceMgr.cpp" "src/CMakeFiles/liberty.dir/support/SourceMgr.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/support/SourceMgr.cpp.o.d"
  "/root/repo/src/types/Type.cpp" "src/CMakeFiles/liberty.dir/types/Type.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/types/Type.cpp.o.d"
  "/root/repo/src/types/TypeContext.cpp" "src/CMakeFiles/liberty.dir/types/TypeContext.cpp.o" "gcc" "src/CMakeFiles/liberty.dir/types/TypeContext.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
