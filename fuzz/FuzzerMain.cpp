//===- FuzzerMain.cpp - Standalone fuzz driver ---------------------------------===//
///
/// \file
/// Replay-and-mutate driver for the fuzz targets, used when the toolchain
/// has no libFuzzer (`-fsanitize=fuzzer`); with LSS_FUZZ=ON and a clang
/// toolchain the real libFuzzer runtime is linked instead and this file is
/// left out. Two modes:
///
///   fuzz_parser CORPUS_DIR... FILE...
///       Replay mode (the corpus-replay ctest entry): runs every file, and
///       every file under every directory, through LLVMFuzzerTestOneInput
///       exactly once. Exits 0 iff no input crashed the target.
///
///   fuzz_parser --fuzz N [--seed S] CORPUS_DIR...
///       Mutation mode: N iterations of pick-a-seed / mutate / execute with
///       a xorshift64 PRNG (byte flips, insertions, deletions, truncation,
///       and cross-seed splices). Before each execution the input is written
///       to --out (default fuzz_current_input.lss), so a crash always
///       leaves its reproducer on disk — minimize it and commit it under
///       fuzz/regressions/. Deterministic for a fixed corpus and seed.
///
/// `-runs=N` is accepted as an alias for `--fuzz N` (and `-runs=0` for
/// plain replay) so ctest invocations work unchanged against real
/// libFuzzer binaries.
///
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size);

namespace {

/// xorshift64* — tiny, seedable, and plenty for mutation scheduling.
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }
  /// Uniform-ish value in [0, N); N must be nonzero.
  size_t below(size_t N) { return size_t(next() % N); }
};

std::vector<uint8_t> readFile(const std::string &Path, bool &Ok) {
  std::ifstream In(Path, std::ios::binary);
  Ok = bool(In);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

/// One random edit. Mutations are byte-oriented: the targets take arbitrary
/// bytes, and structural validity is what the seed corpus contributes.
void mutateOnce(std::vector<uint8_t> &Buf,
                const std::vector<std::vector<uint8_t>> &Corpus, Rng &R) {
  switch (R.below(6)) {
  case 0: // Flip one bit.
    if (!Buf.empty())
      Buf[R.below(Buf.size())] ^= uint8_t(1u << R.below(8));
    break;
  case 1: // Overwrite one byte with a random value.
    if (!Buf.empty())
      Buf[R.below(Buf.size())] = uint8_t(R.next());
    break;
  case 2: // Insert a random byte.
    Buf.insert(Buf.begin() + long(R.below(Buf.size() + 1)), uint8_t(R.next()));
    break;
  case 3: { // Delete a short range.
    if (Buf.empty())
      break;
    size_t At = R.below(Buf.size());
    size_t Len = std::min(Buf.size() - At, R.below(8) + 1);
    Buf.erase(Buf.begin() + long(At), Buf.begin() + long(At + Len));
    break;
  }
  case 4: // Truncate.
    if (!Buf.empty())
      Buf.resize(R.below(Buf.size()));
    break;
  case 5: { // Splice a slice of another corpus item in at a random point.
    if (Corpus.empty())
      break;
    const std::vector<uint8_t> &Other = Corpus[R.below(Corpus.size())];
    if (Other.empty())
      break;
    size_t From = R.below(Other.size());
    size_t Len = std::min(Other.size() - From, R.below(32) + 1);
    Buf.insert(Buf.begin() + long(R.below(Buf.size() + 1)),
               Other.begin() + long(From), Other.begin() + long(From + Len));
    break;
  }
  }
  // Keep inputs small: the interesting bugs are structural, not O(n) ones,
  // and tight inputs keep the corpus-replay ctest entry fast.
  if (Buf.size() > 1 << 16)
    Buf.resize(1 << 16);
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--fuzz N] [--seed S] [--out FILE] "
               "<file-or-dir>...\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t FuzzRuns = 0;
  uint64_t Seed = 1;
  std::string OutPath = "fuzz_current_input.lss";
  std::vector<std::string> Paths;

  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&](uint64_t &V) {
      if (I + 1 == argc)
        return false;
      V = std::strtoull(argv[++I], nullptr, 10);
      return true;
    };
    if (Arg == "--fuzz") {
      if (!NextValue(FuzzRuns))
        return usage(argv[0]);
    } else if (Arg.rfind("-runs=", 0) == 0) {
      FuzzRuns = std::strtoull(Arg.c_str() + 6, nullptr, 10);
    } else if (Arg == "--seed") {
      if (!NextValue(Seed))
        return usage(argv[0]);
    } else if (Arg == "--out") {
      if (I + 1 == argc)
        return usage(argv[0]);
      OutPath = argv[++I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      // Unknown dashed options (libFuzzer flags in CI scripts) are ignored
      // so the same command line drives either driver.
      std::fprintf(stderr, "note: ignoring option '%s'\n", Arg.c_str());
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty())
    return usage(argv[0]);

  // Expand directories into the files beneath them, sorted for determinism.
  std::vector<std::string> Files;
  for (const std::string &P : Paths) {
    std::error_code EC;
    if (std::filesystem::is_directory(P, EC)) {
      for (const auto &Entry :
           std::filesystem::recursive_directory_iterator(P, EC))
        if (Entry.is_regular_file())
          Files.push_back(Entry.path().string());
    } else {
      Files.push_back(P);
    }
  }
  std::sort(Files.begin(), Files.end());

  std::vector<std::vector<uint8_t>> Corpus;
  for (const std::string &F : Files) {
    bool Ok = false;
    std::vector<uint8_t> Bytes = readFile(F, Ok);
    if (!Ok) {
      std::fprintf(stderr, "error: cannot read '%s'\n", F.c_str());
      return 1;
    }
    Corpus.push_back(std::move(Bytes));
  }

  // Replay every input once. A crash aborts the process here, which is the
  // failure mode ctest reports.
  for (size_t I = 0; I != Corpus.size(); ++I)
    LLVMFuzzerTestOneInput(Corpus[I].data(), Corpus[I].size());
  std::printf("replayed %zu inputs\n", Corpus.size());

  if (FuzzRuns == 0)
    return 0;

  Rng R(Seed);
  for (uint64_t Run = 0; Run != FuzzRuns; ++Run) {
    std::vector<uint8_t> Input =
        Corpus.empty() ? std::vector<uint8_t>() : Corpus[R.below(Corpus.size())];
    size_t NumEdits = R.below(4) + 1;
    for (size_t E = 0; E != NumEdits; ++E)
      mutateOnce(Input, Corpus, R);
    // Persist before executing: if the target crashes, the reproducer is
    // already on disk.
    {
      std::ofstream Out(OutPath, std::ios::binary | std::ios::trunc);
      Out.write(reinterpret_cast<const char *>(Input.data()),
                long(Input.size()));
    }
    LLVMFuzzerTestOneInput(Input.data(), Input.size());
    if ((Run + 1) % 5000 == 0)
      std::printf("fuzzed %llu/%llu inputs\n",
                  static_cast<unsigned long long>(Run + 1),
                  static_cast<unsigned long long>(FuzzRuns));
  }
  std::printf("fuzzed %llu mutated inputs, no crashes\n",
              static_cast<unsigned long long>(FuzzRuns));
  std::remove(OutPath.c_str());
  return 0;
}
