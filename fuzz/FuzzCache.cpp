//===- FuzzCache.cpp - Artifact-deserializer fuzz target ----------------------===//
///
/// \file
/// Attacks the cache's trust boundary: the LSSNL (elaborated netlist),
/// LSSSOL (inference solution), and LSSKRN (compiled cycle kernel)
/// deserializers, which parse whatever bytes a cache directory hands
/// back. Each input is run two ways:
///
///   raw    — the bytes go straight into deserializeNetlist, (against a
///            pristine reloaded netlist) importSolution, and (against a
///            live compiled-engine simulator) KernelBuilder::load;
///   patch  — the bytes are spliced into a known-valid artifact produced
///            once from a fixed spec, modeling a partially corrupted cache
///            entry, and the result is deserialized.
///
/// Malformed input must be rejected (returning null/false is the cache's
/// "miss" path); crashes, sanitizer reports, and hangs are bugs. When a
/// mutated netlist or kernel artifact happens to be *accepted*, the
/// reload fixpoint must still hold: re-serializing and re-loading the
/// accepted artifact yields identical bytes. An accept-then-diverge would
/// let a corrupt entry poison downstream compiles, so that traps too.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "infer/Solution.h"
#include "netlist/Serializer.h"
#include "sim/KernelBuilder.h"
#include "sim/Simulator.h"
#include "types/TypeContext.h"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

using namespace liberty;

namespace {

const char *kSeedSpec = R"(
instance g:counter_source;
instance one:const_source;
one.value = 1;
instance a:adder;
instance s:sink;
g.out -> a.in1;
one.out -> a.in2;
a.out -> s.in;
)";

/// Known-valid artifacts, built once from the fixed spec. Every structural
/// record kind (instance, port, connection, userpoint, diag, p, stats)
/// appears in them, so splices hit real parse paths.
struct SeedArtifacts {
  std::string NetlistArt;   ///< Current format (LSSNL 2, interned strtab).
  std::string NetlistArtV1; ///< Legacy format the loader still accepts.
  std::string SolutionArt;
  bool Ok = false;
};

const SeedArtifacts &seeds() {
  static SeedArtifacts S = [] {
    SeedArtifacts A;
    driver::Compiler C;
    driver::CompilerInvocation Inv;
    if (!C.addCoreLibrary() || !C.addSource("seed.lss", kSeedSpec) ||
        !C.elaborate(Inv) || !C.inferTypes(Inv))
      return A;
    A.Ok = netlist::serializeNetlist(*C.getNetlist(), C.getLibraryModules(),
                                     C.getNumUserTypeAnnotations(), {},
                                     A.NetlistArt) &&
           netlist::serializeNetlist(*C.getNetlist(), C.getLibraryModules(),
                                     C.getNumUserTypeAnnotations(), {},
                                     A.NetlistArtV1, 1) &&
           infer::exportSolution(*C.getNetlist(), C.getInferenceStats(), {},
                                 A.SolutionArt);
    return A;
  }();
  return S;
}

/// A persistent compiled-engine compile of the fixed spec. KernelBuilder::
/// load revalidates candidate plans against this simulator's schedule and
/// slot tables without mutating it, so one compile serves every input.
struct KernelSeed {
  driver::Compiler C;
  sim::Simulator *Sim = nullptr;
  std::string KernelArt;
};

KernelSeed &kernelSeed() {
  static KernelSeed S;
  static const bool Init = [] {
    driver::CompilerInvocation Inv;
    Inv.Sim.Engine = sim::EngineKind::Compiled;
    if (!S.C.addCoreLibrary() || !S.C.addSource("seed.lss", kSeedSpec) ||
        !S.C.elaborate(Inv) || !S.C.inferTypes(Inv))
      return false;
    S.Sim = S.C.buildSimulator(Inv, nullptr);
    return S.Sim != nullptr && S.Sim->serializeKernel(S.KernelArt);
  }();
  if (!Init)
    S.Sim = nullptr;
  return S;
}

/// Feeds \p Text to the LSSKRN loader. Rejection is the cache-miss path;
/// an accepted plan must survive a serialize/reload round trip unchanged.
void exerciseKernel(const std::string &Text) {
  sim::Simulator *Sim = kernelSeed().Sim;
  if (!Sim)
    __builtin_trap(); // The fixed spec must always lower to a kernel.
  std::unique_ptr<sim::CompiledKernel> K = sim::KernelBuilder::load(*Sim, Text);
  if (!K)
    return;
  std::string S2 = K->serialize();
  std::unique_ptr<sim::CompiledKernel> K2 = sim::KernelBuilder::load(*Sim, S2);
  if (!K2 || K2->serialize() != S2)
    __builtin_trap();
}

/// Feeds \p Text to both deserializers. The solution import runs against a
/// pristine netlist reload so its index bounds-checks are exercised with
/// realistic instance/port counts.
void exercise(const std::string &Text) {
  {
    types::TypeContext TC;
    netlist::SerializedCompile SC = netlist::deserializeNetlist(Text, TC);
    if (SC.NL) {
      // Accepted input: the reload fixpoint must hold (see file comment).
      std::string S2, S3;
      if (netlist::serializeNetlist(*SC.NL, SC.LibraryModules,
                                    SC.NumUserAnnotations, SC.Diags, S2)) {
        types::TypeContext TC2;
        netlist::SerializedCompile SC2 = netlist::deserializeNetlist(S2, TC2);
        if (!SC2.NL ||
            !netlist::serializeNetlist(*SC2.NL, SC2.LibraryModules,
                                       SC2.NumUserAnnotations, SC2.Diags, S3) ||
            S2 != S3)
          __builtin_trap();
      }
    }
  }
  {
    types::TypeContext TC;
    netlist::SerializedCompile SC =
        netlist::deserializeNetlist(seeds().NetlistArt, TC);
    if (!SC.NL)
      __builtin_trap(); // The pristine artifact must always load.
    infer::NetlistInferenceStats Stats;
    std::vector<Diagnostic> Diags;
    (void)infer::importSolution(Text, *SC.NL, TC, Stats, Diags);
  }
}

/// Splices the fuzz bytes into a copy of \p Base at an input-derived
/// offset, optionally overwriting instead of inserting.
std::string patch(const std::string &Base, const uint8_t *Data, size_t Size) {
  uint64_t Ctl = 0;
  std::memcpy(&Ctl, Data, Size < 8 ? Size : 8);
  size_t At = Base.empty() ? 0 : size_t(Ctl % (Base.size() + 1));
  const char *Payload = reinterpret_cast<const char *>(Data + (Size < 8 ? Size : 8));
  size_t PayloadLen = Size < 8 ? 0 : Size - 8;
  std::string Out = Base;
  if (Ctl & 1) {
    // Overwrite in place (keeps line structure mostly intact).
    size_t N = PayloadLen < Out.size() - At ? PayloadLen : Out.size() - At;
    Out.replace(At, N, Payload, N);
  } else {
    Out.insert(At, Payload, PayloadLen);
  }
  return Out;
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (!seeds().Ok)
    __builtin_trap(); // The fixed spec must always compile and serialize.

  std::string Raw(reinterpret_cast<const char *>(Data), Size);
  exercise(Raw);
  exerciseKernel(Raw);
  // Splice against both wire formats: v2's strtab/id-reference records
  // and v1's in-place escaped strings take different parse paths.
  exercise(patch(seeds().NetlistArt, Data, Size));
  exercise(patch(seeds().NetlistArtV1, Data, Size));
  exercise(patch(seeds().SolutionArt, Data, Size));
  exerciseKernel(patch(kernelSeed().KernelArt, Data, Size));
  return 0;
}
