//===- FuzzPipeline.cpp - Full-pipeline fuzz target ----------------------------===//
///
/// \file
/// Runs arbitrary bytes through the whole compile pipeline — parse →
/// interpreted elaboration → H3 type inference — under tight budgets, the
/// configuration the robustness layer must keep crash-free: parser
/// panic-mode recovery, the shared DiagnosticEngine error cap, interpreter
/// step/instance limits, and graceful inference budget degradation all get
/// exercised on every input. Failure is fine (that is the point); crashes,
/// sanitizer reports, and hangs are bugs.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstddef>
#include <cstdint>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  using namespace liberty;
  driver::Compiler C;
  C.getDiags().setMaxErrors(32);
  if (!C.addCoreLibrary())
    __builtin_trap(); // The shipped library must always compile.
  if (!C.addSource("fuzz.lss",
                   std::string(reinterpret_cast<const char *>(Data), Size)))
    return 0;

  // Tight budgets throughout: fuzz inputs legitimately write unbounded
  // compile-time loops (`while (true) {}`), and the interpreter's caps must
  // turn them into diagnostics quickly; inference exhaustion must degrade
  // gracefully (other groups still solved, structured diagnostics), never
  // crash.
  driver::CompilerInvocation Inv;
  Inv.Elab.MaxSteps = 200000;
  Inv.Elab.MaxInstances = 2000;
  Inv.Solve.MaxSteps = 200000;
  if (!C.elaborate(Inv))
    return 0;
  (void)C.inferTypes(Inv);
  return 0;
}
