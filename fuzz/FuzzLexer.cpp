//===- FuzzLexer.cpp - Lexer fuzz target ---------------------------------------===//
///
/// \file
/// Feeds arbitrary bytes to the LSS lexer and drains the token stream. The
/// lexer's contract is total: any byte sequence must terminate in an Eof
/// token after a bounded number of lex() calls, reporting bad characters
/// through the DiagnosticEngine rather than crashing or spinning.
///
//===----------------------------------------------------------------------===//

#include "lss/Lexer.h"
#include "support/Diagnostics.h"
#include "support/SourceMgr.h"

#include <cstddef>
#include <cstdint>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  using namespace liberty;
  SourceMgr SM;
  DiagnosticEngine Diags(SM);
  Diags.setMaxErrors(64);
  uint32_t BufferId = SM.addBuffer(
      "fuzz.lss", std::string(reinterpret_cast<const char *>(Data), Size));
  lss::Lexer Lex(BufferId, Diags);

  // Every lex() past position P either advances or ends: 2*Size + slack is
  // a generous bound. Exceeding it means the lexer is stuck — turn the hang
  // into a crash so the fuzzer catches it.
  uint64_t Limit = 2 * uint64_t(Size) + 1024;
  uint64_t Steps = 0;
  while (!Lex.lex().is(lss::TokenKind::Eof))
    if (++Steps > Limit)
      __builtin_trap();
  return 0;
}
