//===- FuzzParser.cpp - Parser fuzz target -------------------------------------===//
///
/// \file
/// Parses arbitrary bytes as an LSS specification file. Exercises the
/// panic-mode recovery machinery (sync at `;`, `}`, decl keywords, and the
/// ensureProgress forward-progress guard): the parser must always return a
/// SpecFile — possibly empty, with diagnostics — and never crash, assert,
/// or loop on malformed input.
///
//===----------------------------------------------------------------------===//

#include "lss/AST.h"
#include "lss/Parser.h"
#include "support/Diagnostics.h"
#include "support/SourceMgr.h"

#include <cstddef>
#include <cstdint>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  using namespace liberty;
  SourceMgr SM;
  DiagnosticEngine Diags(SM);
  // A tight cap keeps pathological inputs fast and exercises the shared
  // --max-errors wind-down path on every run that floods diagnostics.
  Diags.setMaxErrors(32);
  uint32_t BufferId = SM.addBuffer(
      "fuzz.lss", std::string(reinterpret_cast<const char *>(Data), Size));
  lss::ASTContext Ctx;
  lss::Parser P(BufferId, Ctx, Diags);
  lss::SpecFile File = P.parseFile();
  (void)File;
  return 0;
}
