//===- PhaseTimer.cpp - Per-phase compile-time observability -----------------===//

#include "support/PhaseTimer.h"

#include <iomanip>

using namespace liberty;

std::string liberty::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

PhaseTimer::Phase &PhaseTimer::getOrCreatePhase(const std::string &Name) {
  for (Phase &P : Phases)
    if (P.Name == Name)
      return P;
  Phases.push_back(Phase{Name, 0.0, {}});
  return Phases.back();
}

void PhaseTimer::addWallTime(const std::string &Name, double Ms) {
  getOrCreatePhase(Name).WallMs += Ms;
}

void PhaseTimer::setCounter(const std::string &Name,
                            const std::string &Counter, uint64_t Value) {
  Phase &P = getOrCreatePhase(Name);
  for (PhaseTimer::Counter &C : P.Counters)
    if (C.Name == Counter) {
      C.Value = Value;
      return;
    }
  P.Counters.push_back(PhaseTimer::Counter{Counter, Value});
}

const PhaseTimer::Phase *PhaseTimer::findPhase(const std::string &Name) const {
  for (const Phase &P : Phases)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

double PhaseTimer::totalWallMs() const {
  double Total = 0.0;
  for (const Phase &P : Phases)
    Total += P.WallMs;
  return Total;
}

void PhaseTimer::print(std::ostream &OS) const {
  OS << "== compile phases ==\n";
  for (const Phase &P : Phases) {
    OS << "  " << std::left << std::setw(16) << P.Name << std::right
       << std::fixed << std::setprecision(3) << std::setw(12) << P.WallMs
       << " ms";
    for (const Counter &C : P.Counters)
      OS << "  " << C.Name << "=" << C.Value;
    OS << "\n";
  }
  OS << "  " << std::left << std::setw(16) << "total" << std::right
     << std::fixed << std::setprecision(3) << std::setw(12) << totalWallMs()
     << " ms\n";
}

void PhaseTimer::printJson(std::ostream &OS) const {
  OS << "[";
  for (size_t I = 0; I != Phases.size(); ++I) {
    const Phase &P = Phases[I];
    if (I)
      OS << ",";
    OS << "\n    {\"name\": \"" << jsonEscape(P.Name) << "\", \"wall_ms\": "
       << std::fixed << std::setprecision(3) << P.WallMs;
    for (const Counter &C : P.Counters)
      OS << ", \"" << jsonEscape(C.Name) << "\": " << C.Value;
    OS << "}";
  }
  OS << "\n  ]";
}
