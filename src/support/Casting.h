//===- Casting.h - LLVM-style isa/cast/dyn_cast -----------------*- C++ -*-===//
///
/// \file
/// A minimal reimplementation of LLVM's isa<>/cast<>/dyn_cast<> templates.
/// Classes opt in by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SUPPORT_CASTING_H
#define LIBERTY_SUPPORT_CASTING_H

#include <cassert>

namespace liberty {

/// Returns true if \p Val is an instance of To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null if \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace liberty

#endif // LIBERTY_SUPPORT_CASTING_H
