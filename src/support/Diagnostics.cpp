//===- Diagnostics.cpp - Source-located diagnostics -----------------------===//

#include "support/Diagnostics.h"

using namespace liberty;

static const char *levelName(DiagLevel Level) {
  switch (Level) {
  case DiagLevel::Note:
    return "note";
  case DiagLevel::Warning:
    return "warning";
  case DiagLevel::Error:
    return "error";
  }
  return "unknown";
}

std::string DiagnosticEngine::getFirstErrorMessage() const {
  for (const Diagnostic &D : Diags)
    if (D.Level == DiagLevel::Error)
      return D.Message;
  return std::string();
}

void DiagnosticEngine::printAll(std::ostream &OS) const {
  for (const Diagnostic &D : Diags) {
    OS << SM.getLocString(D.Loc) << ": " << levelName(D.Level) << ": "
       << D.Message << "\n";
    if (!D.Loc.isValid())
      continue;
    std::string Line = SM.getLineText(D.Loc);
    LineCol LC = SM.getLineCol(D.Loc);
    OS << "  " << Line << "\n  ";
    for (unsigned I = 1; I < LC.Col; ++I)
      OS << (I - 1 < Line.size() && Line[I - 1] == '\t' ? '\t' : ' ');
    OS << "^\n";
  }
}
