//===- ThreadPool.h - Minimal work-stealing-free thread pool ----*- C++ -*-===//
///
/// \file
/// A small fixed-size thread pool in the LLVM style: tasks are plain
/// `std::function<void()>` values executed FIFO by `std::jthread` workers.
/// No exceptions cross task boundaries (the codebase compiles without
/// throwing); cancellation uses the jthreads' stop tokens. The pool exists
/// for the H3 parallel inference solver, which dispatches one task per
/// variable-disjoint constraint group, but it is deliberately generic so
/// other compile-time phases can reuse it.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SUPPORT_THREADPOOL_H
#define LIBERTY_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace liberty {

class ThreadPool {
public:
  /// Spawns \p ThreadCount workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned ThreadCount = 0);

  /// Deterministic shutdown: tasks that never started are dropped (they
  /// are cancelled before anything else), tasks already running finish,
  /// then the workers are stopped and joined. An error path may therefore
  /// destroy the pool without first draining the queue and never observes
  /// a half-run suffix of the queued work racing teardown.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for asynchronous execution. Tasks run FIFO but may
  /// complete in any order; synchronize results with wait().
  void async(std::function<void()> Task);

  /// Blocks until every task enqueued so far has finished executing.
  void wait();

  /// Removes every queued-but-not-started task without running it and
  /// returns how many were dropped. Tasks already executing finish
  /// normally. The record-and-drain idiom for a mid-cycle error: record
  /// the failure, cancelPending(), then wait() — the pool reaches a
  /// quiescent state where each task either ran to completion before the
  /// cancel or never started at all.
  size_t cancelPending();

  unsigned getThreadCount() const { return unsigned(Workers.size()); }

  /// The default parallelism: hardware concurrency, never less than 1
  /// (hardware_concurrency() may legally return 0).
  static unsigned getHardwareParallelism();

  /// The calling thread's index within its owning pool ([0, ThreadCount)),
  /// or -1 when called from a thread no pool owns (e.g. the main thread).
  /// Lets tasks index per-worker scratch (stat shards) without locking.
  static int currentWorkerIndex();

private:
  void workerLoop(std::stop_token Stop, unsigned Index);

  std::mutex Mutex;
  std::condition_variable_any WorkAvailable;
  std::condition_variable_any AllDone;
  std::deque<std::function<void()>> Queue;
  unsigned Outstanding = 0; ///< Queued + currently-running tasks.
  std::vector<std::jthread> Workers;
};

} // namespace liberty

#endif // LIBERTY_SUPPORT_THREADPOOL_H
