//===- SourceMgr.cpp - Source buffer management ---------------------------===//

#include "support/SourceMgr.h"

#include <algorithm>
#include <cassert>

using namespace liberty;

uint32_t SourceMgr::addBuffer(std::string Name, std::string Text) {
  Buffer B;
  B.Name = std::move(Name);
  B.Text = std::move(Text);
  B.LineStarts.push_back(0);
  for (uint32_t I = 0, E = B.Text.size(); I != E; ++I)
    if (B.Text[I] == '\n')
      B.LineStarts.push_back(I + 1);
  Buffers.push_back(std::move(B));
  return Buffers.size(); // Ids are 1-based.
}

const SourceMgr::Buffer &SourceMgr::getBuffer(uint32_t BufferId) const {
  assert(BufferId >= 1 && BufferId <= Buffers.size() && "bad buffer id");
  return Buffers[BufferId - 1];
}

const std::string &SourceMgr::getBufferText(uint32_t BufferId) const {
  return getBuffer(BufferId).Text;
}

const std::string &SourceMgr::getBufferName(uint32_t BufferId) const {
  return getBuffer(BufferId).Name;
}

LineCol SourceMgr::getLineCol(SourceLoc Loc) const {
  if (!Loc.isValid())
    return LineCol();
  const Buffer &B = getBuffer(Loc.BufferId);
  auto It = std::upper_bound(B.LineStarts.begin(), B.LineStarts.end(),
                             Loc.Offset);
  unsigned Line = It - B.LineStarts.begin(); // 1-based.
  uint32_t LineStart = B.LineStarts[Line - 1];
  return LineCol{Line, Loc.Offset - LineStart + 1};
}

std::string SourceMgr::getLineText(SourceLoc Loc) const {
  if (!Loc.isValid())
    return std::string();
  const Buffer &B = getBuffer(Loc.BufferId);
  LineCol LC = getLineCol(Loc);
  uint32_t Start = B.LineStarts[LC.Line - 1];
  uint32_t End = Start;
  while (End < B.Text.size() && B.Text[End] != '\n')
    ++End;
  return B.Text.substr(Start, End - Start);
}

std::string SourceMgr::getLocString(SourceLoc Loc) const {
  if (!Loc.isValid())
    return "<unknown>";
  LineCol LC = getLineCol(Loc);
  return getBufferName(Loc.BufferId) + ":" + std::to_string(LC.Line) + ":" +
         std::to_string(LC.Col);
}
