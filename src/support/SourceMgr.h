//===- SourceMgr.h - Source buffer management ------------------*- C++ -*-===//
//
// Part of the Liberty LSS reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the source buffers of an LSS compilation and maps source locations
/// back to (buffer, line, column) triples for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SUPPORT_SOURCEMGR_H
#define LIBERTY_SUPPORT_SOURCEMGR_H

#include <cstdint>
#include <string>
#include <vector>

namespace liberty {

/// A location inside a buffer registered with a SourceMgr.
///
/// Locations are compact (buffer id + byte offset) so tokens and AST nodes
/// can carry them cheaply. The invalid location is {0, 0}; real buffer ids
/// start at 1.
struct SourceLoc {
  uint32_t BufferId = 0;
  uint32_t Offset = 0;

  bool isValid() const { return BufferId != 0; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.BufferId == B.BufferId && A.Offset == B.Offset;
  }
};

/// A (line, column) pair decoded from a SourceLoc; both are 1-based.
struct LineCol {
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Owns source text and answers location queries.
class SourceMgr {
public:
  /// Registers \p Text under \p Name and returns the new buffer's id.
  uint32_t addBuffer(std::string Name, std::string Text);

  /// Returns the number of registered buffers.
  unsigned getNumBuffers() const { return Buffers.size(); }

  /// Returns the full text of buffer \p BufferId.
  const std::string &getBufferText(uint32_t BufferId) const;

  /// Returns the name buffer \p BufferId was registered under.
  const std::string &getBufferName(uint32_t BufferId) const;

  /// Decodes \p Loc into a 1-based line/column pair.
  LineCol getLineCol(SourceLoc Loc) const;

  /// Returns the text of the line containing \p Loc (without newline).
  std::string getLineText(SourceLoc Loc) const;

  /// Renders \p Loc as "name:line:col" for diagnostics.
  std::string getLocString(SourceLoc Loc) const;

private:
  struct Buffer {
    std::string Name;
    std::string Text;
    /// Byte offsets at which each line starts; computed on registration.
    std::vector<uint32_t> LineStarts;
  };

  const Buffer &getBuffer(uint32_t BufferId) const;

  std::vector<Buffer> Buffers;
};

} // namespace liberty

#endif // LIBERTY_SUPPORT_SOURCEMGR_H
