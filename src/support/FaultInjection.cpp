//===- FaultInjection.cpp - Deterministic fault-point registry ------------===//

#include "support/FaultInjection.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace liberty {

std::atomic<bool> FaultInjection::Armed{false};

namespace {

enum class TriggerKind {
  Always,      ///< `site`
  NthOnly,     ///< `site@N`
  NthAndLater, ///< `site@N+`
  Probability, ///< `site%P`
};

struct Rule {
  std::string Pattern; ///< Site name, or prefix when PrefixMatch.
  bool PrefixMatch = false;
  TriggerKind Kind = TriggerKind::Always;
  uint64_t N = 0;       ///< For Nth* kinds (1-based).
  uint32_t Percent = 0; ///< For Probability.
  uint64_t Hits = 0;
  uint64_t Fires = 0;
  uint64_t RngState = 0; ///< Per-rule stream so rules don't perturb each other.
};

struct Schedule {
  std::mutex Mutex;
  std::vector<Rule> Rules;
  uint64_t Seed = 1;
};

Schedule &schedule() {
  static Schedule S;
  return S;
}

// splitmix64: tiny, seedable, and plenty for a fire/no-fire coin flip.
uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

uint64_t fnv64(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    if (V > (UINT64_MAX - uint64_t(C - '0')) / 10)
      return false;
    V = V * 10 + uint64_t(C - '0');
  }
  Out = V;
  return true;
}

bool matches(const Rule &R, const char *Site) {
  if (R.PrefixMatch)
    return std::strncmp(Site, R.Pattern.c_str(), R.Pattern.size()) == 0;
  return R.Pattern == Site;
}

bool parseRule(const std::string &Text, Rule &R, std::string &Err) {
  std::string Name = Text;
  size_t At = Text.find('@');
  size_t Pct = Text.find('%');
  if (At != std::string::npos && Pct != std::string::npos) {
    Err = "rule '" + Text + "' mixes '@' and '%'";
    return false;
  }
  if (At != std::string::npos) {
    Name = Text.substr(0, At);
    std::string Arg = Text.substr(At + 1);
    if (!Arg.empty() && Arg.back() == '+') {
      R.Kind = TriggerKind::NthAndLater;
      Arg.pop_back();
    } else {
      R.Kind = TriggerKind::NthOnly;
    }
    if (!parseU64(Arg, R.N) || R.N == 0) {
      Err = "rule '" + Text + "': expected a positive count after '@'";
      return false;
    }
  } else if (Pct != std::string::npos) {
    Name = Text.substr(0, Pct);
    uint64_t P = 0;
    if (!parseU64(Text.substr(Pct + 1), P) || P > 100) {
      Err = "rule '" + Text + "': expected 0..100 after '%'";
      return false;
    }
    R.Kind = TriggerKind::Probability;
    R.Percent = uint32_t(P);
  }
  if (Name.empty()) {
    Err = "rule '" + Text + "' has an empty site name";
    return false;
  }
  if (Name.back() == '*') {
    R.PrefixMatch = true;
    Name.pop_back();
  }
  R.Pattern = Name;
  return true;
}

} // namespace

bool FaultInjection::configure(const std::string &Spec, std::string *Err) {
  std::vector<Rule> Rules;
  uint64_t Seed = 1;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t End = Spec.find_first_of(",;", Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Tok = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    // Trim surrounding whitespace.
    size_t B = Tok.find_first_not_of(" \t");
    size_t E = Tok.find_last_not_of(" \t");
    Tok = B == std::string::npos ? "" : Tok.substr(B, E - B + 1);
    if (Tok.empty())
      continue;
    if (Tok.rfind("seed=", 0) == 0) {
      if (!parseU64(Tok.substr(5), Seed)) {
        if (Err)
          *Err = "bad seed in '" + Tok + "'";
        return false;
      }
      continue;
    }
    Rule R;
    std::string RuleErr;
    if (!parseRule(Tok, R, RuleErr)) {
      if (Err)
        *Err = RuleErr;
      return false;
    }
    Rules.push_back(std::move(R));
  }
  Schedule &S = schedule();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Seed = Seed;
  // Each probability rule gets its own deterministic stream derived from
  // the seed and the rule's pattern, so adding a rule never reshuffles the
  // decisions of the others.
  for (Rule &R : Rules)
    R.RngState = Seed ^ fnv64(R.Pattern);
  S.Rules = std::move(Rules);
  Armed.store(!S.Rules.empty(), std::memory_order_relaxed);
  return true;
}

void FaultInjection::reset() {
  Schedule &S = schedule();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Rules.clear();
  S.Seed = 1;
  Armed.store(false, std::memory_order_relaxed);
}

bool FaultInjection::fire(const char *Site) {
  Schedule &S = schedule();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  bool Fired = false;
  for (Rule &R : S.Rules) {
    if (!matches(R, Site))
      continue;
    ++R.Hits;
    bool RuleFires = false;
    switch (R.Kind) {
    case TriggerKind::Always:
      RuleFires = true;
      break;
    case TriggerKind::NthOnly:
      RuleFires = R.Hits == R.N;
      break;
    case TriggerKind::NthAndLater:
      RuleFires = R.Hits >= R.N;
      break;
    case TriggerKind::Probability:
      RuleFires = splitmix64(R.RngState) % 100 < R.Percent;
      break;
    }
    if (RuleFires) {
      ++R.Fires;
      Fired = true;
    }
  }
  return Fired;
}

std::vector<FaultInjection::SiteStats> FaultInjection::stats() {
  Schedule &S = schedule();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  std::vector<SiteStats> Out;
  Out.reserve(S.Rules.size());
  for (const Rule &R : S.Rules) {
    SiteStats St;
    St.Site = R.Pattern + (R.PrefixMatch ? "*" : "");
    St.Hits = R.Hits;
    St.Fires = R.Fires;
    Out.push_back(std::move(St));
  }
  return Out;
}

void FaultInjection::configureFromEnv() {
  const char *Spec = std::getenv("LSS_FAULT");
  if (!Spec || !*Spec)
    return;
  std::string Err;
  if (!configure(Spec, &Err)) {
    std::fprintf(stderr, "error: bad LSS_FAULT spec: %s\n", Err.c_str());
    std::exit(2);
  }
}

} // namespace liberty
