//===- FaultInjection.h - Deterministic fault-point registry ----*- C++ -*-===//
///
/// \file
/// A process-wide registry of named fault sites for testing failure paths.
/// Code sprinkles `faultShouldFail("cache.disk.write")` at I/O edges; a
/// fault *schedule* (from the `LSS_FAULT` env var or a tool's
/// `--fault-inject` flag) decides which hits actually fail. Schedules are
/// deterministic: trigger-on-Nth rules and seeded-probability rules replay
/// identically for the same spec string.
///
/// Spec grammar (rules separated by `,` or `;`):
///
///   site            fire on every hit
///   site@N          fire on the Nth hit only (1-based)
///   site@N+         fire on the Nth and every later hit
///   site%P          fire on each hit with probability P percent (seeded)
///   seed=S          seed for all `%P` rules (default 1)
///
/// A rule's site name may end in `*` to prefix-match a family of sites
/// (e.g. `cache.disk.*`). When no schedule is armed the check is a single
/// relaxed atomic load — zero-cost in production builds.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SUPPORT_FAULTINJECTION_H
#define LIBERTY_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace liberty {

class FaultInjection {
public:
  struct SiteStats {
    std::string Site; ///< Rule pattern, as written in the spec.
    uint64_t Hits = 0;
    uint64_t Fires = 0;
  };

  /// Parses \p Spec and arms the registry. Replaces any previous schedule.
  /// Returns false (and sets \p Err if non-null) on a malformed spec; the
  /// previous schedule stays in effect on failure. An empty spec disarms.
  static bool configure(const std::string &Spec, std::string *Err = nullptr);

  /// Disarms the registry and clears all rules and stats.
  static void reset();

  /// True when a non-empty schedule is armed.
  static bool armed() { return Armed.load(std::memory_order_relaxed); }

  /// The hot-path check: did the armed schedule decide this hit of
  /// \p Site fails? Always false when disarmed (one relaxed atomic load).
  static bool shouldFail(const char *Site) {
    if (!Armed.load(std::memory_order_relaxed))
      return false;
    return fire(Site);
  }

  /// Per-rule hit/fire counts for the current schedule.
  static std::vector<SiteStats> stats();

  /// Arms from the LSS_FAULT environment variable if set (exits the
  /// process with a message on a malformed value). Called once by tools;
  /// library code never reads the environment.
  static void configureFromEnv();

private:
  static std::atomic<bool> Armed;
  static bool fire(const char *Site);
};

/// Convenience wrapper so call sites read as a condition.
inline bool faultShouldFail(const char *Site) {
  return FaultInjection::shouldFail(Site);
}

} // namespace liberty

#endif // LIBERTY_SUPPORT_FAULTINJECTION_H
