//===- Diagnostics.h - Source-located diagnostics ---------------*- C++ -*-===//
///
/// \file
/// The diagnostics engine used by every phase of the LSS pipeline. The
/// library never throws: phases report through this engine and callers test
/// hasErrors(). Messages follow the LLVM style: lowercase first word, no
/// trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SUPPORT_DIAGNOSTICS_H
#define LIBERTY_SUPPORT_DIAGNOSTICS_H

#include "support/SourceMgr.h"

#include <ostream>
#include <string>
#include <vector>

namespace liberty {

/// Severity of a diagnostic.
enum class DiagLevel { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagLevel Level;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics for a compilation.
///
/// The engine is deliberately simple: phases push diagnostics, drivers print
/// them. It owns nothing but the message list; the SourceMgr is borrowed so
/// printed diagnostics can show file/line/caret context.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceMgr &SM) : SM(SM) {}

  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagLevel::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagLevel::Warning, Loc, std::move(Message)});
    ++NumWarnings;
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagLevel::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned getNumErrors() const { return NumErrors; }
  unsigned getNumWarnings() const { return NumWarnings; }

  const std::vector<Diagnostic> &getDiagnostics() const { return Diags; }

  /// Returns the message of the first error, or "" if none. Convenient for
  /// tests asserting on a particular failure.
  std::string getFirstErrorMessage() const;

  /// Pretty-prints every diagnostic with source context to \p OS.
  void printAll(std::ostream &OS) const;

  /// Drops all collected diagnostics and resets the counters.
  void clear() {
    Diags.clear();
    NumErrors = NumWarnings = 0;
  }

  const SourceMgr &getSourceMgr() const { return SM; }

private:
  const SourceMgr &SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace liberty

#endif // LIBERTY_SUPPORT_DIAGNOSTICS_H
