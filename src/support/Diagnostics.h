//===- Diagnostics.h - Source-located diagnostics ---------------*- C++ -*-===//
///
/// \file
/// The diagnostics engine used by every phase of the LSS pipeline. The
/// library never throws: phases report through this engine and callers test
/// hasErrors(). Messages follow the LLVM style: lowercase first word, no
/// trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SUPPORT_DIAGNOSTICS_H
#define LIBERTY_SUPPORT_DIAGNOSTICS_H

#include "support/SourceMgr.h"

#include <ostream>
#include <string>
#include <vector>

namespace liberty {

/// Severity of a diagnostic.
enum class DiagLevel { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagLevel Level;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics for a compilation.
///
/// The engine is deliberately simple: phases push diagnostics, drivers print
/// them. It owns nothing but the message list; the SourceMgr is borrowed so
/// printed diagnostics can show file/line/caret context.
///
/// The engine also owns the pipeline-wide error cap (`lssc --max-errors`):
/// once MaxErrors errors have been reported, further errors are counted but
/// not stored, one "too many errors" note marks the cut, and every phase
/// (parser recovery, elaboration, inference, simulation) is expected to poll
/// errorLimitReached() and wind down instead of grinding on.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceMgr &SM) : SM(SM) {}

  void error(SourceLoc Loc, std::string Message) {
    if (errorLimitReached()) {
      ++NumSuppressed;
      return;
    }
    Diags.push_back({DiagLevel::Error, Loc, std::move(Message)});
    ++NumErrors;
    // Announce the cut the moment the cap is reached — phases poll
    // errorLimitReached() and wind down, so a later error() call that
    // could carry the note may never come.
    if (errorLimitReached() && !LimitNoteEmitted) {
      LimitNoteEmitted = true;
      Diags.push_back({DiagLevel::Note, SourceLoc(),
                       "too many errors emitted, stopping now "
                       "(raise the cap with --max-errors)"});
    }
  }
  void warning(SourceLoc Loc, std::string Message) {
    if (errorLimitReached()) {
      ++NumSuppressed;
      return;
    }
    Diags.push_back({DiagLevel::Warning, Loc, std::move(Message)});
    ++NumWarnings;
  }
  void note(SourceLoc Loc, std::string Message) {
    if (errorLimitReached())
      return;
    Diags.push_back({DiagLevel::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned getNumErrors() const { return NumErrors; }
  unsigned getNumWarnings() const { return NumWarnings; }
  unsigned getNumSuppressed() const { return NumSuppressed; }

  /// The shared error cap. 0 means unlimited. Applies to every phase that
  /// reports through this engine.
  void setMaxErrors(unsigned N) { MaxErrors = N; }
  unsigned getMaxErrors() const { return MaxErrors; }

  /// True once the error cap has been hit: phases should stop producing
  /// new work (and new diagnostics are dropped, not stored).
  bool errorLimitReached() const {
    return MaxErrors != 0 && NumErrors >= MaxErrors;
  }

  const std::vector<Diagnostic> &getDiagnostics() const { return Diags; }

  /// Returns the message of the first error, or "" if none. Convenient for
  /// tests asserting on a particular failure.
  std::string getFirstErrorMessage() const;

  /// Pretty-prints every diagnostic with source context to \p OS.
  void printAll(std::ostream &OS) const;

  /// Drops all collected diagnostics and resets the counters.
  void clear() {
    Diags.clear();
    NumErrors = NumWarnings = NumSuppressed = 0;
    LimitNoteEmitted = false;
  }

  const SourceMgr &getSourceMgr() const { return SM; }

private:
  const SourceMgr &SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
  unsigned NumSuppressed = 0; ///< Diagnostics dropped past the error cap.
  bool LimitNoteEmitted = false;
  /// Shared error cap (0 = unlimited). 50 matches the elaboration
  /// interpreter's historical private cap, now pipeline-wide.
  unsigned MaxErrors = 50;
};

} // namespace liberty

#endif // LIBERTY_SUPPORT_DIAGNOSTICS_H
