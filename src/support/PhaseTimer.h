//===- PhaseTimer.h - Per-phase compile-time observability ------*- C++ -*-===//
///
/// \file
/// Records wall time and named counters for each compiler phase (parse,
/// elaborate, constraint-gen, solve, sim-build, ...). Phases with the same
/// name accumulate, so calling a phase repeatedly (e.g. parsing several
/// buffers) yields one row. The recorded data is what `lssc --stats-json`
/// serializes; printJson emits it as a stable JSON document.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SUPPORT_PHASETIMER_H
#define LIBERTY_SUPPORT_PHASETIMER_H

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace liberty {

class PhaseTimer {
public:
  struct Counter {
    std::string Name;
    uint64_t Value = 0;
  };

  struct Phase {
    std::string Name;
    double WallMs = 0.0;
    std::vector<Counter> Counters;
  };

  /// RAII scope that accumulates its lifetime into the named phase. A null
  /// timer makes the scope a no-op, so callers can thread an optional
  /// timer without branching.
  class Scope {
  public:
    Scope(PhaseTimer *Timer, const std::string &Name)
        : Timer(Timer), Name(Name),
          Start(std::chrono::steady_clock::now()) {}
    ~Scope() {
      if (Timer)
        Timer->addWallTime(Name, elapsedMs());
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    double elapsedMs() const {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
          .count();
    }

  private:
    PhaseTimer *Timer;
    std::string Name;
    std::chrono::steady_clock::time_point Start;
  };

  /// Returns the phase named \p Name, creating it (at the end of the
  /// phase list) on first use.
  Phase &getOrCreatePhase(const std::string &Name);

  /// Accumulates \p Ms of wall time into phase \p Name.
  void addWallTime(const std::string &Name, double Ms);

  /// Sets (or overwrites) counter \p Counter on phase \p Name.
  void setCounter(const std::string &Name, const std::string &Counter,
                  uint64_t Value);

  const std::vector<Phase> &getPhases() const { return Phases; }
  const Phase *findPhase(const std::string &Name) const;

  /// Total wall time across all recorded phases.
  double totalWallMs() const;

  /// Human-readable table, one phase per line.
  void print(std::ostream &OS) const;

  /// The phases as a JSON array: [{"name":..,"wall_ms":..,counters...}].
  void printJson(std::ostream &OS) const;

  void clear() { Phases.clear(); }

private:
  std::vector<Phase> Phases;
};

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

} // namespace liberty

#endif // LIBERTY_SUPPORT_PHASETIMER_H
