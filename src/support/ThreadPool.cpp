//===- ThreadPool.cpp - Minimal thread pool ----------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace liberty;

unsigned ThreadPool::getHardwareParallelism() {
  return std::max(1u, std::thread::hardware_concurrency());
}

namespace {
/// Set once per worker thread at startup; -1 on threads no pool owns.
thread_local int CurrentWorker = -1;
} // namespace

int ThreadPool::currentWorkerIndex() { return CurrentWorker; }

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = getHardwareParallelism();
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I != ThreadCount; ++I)
    Workers.emplace_back(
        [this, I](std::stop_token Stop) { workerLoop(Stop, I); });
}

ThreadPool::~ThreadPool() {
  // Cancel-before-wait makes teardown deterministic: a task either ran to
  // completion before destruction began or never starts. The old order
  // (drain everything, then stop) let an error path that destroyed the
  // pool with work still queued race the workers through a suffix of
  // tasks whose state was already being torn down.
  cancelPending();
  wait();
  for (std::jthread &W : Workers)
    W.request_stop();
  WorkAvailable.notify_all();
  // ~jthread joins each worker.
}

void ThreadPool::async(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
    ++Outstanding;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Outstanding == 0; });
}

size_t ThreadPool::cancelPending() {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Dropped = Queue.size();
  Queue.clear();
  Outstanding -= unsigned(Dropped);
  if (Dropped && Outstanding == 0)
    AllDone.notify_all();
  return Dropped;
}

void ThreadPool::workerLoop(std::stop_token Stop, unsigned Index) {
  CurrentWorker = int(Index);
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, Stop, [this] { return !Queue.empty(); });
      if (Queue.empty())
        return; // Stop requested and nothing left to run.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Outstanding == 0)
        AllDone.notify_all();
    }
  }
}
