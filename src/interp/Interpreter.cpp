//===- Interpreter.cpp - Compile-time LSS elaboration -----------------------===//

#include "interp/Interpreter.h"

#include "interp/ExprEvaluator.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>

using namespace liberty;
using namespace liberty::interp;
using namespace liberty::lss;

Interpreter::Interpreter(types::TypeContext &TC, DiagnosticEngine &Diags)
    : TC(TC), Diags(Diags) {}

Interpreter::Interpreter(types::TypeContext &TC, DiagnosticEngine &Diags,
                         Options Opts)
    : TC(TC), Diags(Diags), Opts(Opts) {}

void Interpreter::addModules(const SpecFile &File) {
  for (ModuleDecl *M : File.Modules) {
    auto [It, Inserted] = ModuleTable.emplace(M->getName(), M);
    if (!Inserted) {
      Diags.error(M->getLoc(),
                  "redefinition of module '" + M->getName() + "'");
      continue;
    }
    ModuleOrder.push_back(M);
  }
}

const ModuleDecl *Interpreter::lookupModule(const std::string &Name) const {
  auto It = ModuleTable.find(Name);
  return It == ModuleTable.end() ? nullptr : It->second;
}

Value *Interpreter::Env::lookup(const std::string &Name) {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  return nullptr;
}

bool Interpreter::aborted() {
  if (Aborted)
    return true;
  if (Steps > Opts.MaxSteps) {
    Diags.error(SourceLoc(), "elaboration step limit exceeded; "
                             "non-terminating compile-time loop?");
    Aborted = true;
  } else if (Diags.errorLimitReached()) {
    // Shared --max-errors cap: stop elaborating new instances; the engine
    // has already noted the cut for the user.
    Aborted = true;
  }
  return Aborted;
}

std::unique_ptr<netlist::Netlist>
Interpreter::run(const std::vector<Stmt *> &TopLevel) {
  auto Result = std::make_unique<netlist::Netlist>();
  NL = Result.get();
  InstStack.clear();
  BodyWindows.clear();
  ProcessingOrder.clear();

  // Evaluates (or replays) one body, recording its connection/diagnostic
  // creation window. Windows are recorded uniformly for evaluated and
  // replayed bodies so an incremental compile can re-serialize a complete
  // dependency artifact afterwards.
  auto RunBody = [&](netlist::InstanceNode *Node,
                     const std::vector<Stmt *> &Body) {
    BodyWindow W;
    W.ConnBegin = uint32_t(NL->getConnections().size());
    W.DiagBegin = uint32_t(Diags.getDiagnostics().size());
    if (Replay && Replay(Node))
      ProcessingOrder.push_back(Node->Path.empty() ? "<top>" : Node->Path);
    else
      evalBody(Node, Body);
    W.ConnEnd = uint32_t(NL->getConnections().size());
    W.DiagEnd = uint32_t(Diags.getDiagnostics().size());
    BodyWindows.emplace_back(Node, W);
  };

  // The top level is the body of the synthetic root instance.
  RunBody(NL->getRoot(), TopLevel);

  // Pop and evaluate deferred instance bodies (LIFO, Section 6.2).
  while (!InstStack.empty() && !aborted()) {
    netlist::InstanceNode *Node = InstStack.back();
    InstStack.pop_back();
    assert(Node->Module && "deferred instance without a module");
    RunBody(Node, Node->Module->getBody());
  }

  NL = nullptr;
  return Result;
}

netlist::InstanceNode *Interpreter::replayChild(netlist::InstanceNode *Parent,
                                                const std::string &Name,
                                                const std::string &ModuleName,
                                                SourceLoc Loc) {
  const ModuleDecl *M = lookupModule(ModuleName);
  if (!M)
    return nullptr; // Caller aborts the replay; a cold compile diagnoses.
  if (++NumInstances > Opts.MaxInstances) {
    if (!Aborted)
      Diags.error(Loc, "instance limit exceeded");
    Aborted = true;
    return nullptr;
  }
  netlist::InstanceNode *Child = NL->createInstance(Parent, Name, M, Loc);
  InstStack.push_back(Child);
  return Child;
}

void Interpreter::evalBody(netlist::InstanceNode *Node,
                           const std::vector<Stmt *> &Body) {
  ProcessingOrder.push_back(Node->Path.empty() ? "<top>" : Node->Path);

  BodyState BS;
  BS.Node = Node;
  BS.E.push();

  for (const Stmt *S : Body) {
    if (aborted())
      return;
    Flow F = execStmt(BS, S);
    if (F != Flow::Normal) {
      Diags.error(S->getLoc(), "break/continue outside of a loop");
      return;
    }
  }

  Node->NumTypeVars = BS.VarMap.size();

  // A-context leftovers: the paper's check that no assignments or
  // connections were made to non-existent parameters or ports (A = Ø).
  for (netlist::PendingAssign &PA : Node->APendingAssigns) {
    if (PA.Consumed)
      continue;
    // The system userpoints init/end_of_timestep exist on every module
    // without declaration (Section 4.3).
    if ((PA.Field == "init" || PA.Field == "end_of_timestep") &&
        PA.V.isString()) {
      netlist::UserpointValue UV;
      UV.Sig = nullptr;
      UV.Code = PA.V.getString();
      UV.Loc = PA.Loc;
      Node->Userpoints[PA.Field] = std::move(UV);
      PA.Consumed = true;
      continue;
    }
    Diags.error(PA.Loc, "no parameter named '" + PA.Field + "' on module '" +
                            (Node->Module ? Node->Module->getName() : "?") +
                            "' (instance '" + Node->Path + "')");
  }
  for (netlist::PendingConn &PC : Node->APendingConns) {
    if (PC.Consumed)
      continue;
    Diags.error(PC.Loc, "no port named '" + PC.Port + "' on module '" +
                            (Node->Module ? Node->Module->getName() : "?") +
                            "' (instance '" + Node->Path + "')");
  }
}

Interpreter::Flow Interpreter::execBlockBody(BodyState &BS,
                                             const std::vector<Stmt *> &Body) {
  BS.E.push();
  Flow Result = Flow::Normal;
  for (const Stmt *S : Body) {
    if (aborted())
      break;
    Result = execStmt(BS, S);
    if (Result != Flow::Normal)
      break;
  }
  BS.E.pop();
  return Result;
}

Interpreter::Flow Interpreter::execStmt(BodyState &BS, const Stmt *S) {
  ++Steps;
  switch (S->getKind()) {
  case Stmt::Kind::ParamDecl:
    execParamDecl(BS, cast<ParamDeclStmt>(S));
    return Flow::Normal;
  case Stmt::Kind::PortDecl:
    execPortDecl(BS, cast<PortDeclStmt>(S));
    return Flow::Normal;
  case Stmt::Kind::InstanceDecl:
    execInstanceDecl(BS, cast<InstanceDeclStmt>(S));
    return Flow::Normal;
  case Stmt::Kind::VarDecl:
    execVarDecl(BS, cast<VarDeclStmt>(S));
    return Flow::Normal;
  case Stmt::Kind::EventDecl:
    BS.Node->Events.push_back(cast<EventDeclStmt>(S)->getName());
    return Flow::Normal;
  case Stmt::Kind::Constrain: {
    const auto *C = cast<ConstrainStmt>(S);
    const types::Type *Var;
    auto It = BS.VarMap.find(C->getVarName());
    if (It != BS.VarMap.end()) {
      Var = It->second;
    } else {
      Var = TC.freshVar(C->getVarName());
      BS.VarMap.emplace(C->getVarName(), Var);
    }
    const types::Type *Scheme = convertType(BS, C->getScheme());
    if (Scheme)
      BS.Node->ExtraConstraints.emplace_back(Var, Scheme);
    return Flow::Normal;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    Value CondV = evalExpr(BS, I->getCond());
    std::optional<bool> Cond = asCondition(CondV, I->getCond()->getLoc(), Diags);
    if (!Cond)
      return Flow::Normal;
    if (*Cond)
      return execStmt(BS, I->getThen());
    if (I->getElse())
      return execStmt(BS, I->getElse());
    return Flow::Normal;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    BS.E.push();
    if (F->getInit())
      execStmt(BS, F->getInit());
    while (!aborted()) {
      ++Steps;
      if (F->getCond()) {
        Value CondV = evalExpr(BS, F->getCond());
        std::optional<bool> Cond =
            asCondition(CondV, F->getCond()->getLoc(), Diags);
        if (!Cond || !*Cond)
          break;
      }
      Flow BodyFlow = execStmt(BS, F->getBody());
      if (BodyFlow == Flow::Break)
        break;
      if (F->getStep())
        execStmt(BS, F->getStep());
    }
    BS.E.pop();
    return Flow::Normal;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    while (!aborted()) {
      ++Steps;
      Value CondV = evalExpr(BS, W->getCond());
      std::optional<bool> Cond =
          asCondition(CondV, W->getCond()->getLoc(), Diags);
      if (!Cond || !*Cond)
        break;
      Flow BodyFlow = execStmt(BS, W->getBody());
      if (BodyFlow == Flow::Break)
        break;
    }
    return Flow::Normal;
  }
  case Stmt::Kind::Block:
    return execBlockBody(BS, cast<BlockStmt>(S)->getBody());
  case Stmt::Kind::Assign:
    execAssign(BS, cast<AssignStmt>(S));
    return Flow::Normal;
  case Stmt::Kind::Connect:
    execConnect(BS, cast<ConnectStmt>(S));
    return Flow::Normal;
  case Stmt::Kind::ExprStmt:
    evalExpr(BS, cast<ExprStmt>(S)->getExpr());
    return Flow::Normal;
  case Stmt::Kind::Return:
    Diags.error(S->getLoc(),
                "'return' is only valid inside BSL userpoint code");
    return Flow::Normal;
  case Stmt::Kind::Break:
    return Flow::Break;
  case Stmt::Kind::Continue:
    return Flow::Continue;
  }
  return Flow::Normal;
}

const types::Type *Interpreter::convertType(BodyState &BS,
                                            const TypeExpr *TE) {
  auto EvalSize = [&](const Expr *E) -> std::optional<int64_t> {
    Value V = evalExpr(BS, const_cast<Expr *>(E));
    if (!V.isInt())
      return std::nullopt;
    return V.getInt();
  };
  return TC.convert(TE, BS.VarMap, EvalSize, Diags);
}

void Interpreter::execParamDecl(BodyState &BS, const ParamDeclStmt *S) {
  netlist::InstanceNode *Node = BS.Node;
  const std::string &Name = S->getName();
  if (!BS.DeclaredParams.insert(Name).second) {
    Diags.error(S->getLoc(), "redeclaration of parameter '" + Name + "'");
    return;
  }

  // Consult the A context for a use-site value (use-based specialization:
  // the parameter value arrives from the instantiating body).
  const Value *UseValue = nullptr;
  SourceLoc UseLoc;
  for (netlist::PendingAssign &PA : Node->APendingAssigns) {
    if (PA.Field != Name)
      continue;
    if (UseValue)
      Diags.warning(PA.Loc, "parameter '" + Name + "' assigned more than "
                            "once; the last assignment wins");
    PA.Consumed = true;
    UseValue = &PA.V;
    UseLoc = PA.Loc;
  }

  if (S->isUserpoint()) {
    netlist::UserpointValue UV;
    UV.Sig = S->getUserpointSig();
    UV.Loc = S->getLoc();
    if (UseValue) {
      if (!UseValue->isString()) {
        Diags.error(UseLoc, "userpoint parameter '" + Name +
                                "' requires a BSL code string");
        return;
      }
      UV.Code = UseValue->getString();
    } else if (S->getDefault()) {
      Value Def = evalExpr(BS, S->getDefault());
      if (!Def.isString()) {
        Diags.error(S->getLoc(), "default of userpoint parameter '" + Name +
                                     "' must be a BSL code string");
        return;
      }
      UV.Code = Def.getString();
      UV.IsDefault = true;
    } else {
      Diags.error(S->getLoc(),
                  "userpoint parameter '" + Name + "' on instance '" +
                      Node->Path + "' has no value and no default");
      return;
    }
    // The code string is also visible in the body so it can be forwarded
    // to sub-instance userpoints (Figure 12, line 10).
    BS.E.define(Name, Value::makeString(UV.Code));
    Node->Userpoints[Name] = std::move(UV);
    return;
  }

  const types::Type *DeclTy = convertType(BS, S->getType());
  if (!DeclTy)
    return;

  Value V;
  if (UseValue) {
    V = *UseValue;
  } else if (S->getDefault()) {
    V = evalExpr(BS, S->getDefault());
  } else {
    Diags.error(S->getLoc(), "parameter '" + Name + "' on instance '" +
                                 Node->Path + "' has no value and no default");
    return;
  }
  if (!V.conformsTo(DeclTy)) {
    Diags.error(UseValue ? UseLoc : S->getLoc(),
                "value " + V.str() + " does not match type " + DeclTy->str() +
                    " of parameter '" + Name + "'");
    return;
  }
  BS.E.define(Name, V);
  Node->Params[Name] = std::move(V);
}

/// Fills in a connection endpoint and checks direction legality for a
/// child-port endpoint resolved during the child's own port declaration.
static void resolveChildEndpoint(netlist::PendingConn &PC,
                                 netlist::InstanceNode *Node,
                                 const netlist::Port &P, int Index,
                                 DiagnosticEngine &Diags) {
  // The From side of a connection carries data out of the child; the To
  // side carries data in.
  if (PC.IsFrom && P.isInput())
    Diags.error(PC.Loc, "inport '" + P.Name + "' of instance '" + Node->Path +
                            "' cannot be a connection source");
  if (!PC.IsFrom && !P.isInput())
    Diags.error(PC.Loc, "outport '" + P.Name + "' of instance '" +
                            Node->Path + "' cannot be a connection target");
  netlist::PortRef &Ref = PC.IsFrom ? PC.Conn->From : PC.Conn->To;
  Ref.Inst = Node;
  Ref.Port = P.Name;
  Ref.Index = Index;
  PC.Consumed = true;
}

void Interpreter::execPortDecl(BodyState &BS, const PortDeclStmt *S) {
  netlist::InstanceNode *Node = BS.Node;
  const std::string &Name = S->getName();
  if (!BS.DeclaredPorts.insert(Name).second) {
    Diags.error(S->getLoc(), "redeclaration of port '" + Name + "'");
    return;
  }

  netlist::Port P;
  P.Name = Name;
  P.Dir = S->isInput() ? netlist::PortDirection::In
                       : netlist::PortDirection::Out;
  P.Loc = S->getLoc();
  P.AnnotationTE = S->getType();
  P.Scheme = convertType(BS, S->getType());

  // Consume the A context's recorded connections to this port, assigning
  // port-instance indices: explicit indices are honored, unindexed
  // connections get the next free slot (Section 4.2).
  std::set<int> Used;
  int MaxIdx = -1;
  // First pass: explicit indices.
  for (netlist::PendingConn &PC : Node->APendingConns) {
    if (PC.Port != Name || PC.Consumed || PC.ExplicitIndex < 0)
      continue;
    // Repeating an explicit index is fan-out for an outport (one driver,
    // many readers) but multiple drivers for an inport.
    if (!Used.insert(PC.ExplicitIndex).second && P.isInput())
      Diags.warning(PC.Loc, "inport instance " + Name + "[" +
                                std::to_string(PC.ExplicitIndex) +
                                "] connected more than once");
    MaxIdx = std::max(MaxIdx, PC.ExplicitIndex);
    resolveChildEndpoint(PC, Node, P, PC.ExplicitIndex, Diags);
  }
  // Second pass: inferred indices.
  int Cursor = 0;
  for (netlist::PendingConn &PC : Node->APendingConns) {
    if (PC.Port != Name || PC.Consumed)
      continue;
    while (Used.count(Cursor))
      ++Cursor;
    Used.insert(Cursor);
    MaxIdx = std::max(MaxIdx, Cursor);
    resolveChildEndpoint(PC, Node, P, Cursor, Diags);
  }

  P.Width = MaxIdx + 1;
  P.WidthInferred = true;
  Node->Ports.push_back(P);

  // The port name is visible in the body; `name.width` reads the inferred
  // width like any other parameter.
  PortHandle H;
  H.Inst = Node;
  H.Port = Name;
  H.OnSelf = true;
  BS.E.define(Name, Value::makePort(H));
}

void Interpreter::execInstanceDecl(BodyState &BS, const InstanceDeclStmt *S) {
  if (BS.E.lookup(S->getName())) {
    Diags.error(S->getLoc(), "redefinition of name '" + S->getName() + "'");
    return;
  }
  netlist::InstanceNode *Child =
      makeInstance(BS, S->getName(), S->getModuleName(), S->getLoc());
  if (!Child)
    return;
  BS.E.define(S->getName(), Value::makeInstanceRef(Child));
}

netlist::InstanceNode *Interpreter::makeInstance(BodyState &BS,
                                                 const std::string &Name,
                                                 const std::string &ModuleName,
                                                 SourceLoc Loc) {
  const ModuleDecl *M = lookupModule(ModuleName);
  if (!M) {
    Diags.error(Loc, "unknown module '" + ModuleName + "'");
    return nullptr;
  }
  if (++NumInstances > Opts.MaxInstances) {
    if (!Aborted)
      Diags.error(Loc, "instance limit exceeded");
    Aborted = true;
    return nullptr;
  }
  netlist::InstanceNode *Child = NL->createInstance(BS.Node, Name, M, Loc);
  InstStack.push_back(Child);
  return Child;
}

void Interpreter::execVarDecl(BodyState &BS, const VarDeclStmt *S) {
  if (S->isRuntime()) {
    // Runtime variables are simulation state (Section 4.3): evaluate the
    // initializer now, but expose the name only to BSL code.
    netlist::RuntimeVar RV;
    RV.Name = S->getName();
    RV.Loc = S->getLoc();
    if (S->getInit()) {
      RV.Init = evalExpr(BS, S->getInit());
      if (!RV.Init.isData()) {
        Diags.error(S->getLoc(), "runtime variable initializer must be a "
                                 "data value");
        return;
      }
    } else {
      RV.Init = Value::makeInt(0);
    }
    BS.Node->RuntimeVars.push_back(std::move(RV));
    return;
  }

  Value V;
  if (S->getInit()) {
    V = evalExpr(BS, S->getInit());
  } else {
    // Default-initialize by declared type where that makes sense.
    const TypeExpr *TE = S->getType();
    if (isa<InstanceRefTypeExpr>(TE)) {
      V = Value(); // Unset until assigned.
    } else if (const auto *ATE = dyn_cast<ArrayTypeExpr>(TE)) {
      (void)ATE;
      V = Value::makeArray({});
    } else if (const auto *BTE = dyn_cast<BasicTypeExpr>(TE)) {
      switch (BTE->getBasicKind()) {
      case BasicTypeExpr::Basic::Int:
        V = Value::makeInt(0);
        break;
      case BasicTypeExpr::Basic::Bool:
        V = Value::makeBool(false);
        break;
      case BasicTypeExpr::Basic::Float:
        V = Value::makeFloat(0.0);
        break;
      case BasicTypeExpr::Basic::String:
        V = Value::makeString("");
        break;
      }
    } else {
      V = Value();
    }
  }
  BS.E.define(S->getName(), std::move(V));
}

void Interpreter::execAssign(BodyState &BS, const AssignStmt *S) {
  Value RHS = evalExpr(BS, S->getRHS());

  // Case 1: plain identifier.
  if (const auto *Id = dyn_cast<IdentExpr>(S->getLHS())) {
    if (Value *Slot = BS.E.lookup(Id->getName())) {
      if (Slot->isPort()) {
        Diags.error(S->getLoc(),
                    "cannot assign to port '" + Id->getName() + "'");
        return;
      }
      *Slot = std::move(RHS);
      return;
    }
    // Undeclared identifier: defines an internal parameter / new variable.
    // tar_file is the distinguished internal parameter naming the leaf
    // behavior (Figure 5, line 6).
    if (Id->getName() == "tar_file") {
      if (!RHS.isString()) {
        Diags.error(S->getLoc(), "tar_file must be a string");
        return;
      }
      BS.Node->BehaviorId = RHS.getString();
      return;
    }
    BS.E.define(Id->getName(), std::move(RHS));
    return;
  }

  // Case 2: sub-instance field — record a potential parameter assignment
  // in the B context (consumed when the child's body runs).
  if (const auto *M = dyn_cast<MemberExpr>(S->getLHS())) {
    Value Base = evalExpr(BS, M->getBase());
    if (Base.isInstanceRef()) {
      netlist::InstanceNode *Child = Base.getInstance();
      if (Child->Parent != BS.Node) {
        Diags.error(S->getLoc(),
                    "can only parameterize direct sub-instances");
        return;
      }
      netlist::PendingAssign PA;
      PA.Field = M->getMember();
      PA.V = std::move(RHS);
      PA.Loc = S->getLoc();
      Child->APendingAssigns.push_back(std::move(PA));
      return;
    }
    // Fall through to struct-field lvalue below.
  }

  // Case 3: compound lvalue into local storage (array elem, struct field).
  if (Value *Slot = resolveLValue(BS, S->getLHS())) {
    *Slot = std::move(RHS);
    return;
  }
  Diags.error(S->getLoc(), "invalid assignment target");
}

Value *Interpreter::resolveLValue(BodyState &BS, const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::Ident: {
    return BS.E.lookup(cast<IdentExpr>(E)->getName());
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    Value *Base = resolveLValue(BS, I->getBase());
    if (!Base || !Base->isArray())
      return nullptr;
    Value Idx = evalExpr(BS, I->getIndex());
    if (!Idx.isInt())
      return nullptr;
    auto &Elems = Base->getElemsMutable();
    int64_t N = Idx.getInt();
    if (N < 0 || N >= static_cast<int64_t>(Elems.size())) {
      Diags.error(E->getLoc(), "array index " + std::to_string(N) +
                                   " out of bounds (size " +
                                   std::to_string(Elems.size()) + ")");
      return nullptr;
    }
    return &Elems[N];
  }
  case Expr::Kind::Member: {
    const auto *M = cast<MemberExpr>(E);
    Value *Base = resolveLValue(BS, M->getBase());
    if (!Base || !Base->isStruct())
      return nullptr;
    Value *Field = Base->getFieldMutable(M->getMember());
    if (!Field)
      Diags.error(E->getLoc(), "no field named '" + M->getMember() + "'");
    return Field;
  }
  default:
    return nullptr;
  }
}

void Interpreter::execConnect(BodyState &BS, const ConnectStmt *S) {
  Value FromV = evalExpr(BS, S->getFrom());
  Value ToV = evalExpr(BS, S->getTo());
  if (!FromV.isPort() || !ToV.isPort()) {
    if (!FromV.isUnset() && !ToV.isUnset())
      Diags.error(S->getLoc(), "both sides of '->' must be ports");
    return;
  }
  makeConnection(BS, FromV.getPort(), ToV.getPort(), S->getAnnotation(),
                 S->getLoc());
}

void Interpreter::makeConnection(BodyState &BS, const PortHandle &From,
                                 const PortHandle &To,
                                 const TypeExpr *Annotation, SourceLoc Loc) {
  netlist::Connection *Conn = NL->createConnection(Loc);
  if (Annotation)
    Conn->Annotation = convertType(BS, Annotation);

  auto HandleEndpoint = [&](const PortHandle &H, bool IsFrom) {
    if (H.OnSelf) {
      resolveSelfEndpoint(BS, Conn, IsFrom, H, Loc);
      return;
    }
    netlist::PendingConn PC;
    PC.Conn = Conn;
    PC.IsFrom = IsFrom;
    PC.Port = H.Port;
    PC.ExplicitIndex = H.Index;
    PC.Loc = Loc;
    H.Inst->APendingConns.push_back(std::move(PC));
  };
  HandleEndpoint(From, /*IsFrom=*/true);
  HandleEndpoint(To, /*IsFrom=*/false);
}

void Interpreter::resolveSelfEndpoint(BodyState &BS,
                                      netlist::Connection *Conn, bool IsFrom,
                                      const PortHandle &H, SourceLoc Loc) {
  netlist::Port *P = BS.Node->findPort(H.Port);
  if (!P) {
    Diags.error(Loc, "use of undeclared port '" + H.Port + "'");
    return;
  }
  // Inside a module body, the module's own inport sources data into the
  // interior and its own outport sinks data from the interior.
  if (IsFrom && !P->isInput())
    Diags.error(Loc, "own outport '" + H.Port +
                         "' cannot source an internal connection");
  if (!IsFrom && P->isInput())
    Diags.error(Loc, "own inport '" + H.Port +
                         "' cannot be the target of an internal connection");
  int Index = H.Index;
  if (Index < 0)
    Index = BS.SelfPortAutoIdx[H.Port]++;
  netlist::PortRef &Ref = IsFrom ? Conn->From : Conn->To;
  Ref.Inst = BS.Node;
  Ref.Port = H.Port;
  Ref.Index = Index;
}

Value Interpreter::evalExpr(BodyState &BS, const Expr *E) {
  ++Steps;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return Value::makeInt(cast<IntLitExpr>(E)->getValue());
  case Expr::Kind::FloatLit:
    return Value::makeFloat(cast<FloatLitExpr>(E)->getValue());
  case Expr::Kind::StringLit:
    return Value::makeString(cast<StringLitExpr>(E)->getValue());
  case Expr::Kind::BoolLit:
    return Value::makeBool(cast<BoolLitExpr>(E)->getValue());
  case Expr::Kind::Ident: {
    const auto *Id = cast<IdentExpr>(E);
    if (Value *V = BS.E.lookup(Id->getName()))
      return *V;
    Diags.error(E->getLoc(), "use of undefined name '" + Id->getName() + "'");
    return Value();
  }
  case Expr::Kind::Member: {
    const auto *M = cast<MemberExpr>(E);
    Value Base = evalExpr(BS, M->getBase());
    if (Base.isPort()) {
      const PortHandle &H = Base.getPort();
      if (M->getMember() == "width") {
        if (!H.OnSelf) {
          Diags.error(E->getLoc(), "a port's width is only available inside "
                                   "its own module body");
          return Value();
        }
        const netlist::Port *P = BS.Node->findPort(H.Port);
        assert(P && "self port handle without declared port");
        return Value::makeInt(P->Width);
      }
      Diags.error(E->getLoc(),
                  "unknown port attribute '" + M->getMember() + "'");
      return Value();
    }
    if (Base.isInstanceRef()) {
      // A sub-instance member in expression position denotes one of its
      // ports (whose existence is verified when the child's body runs).
      PortHandle H;
      H.Inst = Base.getInstance();
      H.Port = M->getMember();
      H.OnSelf = false;
      return Value::makePort(std::move(H));
    }
    if (Base.isStruct()) {
      if (const Value *F = Base.getField(M->getMember()))
        return *F;
      Diags.error(E->getLoc(), "no field named '" + M->getMember() + "'");
      return Value();
    }
    if (!Base.isUnset())
      Diags.error(E->getLoc(), "cannot access member '" + M->getMember() +
                                   "' of " + Base.str());
    return Value();
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    Value Base = evalExpr(BS, I->getBase());
    Value Idx = evalExpr(BS, I->getIndex());
    if (!Idx.isInt()) {
      if (!Idx.isUnset())
        Diags.error(I->getIndex()->getLoc(), "index must be an int");
      return Value();
    }
    int64_t N = Idx.getInt();
    if (Base.isArray()) {
      const auto &Elems = Base.getElems();
      if (N < 0 || N >= static_cast<int64_t>(Elems.size())) {
        Diags.error(E->getLoc(), "array index " + std::to_string(N) +
                                     " out of bounds (size " +
                                     std::to_string(Elems.size()) + ")");
        return Value();
      }
      return Elems[N];
    }
    if (Base.isPort()) {
      PortHandle H = Base.getPort();
      if (H.hasIndex()) {
        Diags.error(E->getLoc(), "port instance already selected");
        return Value();
      }
      if (N < 0) {
        Diags.error(E->getLoc(), "port instance index must be non-negative");
        return Value();
      }
      H.Index = static_cast<int>(N);
      return Value::makePort(std::move(H));
    }
    if (!Base.isUnset())
      Diags.error(E->getLoc(), "cannot index " + Base.str());
    return Value();
  }
  case Expr::Kind::Call:
    return evalCall(BS, cast<CallExpr>(E));
  case Expr::Kind::NewInstanceArray: {
    const auto *N = cast<NewInstanceArrayExpr>(E);
    Value SizeV = evalExpr(BS, N->getSizeExpr());
    Value NameV = evalExpr(BS, N->getNameExpr());
    if (!SizeV.isInt() || SizeV.getInt() < 0) {
      Diags.error(E->getLoc(), "instance array size must be a non-negative "
                               "int");
      return Value();
    }
    if (!NameV.isString()) {
      Diags.error(E->getLoc(), "instance array base name must be a string");
      return Value();
    }
    std::vector<Value> Refs;
    int64_t Count = SizeV.getInt();
    Refs.reserve(Count);
    for (int64_t I = 0; I != Count; ++I) {
      std::string Name =
          NameV.getString() + "[" + std::to_string(I) + "]";
      netlist::InstanceNode *Child =
          makeInstance(BS, Name, N->getModuleName(), E->getLoc());
      if (!Child)
        return Value();
      Refs.push_back(Value::makeInstanceRef(Child));
    }
    return Value::makeArray(std::move(Refs));
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Value A = evalExpr(BS, U->getOperand());
    if (A.isUnset())
      return Value();
    return applyUnary(U->getOp(), A, E->getLoc(), Diags);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Value L = evalExpr(BS, B->getLHS());
    if (L.isUnset())
      return Value();
    // Short-circuit evaluation for the logical operators.
    if (B->getOp() == BinaryOp::And && L.isBool() && !L.getBool())
      return Value::makeBool(false);
    if (B->getOp() == BinaryOp::Or && L.isBool() && L.getBool())
      return Value::makeBool(true);
    Value R = evalExpr(BS, B->getRHS());
    if (R.isUnset())
      return Value();
    return applyBinary(B->getOp(), L, R, E->getLoc(), Diags);
  }
  }
  return Value();
}

Value Interpreter::evalCall(BodyState &BS, const CallExpr *E) {
  std::vector<Value> Args;
  Args.reserve(E->getArgs().size());
  for (const Expr *Arg : E->getArgs())
    Args.push_back(evalExpr(BS, Arg));

  const std::string &Name = E->getCallee();

  if (Name == "LSS_connect_bus") {
    // LSS_connect_bus(x, y, z): for (i = 0; i < z; i++) x[i] -> y[i];
    // (Figure 10.)
    if (Args.size() != 3 || !Args[0].isPort() || !Args[1].isPort() ||
        !Args[2].isInt()) {
      Diags.error(E->getLoc(),
                  "LSS_connect_bus(from, to, width) expects two ports and "
                  "an int");
      return Value();
    }
    if (Args[0].getPort().hasIndex() || Args[1].getPort().hasIndex()) {
      Diags.error(E->getLoc(),
                  "LSS_connect_bus endpoints must be whole ports");
      return Value();
    }
    int64_t W = Args[2].getInt();
    for (int64_t I = 0; I != W; ++I) {
      PortHandle From = Args[0].getPort();
      PortHandle To = Args[1].getPort();
      From.Index = static_cast<int>(I);
      To.Index = static_cast<int>(I);
      makeConnection(BS, From, To, /*Annotation=*/nullptr, E->getLoc());
    }
    return Value();
  }
  if (Name == "LSS_assert") {
    if (Args.size() < 1 || Args.size() > 2 || !Args[0].isBool()) {
      Diags.error(E->getLoc(), "LSS_assert(cond [, message]) expects a bool");
      return Value();
    }
    if (!Args[0].getBool()) {
      std::string Msg = Args.size() == 2 && Args[1].isString()
                            ? Args[1].getString()
                            : "LSS_assert failed";
      Diags.error(E->getLoc(), "assertion failed on instance '" +
                                   BS.Node->Path + "': " + Msg);
    }
    return Value();
  }
  if (Name == "LSS_error") {
    std::string Msg = !Args.empty() && Args[0].isString()
                          ? Args[0].getString()
                          : "explicit error";
    Diags.error(E->getLoc(), Msg);
    return Value();
  }
  if (Name == "print") {
    std::string Line;
    for (const Value &V : Args)
      Line += V.isString() ? V.getString() : V.str();
    PrintLog.push_back(std::move(Line));
    return Value();
  }

  if (std::optional<Value> R =
          applyCommonBuiltin(Name, Args, E->getLoc(), Diags))
    return *R;

  Diags.error(E->getLoc(), "unknown function '" + Name + "'");
  return Value();
}
