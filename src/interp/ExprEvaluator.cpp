//===- ExprEvaluator.cpp - Shared value operations --------------------------===//

#include "interp/ExprEvaluator.h"

#include <cmath>
#include <cstdlib>

using namespace liberty;
using namespace liberty::interp;
using lss::BinaryOp;
using lss::UnaryOp;

static Value typeError(SourceLoc Loc, DiagnosticEngine &Diags,
                       const std::string &Msg) {
  Diags.error(Loc, Msg);
  return Value();
}

Value liberty::interp::applyBinary(BinaryOp Op, const Value &A, const Value &B,
                                   SourceLoc Loc, DiagnosticEngine &Diags) {
  const bool BothNumeric = (A.isInt() || A.isFloat()) &&
                           (B.isInt() || B.isFloat());
  const bool BothInt = A.isInt() && B.isInt();

  switch (Op) {
  case BinaryOp::Add:
    if (A.isString() && B.isString())
      return Value::makeString(A.getString() + B.getString());
    [[fallthrough]];
  case BinaryOp::Sub:
  case BinaryOp::Mul: {
    if (!BothNumeric)
      return typeError(Loc, Diags,
                       "arithmetic operands must be numeric, got " + A.str() +
                           " and " + B.str());
    if (BothInt) {
      int64_t X = A.getInt(), Y = B.getInt();
      switch (Op) {
      case BinaryOp::Add:
        return Value::makeInt(X + Y);
      case BinaryOp::Sub:
        return Value::makeInt(X - Y);
      default:
        return Value::makeInt(X * Y);
      }
    }
    double X = A.getNumeric(), Y = B.getNumeric();
    switch (Op) {
    case BinaryOp::Add:
      return Value::makeFloat(X + Y);
    case BinaryOp::Sub:
      return Value::makeFloat(X - Y);
    default:
      return Value::makeFloat(X * Y);
    }
  }
  case BinaryOp::Div:
  case BinaryOp::Rem: {
    if (!BothNumeric)
      return typeError(Loc, Diags, "arithmetic operands must be numeric");
    if (BothInt) {
      int64_t Y = B.getInt();
      if (Y == 0)
        return typeError(Loc, Diags, "division by zero");
      return Value::makeInt(Op == BinaryOp::Div ? A.getInt() / Y
                                                : A.getInt() % Y);
    }
    double Y = B.getNumeric();
    if (Op == BinaryOp::Rem)
      return Value::makeFloat(std::fmod(A.getNumeric(), Y));
    if (Y == 0.0)
      return typeError(Loc, Diags, "division by zero");
    return Value::makeFloat(A.getNumeric() / Y);
  }
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge: {
    double Cmp;
    if (BothNumeric)
      Cmp = A.getNumeric() - B.getNumeric();
    else if (A.isString() && B.isString())
      Cmp = static_cast<double>(A.getString().compare(B.getString()));
    else
      return typeError(Loc, Diags,
                       "comparison operands must both be numeric or string");
    switch (Op) {
    case BinaryOp::Lt:
      return Value::makeBool(Cmp < 0);
    case BinaryOp::Gt:
      return Value::makeBool(Cmp > 0);
    case BinaryOp::Le:
      return Value::makeBool(Cmp <= 0);
    default:
      return Value::makeBool(Cmp >= 0);
    }
  }
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    bool Equal;
    if (BothNumeric && !BothInt)
      Equal = A.getNumeric() == B.getNumeric();
    else
      Equal = A.equals(B);
    return Value::makeBool(Op == BinaryOp::Eq ? Equal : !Equal);
  }
  case BinaryOp::And:
  case BinaryOp::Or: {
    if (!A.isBool() || !B.isBool())
      return typeError(Loc, Diags, "logical operands must be bool");
    return Value::makeBool(Op == BinaryOp::And
                               ? (A.getBool() && B.getBool())
                               : (A.getBool() || B.getBool()));
  }
  }
  return Value();
}

Value liberty::interp::applyUnary(UnaryOp Op, const Value &A, SourceLoc Loc,
                                  DiagnosticEngine &Diags) {
  switch (Op) {
  case UnaryOp::Neg:
    if (A.isInt())
      return Value::makeInt(-A.getInt());
    if (A.isFloat())
      return Value::makeFloat(-A.getFloat());
    return typeError(Loc, Diags, "operand of unary '-' must be numeric");
  case UnaryOp::Not:
    if (A.isBool())
      return Value::makeBool(!A.getBool());
    return typeError(Loc, Diags, "operand of '!' must be bool");
  }
  return Value();
}

std::optional<Value>
liberty::interp::applyCommonBuiltin(const std::string &Name,
                                    const std::vector<Value> &Args,
                                    SourceLoc Loc, DiagnosticEngine &Diags) {
  auto RequireArgs = [&](unsigned N) {
    if (Args.size() == N)
      return true;
    Diags.error(Loc, Name + "() expects " + std::to_string(N) +
                         " argument(s), got " + std::to_string(Args.size()));
    return false;
  };

  if (Name == "min" || Name == "max") {
    if (!RequireArgs(2))
      return Value();
    const Value &A = Args[0], &B = Args[1];
    if (A.isInt() && B.isInt()) {
      int64_t X = A.getInt(), Y = B.getInt();
      return Value::makeInt(Name == "min" ? std::min(X, Y) : std::max(X, Y));
    }
    if ((A.isInt() || A.isFloat()) && (B.isInt() || B.isFloat())) {
      double X = A.getNumeric(), Y = B.getNumeric();
      return Value::makeFloat(Name == "min" ? std::min(X, Y)
                                            : std::max(X, Y));
    }
    Diags.error(Loc, Name + "() expects numeric arguments");
    return Value();
  }
  if (Name == "abs") {
    if (!RequireArgs(1))
      return Value();
    if (Args[0].isInt())
      return Value::makeInt(std::llabs(Args[0].getInt()));
    if (Args[0].isFloat())
      return Value::makeFloat(std::fabs(Args[0].getFloat()));
    Diags.error(Loc, "abs() expects a numeric argument");
    return Value();
  }
  if (Name == "len") {
    if (!RequireArgs(1))
      return Value();
    if (Args[0].isArray())
      return Value::makeInt(static_cast<int64_t>(Args[0].getElems().size()));
    if (Args[0].isString())
      return Value::makeInt(static_cast<int64_t>(Args[0].getString().size()));
    Diags.error(Loc, "len() expects an array or string");
    return Value();
  }
  if (Name == "str") {
    if (!RequireArgs(1))
      return Value();
    if (Args[0].isString())
      return Args[0];
    if (Args[0].isInt())
      return Value::makeString(std::to_string(Args[0].getInt()));
    return Value::makeString(Args[0].str());
  }
  if (Name == "int") {
    if (!RequireArgs(1))
      return Value();
    if (Args[0].isInt())
      return Args[0];
    if (Args[0].isFloat())
      return Value::makeInt(static_cast<int64_t>(Args[0].getFloat()));
    if (Args[0].isBool())
      return Value::makeInt(Args[0].getBool() ? 1 : 0);
    Diags.error(Loc, "int() cannot convert " + Args[0].str());
    return Value();
  }
  if (Name == "float") {
    if (!RequireArgs(1))
      return Value();
    if (Args[0].isFloat())
      return Args[0];
    if (Args[0].isInt())
      return Value::makeFloat(static_cast<double>(Args[0].getInt()));
    Diags.error(Loc, "float() cannot convert " + Args[0].str());
    return Value();
  }
  if (Name == "bit") {
    // bit(x, i) — bit i of integer x.
    if (!RequireArgs(2))
      return Value();
    if (!Args[0].isInt() || !Args[1].isInt() || Args[1].getInt() < 0 ||
        Args[1].getInt() > 62) {
      Diags.error(Loc, "bit(x, i) expects ints with 0 <= i <= 62");
      return Value();
    }
    return Value::makeInt((Args[0].getInt() >> Args[1].getInt()) & 1);
  }
  if (Name == "array") {
    // array(n, init) — an n-element array filled with init.
    if (!RequireArgs(2))
      return Value();
    if (!Args[0].isInt() || Args[0].getInt() < 0) {
      Diags.error(Loc, "array() size must be a non-negative int");
      return Value();
    }
    std::vector<Value> Elems(static_cast<size_t>(Args[0].getInt()), Args[1]);
    return Value::makeArray(std::move(Elems));
  }
  if (Name == "append") {
    if (!RequireArgs(2))
      return Value();
    if (!Args[0].isArray()) {
      Diags.error(Loc, "append() expects an array first argument");
      return Value();
    }
    std::vector<Value> Elems = Args[0].getElems();
    Elems.push_back(Args[1]);
    return Value::makeArray(std::move(Elems));
  }
  return std::nullopt;
}

std::optional<bool> liberty::interp::asCondition(const Value &V, SourceLoc Loc,
                                                 DiagnosticEngine &Diags) {
  if (V.isBool())
    return V.getBool();
  Diags.error(Loc, "condition must be a bool, got " + V.str());
  return std::nullopt;
}
