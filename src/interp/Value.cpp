//===- Value.cpp - LSS elaboration & simulation values ---------------------===//

#include "interp/Value.h"

#include "types/Type.h"

#include <cassert>
#include <sstream>

using namespace liberty;
using namespace liberty::interp;

Value Value::makeInt(int64_t V) {
  Value R;
  R.K = Kind::Int;
  R.IntVal = V;
  return R;
}

Value Value::makeBool(bool V) {
  Value R;
  R.K = Kind::Bool;
  R.BoolVal = V;
  return R;
}

Value Value::makeFloat(double V) {
  Value R;
  R.K = Kind::Float;
  R.FloatVal = V;
  return R;
}

Value Value::makeString(std::string V) {
  Value R;
  R.K = Kind::String;
  R.StrVal = std::move(V);
  return R;
}

Value Value::makeArray(std::vector<Value> Elems) {
  Value R;
  R.K = Kind::Array;
  R.Elems = std::move(Elems);
  return R;
}

Value Value::makeStruct(std::vector<std::pair<std::string, Value>> Fields) {
  Value R;
  R.K = Kind::Struct;
  R.Fields = std::move(Fields);
  return R;
}

Value Value::makeInstanceRef(netlist::InstanceNode *Inst) {
  Value R;
  R.K = Kind::InstanceRef;
  R.Inst = Inst;
  return R;
}

Value Value::makePort(PortHandle H) {
  Value R;
  R.K = Kind::Port;
  R.Handle = std::move(H);
  return R;
}

bool Value::isData() const {
  switch (K) {
  case Kind::Int:
  case Kind::Bool:
  case Kind::Float:
  case Kind::String:
  case Kind::Array:
  case Kind::Struct:
    return true;
  default:
    return false;
  }
}

int64_t Value::getInt() const {
  assert(K == Kind::Int && "not an int value");
  return IntVal;
}

bool Value::getBool() const {
  assert(K == Kind::Bool && "not a bool value");
  return BoolVal;
}

double Value::getFloat() const {
  assert(K == Kind::Float && "not a float value");
  return FloatVal;
}

double Value::getNumeric() const {
  assert((K == Kind::Int || K == Kind::Float) && "not a numeric value");
  return K == Kind::Int ? static_cast<double>(IntVal) : FloatVal;
}

const std::string &Value::getString() const {
  assert(K == Kind::String && "not a string value");
  return StrVal;
}

const std::vector<Value> &Value::getElems() const {
  assert(K == Kind::Array && "not an array value");
  return Elems;
}

std::vector<Value> &Value::getElemsMutable() {
  assert(K == Kind::Array && "not an array value");
  return Elems;
}

const std::vector<std::pair<std::string, Value>> &Value::getFields() const {
  assert(K == Kind::Struct && "not a struct value");
  return Fields;
}

std::vector<std::pair<std::string, Value>> &Value::getFieldsMutable() {
  assert(K == Kind::Struct && "not a struct value");
  return Fields;
}

const Value *Value::getField(const std::string &Name) const {
  assert(K == Kind::Struct && "not a struct value");
  for (const auto &[FieldName, FieldValue] : Fields)
    if (FieldName == Name)
      return &FieldValue;
  return nullptr;
}

Value *Value::getFieldMutable(const std::string &Name) {
  assert(K == Kind::Struct && "not a struct value");
  for (auto &[FieldName, FieldValue] : Fields)
    if (FieldName == Name)
      return &FieldValue;
  return nullptr;
}

netlist::InstanceNode *Value::getInstance() const {
  assert(K == Kind::InstanceRef && "not an instance reference");
  return Inst;
}

const PortHandle &Value::getPort() const {
  assert(K == Kind::Port && "not a port handle");
  return Handle;
}

PortHandle &Value::getPortMutable() {
  assert(K == Kind::Port && "not a port handle");
  return Handle;
}

bool Value::equals(const Value &Other) const {
  if (K != Other.K)
    return false;
  switch (K) {
  case Kind::Unset:
    return true;
  case Kind::Int:
    return IntVal == Other.IntVal;
  case Kind::Bool:
    return BoolVal == Other.BoolVal;
  case Kind::Float:
    return FloatVal == Other.FloatVal;
  case Kind::String:
    return StrVal == Other.StrVal;
  case Kind::Array: {
    if (Elems.size() != Other.Elems.size())
      return false;
    for (unsigned I = 0; I != Elems.size(); ++I)
      if (!Elems[I].equals(Other.Elems[I]))
        return false;
    return true;
  }
  case Kind::Struct: {
    if (Fields.size() != Other.Fields.size())
      return false;
    for (unsigned I = 0; I != Fields.size(); ++I)
      if (Fields[I].first != Other.Fields[I].first ||
          !Fields[I].second.equals(Other.Fields[I].second))
        return false;
    return true;
  }
  case Kind::InstanceRef:
    return Inst == Other.Inst;
  case Kind::Port:
    return Handle.Inst == Other.Handle.Inst &&
           Handle.Port == Other.Handle.Port &&
           Handle.Index == Other.Handle.Index;
  }
  return false;
}

bool Value::conformsTo(const types::Type *Ty) const {
  using types::Type;
  switch (Ty->getKind()) {
  case Type::Kind::Int:
    return K == Kind::Int;
  case Type::Kind::Bool:
    return K == Kind::Bool;
  case Type::Kind::Float:
    // Integer literals are accepted where a float is expected; the paper's
    // Figure 5 writes `parameter initial_state = 0:int`, and the analogous
    // float parameters are commonly defaulted with integer literals.
    return K == Kind::Float || K == Kind::Int;
  case Type::Kind::String:
    return K == Kind::String;
  case Type::Kind::Array: {
    if (K != Kind::Array)
      return false;
    if (Ty->getArraySize() >= 0 &&
        static_cast<int64_t>(Elems.size()) != Ty->getArraySize())
      return false;
    for (const Value &E : Elems)
      if (!E.conformsTo(Ty->getElem()))
        return false;
    return true;
  }
  case Type::Kind::Struct: {
    if (K != Kind::Struct)
      return false;
    const auto &FieldTys = Ty->getFields();
    if (Fields.size() != FieldTys.size())
      return false;
    for (unsigned I = 0; I != Fields.size(); ++I)
      if (Fields[I].first != FieldTys[I].first ||
          !Fields[I].second.conformsTo(FieldTys[I].second))
        return false;
    return true;
  }
  case Type::Kind::Var:
    return isData(); // Polymorphic slot accepts any data value.
  case Type::Kind::Disjunct:
    for (const types::Type *Alt : Ty->getAlternatives())
      if (conformsTo(Alt))
        return true;
    return false;
  }
  return false;
}

Value Value::defaultFor(const types::Type *Ty) {
  using types::Type;
  switch (Ty->getKind()) {
  case Type::Kind::Int:
    return makeInt(0);
  case Type::Kind::Bool:
    return makeBool(false);
  case Type::Kind::Float:
    return makeFloat(0.0);
  case Type::Kind::String:
    return makeString("");
  case Type::Kind::Array: {
    std::vector<Value> Elems;
    int64_t N = Ty->getArraySize() < 0 ? 0 : Ty->getArraySize();
    Elems.reserve(N);
    for (int64_t I = 0; I != N; ++I)
      Elems.push_back(defaultFor(Ty->getElem()));
    return makeArray(std::move(Elems));
  }
  case Type::Kind::Struct: {
    std::vector<std::pair<std::string, Value>> Fields;
    for (const auto &[Name, FieldTy] : Ty->getFields())
      Fields.emplace_back(Name, defaultFor(FieldTy));
    return makeStruct(std::move(Fields));
  }
  case Type::Kind::Var:
  case Type::Kind::Disjunct:
    return makeInt(0); // Unresolved polymorphism defaults like int.
  }
  return Value();
}

std::string Value::str() const {
  switch (K) {
  case Kind::Unset:
    return "<unset>";
  case Kind::Int:
    return std::to_string(IntVal);
  case Kind::Bool:
    return BoolVal ? "true" : "false";
  case Kind::Float: {
    std::ostringstream OS;
    OS << FloatVal;
    return OS.str();
  }
  case Kind::String:
    return "\"" + StrVal + "\"";
  case Kind::Array: {
    std::string S = "[";
    for (unsigned I = 0; I != Elems.size(); ++I) {
      if (I)
        S += ", ";
      S += Elems[I].str();
    }
    return S + "]";
  }
  case Kind::Struct: {
    std::string S = "{";
    for (unsigned I = 0; I != Fields.size(); ++I) {
      if (I)
        S += ", ";
      S += Fields[I].first + ": " + Fields[I].second.str();
    }
    return S + "}";
  }
  case Kind::InstanceRef:
    return "<instance>";
  case Kind::Port:
    return "<port " + Handle.Port +
           (Handle.hasIndex() ? "[" + std::to_string(Handle.Index) + "]" : "") +
           ">";
  }
  return "<invalid>";
}
