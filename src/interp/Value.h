//===- Value.h - LSS elaboration & simulation values ------------*- C++ -*-===//
///
/// \file
/// The dynamic value representation shared by the elaboration interpreter
/// (compile-time LSS execution) and the BSL runtime (userpoint execution and
/// signal values). Plain data kinds (Int/Bool/Float/String/Array/Struct)
/// flow on simulated wires; InstanceRef and PortHandle exist only at
/// elaboration time.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_INTERP_VALUE_H
#define LIBERTY_INTERP_VALUE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace liberty {

namespace netlist {
class InstanceNode;
}

namespace types {
class Type;
class TypeContext;
}

namespace interp {

/// An elaboration-time reference to a port, possibly narrowed to a single
/// port instance by an index. `OnSelf` distinguishes the current module's
/// own ports from a sub-instance's ports.
struct PortHandle {
  netlist::InstanceNode *Inst = nullptr;
  std::string Port;
  int Index = -1; ///< -1 while no port instance has been selected.
  bool OnSelf = false;

  bool hasIndex() const { return Index >= 0; }
};

class Value {
public:
  enum class Kind {
    Unset,
    Int,
    Bool,
    Float,
    String,
    Array,
    Struct,
    InstanceRef,
    Port,
  };

  Value() = default;

  static Value makeInt(int64_t V);
  static Value makeBool(bool V);
  static Value makeFloat(double V);
  static Value makeString(std::string V);
  static Value makeArray(std::vector<Value> Elems);
  static Value makeStruct(std::vector<std::pair<std::string, Value>> Fields);
  static Value makeInstanceRef(netlist::InstanceNode *Inst);
  static Value makePort(PortHandle H);

  Kind getKind() const { return K; }
  bool isUnset() const { return K == Kind::Unset; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }
  bool isFloat() const { return K == Kind::Float; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isStruct() const { return K == Kind::Struct; }
  bool isInstanceRef() const { return K == Kind::InstanceRef; }
  bool isPort() const { return K == Kind::Port; }
  /// True for the kinds that may flow on simulated wires.
  bool isData() const;

  int64_t getInt() const;
  bool getBool() const;
  double getFloat() const;

  /// In-place integer store: when this value is already an Int, only the
  /// payload is updated — none of the (empty) container members are
  /// touched. The simulation engines' hot path for integer wires;
  /// observationally identical to assigning makeInt(V).
  void setInt(int64_t V) {
    if (K == Kind::Int) {
      IntVal = V;
      return;
    }
    *this = makeInt(V);
  }
  /// Numeric accessor that widens Int to double.
  double getNumeric() const;
  const std::string &getString() const;

  const std::vector<Value> &getElems() const;
  std::vector<Value> &getElemsMutable();

  const std::vector<std::pair<std::string, Value>> &getFields() const;
  std::vector<std::pair<std::string, Value>> &getFieldsMutable();
  /// Returns the field named \p Name, or null if absent.
  const Value *getField(const std::string &Name) const;
  Value *getFieldMutable(const std::string &Name);

  netlist::InstanceNode *getInstance() const;
  const PortHandle &getPort() const;
  PortHandle &getPortMutable();

  /// Structural equality on data kinds (Unset equals Unset; InstanceRef and
  /// Port compare by identity).
  bool equals(const Value &Other) const;

  /// True if this data value conforms to ground type \p Ty.
  bool conformsTo(const types::Type *Ty) const;

  /// A default value (zero/false/empty) of ground type \p Ty.
  static Value defaultFor(const types::Type *Ty);

  /// Renders the value for diagnostics and collectors.
  std::string str() const;

private:
  Kind K = Kind::Unset;
  int64_t IntVal = 0;
  double FloatVal = 0.0;
  bool BoolVal = false;
  std::string StrVal;
  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Fields;
  netlist::InstanceNode *Inst = nullptr;
  PortHandle Handle;
};

} // namespace interp
} // namespace liberty

#endif // LIBERTY_INTERP_VALUE_H
