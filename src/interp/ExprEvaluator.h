//===- ExprEvaluator.h - Shared value operations ----------------*- C++ -*-===//
///
/// \file
/// Operator and builtin-function semantics shared by the compile-time LSS
/// interpreter and the simulation-time BSL engine, so `1 + 2` means the
/// same thing in a module body and in a userpoint.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_INTERP_EXPREVALUATOR_H
#define LIBERTY_INTERP_EXPREVALUATOR_H

#include "interp/Value.h"
#include "lss/AST.h"
#include "support/Diagnostics.h"

#include <optional>
#include <vector>

namespace liberty {
namespace interp {

/// Applies binary operator \p Op. Returns Unset and reports a diagnostic on
/// type mismatch. Numeric operators promote int to float when mixed.
Value applyBinary(lss::BinaryOp Op, const Value &A, const Value &B,
                  SourceLoc Loc, DiagnosticEngine &Diags);

/// Applies unary operator \p Op with the same conventions.
Value applyUnary(lss::UnaryOp Op, const Value &A, SourceLoc Loc,
                 DiagnosticEngine &Diags);

/// Evaluates the pure builtins available in both languages (min, max, abs,
/// len, str, int, float, append, array). Returns nullopt if \p Name is not
/// one of them; returns Unset (plus diagnostic) on a usage error.
std::optional<Value> applyCommonBuiltin(const std::string &Name,
                                        const std::vector<Value> &Args,
                                        SourceLoc Loc,
                                        DiagnosticEngine &Diags);

/// The truthiness test used by if/while/for conditions: requires a Bool.
std::optional<bool> asCondition(const Value &V, SourceLoc Loc,
                                DiagnosticEngine &Diags);

} // namespace interp
} // namespace liberty

#endif // LIBERTY_INTERP_EXPREVALUATOR_H
