//===- Interpreter.h - Compile-time LSS elaboration -------------*- C++ -*-===//
///
/// \file
/// The elaboration interpreter: executes LSS module bodies at compile time
/// to build the static netlist, implementing the paper's novel evaluation
/// semantics (Section 6.2).
///
/// The 7-tuple machine state (M, Is, L, A, B, e, S) maps onto this
/// implementation as follows:
///   M  — the netlist::Netlist under construction
///   Is — InstStack, the stack of instances whose bodies are deferred
///   L  — BodyState::E, the lexical environment of the running body
///   A  — InstanceNode::APendingAssigns/APendingConns of the instance whose
///        body is running (recorded by its parent, consumed by parameter
///        and port declarations — use-based specialization)
///   B  — the same pending lists on *child* nodes while the parent runs
///        (extract(c.n, B) is implicit in this distribution)
///   e/S — the C++ call stack walking the AST
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_INTERP_INTERPRETER_H
#define LIBERTY_INTERP_INTERPRETER_H

#include "interp/Value.h"
#include "lss/AST.h"
#include "netlist/Netlist.h"
#include "support/Diagnostics.h"
#include "types/TypeContext.h"

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace liberty {
namespace interp {

class Interpreter {
public:
  struct Options {
    /// Abort elaboration after this many statement/expression steps
    /// (guards against non-terminating compile-time loops).
    uint64_t MaxSteps = 100000000;
    /// Abort after creating this many instances.
    uint64_t MaxInstances = 1000000;
    // Note: the error cap is no longer per-interpreter. Elaboration stops
    // when the shared DiagnosticEngine's limit is reached
    // (DiagnosticEngine::setMaxErrors / lssc --max-errors).
  };

  Interpreter(types::TypeContext &TC, DiagnosticEngine &Diags);
  Interpreter(types::TypeContext &TC, DiagnosticEngine &Diags, Options Opts);

  /// Registers the module declarations of \p File. Duplicate module names
  /// are diagnosed.
  void addModules(const lss::SpecFile &File);

  /// Returns the registered module with the given name, or null.
  const lss::ModuleDecl *lookupModule(const std::string &Name) const;

  /// Elaborates \p TopLevel (the system description S0) into a netlist.
  /// Always returns a netlist; callers must check Diags.hasErrors().
  std::unique_ptr<netlist::Netlist> run(const std::vector<lss::Stmt *> &TopLevel);

  /// Replay support for incremental recompilation (docs/INCREMENTAL.md).
  /// When set, run() consults the hook before evaluating each body (the
  /// synthetic root included). Returning true means the hook reproduced the
  /// body's effects (params, ports, connections, child shells) from a
  /// cached netlist, so the interpreter skips evaluating it; returning
  /// false evaluates the body normally. Child instances the hook creates
  /// via replayChild() defer their own bodies through the normal
  /// instantiation stack, so clean and dirty subtrees interleave on the
  /// exact schedule a cold elaboration would use.
  using ReplayHook = std::function<bool(netlist::InstanceNode *)>;
  void setReplayHook(ReplayHook H) { Replay = std::move(H); }

  /// Creates a child shell under \p Parent exactly as an `instance`
  /// statement would (module lookup, instance cap, LIFO stack push).
  /// Returns null — without diagnosing — if the module is unknown (the
  /// caller falls back to a full recompile) and with the usual diagnostic
  /// if the instance cap tripped. Only meaningful inside a replay hook.
  netlist::InstanceNode *replayChild(netlist::InstanceNode *Parent,
                                     const std::string &Name,
                                     const std::string &ModuleName,
                                     SourceLoc Loc);

  /// The netlist under construction. Valid only while run() is executing —
  /// i.e. from inside a replay hook, which needs it to clone connections
  /// and re-own userpoint signatures.
  netlist::Netlist *getNetlistUnderConstruction() { return NL; }

  /// Creation-index window of one evaluated (or replayed) body: the
  /// half-open ranges of connections created and diagnostics emitted while
  /// it ran, as indices into the netlist's connection list and the
  /// diagnostic engine's list. Bodies run one at a time, so each body's
  /// connections (and its children, via the instance list) form contiguous
  /// creation-order spans — the invariant incremental splicing relies on.
  struct BodyWindow {
    uint32_t ConnBegin = 0, ConnEnd = 0;
    uint32_t DiagBegin = 0, DiagEnd = 0;
  };
  /// One (instance, window) entry per body run() evaluated, in evaluation
  /// order (root first).
  const std::vector<std::pair<netlist::InstanceNode *, BodyWindow>> &
  getBodyWindows() const {
    return BodyWindows;
  }

  /// Hierarchical paths in body-evaluation order — the pop order of the
  /// instantiation stack, used by the semantics tests (Figure 13).
  const std::vector<std::string> &getProcessingOrder() const {
    return ProcessingOrder;
  }

  /// Messages produced by the print() builtin during elaboration.
  const std::vector<std::string> &getPrintLog() const { return PrintLog; }

  /// Total statement/expression steps executed (used by benches).
  uint64_t getSteps() const { return Steps; }

private:
  enum class Flow { Normal, Break, Continue };

  /// Lexical environment of one module body.
  struct Env {
    std::vector<std::map<std::string, Value>> Scopes;

    void push() { Scopes.emplace_back(); }
    void pop() { Scopes.pop_back(); }
    Value *lookup(const std::string &Name);
    void define(const std::string &Name, Value V) {
      Scopes.back()[Name] = std::move(V);
    }
  };

  /// All state for the body currently being evaluated.
  struct BodyState {
    netlist::InstanceNode *Node = nullptr;
    Env E;
    /// Per-instance type-variable map shared by all the body's ports.
    std::map<std::string, const types::Type *> VarMap;
    std::set<std::string> DeclaredParams;
    std::set<std::string> DeclaredPorts;
    /// Auto-index counters for unindexed internal uses of own ports.
    std::map<std::string, int> SelfPortAutoIdx;
  };

  void evalBody(netlist::InstanceNode *Node,
                const std::vector<lss::Stmt *> &Body);

  Flow execStmt(BodyState &BS, const lss::Stmt *S);
  Flow execBlockBody(BodyState &BS, const std::vector<lss::Stmt *> &Body);
  void execParamDecl(BodyState &BS, const lss::ParamDeclStmt *S);
  void execPortDecl(BodyState &BS, const lss::PortDeclStmt *S);
  void execInstanceDecl(BodyState &BS, const lss::InstanceDeclStmt *S);
  void execVarDecl(BodyState &BS, const lss::VarDeclStmt *S);
  void execAssign(BodyState &BS, const lss::AssignStmt *S);
  void execConnect(BodyState &BS, const lss::ConnectStmt *S);

  Value evalExpr(BodyState &BS, const lss::Expr *E);
  Value evalCall(BodyState &BS, const lss::CallExpr *E);
  Value *resolveLValue(BodyState &BS, const lss::Expr *E);

  /// Creates one sub-instance, pushes it on the instantiation stack, and
  /// returns it (null on error).
  netlist::InstanceNode *makeInstance(BodyState &BS, const std::string &Name,
                                      const std::string &ModuleName,
                                      SourceLoc Loc);

  /// Creates a connection between two endpoint handles, recording pending
  /// resolutions on child endpoints (the B context).
  void makeConnection(BodyState &BS, const PortHandle &From,
                      const PortHandle &To, const lss::TypeExpr *Annotation,
                      SourceLoc Loc);

  /// Resolves one endpoint that refers to the current module's own port.
  void resolveSelfEndpoint(BodyState &BS, netlist::Connection *Conn,
                           bool IsFrom, const PortHandle &H, SourceLoc Loc);

  /// Converts a syntactic type in the current body's scope (type variables
  /// shared per instance; extents evaluated in the environment).
  const types::Type *convertType(BodyState &BS, const lss::TypeExpr *TE);

  /// True once elaboration must stop (step limit or error budget).
  bool aborted();

  types::TypeContext &TC;
  DiagnosticEngine &Diags;
  Options Opts;

  std::map<std::string, const lss::ModuleDecl *> ModuleTable;
  /// Deterministic registration order, for printing and stats.
  std::vector<const lss::ModuleDecl *> ModuleOrder;

  netlist::Netlist *NL = nullptr;
  std::vector<netlist::InstanceNode *> InstStack;
  ReplayHook Replay;
  std::vector<std::pair<netlist::InstanceNode *, BodyWindow>> BodyWindows;
  std::vector<std::string> ProcessingOrder;
  std::vector<std::string> PrintLog;
  uint64_t Steps = 0;
  uint64_t NumInstances = 0;
  bool Aborted = false;
};

} // namespace interp
} // namespace liberty

#endif // LIBERTY_INTERP_INTERPRETER_H
