//===- TraceGen.cpp - Synthetic µRISC instruction traces ---------------------===//

#include "corelib/TraceGen.h"

using namespace liberty;
using namespace liberty::corelib;
using interp::Value;

TraceGen::TraceGen(uint64_t Seed, int MemPercent, int BranchPercent)
    : State(Seed * 6364136223846793005ULL + 1442695040888963407ULL),
      MemPercent(MemPercent), BranchPercent(BranchPercent) {}

uint32_t TraceGen::rand32() {
  // xorshift64* mixed down to 32 bits; deterministic across platforms.
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return static_cast<uint32_t>((State * 2685821657736338717ULL) >> 32);
}

int64_t TraceGen::latencyFor(OpClass Op) {
  switch (Op) {
  case OpClass::Alu:
    return 1;
  case OpClass::Mul:
    return 3;
  case OpClass::Load:
    return 2;
  case OpClass::Store:
    return 1;
  case OpClass::Branch:
    return 1;
  }
  return 1;
}

MicroInstr TraceGen::next() {
  MicroInstr I;
  I.Pc = Pc;
  Pc += 4;
  int Roll = rand32() % 100;
  OpClass Op;
  if (Roll < MemPercent / 2)
    Op = OpClass::Load;
  else if (Roll < MemPercent)
    Op = OpClass::Store;
  else if (Roll < MemPercent + BranchPercent)
    Op = OpClass::Branch;
  else if (Roll < MemPercent + BranchPercent +
                      (100 - MemPercent - BranchPercent) / 5)
    Op = OpClass::Mul;
  else
    Op = OpClass::Alu;
  I.Op = static_cast<int64_t>(Op);
  I.Dest = rand32() % 32;
  I.Src1 = rand32() % 32;
  I.Src2 = rand32() % 32;
  I.Lat = latencyFor(Op);
  return I;
}

Value TraceGen::toValue(const MicroInstr &I) {
  return Value::makeStruct({{"pc", Value::makeInt(I.Pc)},
                            {"op", Value::makeInt(I.Op)},
                            {"dest", Value::makeInt(I.Dest)},
                            {"src1", Value::makeInt(I.Src1)},
                            {"src2", Value::makeInt(I.Src2)},
                            {"lat", Value::makeInt(I.Lat)}});
}

MicroInstr TraceGen::fromValue(const Value &V) {
  MicroInstr I;
  if (!V.isStruct())
    return I;
  auto Get = [&](const char *Name, int64_t &Out) {
    if (const Value *F = V.getField(Name))
      if (F->isInt())
        Out = F->getInt();
  };
  Get("pc", I.Pc);
  Get("op", I.Op);
  Get("dest", I.Dest);
  Get("src1", I.Src1);
  Get("src2", I.Src2);
  Get("lat", I.Lat);
  return I;
}
