//===- CoreLib.h - The reusable component library ---------------*- C++ -*-===//
///
/// \file
/// The standard Liberty component library: the LSS module declarations
/// (returned as embedded source by getCoreLibraryLss()) and the matching
/// C++ leaf behaviors (registered by registerCoreBehaviors()). Table 2's
/// "Instances from Library" column counts instances of these modules.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_CORELIB_CORELIB_H
#define LIBERTY_CORELIB_CORELIB_H

#include <string>
#include <vector>

namespace liberty {
namespace corelib {

/// Registers every corelib behavior with BehaviorRegistry::global().
/// Idempotent.
void registerCoreBehaviors();

/// The LSS source of the component library (module declarations only).
const char *getCoreLibraryLss();

/// Names of the library's modules, for reuse statistics.
std::vector<std::string> getLibraryModuleNames();

} // namespace corelib
} // namespace liberty

#endif // LIBERTY_CORELIB_CORELIB_H
