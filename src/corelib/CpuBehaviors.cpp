//===- CpuBehaviors.cpp - Microarchitecture component behaviors --------------===//
///
/// Behaviors for the CPU-flavoured library components: cache, branch
/// predictor (with use-based-specialized BTB), trace-driven fetch, decode,
/// issue window with scoreboard, functional units, and the retire unit.
///
/// These are timing models over µRISC instruction tokens (see TraceGen.h),
/// not functional ISA emulators — the same substitution the evaluation of
/// the original paper's models would tolerate, since Table 2/3 measure
/// specification structure and CPI-level timing behaviour.
///
//===----------------------------------------------------------------------===//

#include "bsl/BehaviorRegistry.h"
#include "corelib/CoreLib.h"
#include "corelib/TraceGen.h"

#include <deque>
#include <map>
#include <set>

using namespace liberty;
using namespace liberty::corelib;
using namespace liberty::bsl;
using interp::Value;

namespace liberty {
namespace corelib {
namespace detail {
void registerCpuBehaviors(BehaviorRegistry &R);
}
} // namespace corelib
} // namespace liberty

namespace {

int64_t paramInt(BehaviorContext &Ctx, const char *Name, int64_t Default) {
  const Value *V = Ctx.getParam(Name);
  return V && V->isInt() ? V->getInt() : Default;
}

bool paramBool(BehaviorContext &Ctx, const char *Name, bool Default) {
  const Value *V = Ctx.getParam(Name);
  return V && V->isBool() ? V->getBool() : Default;
}

std::string paramString(BehaviorContext &Ctx, const char *Name,
                        const char *Default) {
  const Value *V = Ctx.getParam(Name);
  return V && V->isString() ? V->getString() : Default;
}

bool stallAsserted(BehaviorContext &Ctx, int Port) {
  if (Ctx.getWidth(Port) == 0)
    return false;
  const Value *V = Ctx.getInput(Port, 0);
  return V && V->isBool() && V->getBool();
}

//===----------------------------------------------------------------------===//
// Cache
//===----------------------------------------------------------------------===//

/// Set-associative cache timing model: hits answer ready=true in the same
/// cycle; misses hold the port for miss_latency cycles (and send the block
/// address on mem_addr if that optional port is connected), then install
/// the line using the selected replacement policy.
class Cache : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    Sets = std::max<int64_t>(1, paramInt(Ctx, "sets", 64));
    Ways = std::max<int64_t>(1, paramInt(Ctx, "ways", 4));
    MissLatency = std::max<int64_t>(1, paramInt(Ctx, "miss_latency", 10));
    Repl = paramString(Ctx, "repl", "lru");
    Tags.assign(Sets * Ways, -1);
    Stamp.assign(Sets * Ways, 0);
    Pending.clear();
    Tick = 0;
    Rng = 0x9e3779b97f4a7c15ULL;
    Addr = Ctx.bindPort("addr");
    Ready = Ctx.bindPort("ready");
    MemAddr = Ctx.bindPort("mem_addr");
  }

  void evaluate(BehaviorContext &Ctx) override {
    for (int P = 0, W = Ctx.getWidth(Addr); P != W; ++P) {
      auto PendIt = Pending.find(P);
      if (PendIt != Pending.end()) {
        Ctx.setOutput(Ready, P, Value::makeBool(false));
        continue;
      }
      const Value *A = Ctx.getInput(Addr, P);
      if (!A || !A->isInt())
        continue;
      int64_t Block = A->getInt() / 32;
      if (lookup(Block)) {
        Ctx.emitEvent("hit", *A);
        Ctx.setOutput(Ready, P, Value::makeBool(true));
        continue;
      }
      Ctx.emitEvent("miss", *A);
      Ctx.setOutput(Ready, P, Value::makeBool(false));
      if (P < Ctx.getWidth(MemAddr))
        Ctx.setOutput(MemAddr, P, Value::makeInt(Block * 32));
      Pending.emplace(P, PendingMiss{Block, MissLatency});
    }
  }

  void endOfTimestep(BehaviorContext &Ctx) override {
    (void)Ctx;
    ++Tick;
    for (auto It = Pending.begin(); It != Pending.end();) {
      if (--It->second.Remaining > 0) {
        ++It;
        continue;
      }
      install(It->second.Block);
      It = Pending.erase(It);
    }
  }

private:
  struct PendingMiss {
    int64_t Block;
    int64_t Remaining;
  };

  bool lookup(int64_t Block) {
    int64_t Set = ((Block % Sets) + Sets) % Sets;
    for (int64_t W = 0; W != Ways; ++W) {
      size_t Slot = static_cast<size_t>(Set * Ways + W);
      if (Tags[Slot] == Block) {
        if (Repl == "lru")
          Stamp[Slot] = ++Tick;
        return true;
      }
    }
    return false;
  }

  void install(int64_t Block) {
    int64_t Set = ((Block % Sets) + Sets) % Sets;
    size_t Victim = static_cast<size_t>(Set * Ways);
    if (Repl == "random") {
      Rng ^= Rng << 13;
      Rng ^= Rng >> 7;
      Rng ^= Rng << 17;
      Victim = static_cast<size_t>(Set * Ways + (Rng % Ways));
    } else {
      // lru and fifo both evict the smallest stamp; they differ in whether
      // lookup() refreshes it.
      uint64_t Best = UINT64_MAX;
      for (int64_t W = 0; W != Ways; ++W) {
        size_t Slot = static_cast<size_t>(Set * Ways + W);
        if (Tags[Slot] == -1) {
          Victim = Slot;
          break;
        }
        if (Stamp[Slot] < Best) {
          Best = Stamp[Slot];
          Victim = Slot;
        }
      }
    }
    Tags[Victim] = Block;
    Stamp[Victim] = ++Tick;
  }

  int64_t Sets = 64, Ways = 4, MissLatency = 10;
  std::string Repl = "lru";
  std::vector<int64_t> Tags;
  std::vector<uint64_t> Stamp;
  std::map<int, PendingMiss> Pending;
  uint64_t Tick = 0;
  uint64_t Rng = 1;
  int Addr = -1;
  int Ready = -1;
  int MemAddr = -1;
};

//===----------------------------------------------------------------------===//
// Branch predictor (the paper's use-based specialization example)
//===----------------------------------------------------------------------===//

class BranchPred : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    Entries = std::max<int64_t>(16, paramInt(Ctx, "entries", 256));
    Table.assign(static_cast<size_t>(Entries), 1); // Weakly not-taken.
    Btb.clear();
    Pc = Ctx.bindPort("pc");
    Pred = Ctx.bindPort("pred");
    BranchTarget = Ctx.bindPort("branch_target");
    ResolvePc = Ctx.bindPort("resolve_pc");
    ResolveTaken = Ctx.bindPort("resolve_taken");
    ResolveTarget = Ctx.bindPort("resolve_target");
    // Use-based specialization at run time: BTB machinery only exists when
    // the branch_target port was connected by the enclosing model.
    BtbEnabled = Ctx.getWidth(BranchTarget) > 0;
  }

  void evaluate(BehaviorContext &Ctx) override {
    for (int P = 0, W = Ctx.getWidth(Pc); P != W; ++P) {
      const Value *PcV = Ctx.getInput(Pc, P);
      if (!PcV || !PcV->isInt())
        continue;
      Ctx.emitEvent("lookup", *PcV);
      size_t Idx = index(PcV->getInt());
      bool Taken = Table[Idx] >= 2;
      if (P < Ctx.getWidth(Pred))
        Ctx.setOutput(Pred, P, Value::makeBool(Taken));
      if (BtbEnabled && Taken) {
        auto It = Btb.find(PcV->getInt());
        if (It != Btb.end() && P < Ctx.getWidth(BranchTarget))
          Ctx.setOutput(BranchTarget, P, Value::makeInt(It->second));
      }
      LastPred[PcV->getInt()] = Taken;
    }
  }

  void endOfTimestep(BehaviorContext &Ctx) override {
    for (int P = 0, W = Ctx.getWidth(ResolvePc); P != W; ++P) {
      const Value *PcV = Ctx.getInput(ResolvePc, P);
      const Value *TakenV = Ctx.getInput(ResolveTaken, P);
      if (!PcV || !PcV->isInt() || !TakenV || !TakenV->isBool())
        continue;
      bool Taken = TakenV->getBool();
      size_t Idx = index(PcV->getInt());
      if (Taken && Table[Idx] < 3)
        ++Table[Idx];
      else if (!Taken && Table[Idx] > 0)
        --Table[Idx];
      auto PredIt = LastPred.find(PcV->getInt());
      if (PredIt != LastPred.end() && PredIt->second != Taken)
        Ctx.emitEvent("mispredict", *PcV);
      if (BtbEnabled && Taken)
        if (const Value *T = Ctx.getInput(ResolveTarget, P))
          if (T->isInt())
            Btb[PcV->getInt()] = T->getInt();
    }
  }

private:
  size_t index(int64_t Pc) const {
    return static_cast<size_t>(((Pc / 4) % Entries + Entries) % Entries);
  }

  int64_t Entries = 256;
  std::vector<uint8_t> Table;
  std::map<int64_t, int64_t> Btb;
  std::map<int64_t, bool> LastPred;
  bool BtbEnabled = false;
  int Pc = -1;
  int Pred = -1;
  int BranchTarget = -1;
  int ResolvePc = -1;
  int ResolveTaken = -1;
  int ResolveTarget = -1;
};

//===----------------------------------------------------------------------===//
// Fetch / decode / issue / fu / rob
//===----------------------------------------------------------------------===//

class Fetch : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    Remaining = paramInt(Ctx, "num_instrs", 1000);
    Gen = std::make_unique<TraceGen>(
        static_cast<uint64_t>(paramInt(Ctx, "seed", 42)),
        static_cast<int>(paramInt(Ctx, "mem_frac", 30)),
        static_cast<int>(paramInt(Ctx, "branch_frac", 15)));
    StalledLastCycle = false;
    Instr = Ctx.bindPort("instr");
    Stall = Ctx.bindPort("stall");
  }

  void evaluate(BehaviorContext &Ctx) override {
    if (StalledLastCycle || Remaining <= 0)
      return;
    for (int I = 0, W = Ctx.getWidth(Instr); I != W && Remaining > 0; ++I) {
      MicroInstr MI = Gen->next();
      --Remaining;
      Value Token = TraceGen::toValue(MI);
      Ctx.emitEvent("fetched", Token);
      Ctx.setOutput(Instr, I, std::move(Token));
    }
  }

  void endOfTimestep(BehaviorContext &Ctx) override {
    StalledLastCycle = stallAsserted(Ctx, Stall);
  }

  bool readsCombinationally(const std::string &) const override {
    return false;
  }

private:
  int64_t Remaining = 0;
  std::unique_ptr<TraceGen> Gen;
  bool StalledLastCycle = false;
  int Instr = -1;
  int Stall = -1;
};

class Decode : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    Instr = Ctx.bindPort("instr");
    Uop = Ctx.bindPort("uop");
    Stall = Ctx.bindPort("stall");
    Held.assign(Ctx.getWidth(Uop), Value());
  }
  void evaluate(BehaviorContext &Ctx) override {
    for (int I = 0, W = Ctx.getWidth(Uop); I != W; ++I)
      if (I < static_cast<int>(Held.size()) && Held[I].isData())
        Ctx.setOutput(Uop, I, Held[I]);
  }
  void endOfTimestep(BehaviorContext &Ctx) override {
    if (stallAsserted(Ctx, Stall))
      return;
    for (int I = 0, W = Ctx.getWidth(Instr); I != W; ++I) {
      if (I >= static_cast<int>(Held.size()))
        break;
      const Value *V = Ctx.getInput(Instr, I);
      Held[I] = V ? *V : Value();
    }
  }
  bool readsCombinationally(const std::string &) const override {
    return false;
  }

private:
  std::vector<Value> Held;
  int Instr = -1;
  int Uop = -1;
  int Stall = -1;
};

/// Issue window with a register scoreboard. Dispatch decisions are made
/// from last cycle's state (fully sequential timing), so arbitrarily deep
/// pipelines schedule without combinational cycles.
class Issue : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    WindowSize = std::max<int64_t>(1, paramInt(Ctx, "window", 8));
    InOrder = paramBool(Ctx, "inorder", true);
    Window.clear();
    BusyRegs.clear();
    Uop = Ctx.bindPort("uop");
    FuBusyPort = Ctx.bindPort("fu_busy");
    Complete = Ctx.bindPort("complete");
    Dispatch = Ctx.bindPort("dispatch");
    StallPort = Ctx.bindPort("stall");
    FuBusy.assign(Ctx.getWidth(Dispatch), false);
  }

  void evaluate(BehaviorContext &Ctx) override {
    int NumFus = Ctx.getWidth(Dispatch);
    std::vector<bool> FuUsed(FuBusy.begin(), FuBusy.end());
    std::vector<bool> Issued(Window.size(), false);
    unsigned Dispatched = 0;

    for (size_t W = 0; W != Window.size(); ++W) {
      const MicroInstr &MI = Window[W];
      bool Ready = !BusyRegs.count(MI.Src1) && !BusyRegs.count(MI.Src2);
      if (!Ready) {
        if (InOrder)
          break;
        continue;
      }
      int Fu = -1;
      for (int F = 0; F != NumFus; ++F) {
        if (FuUsed[F])
          continue;
        Fu = F;
        break;
      }
      if (Fu < 0) {
        if (InOrder)
          break;
        continue;
      }
      FuUsed[Fu] = true;
      Issued[W] = true;
      Ctx.setOutput(Dispatch, Fu, TraceGen::toValue(MI));
      ++Dispatched;
    }

    // Retain un-issued entries; mark issued dests busy.
    std::deque<MicroInstr> Rest;
    for (size_t W = 0; W != Window.size(); ++W) {
      if (Issued[W])
        BusyRegs.insert(Window[W].Dest);
      else
        Rest.push_back(Window[W]);
    }
    Window.swap(Rest);

    (void)Dispatched;
    bool Stall = Window.size() >= static_cast<size_t>(WindowSize);
    Ctx.setOutput(StallPort, 0, Value::makeBool(Stall));
    if (Stall)
      Ctx.emitEvent("issue_stall", Value::makeInt((int64_t)Window.size()));
  }

  void endOfTimestep(BehaviorContext &Ctx) override {
    // Absorb completions first (frees registers for next cycle)...
    for (int F = 0, W = Ctx.getWidth(Complete); F != W; ++F)
      if (const Value *V = Ctx.getInput(Complete, F)) {
        auto It = BusyRegs.find(TraceGen::fromValue(*V).Dest);
        if (It != BusyRegs.end())
          BusyRegs.erase(It); // One completion frees one in-flight dest.
      }
    // ...then FU occupancy...
    FuBusy.assign(Ctx.getWidth(Dispatch), false);
    for (int F = 0, W = Ctx.getWidth(FuBusyPort); F != W; ++F)
      if (const Value *V = Ctx.getInput(FuBusyPort, F))
        if (F < static_cast<int>(FuBusy.size()))
          FuBusy[F] = V->isBool() && V->getBool();
    // ...then new micro-ops. Absorption is unconditional: the stall signal
    // throttles fetch with a one-cycle lag, so the window may transiently
    // overshoot by up to two fetch groups — a soft limit guarantees no
    // instruction is ever lost.
    for (int I = 0, W = Ctx.getWidth(Uop); I != W; ++I)
      if (const Value *V = Ctx.getInput(Uop, I))
        Window.push_back(TraceGen::fromValue(*V));
  }

  bool readsCombinationally(const std::string &) const override {
    return false;
  }

private:
  int64_t WindowSize = 8;
  bool InOrder = true;
  std::deque<MicroInstr> Window;
  std::multiset<int64_t> BusyRegs;
  std::vector<bool> FuBusy;
  int Uop = -1;
  int FuBusyPort = -1;
  int Complete = -1;
  int Dispatch = -1;
  int StallPort = -1;
};

class Fu : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    Latency = std::max<int64_t>(1, paramInt(Ctx, "latency", 1));
    Pipelined = paramBool(Ctx, "pipelined", true);
    Pipe.clear();
    Uop = Ctx.bindPort("uop");
    Done = Ctx.bindPort("done");
    Busy = Ctx.bindPort("busy");
  }

  void evaluate(BehaviorContext &Ctx) override {
    // At most one completion per cycle: done is a single port instance, so
    // simultaneous completions would overwrite each other. The oldest
    // finished entry drains first; the rest wait.
    EmittedIdx = -1;
    for (size_t I = 0; I != Pipe.size(); ++I) {
      if (Pipe[I].second != 0)
        continue;
      Ctx.setOutput(Done, 0, TraceGen::toValue(Pipe[I].first));
      EmittedIdx = static_cast<int>(I);
      break;
    }
    bool B = Pipelined ? Pipe.size() >= static_cast<size_t>(Latency + 2)
                       : !Pipe.empty();
    Ctx.setOutput(Busy, 0, Value::makeBool(B));
  }

  void endOfTimestep(BehaviorContext &Ctx) override {
    if (EmittedIdx >= 0)
      Pipe.erase(Pipe.begin() + EmittedIdx);
    for (auto &[MI, Remaining] : Pipe)
      if (Remaining > 0)
        --Remaining;
    if (const Value *V = Ctx.getInput(Uop, 0)) {
      MicroInstr MI = TraceGen::fromValue(*V);
      int64_t Lat = std::max<int64_t>(Latency, MI.Lat);
      Pipe.emplace_back(MI, Lat - 1);
    }
  }

  bool readsCombinationally(const std::string &) const override {
    return false;
  }

private:
  int64_t Latency = 1;
  bool Pipelined = true;
  int EmittedIdx = -1;
  std::deque<std::pair<MicroInstr, int64_t>> Pipe;
  int Uop = -1;
  int Done = -1;
  int Busy = -1;
};

class Rob : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    Done = Ctx.bindPort("done");
    RetiredPort = Ctx.bindPort("retired");
    Retired = Ctx.bindState("retired");
  }
  void evaluate(BehaviorContext &Ctx) override {
    const Value &Count = Ctx.state(Retired);
    Ctx.setOutput(RetiredPort, 0,
                  Count.isInt() ? Count : Value::makeInt(0));
  }
  void endOfTimestep(BehaviorContext &Ctx) override {
    for (int F = 0, W = Ctx.getWidth(Done); F != W; ++F) {
      const Value *V = Ctx.getInput(Done, F);
      if (!V)
        continue;
      Value &Count = Ctx.state(Retired);
      Count = Value::makeInt(Count.isInt() ? Count.getInt() + 1 : 1);
      Ctx.emitEvent("retire", *V);
    }
  }
  bool readsCombinationally(const std::string &) const override {
    return false;
  }

private:
  int Done = -1;
  int RetiredPort = -1;
  int Retired = -1;
};

} // namespace

void liberty::corelib::detail::registerCpuBehaviors(BehaviorRegistry &R) {
  R.registerBehavior("corelib/cache", [] { return std::make_unique<Cache>(); });
  R.registerBehavior("corelib/branch_pred",
                     [] { return std::make_unique<BranchPred>(); });
  R.registerBehavior("corelib/fetch", [] { return std::make_unique<Fetch>(); });
  R.registerBehavior("corelib/decode",
                     [] { return std::make_unique<Decode>(); });
  R.registerBehavior("corelib/issue", [] { return std::make_unique<Issue>(); });
  R.registerBehavior("corelib/fu", [] { return std::make_unique<Fu>(); });
  R.registerBehavior("corelib/rob", [] { return std::make_unique<Rob>(); });
}
