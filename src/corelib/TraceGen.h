//===- TraceGen.h - Synthetic µRISC instruction traces ----------*- C++ -*-===//
///
/// \file
/// Deterministic synthetic instruction-trace generator. The paper's models
/// ran real ISA workloads (DLX, IA-64, Itanium 2 binaries) that we cannot
/// ship; this generator substitutes a small µRISC token stream with
/// controllable operation mix, which exercises the same simulator code
/// paths (see DESIGN.md, substitution table). The same generator drives
/// both the LSS-built models (via the corelib/fetch behavior) and the
/// hand-coded reference simulator, so cross-validation compares identical
/// workloads.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_CORELIB_TRACEGEN_H
#define LIBERTY_CORELIB_TRACEGEN_H

#include "interp/Value.h"

#include <cstdint>

namespace liberty {
namespace corelib {

/// Operation classes of the µRISC ISA.
enum class OpClass : int64_t {
  Alu = 0,
  Mul = 1,
  Load = 2,
  Store = 3,
  Branch = 4,
};

/// One µRISC instruction token. Flows through models as a struct value
/// {pc, op, dest, src1, src2, lat}.
struct MicroInstr {
  int64_t Pc = 0;
  int64_t Op = 0;
  int64_t Dest = 0;
  int64_t Src1 = 0;
  int64_t Src2 = 0;
  int64_t Lat = 1;
};

/// Deterministic (LCG-seeded) µRISC instruction stream.
class TraceGen {
public:
  /// \p MemPercent and \p BranchPercent select the fraction (0-100) of
  /// memory and branch operations; the remainder splits 4:1 ALU:MUL.
  TraceGen(uint64_t Seed, int MemPercent, int BranchPercent);

  MicroInstr next();

  /// Raw generator state access so behaviors can draw extra randomness
  /// (e.g. branch directions) reproducibly.
  uint32_t rand32();

  static interp::Value toValue(const MicroInstr &I);
  /// Decodes a token; tolerant of missing fields (returns defaults).
  static MicroInstr fromValue(const interp::Value &V);
  /// Latency of an operation class in the reference timing model.
  static int64_t latencyFor(OpClass Op);

private:
  uint64_t State;
  int64_t Pc = 0;
  int MemPercent;
  int BranchPercent;
};

} // namespace corelib
} // namespace liberty

#endif // LIBERTY_CORELIB_TRACEGEN_H
