//===- CoreBehaviors.cpp - Generic library component behaviors ---------------===//
///
/// The LSS declarations and C++ behaviors of the generic (non-CPU) library
/// components: sources, sinks, delays, registers, arithmetic, routing,
/// arbitration, queues, and storage.
///
//===----------------------------------------------------------------------===//

#include "corelib/CoreLib.h"

#include "bsl/BehaviorRegistry.h"
#include "corelib/TraceGen.h"
#include "types/Type.h"

#include <deque>
#include <mutex>

using namespace liberty;
using namespace liberty::corelib;
using namespace liberty::bsl;
using interp::Value;

// Defined in CpuBehaviors.cpp.
namespace liberty {
namespace corelib {
namespace detail {
void registerCpuBehaviors(BehaviorRegistry &R);
void registerCoreBehaviorsImpl();
}
} // namespace corelib
} // namespace liberty

//===----------------------------------------------------------------------===//
// LSS module declarations for the whole library
//===----------------------------------------------------------------------===//

static const char CoreLibraryLss[] = R"LSS(
// ---------------------------------------------------------------------------
// The Liberty standard component library.
// Sources and sinks.
// ---------------------------------------------------------------------------

module const_source {
  parameter value = 0:int;
  outport out: int;
  tar_file = "corelib/const_source";
};

module counter_source {
  parameter start = 0:int;
  parameter stride = 1:int;
  outport out: int;
  tar_file = "corelib/counter_source";
};

// A generic data generator. Overloaded over int and float; the produced
// value may be customized with the generate userpoint.
module source {
  parameter pattern = "counter":string;   // counter | const | random
  parameter value = 0:int;
  parameter seed = 1:int;
  parameter range = 0:int;                // >0: values are taken modulo range
  parameter generate : userpoint(cycle:int => int) = "";
  outport out: 'a;
  // float is deliberately the first alternative: a naive inference order
  // guesses it, discovers the mismatch only at the far end of the
  // constraint list, and backtracks exponentially — the failure mode the
  // paper's heuristics eliminate (Section 5).
  constrain 'a : (float | int);
  tar_file = "corelib/source";
};

module sink {
  inport in: 'a;
  event received;
  tar_file = "corelib/sink";
};

// Boolean stimulus for control inputs (branch outcomes, stalls, enables).
module bool_source {
  parameter pattern = "toggle":string;   // toggle | const_true | const_false | random
  parameter seed = 7:int;
  outport out: bool;
  tar_file = "corelib/bool_source";
};

// ---------------------------------------------------------------------------
// State elements.
// ---------------------------------------------------------------------------

// The single-cycle delay element of Figure 5 (int-typed, always driving).
module delay {
  parameter initial_state = 0:int;
  inport in: int;
  outport out: int;
  tar_file = "corelib/delay.tar";
};

// A polymorphic register with an optional enable (unconnected-port
// semantics: with en unconnected the register is always enabled).
module reg {
  inport in: 'a;
  inport en: bool;
  outport out: 'a;
  tar_file = "corelib/reg";
};

// A pipeline latch over a whole bus: in and out must have equal widths.
module pipe_latch {
  inport in: 'a;
  outport out: 'a;
  inport stall: bool;
  LSS_assert(in.width == out.width, "pipe_latch bus widths must match");
  tar_file = "corelib/pipe_latch";
};

// ---------------------------------------------------------------------------
// Arithmetic (overloaded over int and float — component overloading).
// ---------------------------------------------------------------------------

module adder {
  inport in1: 'a;
  inport in2: 'a;
  outport out: 'a;
  constrain 'a : (int | float);
  tar_file = "corelib/adder";
};

module alu {
  parameter op = "add":string;   // add | sub | mul | div | min | max
  inport a: 'a;
  inport b: 'a;
  outport out: 'a;
  constrain 'a : (int | float);
  tar_file = "corelib/alu";
};

// ---------------------------------------------------------------------------
// Routing.
// ---------------------------------------------------------------------------

module mux {
  inport in: 'a;
  inport sel: int;
  outport out: 'a;
  tar_file = "corelib/mux";
};

module demux {
  inport in: 'a;
  inport sel: int;
  outport out: 'a;
  tar_file = "corelib/demux";
};

// Broadcasts in[0] to every out instance.
module fanout {
  inport in: 'a;
  outport out: 'a;
  tar_file = "corelib/fanout";
};

// N-to-1 arbiter with a userpoint arbitration policy (default round
// robin). policy receives a bitmask of requesting inputs, the previously
// granted index, and the width, and returns the granted index.
module arbiter {
  inport in: 'a;
  outport out: 'a;
  parameter policy : userpoint(mask:int, last:int, width:int => int) =
    "var i:int;
     for (i = 1; i <= width; i = i + 1) {
       var c:int;
       c = (last + i) % width;
       if (bit(mask, c) == 1) { return c; }
     }
     return -1;";
  event grant;
  tar_file = "corelib/arbiter";
};

// ---------------------------------------------------------------------------
// Buffering and storage.
// ---------------------------------------------------------------------------

module queue {
  parameter depth = 4:int;
  inport in: 'a;
  inport stall: bool;
  outport out: 'a;
  event enqueue;
  event dequeue;
  event full;
  tar_file = "corelib/queue";
};

module memory {
  parameter size = 1024:int;
  inport raddr: int;
  outport rdata: 'a;
  inport waddr: int;
  inport wdata: 'a;
  LSS_assert(raddr.width == rdata.width, "memory read port widths differ");
  LSS_assert(waddr.width == wdata.width, "memory write port widths differ");
  tar_file = "corelib/memory";
};

// A register file with use-based-specialized read/write port counts: the
// number of ports is whatever the enclosing model connects.
module regfile {
  parameter nregs = 32:int;
  inport raddr: int;
  outport rdata: 'a;
  inport waddr: int;
  inport wdata: 'a;
  LSS_assert(raddr.width == rdata.width, "regfile read port widths differ");
  LSS_assert(waddr.width == wdata.width, "regfile write port widths differ");
  tar_file = "corelib/regfile";
};

// ---------------------------------------------------------------------------
// Microarchitecture components (behaviors in CpuBehaviors.cpp).
// ---------------------------------------------------------------------------

module cache {
  parameter sets = 64:int;
  parameter ways = 4:int;
  parameter repl = "lru":string;    // lru | fifo | random
  parameter miss_latency = 10:int;
  inport addr: int;
  outport ready: bool;
  outport mem_addr: int;            // optional next-level request port
  event hit;
  event miss;
  LSS_assert(addr.width == ready.width, "cache port widths differ");
  tar_file = "corelib/cache";
};

// Branch predictor with optional BTB functionality: the paper's use-based
// specialization example — BTB state exists only when branch_target is
// connected.
module branch_pred {
  parameter entries = 256:int;
  inport pc: int;
  outport pred: bool;
  outport branch_target: int;
  inport resolve_pc: int;
  inport resolve_taken: bool;
  inport resolve_target: int;
  event lookup;
  event mispredict;
  tar_file = "corelib/branch_pred";
};

// Trace-driven fetch unit producing µRISC instruction tokens.
module fetch {
  parameter num_instrs = 1000:int;
  parameter seed = 42:int;
  parameter mem_frac = 30:int;
  parameter branch_frac = 15:int;
  inport stall: bool;
  outport instr: struct{pc:int; op:int; dest:int; src1:int; src2:int; lat:int};
  event fetched;
  tar_file = "corelib/fetch";
};

// One-cycle decode latch (token pass-through).
module decode {
  inport instr: 'a;
  outport uop: 'a;
  inport stall: bool;
  LSS_assert(instr.width == uop.width, "decode widths differ");
  tar_file = "corelib/decode";
};

// Issue window with a scoreboard; dispatches to one port per functional
// unit. inorder selects in-order vs out-of-order issue.
module issue {
  parameter window = 8:int;
  parameter inorder = true:bool;
  inport uop: 'a;
  inport fu_busy: bool;
  inport complete: 'a;
  outport dispatch: 'a;
  outport stall: bool;
  event issue_stall;
  tar_file = "corelib/issue";
};

// A (pipelined or blocking) functional unit with configurable latency.
module fu {
  parameter latency = 1:int;
  parameter pipelined = true:bool;
  inport uop: 'a;
  outport done: 'a;
  outport busy: bool;
  tar_file = "corelib/fu";
};

// Retire unit: counts completed instructions.
module rob {
  inport done: 'a;
  outport retired: int;
  event retire;
  tar_file = "corelib/rob";
};
)LSS";

const char *liberty::corelib::getCoreLibraryLss() { return CoreLibraryLss; }

std::vector<std::string> liberty::corelib::getLibraryModuleNames() {
  return {"const_source", "counter_source", "source", "sink", "bool_source",
          "delay",        "reg",            "pipe_latch", "adder",
          "alu",          "mux",            "demux",      "fanout",
          "arbiter",      "queue",          "memory",     "regfile",
          "cache",        "branch_pred",    "fetch",      "decode",
          "issue",        "fu",             "rob"};
}

//===----------------------------------------------------------------------===//
// Generic behaviors
//===----------------------------------------------------------------------===//

namespace {

int64_t paramInt(BehaviorContext &Ctx, const char *Name, int64_t Default) {
  const Value *V = Ctx.getParam(Name);
  return V && V->isInt() ? V->getInt() : Default;
}

std::string paramString(BehaviorContext &Ctx, const char *Name,
                        const char *Default) {
  const Value *V = Ctx.getParam(Name);
  return V && V->isString() ? V->getString() : Default;
}

/// True if the (optional) stall port reads true this cycle.
bool stallAsserted(BehaviorContext &Ctx, const char *Port = "stall") {
  if (Ctx.getWidth(Port) == 0)
    return false;
  const Value *V = Ctx.getInput(Port, 0);
  return V && V->isBool() && V->getBool();
}

/// Bound-id twin for behaviors that resolved the stall port in init().
bool stallAsserted(BehaviorContext &Ctx, int Port) {
  if (Ctx.getWidth(Port) == 0)
    return false;
  const Value *V = Ctx.getInput(Port, 0);
  return V && V->isBool() && V->getBool();
}

// Behaviors bind their ports (and hot state slots) once in init() and use
// the dense ids on the per-cycle path; parameters that cannot change after
// elaboration are cached there too.

class ConstSource : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    Out = Ctx.bindPort("out");
    Val = Value::makeInt(paramInt(Ctx, "value", 0));
  }
  void evaluate(BehaviorContext &Ctx) override {
    for (int I = 0, W = Ctx.getWidth(Out); I != W; ++I)
      Ctx.setOutput(Out, I, Val);
  }
  // Output depends only on a parameter (constant per run), so the
  // selective engine may carry it forward after the first cycle.
  bool hasPureEvaluate() const override { return true; }

private:
  int Out = -1;
  Value Val;
};

class CounterSource : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    Out = Ctx.bindPort("out");
    Start = paramInt(Ctx, "start", 0);
    Stride = paramInt(Ctx, "stride", 1);
  }
  void evaluate(BehaviorContext &Ctx) override {
    int64_t V = Start + Stride * static_cast<int64_t>(Ctx.getCycle());
    for (int I = 0, W = Ctx.getWidth(Out); I != W; ++I)
      Ctx.setOutput(Out, I, Value::makeInt(V));
  }

private:
  int Out = -1;
  int64_t Start = 0;
  int64_t Stride = 1;
};

class GenericSource : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    Rng = static_cast<uint64_t>(paramInt(Ctx, "seed", 1));
    Out = Ctx.bindPort("out");
    Pattern = paramString(Ctx, "pattern", "counter");
    ConstVal = paramInt(Ctx, "value", 0);
    Range = paramInt(Ctx, "range", 0);
    // Adapt to the inferred port type (type-dependent BSL fragment).
    const types::Type *Ty = Ctx.getPortType("out");
    FloatOut = Ty && Ty->getKind() == types::Type::Kind::Float;
  }
  void evaluate(BehaviorContext &Ctx) override {
    // A customized generate userpoint wins; otherwise follow the pattern.
    Value V = Ctx.callUserpoint(
        "generate", {Value::makeInt(static_cast<int64_t>(Ctx.getCycle()))});
    if (V.isUnset()) {
      int64_t N;
      if (Pattern == "const")
        N = ConstVal;
      else if (Pattern == "random") {
        Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
        N = static_cast<int64_t>(Rng >> 40);
      } else
        N = static_cast<int64_t>(Ctx.getCycle());
      if (Range > 0)
        N = ((N % Range) + Range) % Range;
      V = Value::makeInt(N);
    }
    if (FloatOut && V.isInt())
      V = Value::makeFloat(static_cast<double>(V.getInt()));
    for (int I = 0, W = Ctx.getWidth(Out); I != W; ++I)
      Ctx.setOutput(Out, I, V);
  }

private:
  uint64_t Rng = 1;
  int Out = -1;
  std::string Pattern;
  int64_t ConstVal = 0;
  int64_t Range = 0;
  bool FloatOut = false;
};

class BoolSource : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    Rng = static_cast<uint64_t>(paramInt(Ctx, "seed", 7)) * 2654435761u + 1;
    Out = Ctx.bindPort("out");
    Pattern = paramString(Ctx, "pattern", "toggle");
  }
  void evaluate(BehaviorContext &Ctx) override {
    bool B;
    if (Pattern == "const_true")
      B = true;
    else if (Pattern == "const_false")
      B = false;
    else if (Pattern == "random") {
      Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
      B = (Rng >> 40) & 1;
    } else
      B = Ctx.getCycle() % 2 == 1;
    for (int I = 0, W = Ctx.getWidth(Out); I != W; ++I)
      Ctx.setOutput(Out, I, Value::makeBool(B));
  }

private:
  uint64_t Rng = 1;
  int Out = -1;
  std::string Pattern;
};

class Sink : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    In = Ctx.bindPort("in");
    Received = Ctx.bindState("received");
  }
  void evaluate(BehaviorContext &Ctx) override {
    for (int I = 0, W = Ctx.getWidth(In); I != W; ++I) {
      const Value *V = Ctx.getInput(In, I);
      if (!V)
        continue;
      Value &Count = Ctx.state(Received);
      Count = Value::makeInt(Count.isInt() ? Count.getInt() + 1 : 1);
      Ctx.emitEvent("received", *V);
    }
  }

private:
  int In = -1;
  int Received = -1;
};

class Delay : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    // State slots are pointer-stable, so the hot path can cache the slot
    // across cycles (re-acquired on every reset).
    In = Ctx.bindPort("in");
    Out = Ctx.bindPort("out");
    Held = &Ctx.state("held");
    *Held = Value::makeInt(paramInt(Ctx, "initial_state", 0));
  }
  void evaluate(BehaviorContext &Ctx) override {
    for (int I = 0, W = Ctx.getWidth(Out); I != W; ++I)
      Ctx.setOutput(Out, I, *Held);
  }
  void endOfTimestep(BehaviorContext &Ctx) override {
    if (const Value *V = Ctx.getInput(In, 0))
      *Held = *V;
  }
  bool readsCombinationally(const std::string &) const override {
    return false;
  }

private:
  int In = -1;
  int Out = -1;
  Value *Held = nullptr;
};

class Reg : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    In = Ctx.bindPort("in");
    En = Ctx.bindPort("en");
    Out = Ctx.bindPort("out");
    HeldId = Ctx.bindState("held");
  }
  void evaluate(BehaviorContext &Ctx) override {
    const Value &Held = Ctx.state(HeldId);
    if (Held.isData())
      for (int I = 0, W = Ctx.getWidth(Out); I != W; ++I)
        Ctx.setOutput(Out, I, Held);
  }
  void endOfTimestep(BehaviorContext &Ctx) override {
    if (Ctx.getWidth(En) > 0) {
      const Value *EnV = Ctx.getInput(En, 0);
      if (!EnV || !EnV->isBool() || !EnV->getBool())
        return; // Disabled: hold.
    }
    if (const Value *V = Ctx.getInput(In, 0))
      Ctx.state(HeldId) = *V;
  }
  bool readsCombinationally(const std::string &) const override {
    return false;
  }

private:
  int In = -1;
  int En = -1;
  int Out = -1;
  int HeldId = -1;
};

class PipeLatch : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    In = Ctx.bindPort("in");
    Out = Ctx.bindPort("out");
    Stall = Ctx.bindPort("stall");
    Held.assign(Ctx.getWidth(Out), Value());
  }
  void evaluate(BehaviorContext &Ctx) override {
    for (int I = 0, W = Ctx.getWidth(Out); I != W; ++I)
      if (I < static_cast<int>(Held.size()) && Held[I].isData())
        Ctx.setOutput(Out, I, Held[I]);
  }
  void endOfTimestep(BehaviorContext &Ctx) override {
    if (stallAsserted(Ctx, Stall))
      return;
    for (int I = 0, W = Ctx.getWidth(In); I != W; ++I) {
      if (I >= static_cast<int>(Held.size()))
        break;
      const Value *V = Ctx.getInput(In, I);
      Held[I] = V ? *V : Value();
    }
  }
  bool readsCombinationally(const std::string &) const override {
    return false;
  }

private:
  int In = -1;
  int Out = -1;
  int Stall = -1;
  std::vector<Value> Held;
};

/// Numeric add working on either int or float operands.
static Value numericAdd(const Value &A, const Value &B) {
  if (A.isInt() && B.isInt())
    return Value::makeInt(A.getInt() + B.getInt());
  return Value::makeFloat(A.getNumeric() + B.getNumeric());
}

class Adder : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    In1 = Ctx.bindPort("in1");
    In2 = Ctx.bindPort("in2");
    Out = Ctx.bindPort("out");
  }
  void evaluate(BehaviorContext &Ctx) override {
    const Value *A = Ctx.getInput(In1, 0);
    const Value *B = Ctx.getInput(In2, 0);
    if (A && B)
      Ctx.setOutput(Out, 0, numericAdd(*A, *B));
  }
  bool hasPureEvaluate() const override { return true; }

private:
  int In1 = -1;
  int In2 = -1;
  int Out = -1;
};

class Alu : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    APort = Ctx.bindPort("a");
    BPort = Ctx.bindPort("b");
    Out = Ctx.bindPort("out");
    Op = paramString(Ctx, "op", "add");
  }
  void evaluate(BehaviorContext &Ctx) override {
    const Value *A = Ctx.getInput(APort, 0);
    if (!A)
      return;
    if (Ctx.getWidth(BPort) == 0) { // Unary configuration.
      Ctx.setOutput(Out, 0, *A);
      return;
    }
    const Value *B = Ctx.getInput(BPort, 0);
    if (!B)
      return;
    bool Ints = A->isInt() && B->isInt();
    auto AsF = [](const Value &V) { return V.getNumeric(); };
    Value R;
    if (Op == "add")
      R = numericAdd(*A, *B);
    else if (Op == "sub")
      R = Ints ? Value::makeInt(A->getInt() - B->getInt())
               : Value::makeFloat(AsF(*A) - AsF(*B));
    else if (Op == "mul")
      R = Ints ? Value::makeInt(A->getInt() * B->getInt())
               : Value::makeFloat(AsF(*A) * AsF(*B));
    else if (Op == "div") {
      if (Ints)
        R = Value::makeInt(B->getInt() == 0 ? 0 : A->getInt() / B->getInt());
      else
        R = Value::makeFloat(AsF(*B) == 0 ? 0 : AsF(*A) / AsF(*B));
    } else if (Op == "min")
      R = Ints ? Value::makeInt(std::min(A->getInt(), B->getInt()))
               : Value::makeFloat(std::min(AsF(*A), AsF(*B)));
    else if (Op == "max")
      R = Ints ? Value::makeInt(std::max(A->getInt(), B->getInt()))
               : Value::makeFloat(std::max(AsF(*A), AsF(*B)));
    else
      R = numericAdd(*A, *B);
    Ctx.setOutput(Out, 0, R);
  }
  bool hasPureEvaluate() const override { return true; }

private:
  int APort = -1;
  int BPort = -1;
  int Out = -1;
  std::string Op;
};

class Mux : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    In = Ctx.bindPort("in");
    Sel = Ctx.bindPort("sel");
    Out = Ctx.bindPort("out");
  }
  void evaluate(BehaviorContext &Ctx) override {
    const Value *SelV = Ctx.getInput(Sel, 0);
    if (!SelV || !SelV->isInt())
      return;
    int64_t S = SelV->getInt();
    if (S < 0 || S >= Ctx.getWidth(In))
      return;
    if (const Value *V = Ctx.getInput(In, static_cast<int>(S)))
      Ctx.setOutput(Out, 0, *V);
  }
  bool hasPureEvaluate() const override { return true; }

private:
  int In = -1;
  int Sel = -1;
  int Out = -1;
};

class Demux : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    In = Ctx.bindPort("in");
    Sel = Ctx.bindPort("sel");
    Out = Ctx.bindPort("out");
  }
  void evaluate(BehaviorContext &Ctx) override {
    const Value *SelV = Ctx.getInput(Sel, 0);
    const Value *V = Ctx.getInput(In, 0);
    if (!SelV || !SelV->isInt() || !V)
      return;
    int64_t S = SelV->getInt();
    if (S >= 0 && S < Ctx.getWidth(Out))
      Ctx.setOutput(Out, static_cast<int>(S), *V);
  }
  bool hasPureEvaluate() const override { return true; }

private:
  int In = -1;
  int Sel = -1;
  int Out = -1;
};

class Fanout : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    In = Ctx.bindPort("in");
    Out = Ctx.bindPort("out");
  }
  void evaluate(BehaviorContext &Ctx) override {
    if (const Value *V = Ctx.getInput(In, 0))
      for (int I = 0, W = Ctx.getWidth(Out); I != W; ++I)
        Ctx.setOutput(Out, I, *V);
  }
  bool hasPureEvaluate() const override { return true; }

private:
  int In = -1;
  int Out = -1;
};

class Arbiter : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    In = Ctx.bindPort("in");
    Out = Ctx.bindPort("out");
    Last = Ctx.bindState("last");
    Ctx.state(Last) = Value::makeInt(-1);
  }
  void evaluate(BehaviorContext &Ctx) override {
    int W = std::min(Ctx.getWidth(In), 62);
    int64_t Mask = 0;
    for (int I = 0; I != W; ++I)
      if (Ctx.getInput(In, I))
        Mask |= int64_t(1) << I;
    if (!Mask)
      return;
    Value Idx = Ctx.callUserpoint(
        "policy", {Value::makeInt(Mask), Ctx.state(Last),
                   Value::makeInt(W)});
    if (!Idx.isInt() || Idx.getInt() < 0 || Idx.getInt() >= W)
      return;
    int Granted = static_cast<int>(Idx.getInt());
    if (const Value *V = Ctx.getInput(In, Granted)) {
      Ctx.setOutput(Out, 0, *V);
      Ctx.state(Last) = Value::makeInt(Granted);
      Ctx.emitEvent("grant", Value::makeInt(Granted));
    }
  }

private:
  int In = -1;
  int Out = -1;
  int Last = -1;
};

class Queue : public LeafBehavior {
public:
  void init(BehaviorContext &Ctx) override {
    Q.clear();
    Depth = static_cast<size_t>(std::max<int64_t>(1, paramInt(Ctx, "depth", 4)));
    In = Ctx.bindPort("in");
    Stall = Ctx.bindPort("stall");
    Out = Ctx.bindPort("out");
    Occupancy = Ctx.bindState("occupancy");
  }
  void evaluate(BehaviorContext &Ctx) override {
    SentThisCycle = !Q.empty();
    if (SentThisCycle)
      Ctx.setOutput(Out, 0, Q.front());
    Ctx.state(Occupancy) = Value::makeInt(static_cast<int64_t>(Q.size()));
  }
  void endOfTimestep(BehaviorContext &Ctx) override {
    bool Stalled = stallAsserted(Ctx, Stall);
    if (SentThisCycle && !Stalled) {
      Ctx.emitEvent("dequeue", Q.front());
      Q.pop_front();
    }
    for (int I = 0, W = Ctx.getWidth(In); I != W; ++I) {
      const Value *V = Ctx.getInput(In, I);
      if (!V)
        continue;
      if (Q.size() >= Depth) {
        Ctx.emitEvent("full", *V);
        continue;
      }
      Q.push_back(*V);
      Ctx.emitEvent("enqueue", *V);
    }
  }
  bool readsCombinationally(const std::string &) const override {
    return false;
  }

private:
  std::deque<Value> Q;
  size_t Depth = 4;
  bool SentThisCycle = false;
  int In = -1;
  int Stall = -1;
  int Out = -1;
  int Occupancy = -1;
};

/// Shared implementation of memory and regfile: combinational reads,
/// sequential writes, use-based-specialized port counts.
class StorageArray : public LeafBehavior {
public:
  explicit StorageArray(const char *SizeParam, int64_t DefaultSize)
      : SizeParam(SizeParam), DefaultSize(DefaultSize) {}

  void init(BehaviorContext &Ctx) override {
    Size = std::max<int64_t>(1, paramInt(Ctx, SizeParam, DefaultSize));
    Cells.assign(static_cast<size_t>(Size), Value::makeInt(0));
    RAddr = Ctx.bindPort("raddr");
    RData = Ctx.bindPort("rdata");
    WAddr = Ctx.bindPort("waddr");
    WData = Ctx.bindPort("wdata");
  }
  void evaluate(BehaviorContext &Ctx) override {
    for (int R = 0, W = Ctx.getWidth(RAddr); R != W; ++R) {
      const Value *A = Ctx.getInput(RAddr, R);
      if (!A || !A->isInt())
        continue;
      int64_t Addr = ((A->getInt() % Size) + Size) % Size;
      Ctx.setOutput(RData, R, Cells[static_cast<size_t>(Addr)]);
    }
  }
  void endOfTimestep(BehaviorContext &Ctx) override {
    for (int Wp = 0, W = Ctx.getWidth(WAddr); Wp != W; ++Wp) {
      const Value *A = Ctx.getInput(WAddr, Wp);
      const Value *D = Ctx.getInput(WData, Wp);
      if (!A || !A->isInt() || !D)
        continue;
      int64_t Addr = ((A->getInt() % Size) + Size) % Size;
      Cells[static_cast<size_t>(Addr)] = *D;
    }
  }
  bool readsCombinationally(const std::string &Port) const override {
    return Port == "raddr"; // Writes are sequential.
  }

private:
  const char *SizeParam;
  int64_t DefaultSize;
  int64_t Size = 1;
  std::vector<Value> Cells;
  int RAddr = -1;
  int RData = -1;
  int WAddr = -1;
  int WData = -1;
};

} // namespace

void liberty::corelib::registerCoreBehaviors() {
  // call_once, not a check-then-register probe: concurrent batch compiles
  // (CompileService) may race here, and BehaviorRegistry has no lock.
  static std::once_flag Registered;
  std::call_once(Registered, [] { detail::registerCoreBehaviorsImpl(); });
}

void liberty::corelib::detail::registerCoreBehaviorsImpl() {
  BehaviorRegistry &R = BehaviorRegistry::global();
  if (R.contains("corelib/delay.tar"))
    return; // Already registered.
  R.registerBehavior("corelib/const_source",
                     [] { return std::make_unique<ConstSource>(); });
  R.registerBehavior("corelib/counter_source",
                     [] { return std::make_unique<CounterSource>(); });
  R.registerBehavior("corelib/source",
                     [] { return std::make_unique<GenericSource>(); });
  R.registerBehavior("corelib/sink", [] { return std::make_unique<Sink>(); });
  R.registerBehavior("corelib/bool_source",
                     [] { return std::make_unique<BoolSource>(); });
  R.registerBehavior("corelib/delay.tar",
                     [] { return std::make_unique<Delay>(); });
  R.registerBehavior("corelib/reg", [] { return std::make_unique<Reg>(); });
  R.registerBehavior("corelib/pipe_latch",
                     [] { return std::make_unique<PipeLatch>(); });
  R.registerBehavior("corelib/adder",
                     [] { return std::make_unique<Adder>(); });
  R.registerBehavior("corelib/alu", [] { return std::make_unique<Alu>(); });
  R.registerBehavior("corelib/mux", [] { return std::make_unique<Mux>(); });
  R.registerBehavior("corelib/demux",
                     [] { return std::make_unique<Demux>(); });
  R.registerBehavior("corelib/fanout",
                     [] { return std::make_unique<Fanout>(); });
  R.registerBehavior("corelib/arbiter",
                     [] { return std::make_unique<Arbiter>(); });
  R.registerBehavior("corelib/queue",
                     [] { return std::make_unique<Queue>(); });
  R.registerBehavior("corelib/memory", [] {
    return std::make_unique<StorageArray>("size", 1024);
  });
  R.registerBehavior("corelib/regfile", [] {
    return std::make_unique<StorageArray>("nregs", 32);
  });
  detail::registerCpuBehaviors(R);
}
