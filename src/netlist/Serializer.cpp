//===- Serializer.cpp - Stable netlist artifact round-trip -------------------===//

#include "netlist/Serializer.h"

#include "support/FaultInjection.h"

#include "interp/Value.h"
#include "lss/AST.h"
#include "types/Type.h"
#include "types/TypeContext.h"
#include "types/TypeIO.h"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <unordered_map>

using namespace liberty;
using namespace liberty::netlist;
using interp::Value;

//===----------------------------------------------------------------------===//
// Token escaping
//===----------------------------------------------------------------------===//

/// Bytes that may appear raw in an escaped token. Everything else —
/// notably whitespace, '%', and the value/record delimiters ',[]{}="' —
/// becomes %XX. Type texts (letters, digits, '[]'-free? no: arrays!) are
/// escaped like any other payload, so a whole type rendering is one token.
static bool isRawByte(unsigned char C) {
  if (std::isalnum(C))
    return true;
  switch (C) {
  case '_': case '.': case '#': case '\'': case '-': case '+': case '/':
  case ':': case ';': case '(': case ')': case '|': case '<': case '>':
  case '!': case '*': case '@': case '^': case '~': case '?': case '$':
  case '&':
    return true;
  default:
    return false;
  }
}

std::string liberty::netlist::artifactEscape(const std::string &S) {
  // Empty strings need a non-empty rendering or the token disappears at
  // line-splitting time. "%_" cannot be produced by ordinary escaping
  // ('%' is always followed by two uppercase hex digits), so it is free
  // to serve as the empty-string sentinel.
  if (S.empty())
    return "%_";
  static const char *Hex = "0123456789ABCDEF";
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    if (isRawByte(C)) {
      Out.push_back(char(C));
    } else {
      Out.push_back('%');
      Out.push_back(Hex[C >> 4]);
      Out.push_back(Hex[C & 15]);
    }
  }
  return Out;
}

static int hexDigit(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  return -1;
}

bool liberty::netlist::artifactUnescape(std::string_view S,
                                        std::string &Out) {
  Out.clear();
  if (S == "%_")
    return true;
  Out.reserve(S.size());
  for (size_t I = 0; I != S.size(); ++I) {
    if (S[I] != '%') {
      Out.push_back(S[I]);
      continue;
    }
    if (I + 2 >= S.size())
      return false;
    int Hi = hexDigit(S[I + 1]), Lo = hexDigit(S[I + 2]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out.push_back(char((Hi << 4) | Lo));
    I += 2;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Value encoding
//===----------------------------------------------------------------------===//

/// Renders a data value as one raw (pre-escape) token. Returns false on
/// elaboration-only kinds (InstanceRef, Port), which cannot round-trip.
static bool encodeValue(const Value &V, std::string &Out) {
  switch (V.getKind()) {
  case Value::Kind::Unset:
    Out += 'u';
    return true;
  case Value::Kind::Int:
    Out += 'i';
    Out += std::to_string(V.getInt());
    return true;
  case Value::Kind::Bool:
    Out += V.getBool() ? "b1" : "b0";
    return true;
  case Value::Kind::Float: {
    // Bit-exact: the IEEE754 pattern as 16 hex digits. Decimal or even %a
    // renderings risk platform drift; bits do not.
    uint64_t Bits;
    double D = V.getFloat();
    static_assert(sizeof(Bits) == sizeof(D));
    std::memcpy(&Bits, &D, sizeof(Bits));
    char Buf[20];
    std::snprintf(Buf, sizeof(Buf), "f%016llx", (unsigned long long)Bits);
    Out += Buf;
    return true;
  }
  case Value::Kind::String:
    Out += 's';
    Out += artifactEscape(V.getString());
    return true;
  case Value::Kind::Array: {
    Out += "a[";
    bool First = true;
    for (const Value &E : V.getElems()) {
      if (!First)
        Out += ',';
      First = false;
      if (!encodeValue(E, Out))
        return false;
    }
    Out += ']';
    return true;
  }
  case Value::Kind::Struct: {
    Out += "t{";
    bool First = true;
    for (const auto &[Name, F] : V.getFields()) {
      if (!First)
        Out += ',';
      First = false;
      Out += artifactEscape(Name);
      Out += '=';
      if (!encodeValue(F, Out))
        return false;
    }
    Out += '}';
    return true;
  }
  case Value::Kind::InstanceRef:
  case Value::Kind::Port:
    return false;
  }
  return false;
}

namespace {

/// Recursive-descent reader over an encoded value token.
class ValueReader {
public:
  explicit ValueReader(const std::string &Text) : Text(Text) {}

  bool read(Value &Out) { return readValue(Out, 0) && Pos == Text.size(); }

private:
  static constexpr unsigned MaxDepth = 100;

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  bool consume(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  /// Reads escaped-string bytes up to a structural delimiter.
  bool readEscaped(std::string &Out) {
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != ',' && Text[Pos] != ']' &&
           Text[Pos] != '}' && Text[Pos] != '=')
      ++Pos;
    return artifactUnescape(
        std::string_view(Text).substr(Start, Pos - Start), Out);
  }

  bool readValue(Value &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return false;
    switch (peek()) {
    case 'u':
      ++Pos;
      Out = Value();
      return true;
    case 'i': {
      ++Pos;
      size_t Start = Pos;
      if (peek() == '-')
        ++Pos;
      while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
        ++Pos;
      if (Pos == Start)
        return false;
      Out = Value::makeInt(
          std::strtoll(Text.substr(Start, Pos - Start).c_str(), nullptr, 10));
      return true;
    }
    case 'b':
      ++Pos;
      if (peek() != '0' && peek() != '1')
        return false;
      Out = Value::makeBool(Text[Pos++] == '1');
      return true;
    case 'f': {
      ++Pos;
      if (Pos + 16 > Text.size())
        return false;
      uint64_t Bits = 0;
      for (unsigned I = 0; I != 16; ++I) {
        int D = hexDigit(Text[Pos + I]);
        if (D < 0)
          return false;
        Bits = (Bits << 4) | unsigned(D);
      }
      Pos += 16;
      double D;
      std::memcpy(&D, &Bits, sizeof(D));
      Out = Value::makeFloat(D);
      return true;
    }
    case 's': {
      ++Pos;
      std::string S;
      if (!readEscaped(S))
        return false;
      Out = Value::makeString(std::move(S));
      return true;
    }
    case 'a': {
      ++Pos;
      if (!consume('['))
        return false;
      std::vector<Value> Elems;
      if (!consume(']')) {
        do {
          Value E;
          if (!readValue(E, Depth + 1))
            return false;
          Elems.push_back(std::move(E));
        } while (consume(','));
        if (!consume(']'))
          return false;
      }
      Out = Value::makeArray(std::move(Elems));
      return true;
    }
    case 't': {
      ++Pos;
      if (!consume('{'))
        return false;
      std::vector<std::pair<std::string, Value>> Fields;
      if (!consume('}')) {
        do {
          std::string Name;
          Value F;
          if (!readEscaped(Name) || !consume('=') ||
              !readValue(F, Depth + 1))
            return false;
          Fields.emplace_back(std::move(Name), std::move(F));
        } while (consume(','));
        if (!consume('}'))
          return false;
      }
      Out = Value::makeStruct(std::move(Fields));
      return true;
    }
    default:
      return false;
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

static void emitLoc(std::ostringstream &OS, SourceLoc Loc) {
  OS << ' ' << Loc.BufferId << ' ' << Loc.Offset;
}

namespace {

/// Extends the shared token emitter with type rendering ("-" for null).
///
/// Type variables are renamed on the way out: every distinct Var becomes
/// "<hint>#<seq>" where <hint> is the source-level name (the VarName up to
/// its first '#') and <seq> is an artifact-wide first-use counter. The
/// in-memory VarId is a process-global allocation counter, so it drifts
/// between compiles that mint a different number of variables beforehand —
/// notably an incremental recompile, which deserializes the previous
/// netlist into the same TypeContext before elaborating. First-use order,
/// by contrast, is a pure function of the netlist's record order, so the
/// emitted bytes are identical whenever the structures are (and the reload
/// fixpoint becomes structural: parseTypeText re-mints variables in
/// exactly this order).
struct TokenEmitter : ArtifactTokenEmitter {
  explicit TokenEmitter(ArtifactStrTableBuilder *T) {
    Tab = T;
  }
  std::string type(const types::Type *T) const {
    return T ? tok(renderType(T)) : std::string("-");
  }

  std::string renderType(const types::Type *T) const {
    using types::Type;
    switch (T->getKind()) {
    case Type::Kind::Int:
      return "int";
    case Type::Kind::Bool:
      return "bool";
    case Type::Kind::Float:
      return "float";
    case Type::Kind::String:
      return "string";
    case Type::Kind::Var: {
      auto [It, Inserted] = VarNames.emplace(T->getVarId(), std::string());
      if (Inserted) {
        const std::string &Name = T->getVarName();
        It->second = Name.substr(0, Name.find('#')) + "#" +
                     std::to_string(VarNames.size() - 1);
      }
      return "'" + It->second;
    }
    case Type::Kind::Array:
      return renderType(T->getElem()) + "[" +
             std::to_string(T->getArraySize()) + "]";
    case Type::Kind::Struct: {
      std::string S = "struct{";
      for (const auto &[Name, FieldTy] : T->getFields())
        S += Name + ":" + renderType(FieldTy) + ";";
      return S + "}";
    }
    case Type::Kind::Disjunct: {
      std::string S = "(";
      const auto &Alts = T->getAlternatives();
      for (unsigned I = 0; I != Alts.size(); ++I) {
        if (I)
          S += "|";
        S += renderType(Alts[I]);
      }
      return S + ")";
    }
    }
    return "<invalid>";
  }

private:
  /// VarId -> canonical artifact name, in first-use order.
  mutable std::map<uint32_t, std::string> VarNames;
};

} // namespace

/// Per-instance records, emitted right after the instance's own line (and,
/// for the root, right after the header).
static bool emitInstanceBody(std::ostringstream &OS, const InstanceNode &Inst,
                             const TokenEmitter &E) {
  for (const auto &[Name, V] : Inst.Params) {
    std::string Enc;
    if (!encodeValue(V, Enc))
      return false;
    OS << "param " << E.tok(Name) << ' ' << E.tok(Enc) << '\n';
  }
  for (const auto &[Name, UV] : Inst.Userpoints) {
    OS << "userpoint " << E.tok(Name) << ' ' << (UV.IsDefault ? 1 : 0);
    emitLoc(OS, UV.Loc);
    unsigned NArgs = UV.Sig ? unsigned(UV.Sig->Args.size()) : 0;
    OS << ' ' << NArgs;
    for (unsigned I = 0; I != NArgs; ++I)
      OS << ' ' << E.tok(UV.Sig->Args[I].first);
    OS << ' ' << E.tok(UV.Code) << '\n';
  }
  for (const std::string &Ev : Inst.Events)
    OS << "event " << E.tok(Ev) << '\n';
  for (const RuntimeVar &RV : Inst.RuntimeVars) {
    std::string Enc;
    if (!encodeValue(RV.Init, Enc))
      return false;
    OS << "var " << E.tok(RV.Name);
    emitLoc(OS, RV.Loc);
    OS << ' ' << E.tok(Enc) << '\n';
  }
  for (const Port &P : Inst.Ports) {
    // v2 shortens the high-frequency records: "p"/"i"/"c" keywords and a
    // numeric direction. Ports dominate artifact line counts, so the two
    // spellings are worth the reader accepting both.
    OS << (E.Tab ? "p " : "port ") << E.tok(P.Name) << ' '
       << (E.Tab ? (P.isInput() ? "0" : "1") : (P.isInput() ? "in" : "out"))
       << ' ' << P.Width << ' ' << (P.WidthInferred ? 1 : 0);
    emitLoc(OS, P.Loc);
    OS << ' ' << E.type(P.Scheme) << ' ' << E.type(P.Resolved) << '\n';
  }
  for (const auto &[LHS, RHS] : Inst.ExtraConstraints)
    OS << "constrain " << E.type(LHS) << ' ' << E.type(RHS) << '\n';
  return true;
}

bool liberty::netlist::serializeNetlist(
    const Netlist &NL, const std::set<std::string> &LibraryModules,
    unsigned NumUserAnnotations, const std::vector<Diagnostic> &Diags,
    std::string &Out, unsigned FormatVersion) {
  if (FormatVersion < 1 || FormatVersion > CurrentLSSNLVersion)
    return false;
  if (faultShouldFail("serialize.netlist"))
    return false; // Injected stream failure: artifact just isn't cached.
  ArtifactStrTableBuilder Tab;
  TokenEmitter E(FormatVersion >= 2 ? &Tab : nullptr);

  // The body is rendered first so the v2 string table (first-use order)
  // is complete before the header is written.
  std::ostringstream OS;
  OS << "annotations " << NumUserAnnotations << '\n';
  for (const std::string &M : LibraryModules)
    OS << "libmodule " << E.tok(M) << '\n';
  for (const Diagnostic &D : Diags) {
    // Errors are never serialized: only clean compiles are cached.
    if (D.Level == DiagLevel::Error)
      return false;
    OS << "diag " << (D.Level == DiagLevel::Warning ? 1 : 0);
    emitLoc(OS, D.Loc);
    OS << ' ' << E.tok(D.Message) << '\n';
  }

  // Instances reference each other by dense InstanceNode::Id — the
  // creation-order index the netlist itself maintains, so no per-serialize
  // pointer map is needed. CacheTest pins the id/order agreement.
  const auto &Instances = NL.getInstances();

  // Root (index 0) carries no instance line of its own.
  if (!emitInstanceBody(OS, *Instances.front(), E))
    return false;
  for (size_t I = 1; I != Instances.size(); ++I) {
    const InstanceNode &Inst = *Instances[I];
    if (Inst.Id != I || !Inst.Parent || Inst.Parent->Id >= Inst.Id)
      return false; // Parents always precede children in creation order.
    OS << (E.Tab ? "i " : "instance ") << Inst.Parent->Id << ' '
       << E.tok(Inst.Name) << ' '
       << E.tok(Inst.ModuleName) << ' ' << E.opt(Inst.BehaviorId) << ' '
       << Inst.NumTypeVars;
    emitLoc(OS, Inst.Loc);
    OS << '\n';
    if (!emitInstanceBody(OS, Inst, E))
      return false;
  }

  for (const auto &Conn : NL.getConnections()) {
    auto EndpointIdx = [&](const PortRef &R) {
      return R.Inst ? int64_t(R.Inst->Id) : int64_t(-1);
    };
    OS << (E.Tab ? "c " : "conn ") << EndpointIdx(Conn->From) << ' '
       << E.opt(Conn->From.Port)
       << ' ' << Conn->From.Index << ' ' << EndpointIdx(Conn->To) << ' '
       << E.opt(Conn->To.Port) << ' ' << Conn->To.Index;
    emitLoc(OS, Conn->Loc);
    OS << ' ' << E.type(Conn->Annotation) << '\n';
  }
  OS << "end\n";

  std::ostringstream Head;
  Head << "LSSNL " << FormatVersion << '\n';
  if (FormatVersion >= 2) {
    Head << "strtab " << Tab.strings().size() << '\n';
    for (const std::string &S : Tab.strings())
      Head << "s " << artifactEscape(S) << '\n';
  }
  Out = Head.str() + OS.str();
  return true;
}

//===----------------------------------------------------------------------===//
// Deserialization
//===----------------------------------------------------------------------===//

// The field splitter/decoder moved to the public header as
// netlist::ArtifactLineReader so other artifact parsers (infer/Solution,
// the simulator's LSSKRN kernel plans) share one hardened implementation.
using LineReader = liberty::netlist::ArtifactLineReader;
using FieldDecoder = liberty::netlist::ArtifactFieldDecoder<LineReader>;

static bool decodeValue(const FieldDecoder &F, size_t I, Value &Out) {
  std::string Enc;
  if (!F.str(I, Enc))
    return false;
  return ValueReader(Enc).read(Out);
}

bool liberty::netlist::artifactEncodeValue(const interp::Value &V,
                                           std::string &Out) {
  return encodeValue(V, Out);
}

bool liberty::netlist::artifactDecodeValue(const std::string &Text,
                                           interp::Value &Out) {
  return ValueReader(Text).read(Out);
}

/// Decodes a type token ("-" -> null) through the artifact-wide VarMap.
/// For v2 input, \p Memo caches decoded types by string-table id: equal
/// ids are the same text, and parseTypeText is idempotent for a given
/// (text, VarMap) — variables resolve through the shared VarMap — so
/// repeated references (the common case: a design has few distinct port
/// schemes) skip the parse entirely. This is what makes the v2 warm load
/// measurably faster than v1, not just smaller (bench_ir pins it).
static bool decodeType(const FieldDecoder &F, size_t I,
                       types::TypeContext &TC,
                       std::map<std::string, const types::Type *> &VarMap,
                       std::vector<const types::Type *> &Memo,
                       const types::Type *&Out) {
  Out = nullptr;
  if (I < F.L.size() && F.L.raw(I) == "-")
    return true;
  uint32_t Id = UINT32_MAX;
  if (F.Table && F.L.u32(I, Id) && Id < Memo.size() && Memo[Id]) {
    Out = Memo[Id];
    return true;
  }
  std::string Text;
  if (!F.str(I, Text))
    return false;
  Out = types::parseTypeText(Text, TC, VarMap);
  if (Out && F.Table && Id < Memo.size())
    Memo[Id] = Out;
  return Out != nullptr;
}

SerializedCompile
liberty::netlist::deserializeNetlist(const std::string &Text,
                                     types::TypeContext &TC) {
  SerializedCompile Result;
  auto Fail = [&] {
    Result = SerializedCompile();
    return std::move(Result);
  };
  if (faultShouldFail("deserialize.netlist"))
    return Fail(); // Injected stream failure: caller recompiles.

  size_t LinePos = 0;
  auto nextLine = [&](std::string_view &Line) {
    if (LinePos >= Text.size())
      return false;
    size_t E = Text.find('\n', LinePos);
    if (E == std::string::npos) {
      Line = std::string_view(Text).substr(LinePos);
      LinePos = Text.size();
    } else {
      Line = std::string_view(Text).substr(LinePos, E - LinePos);
      LinePos = E + 1;
    }
    return true;
  };

  std::string_view Line;
  unsigned Version;
  if (!nextLine(Line))
    return Fail();
  if (Line == "LSSNL 1")
    Version = 1;
  else if (Line == "LSSNL 2")
    Version = 2;
  else
    return Fail();

  // v2: the header string table precedes all records.
  std::vector<std::string> Strtab;
  if (Version >= 2) {
    if (!nextLine(Line))
      return Fail();
    LineReader H(Line);
    uint32_t N;
    if (H.size() != 2 || H.raw(0) != "strtab" || !H.u32(1, N))
      return Fail();
    // Each table line is at least 3 bytes, so a count beyond the input
    // size is malformed (and would otherwise let a fuzzed header force a
    // huge reserve).
    if (size_t(N) > Text.size())
      return Fail();
    Strtab.reserve(N);
    for (uint32_t I = 0; I != N; ++I) {
      if (!nextLine(Line))
        return Fail();
      LineReader S(Line);
      std::string Str;
      if (S.size() != 2 || S.raw(0) != "s" || !S.str(1, Str))
        return Fail();
      Strtab.push_back(std::move(Str));
    }
  }

  auto NL = std::make_unique<Netlist>();
  InstanceNode *Cur = NL->getRoot();
  std::map<std::string, const types::Type *> VarMap;
  // Per-table-id type decode cache (v2 only; stays empty for v1).
  std::vector<const types::Type *> TypeMemo(Strtab.size(), nullptr);
  bool SawEnd = false;

  while (nextLine(Line)) {
    if (Line.empty())
      return Fail();
    LineReader L(Line);
    if (L.size() == 0)
      return Fail();
    FieldDecoder F{L, Version >= 2 ? &Strtab : nullptr};
    std::string_view Kind = L.raw(0);

    if (Kind == "end") {
      SawEnd = true;
      break;
    } else if (Kind == "annotations") {
      int64_t N;
      if (!L.i64(1, N) || N < 0 || L.size() != 2)
        return Fail();
      Result.NumUserAnnotations = unsigned(N);
    } else if (Kind == "libmodule") {
      std::string Name;
      if (!F.str(1, Name) || L.size() != 2)
        return Fail();
      Result.LibraryModules.insert(std::move(Name));
    } else if (Kind == "diag") {
      int64_t Level;
      Diagnostic D;
      if (L.size() != 5 || !L.i64(1, Level) || Level < 0 || Level > 1 ||
          !L.loc(2, D.Loc) || !F.str(4, D.Message))
        return Fail();
      D.Level = Level == 1 ? DiagLevel::Warning : DiagLevel::Note;
      Result.Diags.push_back(std::move(D));
    } else if (Kind == "instance" || Kind == "i") {
      int64_t ParentIdx, NTV;
      std::string Name, ModuleName, Behavior;
      SourceLoc Loc;
      if (L.size() != 8 || !L.i64(1, ParentIdx) || !F.str(2, Name) ||
          !F.str(3, ModuleName) || !F.optStr(4, Behavior) ||
          !L.i64(5, NTV) || NTV < 0 || !L.loc(6, Loc))
        return Fail();
      const auto &Instances = NL->getInstances();
      if (ParentIdx < 0 || size_t(ParentIdx) >= Instances.size())
        return Fail();
      Cur = NL->createInstance(Instances[size_t(ParentIdx)].get(),
                               std::move(Name), nullptr, Loc);
      Cur->ModuleName = std::move(ModuleName);
      Cur->BehaviorId = std::move(Behavior);
      Cur->NumTypeVars = unsigned(NTV);
    } else if (Kind == "param") {
      std::string Name;
      Value V;
      if (L.size() != 3 || !F.str(1, Name) || !decodeValue(F, 2, V))
        return Fail();
      Cur->Params.emplace(std::move(Name), std::move(V));
    } else if (Kind == "userpoint") {
      int64_t IsDefault, NArgs;
      std::string Name;
      UserpointValue UV;
      if (L.size() < 6 || !F.str(1, Name) || !L.i64(2, IsDefault) ||
          !L.loc(3, UV.Loc) || !L.i64(5, NArgs) || NArgs < 0 ||
          L.size() != size_t(7 + NArgs))
        return Fail();
      std::vector<std::string> Args;
      for (int64_t I = 0; I != NArgs; ++I) {
        std::string A;
        if (!F.str(size_t(6 + I), A))
          return Fail();
        Args.push_back(std::move(A));
      }
      if (!F.str(size_t(6 + NArgs), UV.Code))
        return Fail();
      UV.IsDefault = IsDefault != 0;
      UV.Sig = NL->createUserpointSig(std::move(Args));
      Cur->Userpoints.emplace(std::move(Name), std::move(UV));
    } else if (Kind == "event") {
      std::string Name;
      if (L.size() != 2 || !F.str(1, Name))
        return Fail();
      Cur->Events.push_back(std::move(Name));
    } else if (Kind == "var") {
      RuntimeVar RV;
      if (L.size() != 5 || !F.str(1, RV.Name) || !L.loc(2, RV.Loc) ||
          !decodeValue(F, 4, RV.Init))
        return Fail();
      Cur->RuntimeVars.push_back(std::move(RV));
    } else if (Kind == "port" || Kind == "p") {
      Port P;
      int64_t Width, WInf;
      std::string_view Dir;
      if (L.size() != 9 || !F.str(1, P.Name) ||
          ((Dir = L.raw(2)) != "in" && Dir != "out" && Dir != "0" &&
           Dir != "1") ||
          !L.i64(3, Width) || Width < 0 || !L.i64(4, WInf) ||
          !L.loc(5, P.Loc) || !decodeType(F, 7, TC, VarMap, TypeMemo, P.Scheme) ||
          !decodeType(F, 8, TC, VarMap, TypeMemo, P.Resolved))
        return Fail();
      P.Dir = (Dir == "in" || Dir == "0") ? PortDirection::In
                                          : PortDirection::Out;
      P.Width = int(Width);
      P.WidthInferred = WInf != 0;
      Cur->Ports.push_back(std::move(P));
    } else if (Kind == "constrain") {
      const types::Type *LHS, *RHS;
      if (L.size() != 3 || !decodeType(F, 1, TC, VarMap, TypeMemo, LHS) ||
          !decodeType(F, 2, TC, VarMap, TypeMemo, RHS) || !LHS || !RHS)
        return Fail();
      Cur->ExtraConstraints.emplace_back(LHS, RHS);
    } else if (Kind == "conn" || Kind == "c") {
      int64_t FromIdx, FromIndex, ToIdx, ToIndex;
      std::string FromPort, ToPort;
      SourceLoc Loc;
      const types::Type *Annotation;
      if (L.size() != 10 || !L.i64(1, FromIdx) || !F.optStr(2, FromPort) ||
          !L.i64(3, FromIndex) || !L.i64(4, ToIdx) || !F.optStr(5, ToPort) ||
          !L.i64(6, ToIndex) || !L.loc(7, Loc) ||
          !decodeType(F, 9, TC, VarMap, TypeMemo, Annotation))
        return Fail();
      const auto &Instances = NL->getInstances();
      auto Resolve = [&](int64_t Idx, InstanceNode *&Out) {
        if (Idx == -1) {
          Out = nullptr;
          return true;
        }
        if (Idx < 0 || size_t(Idx) >= Instances.size())
          return false;
        Out = Instances[size_t(Idx)].get();
        return true;
      };
      Connection *C = NL->createConnection(Loc);
      if (!Resolve(FromIdx, C->From.Inst) || !Resolve(ToIdx, C->To.Inst))
        return Fail();
      C->From.Port = std::move(FromPort);
      C->From.Index = int(FromIndex);
      C->To.Port = std::move(ToPort);
      C->To.Index = int(ToIndex);
      C->Annotation = Annotation;
    } else {
      return Fail();
    }
  }
  if (!SawEnd)
    return Fail();

  Result.NL = std::move(NL);
  return Result;
}
