//===- Netlist.cpp - Elaborated static structure ---------------------------===//

#include "netlist/Netlist.h"

#include "lss/AST.h"
#include "types/Type.h"

#include <ostream>

using namespace liberty;
using namespace liberty::netlist;

Port *InstanceNode::findPort(const std::string &PortName) {
  for (Port &P : Ports)
    if (P.Name == PortName)
      return &P;
  return nullptr;
}

const Port *InstanceNode::findPort(const std::string &PortName) const {
  for (const Port &P : Ports)
    if (P.Name == PortName)
      return &P;
  return nullptr;
}

unsigned InstanceNode::subtreeSize() const {
  unsigned N = 1;
  for (const InstanceNode *Child : Children)
    N += Child->subtreeSize();
  return N;
}

Netlist::Netlist() {
  auto RootNode = std::make_unique<InstanceNode>();
  RootNode->Name = "<top>";
  RootNode->Path = "";
  Root = RootNode.get();
  Instances.push_back(std::move(RootNode));
}

Netlist::~Netlist() = default;

const lss::UserpointSig *
Netlist::createUserpointSig(std::vector<std::string> ArgNames) {
  auto Sig = std::make_unique<lss::UserpointSig>();
  for (std::string &Name : ArgNames)
    Sig->Args.emplace_back(std::move(Name), nullptr);
  OwnedSigs.push_back(std::move(Sig));
  return OwnedSigs.back().get();
}

InstanceNode *Netlist::createInstance(InstanceNode *Parent, std::string Name,
                                      const lss::ModuleDecl *Module,
                                      SourceLoc Loc) {
  auto Node = std::make_unique<InstanceNode>();
  Node->Name = std::move(Name);
  Node->Path = (Parent == Root || Parent->Path.empty())
                   ? Node->Name
                   : Parent->Path + "." + Node->Name;
  Node->Module = Module;
  if (Module)
    Node->ModuleName = Module->getName();
  Node->Parent = Parent;
  Node->Loc = Loc;
  InstanceNode *Ptr = Node.get();
  Parent->Children.push_back(Ptr);
  Instances.push_back(std::move(Node));
  return Ptr;
}

Connection *Netlist::createConnection(SourceLoc Loc) {
  auto Conn = std::make_unique<Connection>();
  Conn->Loc = Loc;
  Connection *Ptr = Conn.get();
  Connections.push_back(std::move(Conn));
  return Ptr;
}

InstanceNode *Netlist::findByPath(const std::string &Path) {
  for (const auto &Inst : Instances)
    if (Inst->Path == Path)
      return Inst.get();
  return nullptr;
}

static void printInstance(std::ostream &OS, const InstanceNode *Node,
                          unsigned Indent) {
  for (unsigned I = 0; I != Indent; ++I)
    OS << "  ";
  OS << (Node->Name.empty() ? "<top>" : Node->Name);
  if (Node->isLeaf())
    OS << " [leaf:" << Node->BehaviorId << "]";
  OS << "\n";
  for (const Port &P : Node->Ports) {
    for (unsigned I = 0; I != Indent + 1; ++I)
      OS << "  ";
    OS << (P.isInput() ? "inport " : "outport ") << P.Name
       << " width=" << P.Width;
    if (P.Resolved)
      OS << " : " << P.Resolved->str();
    else if (P.Scheme)
      OS << " :~ " << P.Scheme->str();
    OS << "\n";
  }
  for (const InstanceNode *Child : Node->Children)
    printInstance(OS, Child, Indent + 1);
}

void Netlist::print(std::ostream &OS) const {
  printInstance(OS, Root, 0);
  OS << Connections.size() << " connections\n";
}
