//===- Netlist.cpp - Elaborated static structure ---------------------------===//

#include "netlist/Netlist.h"

#include "lss/AST.h"
#include "types/Type.h"

#include <ostream>

using namespace liberty;
using namespace liberty::netlist;

Port *InstanceNode::findPort(const std::string &PortName) {
  for (Port &P : Ports)
    if (P.Name == PortName)
      return &P;
  return nullptr;
}

const Port *InstanceNode::findPort(const std::string &PortName) const {
  for (const Port &P : Ports)
    if (P.Name == PortName)
      return &P;
  return nullptr;
}

int InstanceNode::findPortIdx(const std::string &PortName) const {
  for (size_t I = 0; I != Ports.size(); ++I)
    if (Ports[I].Name == PortName)
      return static_cast<int>(I);
  return -1;
}

int InstanceNode::findPortIdx(SymbolId PortName) const {
  for (size_t I = 0; I != Ports.size(); ++I)
    if (Ports[I].NameSym == PortName)
      return static_cast<int>(I);
  return -1;
}

unsigned InstanceNode::subtreeSize() const {
  unsigned N = 1;
  for (const InstanceNode *Child : Children)
    N += Child->subtreeSize();
  return N;
}

Netlist::Netlist() {
  auto RootNode = std::make_unique<InstanceNode>();
  RootNode->Name = "<top>";
  RootNode->Path = "";
  RootNode->Id = 0;
  RootNode->PathSym = Interner.intern("");
  Root = RootNode.get();
  PathIndex.emplace(Root->PathSym.index(), Root);
  Instances.push_back(std::move(RootNode));
}

Netlist::~Netlist() = default;

const lss::UserpointSig *
Netlist::createUserpointSig(std::vector<std::string> ArgNames) {
  auto Sig = std::make_unique<lss::UserpointSig>();
  for (std::string &Name : ArgNames)
    Sig->Args.emplace_back(std::move(Name), nullptr);
  OwnedSigs.push_back(std::move(Sig));
  return OwnedSigs.back().get();
}

InstanceNode *Netlist::createInstance(InstanceNode *Parent, std::string Name,
                                      const lss::ModuleDecl *Module,
                                      SourceLoc Loc) {
  auto Node = std::make_unique<InstanceNode>();
  Node->Name = std::move(Name);
  Node->Path = (Parent == Root || Parent->Path.empty())
                   ? Node->Name
                   : Parent->Path + "." + Node->Name;
  Node->Module = Module;
  if (Module)
    Node->ModuleName = Module->getName();
  Node->Parent = Parent;
  Node->Loc = Loc;
  Node->Id = static_cast<uint32_t>(Instances.size());
  Node->PathSym = Interner.intern(Node->Path);
  InstanceNode *Ptr = Node.get();
  // First creation wins, matching the old linear scan's first-match
  // semantics on (malformed) duplicate paths.
  PathIndex.emplace(Node->PathSym.index(), Ptr);
  Parent->Children.push_back(Ptr);
  Instances.push_back(std::move(Node));
  IdsFrozen = false;
  return Ptr;
}

Connection *Netlist::createConnection(SourceLoc Loc) {
  auto Conn = std::make_unique<Connection>();
  Conn->Loc = Loc;
  Connection *Ptr = Conn.get();
  Connections.push_back(std::move(Conn));
  return Ptr;
}

InstanceNode *Netlist::findByPath(const std::string &Path) {
  SymbolId Sym = Interner.lookup(Path);
  if (!Sym.isValid())
    return nullptr;
  auto It = PathIndex.find(Sym.index());
  return It == PathIndex.end() ? nullptr : It->second;
}

uint32_t Netlist::freezeIds() {
  if (IdsFrozen)
    return NumPortNodes;
  uint32_t Next = 0;
  for (auto &InstPtr : Instances) {
    InstanceNode &N = *InstPtr;
    N.NodeBase = Next;
    uint32_t Off = 0;
    for (Port &P : N.Ports) {
      P.NameSym = Interner.intern(P.Name);
      P.NodeOffset = Off;
      if (P.Width > 0)
        Off += static_cast<uint32_t>(P.Width);
    }
    Next += Off;
  }
  NumPortNodes = Next;
  for (auto &C : Connections) {
    for (PortRef *R : {&C->From, &C->To}) {
      if (!R->Inst)
        continue;
      R->PortIdx = R->Inst->findPortIdx(R->Port);
    }
  }
  IdsFrozen = true;
  return NumPortNodes;
}

static void printInstance(std::ostream &OS, const InstanceNode *Node,
                          unsigned Indent) {
  for (unsigned I = 0; I != Indent; ++I)
    OS << "  ";
  OS << (Node->Name.empty() ? "<top>" : Node->Name);
  if (Node->isLeaf())
    OS << " [leaf:" << Node->BehaviorId << "]";
  OS << "\n";
  for (const Port &P : Node->Ports) {
    for (unsigned I = 0; I != Indent + 1; ++I)
      OS << "  ";
    OS << (P.isInput() ? "inport " : "outport ") << P.Name
       << " width=" << P.Width;
    if (P.Resolved)
      OS << " : " << P.Resolved->str();
    else if (P.Scheme)
      OS << " :~ " << P.Scheme->str();
    OS << "\n";
  }
  for (const InstanceNode *Child : Node->Children)
    printInstance(OS, Child, Indent + 1);
}

void Netlist::print(std::ostream &OS) const {
  printInstance(OS, Root, 0);
  OS << Connections.size() << " connections\n";
}
