//===- Netlist.h - Elaborated static structure ------------------*- C++ -*-===//
///
/// \file
/// The netlist `M` of the paper's evaluation semantics: the static structure
/// produced by compile-time execution of an LSS specification. It records
/// the instance hierarchy, per-port widths and type schemes, connections
/// between port instances, resolved parameter/userpoint values, declared
/// events, and runtime variables — everything downstream analyses (type
/// inference, scheduling, code generation) consume.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_NETLIST_NETLIST_H
#define LIBERTY_NETLIST_NETLIST_H

#include "interp/Value.h"
#include "netlist/Interner.h"
#include "support/SourceMgr.h"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace liberty {

namespace lss {
class ModuleDecl;
class TypeExpr;
struct UserpointSig;
class Expr;
}

namespace types {
class Type;
}

namespace netlist {

class InstanceNode;
class Connection;

enum class PortDirection { In, Out };

/// A resolved connection endpoint: one port instance.
struct PortRef {
  InstanceNode *Inst = nullptr;
  std::string Port;
  int Index = -1;
  /// Dense index of Port within Inst->Ports; filled by Netlist::freezeIds()
  /// (-1 until then). Lets hot paths skip the by-name port scan.
  int PortIdx = -1;

  bool isResolved() const { return Index >= 0; }
};

/// A port on an instance. Per the paper (Section 4.2), every port is a
/// variable-length array of port instances; Width is the number of
/// connections made to it, counted by use-based specialization.
class Port {
public:
  std::string Name;
  /// Interned Name; filled by Netlist::freezeIds().
  SymbolId NameSym;
  /// Offset of this port's first port instance within the owning
  /// instance's node block (see InstanceNode::NodeBase); filled by
  /// Netlist::freezeIds(). Node id of instance I of this port is
  /// `Inst->NodeBase + NodeOffset + I`.
  uint32_t NodeOffset = 0;
  PortDirection Dir = PortDirection::In;
  SourceLoc Loc;

  /// The syntactic annotation from the module body (for reuse statistics).
  const lss::TypeExpr *AnnotationTE = nullptr;
  /// The per-instance semantic scheme; contains this instance's fresh type
  /// variables if the annotation was polymorphic.
  const types::Type *Scheme = nullptr;
  /// Filled by inference: the resolved ground type, one for all instances
  /// of the port.
  const types::Type *Resolved = nullptr;
  /// The inference engine's variable standing for this port's type.
  const types::Type *InferVar = nullptr;

  /// Number of port instances in use (external connections).
  int Width = 0;
  /// True if Width was inferred by counting connections (always, in LSS —
  /// kept explicit so Table 2 can count inferred widths faithfully).
  bool WidthInferred = false;

  bool isInput() const { return Dir == PortDirection::In; }
};

/// A userpoint value attached to an instance: the signature from the module
/// declaration plus the BSL code string chosen by the user (or default).
struct UserpointValue {
  const lss::UserpointSig *Sig = nullptr;
  std::string Code;
  SourceLoc Loc;
  bool IsDefault = false;
};

/// A runtime variable declared by the module (Section 4.3): simulation
/// state readable/writable from userpoints.
struct RuntimeVar {
  std::string Name;
  interp::Value Init;
  SourceLoc Loc;
};

/// Pending (use-site) records for an instance whose body has not yet run —
/// the per-child slice of the semantics' B context, turned into the child's
/// A context when the child is popped from the instantiation stack.
struct PendingAssign {
  std::string Field;
  interp::Value V;
  SourceLoc Loc;
  bool Consumed = false;
};

struct PendingConn {
  Connection *Conn = nullptr;
  bool IsFrom = false; ///< Which endpoint of Conn refers to this instance.
  std::string Port;
  int ExplicitIndex = -1;
  SourceLoc Loc;
  bool Consumed = false;
};

/// One module instance in the elaborated hierarchy.
class InstanceNode {
public:
  /// Dense creation-order id: index of this node in Netlist::getInstances()
  /// (root is 0). Assigned by Netlist::createInstance and stable for the
  /// netlist's lifetime — serializers and per-instance side tables index
  /// flat arrays with it instead of rebuilding pointer maps.
  uint32_t Id = 0;
  /// Base node id for this instance's port-instance block; filled by
  /// Netlist::freezeIds(). Port instance I of port P has the design-wide
  /// dense node id `NodeBase + P.NodeOffset + I`.
  uint32_t NodeBase = 0;
  std::string Name; ///< Local name, e.g. "delays[2]".
  std::string Path; ///< Hierarchical path, e.g. "delay3.delays[2]".
  /// Interned Path (set by createInstance; "" for the root).
  SymbolId PathSym;
  const lss::ModuleDecl *Module = nullptr; ///< Null for the synthetic root.
  /// Name of the instantiated module; empty for the synthetic root. Kept
  /// separately from Module so consumers that only need the name (stats,
  /// emitters, serialization) work on reloaded netlists, where the AST —
  /// and therefore Module — does not exist.
  std::string ModuleName;
  InstanceNode *Parent = nullptr;
  std::vector<InstanceNode *> Children;
  SourceLoc Loc;

  /// Set when the body assigns tar_file; identifies the leaf behavior.
  std::string BehaviorId;
  bool isLeaf() const { return !BehaviorId.empty(); }

  /// Parameter values after defaulting and use-based assignment.
  std::map<std::string, interp::Value> Params;
  /// Userpoint parameter values.
  std::map<std::string, UserpointValue> Userpoints;
  /// Declared instrumentation events.
  std::vector<std::string> Events;
  /// Runtime variables with evaluated initial values.
  std::vector<RuntimeVar> RuntimeVars;

  std::vector<Port> Ports;
  /// Extra type constraints from `constrain` statements (lhs = rhs).
  std::vector<std::pair<const types::Type *, const types::Type *>>
      ExtraConstraints;
  /// Number of distinct type variables minted for this instance's ports —
  /// the count of explicit type instantiations a user would need without
  /// inference (Table 2).
  unsigned NumTypeVars = 0;

  /// Pending use-site records (consumed by the instance's own body).
  std::vector<PendingAssign> APendingAssigns;
  std::vector<PendingConn> APendingConns;

  Port *findPort(const std::string &Name);
  const Port *findPort(const std::string &Name) const;
  /// Index of the named port within Ports, or -1. The by-symbol overload
  /// compares interned ids (valid after Netlist::freezeIds()).
  int findPortIdx(const std::string &Name) const;
  int findPortIdx(SymbolId Name) const;

  /// Total number of instances in this subtree, including this node.
  unsigned subtreeSize() const;
};

/// A connection between two port instances. Endpoints referring to
/// sub-instances are resolved (index assigned, existence checked) when the
/// sub-instance's own body declares the port.
class Connection {
public:
  PortRef From;
  PortRef To;
  SourceLoc Loc;
  /// Optional user type annotation (Section 5), already converted.
  const types::Type *Annotation = nullptr;

  bool isFullyResolved() const {
    return From.isResolved() && To.isResolved();
  }
};

/// The whole elaborated design.
class Netlist {
public:
  Netlist();
  ~Netlist(); ///< Out of line: OwnedSigs needs the complete UserpointSig.

  InstanceNode *getRoot() { return Root; }
  const InstanceNode *getRoot() const { return Root; }

  /// Creates a child of \p Parent named \p Name instantiating \p Module.
  InstanceNode *createInstance(InstanceNode *Parent, std::string Name,
                               const lss::ModuleDecl *Module, SourceLoc Loc);

  Connection *createConnection(SourceLoc Loc);

  /// All instances in creation order (root first).
  const std::vector<std::unique_ptr<InstanceNode>> &getInstances() const {
    return Instances;
  }
  const std::vector<std::unique_ptr<Connection>> &getConnections() const {
    return Connections;
  }

  /// Finds an instance by hierarchical path (e.g. "cpu.fetch"); returns
  /// null if absent. O(1): backed by the interner + a path index kept
  /// up to date by createInstance.
  InstanceNode *findByPath(const std::string &Path);

  /// The netlist-wide string interner. All instance paths are interned at
  /// creation; freezeIds() interns port names. Consumers may intern
  /// additional strings (module names, behavior ids) as needed.
  StringInterner &getInterner() { return Interner; }
  const StringInterner &getInterner() const { return Interner; }

  /// Freezes the dense numbering layer: assigns every port a NodeOffset
  /// and every instance a NodeBase so each port instance ("node") has a
  /// design-wide dense id, interns port names, and resolves PortIdx on
  /// every connection endpoint. Idempotent; call after elaboration or
  /// deserialization, before building schedulers/kernels. Returns the
  /// total node count.
  uint32_t freezeIds();
  bool idsFrozen() const { return IdsFrozen; }
  /// Total port-instance (node) count; valid after freezeIds().
  uint32_t getNumPortNodes() const { return NumPortNodes; }
  /// Dense node id of a resolved endpoint; valid after freezeIds().
  static uint32_t nodeIdOf(const PortRef &R) {
    return R.Inst->NodeBase +
           R.Inst->Ports[static_cast<size_t>(R.PortIdx)].NodeOffset +
           static_cast<uint32_t>(R.Index);
  }

  /// Pretty-prints the hierarchy with widths and resolved types.
  void print(std::ostream &OS) const;

  /// Allocates a userpoint signature owned by this netlist, carrying only
  /// the argument names (type expressions stay null). Deserialized
  /// netlists have no AST to point into, so UserpointValue::Sig points at
  /// these reconstructed signatures instead; the simulator only reads the
  /// argument names, which is exactly what survives serialization.
  const lss::UserpointSig *
  createUserpointSig(std::vector<std::string> ArgNames);

private:
  InstanceNode *Root;
  std::vector<std::unique_ptr<InstanceNode>> Instances;
  std::vector<std::unique_ptr<Connection>> Connections;
  /// Owned signatures for reloaded userpoints (see createUserpointSig).
  std::vector<std::unique_ptr<lss::UserpointSig>> OwnedSigs;
  StringInterner Interner;
  /// Path symbol id -> instance, first creation wins (matches the old
  /// linear scan's first-match semantics).
  std::unordered_map<uint32_t, InstanceNode *> PathIndex;
  bool IdsFrozen = false;
  uint32_t NumPortNodes = 0;
};

} // namespace netlist
} // namespace liberty

#endif // LIBERTY_NETLIST_NETLIST_H
