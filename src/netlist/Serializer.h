//===- Serializer.h - Stable netlist artifact round-trip --------*- C++ -*-===//
///
/// \file
/// Byte-stable text serialization of an elaborated netlist, plus the
/// compile metadata (library-module set, user annotation count, pending
/// diagnostics) a warm compile needs to behave identically to a cold one.
/// This is the "elaborated netlist" artifact of the content-addressed
/// compile cache (docs/API.md): a cold compile serializes right after
/// elaboration; a warm compile deserializes and skips parse + elaboration
/// entirely.
///
/// Format contract ("LSSNL 2", current — the loader also accepts v1):
///  - line oriented; every string is interned into a header string table
///    ("strtab N" then N "s <%XX-escaped>" lines, ids 0..N-1 in first-use
///    order) and referenced from records by decimal id, so repeated names,
///    type texts, and value encodings are stored once;
///  - instances appear in creation order and reference each other (and
///    connections reference instances) by dense InstanceNode::Id, so
///    reloading reproduces the original traversal order exactly — type
///    inference and simulator construction on a reloaded netlist are
///    bit-identical to the cold compile;
///  - the serializer itself is deterministic: serializing the same netlist
///    twice — or a netlist and its reloaded copy — yields identical bytes
///    regardless of how many threads inference ran on (first-use string
///    table order is a pure function of record order, so the fixpoint
///    carries over from v1);
///  - "LSSNL 1" is the same record grammar with strings %XX-escaped
///    in place instead of table references; deserializeNetlist accepts
///    both, so caches written before the v2 bump stay warm.
///
/// The deserializer trusts nothing: every record is bounds- and
/// shape-checked, and any malformed byte makes it return null (a cache
/// miss) rather than crash — mutated entries are a fuzz target
/// (fuzz_cache).
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_NETLIST_SERIALIZER_H
#define LIBERTY_NETLIST_SERIALIZER_H

#include "netlist/Netlist.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace liberty {

namespace types {
class TypeContext;
}

namespace netlist {

/// Everything a warm compile restores from the elaborated-netlist
/// artifact.
struct SerializedCompile {
  std::unique_ptr<Netlist> NL;
  /// Names of modules that came from the component library (reuse stats).
  std::set<std::string> LibraryModules;
  /// Explicit type annotations counted in user sources (Table 2).
  unsigned NumUserAnnotations = 0;
  /// Non-error diagnostics (warnings/notes) the cold compile emitted up to
  /// and including elaboration, replayed verbatim on a warm compile.
  /// SourceLocs stay valid because the warm compile registers the same
  /// source texts in the same order.
  std::vector<Diagnostic> Diags;
};

/// The LSSNL version serializeNetlist writes by default.
constexpr unsigned CurrentLSSNLVersion = 2;

/// Renders \p NL (plus the compile metadata) as an LSSNL artifact.
/// \p FormatVersion selects the wire format (2 = interned string table,
/// 1 = legacy in-place escaping, kept for size benchmarking and loader
/// compatibility tests). Returns false — leaving \p Out unspecified — if
/// the netlist holds a value that cannot round-trip (elaboration-only
/// instance/port references); such compiles simply are not cached.
bool serializeNetlist(const Netlist &NL,
                      const std::set<std::string> &LibraryModules,
                      unsigned NumUserAnnotations,
                      const std::vector<Diagnostic> &Diags,
                      std::string &Out,
                      unsigned FormatVersion = CurrentLSSNLVersion);

/// Parses an LSSNL 1 or LSSNL 2 artifact. Types are rebuilt in \p TC.
/// Returns an empty result (null NL) on any malformed input.
SerializedCompile deserializeNetlist(const std::string &Text,
                                     types::TypeContext &TC);

/// Renders a compile-time data Value as one raw (pre-escape) token — the
/// encoding LSSNL param records use. Returns false on elaboration-only
/// kinds (InstanceRef, Port), which cannot round-trip. Exposed for the
/// LSSDEP dependency artifact (driver/DepGraph), which persists pending
/// parameter assignments.
bool artifactEncodeValue(const interp::Value &V, std::string &Out);

/// Parses a token produced by artifactEncodeValue. Returns false on any
/// malformed input.
bool artifactDecodeValue(const std::string &Text, interp::Value &Out);

/// %XX escaping shared by the artifact writers: escapes '%', whitespace,
/// and every byte that is structural in an artifact line, so any string
/// round-trips as a single space-free token. Exposed for the solution
/// artifact (infer/Solution) and tests.
std::string artifactEscape(const std::string &S);
/// Inverse of artifactEscape; returns false on a malformed escape.
bool artifactUnescape(std::string_view S, std::string &Out);

/// Splits one artifact line into space-separated fields and provides
/// checked decoders. Every accessor reports failure instead of asserting:
/// the input may be a mutated cache entry. Shared by every line-oriented
/// artifact parser (LSSNL, LSSSOL, the simulator's LSSKRN kernel plans).
class ArtifactLineReader {
public:
  /// Splits on spaces without copying: fields are views into the line,
  /// which must outlive the reader. (Splitting with istreams costs more
  /// than the whole cold compile on small models — this reader is the
  /// cache's warm path, so it stays allocation-free.)
  explicit ArtifactLineReader(std::string_view Line) {
    size_t I = 0, N = Line.size();
    while (I < N) {
      while (I < N && (Line[I] == ' ' || Line[I] == '\t' || Line[I] == '\r'))
        ++I;
      size_t Start = I;
      while (I < N && Line[I] != ' ' && Line[I] != '\t' && Line[I] != '\r')
        ++I;
      if (I > Start)
        Fields.push_back(Line.substr(Start, I - Start));
    }
  }

  size_t size() const { return Fields.size(); }
  std::string_view raw(size_t I) const { return Fields[I]; }

  bool str(size_t I, std::string &Out) const {
    return I < Fields.size() && artifactUnescape(Fields[I], Out);
  }
  /// "-" decodes as the empty string (absent optional field).
  bool optStr(size_t I, std::string &Out) const {
    if (I < Fields.size() && Fields[I] == "-") {
      Out.clear();
      return true;
    }
    return str(I, Out);
  }
  bool i64(size_t I, int64_t &Out) const {
    if (I >= Fields.size() || Fields[I].empty())
      return false;
    std::string_view V = Fields[I];
    bool Neg = V[0] == '-';
    size_t P = Neg ? 1 : 0;
    if (P == V.size())
      return false;
    uint64_t Acc = 0;
    for (; P != V.size(); ++P) {
      if (V[P] < '0' || V[P] > '9')
        return false;
      if (Acc > (uint64_t(INT64_MAX) - 9) / 10)
        return false; // Overflow: reject rather than wrap.
      Acc = Acc * 10 + uint64_t(V[P] - '0');
    }
    Out = Neg ? -int64_t(Acc) : int64_t(Acc);
    return true;
  }
  bool u32(size_t I, uint32_t &Out) const {
    int64_t V;
    if (!i64(I, V) || V < 0 || V > int64_t(UINT32_MAX))
      return false;
    Out = uint32_t(V);
    return true;
  }
  bool loc(size_t I, SourceLoc &Out) const {
    return u32(I, Out.BufferId) && u32(I + 1, Out.Offset);
  }

private:
  std::vector<std::string_view> Fields;
};

/// First-use-ordered string table built while a v2 artifact body is
/// rendered. Ids are a pure function of record order, so serialization
/// stays byte-stable and the reload fixpoint carries over from the v1
/// formats. Shared by the LSSNL and LSSSOL writers.
class ArtifactStrTableBuilder {
public:
  uint32_t id(const std::string &S) {
    auto It = Ids.find(S);
    if (It != Ids.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Strings.size());
    Strings.push_back(S);
    Ids.emplace(S, Id);
    return Id;
  }
  const std::vector<std::string> &strings() const { return Strings; }

private:
  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> Ids;
};

/// Renders string-slot tokens for the selected wire format: v2 interns
/// into the table and emits the decimal id; v1 escapes in place.
struct ArtifactTokenEmitter {
  ArtifactStrTableBuilder *Tab = nullptr; ///< Null means v1.

  std::string tok(const std::string &S) const {
    return Tab ? std::to_string(Tab->id(S)) : artifactEscape(S);
  }
  /// "-" for the empty string (absent optional field).
  std::string opt(const std::string &S) const {
    return S.empty() ? std::string("-") : tok(S);
  }
};

/// Decodes a record's string-slot fields for either artifact wire format:
/// v1 slots hold %XX-escaped text in place; v2 slots hold decimal ids into
/// the artifact's header string table. Numeric/loc fields are unchanged
/// between versions, so readers keep using the underlying line reader for
/// those. Shared by the LSSNL and LSSSOL parsers; works over any reader
/// exposing size()/raw()/str()/u32() (ArtifactLineReader or
/// infer/Solution's field splitter).
template <typename Reader> struct ArtifactFieldDecoder {
  const Reader &L;
  /// Null means v1 (in-place escaped strings).
  const std::vector<std::string> *Table;

  bool str(size_t I, std::string &Out) const {
    if (!Table)
      return L.str(I, Out);
    uint32_t Id;
    if (!L.u32(I, Id) || Id >= Table->size())
      return false;
    Out = (*Table)[Id];
    return true;
  }
  /// "-" decodes as the empty string (absent optional field).
  bool optStr(size_t I, std::string &Out) const {
    if (I < L.size() && L.raw(I) == "-") {
      Out.clear();
      return true;
    }
    return str(I, Out);
  }
};

} // namespace netlist
} // namespace liberty

#endif // LIBERTY_NETLIST_SERIALIZER_H
