//===- Serializer.h - Stable netlist artifact round-trip --------*- C++ -*-===//
///
/// \file
/// Byte-stable text serialization of an elaborated netlist, plus the
/// compile metadata (library-module set, user annotation count, pending
/// diagnostics) a warm compile needs to behave identically to a cold one.
/// This is the "elaborated netlist" artifact of the content-addressed
/// compile cache (docs/API.md): a cold compile serializes right after
/// elaboration; a warm compile deserializes and skips parse + elaboration
/// entirely.
///
/// Format contract ("LSSNL 1"):
///  - line oriented; strings are %XX-escaped so every record is one line;
///  - instances appear in creation order and reference each other (and
///    connections reference instances) by dense index, so reloading
///    reproduces the original traversal order exactly — type inference and
///    simulator construction on a reloaded netlist are bit-identical to
///    the cold compile;
///  - the serializer itself is deterministic: serializing the same netlist
///    twice — or a netlist and its reloaded copy — yields identical bytes
///    regardless of how many threads inference ran on.
///
/// The deserializer trusts nothing: every record is bounds- and
/// shape-checked, and any malformed byte makes it return null (a cache
/// miss) rather than crash — mutated entries are a fuzz target
/// (fuzz_cache).
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_NETLIST_SERIALIZER_H
#define LIBERTY_NETLIST_SERIALIZER_H

#include "netlist/Netlist.h"
#include "support/Diagnostics.h"

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace liberty {

namespace types {
class TypeContext;
}

namespace netlist {

/// Everything a warm compile restores from the elaborated-netlist
/// artifact.
struct SerializedCompile {
  std::unique_ptr<Netlist> NL;
  /// Names of modules that came from the component library (reuse stats).
  std::set<std::string> LibraryModules;
  /// Explicit type annotations counted in user sources (Table 2).
  unsigned NumUserAnnotations = 0;
  /// Non-error diagnostics (warnings/notes) the cold compile emitted up to
  /// and including elaboration, replayed verbatim on a warm compile.
  /// SourceLocs stay valid because the warm compile registers the same
  /// source texts in the same order.
  std::vector<Diagnostic> Diags;
};

/// Renders \p NL (plus the compile metadata) as an LSSNL 1 artifact.
/// Returns false — leaving \p Out unspecified — if the netlist holds a
/// value that cannot round-trip (elaboration-only instance/port
/// references); such compiles simply are not cached.
bool serializeNetlist(const Netlist &NL,
                      const std::set<std::string> &LibraryModules,
                      unsigned NumUserAnnotations,
                      const std::vector<Diagnostic> &Diags,
                      std::string &Out);

/// Parses an LSSNL 1 artifact. Types are rebuilt in \p TC. Returns an
/// empty result (null NL) on any malformed input.
SerializedCompile deserializeNetlist(const std::string &Text,
                                     types::TypeContext &TC);

/// %XX escaping shared by the artifact writers: escapes '%', whitespace,
/// and every byte that is structural in an artifact line, so any string
/// round-trips as a single space-free token. Exposed for the solution
/// artifact (infer/Solution) and tests.
std::string artifactEscape(const std::string &S);
/// Inverse of artifactEscape; returns false on a malformed escape.
bool artifactUnescape(std::string_view S, std::string &Out);

} // namespace netlist
} // namespace liberty

#endif // LIBERTY_NETLIST_SERIALIZER_H
