//===- Serializer.h - Stable netlist artifact round-trip --------*- C++ -*-===//
///
/// \file
/// Byte-stable text serialization of an elaborated netlist, plus the
/// compile metadata (library-module set, user annotation count, pending
/// diagnostics) a warm compile needs to behave identically to a cold one.
/// This is the "elaborated netlist" artifact of the content-addressed
/// compile cache (docs/API.md): a cold compile serializes right after
/// elaboration; a warm compile deserializes and skips parse + elaboration
/// entirely.
///
/// Format contract ("LSSNL 1"):
///  - line oriented; strings are %XX-escaped so every record is one line;
///  - instances appear in creation order and reference each other (and
///    connections reference instances) by dense index, so reloading
///    reproduces the original traversal order exactly — type inference and
///    simulator construction on a reloaded netlist are bit-identical to
///    the cold compile;
///  - the serializer itself is deterministic: serializing the same netlist
///    twice — or a netlist and its reloaded copy — yields identical bytes
///    regardless of how many threads inference ran on.
///
/// The deserializer trusts nothing: every record is bounds- and
/// shape-checked, and any malformed byte makes it return null (a cache
/// miss) rather than crash — mutated entries are a fuzz target
/// (fuzz_cache).
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_NETLIST_SERIALIZER_H
#define LIBERTY_NETLIST_SERIALIZER_H

#include "netlist/Netlist.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace liberty {

namespace types {
class TypeContext;
}

namespace netlist {

/// Everything a warm compile restores from the elaborated-netlist
/// artifact.
struct SerializedCompile {
  std::unique_ptr<Netlist> NL;
  /// Names of modules that came from the component library (reuse stats).
  std::set<std::string> LibraryModules;
  /// Explicit type annotations counted in user sources (Table 2).
  unsigned NumUserAnnotations = 0;
  /// Non-error diagnostics (warnings/notes) the cold compile emitted up to
  /// and including elaboration, replayed verbatim on a warm compile.
  /// SourceLocs stay valid because the warm compile registers the same
  /// source texts in the same order.
  std::vector<Diagnostic> Diags;
};

/// Renders \p NL (plus the compile metadata) as an LSSNL 1 artifact.
/// Returns false — leaving \p Out unspecified — if the netlist holds a
/// value that cannot round-trip (elaboration-only instance/port
/// references); such compiles simply are not cached.
bool serializeNetlist(const Netlist &NL,
                      const std::set<std::string> &LibraryModules,
                      unsigned NumUserAnnotations,
                      const std::vector<Diagnostic> &Diags,
                      std::string &Out);

/// Parses an LSSNL 1 artifact. Types are rebuilt in \p TC. Returns an
/// empty result (null NL) on any malformed input.
SerializedCompile deserializeNetlist(const std::string &Text,
                                     types::TypeContext &TC);

/// %XX escaping shared by the artifact writers: escapes '%', whitespace,
/// and every byte that is structural in an artifact line, so any string
/// round-trips as a single space-free token. Exposed for the solution
/// artifact (infer/Solution) and tests.
std::string artifactEscape(const std::string &S);
/// Inverse of artifactEscape; returns false on a malformed escape.
bool artifactUnescape(std::string_view S, std::string &Out);

/// Splits one artifact line into space-separated fields and provides
/// checked decoders. Every accessor reports failure instead of asserting:
/// the input may be a mutated cache entry. Shared by every line-oriented
/// artifact parser (LSSNL, LSSSOL, the simulator's LSSKRN kernel plans).
class ArtifactLineReader {
public:
  /// Splits on spaces without copying: fields are views into the line,
  /// which must outlive the reader. (Splitting with istreams costs more
  /// than the whole cold compile on small models — this reader is the
  /// cache's warm path, so it stays allocation-free.)
  explicit ArtifactLineReader(std::string_view Line) {
    size_t I = 0, N = Line.size();
    while (I < N) {
      while (I < N && (Line[I] == ' ' || Line[I] == '\t' || Line[I] == '\r'))
        ++I;
      size_t Start = I;
      while (I < N && Line[I] != ' ' && Line[I] != '\t' && Line[I] != '\r')
        ++I;
      if (I > Start)
        Fields.push_back(Line.substr(Start, I - Start));
    }
  }

  size_t size() const { return Fields.size(); }
  std::string_view raw(size_t I) const { return Fields[I]; }

  bool str(size_t I, std::string &Out) const {
    return I < Fields.size() && artifactUnescape(Fields[I], Out);
  }
  /// "-" decodes as the empty string (absent optional field).
  bool optStr(size_t I, std::string &Out) const {
    if (I < Fields.size() && Fields[I] == "-") {
      Out.clear();
      return true;
    }
    return str(I, Out);
  }
  bool i64(size_t I, int64_t &Out) const {
    if (I >= Fields.size() || Fields[I].empty())
      return false;
    std::string_view V = Fields[I];
    bool Neg = V[0] == '-';
    size_t P = Neg ? 1 : 0;
    if (P == V.size())
      return false;
    uint64_t Acc = 0;
    for (; P != V.size(); ++P) {
      if (V[P] < '0' || V[P] > '9')
        return false;
      if (Acc > (uint64_t(INT64_MAX) - 9) / 10)
        return false; // Overflow: reject rather than wrap.
      Acc = Acc * 10 + uint64_t(V[P] - '0');
    }
    Out = Neg ? -int64_t(Acc) : int64_t(Acc);
    return true;
  }
  bool u32(size_t I, uint32_t &Out) const {
    int64_t V;
    if (!i64(I, V) || V < 0 || V > int64_t(UINT32_MAX))
      return false;
    Out = uint32_t(V);
    return true;
  }
  bool loc(size_t I, SourceLoc &Out) const {
    return u32(I, Out.BufferId) && u32(I + 1, Out.Offset);
  }

private:
  std::vector<std::string_view> Fields;
};

} // namespace netlist
} // namespace liberty

#endif // LIBERTY_NETLIST_SERIALIZER_H
