//===- Interner.h - Arena-backed string interner ----------------*- C++ -*-===//
///
/// \file
/// A stable string interner for the netlist IR. Every hierarchical name,
/// port name, module name, and behavior id is interned once at elaboration
/// (or deserialization) time into an arena; downstream consumers carry
/// 32-bit `SymbolId` handles and compare/index with integers instead of
/// re-hashing strings on every hot path.
///
/// Guarantees:
///  - Handles are dense: ids are assigned 0,1,2,... in first-intern order.
///  - `text()` views are stable for the interner's lifetime (arena-backed;
///    never reallocated or moved).
///  - Interning the same string twice returns the same id.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_NETLIST_INTERNER_H
#define LIBERTY_NETLIST_INTERNER_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace liberty {
namespace netlist {

/// Dense handle to a string owned by a StringInterner.
struct SymbolId {
  static constexpr uint32_t Invalid = UINT32_MAX;
  uint32_t Value = Invalid;

  SymbolId() = default;
  explicit SymbolId(uint32_t V) : Value(V) {}

  bool isValid() const { return Value != Invalid; }
  uint32_t index() const {
    assert(isValid() && "indexing an invalid SymbolId");
    return Value;
  }

  bool operator==(SymbolId O) const { return Value == O.Value; }
  bool operator!=(SymbolId O) const { return Value != O.Value; }
  bool operator<(SymbolId O) const { return Value < O.Value; }
};

/// Arena-backed interner with dense, insertion-ordered ids.
class StringInterner {
public:
  StringInterner() = default;
  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Interns \p S, returning its stable id (existing id if already interned).
  SymbolId intern(std::string_view S) {
    auto It = Map.find(S);
    if (It != Map.end())
      return SymbolId(It->second);
    std::string_view Stored = copyToArena(S);
    uint32_t Id = static_cast<uint32_t>(Table.size());
    Table.push_back(Stored);
    Map.emplace(Stored, Id);
    return SymbolId(Id);
  }

  /// Non-inserting lookup; returns an invalid id if \p S was never interned.
  SymbolId lookup(std::string_view S) const {
    auto It = Map.find(S);
    return It == Map.end() ? SymbolId() : SymbolId(It->second);
  }

  /// The interned text for \p Id. Stable for the interner's lifetime.
  std::string_view text(SymbolId Id) const {
    assert(Id.isValid() && Id.Value < Table.size() && "bad SymbolId");
    return Table[Id.Value];
  }

  /// Number of distinct strings interned so far (== the next fresh id).
  size_t size() const { return Table.size(); }

  /// Total bytes held in the arena (for stats/benchmarks).
  size_t arenaBytes() const { return ArenaUsed; }

private:
  std::string_view copyToArena(std::string_view S) {
    if (S.empty())
      return std::string_view("", 0);
    if (Chunks.empty() || ChunkUsed + S.size() > ChunkSize) {
      size_t Cap = S.size() > ChunkSize ? S.size() : ChunkSize;
      Chunks.push_back(std::unique_ptr<char[]>(new char[Cap]));
      ChunkUsed = 0;
      ChunkCap = Cap;
    }
    char *Dst = Chunks.back().get() + ChunkUsed;
    std::memcpy(Dst, S.data(), S.size());
    ChunkUsed += S.size();
    ArenaUsed += S.size();
    return std::string_view(Dst, S.size());
  }

  static constexpr size_t ChunkSize = 64 * 1024;
  std::vector<std::unique_ptr<char[]>> Chunks;
  size_t ChunkUsed = 0;
  size_t ChunkCap = 0;
  size_t ArenaUsed = 0;
  std::vector<std::string_view> Table;
  std::unordered_map<std::string_view, uint32_t> Map;
};

} // namespace netlist
} // namespace liberty

#endif // LIBERTY_NETLIST_INTERNER_H
