//===- DotEmitter.h - Graphviz rendering of netlists -------------*- C++ -*-===//
///
/// \file
/// Renders an elaborated netlist as a Graphviz digraph: leaf instances as
/// nodes (labelled with module name and behavior), the module hierarchy as
/// nested clusters, and resolved connections as edges labelled with the
/// inferred type. Serves the paper's visualization use case (Section 4.5)
/// and gives models a human-checkable artifact.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_NETLIST_DOTEMITTER_H
#define LIBERTY_NETLIST_DOTEMITTER_H

#include <ostream>

namespace liberty {
namespace netlist {

class Netlist;

/// Writes \p NL as a Graphviz digraph to \p OS.
void emitDot(const Netlist &NL, std::ostream &OS);

} // namespace netlist
} // namespace liberty

#endif // LIBERTY_NETLIST_DOTEMITTER_H
