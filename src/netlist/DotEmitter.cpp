//===- DotEmitter.cpp - Graphviz rendering of netlists ------------------------===//

#include "netlist/DotEmitter.h"

#include "lss/AST.h"
#include "netlist/Netlist.h"
#include "types/Type.h"

#include <map>
#include <string>

using namespace liberty;
using namespace liberty::netlist;

namespace {

/// Graphviz node ids must be bare identifiers; paths contain '.', '[', ']'.
std::string sanitize(const std::string &Path) {
  std::string Id = "n_";
  for (char C : Path)
    Id += (std::isalnum(static_cast<unsigned char>(C)) ? C : '_');
  return Id;
}

std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

void emitInstance(const InstanceNode *Node, std::ostream &OS,
                  unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  if (Node->isLeaf() || Node->Children.empty()) {
    OS << Pad << sanitize(Node->Path) << " [label=\""
       << escape(Node->Name.empty() ? "<top>" : Node->Name) << "\\n"
       << escape(Node->ModuleName) << "\"";
    if (!Node->isLeaf())
      OS << ", shape=plaintext";
    OS << "];\n";
    return;
  }
  OS << Pad << "subgraph cluster_" << sanitize(Node->Path) << " {\n";
  OS << Pad << "  label=\"" << escape(Node->Name) << " : "
     << escape(Node->ModuleName) << "\";\n";
  for (const InstanceNode *Child : Node->Children)
    emitInstance(Child, OS, Indent + 1);
  OS << Pad << "}\n";
}

} // namespace

void liberty::netlist::emitDot(const Netlist &NL, std::ostream &OS) {
  OS << "digraph model {\n";
  OS << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";

  for (const InstanceNode *Child : NL.getRoot()->Children)
    emitInstance(Child, OS, 1);

  // Connections between *leaf* endpoints only: hierarchical pass-through
  // ports are resolved transitively by net identity, but for a drawing,
  // the recorded point-to-point connections are the honest picture.
  for (const auto &Conn : NL.getConnections()) {
    if (!Conn->isFullyResolved())
      continue;
    OS << "  " << sanitize(Conn->From.Inst->Path) << " -> "
       << sanitize(Conn->To.Inst->Path) << " [label=\""
       << escape(Conn->From.Port) << "[" << Conn->From.Index << "] -> "
       << escape(Conn->To.Port) << "[" << Conn->To.Index << "]";
    if (const netlist::Port *P = Conn->From.Inst->findPort(Conn->From.Port))
      if (P->Resolved)
        OS << " : " << escape(P->Resolved->str());
    OS << "\", fontsize=8];\n";
  }
  OS << "}\n";
}
