//===- DepGraph.h - Compile dependency graph artifact -----------*- C++ -*-===//
///
/// \file
/// The dependency side-table of incremental recompilation
/// (docs/INCREMENTAL.md): everything a later compile of the *same project*
/// (same source names and phase options, different text) needs to decide
/// which modules changed and to replay the unchanged parts of elaboration
/// from the previous compile's cached artifacts.
///
/// A DepGraph records, per compile:
///  - per source: the top-level module spans with per-module content
///    hashes (hash folds the span's start offset, because serialized
///    SourceLocs must match a cold compile byte-for-byte) and a residual
///    hash over everything outside module bodies;
///  - the module instantiation edges (module -> instantiated modules) and,
///    when a solve ran, the H3 constraint groups each module's instances
///    participated in — the paper-level "module DAG to constraint groups"
///    spine of the incremental contract;
///  - per instance (dense InstanceNode::Id order): the half-open
///    connection/diagnostic creation windows of its body evaluation
///    (interp::Interpreter::BodyWindow) and the pending parameter
///    assignments / connection endpoints its parent pushed on it — the
///    A-context a live re-evaluation of a dirty body consumes;
///  - the elab/solve cache keys of the compile that wrote it, so the next
///    compile can find the previous netlist and solution artifacts.
///
/// Serialized as the "LSSDEP 1" artifact kind ("dep") in the
/// ArtifactCache, keyed by CompilerInvocation::depKey() — a
/// content-INDEPENDENT key (source names + options, not texts), so an
/// edited project overwrites its own dependency entry in place.
///
/// Like every artifact, the reader trusts nothing: malformed records make
/// deserializeDepGraph return false (a miss), and the serialize/deserialize
/// edges carry fault-injection sites ("serialize.dep"/"deserialize.dep").
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_DEPGRAPH_H
#define LIBERTY_DRIVER_DEPGRAPH_H

#include "support/SourceMgr.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace liberty {
namespace driver {

/// FNV-1a 64. Fields are fed as `tag=value;` runs; strings are
/// length-prefixed so adjacent fields cannot alias. Shared by the
/// invocation fingerprints (CompilerInvocation) and the per-module hashes.
class FnvHasher {
public:
  void bytes(const void *Data, size_t N) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != N; ++I) {
      H ^= P[I];
      H *= 1099511628211ull;
    }
  }
  void str(const std::string &S) {
    num(S.size());
    bytes(S.data(), S.size());
  }
  void num(uint64_t V) { bytes(&V, sizeof(V)); }
  void field(const char *Tag, uint64_t V) {
    bytes(Tag, std::char_traits<char>::length(Tag));
    num(V);
  }
  uint64_t get() const { return H; }

private:
  uint64_t H = 1469598103934665603ull; // FNV offset basis.
};

/// One top-level `module NAME { ... }` span in a source text.
/// [Begin, End) covers the `module` keyword through the matching '}'.
struct ModuleSpan {
  std::string Name;
  size_t Begin = 0;
  size_t End = 0;
};

/// Scans \p Text for top-level module declarations, skipping comments and
/// string literals (an apostrophe is a type-variable marker in LSS, not a
/// quote). Returns false — leaving \p Out unspecified — when the text
/// cannot be segmented (unterminated comment/string, unbalanced braces);
/// callers then hash the whole text and incremental diffing is declined.
bool scanModuleSpans(const std::string &Text, std::vector<ModuleSpan> &Out);

/// Content hash of one module span. Folds the span's START OFFSET as well
/// as its bytes: serialized netlists and diagnostics carry exact
/// SourceLocs, so a module whose text merely shifted must still read as
/// changed for the byte-identity contract to hold.
uint64_t hashModuleSpan(const std::string &Text, const ModuleSpan &S);

/// Hash of everything outside the module spans (top-level statements,
/// comments, whitespace), folded with each slice's offset.
uint64_t hashResidual(const std::string &Text,
                      const std::vector<ModuleSpan> &Spans);

/// The per-source Merkle fold CompilerInvocation::elabKey() uses: the
/// combination of every module-span hash plus the residual hash when the
/// source scans, or a flat whole-text hash when it does not. Equal texts
/// always fold equal; any byte change reaches the fold through a span or
/// residual slice.
uint64_t foldSourceKey(const std::string &Text);

struct DepGraph {
  struct ModuleDep {
    std::string Name;
    uint64_t Hash = 0;
  };
  struct SourceDeps {
    std::string Name;
    /// False when the text could not be segmented; Modules is then empty
    /// and ResidualHash covers the whole text.
    bool Scanned = true;
    uint64_t ResidualHash = 0;
    std::vector<ModuleDep> Modules;
  };

  /// One pending parameter assignment recorded by a parent body on a
  /// child (netlist::PendingAssign), with the value in
  /// netlist::artifactEncodeValue form.
  struct PendingAssignDep {
    std::string Field;
    std::string Value;
    SourceLoc Loc;
  };
  /// One pending connection endpoint (netlist::PendingConn); the
  /// connection is referenced by its dense creation index.
  struct PendingConnDep {
    uint32_t ConnIdx = 0;
    bool IsFrom = false;
    std::string Port;
    int64_t ExplicitIndex = -1;
    SourceLoc Loc;
  };
  /// Per-instance body record, indexed by InstanceNode::Id.
  struct InstDep {
    uint32_t ConnBegin = 0, ConnEnd = 0;
    uint32_t DiagBegin = 0, DiagEnd = 0;
    std::vector<PendingAssignDep> Assigns;
    std::vector<PendingConnDep> Conns;
  };

  /// Cache keys of the compile that wrote this graph (the "previous"
  /// compile from the next edit's point of view).
  uint64_t PrevElabKey = 0;
  uint64_t PrevSolveKey = 0;
  /// False when some pending value could not be encoded (elaboration-only
  /// InstanceRef/Port values); such compiles cannot be replayed and a
  /// reader declines incremental recompilation.
  bool Capable = true;

  std::vector<SourceDeps> Sources;
  std::vector<InstDep> Instances;
  /// Module -> instantiated-module edges, deduplicated and sorted; ""
  /// stands for the synthetic top level.
  std::vector<std::pair<std::string, std::string>> Edges;
  /// Module -> H3 constraint-group indices of the previous solve (sorted,
  /// deduplicated). Present only when the writing compile had per-port
  /// group attribution (an LSSSOL 3 solve).
  std::vector<std::pair<std::string, std::vector<unsigned>>> ModuleGroups;
};

/// Renders \p G as an LSSDEP 1 artifact. Returns false only under fault
/// injection ("serialize.dep").
bool serializeDepGraph(const DepGraph &G, std::string &Out);

/// Parses an LSSDEP 1 artifact. Returns false on any malformed input (and
/// under the "deserialize.dep" fault site).
bool deserializeDepGraph(const std::string &Text, DepGraph &Out);

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_DEPGRAPH_H
