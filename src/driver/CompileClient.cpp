//===- CompileClient.cpp - Client side of the lssd protocol -------------------===//

#include "driver/CompileClient.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include <unistd.h>

using namespace liberty;
using namespace liberty::driver;

void CompileClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool CompileClient::connect(std::string *Err) {
  close();
  if (faultShouldFail("client.connect")) {
    if (Err)
      *Err = "connect to '" + Address + "': injected fault";
    return false;
  }
  Fd = netConnect(Address, Err, Policy.ConnectTimeoutMs);
  if (Fd < 0)
    return false;

  Json Hello = Json::object();
  Hello.set("type", msg::Hello)
      .set("version", uint64_t(DaemonProtocolVersion))
      .set("minor", uint64_t(DaemonProtocolMinorVersion))
      .set("client", "lssc");
  Json Reply;
  if (!roundTrip(Hello, Reply, Err))
    return false;
  if (Reply.getString("type") != msg::HelloOk) {
    if (Err)
      *Err = "handshake refused: " +
             Reply.getString("message", "unexpected '" +
                                            Reply.getString("type") +
                                            "' reply");
    close();
    return false;
  }
  // Additive-feature negotiation: an old daemon's hello_ok has no "minor"
  // field, which reads as 0 — recompile() then degrades to plain compile.
  ServerMinor = uint32_t(Reply.getU64("minor"));
  return true;
}

bool CompileClient::roundTrip(const Json &Msg, Json &Reply, std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "not connected";
    return false;
  }
  if (faultShouldFail("client.send") || !writeMessage(Fd, Msg)) {
    if (Err)
      *Err = "send failed (daemon gone?)";
    close();
    return false;
  }
  std::string Payload;
  FrameStatus FS =
      faultShouldFail("client.recv")
          ? FrameStatus::Error
          : readFrameDeadline(Fd, Payload, DaemonDefaultMaxFrameBytes,
                              Policy.ReadTimeoutMs, /*IdleDeadline=*/true);
  if (FS != FrameStatus::Ok) {
    if (Err)
      *Err = FS == FrameStatus::Eof       ? "daemon closed the connection"
             : FS == FrameStatus::Timeout ? "receive timed out after " +
                                                std::to_string(
                                                    Policy.ReadTimeoutMs) +
                                                " ms"
                                          : "receive failed";
    close();
    return false;
  }
  std::string ParseErr;
  if (!Json::parse(Payload, Reply, &ParseErr)) {
    if (Err)
      *Err = "malformed reply: " + ParseErr;
    close();
    return false;
  }
  return true;
}

Json CompileClient::requestBody(const CompilerInvocation &Inv,
                                uint64_t DeadlineMs) {
  Json Sources = Json::array();
  for (const CompilerInvocation::Source &S : Inv.Sources) {
    Json Src = Json::object();
    Src.set("name", S.Name).set("text", S.Text);
    Sources.push(std::move(Src));
  }
  // Only the wire-visible option subset crosses; docs/DAEMON.md specifies
  // it. The three solver heuristics ship individually so a remote compile
  // solves with exactly the invocation's configuration.
  Json Options = Json::object();
  Options.set("use_corelib", Inv.UseCoreLibrary)
      .set("max_errors", uint64_t(Inv.MaxErrors))
      .set("jobs", uint64_t(Inv.Solve.NumThreads))
      .set("reorder", Inv.Solve.ReorderSimpleFirst)
      .set("forced_elimination", Inv.Solve.ForcedDisjunctElimination)
      .set("partition", Inv.Solve.Partition)
      .set("infer_deadline_ms", Inv.Solve.DeadlineMs);
  if (DeadlineMs)
    Options.set("deadline_ms", DeadlineMs);

  Json Req = Json::object();
  Req.set("sources", std::move(Sources)).set("options", std::move(Options));
  return Req;
}

CompileClient::Result CompileClient::resultFromWire(const Json &Msg) {
  Result R;
  const std::string Type = Msg.getString("type");
  if (Type == msg::Error) {
    R.ErrorCode = Msg.getString("code", "error");
    R.Error = Msg.getString("message", "daemon error");
    R.RetryAfterMs = Msg.getU64("retry_after_ms");
    return R;
  }
  if (Type != msg::Result) {
    R.Error = "unexpected '" + Type + "' reply";
    return R;
  }
  R.Success = Msg.getBool("success");
  R.FailedPhase = Msg.getString("failed_phase", "none");
  R.ExitCode = int(Msg.getU64("exit_code"));
  R.ElabFromCache = Msg.getBool("elab_from_cache");
  R.SolutionFromCache = Msg.getBool("solution_from_cache");
  R.Degraded = Msg.getBool("degraded");
  R.GroupsUnsolved = Msg.getU64("groups_unsolved");
  R.Diagnostics = Msg.getString("diagnostics");
  R.Instances = Msg.getU64("instances");
  R.Connections = Msg.getU64("connections");
  R.QueueMs = Msg.getNumber("queue_ms");
  R.ServiceMs = Msg.getNumber("service_ms");
  if (const Json *Inc = Msg.get("incremental")) {
    R.IncrementalUsed = Inc->getBool("used");
    R.IncrementalFallback = Inc->getString("fallback_reason");
    R.ModulesReelaborated = Inc->getU64("modules_reelaborated");
    R.GroupsResolved = Inc->getU64("groups_resolved");
    R.GroupsSpliced = Inc->getU64("groups_spliced");
  }
  return R;
}

CompileClient::Result CompileClient::compile(const CompilerInvocation &Inv,
                                             uint64_t DeadlineMs) {
  Json Req = requestBody(Inv, DeadlineMs);
  Req.set("type", msg::Compile).set("id", NextId++);
  Json Reply;
  std::string Err;
  if (!roundTrip(Req, Reply, &Err)) {
    Result R;
    R.Error = Err;
    return R;
  }
  return resultFromWire(Reply);
}

CompileClient::Result CompileClient::recompile(const CompilerInvocation &Inv,
                                               uint64_t DeadlineMs) {
  // Feature-gate on the negotiated minor: a minor-0 daemon has no
  // `recompile` handler (it would answer bad_message), but a plain
  // compile produces the identical result bytes — just without splicing.
  if (ServerMinor < 1)
    return compile(Inv, DeadlineMs);
  Json Req = requestBody(Inv, DeadlineMs);
  Req.set("type", msg::Recompile).set("id", NextId++);
  Json Reply;
  std::string Err;
  if (!roundTrip(Req, Reply, &Err)) {
    Result R;
    R.Error = Err;
    return R;
  }
  return resultFromWire(Reply);
}

std::vector<CompileClient::Result>
CompileClient::compileBatch(const std::vector<CompilerInvocation> &Invs,
                            uint64_t DeadlineMs) {
  Json Requests = Json::array();
  for (const CompilerInvocation &Inv : Invs)
    Requests.push(requestBody(Inv, DeadlineMs));
  Json Req = Json::object();
  Req.set("type", msg::Batch)
      .set("id", NextId++)
      .set("requests", std::move(Requests));

  std::vector<Result> Results(Invs.size());
  Json Reply;
  std::string Err;
  if (!roundTrip(Req, Reply, &Err)) {
    for (Result &R : Results)
      R.Error = Err;
    return Results;
  }
  if (Reply.getString("type") != msg::BatchResult) {
    Result E = resultFromWire(Reply); // Carries the server error, if any.
    if (E.Error.empty())
      E.Error = "unexpected reply to batch";
    for (Result &R : Results)
      R = E;
    return Results;
  }
  static const std::vector<Json> Empty;
  const Json *Wire = Reply.get("results");
  const std::vector<Json> &Items = Wire ? Wire->items() : Empty;
  for (size_t I = 0; I != Results.size(); ++I) {
    if (I < Items.size())
      Results[I] = resultFromWire(Items[I]);
    else
      Results[I].Error = "batch reply truncated";
  }
  return Results;
}

bool CompileClient::stats(Json &Out, std::string *Err) {
  Json Req = Json::object();
  Req.set("type", msg::Stats);
  if (!roundTrip(Req, Out, Err))
    return false;
  if (Out.getString("type") != msg::StatsResult) {
    if (Err)
      *Err = "unexpected '" + Out.getString("type") + "' reply to stats";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Retry / backoff / circuit breaker
//===----------------------------------------------------------------------===//

static uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

void CompileClient::noteTransportFailure() {
  ++Stats.TransportFailures;
  if (++ConsecutiveTransportFailures >= Policy.BreakerThreshold &&
      !Stats.BreakerOpen) {
    Stats.BreakerOpen = true;
    ++Stats.BreakerTrips;
  }
}

void CompileClient::noteTransportSuccess() { ConsecutiveTransportFailures = 0; }

uint64_t CompileClient::backoffMs(unsigned Attempt, uint64_t RetryAfterMs) {
  if (JitterState == 0)
    JitterState = Policy.Seed * 0x9e3779b97f4a7c15ull + 1;
  uint64_t Backoff = Policy.BaseBackoffMs;
  for (unsigned I = 1; I < Attempt && Backoff < Policy.MaxBackoffMs; ++I)
    Backoff *= 2;
  Backoff = std::min(Backoff, Policy.MaxBackoffMs);
  // Full jitter on top of the exponential floor; a server retry_after_ms
  // hint raises the floor (it knows its queue better than we do).
  uint64_t Jitter = splitmix64(JitterState) % (Backoff / 2 + 1);
  return std::max(Backoff / 2 + Jitter, RetryAfterMs);
}

static CompileClient::Result breakerOpenResult() {
  CompileClient::Result R;
  R.Error = "circuit breaker open: daemon transport failing repeatedly; "
            "not retrying";
  return R;
}

/// True when \p R is worth another attempt: transport failures (Error set
/// without a server code — the daemon may be back by the next try) and
/// queue_full rejections (the server asked us to come back).
static bool isRetryable(const CompileClient::Result &R) {
  if (R.Error.empty())
    return false;
  return R.ErrorCode.empty() || R.ErrorCode == errc::QueueFull;
}

CompileClient::Result CompileClient::requestWithRetry(
    bool Incremental, const CompilerInvocation &Inv, uint64_t DeadlineMs) {
  Result Last;
  for (unsigned Attempt = 1; Attempt <= Policy.MaxAttempts; ++Attempt) {
    if (Stats.BreakerOpen)
      return breakerOpenResult();
    if (Attempt > 1) {
      ++Stats.Retries;
      if (Last.ErrorCode == errc::QueueFull)
        ++Stats.QueueFullRetries;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoffMs(Attempt - 1, Last.RetryAfterMs)));
    }
    std::string Err;
    if (!isConnected() && !connect(&Err)) {
      noteTransportFailure();
      Last = Result();
      Last.Error = Err;
      continue;
    }
    Last = Incremental ? recompile(Inv, DeadlineMs) : compile(Inv, DeadlineMs);
    if (Last.Error.empty()) {
      noteTransportSuccess();
      return Last;
    }
    if (!Last.ErrorCode.empty())
      noteTransportSuccess(); // The server answered; transport is fine.
    else
      noteTransportFailure();
    if (!isRetryable(Last))
      return Last;
  }
  return Last;
}

CompileClient::Result CompileClient::compileWithRetry(
    const CompilerInvocation &Inv, uint64_t DeadlineMs) {
  return requestWithRetry(/*Incremental=*/false, Inv, DeadlineMs);
}

CompileClient::Result CompileClient::recompileWithRetry(
    const CompilerInvocation &Inv, uint64_t DeadlineMs) {
  return requestWithRetry(/*Incremental=*/true, Inv, DeadlineMs);
}

std::vector<CompileClient::Result> CompileClient::compileBatchWithRetry(
    const std::vector<CompilerInvocation> &Invs, uint64_t DeadlineMs) {
  std::vector<Result> Last(Invs.size());
  for (unsigned Attempt = 1; Attempt <= Policy.MaxAttempts; ++Attempt) {
    if (Stats.BreakerOpen) {
      for (Result &R : Last)
        R = breakerOpenResult();
      return Last;
    }
    if (Attempt > 1) {
      ++Stats.Retries;
      if (!Last.empty() && Last.front().ErrorCode == errc::QueueFull)
        ++Stats.QueueFullRetries;
      std::this_thread::sleep_for(std::chrono::milliseconds(
          backoffMs(Attempt - 1, Last.empty() ? 0 : Last.front().RetryAfterMs)));
    }
    std::string Err;
    if (!isConnected() && !connect(&Err)) {
      noteTransportFailure();
      for (Result &R : Last) {
        R = Result();
        R.Error = Err;
      }
      continue;
    }
    Last = compileBatch(Invs, DeadlineMs);
    if (Last.empty())
      return Last;
    if (Last.front().Error.empty()) {
      noteTransportSuccess();
      return Last;
    }
    if (!Last.front().ErrorCode.empty())
      noteTransportSuccess();
    else
      noteTransportFailure();
    if (!isRetryable(Last.front()))
      return Last;
  }
  return Last;
}

bool CompileClient::shutdownServer(std::string *Err) {
  Json Req = Json::object();
  Req.set("type", msg::Shutdown);
  Json Reply;
  if (!roundTrip(Req, Reply, Err))
    return false;
  if (Reply.getString("type") != msg::ShutdownOk) {
    if (Err)
      *Err = "unexpected '" + Reply.getString("type") + "' reply to shutdown";
    return false;
  }
  close(); // The server closes after shutdown_ok; so do we.
  return true;
}
