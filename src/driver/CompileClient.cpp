//===- CompileClient.cpp - Client side of the lssd protocol -------------------===//

#include "driver/CompileClient.h"

#include <unistd.h>

using namespace liberty;
using namespace liberty::driver;

void CompileClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool CompileClient::connect(std::string *Err) {
  close();
  Fd = netConnect(Address, Err);
  if (Fd < 0)
    return false;

  Json Hello = Json::object();
  Hello.set("type", msg::Hello)
      .set("version", uint64_t(DaemonProtocolVersion))
      .set("client", "lssc");
  Json Reply;
  if (!roundTrip(Hello, Reply, Err))
    return false;
  if (Reply.getString("type") != msg::HelloOk) {
    if (Err)
      *Err = "handshake refused: " +
             Reply.getString("message", "unexpected '" +
                                            Reply.getString("type") +
                                            "' reply");
    close();
    return false;
  }
  return true;
}

bool CompileClient::roundTrip(const Json &Msg, Json &Reply, std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "not connected";
    return false;
  }
  if (!writeMessage(Fd, Msg)) {
    if (Err)
      *Err = "send failed (daemon gone?)";
    close();
    return false;
  }
  std::string Payload;
  FrameStatus FS = readFrame(Fd, Payload, DaemonDefaultMaxFrameBytes);
  if (FS != FrameStatus::Ok) {
    if (Err)
      *Err = FS == FrameStatus::Eof ? "daemon closed the connection"
                                    : "receive failed";
    close();
    return false;
  }
  std::string ParseErr;
  if (!Json::parse(Payload, Reply, &ParseErr)) {
    if (Err)
      *Err = "malformed reply: " + ParseErr;
    close();
    return false;
  }
  return true;
}

Json CompileClient::requestBody(const CompilerInvocation &Inv,
                                uint64_t DeadlineMs) {
  Json Sources = Json::array();
  for (const CompilerInvocation::Source &S : Inv.Sources) {
    Json Src = Json::object();
    Src.set("name", S.Name).set("text", S.Text);
    Sources.push(std::move(Src));
  }
  // Only the wire-visible option subset crosses; docs/DAEMON.md specifies
  // it. The three solver heuristics ship individually so a remote compile
  // solves with exactly the invocation's configuration.
  Json Options = Json::object();
  Options.set("use_corelib", Inv.UseCoreLibrary)
      .set("max_errors", uint64_t(Inv.MaxErrors))
      .set("jobs", uint64_t(Inv.Solve.NumThreads))
      .set("reorder", Inv.Solve.ReorderSimpleFirst)
      .set("forced_elimination", Inv.Solve.ForcedDisjunctElimination)
      .set("partition", Inv.Solve.Partition)
      .set("infer_deadline_ms", Inv.Solve.DeadlineMs);
  if (DeadlineMs)
    Options.set("deadline_ms", DeadlineMs);

  Json Req = Json::object();
  Req.set("sources", std::move(Sources)).set("options", std::move(Options));
  return Req;
}

CompileClient::Result CompileClient::resultFromWire(const Json &Msg) {
  Result R;
  const std::string Type = Msg.getString("type");
  if (Type == msg::Error) {
    R.ErrorCode = Msg.getString("code", "error");
    R.Error = Msg.getString("message", "daemon error");
    R.RetryAfterMs = Msg.getU64("retry_after_ms");
    return R;
  }
  if (Type != msg::Result) {
    R.Error = "unexpected '" + Type + "' reply";
    return R;
  }
  R.Success = Msg.getBool("success");
  R.FailedPhase = Msg.getString("failed_phase", "none");
  R.ExitCode = int(Msg.getU64("exit_code"));
  R.ElabFromCache = Msg.getBool("elab_from_cache");
  R.SolutionFromCache = Msg.getBool("solution_from_cache");
  R.Degraded = Msg.getBool("degraded");
  R.GroupsUnsolved = Msg.getU64("groups_unsolved");
  R.Diagnostics = Msg.getString("diagnostics");
  R.Instances = Msg.getU64("instances");
  R.Connections = Msg.getU64("connections");
  R.QueueMs = Msg.getNumber("queue_ms");
  R.ServiceMs = Msg.getNumber("service_ms");
  return R;
}

CompileClient::Result CompileClient::compile(const CompilerInvocation &Inv,
                                             uint64_t DeadlineMs) {
  Json Req = requestBody(Inv, DeadlineMs);
  Req.set("type", msg::Compile).set("id", NextId++);
  Json Reply;
  std::string Err;
  if (!roundTrip(Req, Reply, &Err)) {
    Result R;
    R.Error = Err;
    return R;
  }
  return resultFromWire(Reply);
}

std::vector<CompileClient::Result>
CompileClient::compileBatch(const std::vector<CompilerInvocation> &Invs,
                            uint64_t DeadlineMs) {
  Json Requests = Json::array();
  for (const CompilerInvocation &Inv : Invs)
    Requests.push(requestBody(Inv, DeadlineMs));
  Json Req = Json::object();
  Req.set("type", msg::Batch)
      .set("id", NextId++)
      .set("requests", std::move(Requests));

  std::vector<Result> Results(Invs.size());
  Json Reply;
  std::string Err;
  if (!roundTrip(Req, Reply, &Err)) {
    for (Result &R : Results)
      R.Error = Err;
    return Results;
  }
  if (Reply.getString("type") != msg::BatchResult) {
    Result E = resultFromWire(Reply); // Carries the server error, if any.
    if (E.Error.empty())
      E.Error = "unexpected reply to batch";
    for (Result &R : Results)
      R = E;
    return Results;
  }
  static const std::vector<Json> Empty;
  const Json *Wire = Reply.get("results");
  const std::vector<Json> &Items = Wire ? Wire->items() : Empty;
  for (size_t I = 0; I != Results.size(); ++I) {
    if (I < Items.size())
      Results[I] = resultFromWire(Items[I]);
    else
      Results[I].Error = "batch reply truncated";
  }
  return Results;
}

bool CompileClient::stats(Json &Out, std::string *Err) {
  Json Req = Json::object();
  Req.set("type", msg::Stats);
  if (!roundTrip(Req, Out, Err))
    return false;
  if (Out.getString("type") != msg::StatsResult) {
    if (Err)
      *Err = "unexpected '" + Out.getString("type") + "' reply to stats";
    return false;
  }
  return true;
}

bool CompileClient::shutdownServer(std::string *Err) {
  Json Req = Json::object();
  Req.set("type", msg::Shutdown);
  Json Reply;
  if (!roundTrip(Req, Reply, Err))
    return false;
  if (Reply.getString("type") != msg::ShutdownOk) {
    if (Err)
      *Err = "unexpected '" + Reply.getString("type") + "' reply to shutdown";
    return false;
  }
  close(); // The server closes after shutdown_ok; so do we.
  return true;
}
