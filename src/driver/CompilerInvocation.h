//===- CompilerInvocation.h - One compile, as a value -----------*- C++ -*-===//
///
/// \file
/// A CompilerInvocation is the complete, self-contained description of one
/// LSS compilation: the source texts plus every option of every phase
/// (elaboration, type inference, simulator construction). It is a plain
/// value — copyable, comparable by fingerprint, buildable without touching
/// the filesystem — and is the single currency of the driver API: every
/// Compiler phase entry point and the CompileService batch/cache layer
/// take one.
///
/// ## Fingerprints (the cache key contract)
///
/// Each phase key hashes exactly the inputs that can change that phase's
/// *successful* output, so a cache hit is behaviorally indistinguishable
/// from a cold compile:
///
///  - elabKey(): artifact-format version, UseCoreLibrary (and the core
///    library text itself), every user source text in order, and the
///    elaboration caps (Elab.MaxSteps, Elab.MaxInstances). Source *names*
///    are excluded — the cache is content-addressed, and names only affect
///    how diagnostics render, which the warm compile reproduces from its
///    own buffer table.
///  - solveKey(): elabKey() plus the solver heuristics
///    (Solve.ReorderSimpleFirst, ForcedDisjunctElimination, Partition).
///    Solve.NumThreads is deliberately EXCLUDED: serial and parallel
///    solves are bit-identical by contract, and a test pins this.
///    Solve.MaxSteps and Solve.DeadlineMs are also excluded — budgets only
///    decide *whether* a solve succeeds, never what the solution is, and
///    failed compiles are never cached.
///  - fingerprint(): everything above plus the budgets, MaxErrors, and the
///    simulator options except Sim.Jobs; BuildSim is excluded. This is
///    the whole-invocation identity (bench A/B labels, logs) — not a cache
///    key itself.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_COMPILERINVOCATION_H
#define LIBERTY_DRIVER_COMPILERINVOCATION_H

#include "infer/InferenceEngine.h"
#include "interp/Interpreter.h"
#include "sim/Simulator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace liberty {
namespace driver {

class CompilerInvocation {
public:
  /// One named source text. The text is read eagerly (addFile) so an
  /// invocation never does I/O after construction — fingerprints are pure.
  struct Source {
    std::string Name;
    std::string Text;
  };

  std::vector<Source> Sources;

  /// Parse and register the standard component library first.
  bool UseCoreLibrary = true;
  /// Pipeline-wide error cap (DiagnosticEngine::setMaxErrors); 0 = unlimited.
  unsigned MaxErrors = 50;

  interp::Interpreter::Options Elab;
  infer::SolveOptions Solve;
  sim::Simulator::Options Sim;
  /// Whether the compile runs simulator construction at all. Excluded from
  /// the fingerprint: it selects how much of the pipeline runs, not what
  /// any phase produces.
  bool BuildSim = true;

  void addSource(std::string Name, std::string Text) {
    Sources.push_back({std::move(Name), std::move(Text)});
  }
  /// Reads \p Path into a new source. On failure returns false and, when
  /// \p Error is non-null, stores a one-line description.
  bool addFile(const std::string &Path, std::string *Error = nullptr);

  /// Key of the elaborated-netlist artifact. See the contract above.
  /// Since format v2 this is a Merkle root over per-module content hashes
  /// (driver/DepGraph): each source text enters as a fold of its top-level
  /// module spans plus the residual text, so the key the incremental
  /// driver diffs against is derived from the same per-module hashes it
  /// stores in the dependency artifact.
  uint64_t elabKey() const;
  /// Key of the dependency-graph artifact (LSSDEP, docs/INCREMENTAL.md).
  /// Content-INDEPENDENT by design: hashes the source *names* (plus the
  /// elaboration caps and solver heuristics), never the texts, so an
  /// edited project maps to the same entry and compileIncremental can find
  /// the previous compile's graph.
  uint64_t depKey() const;
  /// Key of the inference-solution artifact. See the contract above.
  uint64_t solveKey() const;
  /// Whole-invocation identity (excludes NumThreads/Jobs/BuildSim).
  uint64_t fingerprint() const;

  /// Renders a key as the 16-hex-digit form used in cache file names.
  static std::string keyString(uint64_t Key);
};

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_COMPILERINVOCATION_H
