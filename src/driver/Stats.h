//===- Stats.h - Reuse statistics (Table 2) ---------------------*- C++ -*-===//
///
/// \file
/// Computes the component-reuse metrics the paper reports in Table 2 from
/// an elaborated netlist: instance counts by kind, module counts, fraction
/// of instances drawn from the component library, the number of explicit
/// type instantiations needed with and without inference, inferred port
/// widths, and connection counts.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_STATS_H
#define LIBERTY_DRIVER_STATS_H

#include "driver/ArtifactCache.h"
#include "infer/InferenceEngine.h"

#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace liberty {

class PhaseTimer;

namespace netlist {
class Netlist;
}

namespace sim {
class Simulator;
}

namespace driver {

struct IncrementalStats;

/// Version of the `lssc --stats-json` document and the daemon's
/// `stats_result` message. Bumped whenever a field is added, removed, or
/// changes meaning; both emitters stamp it as "schema_version" so
/// dashboards can gate on the shape they understand. check_docs.sh lints
/// the emitted field names against docs/API.md.
constexpr uint32_t StatsSchemaVersion = 2;

struct ModelStats {
  std::string Name;

  unsigned TotalInstances = 0; ///< Excluding the synthetic root.
  unsigned HierarchicalInstances = 0;
  unsigned LeafInstances = 0;
  /// Hierarchical instances whose module contains exactly one kind of
  /// sub-module and no structural parameters — the "trivial wrappers" the
  /// paper discounts in parentheses.
  unsigned TrivialHierarchicalInstances = 0;

  unsigned DistinctModules = 0;
  unsigned DistinctLeafModules = 0;
  unsigned DistinctHierarchicalModules = 0;

  unsigned InstancesFromLibrary = 0;
  unsigned ModulesFromLibrary = 0;

  /// Sum over instances of the number of type variables in their port
  /// schemes: each is an explicit instantiation a user would have to write
  /// without inference.
  unsigned ExplicitTypesWithoutInference = 0;
  /// Explicit annotations actually present in the user specification.
  unsigned ExplicitTypesWithInference = 0;

  /// Ports whose (non-zero) width was inferred from connectivity.
  unsigned InferredPortWidths = 0;
  unsigned Connections = 0;

  double pctFromLibrary() const {
    return TotalInstances
               ? 100.0 * InstancesFromLibrary / TotalInstances
               : 0.0;
  }
  double instancesPerModule() const {
    return DistinctModules ? double(TotalInstances) / DistinctModules : 0.0;
  }
};

/// Computes Table 2 metrics for one elaborated model.
ModelStats computeModelStats(const netlist::Netlist &NL,
                             const std::set<std::string> &LibraryModules,
                             unsigned NumUserAnnotations,
                             std::string Name = "");

/// Column-wise sum of several models' stats (the paper's "Total" row).
ModelStats totalStats(const std::vector<ModelStats> &All);

/// Prints one Table 2 row (or the header with Header=true).
void printTable2Row(std::ostream &OS, const ModelStats &S);
void printTable2Header(std::ostream &OS);

/// One compile's view of the artifact cache, for the "cache" section of
/// `lssc --stats-json`: the shared counters plus which of this compile's
/// phases were satisfied from the cache.
struct CacheReport {
  CacheStats Stats;
  bool ElabFromCache = false;
  bool SolutionFromCache = false;
  bool KernelFromCache = false;
};

/// Serializes one compilation's observability record as a JSON document:
/// per-phase wall times and counters from \p Timer, the inference solve
/// record including per-H3-group unify-step counts, and the Table 2 reuse
/// metrics. This is the payload of `lssc --stats-json`. When \p Sim is
/// non-null (a simulation ran), a "simulation" section reports the
/// engine configuration (resolved engine name, worker threads, wavefront
/// level shape), the selective-trace activity counters, the compiled
/// engine's kernel build record when one exists, and — when the caller
/// measured it — the achieved simulation rate in cycles per second
/// (\p CyclesPerSec; <= 0 omits the field). When \p Cache is non-null
/// (the artifact cache was enabled), a "cache" section reports hit/miss
/// counters and which phases were reloaded. When \p Incremental is
/// non-null (the compile went through compileIncremental), an
/// "incremental" section reports whether the dependency-tracked path was
/// used and how much work it actually did (docs/INCREMENTAL.md).
void printStatsJson(std::ostream &OS, const ModelStats &S,
                    const infer::NetlistInferenceStats &IS,
                    const PhaseTimer &Timer,
                    const sim::Simulator *Sim = nullptr,
                    const CacheReport *Cache = nullptr,
                    double CyclesPerSec = 0.0,
                    const IncrementalStats *Incremental = nullptr);

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_STATS_H
