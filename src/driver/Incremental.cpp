//===- Incremental.cpp - Dependency-tracked incremental recompilation --------===//
///
/// \file
/// CompileService::compileIncremental and the dependency-graph bookkeeping
/// behind it (docs/INCREMENTAL.md). The contract is strict: every artifact
/// an incremental compile produces (netlist, solution, kernel) is
/// byte-identical to what a cold compile of the same invocation would have
/// produced; whenever any precondition fails, the call transparently falls
/// back to the full pipeline and records why.
///
//===----------------------------------------------------------------------===//

#include "driver/CompileService.h"
#include "driver/DepGraph.h"

#include "infer/Solution.h"
#include "netlist/Serializer.h"
#include "sim/CompiledKernel.h"
#include "sim/Simulator.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

using namespace liberty;
using namespace liberty::driver;

/// Copies the diagnostics emitted at index \p From onward (same helper as
/// CompileService.cpp — kept static per TU to avoid a header for one line).
static std::vector<Diagnostic> incDiagsSince(Compiler &C, size_t From) {
  const auto &All = C.getDiags().getDiagnostics();
  return std::vector<Diagnostic>(All.begin() + From, All.end());
}

void CompileService::recordIncremental(const IncrementalStats &S) {
  std::lock_guard<std::mutex> Lock(IncMutex);
  ++IncCounters.Requests;
  if (S.Used)
    ++IncCounters.Used;
  else
    ++IncCounters.Fallbacks;
  if (S.DepCacheHit)
    ++IncCounters.DepCacheHits;
  IncCounters.ModulesReelaborated += S.ModulesReelaborated;
  IncCounters.GroupsResolved += S.GroupsResolved;
  IncCounters.GroupsSpliced += S.GroupsSpliced;
}

void CompileService::storeDepGraph(const CompilerInvocation &Inv, Compiler &C,
                                   size_t DiagBase) {
  if (!Opts.CacheEnabled || C.getDiags().hasErrors())
    return;
  interp::Interpreter *Interp = C.getInterpreter();
  netlist::Netlist *NL = C.getNetlist();
  // Warm (cache-adopted) compiles have no interpreter: the previous live
  // compile already stored an up-to-date graph under the same depKey.
  if (!Interp || !NL || Interp->getBodyWindows().empty())
    return;

  DepGraph G;
  G.PrevElabKey = Inv.elabKey();
  G.PrevSolveKey = Inv.solveKey();

  for (const auto &S : Inv.Sources) {
    DepGraph::SourceDeps SD;
    SD.Name = S.Name;
    std::vector<ModuleSpan> Spans;
    if (scanModuleSpans(S.Text, Spans)) {
      SD.Scanned = true;
      SD.ResidualHash = hashResidual(S.Text, Spans);
      for (const ModuleSpan &Sp : Spans)
        SD.Modules.push_back({Sp.Name, hashModuleSpan(S.Text, Sp)});
    } else {
      SD.Scanned = false;
      FnvHasher H;
      H.field("flat", 1);
      H.str(S.Text);
      SD.ResidualHash = H.get();
    }
    G.Sources.push_back(std::move(SD));
  }

  const auto &Insts = NL->getInstances();
  G.Instances.resize(Insts.size());
  for (const auto &Entry : Interp->getBodyWindows()) {
    const netlist::InstanceNode *Node = Entry.first;
    // Diagnostic windows are stored relative to DiagBase so they index the
    // LSSNL artifact's diagnostics list and the bytes don't depend on
    // pre-pipeline notes.
    if (Node->Id >= G.Instances.size() || Entry.second.DiagBegin < DiagBase)
      return; // inconsistent — don't store a lying graph
    DepGraph::InstDep &D = G.Instances[Node->Id];
    D.ConnBegin = Entry.second.ConnBegin;
    D.ConnEnd = Entry.second.ConnEnd;
    D.DiagBegin = uint32_t(Entry.second.DiagBegin - DiagBase);
    D.DiagEnd = uint32_t(Entry.second.DiagEnd - DiagBase);
  }

  const auto &Conns = NL->getConnections();
  std::unordered_map<const netlist::Connection *, uint32_t> ConnIdx;
  ConnIdx.reserve(Conns.size());
  for (uint32_t I = 0; I != Conns.size(); ++I)
    ConnIdx[Conns[I].get()] = I;

  std::set<std::pair<std::string, std::string>> EdgeSet;
  for (const auto &InstPtr : Insts) {
    const netlist::InstanceNode *N = InstPtr.get();
    DepGraph::InstDep &D = G.Instances[N->Id];
    for (const auto &PA : N->APendingAssigns) {
      DepGraph::PendingAssignDep A;
      A.Field = PA.Field;
      A.Loc = PA.Loc;
      if (!netlist::artifactEncodeValue(PA.V, A.Value)) {
        G.Capable = false; // InstanceRef/Port parameter — not replayable
        A.Value.clear();
      }
      D.Assigns.push_back(std::move(A));
    }
    for (const auto &PC : N->APendingConns) {
      auto It = PC.Conn ? ConnIdx.find(PC.Conn) : ConnIdx.end();
      if (It == ConnIdx.end()) {
        G.Capable = false;
        continue;
      }
      DepGraph::PendingConnDep CD;
      CD.ConnIdx = It->second;
      CD.IsFrom = PC.IsFrom;
      CD.Port = PC.Port;
      CD.ExplicitIndex = PC.ExplicitIndex;
      CD.Loc = PC.Loc;
      D.Conns.push_back(std::move(CD));
    }
    if (N->Parent)
      EdgeSet.emplace(N->Parent->ModuleName, N->ModuleName);
  }
  G.Edges.assign(EdgeSet.begin(), EdgeSet.end());

  const infer::NetlistInferenceStats &IS = C.getInferenceStats();
  if (!IS.PortGroups.empty()) {
    std::map<std::string, std::set<unsigned>> MG;
    for (const auto &Entry : IS.PortGroups) {
      if (Entry.second.first < 0)
        continue;
      unsigned InstId = Entry.first.first;
      if (InstId < Insts.size())
        MG[Insts[InstId]->ModuleName].insert(unsigned(Entry.second.first));
    }
    for (auto &Entry : MG)
      G.ModuleGroups.emplace_back(
          Entry.first,
          std::vector<unsigned>(Entry.second.begin(), Entry.second.end()));
  }

  std::string Payload;
  if (serializeDepGraph(G, Payload))
    Cache.put(CompilerInvocation::keyString(Inv.depKey()), "dep", Payload);
}

CompileResult CompileService::compileIncremental(const CompilerInvocation &Inv) {
  IncrementalStats Inc;
  Inc.Attempted = true;

  auto Fallback = [&](const char *Reason) {
    Inc.Used = false;
    Inc.FallbackReason = Reason;
    CompileResult R = compile(Inv);
    R.Incremental = Inc;
    recordIncremental(R.Incremental);
    return R;
  };

  if (!Opts.CacheEnabled)
    return Fallback("cache-disabled");

  // --- Load and diff the dependency graph. -------------------------------
  std::string DepPayload;
  if (!Cache.get(CompilerInvocation::keyString(Inv.depKey()), "dep",
                 DepPayload))
    return Fallback("no-dependency-graph");
  DepGraph Old;
  if (!deserializeDepGraph(DepPayload, Old))
    return Fallback("dependency-graph-unreadable");
  Inc.DepCacheHit = true;
  if (!Old.Capable)
    return Fallback("previous-compile-not-replayable");
  if (Old.Sources.size() != Inv.Sources.size())
    return Fallback("source-set-changed");

  std::set<std::string> Dirty;      // module names whose hash changed
  std::set<std::string> AllModules; // every module name in the new text
  for (size_t I = 0; I != Inv.Sources.size(); ++I) {
    const DepGraph::SourceDeps &OldS = Old.Sources[I];
    if (OldS.Name != Inv.Sources[I].Name)
      return Fallback("source-set-changed");
    std::vector<ModuleSpan> Spans;
    if (!OldS.Scanned || !scanModuleSpans(Inv.Sources[I].Text, Spans))
      return Fallback("source-not-scannable");
    if (hashResidual(Inv.Sources[I].Text, Spans) != OldS.ResidualHash)
      return Fallback("top-level-changed");
    std::map<std::string, uint64_t> NewByName, OldByName;
    for (const ModuleSpan &S : Spans) {
      if (!NewByName.emplace(S.Name, hashModuleSpan(Inv.Sources[I].Text, S))
               .second)
        return Fallback("duplicate-module-name");
      AllModules.insert(S.Name);
    }
    for (const auto &M : OldS.Modules)
      if (!OldByName.emplace(M.Name, M.Hash).second)
        return Fallback("duplicate-module-name");
    for (const auto &Entry : NewByName) {
      auto It = OldByName.find(Entry.first);
      if (It == OldByName.end() || It->second != Entry.second)
        Dirty.insert(Entry.first);
    }
    for (const auto &Entry : OldByName)
      if (!NewByName.count(Entry.first))
        Dirty.insert(Entry.first);
  }
  Inc.ModulesTotal = unsigned(AllModules.size());
  Inc.ModulesDirty = unsigned(Dirty.size());

  // Unchanged text — or an already-seen state whose artifacts are cached —
  // is exactly what the plain warm path serves best.
  const std::string ElabKeyStr = CompilerInvocation::keyString(Inv.elabKey());
  {
    std::string Probe;
    if (Dirty.empty() || Cache.get(ElabKeyStr, "elab", Probe)) {
      Inc.FallbackReason = "already-cached";
      CompileResult R = compile(Inv);
      R.Incremental = Inc;
      recordIncremental(R.Incremental);
      return R;
    }
  }

  // --- Load the previous compile's netlist. ------------------------------
  std::string OldElabPayload;
  if (!Cache.get(CompilerInvocation::keyString(Old.PrevElabKey), "elab",
                 OldElabPayload))
    return Fallback("previous-netlist-missing");

  CompileResult R;
  R.C = std::make_unique<Compiler>();
  Compiler &C = *R.C;

  netlist::SerializedCompile OldSC;
  {
    PhaseTimer::Scope Phase(&C.getPhaseTimer(), "cache-load");
    OldSC = netlist::deserializeNetlist(OldElabPayload, C.getTypeContext());
  }
  if (!OldSC.NL) {
    R.C.reset();
    return Fallback("previous-netlist-unreadable");
  }
  netlist::Netlist &OldNL = *OldSC.NL;
  const auto &OldInsts = OldNL.getInstances();
  const auto &OldConns = OldNL.getConnections();
  if (Old.Instances.size() != OldInsts.size() || OldInsts.empty()) {
    R.C.reset();
    return Fallback("dependency-graph-stale");
  }
  for (const DepGraph::InstDep &D : Old.Instances) {
    if (D.ConnBegin > D.ConnEnd || D.ConnEnd > OldConns.size() ||
        D.DiagBegin > D.DiagEnd || D.DiagEnd > OldSC.Diags.size()) {
      R.C.reset();
      return Fallback("dependency-graph-stale");
    }
    for (const DepGraph::PendingConnDep &PC : D.Conns)
      if (PC.ConnIdx >= OldConns.size()) {
        R.C.reset();
        return Fallback("dependency-graph-stale");
      }
  }

  // --- The replay plan. --------------------------------------------------
  // PlanOldId: new clean-module instances scheduled for replay -> the old
  // instance whose body they reuse. Filled as replayed parents re-create
  // their children; consulted by the hook when each body's turn comes.
  std::unordered_map<const netlist::InstanceNode *, uint32_t> PlanOldId;
  // Old instance id -> new node, for every old instance re-created so far
  // (clean AND dirty: dirty shells still map 1:1, only their subtrees
  // diverge). Used to retarget cloned connection endpoints.
  std::vector<netlist::InstanceNode *> OldToNew(OldInsts.size(), nullptr);
  // Old instance id -> new id, for instances whose bodies were REPLAYED
  // (so their constraints are guaranteed unchanged) — the translation the
  // splice oracle uses. -1 everywhere else.
  std::vector<int> OldIdToNewReplayed(OldInsts.size(), -1);
  std::vector<netlist::Connection *> ConnMap(OldConns.size(), nullptr);
  bool ReplayFailed = false;
  unsigned InstancesSpliced = 0;

  auto ReplayBody = [&](netlist::InstanceNode *N, uint32_t OldId) {
    interp::Interpreter *Interp = C.getInterpreter();
    netlist::Netlist *NL = Interp->getNetlistUnderConstruction();
    const netlist::InstanceNode *O = OldInsts[OldId].get();
    const DepGraph::InstDep &W = Old.Instances[OldId];
    OldToNew[OldId] = N;
    OldIdToNewReplayed[OldId] = int(N->Id);

    // The body's own products, straight from the old node. Types (port
    // schemes, param/var values) live in C's TypeContext because the old
    // netlist was deserialized into it; interned ids are NOT copied —
    // the new netlist's freezeIds() re-interns after elaboration.
    N->BehaviorId = O->BehaviorId;
    N->Params = O->Params;
    N->Events = O->Events;
    N->RuntimeVars = O->RuntimeVars;
    N->ExtraConstraints = O->ExtraConstraints;
    N->NumTypeVars = O->NumTypeVars;
    N->Ports = O->Ports;
    for (netlist::Port &P : N->Ports) {
      P.Resolved = nullptr; // elab artifacts precede inference
      P.InferVar = nullptr;
      P.NameSym = netlist::SymbolId();
      P.NodeOffset = 0;
    }
    for (const auto &Entry : O->Userpoints) {
      netlist::UserpointValue UV;
      UV.Code = Entry.second.Code;
      UV.Loc = Entry.second.Loc;
      UV.IsDefault = Entry.second.IsDefault;
      if (Entry.second.Sig) {
        std::vector<std::string> Args;
        for (const auto &A : Entry.second.Sig->Args)
          Args.push_back(A.first);
        UV.Sig = NL->createUserpointSig(std::move(Args));
      }
      N->Userpoints.emplace(Entry.first, std::move(UV));
    }

    // Clone the body's connection window in creation order (connection ids
    // are a separate sequence from instance ids, so cloning them first
    // preserves both creation orders exactly).
    for (uint32_t CI = W.ConnBegin; CI != W.ConnEnd; ++CI) {
      const netlist::Connection *OC = OldConns[CI].get();
      netlist::Connection *NC = NL->createConnection(OC->Loc);
      NC->Annotation = OC->Annotation;
      ConnMap[CI] = NC;
    }

    // Re-create the child shells in creation order. replayChild pushes
    // them on the instantiation stack exactly as an `instance` statement
    // would, so body scheduling matches a cold elaboration.
    for (const netlist::InstanceNode *OChild : O->Children) {
      if (size_t(OChild->Id) >= Old.Instances.size()) {
        ReplayFailed = true;
        return;
      }
      netlist::InstanceNode *NChild =
          Interp->replayChild(N, OChild->Name, OChild->ModuleName, OChild->Loc);
      if (!NChild) { // unknown module (or instance cap) — bail out
        ReplayFailed = true;
        return;
      }
      OldToNew[OChild->Id] = NChild;
      if (!Dirty.count(OChild->ModuleName))
        PlanOldId.emplace(NChild, uint32_t(OChild->Id));
      // Attach the A-context this body pushed on the child. Consumed stays
      // false either way: replayed child bodies never run the
      // leftover-pending checks, and a dirty child consumes these live.
      const DepGraph::InstDep &CD = Old.Instances[OChild->Id];
      for (const DepGraph::PendingAssignDep &A : CD.Assigns) {
        netlist::PendingAssign PA;
        PA.Field = A.Field;
        PA.Loc = A.Loc;
        if (!netlist::artifactDecodeValue(A.Value, PA.V)) {
          ReplayFailed = true;
          return;
        }
        NChild->APendingAssigns.push_back(std::move(PA));
      }
      for (const DepGraph::PendingConnDep &PC : CD.Conns) {
        if (!ConnMap[PC.ConnIdx]) {
          ReplayFailed = true;
          return;
        }
        netlist::PendingConn NPC;
        NPC.Conn = ConnMap[PC.ConnIdx];
        NPC.IsFrom = PC.IsFrom;
        NPC.Port = PC.Port;
        NPC.ExplicitIndex = int(PC.ExplicitIndex);
        NPC.Loc = PC.Loc;
        NChild->APendingConns.push_back(std::move(NPC));
      }
    }

    // Fill the cloned connections' endpoints. Self endpoints and endpoints
    // on clean children copy the old resolution; endpoints on dirty
    // children stay unfilled — exactly the mid-elaboration state a cold
    // compile would be in — and the pending records attached above let the
    // dirty child's live body resolve them.
    for (uint32_t CI = W.ConnBegin; CI != W.ConnEnd; ++CI) {
      const netlist::Connection *OC = OldConns[CI].get();
      netlist::Connection *NC = ConnMap[CI];
      auto FillEnd = [&](const netlist::PortRef &OR, netlist::PortRef &NR) {
        if (!OR.Inst)
          return true; // never resolved in the previous compile either
        if (OR.Inst == O) {
          NR.Inst = N;
        } else if (OR.Inst->Parent == O) {
          netlist::InstanceNode *NChild = OldToNew[OR.Inst->Id];
          if (!NChild)
            return false;
          if (Dirty.count(OR.Inst->ModuleName))
            return true; // the dirty child's live body resolves this end
          NR.Inst = NChild;
        } else {
          return false; // endpoint escapes this body's scope — stale graph
        }
        NR.Port = OR.Port;
        NR.Index = OR.Index;
        NR.PortIdx = -1;
        return true;
      };
      if (!FillEnd(OC->From, NC->From) || !FillEnd(OC->To, NC->To)) {
        ReplayFailed = true;
        return;
      }
    }

    // Replay the diagnostics this body emitted (warnings/notes only —
    // error-free compiles are the only ones cached).
    for (uint32_t DI = W.DiagBegin; DI != W.DiagEnd; ++DI) {
      const Diagnostic &D = OldSC.Diags[DI];
      if (D.Level == DiagLevel::Warning)
        C.getDiags().warning(D.Loc, D.Message);
      else if (D.Level == DiagLevel::Note)
        C.getDiags().note(D.Loc, D.Message);
    }
    ++InstancesSpliced;
  };

  C.setReplayHook([&](netlist::InstanceNode *N) {
    // After any replay failure the whole elaboration is discarded; keep
    // skipping bodies (returning true) so no time is wasted evaluating.
    if (ReplayFailed)
      return true;
    uint32_t OldId;
    if (!N->Parent) {
      OldId = 0; // the synthetic root replays the residual (unchanged) text
    } else {
      auto It = PlanOldId.find(N);
      if (It == PlanOldId.end())
        return false; // dirty module (or child of one): evaluate live
      OldId = It->second;
    }
    ReplayBody(N, OldId);
    return true;
  });

  // --- Parse everything, elaborate with replay. --------------------------
  size_t DiagStart = C.getDiags().getDiagnostics().size();
  if (!C.addSources(Inv)) {
    R.C.reset();
    return Fallback("parse-error"); // cold diagnostics are authoritative
  }
  if (!C.elaborate(Inv) || ReplayFailed || C.getDiags().hasErrors()) {
    R.C.reset();
    return Fallback(ReplayFailed ? "replay-failed" : "elaborate-error");
  }

  netlist::Netlist *NL = C.getNetlist();
  Inc.InstancesTotal = unsigned(NL->getInstances().size());
  Inc.InstancesSpliced = InstancesSpliced;
  Inc.InstancesReelaborated = Inc.InstancesTotal - InstancesSpliced;
  {
    std::set<std::string> LiveModules;
    for (const auto &I : NL->getInstances())
      if (I->Parent && !PlanOldId.count(I.get()))
        LiveModules.insert(I->ModuleName);
    Inc.ModulesReelaborated = unsigned(LiveModules.size());
  }

  {
    std::string Payload;
    if (netlist::serializeNetlist(*NL, C.getLibraryModules(),
                                  C.getNumUserTypeAnnotations(),
                                  incDiagsSince(C, DiagStart), Payload))
      Cache.put(ElabKeyStr, "elab", Payload);
  }

  // --- Solve, splicing the previous solution's untouched groups. ---------
  // Import the previous solution against the OLD netlist: its group member
  // sets (old instance ids), per-group statistics, and per-port resolved
  // types + defaulting counts are the splice source.
  infer::NetlistInferenceStats OldIS;
  bool HaveOldSolution = false;
  {
    std::string Payload;
    std::vector<Diagnostic> Ds;
    if (Cache.get(CompilerInvocation::keyString(Old.PrevSolveKey), "solve",
                  Payload)) {
      PhaseTimer::Scope Phase(&C.getPhaseTimer(), "cache-load");
      if (infer::importSolution(Payload, OldNL, C.getTypeContext(), OldIS,
                                Ds) &&
          !OldIS.Solve.GroupMembers.empty() && !OldIS.PortGroups.empty())
        HaveOldSolution = true;
    }
  }

  // Old group member set -> old group index. Identity of a group across
  // compiles is its member-instance-id SET (group indices are not stable
  // under re-partitioning); duplicate sets are ambiguous and never splice.
  std::map<std::vector<unsigned>, int> OldGroupBySet;
  std::set<std::vector<unsigned>> AmbiguousSets;
  if (HaveOldSolution)
    for (size_t G = 0; G != OldIS.Solve.GroupMembers.size(); ++G) {
      const std::vector<unsigned> &M = OldIS.Solve.GroupMembers[G];
      if (M.empty())
        continue;
      if (!OldGroupBySet.emplace(M, int(G)).second)
        AmbiguousSets.insert(M);
    }

  // New instance id -> old instance id, for replayed (constraint-identical)
  // instances only.
  std::vector<int> NewIdToOld(NL->getInstances().size(), -1);
  for (size_t I = 0; I != OldIdToNewReplayed.size(); ++I)
    if (OldIdToNewReplayed[I] >= 0 &&
        size_t(OldIdToNewReplayed[I]) < NewIdToOld.size())
      NewIdToOld[OldIdToNewReplayed[I]] = int(I);

  infer::NetlistSpliceHooks Hooks;
  Hooks.Oracle = [&](unsigned, const std::vector<unsigned> &Members,
                     infer::GroupStats &Out) {
    if (Members.empty())
      return false;
    std::vector<unsigned> OldMembers;
    OldMembers.reserve(Members.size());
    for (unsigned NewId : Members) {
      int OldId = NewId < NewIdToOld.size() ? NewIdToOld[NewId] : -1;
      if (OldId < 0)
        return false; // touches a re-elaborated instance: search live
      OldMembers.push_back(unsigned(OldId));
    }
    std::sort(OldMembers.begin(), OldMembers.end());
    OldMembers.erase(std::unique(OldMembers.begin(), OldMembers.end()),
                     OldMembers.end());
    if (AmbiguousSets.count(OldMembers))
      return false;
    auto It = OldGroupBySet.find(OldMembers);
    if (It == OldGroupBySet.end())
      return false; // partitioning changed around these instances
    Out = OldIS.Solve.Groups[It->second];
    return true;
  };
  Hooks.Port = [&](unsigned InstId, unsigned PortIdx,
                   infer::PortSpliceData &Out) {
    int OldId = InstId < NewIdToOld.size() ? NewIdToOld[InstId] : -1;
    if (OldId < 0)
      return false;
    const netlist::InstanceNode *O = OldInsts[OldId].get();
    if (PortIdx >= O->Ports.size() || !O->Ports[PortIdx].Resolved)
      return false;
    auto It = OldIS.PortGroups.find({unsigned(OldId), PortIdx});
    if (It == OldIS.PortGroups.end())
      return false;
    Out.Resolved = O->Ports[PortIdx].Resolved;
    Out.NumDefaulted = It->second.second;
    return true;
  };

  {
    size_t SolveDiagStart = C.getDiags().getDiagnostics().size();
    if (!C.inferTypes(Inv, HaveOldSolution ? &Hooks : nullptr)) {
      R.Failed = CompileResult::Phase::Infer;
      R.Incremental = Inc;
      recordIncremental(R.Incremental);
      return R;
    }
    if (C.getInferenceStats().SpliceBroken) {
      // A spliced group's per-port record was missing: the netlist's
      // resolved types are incomplete and cannot be repaired in place.
      R.C.reset();
      return Fallback("splice-record-missing");
    }
    if (!C.getDiags().hasErrors()) {
      std::string Payload;
      if (infer::exportSolution(*NL, C.getInferenceStats(),
                                incDiagsSince(C, SolveDiagStart), Payload))
        Cache.put(CompilerInvocation::keyString(Inv.solveKey()), "solve",
                  Payload);
    }
  }

  const infer::SolveStats &SS = C.getInferenceStats().Solve;
  Inc.GroupsTotal = unsigned(SS.Groups.size());
  for (size_t G = 0; G != SS.GroupSpliced.size(); ++G)
    if (SS.GroupSpliced[G])
      ++Inc.GroupsSpliced;
  Inc.GroupsResolved = Inc.GroupsTotal - Inc.GroupsSpliced;

  // --- Simulator construction — identical to compile()'s kernel phase. ---
  if (Inv.BuildSim) {
    const bool WantKernel = Inv.Sim.Engine == sim::EngineKind::Compiled;
    std::string KernelPayload;
    const std::string *KernelArt = nullptr;
    if (WantKernel && Cache.get(ElabKeyStr, "kernel", KernelPayload))
      KernelArt = &KernelPayload;
    if (!C.buildSimulator(Inv, KernelArt) || C.getDiags().hasErrors()) {
      R.Failed = CompileResult::Phase::SimBuild;
      R.Incremental = Inc;
      recordIncremental(R.Incremental);
      return R;
    }
    if (WantKernel) {
      const sim::KernelStats *KS = C.getSimulator()->getKernelStats();
      if (KS && KS->FromCache) {
        R.KernelFromCache = true;
      } else {
        if (KernelArt)
          C.getDiags().note(SourceLoc(),
                            "ignoring unreadable cache entry for key " +
                                ElabKeyStr + " (kernel); recompiling");
        std::string Out;
        if (C.getSimulator()->serializeKernel(Out))
          Cache.put(ElabKeyStr, "kernel", Out);
      }
    }
  }

  storeDepGraph(Inv, C, DiagStart);

  Inc.Used = true;
  R.Incremental = Inc;
  recordIncremental(R.Incremental);
  R.Success = true;
  return R;
}
