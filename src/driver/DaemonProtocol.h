//===- DaemonProtocol.h - The lssd wire protocol ----------------*- C++ -*-===//
///
/// \file
/// Everything both ends of an `lssd` connection share: the protocol
/// version, the canonical message-type and error-code registries, a small
/// self-contained JSON value (parser + writer), length-prefixed frame I/O,
/// and the socket helpers that turn an address string into a connected or
/// listening file descriptor.
///
/// ## Framing
///
/// A frame is a 4-byte big-endian payload length followed by exactly that
/// many bytes of UTF-8 JSON (one object per frame). Lengths above the
/// receiver's frame cap are a protocol error: the receiver answers with an
/// `error` message (code `bad_frame`) and closes the connection without
/// reading the payload — an adversarial length can never force an
/// allocation.
///
/// ## Addresses
///
/// An address string is either a Unix-domain socket path (anything
/// containing '/' or ending in ".sock") or a localhost TCP port number
/// ("7777"; "0" binds an ephemeral port the server reports). Remote TCP is
/// deliberately not supported: the daemon trusts its clients (they share a
/// cache directory), so the transport stays on-machine.
///
/// The full message schemas live in docs/DAEMON.md. The registries below
/// are the source of truth check_docs.sh lints that document against: a
/// message type or error code added here without a matching entry in the
/// doc fails the `check_docs` ctest.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_DAEMONPROTOCOL_H
#define LIBERTY_DRIVER_DAEMONPROTOCOL_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace liberty {
namespace driver {

/// Bumped whenever a frame or message schema changes incompatibly. The
/// `hello` handshake carries the client's version; the server refuses a
/// mismatch with `version_mismatch` so old clients fail loud, not weird.
constexpr uint32_t DaemonProtocolVersion = 1;

/// Bumped when a backward-compatible message type or field is ADDED under
/// the same major version. Negotiation is one-sided and optional: `hello`
/// may carry a "minor" field (absent = 0) and `hello_ok` answers with the
/// server's minor; each side treats min(mine, peer's) as the shared
/// feature level. Minor 1 adds the `recompile` request — a client seeing
/// a minor-0 server (an old daemon whose hello_ok has no "minor") sends
/// plain `compile` instead.
constexpr uint32_t DaemonProtocolMinorVersion = 1;

/// Frames larger than this default cap are rejected as `bad_frame`
/// (DaemonServer::Options::MaxFrameBytes overrides).
constexpr uint64_t DaemonDefaultMaxFrameBytes = 64ull << 20;

/// The canonical message-type registry: every frame's "type" field is one
/// of these. check_docs.sh extracts the quoted names and requires each to
/// be documented in docs/DAEMON.md.
#define LSSD_MESSAGE_TYPES(X)                                                  \
  X(Hello, "hello")                                                            \
  X(HelloOk, "hello_ok")                                                       \
  X(Compile, "compile")                                                        \
  X(Recompile, "recompile")                                                    \
  X(Result, "result")                                                          \
  X(Batch, "batch")                                                            \
  X(BatchResult, "batch_result")                                               \
  X(Stats, "stats")                                                            \
  X(StatsResult, "stats_result")                                               \
  X(Shutdown, "shutdown")                                                      \
  X(ShutdownOk, "shutdown_ok")                                                 \
  X(Error, "error")

/// The canonical error-code registry (the "code" field of an `error`
/// message), linted against docs/DAEMON.md like the message types.
#define LSSD_ERROR_CODES(X)                                                    \
  X(BadFrame, "bad_frame")                                                     \
  X(BadMessage, "bad_message")                                                 \
  X(VersionMismatch, "version_mismatch")                                       \
  X(QueueFull, "queue_full")                                                   \
  X(ShuttingDown, "shutting_down")

namespace msg {
#define LSSD_DEFINE_MSG(Ident, Name) constexpr const char *Ident = Name;
LSSD_MESSAGE_TYPES(LSSD_DEFINE_MSG)
#undef LSSD_DEFINE_MSG
} // namespace msg

namespace errc {
#define LSSD_DEFINE_ERRC(Ident, Name) constexpr const char *Ident = Name;
LSSD_ERROR_CODES(LSSD_DEFINE_ERRC)
#undef LSSD_DEFINE_ERRC
} // namespace errc

//===----------------------------------------------------------------------===//
// Json — a minimal JSON value for the daemon protocol
//===----------------------------------------------------------------------===//

/// Just enough JSON for the wire protocol: null/bool/number/string/
/// array/object, a strict recursive-descent parser (depth-capped so
/// adversarial nesting cannot overflow the stack), and a deterministic
/// writer (object keys emit in sorted order). Numbers are doubles; the
/// protocol's integers (ids, counts, millisecond budgets) all fit a
/// double's 53-bit mantissa.
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() : K(Kind::Null) {}
  Json(bool B) : K(Kind::Bool), BoolV(B) {}
  Json(double N) : K(Kind::Number), NumV(N) {}
  Json(uint64_t N) : K(Kind::Number), NumV(double(N)) {}
  Json(int N) : K(Kind::Number), NumV(N) {}
  Json(std::string S) : K(Kind::String), StrV(std::move(S)) {}
  Json(const char *S) : K(Kind::String), StrV(S) {}

  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }

  Kind kind() const { return K; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }

  // --- Scalar accessors (defaults on kind mismatch; never trap). --------
  bool asBool(bool Default = false) const {
    return K == Kind::Bool ? BoolV : Default;
  }
  double asNumber(double Default = 0) const {
    return K == Kind::Number ? NumV : Default;
  }
  /// Strict unsigned accessor: the number must be a non-negative integral
  /// value representable exactly in a double (<= 2^53). Anything else —
  /// fractional, negative, NaN, or huge — yields \p Default so a malformed
  /// `len`/`retry_after_ms` can't silently truncate to a bogus integer.
  uint64_t asU64(uint64_t Default = 0) const {
    if (K != Kind::Number || !(NumV >= 0) || NumV > 9007199254740992.0 ||
        NumV != double(uint64_t(NumV)))
      return Default;
    return uint64_t(NumV);
  }
  const std::string &asString() const;

  // --- Object access. ---------------------------------------------------
  /// Sets a member (converting this value to an object if needed);
  /// returns *this so message builders chain.
  Json &set(const std::string &Key, Json V);
  /// Member lookup; null when absent or this is not an object.
  const Json *get(const std::string &Key) const;
  // Typed member conveniences, with defaults for absent/mistyped fields.
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  double getNumber(const std::string &Key, double Default = 0) const;
  uint64_t getU64(const std::string &Key, uint64_t Default = 0) const;
  bool getBool(const std::string &Key, bool Default = false) const;

  // --- Array access. ----------------------------------------------------
  /// Appends (converting this value to an array if needed).
  Json &push(Json V);
  const std::vector<Json> &items() const;

  // --- Serialization. ---------------------------------------------------
  void write(std::ostream &OS) const;
  std::string dump() const;

  /// Strict parse of one JSON document (trailing garbage is an error).
  /// On failure returns false and fills \p Err (when non-null) with a
  /// one-line description including the byte offset.
  static bool parse(std::string_view Text, Json &Out, std::string *Err);

private:
  Kind K;
  bool BoolV = false;
  double NumV = 0;
  std::string StrV;
  std::vector<Json> Arr;
  std::map<std::string, Json> Obj; ///< Sorted: writer output is canonical.
};

/// Escapes \p S for embedding in a JSON string literal (quotes excluded).
std::string jsonEscapeString(const std::string &S);

//===----------------------------------------------------------------------===//
// Frame I/O
//===----------------------------------------------------------------------===//

enum class FrameStatus {
  Ok,       ///< A complete frame was read.
  Eof,      ///< The peer closed cleanly at a frame boundary.
  TooLarge, ///< Advertised length exceeds the cap (payload never read).
  Error,    ///< Short read/write or socket error.
  Timeout,  ///< A started frame stalled past the read deadline.
};

/// Reads one length-prefixed frame from \p Fd into \p Payload.
FrameStatus readFrame(int Fd, std::string &Payload, uint64_t MaxBytes);

/// Deadline-aware readFrame: once the first byte of a frame has arrived,
/// the rest must land within \p DeadlineMs or the read fails with
/// FrameStatus::Timeout (slow-loris protection). Waiting for a frame to
/// *start* is not bounded — an idle connection is legitimate — unless
/// \p IdleDeadline is true, which also bounds the wait for the first
/// byte (the client side: a response is always expected). DeadlineMs of 0
/// means no deadline.
FrameStatus readFrameDeadline(int Fd, std::string &Payload, uint64_t MaxBytes,
                              uint64_t DeadlineMs, bool IdleDeadline = false);

/// Writes one frame. Returns false on any short write.
bool writeFrame(int Fd, std::string_view Payload);

/// writeFrame of \p Msg serialized; the send side of every message.
bool writeMessage(int Fd, const Json &Msg);

//===----------------------------------------------------------------------===//
// Socket helpers
//===----------------------------------------------------------------------===//

/// True if \p Address names a Unix-domain socket path (contains '/' or
/// ends with ".sock") rather than a localhost TCP port.
bool isUnixAddress(const std::string &Address);

/// Creates a listening socket for \p Address (see the address grammar at
/// the top of this file). On success returns the fd and, for TCP, stores
/// the bound port in \p BoundPort (useful with port 0). Returns -1 and
/// fills \p Err on failure. Unix paths are unlinked first: a daemon
/// restarting over a stale socket file must not fail to bind.
int netListen(const std::string &Address, int *BoundPort, std::string *Err);

/// Connects to \p Address. Returns the fd, or -1 with \p Err filled.
/// \p TimeoutMs bounds the connect itself (0 = block indefinitely).
int netConnect(const std::string &Address, std::string *Err,
               uint64_t TimeoutMs = 0);

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_DAEMONPROTOCOL_H
