//===- FlagParser.cpp - Shared CLI flag table for lssc/lssd ---------------===//

#include "driver/FlagParser.h"

#include <cstdlib>
#include <iostream>

using namespace liberty;
using namespace liberty::driver;

FlagParser::Flag *FlagParser::find(const std::string &Name) {
  for (Flag &F : Flags)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

void FlagParser::boolean(const char *Name, bool *Out, const char *Help) {
  Flag F;
  F.Name = Name;
  F.Help = Help;
  F.Handler = [Out](const std::string &) {
    *Out = true;
    return true;
  };
  Flags.push_back(std::move(F));
}

void FlagParser::string(const char *Name, const char *Metavar,
                        std::string *Out, const char *Help) {
  Flag F;
  F.Name = Name;
  F.Metavar = Metavar;
  F.Help = Help;
  F.ValuePhrase = Metavar;
  F.Handler = [Out](const std::string &V) {
    *Out = V;
    return true;
  };
  Flags.push_back(std::move(F));
}

void FlagParser::addUnsigned(const char *Name, const char *Metavar,
                             std::function<void(uint64_t)> Store,
                             const char *Help, const char *ValuePhrase,
                             bool RequirePositive) {
  Flag F;
  F.Name = Name;
  F.Metavar = Metavar;
  F.Help = Help;
  F.ValuePhrase = ValuePhrase;
  F.RequirePositive = RequirePositive;
  std::string Tool = this->Tool, FlagName = Name, Phrase = ValuePhrase;
  F.Handler = [Store, Tool, FlagName, Phrase,
               RequirePositive](const std::string &V) {
    char *End = nullptr;
    uint64_t N = std::strtoull(V.c_str(), &End, 10);
    bool Parsed = End && *End == '\0' && End != V.c_str();
    if (!Parsed || (RequirePositive && N == 0)) {
      std::cerr << Tool << ": " << FlagName << " requires a "
                << (RequirePositive ? "positive " : "") << Phrase << "\n";
      return false;
    }
    Store(N);
    return true;
  };
  Flags.push_back(std::move(F));
}

void FlagParser::unsignedNum(const char *Name, const char *Metavar,
                             uint64_t *Out, const char *Help,
                             const char *ValuePhrase, bool RequirePositive) {
  addUnsigned(Name, Metavar, [Out](uint64_t N) { *Out = N; }, Help,
              ValuePhrase, RequirePositive);
}

void FlagParser::unsignedNum(const char *Name, const char *Metavar,
                             unsigned *Out, const char *Help,
                             const char *ValuePhrase, bool RequirePositive) {
  addUnsigned(Name, Metavar, [Out](uint64_t N) { *Out = unsigned(N); }, Help,
              ValuePhrase, RequirePositive);
}

void FlagParser::custom(const char *Name, const char *Metavar,
                        const char *Help,
                        std::function<bool(const std::string &)> Handler) {
  Flag F;
  F.Name = Name;
  if (Metavar) {
    F.Metavar = Metavar;
    F.ValuePhrase = Metavar;
  }
  F.Help = Help;
  F.Handler = std::move(Handler);
  Flags.push_back(std::move(F));
}

void FlagParser::deprecate(const char *Name, const char *Note) {
  if (Flag *F = find(Name))
    F->DeprecationNote = Note;
}

//===----------------------------------------------------------------------===//
// Shared flag declarations. These are the single point of truth for flags
// both tools expose; help text and validation live here, not per-tool.
//===----------------------------------------------------------------------===//

void FlagParser::addCacheFlags(std::string *CacheDir, bool *NoCache) {
  string("--cache-dir", "DIR", CacheDir,
         "memoize parse/elaborate/solve results in\n"
         "a content-addressed artifact cache under\n"
         "DIR; later runs of unchanged sources\n"
         "reload them instead of recompiling");
  if (NoCache)
    boolean("--no-cache", NoCache,
            "ignore --cache-dir; always compile cold");
}

void FlagParser::addFaultInjectFlag(std::string *Spec) {
  string("--fault-inject", "SPEC", Spec,
         "arm deterministic fault injection at the\n"
         "named I/O sites (testing; e.g.\n"
         "'cache.disk.rename@1,seed=7'; also via\n"
         "the LSS_FAULT environment variable)");
}

void FlagParser::addWatchFilesFlags(bool *WatchFiles, uint64_t *PollMs,
                                    uint64_t *MaxRecompiles) {
  boolean("--watch-files", WatchFiles,
          "with --daemon: stay resident, poll the\n"
          "input files' mtimes, and send an\n"
          "incremental `recompile` for every edit\n"
          "(docs/INCREMENTAL.md); stop with SIGINT");
  unsignedNum("--watch-poll-ms", "N", PollMs,
              "with --watch-files: poll interval\n"
              "(default 200)",
              "duration", /*RequirePositive=*/true);
  unsignedNum("--watch-max", "N", MaxRecompiles,
              "with --watch-files: exit after N\n"
              "recompiles (testing; 0 = run until\n"
              "SIGINT)",
              "count");
}

//===----------------------------------------------------------------------===//
// Parsing and usage text.
//===----------------------------------------------------------------------===//

bool FlagParser::parse(int Argc, char **Argv,
                       std::vector<std::string> *Positionals) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      HelpRequested = true;
      return true;
    }
    if (Arg.empty() || Arg[0] != '-') {
      if (!Positionals) {
        std::cerr << Tool << ": unexpected argument '" << Arg << "'\n";
        return false;
      }
      Positionals->push_back(Arg);
      continue;
    }
    // `--flag=VALUE` splits at the first '='; `--flag VALUE` consumes the
    // next argv element.
    std::string Name = Arg, Inline;
    bool HasInline = false;
    if (size_t Eq = Arg.find('='); Eq != std::string::npos) {
      Name = Arg.substr(0, Eq);
      Inline = Arg.substr(Eq + 1);
      HasInline = true;
    }
    Flag *F = find(Name);
    if (!F) {
      std::cerr << Tool << ": unknown option '" << Name << "'\n";
      return false;
    }
    if (!F->DeprecationNote.empty() && !F->NoteShown) {
      F->NoteShown = true;
      std::cerr << Tool << ": note: " << F->Name << " is deprecated; "
                << F->DeprecationNote << "\n";
    }
    std::string Value;
    if (!F->Metavar.empty()) {
      if (HasInline) {
        Value = Inline;
      } else if (++I < Argc) {
        Value = Argv[I];
      } else {
        std::cerr << Tool << ": " << F->Name << " requires a"
                  << (F->RequirePositive ? " positive " : " ")
                  << F->ValuePhrase << "\n";
        return false;
      }
    } else if (HasInline) {
      std::cerr << Tool << ": " << F->Name << " takes no value\n";
      return false;
    }
    if (!F->Handler(Value))
      return false;
  }
  return true;
}

void FlagParser::printUsage(std::ostream &OS, const char *Synopsis,
                            const char *Epilog) const {
  OS << "usage: " << Synopsis << "\n";
  // Two columns: "  --name METAVAR" padded to the help column, with
  // '\n'-separated help continuation lines indented to match.
  const size_t HelpCol = 25;
  for (const Flag &F : Flags) {
    std::string Left = "  " + F.Name;
    if (!F.Metavar.empty())
      Left += " " + F.Metavar;
    if (Left.size() + 2 > HelpCol)
      Left += "  ";
    else
      Left.resize(HelpCol, ' ');
    std::string Help = F.Help;
    if (!F.DeprecationNote.empty())
      Help += "\n(deprecated; " + F.DeprecationNote + ")";
    size_t Pos = 0;
    bool First = true;
    while (Pos <= Help.size()) {
      size_t NL = Help.find('\n', Pos);
      std::string Line = Help.substr(
          Pos, NL == std::string::npos ? std::string::npos : NL - Pos);
      if (First)
        OS << Left << Line << "\n";
      else
        OS << std::string(HelpCol, ' ') << Line << "\n";
      First = false;
      if (NL == std::string::npos)
        break;
      Pos = NL + 1;
    }
  }
  if (Epilog)
    OS << Epilog;
}
