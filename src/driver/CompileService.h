//===- CompileService.h - Cached, batched LSS compilation -------*- C++ -*-===//
///
/// \file
/// The high-level entry point of the driver API: takes CompilerInvocations
/// and produces finished Compilers, memoizing phase artifacts in a
/// content-addressed ArtifactCache and dispatching batches across a
/// thread pool.
///
/// A compile consults the cache per phase:
///  - "elab" hit: the serialized elaborated netlist is reloaded, the
///    invocation's sources are registered (but never parsed), and the
///    recorded warnings replay — parse + elaboration are skipped.
///  - "solve" hit: the recorded type solution is written onto the netlist
///    and the solver is skipped.
///  - Only error-free compiles are stored, so a hit can never hide a
///    failure; corrupted entries are diagnosed (note), counted, and
///    recompiled over.
///
/// Batch compiles run on a support::ThreadPool; results are returned in
/// input order regardless of completion order, and the shared cache means
/// identical invocations in one batch cost one cold compile plus N-1 warm
/// loads (modulo racing misses, which are benign: both compiles store the
/// same bytes).
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_COMPILESERVICE_H
#define LIBERTY_DRIVER_COMPILESERVICE_H

#include "driver/ArtifactCache.h"
#include "driver/Compiler.h"
#include "driver/CompilerInvocation.h"

#include <memory>
#include <vector>

namespace liberty {
namespace driver {

/// The outcome of one service compile. The Compiler is always present
/// (even on failure — its diagnostics say what went wrong).
struct CompileResult {
  std::unique_ptr<Compiler> C;
  bool Success = false;

  /// First pipeline phase that failed (None on success).
  enum class Phase { None, Parse, Elaborate, Infer, SimBuild };
  Phase Failed = Phase::None;

  /// Which phases were satisfied from the artifact cache.
  bool ElabFromCache = false;
  bool SolutionFromCache = false;
  /// True when the compiled engine adopted a cached LSSKRN kernel plan
  /// instead of lowering the netlist from scratch. Always false for the
  /// other engines (they build no kernel).
  bool KernelFromCache = false;
};

class CompileService {
public:
  struct Options {
    /// Master switch; when false every compile is cold and the cache is
    /// never consulted or written (lssc --no-cache).
    bool CacheEnabled = true;
    ArtifactCache::Options Cache;
  };

  CompileService();
  explicit CompileService(Options Opts);

  /// Compiles one invocation, consulting and feeding the cache.
  CompileResult compile(const CompilerInvocation &Inv);

  /// Compiles a batch concurrently on \p Jobs worker threads (0 = one per
  /// hardware thread, 1 = serial). Results[i] always corresponds to
  /// Invs[i].
  std::vector<CompileResult>
  compileBatch(const std::vector<CompilerInvocation> &Invs, unsigned Jobs = 0);

  ArtifactCache &getCache() { return Cache; }
  const Options &getOptions() const { return Opts; }

private:
  Options Opts;
  ArtifactCache Cache;
};

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_COMPILESERVICE_H
