//===- CompileService.h - Cached, batched LSS compilation -------*- C++ -*-===//
///
/// \file
/// The high-level entry point of the driver API: takes CompilerInvocations
/// and produces finished Compilers, memoizing phase artifacts in a
/// content-addressed ArtifactCache and dispatching batches across a
/// thread pool.
///
/// A compile consults the cache per phase:
///  - "elab" hit: the serialized elaborated netlist is reloaded, the
///    invocation's sources are registered (but never parsed), and the
///    recorded warnings replay — parse + elaboration are skipped.
///  - "solve" hit: the recorded type solution is written onto the netlist
///    and the solver is skipped.
///  - Only error-free compiles are stored, so a hit can never hide a
///    failure; corrupted entries are diagnosed (note), counted, and
///    recompiled over.
///
/// Batch compiles run on a support::ThreadPool; results are returned in
/// input order regardless of completion order, and the shared cache means
/// identical invocations in one batch cost one cold compile plus N-1 warm
/// loads (modulo racing misses, which are benign: both compiles store the
/// same bytes).
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_COMPILESERVICE_H
#define LIBERTY_DRIVER_COMPILESERVICE_H

#include "driver/ArtifactCache.h"
#include "driver/Compiler.h"
#include "driver/CompilerInvocation.h"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace liberty {
namespace driver {

/// What an incremental compile actually did (docs/INCREMENTAL.md). Filled
/// by CompileService::compileIncremental; compile() leaves it default.
struct IncrementalStats {
  /// compileIncremental was called (even if it fell back).
  bool Attempted = false;
  /// The result came from the dependency-tracked replay path. When false
  /// with Attempted set, FallbackReason says why the full pipeline ran.
  bool Used = false;
  std::string FallbackReason;
  /// A dependency artifact for this project was found in the cache.
  bool DepCacheHit = false;

  unsigned ModulesTotal = 0;
  unsigned ModulesDirty = 0;
  /// Distinct modules whose bodies were re-elaborated live (the dirty
  /// modules plus any module first instantiated by a dirty body).
  unsigned ModulesReelaborated = 0;
  unsigned InstancesTotal = 0;
  unsigned InstancesReelaborated = 0;
  unsigned InstancesSpliced = 0;
  unsigned GroupsTotal = 0;
  /// H3 groups the solver actually searched.
  unsigned GroupsResolved = 0;
  /// H3 groups whose solutions were spliced from the previous compile.
  unsigned GroupsSpliced = 0;
};

/// The outcome of one service compile. The Compiler is always present
/// (even on failure — its diagnostics say what went wrong).
struct CompileResult {
  std::unique_ptr<Compiler> C;
  bool Success = false;

  /// First pipeline phase that failed (None on success).
  enum class Phase { None, Parse, Elaborate, Infer, SimBuild };
  Phase Failed = Phase::None;

  /// Which phases were satisfied from the artifact cache.
  bool ElabFromCache = false;
  bool SolutionFromCache = false;
  /// True when the compiled engine adopted a cached LSSKRN kernel plan
  /// instead of lowering the netlist from scratch. Always false for the
  /// other engines (they build no kernel).
  bool KernelFromCache = false;

  /// Incremental-recompilation outcome (compileIncremental only).
  IncrementalStats Incremental;
};

class CompileService {
public:
  struct Options {
    /// Master switch; when false every compile is cold and the cache is
    /// never consulted or written (lssc --no-cache).
    bool CacheEnabled = true;
    ArtifactCache::Options Cache;
  };

  CompileService();
  explicit CompileService(Options Opts);

  /// Compiles one invocation, consulting and feeding the cache.
  CompileResult compile(const CompilerInvocation &Inv);

  /// Incremental recompilation (docs/INCREMENTAL.md): diffs \p Inv's
  /// per-module content hashes against the project's cached dependency
  /// graph (LSSDEP, keyed by Inv.depKey()), re-elaborates only the dirty
  /// modules' subtrees while replaying the unchanged bodies from the
  /// previous netlist artifact, re-solves only the H3 constraint groups
  /// touching re-elaborated instances, and splices the previous per-group
  /// solutions for the rest. The produced artifacts (netlist, solution,
  /// kernel) are byte-identical to a cold compile of the same invocation;
  /// whenever any precondition is not met, this transparently falls back
  /// to compile() and records the reason in the result's IncrementalStats.
  CompileResult compileIncremental(const CompilerInvocation &Inv);

  /// Compiles a batch concurrently on \p Jobs worker threads (0 = one per
  /// hardware thread, 1 = serial). Results[i] always corresponds to
  /// Invs[i].
  std::vector<CompileResult>
  compileBatch(const std::vector<CompilerInvocation> &Invs, unsigned Jobs = 0);

  /// Service-lifetime totals over every compileIncremental call (the
  /// daemon's stats endpoint aggregates these across clients).
  struct IncrementalCounters {
    uint64_t Requests = 0;
    uint64_t Used = 0;
    uint64_t Fallbacks = 0;
    uint64_t DepCacheHits = 0;
    uint64_t ModulesReelaborated = 0;
    uint64_t GroupsResolved = 0;
    uint64_t GroupsSpliced = 0;
  };
  IncrementalCounters getIncrementalCounters() const {
    std::lock_guard<std::mutex> Lock(IncMutex);
    return IncCounters;
  }

  ArtifactCache &getCache() { return Cache; }
  const Options &getOptions() const { return Opts; }

private:
  /// Serializes and stores the dependency-graph artifact for a compile
  /// whose elaboration ran live (compile() cold path and every successful
  /// incremental compile). \p DiagBase is the diagnostic count just before
  /// parsing started; body diagnostic windows are stored relative to it so
  /// the artifact's bytes are invariant to notes emitted before the
  /// pipeline ran (e.g. cache-corruption notes) and its indices line up
  /// with the diagnostics list of the LSSNL artifact stored alongside.
  /// Defined in Incremental.cpp.
  void storeDepGraph(const CompilerInvocation &Inv, Compiler &C,
                     size_t DiagBase);
  /// Accumulates one compileIncremental outcome into the counters.
  void recordIncremental(const IncrementalStats &S);

  Options Opts;
  ArtifactCache Cache;
  mutable std::mutex IncMutex;
  IncrementalCounters IncCounters;
};

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_COMPILESERVICE_H
