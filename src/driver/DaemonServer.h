//===- DaemonServer.h - The lssd compile daemon -----------------*- C++ -*-===//
///
/// \file
/// A long-running compile server wrapped around one CompileService: many
/// client connections share a single warm ArtifactCache, so a fleet of
/// `lssc --daemon` invocations (or future watch-mode/LSP loops) amortizes
/// one cold compile per distinct invocation key.
///
/// ## Threading model
///
/// One accept thread; one handler thread per connection (a connection is a
/// synchronous request/response stream, so per-connection concurrency is
/// exactly one in-flight request); one shared ThreadPool of compile
/// workers. Compiles never run on connection threads — the pool bounds
/// compile concurrency no matter how many clients connect.
///
/// ## Admission control
///
/// Between connection threads and the pool sits a bounded admission queue:
/// at most Options::QueueBound requests may be admitted-but-not-started at
/// once. When the queue is full the request is rejected immediately with
/// an `error` message (code `queue_full`) carrying `retry_after_ms` —
/// clients back off instead of piling latency onto everyone's compiles.
///
/// ## Per-request deadlines
///
/// A compile request may carry `deadline_ms`, a service-level budget that
/// starts at admission (so queue wait counts). When the compile finally
/// starts, whatever remains becomes the inference wall-clock deadline
/// (infer::SolveOptions::DeadlineMs) — the budget-degradation machinery
/// solves what it can and reports the rest as unsolved groups, so an
/// expired deadline returns a structured degraded result, never a hang.
///
/// ## Shutdown
///
/// A `shutdown` message (or requestShutdown(), which SIGTERM handlers
/// call) drains: the listener closes, already-admitted compiles finish and
/// their responses are written, new requests on open connections are
/// refused with `shutting_down`, then wait() returns. The on-disk cache
/// needs no shutdown handling at all — every write has been atomic
/// (temp + rename) since PR 5, so a crashed or SIGKILLed daemon leaves a
/// valid cache directory behind and the next daemon starts warm from it.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_DAEMONSERVER_H
#define LIBERTY_DRIVER_DAEMONSERVER_H

#include "driver/CompileService.h"
#include "driver/DaemonProtocol.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace liberty {
namespace driver {

/// The counters behind the `stats` endpoint (`stats_result` message).
/// Latency percentiles are computed over a bounded reservoir of the most
/// recent compile service times (admission to response-ready).
struct DaemonStats {
  uint64_t RequestsServed = 0;  ///< Frames answered (any message type).
  uint64_t CompileRequests = 0; ///< `compile` requests run (incl. failed).
  uint64_t RecompileRequests = 0; ///< `recompile` requests run.
  uint64_t BatchRequests = 0;   ///< `batch` requests run.
  uint64_t RejectedQueueFull = 0;
  uint64_t DeadlineDegraded = 0; ///< Compiles whose deadline expired.
  uint64_t ProtocolErrors = 0;   ///< bad_frame/bad_message/version_mismatch.
  uint64_t ReadTimeouts = 0; ///< Connections dropped mid-frame (slow loris).
  uint64_t QueueDepth = 0;       ///< Admitted, not yet started (now).
  uint64_t ActiveCompiles = 0;   ///< Running on pool workers (now).
  /// Per-phase cache traffic, from each compile's CompileResult flags.
  uint64_t ElabCacheHits = 0, ElabCacheMisses = 0;
  uint64_t SolveCacheHits = 0, SolveCacheMisses = 0;
  CacheStats Cache; ///< The shared ArtifactCache's own counters.
  /// Incremental-recompilation totals across every `recompile` request
  /// (CompileService::getIncrementalCounters; docs/INCREMENTAL.md).
  CompileService::IncrementalCounters Incremental;
  double P50Ms = 0, P95Ms = 0, MaxMs = 0;
  uint64_t LatencySamples = 0;
};

class DaemonServer {
public:
  struct Options {
    /// Unix socket path or localhost TCP port (see DaemonProtocol.h).
    std::string Address;
    /// Cache configuration for the shared CompileService.
    CompileService::Options Service;
    /// Compile worker threads; 0 = one per hardware thread.
    unsigned Workers = 0;
    /// Admission queue bound (admitted-but-not-started requests). 0 means
    /// no queueing at all: a request is rejected unless a worker can take
    /// it soon (every worker busy counts as full).
    unsigned QueueBound = 64;
    /// The backoff hint sent with `queue_full` rejections.
    uint64_t RetryAfterMs = 50;
    /// Frame-size cap; larger frames are rejected as `bad_frame`.
    uint64_t MaxFrameBytes = DaemonDefaultMaxFrameBytes;
    /// Once a frame has *started* arriving, the rest of it must land
    /// within this budget or the connection is dropped (slow-loris
    /// protection; only the connection thread is lost, never a worker).
    /// Idle connections between frames are not bounded. 0 disables.
    uint64_t ReadDeadlineMs = 10000;
    /// One line per request/lifecycle event on stderr.
    bool Verbose = false;
  };

  explicit DaemonServer(Options O);
  ~DaemonServer(); ///< requestShutdown() + wait().

  DaemonServer(const DaemonServer &) = delete;
  DaemonServer &operator=(const DaemonServer &) = delete;

  /// Binds, listens, and starts the accept thread. Returns false (with
  /// \p Err filled) if the address cannot be bound.
  bool start(std::string *Err);

  /// Begins a draining shutdown (idempotent, callable from any thread;
  /// the `shutdown` message handler and lssd's signal loop both land
  /// here). Returns immediately; wait() observes completion.
  void requestShutdown();

  /// Blocks until the server has fully drained and every thread exited.
  void wait();

  bool isShuttingDown() const { return Draining.load(); }

  /// The bound TCP port (useful with address "0"), or -1 for Unix.
  int port() const { return BoundPort; }
  const Options &getOptions() const { return Opts; }
  CompileService &getService() { return Service; }

  DaemonStats getStats() const;

private:
  void acceptLoop();
  void handleConnection(int Fd);
  /// Dispatches one parsed message; fills \p Reply. Returns false when the
  /// connection should close after the reply (fatal protocol errors).
  bool handleMessage(const Json &Msg, bool &HandshakeDone, Json &Reply);
  /// Admission control + pool dispatch for one compile-request body.
  /// Returns true and arms \p Fut when the request was admitted; returns
  /// false with \p Immediate holding the reply (queue_full rejection or a
  /// bad_message error) when it was not. \p Incremental routes the work
  /// through CompileService::compileIncremental (the `recompile` request).
  bool submitCompile(const Json &Req, std::future<Json> &Fut, Json &Immediate,
                     bool Incremental = false);
  /// The `compile`/`recompile` handler: submitCompile + wait.
  Json runCompile(const Json &Req, bool Incremental = false);
  /// The `batch` handler: every element admitted independently.
  Json runBatch(const Json &Req);
  Json buildStats() const;
  void recordLatency(double Ms);
  static Json makeError(const char *Code, std::string Message);

  Options Opts;
  CompileService Service;
  std::unique_ptr<ThreadPool> Pool;
  int ListenFd = -1;
  int BoundPort = -1;

  std::atomic<bool> Draining{false};
  std::jthread AcceptThread;
  std::mutex ConnMutex;
  std::vector<std::jthread> ConnThreads;

  // Admission queue state (QueueMutex): QueueDepth counts admitted tasks a
  // worker has not yet picked up; ActiveCompiles counts running ones.
  mutable std::mutex QueueMutex;
  uint64_t QueueDepth = 0;
  uint64_t ActiveCompiles = 0;

  mutable std::mutex StatsMutex;
  DaemonStats Stats;
  std::vector<double> Latencies; ///< Reservoir, most recent LatencyCap.
  size_t LatencyNext = 0;
  static constexpr size_t LatencyCap = 4096;
};

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_DAEMONSERVER_H
