//===- ArtifactCache.h - Content-addressed compile artifacts ----*- C++ -*-===//
///
/// \file
/// The artifact store behind CompileService: a two-level (in-memory LRU +
/// optional on-disk) cache of serialized phase artifacts, addressed by
/// (key, phase) where key is a CompilerInvocation phase fingerprint and
/// phase names the artifact kind ("elab" for LSSNL netlists, "solve" for
/// LSSSOL solutions).
///
/// Disk entries are wrapped in a self-validating envelope
/// ("LSSART 1 <phase> <payload-bytes> <fnv64-hex>\n<payload>") and written
/// atomically (temp file + rename), so readers never observe a torn write
/// and a mutated or truncated entry is detected, counted as Corrupt,
/// reported through the optional note channel, and treated as a miss — the
/// caller recompiles and overwrites it. The cache is safe to share across
/// the threads of a batch compile.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_ARTIFACTCACHE_H
#define LIBERTY_DRIVER_ARTIFACTCACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

namespace liberty {
namespace driver {

/// Counters for `lssc --stats-json` ("cache" section) and tests.
struct CacheStats {
  uint64_t Hits = 0;       ///< get() calls satisfied (memory or disk).
  uint64_t Misses = 0;     ///< get() calls not satisfied.
  uint64_t MemoryHits = 0; ///< Hits served by the in-memory LRU.
  uint64_t DiskHits = 0;   ///< Hits that had to read the disk entry.
  uint64_t Stores = 0;     ///< put() calls.
  uint64_t Evictions = 0;  ///< In-memory entries dropped by the LRU budget.
  uint64_t Corrupt = 0;    ///< Disk entries rejected by validation.
  uint64_t BytesInMemory = 0;
};

class ArtifactCache {
public:
  struct Options {
    /// Directory for persistent entries; empty = in-memory only. Created
    /// (with parents) on first store.
    std::string DiskDir;
    /// LRU budget for in-memory payload bytes.
    uint64_t MemoryBudgetBytes = 64ull << 20;
  };

  ArtifactCache() = default;
  explicit ArtifactCache(Options O) : Opts(std::move(O)) {}

  /// Looks up (key, phase). On a hit fills \p Payload and returns true;
  /// disk hits are promoted into the memory LRU. If a disk entry fails
  /// validation, a one-line description is appended to \p Note (when
  /// non-null) and the lookup counts as a miss.
  bool get(const std::string &Key, const std::string &Phase,
           std::string &Payload, std::string *Note = nullptr);

  /// Stores a payload under (key, phase), in memory and — when a DiskDir
  /// is configured — on disk. Disk write failures are silent: the cache is
  /// an accelerator, never a correctness dependency.
  void put(const std::string &Key, const std::string &Phase,
           const std::string &Payload);

  CacheStats getStats() const;

  const Options &getOptions() const { return Opts; }

private:
  std::string diskPath(const std::string &Key, const std::string &Phase) const;
  /// Inserts into the LRU and evicts down to budget. Lock held.
  void insertMemory(const std::string &MapKey, const std::string &Payload);

  Options Opts;
  mutable std::mutex Mu;
  CacheStats Stats;
  /// MRU-first list of map keys; Entries holds payload + LRU position.
  std::list<std::string> LruOrder;
  struct Entry {
    std::string Payload;
    std::list<std::string>::iterator LruIt;
  };
  std::map<std::string, Entry> Entries;
};

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_ARTIFACTCACHE_H
