//===- ArtifactCache.h - Content-addressed compile artifacts ----*- C++ -*-===//
///
/// \file
/// The artifact store behind CompileService: a two-level (in-memory LRU +
/// optional on-disk) cache of serialized phase artifacts, addressed by
/// (key, phase) where key is a CompilerInvocation phase fingerprint and
/// phase names the artifact kind ("elab" for LSSNL netlists, "solve" for
/// LSSSOL solutions).
///
/// Disk entries are wrapped in a self-validating envelope
/// ("LSSART 1 <phase> <payload-bytes> <fnv64-hex>\n<payload>") and written
/// atomically (temp file + rename), so readers never observe a torn write
/// and a mutated or truncated entry is detected, counted as Corrupt,
/// reported through the optional note channel, and treated as a miss — the
/// caller recompiles and overwrites it. The cache is safe to share across
/// the threads of a batch compile.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_ARTIFACTCACHE_H
#define LIBERTY_DRIVER_ARTIFACTCACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

namespace liberty {
namespace driver {

/// Counters for `lssc --stats-json` ("cache" section) and tests.
struct CacheStats {
  uint64_t Hits = 0;       ///< get() calls satisfied (memory or disk).
  uint64_t Misses = 0;     ///< get() calls not satisfied.
  uint64_t MemoryHits = 0; ///< Hits served by the in-memory LRU.
  uint64_t DiskHits = 0;   ///< Hits that had to read the disk entry.
  uint64_t Stores = 0;     ///< put() calls.
  uint64_t Evictions = 0;  ///< In-memory entries dropped by the LRU budget.
  uint64_t Corrupt = 0;    ///< Disk entries rejected by validation.
  uint64_t BytesInMemory = 0;
  uint64_t TmpSwept = 0;   ///< Orphaned temp files deleted by the sweep.
  uint64_t Quarantined = 0; ///< Corrupt disk entries moved aside.
  uint64_t DiskWriteFailures = 0; ///< put() calls that failed to persist.
  bool Degraded = false;   ///< Disk gave up; running memory-only.
};

class ArtifactCache {
public:
  struct Options {
    /// Directory for persistent entries; empty = in-memory only. Created
    /// (with parents) on first store.
    std::string DiskDir;
    /// LRU budget for in-memory payload bytes.
    uint64_t MemoryBudgetBytes = 64ull << 20;
    /// The startup sweep only deletes orphaned temp files at least this
    /// old, so it can never race a live writer in another process that is
    /// about to rename its temp file. Tests set 0 to sweep everything.
    uint64_t TmpSweepAgeSeconds = 60;
    /// After this many *consecutive* disk write failures the cache stops
    /// touching the disk for writes (memory-only degraded mode; reads
    /// still work). A full or read-only cache dir must not slow every
    /// compile down with doomed write attempts.
    unsigned DegradeAfterFailures = 3;
  };

  ArtifactCache() = default;
  explicit ArtifactCache(Options O) : Opts(std::move(O)) { sweepDiskDir(); }

  /// Looks up (key, phase). On a hit fills \p Payload and returns true;
  /// disk hits are promoted into the memory LRU. If a disk entry fails
  /// validation, a one-line description is appended to \p Note (when
  /// non-null) and the lookup counts as a miss.
  bool get(const std::string &Key, const std::string &Phase,
           std::string &Payload, std::string *Note = nullptr);

  /// Stores a payload under (key, phase), in memory and — when a DiskDir
  /// is configured — on disk. Disk write failures never fail the compile
  /// (the cache is an accelerator, not a correctness dependency); they are
  /// counted, and enough consecutive ones trip memory-only degraded mode.
  void put(const std::string &Key, const std::string &Phase,
           const std::string &Payload);

  CacheStats getStats() const;

  const Options &getOptions() const { return Opts; }

  /// True once disk writes have been abandoned (see DegradeAfterFailures).
  bool isDegraded() const;

private:
  std::string diskPath(const std::string &Key, const std::string &Phase) const;
  /// Inserts into the LRU and evicts down to budget. Lock held.
  void insertMemory(const std::string &MapKey, const std::string &Payload);
  /// Deletes orphaned `*.lssart.tmp*` files (older than the sweep age)
  /// left behind by a crashed writer. Runs once at construction.
  void sweepDiskDir();
  /// Writes the envelope to disk via temp+rename. Lock held. Returns
  /// false on any failure (including injected faults).
  bool writeDiskEntry(const std::string &Path, const std::string &Phase,
                      const std::string &Payload);

  Options Opts;
  mutable std::mutex Mu;
  CacheStats Stats;
  unsigned ConsecutiveDiskFailures = 0;
  bool DegradedMode = false;
  /// MRU-first list of map keys; Entries holds payload + LRU position.
  std::list<std::string> LruOrder;
  struct Entry {
    std::string Payload;
    std::list<std::string>::iterator LruIt;
  };
  std::map<std::string, Entry> Entries;
};

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_ARTIFACTCACHE_H
