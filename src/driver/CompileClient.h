//===- CompileClient.h - Client side of the lssd protocol -------*- C++ -*-===//
///
/// \file
/// Talks to a running `lssd` compile daemon: connect + version handshake,
/// then compile/batch/stats/shutdown requests over the length-prefixed
/// JSON protocol (DaemonProtocol.h, specified in docs/DAEMON.md).
///
/// The client ships a CompilerInvocation's sources and the wire-visible
/// option subset (core library, error cap, solver heuristics/threads,
/// inference deadline) and gets back the compile verdict: success,
/// failed phase, the lssc-compatible exit code, cache provenance, the
/// degradation record, and the rendered diagnostics text. Artifacts stay
/// on the server — the point is the shared warm cache, not shipping
/// netlists.
///
/// Transport failures never throw: every call reports through the
/// Result::Error / ErrorCode fields (or a bool + *Err), so callers like
/// `lssc --daemon` can fall back to an in-process compile.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_COMPILECLIENT_H
#define LIBERTY_DRIVER_COMPILECLIENT_H

#include "driver/CompilerInvocation.h"
#include "driver/DaemonProtocol.h"

#include <string>
#include <vector>

namespace liberty {
namespace driver {

class CompileClient {
public:
  /// One remote compile's outcome. Exactly one of these is true:
  ///  - Error non-empty: transport/protocol failure (connection died,
  ///    malformed reply); ErrorCode may name a server error code.
  ///  - Error empty: the wire `result` fields below are valid.
  struct Result {
    // Transport / protocol-level failure.
    std::string Error;      ///< Empty = a result arrived.
    std::string ErrorCode;  ///< Server `error` code (e.g. "queue_full").
    uint64_t RetryAfterMs = 0; ///< Backoff hint from queue_full.

    // The wire result.
    bool Success = false;
    std::string FailedPhase; ///< "none"/"parse"/"elaborate"/"infer".
    int ExitCode = 0;        ///< lssc-compatible (0/3/4/5).
    bool ElabFromCache = false;
    bool SolutionFromCache = false;
    bool Degraded = false; ///< Inference budget/deadline degradation.
    uint64_t GroupsUnsolved = 0;
    std::string Diagnostics; ///< Rendered diagnostic text (may be empty).
    uint64_t Instances = 0, Connections = 0; ///< On success.
    double QueueMs = 0, ServiceMs = 0;       ///< Server-side timings.
  };

  explicit CompileClient(std::string Address) : Address(std::move(Address)) {}
  ~CompileClient() { close(); }

  CompileClient(const CompileClient &) = delete;
  CompileClient &operator=(const CompileClient &) = delete;

  /// Connects and performs the `hello` handshake. Returns false with
  /// \p Err filled when the daemon is unreachable or incompatible.
  bool connect(std::string *Err);
  bool isConnected() const { return Fd >= 0; }
  void close();

  /// Compiles \p Inv remotely. \p DeadlineMs is the request's service
  /// budget (queue wait + compile; 0 = none). Blocking.
  Result compile(const CompilerInvocation &Inv, uint64_t DeadlineMs = 0);

  /// Compiles a batch in one round trip; Results[i] corresponds to
  /// Invs[i]. On a transport failure every result carries the error.
  std::vector<Result> compileBatch(const std::vector<CompilerInvocation> &Invs,
                                   uint64_t DeadlineMs = 0);

  /// Fetches the server's `stats_result` message into \p Out.
  bool stats(Json &Out, std::string *Err);

  /// Asks the server to drain and exit. Returns true on `shutdown_ok`.
  bool shutdownServer(std::string *Err);

  const std::string &address() const { return Address; }

  /// The compile-request body for \p Inv (shared with bench/tests that
  /// speak the protocol directly).
  static Json requestBody(const CompilerInvocation &Inv, uint64_t DeadlineMs);

private:
  /// Sends \p Msg and reads one reply frame. Returns false on transport
  /// failure (and closes: the stream state is unknown).
  bool roundTrip(const Json &Msg, Json &Reply, std::string *Err);
  static Result resultFromWire(const Json &Msg);

  std::string Address;
  int Fd = -1;
  uint64_t NextId = 1;
};

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_COMPILECLIENT_H
