//===- CompileClient.h - Client side of the lssd protocol -------*- C++ -*-===//
///
/// \file
/// Talks to a running `lssd` compile daemon: connect + version handshake,
/// then compile/batch/stats/shutdown requests over the length-prefixed
/// JSON protocol (DaemonProtocol.h, specified in docs/DAEMON.md).
///
/// The client ships a CompilerInvocation's sources and the wire-visible
/// option subset (core library, error cap, solver heuristics/threads,
/// inference deadline) and gets back the compile verdict: success,
/// failed phase, the lssc-compatible exit code, cache provenance, the
/// degradation record, and the rendered diagnostics text. Artifacts stay
/// on the server — the point is the shared warm cache, not shipping
/// netlists.
///
/// Transport failures never throw: every call reports through the
/// Result::Error / ErrorCode fields (or a bool + *Err), so callers like
/// `lssc --daemon` can fall back to an in-process compile.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_COMPILECLIENT_H
#define LIBERTY_DRIVER_COMPILECLIENT_H

#include "driver/CompilerInvocation.h"
#include "driver/DaemonProtocol.h"

#include <string>
#include <vector>

namespace liberty {
namespace driver {

class CompileClient {
public:
  /// Knobs for compileWithRetry / compileBatchWithRetry and the transport
  /// deadlines. Defaults suit an interactive `lssc --daemon` call.
  struct RetryPolicy {
    unsigned MaxAttempts = 5;   ///< Total tries (first attempt included).
    uint64_t BaseBackoffMs = 20; ///< Exponential base; doubled per retry.
    uint64_t MaxBackoffMs = 1000; ///< Backoff clamp.
    uint64_t ConnectTimeoutMs = 2000; ///< connect() bound (0 = block).
    uint64_t ReadTimeoutMs = 0; ///< Reply deadline per round trip (0 = none).
    /// Consecutive transport failures before the circuit breaker opens.
    /// An open breaker fails every further request instantly so the
    /// caller (lssc) falls back to an in-process compile at once instead
    /// of burning MaxAttempts against a dead daemon per request.
    unsigned BreakerThreshold = 3;
    uint64_t Seed = 1; ///< Deterministic backoff jitter stream.
  };

  /// Client-side robustness counters, surfaced by `lssc --daemon
  /// --stats-json`.
  struct ClientStats {
    uint64_t Retries = 0;          ///< Re-attempts, any cause.
    uint64_t QueueFullRetries = 0; ///< Re-attempts after queue_full.
    uint64_t TransportFailures = 0; ///< Failed connects/sends/recvs.
    uint64_t BreakerTrips = 0;     ///< Times the breaker opened.
    bool BreakerOpen = false;
  };

  /// One remote compile's outcome. Exactly one of these is true:
  ///  - Error non-empty: transport/protocol failure (connection died,
  ///    malformed reply); ErrorCode may name a server error code.
  ///  - Error empty: the wire `result` fields below are valid.
  struct Result {
    // Transport / protocol-level failure.
    std::string Error;      ///< Empty = a result arrived.
    std::string ErrorCode;  ///< Server `error` code (e.g. "queue_full").
    uint64_t RetryAfterMs = 0; ///< Backoff hint from queue_full.

    // The wire result.
    bool Success = false;
    std::string FailedPhase; ///< "none"/"parse"/"elaborate"/"infer".
    int ExitCode = 0;        ///< lssc-compatible (0/3/4/5).
    bool ElabFromCache = false;
    bool SolutionFromCache = false;
    bool Degraded = false; ///< Inference budget/deadline degradation.
    uint64_t GroupsUnsolved = 0;
    std::string Diagnostics; ///< Rendered diagnostic text (may be empty).
    uint64_t Instances = 0, Connections = 0; ///< On success.
    double QueueMs = 0, ServiceMs = 0;       ///< Server-side timings.

    /// The `recompile` outcome (from the reply's "incremental" object;
    /// defaults when the request was a plain compile or the daemon was
    /// too old to run one).
    bool IncrementalUsed = false;
    std::string IncrementalFallback;
    uint64_t ModulesReelaborated = 0;
    uint64_t GroupsResolved = 0, GroupsSpliced = 0;
  };

  explicit CompileClient(std::string Address) : Address(std::move(Address)) {}
  ~CompileClient() { close(); }

  CompileClient(const CompileClient &) = delete;
  CompileClient &operator=(const CompileClient &) = delete;

  /// Connects and performs the `hello` handshake. Returns false with
  /// \p Err filled when the daemon is unreachable or incompatible.
  bool connect(std::string *Err);
  bool isConnected() const { return Fd >= 0; }
  void close();

  /// Compiles \p Inv remotely. \p DeadlineMs is the request's service
  /// budget (queue wait + compile; 0 = none). Blocking.
  Result compile(const CompilerInvocation &Inv, uint64_t DeadlineMs = 0);

  /// Incremental recompile (`recompile`, protocol minor 1): the daemon
  /// diffs \p Inv against its cached dependency graph and replays what it
  /// can (docs/INCREMENTAL.md). Against a minor-0 daemon this degrades to
  /// a plain `compile` — same result bytes, no splicing — so callers can
  /// use it unconditionally. The Result's Incremental* fields report what
  /// the daemon actually did.
  Result recompile(const CompilerInvocation &Inv, uint64_t DeadlineMs = 0);

  /// recompile() under the retry policy (see compileWithRetry).
  Result recompileWithRetry(const CompilerInvocation &Inv,
                            uint64_t DeadlineMs = 0);

  /// The daemon's protocol minor version from the `hello_ok` reply
  /// (0 before connect() or against a pre-negotiation daemon). The shared
  /// feature level is min(DaemonProtocolMinorVersion, serverMinor()).
  uint32_t serverMinor() const { return ServerMinor; }

  /// Compiles a batch in one round trip; Results[i] corresponds to
  /// Invs[i]. On a transport failure every result carries the error.
  std::vector<Result> compileBatch(const std::vector<CompilerInvocation> &Invs,
                                   uint64_t DeadlineMs = 0);

  /// compile() wrapped in the retry policy: reconnects on transport
  /// failure, honors `retry_after_ms` on queue_full with jittered
  /// exponential backoff, and fails fast once the circuit breaker is
  /// open. The returned Result's Error is non-empty only when every
  /// attempt failed (or the breaker was already open).
  Result compileWithRetry(const CompilerInvocation &Inv,
                          uint64_t DeadlineMs = 0);

  /// compileBatch() under the same retry policy. A batch is retried as a
  /// unit (the daemon admits whole batches).
  std::vector<Result>
  compileBatchWithRetry(const std::vector<CompilerInvocation> &Invs,
                        uint64_t DeadlineMs = 0);

  void setRetryPolicy(const RetryPolicy &P) { Policy = P; }
  const RetryPolicy &getRetryPolicy() const { return Policy; }
  const ClientStats &getClientStats() const { return Stats; }
  bool breakerOpen() const { return Stats.BreakerOpen; }

  /// Fetches the server's `stats_result` message into \p Out.
  bool stats(Json &Out, std::string *Err);

  /// Asks the server to drain and exit. Returns true on `shutdown_ok`.
  bool shutdownServer(std::string *Err);

  const std::string &address() const { return Address; }

  /// The compile-request body for \p Inv (shared with bench/tests that
  /// speak the protocol directly).
  static Json requestBody(const CompilerInvocation &Inv, uint64_t DeadlineMs);

private:
  /// Sends \p Msg and reads one reply frame. Returns false on transport
  /// failure (and closes: the stream state is unknown).
  bool roundTrip(const Json &Msg, Json &Reply, std::string *Err);
  /// The shared retry loop behind compileWithRetry/recompileWithRetry.
  Result requestWithRetry(bool Incremental, const CompilerInvocation &Inv,
                          uint64_t DeadlineMs);
  static Result resultFromWire(const Json &Msg);

  /// Bookkeeping after a failed/successful transport interaction; may
  /// open the breaker.
  void noteTransportFailure();
  void noteTransportSuccess();
  /// The jittered backoff for retry number \p Attempt (1-based), floored
  /// at the server's \p RetryAfterMs hint when present.
  uint64_t backoffMs(unsigned Attempt, uint64_t RetryAfterMs);

  std::string Address;
  int Fd = -1;
  uint32_t ServerMinor = 0;
  uint64_t NextId = 1;
  RetryPolicy Policy;
  ClientStats Stats;
  unsigned ConsecutiveTransportFailures = 0;
  uint64_t JitterState = 0; ///< Lazily seeded from Policy.Seed.
};

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_COMPILECLIENT_H
