//===- DaemonProtocol.cpp - The lssd wire protocol ----------------------------===//

#include "driver/DaemonProtocol.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace liberty;
using namespace liberty::driver;

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

const std::string &Json::asString() const {
  static const std::string Empty;
  return K == Kind::String ? StrV : Empty;
}

Json &Json::set(const std::string &Key, Json V) {
  if (K != Kind::Object) {
    *this = object();
  }
  Obj[Key] = std::move(V);
  return *this;
}

const Json *Json::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = Obj.find(Key);
  return It == Obj.end() ? nullptr : &It->second;
}

std::string Json::getString(const std::string &Key,
                            const std::string &Default) const {
  const Json *V = get(Key);
  return V && V->K == Kind::String ? V->StrV : Default;
}

double Json::getNumber(const std::string &Key, double Default) const {
  const Json *V = get(Key);
  return V && V->K == Kind::Number ? V->NumV : Default;
}

uint64_t Json::getU64(const std::string &Key, uint64_t Default) const {
  const Json *V = get(Key);
  return V ? V->asU64(Default) : Default; // Same strictness as asU64.
}

bool Json::getBool(const std::string &Key, bool Default) const {
  const Json *V = get(Key);
  return V && V->K == Kind::Bool ? V->BoolV : Default;
}

Json &Json::push(Json V) {
  if (K != Kind::Array)
    *this = array();
  Arr.push_back(std::move(V));
  return *this;
}

const std::vector<Json> &Json::items() const {
  static const std::vector<Json> Empty;
  return K == Kind::Array ? Arr : Empty;
}

std::string liberty::driver::jsonEscapeString(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += char(C);
      }
    }
  }
  return Out;
}

void Json::write(std::ostream &OS) const {
  switch (K) {
  case Kind::Null:
    OS << "null";
    break;
  case Kind::Bool:
    OS << (BoolV ? "true" : "false");
    break;
  case Kind::Number: {
    // Integers (the common case: ids, counters, budgets) print exactly;
    // everything else gets enough digits to round-trip.
    double Rounded = double(int64_t(NumV));
    if (Rounded == NumV && NumV >= -9.0e15 && NumV <= 9.0e15) {
      OS << int64_t(NumV);
    } else {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.17g", NumV);
      OS << Buf;
    }
    break;
  }
  case Kind::String:
    OS << '"' << jsonEscapeString(StrV) << '"';
    break;
  case Kind::Array: {
    OS << '[';
    for (size_t I = 0; I != Arr.size(); ++I) {
      if (I)
        OS << ',';
      Arr[I].write(OS);
    }
    OS << ']';
    break;
  }
  case Kind::Object: {
    OS << '{';
    bool First = true;
    for (const auto &[Key, Val] : Obj) {
      if (!First)
        OS << ',';
      First = false;
      OS << '"' << jsonEscapeString(Key) << "\":";
      Val.write(OS);
    }
    OS << '}';
    break;
  }
  }
}

std::string Json::dump() const {
  std::ostringstream OS;
  write(OS);
  return OS.str();
}

namespace {

/// Strict recursive-descent JSON parser. Depth-capped: frames come off the
/// network, and 100k nested '[' must produce an error, not a stack
/// overflow (the same discipline as the LSS parser's MaxNestingDepth).
class JsonParser {
public:
  JsonParser(std::string_view Text) : Text(Text) {}

  bool parse(Json &Out, std::string *Err) {
    bool Ok = parseValue(Out, 0);
    if (Ok) {
      skipWhitespace();
      if (Pos != Text.size()) {
        fail("trailing characters after JSON document");
        Ok = false;
      }
    }
    if (!Ok && Err)
      *Err = Error.empty() ? "invalid JSON" : Error;
    return Ok;
  }

private:
  static constexpr unsigned MaxDepth = 128;

  void fail(const std::string &Why) {
    if (Error.empty())
      Error = Why + " at offset " + std::to_string(Pos);
  }

  void skipWhitespace() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseLiteral(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"')) {
      fail("expected '\"'");
      return false;
    }
    Out.clear();
    while (Pos < Text.size()) {
      unsigned char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (C != '\\') {
        Out += char(C);
        ++Pos;
        continue;
      }
      // Escape sequence.
      if (++Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code = 0;
        if (!parseHex4(Code))
          return false;
        // Combine a surrogate pair when one follows; a lone surrogate
        // degrades to U+FFFD rather than producing invalid UTF-8.
        if (Code >= 0xD800 && Code <= 0xDBFF &&
            Text.substr(Pos, 2) == "\\u") {
          Pos += 2;
          unsigned Low = 0;
          if (!parseHex4(Low))
            return false;
          if (Low >= 0xDC00 && Low <= 0xDFFF)
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          else
            Code = 0xFFFD;
        } else if (Code >= 0xD800 && Code <= 0xDFFF) {
          Code = 0xFFFD;
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        fail("invalid escape sequence");
        return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parseHex4(unsigned &Code) {
    if (Pos + 4 > Text.size()) {
      fail("truncated \\u escape");
      return false;
    }
    Code = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Code <<= 4;
      if (C >= '0' && C <= '9')
        Code |= unsigned(C - '0');
      else if (C >= 'a' && C <= 'f')
        Code |= unsigned(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Code |= unsigned(C - 'A' + 10);
      else {
        fail("invalid \\u escape");
        return false;
      }
    }
    return true;
  }

  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += char(Code);
    } else if (Code < 0x800) {
      Out += char(0xC0 | (Code >> 6));
      Out += char(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += char(0xE0 | (Code >> 12));
      Out += char(0x80 | ((Code >> 6) & 0x3F));
      Out += char(0x80 | (Code & 0x3F));
    } else {
      Out += char(0xF0 | (Code >> 18));
      Out += char(0x80 | ((Code >> 12) & 0x3F));
      Out += char(0x80 | ((Code >> 6) & 0x3F));
      Out += char(0x80 | (Code & 0x3F));
    }
  }

  bool parseNumber(Json &Out) {
    size_t Start = Pos;
    if (consume('-')) {
    }
    while (Pos < Text.size() &&
           ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start) {
      fail("expected a number");
      return false;
    }
    std::string Num(Text.substr(Start, Pos - Start));
    errno = 0;
    char *End = nullptr;
    double V = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size() || errno == ERANGE) {
      fail("malformed number");
      return false;
    }
    Out = Json(V);
    return true;
  }

  bool parseValue(Json &Out, unsigned Depth) {
    if (Depth > MaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skipWhitespace();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return false;
    }
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out = Json::object();
      skipWhitespace();
      if (consume('}'))
        return true;
      for (;;) {
        skipWhitespace();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWhitespace();
        if (!consume(':')) {
          fail("expected ':'");
          return false;
        }
        Json Val;
        if (!parseValue(Val, Depth + 1))
          return false;
        Out.set(Key, std::move(Val));
        skipWhitespace();
        if (consume(','))
          continue;
        if (consume('}'))
          return true;
        fail("expected ',' or '}'");
        return false;
      }
    }
    if (C == '[') {
      ++Pos;
      Out = Json::array();
      skipWhitespace();
      if (consume(']'))
        return true;
      for (;;) {
        Json Val;
        if (!parseValue(Val, Depth + 1))
          return false;
        Out.push(std::move(Val));
        skipWhitespace();
        if (consume(','))
          continue;
        if (consume(']'))
          return true;
        fail("expected ',' or ']'");
        return false;
      }
    }
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json(std::move(S));
      return true;
    }
    if (C == 't') {
      if (!parseLiteral("true")) {
        fail("expected 'true'");
        return false;
      }
      Out = Json(true);
      return true;
    }
    if (C == 'f') {
      if (!parseLiteral("false")) {
        fail("expected 'false'");
        return false;
      }
      Out = Json(false);
      return true;
    }
    if (C == 'n') {
      if (!parseLiteral("null")) {
        fail("expected 'null'");
        return false;
      }
      Out = Json();
      return true;
    }
    return parseNumber(Out);
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Error;
};

} // namespace

bool Json::parse(std::string_view Text, Json &Out, std::string *Err) {
  return JsonParser(Text).parse(Out, Err);
}

//===----------------------------------------------------------------------===//
// Frame I/O
//===----------------------------------------------------------------------===//

namespace {

/// Reads exactly \p N bytes (restarting on EINTR). Returns N on success, 0
/// on immediate clean EOF, -1 on error or short read.
ssize_t readFull(int Fd, char *Buf, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, Buf + Got, N - Got);
    if (R == 0)
      return Got == 0 ? 0 : -1;
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    Got += size_t(R);
  }
  return ssize_t(N);
}

/// readFull with a wall-clock deadline: each read waits (via poll) at most
/// the remaining budget. Returns N on success, 0 on immediate clean EOF,
/// -1 on error, -2 on deadline expiry.
ssize_t readFullDeadline(int Fd, char *Buf, size_t N,
                         std::chrono::steady_clock::time_point Deadline) {
  size_t Got = 0;
  while (Got < N) {
    auto Now = std::chrono::steady_clock::now();
    if (Now >= Deadline)
      return -2;
    auto RemainMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(Deadline - Now)
            .count();
    pollfd PFd = {Fd, POLLIN, 0};
    int PR = ::poll(&PFd, 1, int(std::min<long long>(RemainMs, 60000)));
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (PR == 0)
      continue; // Re-check the deadline.
    ssize_t R = ::read(Fd, Buf + Got, N - Got);
    if (R == 0)
      return Got == 0 ? 0 : -1;
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    Got += size_t(R);
  }
  return ssize_t(N);
}

bool writeFull(int Fd, const char *Buf, size_t N) {
  size_t Sent = 0;
  while (Sent < N) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE
    // (a clean `false` here), never as a process-killing SIGPIPE — the
    // library cannot assume every embedder ignores the signal.
    ssize_t W = ::send(Fd, Buf + Sent, N - Sent, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += size_t(W);
  }
  return true;
}

} // namespace

FrameStatus liberty::driver::readFrame(int Fd, std::string &Payload,
                                       uint64_t MaxBytes) {
  unsigned char Hdr[4];
  ssize_t R = readFull(Fd, reinterpret_cast<char *>(Hdr), 4);
  if (R == 0)
    return FrameStatus::Eof;
  if (R < 0)
    return FrameStatus::Error;
  uint64_t Len = (uint64_t(Hdr[0]) << 24) | (uint64_t(Hdr[1]) << 16) |
                 (uint64_t(Hdr[2]) << 8) | uint64_t(Hdr[3]);
  if (Len > MaxBytes)
    return FrameStatus::TooLarge;
  Payload.resize(size_t(Len));
  if (Len != 0 && readFull(Fd, Payload.data(), size_t(Len)) != ssize_t(Len))
    return FrameStatus::Error;
  return FrameStatus::Ok;
}

FrameStatus liberty::driver::readFrameDeadline(int Fd, std::string &Payload,
                                               uint64_t MaxBytes,
                                               uint64_t DeadlineMs,
                                               bool IdleDeadline) {
  if (DeadlineMs == 0)
    return readFrame(Fd, Payload, MaxBytes);
  unsigned char Hdr[4];
  // The deadline clock starts with the frame. Unless the caller also wants
  // the idle wait bounded, block (unbounded) for the first header byte,
  // then demand the rest of the frame within DeadlineMs.
  ssize_t R;
  auto FarFuture = std::chrono::steady_clock::now() + std::chrono::hours(24);
  if (IdleDeadline) {
    R = readFullDeadline(Fd, reinterpret_cast<char *>(Hdr), 4,
                         std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(DeadlineMs));
  } else {
    R = readFullDeadline(Fd, reinterpret_cast<char *>(Hdr), 1, FarFuture);
    if (R > 0) {
      ssize_t R2 = readFullDeadline(
          Fd, reinterpret_cast<char *>(Hdr) + 1, 3,
          std::chrono::steady_clock::now() +
              std::chrono::milliseconds(DeadlineMs));
      R = R2 == 3 ? 4 : (R2 == 0 ? -1 : R2);
    }
  }
  if (R == 0)
    return FrameStatus::Eof;
  if (R == -2)
    return FrameStatus::Timeout;
  if (R < 0)
    return FrameStatus::Error;
  uint64_t Len = (uint64_t(Hdr[0]) << 24) | (uint64_t(Hdr[1]) << 16) |
                 (uint64_t(Hdr[2]) << 8) | uint64_t(Hdr[3]);
  if (Len > MaxBytes)
    return FrameStatus::TooLarge;
  Payload.resize(size_t(Len));
  if (Len != 0) {
    ssize_t Body = readFullDeadline(Fd, Payload.data(), size_t(Len),
                                    std::chrono::steady_clock::now() +
                                        std::chrono::milliseconds(DeadlineMs));
    if (Body == -2)
      return FrameStatus::Timeout;
    if (Body != ssize_t(Len))
      return FrameStatus::Error;
  }
  return FrameStatus::Ok;
}

bool liberty::driver::writeFrame(int Fd, std::string_view Payload) {
  if (Payload.size() > 0xFFFFFFFFull)
    return false;
  unsigned char Hdr[4] = {
      (unsigned char)(Payload.size() >> 24),
      (unsigned char)(Payload.size() >> 16),
      (unsigned char)(Payload.size() >> 8),
      (unsigned char)(Payload.size()),
  };
  return writeFull(Fd, reinterpret_cast<char *>(Hdr), 4) &&
         writeFull(Fd, Payload.data(), Payload.size());
}

bool liberty::driver::writeMessage(int Fd, const Json &Msg) {
  return writeFrame(Fd, Msg.dump());
}

//===----------------------------------------------------------------------===//
// Socket helpers
//===----------------------------------------------------------------------===//

bool liberty::driver::isUnixAddress(const std::string &Address) {
  if (Address.find('/') != std::string::npos)
    return true;
  return Address.size() > 5 &&
         Address.compare(Address.size() - 5, 5, ".sock") == 0;
}

namespace {

bool parsePort(const std::string &Address, uint16_t &Port, std::string *Err) {
  if (Address.empty() ||
      Address.find_first_not_of("0123456789") != std::string::npos) {
    if (Err)
      *Err = "invalid address '" + Address +
             "' (expected a Unix socket path or a localhost TCP port)";
    return false;
  }
  unsigned long V = std::strtoul(Address.c_str(), nullptr, 10);
  if (V > 65535) {
    if (Err)
      *Err = "TCP port " + Address + " out of range";
    return false;
  }
  Port = uint16_t(V);
  return true;
}

void fillUnixAddr(const std::string &Path, sockaddr_un &SA, bool &Ok,
                  std::string *Err) {
  std::memset(&SA, 0, sizeof(SA));
  SA.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(SA.sun_path)) {
    Ok = false;
    if (Err)
      *Err = "Unix socket path too long: '" + Path + "'";
    return;
  }
  std::memcpy(SA.sun_path, Path.c_str(), Path.size() + 1);
  Ok = true;
}

std::string errnoString(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

/// connect() with an optional wall-clock bound: non-blocking connect,
/// poll for writability, then SO_ERROR tells the truth. The fd is
/// returned to blocking mode on success. TimeoutMs of 0 blocks.
bool connectWithTimeout(int Fd, const sockaddr *SA, socklen_t Len,
                        uint64_t TimeoutMs, std::string *Err,
                        const std::string &Where) {
  if (TimeoutMs == 0) {
    if (::connect(Fd, SA, Len) < 0) {
      if (Err)
        *Err = errnoString("connect") + " to " + Where;
      return false;
    }
    return true;
  }
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  int RC = ::connect(Fd, SA, Len);
  if (RC < 0 && errno != EINPROGRESS) {
    if (Err)
      *Err = errnoString("connect") + " to " + Where;
    return false;
  }
  if (RC < 0) {
    pollfd PFd = {Fd, POLLOUT, 0};
    int PR;
    do {
      PR = ::poll(&PFd, 1, int(std::min<uint64_t>(TimeoutMs, 60000)));
    } while (PR < 0 && errno == EINTR);
    if (PR <= 0) {
      if (Err)
        *Err = "connect to " + Where + ": timed out after " +
               std::to_string(TimeoutMs) + " ms";
      return false;
    }
    int SoErr = 0;
    socklen_t SoLen = sizeof(SoErr);
    ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &SoLen);
    if (SoErr != 0) {
      if (Err)
        *Err = "connect to " + Where + ": " + std::strerror(SoErr);
      return false;
    }
  }
  ::fcntl(Fd, F_SETFL, Flags);
  return true;
}

} // namespace

int liberty::driver::netListen(const std::string &Address, int *BoundPort,
                               std::string *Err) {
  if (isUnixAddress(Address)) {
    sockaddr_un SA;
    bool Ok = false;
    fillUnixAddr(Address, SA, Ok, Err);
    if (!Ok)
      return -1;
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      if (Err)
        *Err = errnoString("socket");
      return -1;
    }
    ::unlink(Address.c_str()); // Stale socket from a crashed daemon.
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) < 0 ||
        ::listen(Fd, 64) < 0) {
      if (Err)
        *Err = errnoString("bind/listen") + " on '" + Address + "'";
      ::close(Fd);
      return -1;
    }
    if (BoundPort)
      *BoundPort = -1;
    return Fd;
  }

  uint16_t Port = 0;
  if (!parsePort(Address, Port, Err))
    return -1;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = errnoString("socket");
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sin_family = AF_INET;
  SA.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // Localhost only, by design.
  SA.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) < 0 ||
      ::listen(Fd, 64) < 0) {
    if (Err)
      *Err = errnoString("bind/listen") + " on localhost:" + Address;
    ::close(Fd);
    return -1;
  }
  if (BoundPort) {
    socklen_t Len = sizeof(SA);
    *BoundPort = ::getsockname(Fd, reinterpret_cast<sockaddr *>(&SA), &Len) == 0
                     ? ntohs(SA.sin_port)
                     : int(Port);
  }
  return Fd;
}

int liberty::driver::netConnect(const std::string &Address, std::string *Err,
                                uint64_t TimeoutMs) {
  if (isUnixAddress(Address)) {
    sockaddr_un SA;
    bool Ok = false;
    fillUnixAddr(Address, SA, Ok, Err);
    if (!Ok)
      return -1;
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      if (Err)
        *Err = errnoString("socket");
      return -1;
    }
    if (!connectWithTimeout(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA),
                            TimeoutMs, Err, "'" + Address + "'")) {
      ::close(Fd);
      return -1;
    }
    return Fd;
  }

  uint16_t Port = 0;
  if (!parsePort(Address, Port, Err))
    return -1;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = errnoString("socket");
    return -1;
  }
  sockaddr_in SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sin_family = AF_INET;
  SA.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  SA.sin_port = htons(Port);
  if (!connectWithTimeout(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA),
                          TimeoutMs, Err, "localhost:" + Address)) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}
