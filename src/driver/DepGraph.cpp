//===- DepGraph.cpp - Compile dependency graph artifact ----------------------===//

#include "driver/DepGraph.h"

#include "netlist/Serializer.h"
#include "support/FaultInjection.h"

#include <cctype>
#include <cstdio>
#include <sstream>

using namespace liberty;
using namespace liberty::driver;

//===----------------------------------------------------------------------===//
// Module-boundary scanning
//===----------------------------------------------------------------------===//

static bool isIdentChar(char C) {
  return std::isalnum((unsigned char)C) || C == '_';
}

bool liberty::driver::scanModuleSpans(const std::string &Text,
                                      std::vector<ModuleSpan> &Out) {
  Out.clear();
  size_t I = 0, N = Text.size();
  int Depth = 0;
  size_t SpanBegin = 0;
  std::string SpanName;
  bool InModule = false;

  while (I < N) {
    char C = Text[I];
    // Comments.
    if (C == '/' && I + 1 < N && Text[I + 1] == '/') {
      while (I < N && Text[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Text[I + 1] == '*') {
      size_t End = Text.find("*/", I + 2);
      if (End == std::string::npos)
        return false; // Unterminated block comment.
      I = End + 2;
      continue;
    }
    // String literals. An apostrophe is a type-variable marker in LSS,
    // not a quote, so only '"' opens a string.
    if (C == '"') {
      ++I;
      while (I < N && Text[I] != '"') {
        if (Text[I] == '\\')
          ++I;
        ++I;
      }
      if (I >= N)
        return false; // Unterminated string.
      ++I;
      continue;
    }
    if (C == '{') {
      ++Depth;
      ++I;
      continue;
    }
    if (C == '}') {
      if (--Depth < 0)
        return false; // Unbalanced braces.
      ++I;
      if (Depth == 0 && InModule) {
        // The decl-terminating ';' (`module m { ... };`) belongs to the
        // span: left in the residual it would be a token whose offset
        // shifts whenever the body grows, turning every in-body edit into
        // a spurious "top-level-changed" fallback. The terminator is
        // optional in the grammar, so only a ';' actually found (across
        // whitespace; a comment in between conservatively ends the span
        // at the brace) extends the span.
        size_t J = I;
        while (J < N && std::isspace((unsigned char)Text[J]))
          ++J;
        if (J < N && Text[J] == ';')
          I = J + 1;
        Out.push_back({SpanName, SpanBegin, I});
        InModule = false;
      }
      continue;
    }
    // Top-level `module NAME {`: the span runs from the keyword through
    // the matching close brace (plus the optional ';' terminator, see
    // above). Anything that does not complete the pattern stays residual
    // text (safe: hashing still covers every byte).
    if (Depth == 0 && C == 'm' && Text.compare(I, 6, "module") == 0 &&
        (I == 0 || !isIdentChar(Text[I - 1])) &&
        (I + 6 >= N || !isIdentChar(Text[I + 6]))) {
      size_t J = I + 6;
      while (J < N && std::isspace((unsigned char)Text[J]))
        ++J;
      size_t NameStart = J;
      while (J < N && isIdentChar(Text[J]))
        ++J;
      if (J > NameStart) {
        size_t K = J;
        while (K < N && std::isspace((unsigned char)Text[K]))
          ++K;
        if (K < N && Text[K] == '{') {
          InModule = true;
          SpanBegin = I;
          SpanName = Text.substr(NameStart, J - NameStart);
          I = J; // Resume before the '{' so the depth counter sees it.
          continue;
        }
      }
      I = J;
      continue;
    }
    ++I;
  }
  if (Depth != 0 || InModule)
    return false;
  return true;
}

uint64_t liberty::driver::hashModuleSpan(const std::string &Text,
                                         const ModuleSpan &S) {
  FnvHasher H;
  H.field("mod.off", S.Begin);
  H.str(S.Name);
  H.num(S.End - S.Begin);
  H.bytes(Text.data() + S.Begin, S.End - S.Begin);
  return H.get();
}

uint64_t liberty::driver::hashResidual(const std::string &Text,
                                       const std::vector<ModuleSpan> &Spans) {
  FnvHasher H;
  size_t Pos = 0;
  auto Slice = [&](size_t Begin, size_t End) {
    if (Begin >= End)
      return;
    // A pure-whitespace slice carries no tokens, so no SourceLocs: its
    // offset cannot affect any serialized artifact and is not folded.
    // (The trailing newline after a module must not read as a top-level
    // change just because the module body grew.) Token-bearing slices
    // fold their offset — a shifted top-level statement serializes
    // different SourceLocs even when its bytes are unchanged.
    bool AllSpace = true;
    for (size_t I = Begin; I != End && AllSpace; ++I)
      AllSpace = std::isspace(static_cast<unsigned char>(Text[I]));
    if (AllSpace)
      H.field("res.ws", 0);
    else
      H.field("res.off", Begin);
    H.num(End - Begin);
    H.bytes(Text.data() + Begin, End - Begin);
  };
  for (const ModuleSpan &S : Spans) {
    Slice(Pos, S.Begin);
    Pos = S.End;
  }
  Slice(Pos, Text.size());
  return H.get();
}

uint64_t liberty::driver::foldSourceKey(const std::string &Text) {
  std::vector<ModuleSpan> Spans;
  FnvHasher H;
  if (!scanModuleSpans(Text, Spans)) {
    // Unscannable text: flat hash. The tag keeps the fold distinct from a
    // scanned source that happens to hash alike.
    H.field("flat", 1);
    H.str(Text);
    return H.get();
  }
  H.field("merkle", Spans.size());
  for (const ModuleSpan &S : Spans)
    H.num(hashModuleSpan(Text, S));
  H.num(hashResidual(Text, Spans));
  return H.get();
}

//===----------------------------------------------------------------------===//
// LSSDEP serialization
//===----------------------------------------------------------------------===//

static std::string hex64(uint64_t V) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

static bool parseHex64(std::string_view S, uint64_t &Out) {
  if (S.empty() || S.size() > 16)
    return false;
  Out = 0;
  for (char C : S) {
    unsigned D;
    if (C >= '0' && C <= '9')
      D = unsigned(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = unsigned(C - 'a') + 10;
    else
      return false;
    Out = (Out << 4) | D;
  }
  return true;
}

bool liberty::driver::serializeDepGraph(const DepGraph &G, std::string &Out) {
  if (faultShouldFail("serialize.dep"))
    return false; // Injected failure: the graph just isn't cached.
  using netlist::artifactEscape;
  auto Opt = [](const std::string &S) {
    return S.empty() ? std::string("-") : artifactEscape(S);
  };
  std::ostringstream OS;
  OS << "LSSDEP 1\n";
  OS << "prev " << hex64(G.PrevElabKey) << ' ' << hex64(G.PrevSolveKey)
     << '\n';
  OS << "capable " << (G.Capable ? 1 : 0) << '\n';
  OS << "nsrc " << G.Sources.size() << '\n';
  for (const DepGraph::SourceDeps &S : G.Sources) {
    OS << "src " << artifactEscape(S.Name) << ' ' << (S.Scanned ? 1 : 0)
       << ' ' << hex64(S.ResidualHash) << ' ' << S.Modules.size() << '\n';
    for (const DepGraph::ModuleDep &M : S.Modules)
      OS << "m " << artifactEscape(M.Name) << ' ' << hex64(M.Hash) << '\n';
  }
  OS << "nedge " << G.Edges.size() << '\n';
  for (const auto &[From, To] : G.Edges)
    OS << "e " << Opt(From) << ' ' << Opt(To) << '\n';
  OS << "ninst " << G.Instances.size() << '\n';
  for (size_t I = 0; I != G.Instances.size(); ++I) {
    const DepGraph::InstDep &D = G.Instances[I];
    OS << "i " << D.ConnBegin << ' ' << D.ConnEnd << ' ' << D.DiagBegin
       << ' ' << D.DiagEnd << ' ' << D.Assigns.size() << ' '
       << D.Conns.size() << '\n';
    for (const DepGraph::PendingAssignDep &A : D.Assigns)
      OS << "a " << artifactEscape(A.Field) << ' ' << Opt(A.Value) << ' '
         << A.Loc.BufferId << ' ' << A.Loc.Offset << '\n';
    for (const DepGraph::PendingConnDep &C : D.Conns)
      OS << "c " << C.ConnIdx << ' ' << (C.IsFrom ? 1 : 0) << ' '
         << artifactEscape(C.Port) << ' ' << C.ExplicitIndex << ' '
         << C.Loc.BufferId << ' ' << C.Loc.Offset << '\n';
  }
  OS << "nmg " << G.ModuleGroups.size() << '\n';
  for (const auto &[Mod, Groups] : G.ModuleGroups) {
    OS << "mg " << Opt(Mod) << ' ' << Groups.size();
    for (unsigned Gr : Groups)
      OS << ' ' << Gr;
    OS << '\n';
  }
  OS << "end\n";
  Out = OS.str();
  return true;
}

bool liberty::driver::deserializeDepGraph(const std::string &Text,
                                          DepGraph &Out) {
  if (faultShouldFail("deserialize.dep"))
    return false; // Injected failure: treated as a cache miss.
  Out = DepGraph();
  using netlist::ArtifactLineReader;

  size_t Pos = 0;
  bool SawEnd = false;
  auto NextLine = [&](std::string_view &Line) {
    if (Pos >= Text.size())
      return false;
    size_t NL = Text.find('\n', Pos);
    if (NL == std::string::npos)
      NL = Text.size();
    Line = std::string_view(Text).substr(Pos, NL - Pos);
    Pos = NL + 1;
    return true;
  };

  std::string_view Line;
  if (!NextLine(Line))
    return false;
  {
    ArtifactLineReader L(Line);
    if (L.size() != 2 || L.raw(0) != "LSSDEP" || L.raw(1) != "1")
      return false;
  }

  // State for the record-at-a-time parse: which sub-records are pending.
  size_t SrcRemaining = 0, ModRemaining = 0;
  size_t EdgeRemaining = 0, InstRemaining = 0, MgRemaining = 0;
  size_t AssignRemaining = 0, ConnRemaining = 0;
  bool SawPrev = false, SawCapable = false, SawNsrc = false;
  bool SawNedge = false, SawNinst = false, SawNmg = false;

  while (NextLine(Line)) {
    ArtifactLineReader L(Line);
    if (L.size() == 0)
      return false;
    std::string_view Kind = L.raw(0);

    if (Kind == "end") {
      SawEnd = true;
      break;
    }
    if (Kind == "prev") {
      uint64_t E, S;
      if (SawPrev || L.size() != 3 || !parseHex64(L.raw(1), E) ||
          !parseHex64(L.raw(2), S))
        return false;
      Out.PrevElabKey = E;
      Out.PrevSolveKey = S;
      SawPrev = true;
    } else if (Kind == "capable") {
      if (SawCapable || L.size() != 2 ||
          (L.raw(1) != "0" && L.raw(1) != "1"))
        return false;
      Out.Capable = L.raw(1) == "1";
      SawCapable = true;
    } else if (Kind == "nsrc") {
      uint32_t N;
      if (SawNsrc || L.size() != 2 || !L.u32(1, N) || N > 1u << 20)
        return false;
      SrcRemaining = N;
      Out.Sources.reserve(N);
      SawNsrc = true;
    } else if (Kind == "src") {
      uint32_t NMods;
      uint64_t RH;
      DepGraph::SourceDeps S;
      if (!SrcRemaining || ModRemaining || L.size() != 5 ||
          !L.str(1, S.Name) || (L.raw(2) != "0" && L.raw(2) != "1") ||
          !parseHex64(L.raw(3), RH) || !L.u32(4, NMods) || NMods > 1u << 20)
        return false;
      S.Scanned = L.raw(2) == "1";
      S.ResidualHash = RH;
      S.Modules.reserve(NMods);
      Out.Sources.push_back(std::move(S));
      ModRemaining = NMods;
      --SrcRemaining;
    } else if (Kind == "m") {
      DepGraph::ModuleDep M;
      if (!ModRemaining || L.size() != 3 || !L.str(1, M.Name) ||
          !parseHex64(L.raw(2), M.Hash))
        return false;
      Out.Sources.back().Modules.push_back(std::move(M));
      --ModRemaining;
    } else if (Kind == "nedge") {
      uint32_t N;
      if (SawNedge || SrcRemaining || ModRemaining || L.size() != 2 ||
          !L.u32(1, N) || N > 1u << 24)
        return false;
      EdgeRemaining = N;
      Out.Edges.reserve(N);
      SawNedge = true;
    } else if (Kind == "e") {
      std::string From, To;
      if (!EdgeRemaining || L.size() != 3 || !L.optStr(1, From) ||
          !L.optStr(2, To))
        return false;
      Out.Edges.emplace_back(std::move(From), std::move(To));
      --EdgeRemaining;
    } else if (Kind == "ninst") {
      uint32_t N;
      if (SawNinst || EdgeRemaining || L.size() != 2 || !L.u32(1, N) ||
          N > 1u << 26)
        return false;
      InstRemaining = N;
      Out.Instances.reserve(N);
      SawNinst = true;
    } else if (Kind == "i") {
      DepGraph::InstDep D;
      uint32_t NA, NC;
      if (!InstRemaining || AssignRemaining || ConnRemaining ||
          L.size() != 7 || !L.u32(1, D.ConnBegin) || !L.u32(2, D.ConnEnd) ||
          !L.u32(3, D.DiagBegin) || !L.u32(4, D.DiagEnd) || !L.u32(5, NA) ||
          !L.u32(6, NC) || D.ConnBegin > D.ConnEnd ||
          D.DiagBegin > D.DiagEnd || NA > 1u << 24 || NC > 1u << 24)
        return false;
      D.Assigns.reserve(NA);
      D.Conns.reserve(NC);
      Out.Instances.push_back(std::move(D));
      AssignRemaining = NA;
      ConnRemaining = NC;
      --InstRemaining;
    } else if (Kind == "a") {
      DepGraph::PendingAssignDep A;
      if (!AssignRemaining || L.size() != 5 || !L.str(1, A.Field) ||
          !L.optStr(2, A.Value) || !L.loc(3, A.Loc))
        return false;
      Out.Instances.back().Assigns.push_back(std::move(A));
      --AssignRemaining;
    } else if (Kind == "c") {
      DepGraph::PendingConnDep C;
      if (!ConnRemaining || AssignRemaining || L.size() != 7 ||
          !L.u32(1, C.ConnIdx) || (L.raw(2) != "0" && L.raw(2) != "1") ||
          !L.str(3, C.Port) || !L.i64(4, C.ExplicitIndex) ||
          !L.loc(5, C.Loc))
        return false;
      C.IsFrom = L.raw(2) == "1";
      Out.Instances.back().Conns.push_back(std::move(C));
      --ConnRemaining;
    } else if (Kind == "nmg") {
      uint32_t N;
      if (SawNmg || InstRemaining || AssignRemaining || ConnRemaining ||
          L.size() != 2 || !L.u32(1, N) || N > 1u << 20)
        return false;
      MgRemaining = N;
      Out.ModuleGroups.reserve(N);
      SawNmg = true;
    } else if (Kind == "mg") {
      std::string Mod;
      uint32_t K;
      if (!MgRemaining || L.size() < 3 || !L.optStr(1, Mod) ||
          !L.u32(2, K) || L.size() != size_t(K) + 3)
        return false;
      std::vector<unsigned> Groups(K);
      for (uint32_t I = 0; I != K; ++I)
        if (!L.u32(I + 3, Groups[I]))
          return false;
      Out.ModuleGroups.emplace_back(std::move(Mod), std::move(Groups));
      --MgRemaining;
    } else {
      return false;
    }
  }

  return SawEnd && SawPrev && SawCapable && SawNsrc && SawNedge &&
         SawNinst && SawNmg && !SrcRemaining && !ModRemaining &&
         !EdgeRemaining && !InstRemaining && !AssignRemaining &&
         !ConnRemaining && !MgRemaining;
}
