//===- CompilerInvocation.cpp - One compile, as a value ----------------------===//

#include "driver/CompilerInvocation.h"

#include "corelib/CoreLib.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace liberty;
using namespace liberty::driver;

bool CompilerInvocation::addFile(const std::string &Path, std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open file '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  addSource(Path, SS.str());
  return true;
}

namespace {

/// FNV-1a 64. Fields are fed as `tag=value;` runs; strings are
/// length-prefixed so adjacent fields cannot alias.
class Hasher {
public:
  void bytes(const void *Data, size_t N) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != N; ++I) {
      H ^= P[I];
      H *= 1099511628211ull;
    }
  }
  void str(const std::string &S) {
    num(S.size());
    bytes(S.data(), S.size());
  }
  void num(uint64_t V) { bytes(&V, sizeof(V)); }
  void field(const char *Tag, uint64_t V) {
    bytes(Tag, std::char_traits<char>::length(Tag));
    num(V);
  }
  uint64_t get() const { return H; }

private:
  uint64_t H = 1469598103934665603ull; // FNV offset basis.
};

} // namespace

/// Bump when any cached artifact format (LSSNL/LSSSOL/LSSART) or the key
/// contract changes: stale on-disk entries then simply miss.
static constexpr uint64_t CacheFormatVersion = 1;

uint64_t CompilerInvocation::elabKey() const {
  Hasher H;
  H.field("fmt", CacheFormatVersion);
  H.field("corelib", UseCoreLibrary ? 1 : 0);
  if (UseCoreLibrary)
    H.str(corelib::getCoreLibraryLss());
  H.field("sources", Sources.size());
  for (const Source &S : Sources)
    H.str(S.Text); // Names excluded: content-addressed (see header).
  H.field("elab.maxsteps", Elab.MaxSteps);
  H.field("elab.maxinstances", Elab.MaxInstances);
  return H.get();
}

uint64_t CompilerInvocation::solveKey() const {
  Hasher H;
  H.field("elab", elabKey());
  H.field("solve.reorder", Solve.ReorderSimpleFirst ? 1 : 0);
  H.field("solve.forced", Solve.ForcedDisjunctElimination ? 1 : 0);
  H.field("solve.partition", Solve.Partition ? 1 : 0);
  // NumThreads, MaxSteps, DeadlineMs excluded by contract (see header).
  return H.get();
}

uint64_t CompilerInvocation::fingerprint() const {
  Hasher H;
  H.field("solve", solveKey());
  H.field("maxerrors", MaxErrors);
  H.field("solve.maxsteps", Solve.MaxSteps);
  H.field("solve.deadline", Solve.DeadlineMs);
  H.field("sim.fixpoint", Sim.MaxFixpointIters);
  H.field("sim.selective", Sim.Selective ? 1 : 0);
  H.field("sim.engine", uint64_t(Sim.Engine));
  // Sim.Jobs and BuildSim excluded (see header).
  return H.get();
}

std::string CompilerInvocation::keyString(uint64_t Key) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)Key);
  return Buf;
}
