//===- CompilerInvocation.cpp - One compile, as a value ----------------------===//

#include "driver/CompilerInvocation.h"

#include "corelib/CoreLib.h"
#include "driver/DepGraph.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace liberty;
using namespace liberty::driver;

bool CompilerInvocation::addFile(const std::string &Path, std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot open file '" + Path + "'";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  addSource(Path, SS.str());
  return true;
}

/// The hasher moved to driver/DepGraph.h (FnvHasher) so the dependency
/// artifact's per-module hashes share the exact same byte discipline.
using Hasher = FnvHasher;

/// Bump when any cached artifact format (LSSNL/LSSSOL/LSSART/LSSDEP) or
/// the key contract changes: stale on-disk entries then simply miss.
/// v2: elabKey became a Merkle fold over per-module spans, LSSSOL gained
/// v3 records, and serialized type variables are renamed to first-use
/// ordinals.
static constexpr uint64_t CacheFormatVersion = 2;

uint64_t CompilerInvocation::elabKey() const {
  Hasher H;
  H.field("fmt", CacheFormatVersion);
  H.field("corelib", UseCoreLibrary ? 1 : 0);
  if (UseCoreLibrary)
    H.str(corelib::getCoreLibraryLss());
  H.field("sources", Sources.size());
  // Names excluded: content-addressed (see header). Each text enters as a
  // Merkle fold over its top-level module spans (driver/DepGraph), so this
  // key is a root over the per-module content hashes the incremental
  // driver diffs — equal texts fold equal, and any byte change reaches the
  // root through a module span or residual slice.
  for (const Source &S : Sources)
    H.num(foldSourceKey(S.Text));
  H.field("elab.maxsteps", Elab.MaxSteps);
  H.field("elab.maxinstances", Elab.MaxInstances);
  return H.get();
}

uint64_t CompilerInvocation::depKey() const {
  // Content-INDEPENDENT: names and options only, so an edited project
  // overwrites its own dependency entry in place and the next compile can
  // find it without knowing the previous text.
  Hasher H;
  H.field("fmt", CacheFormatVersion);
  H.field("dep", 1);
  H.field("corelib", UseCoreLibrary ? 1 : 0);
  H.field("sources", Sources.size());
  for (const Source &S : Sources)
    H.str(S.Name);
  H.field("elab.maxsteps", Elab.MaxSteps);
  H.field("elab.maxinstances", Elab.MaxInstances);
  H.field("solve.reorder", Solve.ReorderSimpleFirst ? 1 : 0);
  H.field("solve.forced", Solve.ForcedDisjunctElimination ? 1 : 0);
  H.field("solve.partition", Solve.Partition ? 1 : 0);
  return H.get();
}

uint64_t CompilerInvocation::solveKey() const {
  Hasher H;
  H.field("elab", elabKey());
  H.field("solve.reorder", Solve.ReorderSimpleFirst ? 1 : 0);
  H.field("solve.forced", Solve.ForcedDisjunctElimination ? 1 : 0);
  H.field("solve.partition", Solve.Partition ? 1 : 0);
  // NumThreads, MaxSteps, DeadlineMs excluded by contract (see header).
  return H.get();
}

uint64_t CompilerInvocation::fingerprint() const {
  Hasher H;
  H.field("solve", solveKey());
  H.field("maxerrors", MaxErrors);
  H.field("solve.maxsteps", Solve.MaxSteps);
  H.field("solve.deadline", Solve.DeadlineMs);
  H.field("sim.fixpoint", Sim.MaxFixpointIters);
  H.field("sim.selective", Sim.Selective ? 1 : 0);
  H.field("sim.engine", uint64_t(Sim.Engine));
  // Sim.Jobs and BuildSim excluded (see header).
  return H.get();
}

std::string CompilerInvocation::keyString(uint64_t Key) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)Key);
  return Buf;
}
