//===- Compiler.cpp - End-to-end LSS compilation driver ----------------------===//

#include "driver/Compiler.h"

#include "corelib/CoreLib.h"
#include "lss/Parser.h"
#include "support/Casting.h"

#include <fstream>
#include <sstream>

using namespace liberty;
using namespace liberty::driver;

Compiler::Compiler() : Diags(SM) {}

Compiler::~Compiler() = default;

/// Counts explicit type annotations in a statement tree (connection
/// annotations and constrain statements — the manual type instantiations
/// Table 2's "w/ inference" column counts).
static unsigned countAnnotations(const std::vector<lss::Stmt *> &Body) {
  unsigned N = 0;
  for (const lss::Stmt *S : Body) {
    switch (S->getKind()) {
    case lss::Stmt::Kind::Connect:
      if (cast<lss::ConnectStmt>(S)->getAnnotation())
        ++N;
      break;
    case lss::Stmt::Kind::Constrain:
      ++N;
      break;
    case lss::Stmt::Kind::If: {
      const auto *I = cast<lss::IfStmt>(S);
      N += countAnnotations({I->getThen()});
      if (I->getElse())
        N += countAnnotations({I->getElse()});
      break;
    }
    case lss::Stmt::Kind::For:
      N += countAnnotations({cast<lss::ForStmt>(S)->getBody()});
      break;
    case lss::Stmt::Kind::While:
      N += countAnnotations({cast<lss::WhileStmt>(S)->getBody()});
      break;
    case lss::Stmt::Kind::Block:
      N += countAnnotations(cast<lss::BlockStmt>(S)->getBody());
      break;
    default:
      break;
    }
  }
  return N;
}

bool Compiler::parseInto(uint32_t BufferId, bool IsLibrary) {
  PhaseTimer::Scope Phase(&Timer, "parse");
  unsigned ErrorsBefore = Diags.getNumErrors();
  lss::Parser P(BufferId, Ctx, Diags);
  lss::SpecFile File = P.parseFile();
  for (lss::ModuleDecl *M : File.Modules)
    AllModules.push_back(M);
  for (lss::Stmt *S : File.TopLevel)
    TopLevel.push_back(S);
  if (IsLibrary) {
    for (const lss::ModuleDecl *M : File.Modules)
      LibraryModules.insert(M->getName());
  } else {
    for (const lss::ModuleDecl *M : File.Modules)
      NumUserAnnotations += countAnnotations(M->getBody());
    NumUserAnnotations += countAnnotations(File.TopLevel);
  }
  return Diags.getNumErrors() == ErrorsBefore;
}

bool Compiler::addCoreLibrary() {
  if (LibraryAdded)
    return true;
  LibraryAdded = true;
  corelib::registerCoreBehaviors();
  uint32_t BufferId = SM.addBuffer("<corelib>", corelib::getCoreLibraryLss());
  return parseInto(BufferId, /*IsLibrary=*/true);
}

bool Compiler::addSource(const std::string &Name, const std::string &Text) {
  uint32_t BufferId = SM.addBuffer(Name, Text);
  return parseInto(BufferId, /*IsLibrary=*/false);
}

bool Compiler::addFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    Diags.error(SourceLoc(), "cannot open file '" + Path + "'");
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return addSource(Path, SS.str());
}

bool Compiler::elaborate() {
  return elaborate(interp::Interpreter::Options());
}

bool Compiler::elaborate(const interp::Interpreter::Options &Opts) {
  PhaseTimer::Scope Phase(&Timer, "elaborate");
  Interp = std::make_unique<interp::Interpreter>(TC, Diags, Opts);
  lss::SpecFile All;
  All.Modules = AllModules;
  Interp->addModules(All); // Duplicate module names are diagnosed here.
  NL = Interp->run(TopLevel);
  return !Diags.hasErrors();
}

bool Compiler::inferTypes() { return inferTypes(infer::SolveOptions()); }

bool Compiler::inferTypes(const infer::SolveOptions &Opts) {
  if (!NL) {
    Diags.error(SourceLoc(), "inferTypes called before elaborate");
    return false;
  }
  InferStats = infer::inferNetlistTypes(*NL, TC, Diags, Opts, &Timer);
  return !Diags.hasErrors();
}

sim::Simulator *Compiler::buildSimulator() {
  return buildSimulator(sim::Simulator::Options());
}

sim::Simulator *Compiler::buildSimulator(const sim::Simulator::Options &SimOpts) {
  if (!NL) {
    Diags.error(SourceLoc(), "buildSimulator called before elaborate");
    return nullptr;
  }
  PhaseTimer::Scope Phase(&Timer, "sim-build");
  Sim = sim::Simulator::build(*NL, SM, Diags, SimOpts);
  return Sim.get();
}

std::unique_ptr<Compiler> Compiler::compileForSim(const std::string &Name,
                                                  const std::string &Text) {
  return compileForSim(Name, Text, sim::Simulator::Options());
}

std::unique_ptr<Compiler>
Compiler::compileForSim(const std::string &Name, const std::string &Text,
                        const sim::Simulator::Options &SimOpts) {
  auto C = std::make_unique<Compiler>();
  if (!C->addCoreLibrary())
    return nullptr;
  if (!C->addSource(Name, Text))
    return nullptr;
  if (!C->elaborate())
    return nullptr;
  if (!C->inferTypes())
    return nullptr;
  if (!C->buildSimulator(SimOpts))
    return nullptr;
  return C;
}

std::string Compiler::diagnosticsText() const {
  std::ostringstream OS;
  Diags.printAll(OS);
  return OS.str();
}
