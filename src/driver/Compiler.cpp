//===- Compiler.cpp - End-to-end LSS compilation driver ----------------------===//

#include "driver/Compiler.h"

#include "corelib/CoreLib.h"
#include "lss/Parser.h"
#include "support/Casting.h"

#include <fstream>
#include <sstream>

using namespace liberty;
using namespace liberty::driver;

Compiler::Compiler() : Diags(SM) {}

Compiler::~Compiler() = default;

/// Counts explicit type annotations in a statement tree (connection
/// annotations and constrain statements — the manual type instantiations
/// Table 2's "w/ inference" column counts).
static unsigned countAnnotations(const std::vector<lss::Stmt *> &Body) {
  unsigned N = 0;
  for (const lss::Stmt *S : Body) {
    switch (S->getKind()) {
    case lss::Stmt::Kind::Connect:
      if (cast<lss::ConnectStmt>(S)->getAnnotation())
        ++N;
      break;
    case lss::Stmt::Kind::Constrain:
      ++N;
      break;
    case lss::Stmt::Kind::If: {
      const auto *I = cast<lss::IfStmt>(S);
      N += countAnnotations({I->getThen()});
      if (I->getElse())
        N += countAnnotations({I->getElse()});
      break;
    }
    case lss::Stmt::Kind::For:
      N += countAnnotations({cast<lss::ForStmt>(S)->getBody()});
      break;
    case lss::Stmt::Kind::While:
      N += countAnnotations({cast<lss::WhileStmt>(S)->getBody()});
      break;
    case lss::Stmt::Kind::Block:
      N += countAnnotations(cast<lss::BlockStmt>(S)->getBody());
      break;
    default:
      break;
    }
  }
  return N;
}

bool Compiler::parseInto(uint32_t BufferId, bool IsLibrary) {
  PhaseTimer::Scope Phase(&Timer, "parse");
  unsigned ErrorsBefore = Diags.getNumErrors();
  lss::Parser P(BufferId, Ctx, Diags);
  lss::SpecFile File = P.parseFile();
  for (lss::ModuleDecl *M : File.Modules)
    AllModules.push_back(M);
  for (lss::Stmt *S : File.TopLevel)
    TopLevel.push_back(S);
  if (IsLibrary) {
    for (const lss::ModuleDecl *M : File.Modules)
      LibraryModules.insert(M->getName());
  } else {
    for (const lss::ModuleDecl *M : File.Modules)
      NumUserAnnotations += countAnnotations(M->getBody());
    NumUserAnnotations += countAnnotations(File.TopLevel);
  }
  return Diags.getNumErrors() == ErrorsBefore;
}

namespace {

/// The component library parsed once per process. The AST (and the
/// ASTContext/SourceMgr backing it) is immutable after construction, so
/// every compile — including the concurrent compiles of a batch — can
/// register the same ModuleDecl pointers instead of reparsing ~the same
/// buffer every time. This is the "parsed core-library AST" artifact of
/// the compile cache; it needs no keying because the library text is a
/// build-time constant.
struct SharedCoreLib {
  std::string Text;
  SourceMgr SM;
  DiagnosticEngine Diags{SM};
  lss::ASTContext Ctx;
  lss::SpecFile File;
  uint32_t BufferId = 0;
  bool Valid = false;

  SharedCoreLib() {
    Text = corelib::getCoreLibraryLss();
    BufferId = SM.addBuffer("<corelib>", Text);
    lss::Parser P(BufferId, Ctx, Diags);
    File = P.parseFile();
    Valid = !Diags.hasErrors();
  }

  static const SharedCoreLib &get() {
    static SharedCoreLib S; // Magic static: thread-safe one-time parse.
    return S;
  }
};

} // namespace

bool Compiler::addCoreLibrary() {
  if (LibraryAdded)
    return true;
  LibraryAdded = true;
  corelib::registerCoreBehaviors();
  const SharedCoreLib &Shared = SharedCoreLib::get();
  // The compile's own SourceMgr still gets the library buffer, so buffer
  // ids and diagnostic locations line up exactly with a cold parse.
  uint32_t BufferId = SM.addBuffer("<corelib>", Shared.Text);
  if (Shared.Valid && BufferId == Shared.BufferId) {
    for (lss::ModuleDecl *M : Shared.File.Modules) {
      AllModules.push_back(M);
      LibraryModules.insert(M->getName());
    }
    return true;
  }
  // The library buffer landed at an unexpected id (sources were added
  // first) — locations in the shared AST would be wrong, so parse afresh.
  return parseInto(BufferId, /*IsLibrary=*/true);
}

bool Compiler::addSource(const std::string &Name, const std::string &Text) {
  uint32_t BufferId = SM.addBuffer(Name, Text);
  return parseInto(BufferId, /*IsLibrary=*/false);
}

bool Compiler::addFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    Diags.error(SourceLoc(), "cannot open file '" + Path + "'");
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return addSource(Path, SS.str());
}

bool Compiler::addSources(const CompilerInvocation &Inv) {
  Diags.setMaxErrors(Inv.MaxErrors);
  if (Inv.UseCoreLibrary && !addCoreLibrary())
    return false;
  bool Ok = true;
  for (const CompilerInvocation::Source &S : Inv.Sources)
    Ok = addSource(S.Name, S.Text) && Ok;
  return Ok;
}

void Compiler::registerSourcesWithoutParsing(const CompilerInvocation &Inv) {
  Diags.setMaxErrors(Inv.MaxErrors);
  if (Inv.UseCoreLibrary) {
    LibraryAdded = true;
    corelib::registerCoreBehaviors();
    SM.addBuffer("<corelib>", SharedCoreLib::get().Text);
  }
  for (const CompilerInvocation::Source &S : Inv.Sources)
    SM.addBuffer(S.Name, S.Text);
}

bool Compiler::elaborate(const CompilerInvocation &Inv) {
  PhaseTimer::Scope Phase(&Timer, "elaborate");
  Interp = std::make_unique<interp::Interpreter>(TC, Diags, Inv.Elab);
  if (PendingReplayHook)
    Interp->setReplayHook(std::move(PendingReplayHook));
  lss::SpecFile All;
  All.Modules = AllModules;
  Interp->addModules(All); // Duplicate module names are diagnosed here.
  NL = Interp->run(TopLevel);
  return !Diags.hasErrors();
}

bool Compiler::inferTypes(const CompilerInvocation &Inv,
                          const infer::NetlistSpliceHooks *SpliceHooks) {
  if (!NL) {
    Diags.error(SourceLoc(), "inferTypes called before elaborate");
    return false;
  }
  InferStats =
      infer::inferNetlistTypes(*NL, TC, Diags, Inv.Solve, &Timer, SpliceHooks);
  return !Diags.hasErrors();
}

sim::Simulator *Compiler::buildSimulator(const CompilerInvocation &Inv) {
  return buildSimulator(Inv, nullptr);
}

sim::Simulator *Compiler::buildSimulator(const CompilerInvocation &Inv,
                                         const std::string *KernelArtifact) {
  if (!NL) {
    Diags.error(SourceLoc(), "buildSimulator called before elaborate");
    return nullptr;
  }
  PhaseTimer::Scope Phase(&Timer, "sim-build");
  Sim = sim::Simulator::build(*NL, SM, Diags, Inv.Sim, KernelArtifact);
  return Sim.get();
}

bool Compiler::adoptNetlist(netlist::SerializedCompile SC) {
  if (!SC.NL)
    return false;
  NL = std::move(SC.NL);
  LibraryModules = std::move(SC.LibraryModules);
  NumUserAnnotations = SC.NumUserAnnotations;
  replayDiagnostics(SC.Diags);
  return true;
}

void Compiler::replayDiagnostics(const std::vector<Diagnostic> &Ds) {
  for (const Diagnostic &D : Ds) {
    if (D.Level == DiagLevel::Warning)
      Diags.warning(D.Loc, D.Message);
    else if (D.Level == DiagLevel::Note)
      Diags.note(D.Loc, D.Message);
    // Errors are never recorded in cache artifacts; drop defensively.
  }
}

std::unique_ptr<Compiler>
Compiler::compileForSim(const CompilerInvocation &Inv) {
  auto C = std::make_unique<Compiler>();
  if (!C->addSources(Inv))
    return nullptr;
  if (!C->elaborate(Inv))
    return nullptr;
  if (!C->inferTypes(Inv))
    return nullptr;
  if (!C->buildSimulator(Inv))
    return nullptr;
  return C;
}

std::unique_ptr<Compiler> Compiler::compileForSim(const std::string &Name,
                                                  const std::string &Text) {
  CompilerInvocation Inv;
  Inv.addSource(Name, Text);
  return compileForSim(Inv);
}

std::string Compiler::diagnosticsText() const {
  std::ostringstream OS;
  Diags.printAll(OS);
  return OS.str();
}
