//===- Stats.cpp - Reuse statistics (Table 2) --------------------------------===//

#include "driver/Stats.h"

#include "driver/CompileService.h"
#include "lss/AST.h"
#include "netlist/Netlist.h"
#include "sim/CompiledKernel.h"
#include "sim/Simulator.h"
#include "support/PhaseTimer.h"

#include <iomanip>

using namespace liberty;
using namespace liberty::driver;

/// A "trivial" hierarchical instance wraps a collection of identical
/// sub-components without parameterization (the paper discounts these in
/// the parenthesized Table 2 figures).
static bool isTrivialWrapper(const netlist::InstanceNode &Inst) {
  if (Inst.isLeaf() || Inst.Children.empty())
    return false;
  if (!Inst.Params.empty())
    return false;
  // Module names are unique per compilation (duplicates are diagnosed), so
  // name equality matches the declaration-identity test — and, unlike the
  // AST pointer, survives netlist serialization.
  const std::string &First = Inst.Children.front()->ModuleName;
  for (const netlist::InstanceNode *Child : Inst.Children)
    if (Child->ModuleName != First)
      return false;
  return true;
}

ModelStats
liberty::driver::computeModelStats(const netlist::Netlist &NL,
                                   const std::set<std::string> &LibraryModules,
                                   unsigned NumUserAnnotations,
                                   std::string Name) {
  ModelStats S;
  S.Name = std::move(Name);
  S.ExplicitTypesWithInference = NumUserAnnotations;

  std::set<std::string> Modules, LeafModules, HierModules, LibUsed;
  for (const auto &Inst : NL.getInstances()) {
    if (Inst->ModuleName.empty())
      continue; // Synthetic root.
    ++S.TotalInstances;
    const std::string &ModName = Inst->ModuleName;
    Modules.insert(ModName);
    if (Inst->isLeaf()) {
      ++S.LeafInstances;
      LeafModules.insert(ModName);
    } else {
      ++S.HierarchicalInstances;
      HierModules.insert(ModName);
      if (isTrivialWrapper(*Inst))
        ++S.TrivialHierarchicalInstances;
    }
    if (LibraryModules.count(ModName)) {
      ++S.InstancesFromLibrary;
      LibUsed.insert(ModName);
    }
    S.ExplicitTypesWithoutInference += Inst->NumTypeVars;
    for (const netlist::Port &P : Inst->Ports)
      if (P.WidthInferred && P.Width > 0)
        ++S.InferredPortWidths;
  }
  S.DistinctModules = Modules.size();
  S.DistinctLeafModules = LeafModules.size();
  S.DistinctHierarchicalModules = HierModules.size();
  S.ModulesFromLibrary = LibUsed.size();

  for (const auto &Conn : NL.getConnections())
    if (Conn->isFullyResolved())
      ++S.Connections;
  return S;
}

ModelStats liberty::driver::totalStats(const std::vector<ModelStats> &All) {
  ModelStats T;
  T.Name = "Total";
  for (const ModelStats &S : All) {
    T.TotalInstances += S.TotalInstances;
    T.HierarchicalInstances += S.HierarchicalInstances;
    T.LeafInstances += S.LeafInstances;
    T.TrivialHierarchicalInstances += S.TrivialHierarchicalInstances;
    // Distinct-module totals are upper bounds (models share the library).
    T.DistinctModules = std::max(T.DistinctModules, S.DistinctModules);
    T.DistinctLeafModules =
        std::max(T.DistinctLeafModules, S.DistinctLeafModules);
    T.DistinctHierarchicalModules =
        std::max(T.DistinctHierarchicalModules, S.DistinctHierarchicalModules);
    T.InstancesFromLibrary += S.InstancesFromLibrary;
    T.ModulesFromLibrary = std::max(T.ModulesFromLibrary, S.ModulesFromLibrary);
    T.ExplicitTypesWithoutInference += S.ExplicitTypesWithoutInference;
    T.ExplicitTypesWithInference += S.ExplicitTypesWithInference;
    T.InferredPortWidths += S.InferredPortWidths;
    T.Connections += S.Connections;
  }
  return T;
}

void liberty::driver::printTable2Header(std::ostream &OS) {
  OS << std::left << std::setw(8) << "Model" << std::right << std::setw(10)
     << "Instances" << std::setw(8) << "Hier" << std::setw(7) << "Leaf"
     << std::setw(9) << "Modules" << std::setw(10) << "Inst/Mod"
     << std::setw(8) << "FromLib" << std::setw(12) << "TypesW/O-TI"
     << std::setw(11) << "TypesW-TI" << std::setw(10) << "InfWidth"
     << std::setw(8) << "Conns" << "\n";
}

void liberty::driver::printStatsJson(std::ostream &OS, const ModelStats &S,
                                     const infer::NetlistInferenceStats &IS,
                                     const PhaseTimer &Timer,
                                     const sim::Simulator *Sim,
                                     const CacheReport *Cache,
                                     double CyclesPerSec,
                                     const IncrementalStats *Incremental) {
  OS << "{\n";
  OS << "  \"schema_version\": " << StatsSchemaVersion << ",\n";
  OS << "  \"model\": \"" << jsonEscape(S.Name) << "\",\n";
  OS << "  \"phases\": ";
  Timer.printJson(OS);
  OS << ",\n";

  const infer::SolveStats &Solve = IS.Solve;
  OS << "  \"inference\": {\n"
     << "    \"success\": " << (Solve.Success ? "true" : "false") << ",\n"
     << "    \"constraints\": " << Solve.NumConstraints << ",\n"
     << "    \"disjunctive_constraints\": " << Solve.NumDisjunctive << ",\n"
     << "    \"unify_steps\": " << Solve.UnifySteps << ",\n"
     << "    \"branch_points\": " << Solve.BranchPoints << ",\n"
     << "    \"components\": " << Solve.NumComponents << ",\n"
     << "    \"groups_unsolved\": " << Solve.NumUnsolved << ",\n"
     << "    \"threads_used\": " << Solve.ThreadsUsed << ",\n"
     << "    \"ports\": " << IS.NumPorts << ",\n"
     << "    \"polymorphic_ports\": " << IS.NumPolymorphicPorts << ",\n"
     << "    \"defaulted\": " << IS.NumDefaulted << ",\n"
     << "    \"groups\": [";
  for (size_t I = 0; I != Solve.Groups.size(); ++I) {
    const infer::GroupStats &G = Solve.Groups[I];
    if (I)
      OS << ",";
    OS << "\n      {\"index\": " << I << ", \"constraints\": "
       << G.NumConstraints << ", \"unify_steps\": " << G.UnifySteps
       << ", \"branch_points\": " << G.BranchPoints << ", \"wall_ms\": "
       << std::fixed << std::setprecision(3) << G.WallMs << ", \"success\": "
       << (G.Success ? "true" : "false") << ", \"hit_limit\": "
       << (G.HitLimit ? "true" : "false") << ", \"hit_deadline\": "
       << (G.HitDeadline ? "true" : "false") << "}";
  }
  OS << "\n    ]\n  },\n";

  if (Sim) {
    const sim::ActivityStats &A = Sim->getActivityStats();
    const sim::Simulator::BuildInfo &BI = Sim->getBuildInfo();
    OS << "  \"simulation\": {\n"
       << "    \"engine\": \"" << jsonEscape(Sim->getEngineName()) << "\",\n"
       << "    \"selective\": " << (A.Selective ? "true" : "false") << ",\n"
       << "    \"jobs\": " << Sim->getOptions().Jobs << ",\n"
       << "    \"levels\": " << BI.NumLevels << ",\n"
       << "    \"max_level_width\": " << BI.MaxLevelWidth << ",\n"
       << "    \"cycles\": " << A.Cycles << ",\n"
       << "    \"groups_evaluated\": " << A.GroupsEvaluated << ",\n"
       << "    \"groups_skipped\": " << A.GroupsSkipped << ",\n"
       << "    \"leaf_evals\": " << A.LeafEvals << ",\n"
       << "    \"leaf_evals_skipped\": " << A.LeafEvalsSkipped << ",\n"
       << "    \"fixpoint_iters\": " << A.FixpointIters << ",\n"
       << "    \"net_writes\": " << A.NetWrites << ",\n"
       << "    \"net_changes\": " << A.NetChanges << ",\n"
       << "    \"events_replayed\": " << A.EventsReplayed << ",\n"
       << "    \"bypass_cycles\": " << A.BypassCycles;
    if (const sim::KernelStats *KS = Sim->getKernelStats()) {
      OS << ",\n"
         << "    \"kernel_from_cache\": " << (KS->FromCache ? "true" : "false")
         << ",\n"
         << "    \"kernel_build_ms\": " << std::fixed << std::setprecision(3)
         << KS->BuildMs << ",\n"
         << "    \"kernel_ops\": " << KS->NumOps << ",\n"
         << "    \"kernel_specialized_ops\": " << KS->NumSpecializedOps
         << ",\n"
         << "    \"kernel_generic_ops\": " << KS->NumGenericOps << ",\n"
         << "    \"kernel_seq_ops\": " << KS->NumSeqOps << ",\n"
         << "    \"kernel_seq_elided\": " << KS->NumSeqElided;
    }
    if (CyclesPerSec > 0.0)
      OS << ",\n    \"cycles_per_s\": " << std::fixed << std::setprecision(1)
         << CyclesPerSec;
    OS << "\n  },\n";
  }

  if (Cache) {
    const CacheStats &CS = Cache->Stats;
    OS << "  \"cache\": {\n"
       << "    \"hits\": " << CS.Hits << ",\n"
       << "    \"misses\": " << CS.Misses << ",\n"
       << "    \"memory_hits\": " << CS.MemoryHits << ",\n"
       << "    \"disk_hits\": " << CS.DiskHits << ",\n"
       << "    \"stores\": " << CS.Stores << ",\n"
       << "    \"evictions\": " << CS.Evictions << ",\n"
       << "    \"bytes_in_memory\": " << CS.BytesInMemory << ",\n"
       << "    \"corrupt\": " << CS.Corrupt << ",\n"
       << "    \"tmp_swept\": " << CS.TmpSwept << ",\n"
       << "    \"quarantined\": " << CS.Quarantined << ",\n"
       << "    \"disk_write_failures\": " << CS.DiskWriteFailures << ",\n"
       << "    \"cache_degraded\": " << (CS.Degraded ? "true" : "false")
       << ",\n"
       << "    \"elab_from_cache\": "
       << (Cache->ElabFromCache ? "true" : "false") << ",\n"
       << "    \"solution_from_cache\": "
       << (Cache->SolutionFromCache ? "true" : "false") << ",\n"
       << "    \"kernel_from_cache\": "
       << (Cache->KernelFromCache ? "true" : "false") << "\n"
       << "  },\n";
  }

  if (Incremental) {
    const IncrementalStats &I = *Incremental;
    OS << "  \"incremental\": {\n"
       << "    \"used\": " << (I.Used ? "true" : "false") << ",\n"
       << "    \"fallback_reason\": \"" << jsonEscape(I.FallbackReason)
       << "\",\n"
       << "    \"dep_cache_hit\": " << (I.DepCacheHit ? "true" : "false")
       << ",\n"
       << "    \"modules_total\": " << I.ModulesTotal << ",\n"
       << "    \"modules_dirty\": " << I.ModulesDirty << ",\n"
       << "    \"modules_reelaborated\": " << I.ModulesReelaborated << ",\n"
       << "    \"instances_total\": " << I.InstancesTotal << ",\n"
       << "    \"instances_spliced\": " << I.InstancesSpliced << ",\n"
       << "    \"groups_total\": " << I.GroupsTotal << ",\n"
       << "    \"groups_resolved\": " << I.GroupsResolved << ",\n"
       << "    \"groups_spliced\": " << I.GroupsSpliced << "\n"
       << "  },\n";
  }

  OS << "  \"reuse\": {\n"
     << "    \"instances\": " << S.TotalInstances << ",\n"
     << "    \"hierarchical_instances\": " << S.HierarchicalInstances << ",\n"
     << "    \"leaf_instances\": " << S.LeafInstances << ",\n"
     << "    \"distinct_modules\": " << S.DistinctModules << ",\n"
     << "    \"instances_from_library\": " << S.InstancesFromLibrary << ",\n"
     << "    \"pct_from_library\": " << std::fixed << std::setprecision(1)
     << S.pctFromLibrary() << ",\n"
     << "    \"explicit_types_without_inference\": "
     << S.ExplicitTypesWithoutInference << ",\n"
     << "    \"explicit_types_with_inference\": "
     << S.ExplicitTypesWithInference << ",\n"
     << "    \"inferred_port_widths\": " << S.InferredPortWidths << ",\n"
     << "    \"connections\": " << S.Connections << "\n"
     << "  }\n";
  OS << "}\n";
}

void liberty::driver::printTable2Row(std::ostream &OS, const ModelStats &S) {
  OS << std::left << std::setw(8) << S.Name << std::right << std::setw(10)
     << S.TotalInstances << std::setw(8) << S.HierarchicalInstances
     << std::setw(7) << S.LeafInstances << std::setw(9) << S.DistinctModules
     << std::setw(10) << std::fixed << std::setprecision(2)
     << S.instancesPerModule() << std::setw(7) << std::setprecision(0)
     << S.pctFromLibrary() << "%" << std::setw(12)
     << S.ExplicitTypesWithoutInference << std::setw(11)
     << S.ExplicitTypesWithInference << std::setw(10) << S.InferredPortWidths
     << std::setw(8) << S.Connections << "\n";
}
