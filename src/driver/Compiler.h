//===- Compiler.h - End-to-end LSS compilation driver -----------*- C++ -*-===//
///
/// \file
/// Owns one full LSS compilation (paper Figure 4): parse → interpreted
/// elaboration → static analysis (type inference) → simulator
/// construction. Also the unit the benches drive to regenerate the paper's
/// tables.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_COMPILER_H
#define LIBERTY_DRIVER_COMPILER_H

#include "infer/InferenceEngine.h"
#include "interp/Interpreter.h"
#include "lss/AST.h"
#include "netlist/Netlist.h"
#include "sim/Simulator.h"
#include "support/Diagnostics.h"
#include "support/PhaseTimer.h"
#include "support/SourceMgr.h"
#include "types/TypeContext.h"

#include <memory>
#include <set>
#include <string>

namespace liberty {
namespace driver {

class Compiler {
public:
  Compiler();
  ~Compiler();

  /// Parses and registers the standard component library (and registers
  /// its behaviors). Call once, before user sources.
  bool addCoreLibrary();

  /// Parses LSS source text. Modules are registered; top-level statements
  /// accumulate as the system description.
  bool addSource(const std::string &Name, const std::string &Text);

  /// Reads and parses an LSS file from disk.
  bool addFile(const std::string &Path);

  /// Runs compile-time elaboration. Returns false on any diagnosed error.
  bool elaborate();
  bool elaborate(const interp::Interpreter::Options &Opts);

  /// Runs structure-based type inference over the elaborated netlist.
  bool inferTypes();
  bool inferTypes(const infer::SolveOptions &Opts);

  /// Builds the executable simulator (elaborate + inferTypes must have
  /// succeeded). The Compiler owns the result.
  sim::Simulator *buildSimulator();
  sim::Simulator *buildSimulator(const sim::Simulator::Options &SimOpts);

  /// Convenience: addCoreLibrary + addSource + elaborate + inferTypes +
  /// buildSimulator. Returns null on error.
  static std::unique_ptr<Compiler> compileForSim(const std::string &Name,
                                                 const std::string &Text);
  static std::unique_ptr<Compiler>
  compileForSim(const std::string &Name, const std::string &Text,
                const sim::Simulator::Options &SimOpts);

  // Accessors.
  SourceMgr &getSourceMgr() { return SM; }
  DiagnosticEngine &getDiags() { return Diags; }
  types::TypeContext &getTypeContext() { return TC; }
  netlist::Netlist *getNetlist() { return NL.get(); }
  sim::Simulator *getSimulator() { return Sim.get(); }
  interp::Interpreter *getInterpreter() { return Interp.get(); }
  const infer::NetlistInferenceStats &getInferenceStats() const {
    return InferStats;
  }
  /// Wall time and counters per compiler phase (parse, elaborate,
  /// constraint-gen, solve, sim-build) — what `lssc --stats-json` emits.
  const PhaseTimer &getPhaseTimer() const { return Timer; }
  PhaseTimer &getPhaseTimer() { return Timer; }
  /// Names of library modules (for reuse statistics).
  const std::set<std::string> &getLibraryModules() const {
    return LibraryModules;
  }
  /// Number of explicit type annotations written in *user* sources
  /// (connection annotations); the "w/ inference" column of Table 2.
  unsigned getNumUserTypeAnnotations() const { return NumUserAnnotations; }

  /// All diagnostics rendered as text (for error reporting in tools).
  std::string diagnosticsText() const;

private:
  bool parseInto(uint32_t BufferId, bool IsLibrary);

  SourceMgr SM;
  DiagnosticEngine Diags;
  types::TypeContext TC;
  lss::ASTContext Ctx;
  std::unique_ptr<interp::Interpreter> Interp;
  std::vector<lss::ModuleDecl *> AllModules;
  std::vector<lss::Stmt *> TopLevel;
  std::unique_ptr<netlist::Netlist> NL;
  std::unique_ptr<sim::Simulator> Sim;
  infer::NetlistInferenceStats InferStats;
  PhaseTimer Timer;
  std::set<std::string> LibraryModules;
  unsigned NumUserAnnotations = 0;
  bool LibraryAdded = false;
};

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_COMPILER_H
