//===- Compiler.h - End-to-end LSS compilation driver -----------*- C++ -*-===//
///
/// \file
/// Owns one full LSS compilation (paper Figure 4): parse → interpreted
/// elaboration → static analysis (type inference) → simulator
/// construction. Also the unit the benches drive to regenerate the paper's
/// tables.
///
/// Every phase entry point takes a CompilerInvocation — the one value that
/// describes the whole compile (sources + per-phase options). Callers
/// build an invocation, then either run phases individually, call
/// compileForSim() for the straight-line pipeline, or hand the invocation
/// to CompileService for cached/batched compilation.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_COMPILER_H
#define LIBERTY_DRIVER_COMPILER_H

#include "driver/CompilerInvocation.h"
#include "infer/InferenceEngine.h"
#include "interp/Interpreter.h"
#include "lss/AST.h"
#include "netlist/Netlist.h"
#include "netlist/Serializer.h"
#include "sim/Simulator.h"
#include "support/Diagnostics.h"
#include "support/PhaseTimer.h"
#include "support/SourceMgr.h"
#include "types/TypeContext.h"

#include <memory>
#include <set>
#include <string>

namespace liberty {
namespace driver {

class Compiler {
public:
  Compiler();
  ~Compiler();

  /// Parses and registers the standard component library (and registers
  /// its behaviors). Call once, before user sources. The parsed library
  /// AST is shared process-wide: after the first compile this does no
  /// parsing at all, it only registers the shared modules.
  bool addCoreLibrary();

  /// Parses LSS source text. Modules are registered; top-level statements
  /// accumulate as the system description.
  bool addSource(const std::string &Name, const std::string &Text);

  /// Reads and parses an LSS file from disk.
  bool addFile(const std::string &Path);

  /// Applies \p Inv's error cap and parses all of its sources (core
  /// library first when requested). Returns false on any parse error.
  bool addSources(const CompilerInvocation &Inv);

  /// Registers \p Inv's sources as SourceMgr buffers without parsing them.
  /// This is the warm-compile path: the netlist comes from the artifact
  /// cache, but replayed diagnostics carry SourceLocs that must keep
  /// pointing at real buffers — registering the same texts in the same
  /// order makes locations (and rendered diagnostics) identical to a cold
  /// compile. Also registers the core behaviors the simulator needs.
  void registerSourcesWithoutParsing(const CompilerInvocation &Inv);

  /// Installs a replay hook for the next elaborate() call. The Compiler
  /// constructs its Interpreter inside elaborate(), so the incremental
  /// driver (driver/Incremental.cpp) parks the hook here and it is
  /// transferred onto the fresh interpreter before it runs.
  void setReplayHook(interp::Interpreter::ReplayHook H) {
    PendingReplayHook = std::move(H);
  }

  /// Runs compile-time elaboration under \p Inv's elaboration options.
  /// Returns false on any diagnosed error.
  bool elaborate(const CompilerInvocation &Inv);
  /// \deprecated Shim for pre-invocation callers; default options.
  bool elaborate() { return elaborate(CompilerInvocation()); }

  /// Runs structure-based type inference under \p Inv's solver options.
  /// \p SpliceHooks, when non-null, enables per-group solution splicing
  /// for incremental recompilation (driver/Incremental.cpp).
  bool inferTypes(const CompilerInvocation &Inv,
                  const infer::NetlistSpliceHooks *SpliceHooks);
  bool inferTypes(const CompilerInvocation &Inv) {
    return inferTypes(Inv, nullptr);
  }
  /// \deprecated Shim for pre-invocation callers; default options.
  bool inferTypes() { return inferTypes(CompilerInvocation()); }

  /// Builds the executable simulator under \p Inv's simulator options
  /// (elaborate + inferTypes must have succeeded). The Compiler owns the
  /// result.
  sim::Simulator *buildSimulator(const CompilerInvocation &Inv);
  /// As above, but when \p KernelArtifact is non-null and the compiled
  /// engine is selected, the simulator first tries to adopt that cached
  /// LSSKRN plan instead of lowering the netlist from scratch (falling
  /// back to a fresh lowering if the artifact does not validate).
  sim::Simulator *buildSimulator(const CompilerInvocation &Inv,
                                 const std::string *KernelArtifact);
  /// \deprecated Shim for pre-invocation callers; default options.
  sim::Simulator *buildSimulator() {
    return buildSimulator(CompilerInvocation());
  }

  /// Adopts a deserialized netlist (the cached "elab" artifact) in place
  /// of running parse + elaboration, and replays its recorded
  /// warnings/notes. Returns false if \p SC holds no netlist.
  bool adoptNetlist(netlist::SerializedCompile SC);

  /// Re-emits recorded diagnostics (warnings/notes from a cached phase)
  /// through this compile's engine.
  void replayDiagnostics(const std::vector<Diagnostic> &Ds);

  /// Installs inference results recovered from the cached "solve"
  /// artifact (CompileService's solution hit path).
  void setInferenceStats(infer::NetlistInferenceStats IS) {
    InferStats = std::move(IS);
  }

  /// Runs the whole pipeline described by \p Inv: sources → elaborate →
  /// infer → simulator. Returns null on error. Always builds the
  /// simulator (ignores Inv.BuildSim — that switch is CompileService's).
  static std::unique_ptr<Compiler> compileForSim(const CompilerInvocation &Inv);
  /// \deprecated Shim: single source, default options.
  static std::unique_ptr<Compiler> compileForSim(const std::string &Name,
                                                 const std::string &Text);

  // Accessors.
  SourceMgr &getSourceMgr() { return SM; }
  DiagnosticEngine &getDiags() { return Diags; }
  types::TypeContext &getTypeContext() { return TC; }
  netlist::Netlist *getNetlist() { return NL.get(); }
  sim::Simulator *getSimulator() { return Sim.get(); }
  interp::Interpreter *getInterpreter() { return Interp.get(); }
  const infer::NetlistInferenceStats &getInferenceStats() const {
    return InferStats;
  }
  /// Wall time and counters per compiler phase (parse, elaborate,
  /// constraint-gen, solve, sim-build) — what `lssc --stats-json` emits.
  const PhaseTimer &getPhaseTimer() const { return Timer; }
  PhaseTimer &getPhaseTimer() { return Timer; }
  /// Names of library modules (for reuse statistics).
  const std::set<std::string> &getLibraryModules() const {
    return LibraryModules;
  }
  /// Number of explicit type annotations written in *user* sources
  /// (connection annotations); the "w/ inference" column of Table 2.
  unsigned getNumUserTypeAnnotations() const { return NumUserAnnotations; }

  /// All diagnostics rendered as text (for error reporting in tools).
  std::string diagnosticsText() const;

private:
  bool parseInto(uint32_t BufferId, bool IsLibrary);

  SourceMgr SM;
  DiagnosticEngine Diags;
  types::TypeContext TC;
  lss::ASTContext Ctx;
  std::unique_ptr<interp::Interpreter> Interp;
  interp::Interpreter::ReplayHook PendingReplayHook;
  std::vector<lss::ModuleDecl *> AllModules;
  std::vector<lss::Stmt *> TopLevel;
  std::unique_ptr<netlist::Netlist> NL;
  std::unique_ptr<sim::Simulator> Sim;
  infer::NetlistInferenceStats InferStats;
  PhaseTimer Timer;
  std::set<std::string> LibraryModules;
  unsigned NumUserAnnotations = 0;
  bool LibraryAdded = false;
};

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_COMPILER_H
