//===- FlagParser.h - Shared CLI flag table for lssc/lssd -------*- C++ -*-===//
///
/// \file
/// Table-driven command-line parsing shared by the LSS tools. Each tool
/// registers its flags (name, metavar, help, destination) once and gets
/// parsing, `--flag VALUE` / `--flag=VALUE` handling, generated usage
/// text, unknown-option diagnosis, and one-line deprecation notes for
/// free.
///
/// Flags that exist in more than one tool (the artifact-cache flags,
/// `--fault-inject`, the `--watch-files` watch mode) are declared once in
/// FlagParser.cpp via the add*Flags() helpers, so their spelling, help
/// text, and validation cannot drift between `lssc` and `lssd`.
///
/// Error convention: parse() prints "<tool>: <problem>" to stderr and
/// returns false; the caller prints its usage text and exits 2. This
/// matches the historical hand-rolled parsers, whose messages are part of
/// the tools' tested contract.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_DRIVER_FLAGPARSER_H
#define LIBERTY_DRIVER_FLAGPARSER_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace liberty {
namespace driver {

class FlagParser {
public:
  explicit FlagParser(std::string ToolName) : Tool(std::move(ToolName)) {}

  /// A switch with no value: `--name`.
  void boolean(const char *Name, bool *Out, const char *Help);

  /// A string-valued flag: `--name VALUE` or `--name=VALUE`.
  void string(const char *Name, const char *Metavar, std::string *Out,
              const char *Help);

  /// An unsigned flag. \p ValuePhrase names the value in error messages
  /// ("thread count" -> "--jobs requires a thread count"); with
  /// \p RequirePositive, zero is rejected as "requires a positive
  /// <phrase>". Both messages are tested tool contract.
  void unsignedNum(const char *Name, const char *Metavar, uint64_t *Out,
                   const char *Help, const char *ValuePhrase,
                   bool RequirePositive = false);
  /// unsignedNum() for `unsigned` destinations (lssc's thread counts).
  void unsignedNum(const char *Name, const char *Metavar, unsigned *Out,
                   const char *Help, const char *ValuePhrase,
                   bool RequirePositive = false);

  /// A flag with bespoke value handling. The handler returns false after
  /// printing its own "<tool>: ..." error. \p Metavar null = no value.
  void custom(const char *Name, const char *Metavar, const char *Help,
              std::function<bool(const std::string &Value)> Handler);

  /// Marks an already-registered flag as a deprecated alias: first use
  /// prints "<tool>: note: --name is deprecated; <note>" to stderr. The
  /// flag keeps working — the note is a pointer, not a wall.
  void deprecate(const char *Name, const char *Note);

  //===------------------------------------------------------------------===//
  // Flags shared between lssc and lssd, declared once.
  //===------------------------------------------------------------------===//

  /// `--cache-dir DIR`, and (when \p NoCache is non-null) `--no-cache`.
  void addCacheFlags(std::string *CacheDir, bool *NoCache);

  /// `--fault-inject SPEC` (see support/FaultInjection.h; both tools also
  /// honor the LSS_FAULT environment variable).
  void addFaultInjectFlag(std::string *Spec);

  /// The incremental watch mode (docs/INCREMENTAL.md): `--watch-files`
  /// plus its `--watch-poll-ms N` / `--watch-max N` knobs.
  void addWatchFilesFlags(bool *WatchFiles, uint64_t *PollMs,
                          uint64_t *MaxRecompiles);

  /// Parses the command line. Non-flag arguments are appended to
  /// \p Positionals (rejected when null). `--help`/`-h` prints the usage
  /// text and sets helpRequested(). False = error already printed.
  bool parse(int Argc, char **Argv, std::vector<std::string> *Positionals);

  bool helpRequested() const { return HelpRequested; }

  /// Generated two-column usage text: "usage: <synopsis>" then one entry
  /// per registered flag in registration order; \p Epilog (when non-null)
  /// is printed verbatim after the table.
  void printUsage(std::ostream &OS, const char *Synopsis,
                  const char *Epilog = nullptr) const;

private:
  struct Flag {
    std::string Name;            ///< Including the leading dashes.
    std::string Metavar;         ///< Empty = boolean switch.
    std::string Help;            ///< '\n'-separated continuation lines.
    std::string ValuePhrase;     ///< For "requires a <phrase>" errors.
    std::string DeprecationNote; ///< Empty = not deprecated.
    bool RequirePositive = false;
    bool NoteShown = false;
    std::function<bool(const std::string &)> Handler;
  };

  Flag *find(const std::string &Name);
  void addUnsigned(const char *Name, const char *Metavar,
                   std::function<void(uint64_t)> Store, const char *Help,
                   const char *ValuePhrase, bool RequirePositive);

  std::string Tool;
  std::vector<Flag> Flags;
  bool HelpRequested = false;
};

} // namespace driver
} // namespace liberty

#endif // LIBERTY_DRIVER_FLAGPARSER_H
