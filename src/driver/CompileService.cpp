//===- CompileService.cpp - Cached, batched LSS compilation ------------------===//

#include "driver/CompileService.h"

#include "corelib/CoreLib.h"
#include "infer/Solution.h"
#include "netlist/Serializer.h"
#include "sim/CompiledKernel.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace liberty;
using namespace liberty::driver;

CompileService::CompileService() : CompileService(Options()) {}

CompileService::CompileService(Options O)
    : Opts(std::move(O)), Cache(Opts.Cache) {
  // Pre-warm the process-wide shared state (behavior registry, parsed
  // core library) on the caller's thread, so batch workers only ever read.
  corelib::registerCoreBehaviors();
}

/// Copies the diagnostics emitted at index \p From onward — the slice a
/// phase appended, excluding anything earlier (e.g. cache-corruption
/// notes, which must not leak into stored artifacts).
static std::vector<Diagnostic> diagsSince(Compiler &C, size_t From) {
  const auto &All = C.getDiags().getDiagnostics();
  return std::vector<Diagnostic>(All.begin() + From, All.end());
}

CompileResult CompileService::compile(const CompilerInvocation &Inv) {
  CompileResult R;
  R.C = std::make_unique<Compiler>();
  Compiler &C = *R.C;

  const std::string ElabKey = CompilerInvocation::keyString(Inv.elabKey());
  const std::string SolveKey = CompilerInvocation::keyString(Inv.solveKey());

  // --- Parse + elaborate, or reload the "elab" artifact. -----------------
  bool Warm = false;
  if (Opts.CacheEnabled) {
    std::string Payload, Note;
    if (Cache.get(ElabKey, "elab", Payload, &Note)) {
      PhaseTimer::Scope Phase(&C.getPhaseTimer(), "cache-load");
      auto SC = netlist::deserializeNetlist(Payload, C.getTypeContext());
      if (SC.NL) {
        C.registerSourcesWithoutParsing(Inv);
        C.adoptNetlist(std::move(SC));
        Warm = true;
        R.ElabFromCache = true;
      } else {
        Note = "ignoring unreadable cache entry for key " + ElabKey +
               " (elab); recompiling";
      }
    }
    if (!Note.empty())
      C.getDiags().note(SourceLoc(), Note);
  }

  size_t DiagBase = 0;
  if (!Warm) {
    size_t DiagStart = DiagBase = C.getDiags().getDiagnostics().size();
    if (!C.addSources(Inv)) {
      R.Failed = CompileResult::Phase::Parse;
      return R;
    }
    if (!C.elaborate(Inv)) {
      R.Failed = CompileResult::Phase::Elaborate;
      return R;
    }
    if (Opts.CacheEnabled && !C.getDiags().hasErrors() && C.getNetlist()) {
      std::string Payload;
      if (netlist::serializeNetlist(*C.getNetlist(), C.getLibraryModules(),
                                    C.getNumUserTypeAnnotations(),
                                    diagsSince(C, DiagStart), Payload))
        Cache.put(ElabKey, "elab", Payload);
    }
  }

  // --- Type inference, or reload the "solve" artifact. -------------------
  bool Solved = false;
  if (Opts.CacheEnabled) {
    std::string Payload, Note;
    if (Cache.get(SolveKey, "solve", Payload, &Note)) {
      PhaseTimer::Scope Phase(&C.getPhaseTimer(), "cache-load");
      infer::NetlistInferenceStats IS;
      std::vector<Diagnostic> Ds;
      if (C.getNetlist() &&
          infer::importSolution(Payload, *C.getNetlist(), C.getTypeContext(),
                                IS, Ds)) {
        C.setInferenceStats(std::move(IS));
        C.replayDiagnostics(Ds);
        Solved = true;
        R.SolutionFromCache = true;
      } else {
        Note = "ignoring unreadable cache entry for key " + SolveKey +
               " (solve); recompiling";
      }
    }
    if (!Note.empty())
      C.getDiags().note(SourceLoc(), Note);
  }

  if (!Solved) {
    size_t DiagStart = C.getDiags().getDiagnostics().size();
    if (!C.inferTypes(Inv)) {
      R.Failed = CompileResult::Phase::Infer;
      return R;
    }
    if (Opts.CacheEnabled && !C.getDiags().hasErrors() && C.getNetlist()) {
      std::string Payload;
      if (infer::exportSolution(*C.getNetlist(), C.getInferenceStats(),
                                diagsSince(C, DiagStart), Payload))
        Cache.put(SolveKey, "solve", Payload);
    }
  }

  // --- Simulator construction. The simulator itself is never cached (it
  // is cheap and owns live runtime state), but the compiled engine's
  // lowering plan is: a third artifact kind, "kernel" (LSSKRN), keyed off
  // elabKey — the plan is a pure function of the elaborated netlist, so
  // any compile that reuses the netlist can reuse the kernel. ------------
  if (Inv.BuildSim) {
    const bool WantKernel = Inv.Sim.Engine == sim::EngineKind::Compiled;
    std::string KernelPayload;
    const std::string *KernelArt = nullptr;
    if (WantKernel && Opts.CacheEnabled &&
        Cache.get(ElabKey, "kernel", KernelPayload))
      KernelArt = &KernelPayload;
    if (!C.buildSimulator(Inv, KernelArt) || C.getDiags().hasErrors()) {
      R.Failed = CompileResult::Phase::SimBuild;
      return R;
    }
    if (WantKernel) {
      const sim::KernelStats *KS = C.getSimulator()->getKernelStats();
      if (KS && KS->FromCache) {
        R.KernelFromCache = true;
      } else {
        if (KernelArt)
          C.getDiags().note(SourceLoc(),
                            "ignoring unreadable cache entry for key " +
                                ElabKey + " (kernel); recompiling");
        std::string Out;
        if (Opts.CacheEnabled && C.getSimulator()->serializeKernel(Out))
          Cache.put(ElabKey, "kernel", Out);
      }
    }
  }

  // A live (non-warm) elaboration carries everything the incremental path
  // needs next time; warm compiles no-op inside (no interpreter ran).
  storeDepGraph(Inv, C, DiagBase);

  R.Success = true;
  return R;
}

std::vector<CompileResult>
CompileService::compileBatch(const std::vector<CompilerInvocation> &Invs,
                             unsigned Jobs) {
  std::vector<CompileResult> Results(Invs.size());
  if (Invs.empty())
    return Results;

  if (Jobs == 0)
    Jobs = ThreadPool::getHardwareParallelism();
  Jobs = std::min<unsigned>(Jobs, unsigned(Invs.size()));

  if (Jobs <= 1) {
    for (size_t I = 0; I != Invs.size(); ++I)
      Results[I] = compile(Invs[I]);
    return Results;
  }

  ThreadPool Pool(Jobs);
  for (size_t I = 0; I != Invs.size(); ++I)
    Pool.async([this, I, &Invs, &Results] { Results[I] = compile(Invs[I]); });
  Pool.wait();
  return Results;
}
