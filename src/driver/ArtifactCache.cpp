//===- ArtifactCache.cpp - Content-addressed compile artifacts ---------------===//

#include "driver/ArtifactCache.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace liberty;
using namespace liberty::driver;

static uint64_t fnv64(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

static std::string hex16(uint64_t V) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

std::string ArtifactCache::diskPath(const std::string &Key,
                                    const std::string &Phase) const {
  return Opts.DiskDir + "/" + Key + "." + Phase + ".lssart";
}

void ArtifactCache::insertMemory(const std::string &MapKey,
                                 const std::string &Payload) {
  auto It = Entries.find(MapKey);
  if (It != Entries.end()) {
    Stats.BytesInMemory -= It->second.Payload.size();
    LruOrder.erase(It->second.LruIt);
    Entries.erase(It);
  }
  LruOrder.push_front(MapKey);
  Entries[MapKey] = Entry{Payload, LruOrder.begin()};
  Stats.BytesInMemory += Payload.size();
  while (Stats.BytesInMemory > Opts.MemoryBudgetBytes && Entries.size() > 1) {
    auto Victim = Entries.find(LruOrder.back());
    Stats.BytesInMemory -= Victim->second.Payload.size();
    Entries.erase(Victim);
    LruOrder.pop_back();
    ++Stats.Evictions;
  }
}

/// Parses and validates an LSSART envelope read from disk. Returns false
/// (with a reason) on any mismatch.
static bool openEnvelope(const std::string &Raw, const std::string &Phase,
                         std::string &Payload, std::string &Reason) {
  size_t NL = Raw.find('\n');
  if (NL == std::string::npos) {
    Reason = "missing envelope header";
    return false;
  }
  std::istringstream Header(Raw.substr(0, NL));
  std::string Magic, HPhase, HashHex;
  unsigned Version = 0;
  uint64_t Size = 0;
  if (!(Header >> Magic >> Version >> HPhase >> Size >> HashHex) ||
      Magic != "LSSART" || Version != 1) {
    Reason = "bad envelope header";
    return false;
  }
  if (HPhase != Phase) {
    Reason = "phase mismatch";
    return false;
  }
  std::string Body = Raw.substr(NL + 1);
  if (Body.size() != Size) {
    Reason = "payload size mismatch";
    return false;
  }
  if (hex16(fnv64(Body)) != HashHex) {
    Reason = "payload hash mismatch";
    return false;
  }
  Payload = std::move(Body);
  return true;
}

bool ArtifactCache::get(const std::string &Key, const std::string &Phase,
                        std::string &Payload, std::string *Note) {
  std::string MapKey = Key + "." + Phase;
  std::lock_guard<std::mutex> Lock(Mu);

  auto It = Entries.find(MapKey);
  if (It != Entries.end()) {
    // Refresh LRU position.
    LruOrder.erase(It->second.LruIt);
    LruOrder.push_front(MapKey);
    It->second.LruIt = LruOrder.begin();
    Payload = It->second.Payload;
    ++Stats.Hits;
    ++Stats.MemoryHits;
    return true;
  }

  if (!Opts.DiskDir.empty()) {
    std::string Path = diskPath(Key, Phase);
    std::ifstream In(Path, std::ios::binary);
    if (In) {
      std::ostringstream SS;
      SS << In.rdbuf();
      std::string Reason;
      if (openEnvelope(SS.str(), Phase, Payload, Reason)) {
        insertMemory(MapKey, Payload);
        ++Stats.Hits;
        ++Stats.DiskHits;
        return true;
      }
      ++Stats.Corrupt;
      if (Note)
        *Note = "ignoring corrupted cache entry '" + Path + "' (" + Reason +
                "); recompiling";
    }
  }
  ++Stats.Misses;
  return false;
}

void ArtifactCache::put(const std::string &Key, const std::string &Phase,
                        const std::string &Payload) {
  std::string MapKey = Key + "." + Phase;
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.Stores;
  insertMemory(MapKey, Payload);

  if (Opts.DiskDir.empty())
    return;
  std::error_code EC;
  std::filesystem::create_directories(Opts.DiskDir, EC);
  if (EC)
    return;
  // Atomic publish: write a unique temp file, then rename over the final
  // name. Readers either see the old complete entry or the new one.
  static std::atomic<unsigned> TmpCounter{0};
  std::string Path = diskPath(Key, Phase);
  std::string Tmp = Path + ".tmp" + std::to_string(TmpCounter++);
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out << "LSSART 1 " << Phase << ' ' << Payload.size() << ' '
        << hex16(fnv64(Payload)) << '\n'
        << Payload;
    if (!Out) {
      Out.close();
      std::filesystem::remove(Tmp, EC);
      return;
    }
  }
  std::filesystem::rename(Tmp, Path, EC);
  if (EC)
    std::filesystem::remove(Tmp, EC);
}

CacheStats ArtifactCache::getStats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}
