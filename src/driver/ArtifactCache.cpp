//===- ArtifactCache.cpp - Content-addressed compile artifacts ---------------===//

#include "driver/ArtifactCache.h"

#include "support/FaultInjection.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include <unistd.h>

using namespace liberty;
using namespace liberty::driver;

static uint64_t fnv64(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

static std::string hex16(uint64_t V) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

/// A temp name unique across processes sharing one cache dir: lssc and
/// lssd both write here, so PID + per-process counter + a random tag keep
/// concurrent writers from renaming each other's partial files.
static std::string uniqueTmpName(const std::string &Path) {
  static std::atomic<unsigned> TmpCounter{0};
  static const uint64_t ProcessTag = [] {
    std::random_device RD;
    return (uint64_t(RD()) << 32) ^ RD();
  }();
  return Path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(TmpCounter++) + "." + hex16(ProcessTag);
}

std::string ArtifactCache::diskPath(const std::string &Key,
                                    const std::string &Phase) const {
  return Opts.DiskDir + "/" + Key + "." + Phase + ".lssart";
}

void ArtifactCache::sweepDiskDir() {
  if (Opts.DiskDir.empty())
    return;
  std::error_code EC;
  std::filesystem::directory_iterator It(Opts.DiskDir, EC), End;
  if (EC)
    return; // Dir doesn't exist yet; nothing to sweep.
  auto Now = std::filesystem::file_time_type::clock::now();
  for (; It != End; It.increment(EC)) {
    if (EC)
      return;
    std::string Name = It->path().filename().string();
    if (Name.find(".lssart.tmp") == std::string::npos)
      continue;
    auto Written = std::filesystem::last_write_time(It->path(), EC);
    if (EC)
      continue;
    auto AgeSec =
        std::chrono::duration_cast<std::chrono::seconds>(Now - Written)
            .count();
    if (AgeSec < 0 || uint64_t(AgeSec) < Opts.TmpSweepAgeSeconds)
      continue; // Could be a live writer in another process.
    std::error_code RmEC;
    if (std::filesystem::remove(It->path(), RmEC) && !RmEC)
      ++Stats.TmpSwept;
  }
}

void ArtifactCache::insertMemory(const std::string &MapKey,
                                 const std::string &Payload) {
  auto It = Entries.find(MapKey);
  if (It != Entries.end()) {
    Stats.BytesInMemory -= It->second.Payload.size();
    LruOrder.erase(It->second.LruIt);
    Entries.erase(It);
  }
  LruOrder.push_front(MapKey);
  Entries[MapKey] = Entry{Payload, LruOrder.begin()};
  Stats.BytesInMemory += Payload.size();
  while (Stats.BytesInMemory > Opts.MemoryBudgetBytes && Entries.size() > 1) {
    auto Victim = Entries.find(LruOrder.back());
    Stats.BytesInMemory -= Victim->second.Payload.size();
    Entries.erase(Victim);
    LruOrder.pop_back();
    ++Stats.Evictions;
  }
}

/// Parses and validates an LSSART envelope read from disk. Returns false
/// (with a reason) on any mismatch.
static bool openEnvelope(const std::string &Raw, const std::string &Phase,
                         std::string &Payload, std::string &Reason) {
  size_t NL = Raw.find('\n');
  if (NL == std::string::npos) {
    Reason = "missing envelope header";
    return false;
  }
  std::istringstream Header(Raw.substr(0, NL));
  std::string Magic, HPhase, HashHex;
  unsigned Version = 0;
  uint64_t Size = 0;
  if (!(Header >> Magic >> Version >> HPhase >> Size >> HashHex) ||
      Magic != "LSSART" || Version != 1) {
    Reason = "bad envelope header";
    return false;
  }
  if (HPhase != Phase) {
    Reason = "phase mismatch";
    return false;
  }
  std::string Body = Raw.substr(NL + 1);
  if (Body.size() != Size) {
    Reason = "payload size mismatch";
    return false;
  }
  if (hex16(fnv64(Body)) != HashHex) {
    Reason = "payload hash mismatch";
    return false;
  }
  Payload = std::move(Body);
  return true;
}

bool ArtifactCache::get(const std::string &Key, const std::string &Phase,
                        std::string &Payload, std::string *Note) {
  std::string MapKey = Key + "." + Phase;
  std::lock_guard<std::mutex> Lock(Mu);

  auto It = Entries.find(MapKey);
  if (It != Entries.end()) {
    // Refresh LRU position.
    LruOrder.erase(It->second.LruIt);
    LruOrder.push_front(MapKey);
    It->second.LruIt = LruOrder.begin();
    Payload = It->second.Payload;
    ++Stats.Hits;
    ++Stats.MemoryHits;
    return true;
  }

  if (!Opts.DiskDir.empty() && !faultShouldFail("cache.disk.open_read")) {
    std::string Path = diskPath(Key, Phase);
    std::ifstream In(Path, std::ios::binary);
    if (In) {
      std::ostringstream SS;
      SS << In.rdbuf();
      std::string Raw = SS.str();
      if (faultShouldFail("cache.disk.read"))
        Raw.resize(Raw.size() / 2); // Simulated short read.
      std::string Reason;
      if (openEnvelope(Raw, Phase, Payload, Reason)) {
        insertMemory(MapKey, Payload);
        ++Stats.Hits;
        ++Stats.DiskHits;
        return true;
      }
      ++Stats.Corrupt;
      // Quarantine the failing entry: move it aside so every later run
      // doesn't re-read and re-reject the same bytes. The recompile will
      // publish a fresh entry under the original name.
      In.close();
      std::error_code QEC;
      std::filesystem::rename(Path, Path + ".quarantined", QEC);
      if (!QEC)
        ++Stats.Quarantined;
      if (Note)
        *Note = "ignoring corrupted cache entry '" + Path + "' (" + Reason +
                "); recompiling";
    }
  }
  ++Stats.Misses;
  return false;
}

bool ArtifactCache::writeDiskEntry(const std::string &Path,
                                   const std::string &Phase,
                                   const std::string &Payload) {
  std::error_code EC;
  std::filesystem::create_directories(Opts.DiskDir, EC);
  if (EC)
    return false;
  std::string Envelope = "LSSART 1 " + Phase + ' ' +
                         std::to_string(Payload.size()) + ' ' +
                         hex16(fnv64(Payload)) + '\n' + Payload;
  // Atomic publish: write a unique temp file, then rename over the final
  // name. Readers either see the old complete entry or the new one.
  std::string Tmp = uniqueTmpName(Path);
  if (faultShouldFail("cache.disk.open_write"))
    return false;
  std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  if (faultShouldFail("cache.disk.write")) {
    // Simulated crash mid-write: a truncated temp file stays behind for
    // the next startup sweep to collect.
    Out << Envelope.substr(0, Envelope.size() / 2);
    return false;
  }
  Out << Envelope;
  Out.close();
  if (!Out) {
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  if (faultShouldFail("cache.disk.rename")) {
    // Simulated torn publish: truncated bytes land at the *final* name.
    // The envelope checksum is what makes this recoverable — the next
    // reader rejects it, quarantines it, and recompiles.
    std::ofstream Torn(Path, std::ios::binary | std::ios::trunc);
    Torn << Envelope.substr(0, Envelope.size() / 2);
    Torn.close();
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  std::filesystem::rename(Tmp, Path, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

void ArtifactCache::put(const std::string &Key, const std::string &Phase,
                        const std::string &Payload) {
  std::string MapKey = Key + "." + Phase;
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.Stores;
  insertMemory(MapKey, Payload);

  if (Opts.DiskDir.empty() || DegradedMode)
    return;
  if (writeDiskEntry(diskPath(Key, Phase), Phase, Payload)) {
    ConsecutiveDiskFailures = 0;
    return;
  }
  ++Stats.DiskWriteFailures;
  if (++ConsecutiveDiskFailures >= Opts.DegradeAfterFailures) {
    DegradedMode = true;
    Stats.Degraded = true;
  }
}

CacheStats ArtifactCache::getStats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

bool ArtifactCache::isDegraded() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return DegradedMode;
}
