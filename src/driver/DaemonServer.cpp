//===- DaemonServer.cpp - The lssd compile daemon -----------------------------===//

#include "driver/DaemonServer.h"

#include "driver/Stats.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <future>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace liberty;
using namespace liberty::driver;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
}

const char *phaseWireName(CompileResult::Phase P) {
  switch (P) {
  case CompileResult::Phase::Parse:
    return "parse";
  case CompileResult::Phase::Elaborate:
    return "elaborate";
  case CompileResult::Phase::Infer:
    return "infer";
  case CompileResult::Phase::SimBuild:
    return "simbuild";
  case CompileResult::Phase::None:
    break;
  }
  return "none";
}

int phaseWireExitCode(CompileResult::Phase P) {
  // Mirrors lssc's ExitCode mapping so a daemon client can exit with the
  // same documented code an in-process compile would have produced.
  switch (P) {
  case CompileResult::Phase::Parse:
  case CompileResult::Phase::Elaborate:
    return 3;
  case CompileResult::Phase::Infer:
    return 4;
  case CompileResult::Phase::SimBuild:
    return 5;
  case CompileResult::Phase::None:
    break;
  }
  return 0;
}

} // namespace

DaemonServer::DaemonServer(Options O) : Opts(std::move(O)), Service(Opts.Service) {}

DaemonServer::~DaemonServer() {
  requestShutdown();
  wait();
}

bool DaemonServer::start(std::string *Err) {
  ListenFd = netListen(Opts.Address, &BoundPort, Err);
  if (ListenFd < 0)
    return false;
  Pool = std::make_unique<ThreadPool>(Opts.Workers);
  if (Opts.Verbose)
    std::fprintf(stderr,
                 "lssd: listening on %s (%u workers, queue bound %u)\n",
                 Opts.Address.c_str(), Pool->getThreadCount(),
                 Opts.QueueBound);
  AcceptThread = std::jthread([this] { acceptLoop(); });
  return true;
}

void DaemonServer::requestShutdown() { Draining.store(true); }

void DaemonServer::wait() {
  if (AcceptThread.joinable())
    AcceptThread.join();
  // The accept loop has exited, so ConnThreads can no longer grow.
  std::vector<std::jthread> Conns;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Conns.swap(ConnThreads);
  }
  for (std::jthread &T : Conns)
    if (T.joinable())
      T.join();
  // Every admitted compile was awaited by some connection thread, so the
  // pool is quiescent; drop it so wait() leaves no worker threads behind.
  Pool.reset();
}

void DaemonServer::acceptLoop() {
  while (!Draining.load()) {
    pollfd P{ListenFd, POLLIN, 0};
    int N = ::poll(&P, 1, 200);
    if (N < 0 && errno != EINTR)
      break;
    if (N <= 0 || !(P.revents & POLLIN)) {
      // Reap finished connection threads so a long-lived daemon does not
      // accumulate one dead jthread per past client.
      std::lock_guard<std::mutex> Lock(ConnMutex);
      std::erase_if(ConnThreads,
                    [](std::jthread &T) { return !T.joinable(); });
      continue;
    }
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    if (faultShouldFail("daemon.accept")) {
      // Injected accept failure: the client sees a closed connection and
      // retries; the accept loop itself must keep serving.
      ::close(Fd);
      continue;
    }
    std::lock_guard<std::mutex> Lock(ConnMutex);
    if (Draining.load()) {
      ::close(Fd);
      break;
    }
    ConnThreads.emplace_back([this, Fd] {
      handleConnection(Fd);
      ::close(Fd);
    });
  }
  ::close(ListenFd);
  ListenFd = -1;
}

Json DaemonServer::makeError(const char *Code, std::string Message) {
  Json E = Json::object();
  E.set("type", msg::Error).set("code", Code).set("message", std::move(Message));
  return E;
}

void DaemonServer::handleConnection(int Fd) {
  bool HandshakeDone = false;
  std::string Payload;
  for (;;) {
    // Poll so draining shutdown can close idle connections: a connection
    // never has an unanswered request outstanding at this point (dispatch
    // below is synchronous), so breaking here abandons nothing.
    pollfd P{Fd, POLLIN, 0};
    int N = ::poll(&P, 1, 200);
    if (N < 0 && errno != EINTR)
      return;
    if (N <= 0) {
      if (Draining.load())
        return;
      continue;
    }

    FrameStatus FS =
        faultShouldFail("daemon.recv")
            ? FrameStatus::Error
            : readFrameDeadline(Fd, Payload, Opts.MaxFrameBytes,
                                Opts.ReadDeadlineMs);
    if (FS == FrameStatus::Timeout) {
      // Slow loris: a frame started but stalled. Drop only this
      // connection thread — workers and other connections are untouched.
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.ReadTimeouts;
      return;
    }
    if (FS == FrameStatus::Eof || FS == FrameStatus::Error)
      return;
    if (FS == FrameStatus::TooLarge) {
      // The oversized payload was never read, so the stream is desynced:
      // answer and close.
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.ProtocolErrors;
        ++Stats.RequestsServed;
      }
      writeMessage(Fd, makeError(errc::BadFrame,
                                 "frame exceeds the server's frame cap"));
      return;
    }

    Json Msg, Reply;
    std::string ParseErr;
    bool KeepOpen = true;
    if (!Json::parse(Payload, Msg, &ParseErr)) {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.ProtocolErrors;
      Reply = makeError(errc::BadMessage, "invalid JSON: " + ParseErr);
    } else {
      KeepOpen = handleMessage(Msg, HandshakeDone, Reply);
    }
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.RequestsServed;
    }
    if (faultShouldFail("daemon.send") || !writeMessage(Fd, Reply))
      return;
    if (!KeepOpen)
      return;
  }
}

bool DaemonServer::handleMessage(const Json &Msg, bool &HandshakeDone,
                                 Json &Reply) {
  auto protocolError = [&](const char *Code, std::string Why) {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.ProtocolErrors;
    Reply = makeError(Code, std::move(Why));
  };

  if (!Msg.isObject() || !Msg.get("type")) {
    protocolError(errc::BadMessage, "message is not an object with a 'type'");
    return true;
  }
  const std::string Type = Msg.getString("type");

  if (Type == msg::Hello) {
    uint64_t V = Msg.getU64("version");
    if (V != DaemonProtocolVersion) {
      protocolError(errc::VersionMismatch,
                    "client speaks protocol version " + std::to_string(V) +
                        ", server speaks " +
                        std::to_string(DaemonProtocolVersion));
      return false; // Incompatible peer: close after the reply.
    }
    HandshakeDone = true;
    // Minor versions are additive and negotiated one-sidedly: we answer
    // with ours, the client uses min(client, server) to decide which
    // requests to send. A client's absent "minor" (= 0) needs no special
    // handling here — old clients simply never send the new requests.
    Reply = Json::object();
    Reply.set("type", msg::HelloOk)
        .set("version", uint64_t(DaemonProtocolVersion))
        .set("minor", uint64_t(DaemonProtocolMinorVersion))
        .set("server", "lssd")
        .set("pid", uint64_t(::getpid()));
    return true;
  }

  if (!HandshakeDone) {
    protocolError(errc::BadMessage,
                  "handshake required: send 'hello' before '" + Type + "'");
    return true;
  }

  if (Type == msg::Compile || Type == msg::Recompile) {
    if (Draining.load()) {
      Reply = makeError(errc::ShuttingDown, "server is draining");
      return true;
    }
    Reply = runCompile(Msg, /*Incremental=*/Type == msg::Recompile);
    return true;
  }
  if (Type == msg::Batch) {
    if (Draining.load()) {
      Reply = makeError(errc::ShuttingDown, "server is draining");
      return true;
    }
    Reply = runBatch(Msg);
    return true;
  }
  if (Type == msg::Stats) {
    Reply = buildStats();
    return true;
  }
  if (Type == msg::Shutdown) {
    if (Opts.Verbose)
      std::fprintf(stderr, "lssd: shutdown requested; draining\n");
    requestShutdown();
    Reply = Json::object();
    Reply.set("type", msg::ShutdownOk);
    return false;
  }

  protocolError(errc::BadMessage, "unknown message type '" + Type + "'");
  return true;
}

namespace {

/// One admitted compile: everything a pool worker needs, plus the promise
/// the connection thread blocks on.
struct PendingCompile {
  CompilerInvocation Inv;
  uint64_t DeadlineMs = 0; ///< Service budget; 0 = none.
  bool Incremental = false; ///< `recompile`: route via compileIncremental.
  Clock::time_point AdmitTime;
  std::promise<Json> Done;
};

/// Builds a CompilerInvocation from a compile-request body. Returns false
/// (with \p Why) on a malformed request.
bool invocationFromRequest(const Json &Req, CompilerInvocation &Inv,
                           uint64_t &DeadlineMs, std::string &Why) {
  const Json *Sources = Req.get("sources");
  if (!Sources || !Sources->isArray() || Sources->items().empty()) {
    Why = "compile request needs a non-empty 'sources' array";
    return false;
  }
  for (const Json &S : Sources->items()) {
    const Json *Text = S.get("text");
    if (!Text || !Text->isString()) {
      Why = "every source needs a string 'text'";
      return false;
    }
    std::string Name = S.getString("name", "<daemon>");
    Inv.addSource(std::move(Name), Text->asString());
  }
  const Json *O = Req.get("options");
  Json None = Json::object();
  if (!O)
    O = &None;
  Inv.UseCoreLibrary = O->getBool("use_corelib", true);
  Inv.MaxErrors = unsigned(O->getU64("max_errors", 50));
  Inv.Solve = infer::SolveOptions();
  Inv.Solve.ReorderSimpleFirst = O->getBool("reorder", true);
  Inv.Solve.ForcedDisjunctElimination = O->getBool("forced_elimination", true);
  Inv.Solve.Partition = O->getBool("partition", true);
  // Compile concurrency comes from the daemon's worker pool; each solve
  // defaults to one thread so N clients cannot oversubscribe NxM threads.
  Inv.Solve.NumThreads = unsigned(O->getU64("jobs", 1));
  Inv.Solve.DeadlineMs = O->getU64("infer_deadline_ms", 0);
  Inv.BuildSim = false; // A simulator cannot cross the socket.
  DeadlineMs = O->getU64("deadline_ms", 0);
  return true;
}

} // namespace

bool DaemonServer::submitCompile(const Json &Req, std::future<Json> &Fut,
                                 Json &Immediate, bool Incremental) {
  auto P = std::make_shared<PendingCompile>();
  P->Incremental = Incremental;
  std::string Why;
  if (!invocationFromRequest(Req, P->Inv, P->DeadlineMs, Why)) {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.ProtocolErrors;
    Immediate = makeError(errc::BadMessage, Why);
    return false;
  }

  // --- Admission control. ------------------------------------------------
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    bool Full = Opts.QueueBound == 0
                    ? (QueueDepth != 0 ||
                       ActiveCompiles >= Pool->getThreadCount())
                    : QueueDepth >= Opts.QueueBound;
    if (Full) {
      std::lock_guard<std::mutex> SLock(StatsMutex);
      ++Stats.RejectedQueueFull;
      Immediate = makeError(errc::QueueFull,
                            "admission queue is full; retry after backoff");
      Immediate.set("retry_after_ms", Opts.RetryAfterMs);
      Immediate.set("id", Req.getNumber("id"));
      return false;
    }
    ++QueueDepth;
  }
  P->AdmitTime = Clock::now();

  Fut = P->Done.get_future();
  Pool->async([this, P] {
    double QueueMs = msSince(P->AdmitTime);
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      --QueueDepth;
      ++ActiveCompiles;
    }

    // Wire the remaining service budget into the PR 4 deadline machinery:
    // an already-expired deadline becomes a 1ms inference deadline, so the
    // solver degrades structurally (unsolved groups reported) instead of
    // this layer inventing its own timeout result.
    CompilerInvocation Inv = P->Inv; // Worker-local: deadline is mutated.
    if (P->DeadlineMs != 0) {
      uint64_t Remaining = P->DeadlineMs > uint64_t(QueueMs)
                               ? P->DeadlineMs - uint64_t(QueueMs)
                               : 1;
      if (Inv.Solve.DeadlineMs == 0 || Remaining < Inv.Solve.DeadlineMs)
        Inv.Solve.DeadlineMs = Remaining;
    }

    CompileResult R =
        P->Incremental ? Service.compileIncremental(Inv) : Service.compile(Inv);
    double ServiceMs = msSince(P->AdmitTime);

    const infer::SolveStats &Solve = R.C->getInferenceStats().Solve;
    bool Degraded = R.Failed == CompileResult::Phase::Infer &&
                    (Solve.HitLimit || Solve.HitDeadline);

    Json Res = Json::object();
    Res.set("type", msg::Result)
        .set("success", R.Success)
        .set("failed_phase", phaseWireName(R.Failed))
        .set("exit_code", phaseWireExitCode(R.Failed))
        .set("elab_from_cache", R.ElabFromCache)
        .set("solution_from_cache", R.SolutionFromCache)
        .set("degraded", Degraded)
        .set("groups_unsolved", uint64_t(Solve.NumUnsolved))
        .set("diagnostics", R.C->diagnosticsText())
        .set("queue_ms", QueueMs)
        .set("service_ms", ServiceMs);
    if (R.Success && R.C->getNetlist()) {
      ModelStats MS = computeModelStats(*R.C->getNetlist(),
                                        R.C->getLibraryModules(),
                                        R.C->getNumUserTypeAnnotations());
      Res.set("instances", uint64_t(MS.TotalInstances));
      Res.set("connections", uint64_t(MS.Connections));
    }
    if (P->Incremental) {
      const IncrementalStats &I = R.Incremental;
      Json Inc = Json::object();
      Inc.set("used", I.Used)
          .set("fallback_reason", I.FallbackReason)
          .set("dep_cache_hit", I.DepCacheHit)
          .set("modules_reelaborated", uint64_t(I.ModulesReelaborated))
          .set("groups_resolved", uint64_t(I.GroupsResolved))
          .set("groups_spliced", uint64_t(I.GroupsSpliced));
      Res.set("incremental", std::move(Inc));
    }

    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      --ActiveCompiles;
    }
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      (P->Incremental ? Stats.RecompileRequests : Stats.CompileRequests) += 1;
      if (Degraded && Solve.HitDeadline)
        ++Stats.DeadlineDegraded;
      (R.ElabFromCache ? Stats.ElabCacheHits : Stats.ElabCacheMisses) += 1;
      (R.SolutionFromCache ? Stats.SolveCacheHits : Stats.SolveCacheMisses) +=
          1;
    }
    recordLatency(ServiceMs);
    if (Opts.Verbose)
      std::fprintf(stderr, "lssd: compile %s in %.2fms (queue %.2fms)%s\n",
                   R.Success ? "ok" : "failed", ServiceMs, QueueMs,
                   R.ElabFromCache && R.SolutionFromCache ? " [cached]" : "");
    P->Done.set_value(std::move(Res));
  });
  return true;
}

Json DaemonServer::runCompile(const Json &Req, bool Incremental) {
  std::future<Json> Fut;
  Json Immediate;
  if (!submitCompile(Req, Fut, Immediate, Incremental))
    return Immediate;
  Json Res = Fut.get();
  Res.set("id", Req.getNumber("id"));
  return Res;
}

Json DaemonServer::runBatch(const Json &Req) {
  const Json *Requests = Req.get("requests");
  if (!Requests || !Requests->isArray()) {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.ProtocolErrors;
    return makeError(errc::BadMessage,
                     "batch request needs a 'requests' array");
  }
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.BatchRequests;
  }

  // Each element goes through the same admission gate as a standalone
  // compile — a batch cannot smuggle unbounded work past the queue bound.
  // Results land in request order; rejected elements carry the same
  // queue_full shape a standalone rejection would.
  const std::vector<Json> &Elements = Requests->items();
  std::vector<Json> Slots(Elements.size());
  std::vector<std::pair<size_t, std::future<Json>>> Futures;
  for (size_t I = 0; I != Elements.size(); ++I) {
    std::future<Json> Fut;
    if (submitCompile(Elements[I], Fut, Slots[I]))
      Futures.emplace_back(I, std::move(Fut));
  }
  for (auto &[Slot, Fut] : Futures)
    Slots[Slot] = Fut.get();

  Json Results = Json::array();
  for (Json &S : Slots)
    Results.push(std::move(S));
  Json Reply = Json::object();
  Reply.set("type", msg::BatchResult)
      .set("id", Req.getNumber("id"))
      .set("results", std::move(Results));
  return Reply;
}

DaemonStats DaemonServer::getStats() const {
  DaemonStats S;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    S = Stats;
    std::vector<double> L = Latencies;
    S.LatencySamples = L.size();
    if (!L.empty()) {
      auto Nth = [&L](double Q) {
        size_t I = std::min(L.size() - 1, size_t(Q * double(L.size())));
        std::nth_element(L.begin(), L.begin() + I, L.end());
        return L[I];
      };
      S.P50Ms = Nth(0.50);
      S.P95Ms = Nth(0.95);
      S.MaxMs = *std::max_element(L.begin(), L.end());
    }
  }
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    S.QueueDepth = QueueDepth;
    S.ActiveCompiles = ActiveCompiles;
  }
  S.Cache = const_cast<DaemonServer *>(this)->Service.getCache().getStats();
  S.Incremental = Service.getIncrementalCounters();
  return S;
}

Json DaemonServer::buildStats() const {
  DaemonStats S = getStats();
  Json Cache = Json::object();
  Cache.set("hits", S.Cache.Hits)
      .set("misses", S.Cache.Misses)
      .set("memory_hits", S.Cache.MemoryHits)
      .set("disk_hits", S.Cache.DiskHits)
      .set("stores", S.Cache.Stores)
      .set("evictions", S.Cache.Evictions)
      .set("bytes_in_memory", S.Cache.BytesInMemory)
      .set("corrupt", S.Cache.Corrupt)
      .set("tmp_swept", S.Cache.TmpSwept)
      .set("quarantined", S.Cache.Quarantined)
      .set("disk_write_failures", S.Cache.DiskWriteFailures)
      .set("cache_degraded", S.Cache.Degraded);
  Json Latency = Json::object();
  Latency.set("samples", S.LatencySamples)
      .set("p50_ms", S.P50Ms)
      .set("p95_ms", S.P95Ms)
      .set("max_ms", S.MaxMs);
  Json Incremental = Json::object();
  Incremental.set("requests", S.Incremental.Requests)
      .set("used", S.Incremental.Used)
      .set("fallbacks", S.Incremental.Fallbacks)
      .set("dep_cache_hits", S.Incremental.DepCacheHits)
      .set("modules_reelaborated", S.Incremental.ModulesReelaborated)
      .set("groups_resolved", S.Incremental.GroupsResolved)
      .set("groups_spliced", S.Incremental.GroupsSpliced);
  Json Reply = Json::object();
  Reply.set("type", msg::StatsResult)
      .set("version", uint64_t(DaemonProtocolVersion))
      .set("minor", uint64_t(DaemonProtocolMinorVersion))
      .set("schema_version", uint64_t(StatsSchemaVersion))
      .set("requests_served", S.RequestsServed)
      .set("compile_requests", S.CompileRequests)
      .set("recompile_requests", S.RecompileRequests)
      .set("batch_requests", S.BatchRequests)
      .set("rejected_queue_full", S.RejectedQueueFull)
      .set("deadline_degraded", S.DeadlineDegraded)
      .set("protocol_errors", S.ProtocolErrors)
      .set("read_timeouts", S.ReadTimeouts)
      .set("queue_depth", S.QueueDepth)
      .set("queue_bound", uint64_t(Opts.QueueBound))
      .set("active_compiles", S.ActiveCompiles)
      .set("workers", uint64_t(Pool ? Pool->getThreadCount() : 0))
      .set("draining", Draining.load())
      .set("elab_cache_hits", S.ElabCacheHits)
      .set("elab_cache_misses", S.ElabCacheMisses)
      .set("solve_cache_hits", S.SolveCacheHits)
      .set("solve_cache_misses", S.SolveCacheMisses)
      .set("cache", std::move(Cache))
      .set("incremental", std::move(Incremental))
      .set("latency_ms", std::move(Latency));
  return Reply;
}

void DaemonServer::recordLatency(double Ms) {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  if (Latencies.size() < LatencyCap) {
    Latencies.push_back(Ms);
  } else {
    Latencies[LatencyNext] = Ms;
    LatencyNext = (LatencyNext + 1) % LatencyCap;
  }
}
