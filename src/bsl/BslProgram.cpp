//===- BslProgram.cpp - Userpoint BSL programs -------------------------------===//

#include "bsl/BslProgram.h"

#include "interp/ExprEvaluator.h"
#include "lss/Parser.h"
#include "support/Casting.h"

#include <cassert>

using namespace liberty;
using namespace liberty::bsl;
using namespace liberty::lss;
using interp::Value;

std::unique_ptr<BslProgram> BslProgram::compile(const std::string &Code,
                                                const std::string &BufferName,
                                                SourceMgr &SM,
                                                DiagnosticEngine &Diags) {
  unsigned ErrorsBefore = Diags.getNumErrors();
  uint32_t BufferId = SM.addBuffer(BufferName, Code);
  std::unique_ptr<BslProgram> P(new BslProgram());
  Parser Parse(BufferId, P->Ctx, Diags);
  P->Body = Parse.parseBslBody();
  if (Diags.getNumErrors() != ErrorsBefore)
    return nullptr;
  return P;
}

namespace {

enum class Flow { Normal, Break, Continue, Returned };

/// One BSL execution: local scopes layered over the BslEnv.
class BslExec {
public:
  BslExec(BslEnv &Env, DiagnosticEngine &Diags) : Env(Env), Diags(Diags) {
    Scopes.emplace_back();
  }

  Value execBody(const std::vector<Stmt *> &Body) {
    for (const Stmt *S : Body) {
      Flow F = exec(S);
      if (Steps > MaxSteps) {
        Diags.error(S->getLoc(), "userpoint exceeded its step budget");
        break;
      }
      if (F == Flow::Returned)
        break;
    }
    return ReturnValue;
  }

private:
  Flow exec(const Stmt *S);
  Value eval(const Expr *E);
  Value *lookup(const std::string &Name);
  Value *resolveLValue(const Expr *E);

  BslEnv &Env;
  DiagnosticEngine &Diags;
  std::vector<std::map<std::string, Value>> Scopes;
  Value ReturnValue;
  uint64_t Steps = 0;
  static constexpr uint64_t MaxSteps = 10000000;
};

} // namespace

Value *BslExec::lookup(const std::string &Name) {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  auto ArgIt = Env.Args.find(Name);
  if (ArgIt != Env.Args.end())
    return &ArgIt->second;
  if (Env.RuntimeVars)
    if (Value *RV = Env.RuntimeVars->lookup(Name))
      return RV;
  if (Env.Params) {
    auto PIt = Env.Params->find(Name);
    if (PIt != Env.Params->end())
      return const_cast<Value *>(&PIt->second);
  }
  return nullptr;
}

Value *BslExec::resolveLValue(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::Ident:
    return lookup(cast<IdentExpr>(E)->getName());
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    Value *Base = resolveLValue(I->getBase());
    if (!Base || !Base->isArray())
      return nullptr;
    Value Idx = eval(I->getIndex());
    if (!Idx.isInt())
      return nullptr;
    auto &Elems = Base->getElemsMutable();
    int64_t N = Idx.getInt();
    if (N < 0 || N >= static_cast<int64_t>(Elems.size())) {
      Diags.error(E->getLoc(), "array index out of bounds in userpoint");
      return nullptr;
    }
    return &Elems[N];
  }
  case Expr::Kind::Member: {
    const auto *M = cast<MemberExpr>(E);
    Value *Base = resolveLValue(M->getBase());
    if (!Base || !Base->isStruct())
      return nullptr;
    return Base->getFieldMutable(M->getMember());
  }
  default:
    return nullptr;
  }
}

Flow BslExec::exec(const Stmt *S) {
  ++Steps;
  if (Steps > MaxSteps)
    return Flow::Returned;
  switch (S->getKind()) {
  case Stmt::Kind::VarDecl: {
    const auto *V = cast<VarDeclStmt>(S);
    Value Init = V->getInit() ? eval(V->getInit()) : Value::makeInt(0);
    Scopes.back()[V->getName()] = std::move(Init);
    return Flow::Normal;
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    Value RHS = eval(A->getRHS());
    if (const auto *Id = dyn_cast<IdentExpr>(A->getLHS())) {
      if (Value *Slot = lookup(Id->getName())) {
        *Slot = std::move(RHS);
        return Flow::Normal;
      }
      Scopes.back()[Id->getName()] = std::move(RHS);
      return Flow::Normal;
    }
    if (Value *Slot = resolveLValue(A->getLHS())) {
      *Slot = std::move(RHS);
      return Flow::Normal;
    }
    Diags.error(S->getLoc(), "invalid assignment target in userpoint");
    return Flow::Normal;
  }
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    Value CondV = eval(I->getCond());
    std::optional<bool> Cond =
        interp::asCondition(CondV, I->getCond()->getLoc(), Diags);
    if (!Cond)
      return Flow::Normal;
    if (*Cond)
      return exec(I->getThen());
    if (I->getElse())
      return exec(I->getElse());
    return Flow::Normal;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    Scopes.emplace_back();
    if (F->getInit())
      exec(F->getInit());
    Flow Result = Flow::Normal;
    while (Steps <= MaxSteps) {
      ++Steps;
      if (F->getCond()) {
        Value CondV = eval(F->getCond());
        std::optional<bool> Cond =
            interp::asCondition(CondV, F->getCond()->getLoc(), Diags);
        if (!Cond || !*Cond)
          break;
      }
      Flow BodyFlow = exec(F->getBody());
      if (BodyFlow == Flow::Returned) {
        Result = Flow::Returned;
        break;
      }
      if (BodyFlow == Flow::Break)
        break;
      if (F->getStep())
        exec(F->getStep());
    }
    Scopes.pop_back();
    return Result;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    while (Steps <= MaxSteps) {
      ++Steps;
      Value CondV = eval(W->getCond());
      std::optional<bool> Cond =
          interp::asCondition(CondV, W->getCond()->getLoc(), Diags);
      if (!Cond || !*Cond)
        break;
      Flow BodyFlow = exec(W->getBody());
      if (BodyFlow == Flow::Returned)
        return Flow::Returned;
      if (BodyFlow == Flow::Break)
        break;
    }
    return Flow::Normal;
  }
  case Stmt::Kind::Block: {
    Scopes.emplace_back();
    Flow Result = Flow::Normal;
    for (const Stmt *Sub : cast<BlockStmt>(S)->getBody()) {
      Result = exec(Sub);
      if (Result != Flow::Normal)
        break;
    }
    Scopes.pop_back();
    return Result;
  }
  case Stmt::Kind::ExprStmt:
    eval(cast<ExprStmt>(S)->getExpr());
    return Flow::Normal;
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    ReturnValue = R->getValue() ? eval(R->getValue()) : Value();
    return Flow::Returned;
  }
  case Stmt::Kind::Break:
    return Flow::Break;
  case Stmt::Kind::Continue:
    return Flow::Continue;
  default:
    Diags.error(S->getLoc(),
                "statement not permitted in BSL userpoint code");
    return Flow::Normal;
  }
}

Value BslExec::eval(const Expr *E) {
  ++Steps;
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    return Value::makeInt(cast<IntLitExpr>(E)->getValue());
  case Expr::Kind::FloatLit:
    return Value::makeFloat(cast<FloatLitExpr>(E)->getValue());
  case Expr::Kind::StringLit:
    return Value::makeString(cast<StringLitExpr>(E)->getValue());
  case Expr::Kind::BoolLit:
    return Value::makeBool(cast<BoolLitExpr>(E)->getValue());
  case Expr::Kind::Ident: {
    if (Value *V = lookup(cast<IdentExpr>(E)->getName()))
      return *V;
    Diags.error(E->getLoc(), "use of undefined name '" +
                                 cast<IdentExpr>(E)->getName() +
                                 "' in userpoint");
    return Value();
  }
  case Expr::Kind::Member: {
    const auto *M = cast<MemberExpr>(E);
    Value Base = eval(M->getBase());
    if (Base.isStruct()) {
      if (const Value *F = Base.getField(M->getMember()))
        return *F;
      Diags.error(E->getLoc(), "no field named '" + M->getMember() + "'");
      return Value();
    }
    if (!Base.isUnset())
      Diags.error(E->getLoc(), "cannot access member of " + Base.str());
    return Value();
  }
  case Expr::Kind::Index: {
    const auto *I = cast<IndexExpr>(E);
    Value Base = eval(I->getBase());
    Value Idx = eval(I->getIndex());
    if (!Base.isArray() || !Idx.isInt()) {
      if (!Base.isUnset() && !Idx.isUnset())
        Diags.error(E->getLoc(), "invalid indexing in userpoint");
      return Value();
    }
    const auto &Elems = Base.getElems();
    int64_t N = Idx.getInt();
    if (N < 0 || N >= static_cast<int64_t>(Elems.size())) {
      Diags.error(E->getLoc(), "array index out of bounds in userpoint");
      return Value();
    }
    return Elems[N];
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::vector<Value> Args;
    Args.reserve(C->getArgs().size());
    for (const Expr *Arg : C->getArgs())
      Args.push_back(eval(Arg));
    if (std::optional<Value> R =
            interp::applyCommonBuiltin(C->getCallee(), Args, E->getLoc(),
                                       Diags))
      return *R;
    Diags.error(E->getLoc(),
                "unknown function '" + C->getCallee() + "' in userpoint");
    return Value();
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Value A = eval(U->getOperand());
    if (A.isUnset())
      return Value();
    return interp::applyUnary(U->getOp(), A, E->getLoc(), Diags);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Value L = eval(B->getLHS());
    if (L.isUnset())
      return Value();
    if (B->getOp() == BinaryOp::And && L.isBool() && !L.getBool())
      return Value::makeBool(false);
    if (B->getOp() == BinaryOp::Or && L.isBool() && L.getBool())
      return Value::makeBool(true);
    Value R = eval(B->getRHS());
    if (R.isUnset())
      return Value();
    return interp::applyBinary(B->getOp(), L, R, E->getLoc(), Diags);
  }
  default:
    Diags.error(E->getLoc(), "expression not permitted in BSL userpoint");
    return Value();
  }
}

Value BslProgram::run(BslEnv &Env, DiagnosticEngine &Diags) const {
  BslExec Exec(Env, Diags);
  return Exec.execBody(Body);
}
