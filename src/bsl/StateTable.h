//===- StateTable.h - Dense per-instance runtime state ----------*- C++ -*-===//
///
/// \file
/// The per-instance runtime-state store behind BehaviorContext::state()
/// and BSL runtime variables (paper Section 4.3). Historically a
/// std::map<std::string, Value>; lowered to a build-time-resolved slot
/// table so the simulation hot path reads state through a dense index
/// instead of a string compare per access.
///
/// Slots are created by name (bind) and never removed; values live in a
/// deque so Value pointers handed out (state(), findState) stay valid for
/// the lifetime of the table — including across reset(), which blanks the
/// values but keeps every slot identity.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_BSL_STATETABLE_H
#define LIBERTY_BSL_STATETABLE_H

#include "interp/Value.h"

#include <deque>
#include <string>
#include <vector>

namespace liberty {
namespace bsl {

class StateTable {
public:
  /// The slot named \p Name, or -1 if it was never bound.
  int find(const std::string &Name) const {
    for (size_t I = 0; I != Names.size(); ++I)
      if (Names[I] == Name)
        return int(I);
    return -1;
  }

  /// Finds or creates (as Unset) the slot named \p Name. Slot ids are
  /// stable for the lifetime of the table.
  int bind(const std::string &Name) {
    int Id = find(Name);
    if (Id >= 0)
      return Id;
    Names.push_back(Name);
    Values.emplace_back();
    return int(Names.size()) - 1;
  }

  interp::Value &slot(int Id) { return Values[size_t(Id)]; }
  const interp::Value &slot(int Id) const { return Values[size_t(Id)]; }

  /// Pointer to the named slot's value, or null if unbound. The pointer
  /// stays valid as slots are added (deque storage) and across reset().
  interp::Value *lookup(const std::string &Name) {
    int Id = find(Name);
    return Id < 0 ? nullptr : &Values[size_t(Id)];
  }

  /// Convenience accessor with map-like semantics (find-or-create).
  interp::Value &operator[](const std::string &Name) {
    return Values[size_t(bind(Name))];
  }

  /// Blanks every value to Unset, keeping all slot identities (so ids and
  /// cached Value pointers survive a simulator reset).
  void resetValues() {
    for (interp::Value &V : Values)
      V = interp::Value();
  }

  size_t size() const { return Names.size(); }
  const std::string &name(int Id) const { return Names[size_t(Id)]; }

private:
  std::vector<std::string> Names;
  std::deque<interp::Value> Values; // Deque: pointer-stable growth.
};

} // namespace bsl
} // namespace liberty

#endif // LIBERTY_BSL_STATETABLE_H
