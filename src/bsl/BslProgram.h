//===- BslProgram.h - Userpoint BSL programs --------------------*- C++ -*-===//
///
/// \file
/// The behavior-specification-language substrate for userpoint parameters.
/// The paper keeps the BSL abstract ("LSS is independent of the BSL"); this
/// implementation compiles userpoint code strings with the LSS parser's
/// statement grammar (plus `return`) and interprets them at simulation time
/// against the instance's arguments, runtime variables, and parameters.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_BSL_BSLPROGRAM_H
#define LIBERTY_BSL_BSLPROGRAM_H

#include "bsl/StateTable.h"
#include "interp/Value.h"
#include "lss/AST.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace liberty {
namespace bsl {

/// The mutable/readable state a BSL invocation runs against.
struct BslEnv {
  /// Userpoint arguments (by the signature's names).
  std::map<std::string, interp::Value> Args;
  /// The instance's runtime variables (Section 4.3); writable. Stored in
  /// the instance's dense StateTable (shared with behavior state).
  StateTable *RuntimeVars = nullptr;
  /// The instance's structural parameters; read-only.
  const std::map<std::string, interp::Value> *Params = nullptr;
};

/// A compiled userpoint body.
class BslProgram {
public:
  /// Parses \p Code (registered with \p SM under \p BufferName so
  /// diagnostics point into the userpoint string). Returns null on parse
  /// errors, which are reported through \p Diags.
  static std::unique_ptr<BslProgram> compile(const std::string &Code,
                                             const std::string &BufferName,
                                             SourceMgr &SM,
                                             DiagnosticEngine &Diags);

  /// Executes the program; the result is the value of the first executed
  /// `return`, or Unset if none runs. Runtime errors are reported through
  /// \p Diags (execution continues best-effort and returns Unset).
  interp::Value run(BslEnv &Env, DiagnosticEngine &Diags) const;

  const std::vector<lss::Stmt *> &getBody() const { return Body; }

private:
  BslProgram() = default;

  lss::ASTContext Ctx;
  std::vector<lss::Stmt *> Body;
};

} // namespace bsl
} // namespace liberty

#endif // LIBERTY_BSL_BSLPROGRAM_H
