//===- BehaviorRegistry.cpp - Leaf behavior substrate ------------------------===//

#include "bsl/BehaviorRegistry.h"

using namespace liberty;
using namespace liberty::bsl;

BehaviorContext::~BehaviorContext() = default;

LeafBehavior::~LeafBehavior() = default;

void LeafBehavior::init(BehaviorContext &) {}

void LeafBehavior::endOfTimestep(BehaviorContext &) {}

bool LeafBehavior::readsCombinationally(const std::string &) const {
  return true;
}

bool LeafBehavior::hasPureEvaluate() const { return false; }

BehaviorRegistry &BehaviorRegistry::global() {
  static BehaviorRegistry Instance;
  return Instance;
}

void BehaviorRegistry::registerBehavior(const std::string &Id, Factory F) {
  Factories[Id] = std::move(F);
}

bool BehaviorRegistry::contains(const std::string &Id) const {
  return Factories.count(Id) != 0;
}

std::unique_ptr<LeafBehavior> BehaviorRegistry::create(
    const std::string &Id) const {
  auto It = Factories.find(Id);
  if (It == Factories.end())
    return nullptr;
  return It->second();
}

std::vector<std::string> BehaviorRegistry::ids() const {
  std::vector<std::string> Result;
  Result.reserve(Factories.size());
  for (const auto &[Id, F] : Factories)
    Result.push_back(Id);
  return Result;
}
