//===- BehaviorRegistry.h - Leaf behavior substrate -------------*- C++ -*-===//
///
/// \file
/// The leaf-component behavior substrate. LSE resolved a leaf module's
/// tar_file to externally-supplied behavior code; here the tar_file id is
/// resolved against a registry of C++ LeafBehavior factories (the
/// substitution is documented in DESIGN.md). Behaviors interact with the
/// generated simulator exclusively through BehaviorContext, which exposes
/// ports, parameters, userpoints, runtime state, and event emission.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_BSL_BEHAVIORREGISTRY_H
#define LIBERTY_BSL_BEHAVIORREGISTRY_H

#include "interp/Value.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace liberty {

namespace types {
class Type;
}

namespace bsl {

/// The window through which a leaf behavior sees the simulation. One
/// context exists per leaf instance; the simulator implements it.
class BehaviorContext {
public:
  virtual ~BehaviorContext();

  /// Width (number of port instances) of a port; 0 if unconnected or
  /// undeclared. Unconnected-port semantics (Section 4.2) let behaviors
  /// adapt to missing connections.
  virtual int getWidth(const std::string &Port) const = 0;

  /// The inferred ground type of a port, or null if the port is absent.
  virtual const types::Type *getPortType(const std::string &Port) const = 0;

  /// The value present on input port instance (\p Port, \p Index) this
  /// cycle, or null if none was sent.
  virtual const interp::Value *getInput(const std::string &Port,
                                        int Index) const = 0;

  /// Sends \p V on output port instance (\p Port, \p Index). Also fires the
  /// automatic port event for instrumentation.
  virtual void setOutput(const std::string &Port, int Index,
                         interp::Value V) = 0;

  /// Pre-resolves \p Port to a dense port id for the indexed accessors
  /// below, or -1 if the instance has no such (connected or declared)
  /// port. Behaviors bind their ports once in init() and then read/write
  /// through the id on the per-cycle hot path, skipping the name scan.
  /// Ids are stable for the lifetime of the context (across reset()).
  virtual int bindPort(const std::string &Port) const = 0;

  /// Indexed twins of the string accessors above. A PortId of -1 behaves
  /// like an unconnected port: width 0, no input value, sends vanish.
  virtual int getWidth(int PortId) const = 0;
  virtual const interp::Value *getInput(int PortId, int Index) const = 0;
  virtual void setOutput(int PortId, int Index, interp::Value V) = 0;

  /// Structural parameter lookup; null if absent.
  virtual const interp::Value *getParam(const std::string &Name) const = 0;

  /// True if the instance carries a userpoint named \p Name.
  virtual bool hasUserpoint(const std::string &Name) const = 0;

  /// Invokes a userpoint with positional arguments (bound to the
  /// signature's argument names) and returns its return value.
  virtual interp::Value callUserpoint(const std::string &Name,
                                      std::vector<interp::Value> Args) = 0;

  /// Mutable per-instance state; creates an Unset slot on first use.
  /// Runtime variables declared in LSS appear here with their initial
  /// values.
  virtual interp::Value &state(const std::string &Name) = 0;

  /// Pre-resolves a state name to a dense slot id (creating the slot if
  /// new); state(int) then reads it without a name scan. Ids are stable
  /// across reset().
  virtual int bindState(const std::string &Name) = 0;
  virtual interp::Value &state(int StateId) = 0;

  /// Emits a declared instrumentation event.
  virtual void emitEvent(const std::string &Event, interp::Value Payload) = 0;

  virtual uint64_t getCycle() const = 0;
  virtual const std::string &getInstancePath() const = 0;
};

/// Base class for leaf-component behaviors.
class LeafBehavior {
public:
  virtual ~LeafBehavior();

  /// Called once before the first cycle.
  virtual void init(BehaviorContext &Ctx);

  /// Combinational phase: read inputs, write outputs. May run more than
  /// once per cycle when the instance sits inside a combinational cycle.
  virtual void evaluate(BehaviorContext &Ctx) = 0;

  /// Sequential phase: runs after every evaluate() has settled; state
  /// updates belong here.
  virtual void endOfTimestep(BehaviorContext &Ctx);

  /// True if evaluate() reads \p Port this cycle (creates a scheduling
  /// edge). Sequential elements return false so they can break cycles.
  virtual bool readsCombinationally(const std::string &Port) const;

  /// Selective-trace contract (see docs/ARCHITECTURE.md). Returning true
  /// asserts that evaluate()'s sends are a pure function of the values
  /// currently on its input nets: no dependence on the cycle number,
  /// mutable state, userpoints, or randomness; no declared-event emission
  /// from evaluate(); and every input port read combinationally. The
  /// simulator may then skip evaluate() in any cycle where no input net
  /// changed, carrying the previous cycle's sends forward. Stateful or
  /// cycle-dependent behaviors keep the default (false: evaluated every
  /// cycle).
  virtual bool hasPureEvaluate() const;
};

/// Maps tar_file-style behavior ids to factories.
class BehaviorRegistry {
public:
  using Factory = std::function<std::unique_ptr<LeafBehavior>()>;

  /// The process-wide registry (function-local static; no global ctor).
  static BehaviorRegistry &global();

  /// Registers \p F under \p Id; later registrations replace earlier ones.
  void registerBehavior(const std::string &Id, Factory F);

  bool contains(const std::string &Id) const;
  std::unique_ptr<LeafBehavior> create(const std::string &Id) const;

  /// Ids in sorted order (for listings and stats).
  std::vector<std::string> ids() const;

private:
  std::map<std::string, Factory> Factories;
};

} // namespace bsl
} // namespace liberty

#endif // LIBERTY_BSL_BEHAVIORREGISTRY_H
