//===- Lexer.h - LSS lexer --------------------------------------*- C++ -*-===//
///
/// \file
/// Hand-written lexer for LSS. Supports `//` and `/* */` comments, decimal
/// and hex integer literals, float literals, escaped string literals, and
/// the `'ident` type-variable syntax from the paper.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_LSS_LEXER_H
#define LIBERTY_LSS_LEXER_H

#include "lss/Token.h"
#include "support/Diagnostics.h"

namespace liberty {
namespace lss {

class Lexer {
public:
  /// Lexes buffer \p BufferId, which must already be registered with the
  /// SourceMgr behind \p Diags.
  Lexer(uint32_t BufferId, DiagnosticEngine &Diags);

  /// Returns the next token, advancing the lexer. Returns an Eof token at
  /// the end of input forever after.
  Token lex();

private:
  SourceLoc getLoc() const { return SourceLoc{BufferId, Pos}; }
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();

  Token makeToken(TokenKind Kind, SourceLoc Loc, std::string Spelling);
  Token lexIdentifierOrKeyword(SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);
  Token lexString(SourceLoc Loc);
  Token lexTypeVar(SourceLoc Loc);

  uint32_t BufferId;
  DiagnosticEngine &Diags;
  const std::string &Text;
  uint32_t Pos = 0;
};

} // namespace lss
} // namespace liberty

#endif // LIBERTY_LSS_LEXER_H
