//===- AST.cpp - LSS AST printing -----------------------------------------===//

#include "lss/AST.h"

#include "support/Casting.h"

using namespace liberty;
using namespace liberty::lss;

ASTNode::~ASTNode() = default;

const char *liberty::lss::binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

void TypeExpr::print(std::ostream &OS) const {
  switch (getKind()) {
  case Kind::Basic:
    switch (cast<BasicTypeExpr>(this)->getBasicKind()) {
    case BasicTypeExpr::Basic::Int:
      OS << "int";
      break;
    case BasicTypeExpr::Basic::Bool:
      OS << "bool";
      break;
    case BasicTypeExpr::Basic::Float:
      OS << "float";
      break;
    case BasicTypeExpr::Basic::String:
      OS << "string";
      break;
    }
    break;
  case Kind::Var:
    OS << "'" << cast<VarTypeExpr>(this)->getName();
    break;
  case Kind::Array: {
    const auto *A = cast<ArrayTypeExpr>(this);
    A->getElem()->print(OS);
    OS << "[";
    if (A->getSizeExpr())
      A->getSizeExpr()->print(OS);
    OS << "]";
    break;
  }
  case Kind::Struct: {
    const auto *S = cast<StructTypeExpr>(this);
    OS << "struct{";
    for (const auto &[Name, Ty] : S->getFields()) {
      OS << Name << ":";
      Ty->print(OS);
      OS << ";";
    }
    OS << "}";
    break;
  }
  case Kind::Disjunct: {
    const auto *D = cast<DisjunctTypeExpr>(this);
    OS << "(";
    bool First = true;
    for (const TypeExpr *Alt : D->getAlternatives()) {
      if (!First)
        OS << "|";
      First = false;
      Alt->print(OS);
    }
    OS << ")";
    break;
  }
  case Kind::InstanceRef:
    OS << "instance ref";
    break;
  }
}

void Expr::print(std::ostream &OS) const {
  switch (getKind()) {
  case Kind::IntLit:
    OS << cast<IntLitExpr>(this)->getValue();
    break;
  case Kind::FloatLit:
    OS << cast<FloatLitExpr>(this)->getValue();
    break;
  case Kind::StringLit:
    OS << '"' << cast<StringLitExpr>(this)->getValue() << '"';
    break;
  case Kind::BoolLit:
    OS << (cast<BoolLitExpr>(this)->getValue() ? "true" : "false");
    break;
  case Kind::Ident:
    OS << cast<IdentExpr>(this)->getName();
    break;
  case Kind::Member: {
    const auto *M = cast<MemberExpr>(this);
    M->getBase()->print(OS);
    OS << "." << M->getMember();
    break;
  }
  case Kind::Index: {
    const auto *I = cast<IndexExpr>(this);
    I->getBase()->print(OS);
    OS << "[";
    I->getIndex()->print(OS);
    OS << "]";
    break;
  }
  case Kind::Call: {
    const auto *C = cast<CallExpr>(this);
    OS << C->getCallee() << "(";
    bool First = true;
    for (const Expr *Arg : C->getArgs()) {
      if (!First)
        OS << ", ";
      First = false;
      Arg->print(OS);
    }
    OS << ")";
    break;
  }
  case Kind::NewInstanceArray: {
    const auto *N = cast<NewInstanceArrayExpr>(this);
    OS << "new instance[";
    N->getSizeExpr()->print(OS);
    OS << "](" << N->getModuleName() << ", ";
    N->getNameExpr()->print(OS);
    OS << ")";
    break;
  }
  case Kind::Unary: {
    const auto *U = cast<UnaryExpr>(this);
    OS << (U->getOp() == UnaryOp::Neg ? "-" : "!");
    U->getOperand()->print(OS);
    break;
  }
  case Kind::Binary: {
    const auto *B = cast<BinaryExpr>(this);
    OS << "(";
    B->getLHS()->print(OS);
    OS << " " << binaryOpName(B->getOp()) << " ";
    B->getRHS()->print(OS);
    OS << ")";
    break;
  }
  }
}

static void printIndent(std::ostream &OS, unsigned Indent) {
  for (unsigned I = 0; I != Indent; ++I)
    OS << "  ";
}

void Stmt::print(std::ostream &OS, unsigned Indent) const {
  printIndent(OS, Indent);
  switch (getKind()) {
  case Kind::ParamDecl: {
    const auto *P = cast<ParamDeclStmt>(this);
    OS << "parameter " << P->getName();
    if (P->isUserpoint()) {
      OS << ": userpoint(...)";
    } else if (P->getType()) {
      OS << ": ";
      P->getType()->print(OS);
    }
    if (P->getDefault()) {
      OS << " = ";
      P->getDefault()->print(OS);
    }
    OS << ";\n";
    break;
  }
  case Kind::PortDecl: {
    const auto *P = cast<PortDeclStmt>(this);
    OS << (P->isInput() ? "inport " : "outport ") << P->getName() << ": ";
    P->getType()->print(OS);
    OS << ";\n";
    break;
  }
  case Kind::InstanceDecl: {
    const auto *I = cast<InstanceDeclStmt>(this);
    OS << "instance " << I->getName() << ": " << I->getModuleName() << ";\n";
    break;
  }
  case Kind::VarDecl: {
    const auto *V = cast<VarDeclStmt>(this);
    if (V->isRuntime())
      OS << "runtime ";
    OS << "var " << V->getName() << ": ";
    V->getType()->print(OS);
    if (V->getInit()) {
      OS << " = ";
      V->getInit()->print(OS);
    }
    OS << ";\n";
    break;
  }
  case Kind::EventDecl:
    OS << "event " << cast<EventDeclStmt>(this)->getName() << ";\n";
    break;
  case Kind::Constrain: {
    const auto *C = cast<ConstrainStmt>(this);
    OS << "constrain '" << C->getVarName() << ": ";
    C->getScheme()->print(OS);
    OS << ";\n";
    break;
  }
  case Kind::If: {
    const auto *I = cast<IfStmt>(this);
    OS << "if (";
    I->getCond()->print(OS);
    OS << ")\n";
    I->getThen()->print(OS, Indent + 1);
    if (I->getElse()) {
      printIndent(OS, Indent);
      OS << "else\n";
      I->getElse()->print(OS, Indent + 1);
    }
    break;
  }
  case Kind::For: {
    const auto *F = cast<ForStmt>(this);
    OS << "for (...)\n";
    F->getBody()->print(OS, Indent + 1);
    break;
  }
  case Kind::While: {
    const auto *W = cast<WhileStmt>(this);
    OS << "while (";
    W->getCond()->print(OS);
    OS << ")\n";
    W->getBody()->print(OS, Indent + 1);
    break;
  }
  case Kind::Block: {
    OS << "{\n";
    for (const Stmt *S : cast<BlockStmt>(this)->getBody())
      S->print(OS, Indent + 1);
    printIndent(OS, Indent);
    OS << "}\n";
    break;
  }
  case Kind::Assign: {
    const auto *A = cast<AssignStmt>(this);
    A->getLHS()->print(OS);
    OS << " = ";
    A->getRHS()->print(OS);
    OS << ";\n";
    break;
  }
  case Kind::Connect: {
    const auto *C = cast<ConnectStmt>(this);
    C->getFrom()->print(OS);
    OS << " -> ";
    C->getTo()->print(OS);
    if (C->getAnnotation()) {
      OS << " : ";
      C->getAnnotation()->print(OS);
    }
    OS << ";\n";
    break;
  }
  case Kind::ExprStmt:
    cast<ExprStmt>(this)->getExpr()->print(OS);
    OS << ";\n";
    break;
  case Kind::Return: {
    const auto *R = cast<ReturnStmt>(this);
    OS << "return";
    if (R->getValue()) {
      OS << " ";
      R->getValue()->print(OS);
    }
    OS << ";\n";
    break;
  }
  case Kind::Break:
    OS << "break;\n";
    break;
  case Kind::Continue:
    OS << "continue;\n";
    break;
  }
}
