//===- Lexer.cpp - LSS lexer ----------------------------------------------===//

#include "lss/Lexer.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace liberty;
using namespace liberty::lss;

const char *liberty::lss::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::TypeVar:
    return "type variable";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwModule:
    return "'module'";
  case TokenKind::KwParameter:
    return "'parameter'";
  case TokenKind::KwInport:
    return "'inport'";
  case TokenKind::KwOutport:
    return "'outport'";
  case TokenKind::KwInstance:
    return "'instance'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwRuntime:
    return "'runtime'";
  case TokenKind::KwEvent:
    return "'event'";
  case TokenKind::KwUserpoint:
    return "'userpoint'";
  case TokenKind::KwConstrain:
    return "'constrain'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwEnum:
    return "'enum'";
  case TokenKind::KwRef:
    return "'ref'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwString:
    return "'string'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::FatArrow:
    return "'=>'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Not:
    return "'!'";
  }
  return "unknown";
}

static const std::unordered_map<std::string, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string, TokenKind> Table = {
      {"module", TokenKind::KwModule},
      {"parameter", TokenKind::KwParameter},
      {"inport", TokenKind::KwInport},
      {"outport", TokenKind::KwOutport},
      {"instance", TokenKind::KwInstance},
      {"var", TokenKind::KwVar},
      {"runtime", TokenKind::KwRuntime},
      {"event", TokenKind::KwEvent},
      {"userpoint", TokenKind::KwUserpoint},
      {"constrain", TokenKind::KwConstrain},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"for", TokenKind::KwFor},
      {"while", TokenKind::KwWhile},
      {"new", TokenKind::KwNew},
      {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"struct", TokenKind::KwStruct},
      {"enum", TokenKind::KwEnum},
      {"ref", TokenKind::KwRef},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"int", TokenKind::KwInt},
      {"bool", TokenKind::KwBool},
      {"float", TokenKind::KwFloat},
      {"string", TokenKind::KwString},
  };
  return Table;
}

Lexer::Lexer(uint32_t BufferId, DiagnosticEngine &Diags)
    : BufferId(BufferId), Diags(Diags),
      Text(Diags.getSourceMgr().getBufferText(BufferId)) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Text.size() ? Text[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  assert(Pos < Text.size() && "advanced past end of buffer");
  return Text[Pos++];
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  ++Pos;
  return true;
}

void Lexer::skipTrivia() {
  while (Pos < Text.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Text.size() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = getLoc();
      Pos += 2;
      while (Pos < Text.size() && !(peek() == '*' && peek(1) == '/'))
        ++Pos;
      if (Pos >= Text.size()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      Pos += 2;
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc, std::string Spelling) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Spelling = std::move(Spelling);
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  uint32_t Start = Pos;
  while (Pos < Text.size() && (std::isalnum((unsigned char)peek()) ||
                               peek() == '_'))
    ++Pos;
  std::string Spelling = Text.substr(Start, Pos - Start);
  auto It = keywordTable().find(Spelling);
  if (It != keywordTable().end())
    return makeToken(It->second, Loc, std::move(Spelling));
  return makeToken(TokenKind::Identifier, Loc, std::move(Spelling));
}

Token Lexer::lexNumber(SourceLoc Loc) {
  uint32_t Start = Pos;
  bool IsHex = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    IsHex = true;
    Pos += 2;
    while (std::isxdigit((unsigned char)peek()))
      ++Pos;
  } else {
    while (std::isdigit((unsigned char)peek()))
      ++Pos;
  }
  bool IsFloat = false;
  if (!IsHex && peek() == '.' && std::isdigit((unsigned char)peek(1))) {
    IsFloat = true;
    ++Pos;
    while (std::isdigit((unsigned char)peek()))
      ++Pos;
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      while (std::isdigit((unsigned char)peek()))
        ++Pos;
    }
  }
  std::string Spelling = Text.substr(Start, Pos - Start);
  Token T = makeToken(IsFloat ? TokenKind::FloatLiteral
                              : TokenKind::IntLiteral,
                      Loc, Spelling);
  if (IsFloat)
    T.FloatValue = std::strtod(Spelling.c_str(), nullptr);
  else
    T.IntValue = std::strtoll(Spelling.c_str(), nullptr, IsHex ? 16 : 10);
  return T;
}

Token Lexer::lexString(SourceLoc Loc) {
  assert(peek() == '"');
  ++Pos;
  std::string Value;
  while (Pos < Text.size() && peek() != '"') {
    char C = advance();
    if (C != '\\') {
      Value.push_back(C);
      continue;
    }
    if (Pos >= Text.size())
      break;
    char Esc = advance();
    switch (Esc) {
    case 'n':
      Value.push_back('\n');
      break;
    case 't':
      Value.push_back('\t');
      break;
    case '\\':
      Value.push_back('\\');
      break;
    case '"':
      Value.push_back('"');
      break;
    default:
      Diags.warning(Loc, std::string("unknown escape sequence '\\") + Esc +
                             "' in string literal");
      Value.push_back(Esc);
      break;
    }
  }
  if (Pos >= Text.size()) {
    Diags.error(Loc, "unterminated string literal");
    return makeToken(TokenKind::Error, Loc, Value);
  }
  ++Pos; // Closing quote.
  return makeToken(TokenKind::StringLiteral, Loc, std::move(Value));
}

Token Lexer::lexTypeVar(SourceLoc Loc) {
  assert(peek() == '\'');
  ++Pos;
  if (!std::isalpha((unsigned char)peek()) && peek() != '_') {
    Diags.error(Loc, "expected identifier after ' in type variable");
    return makeToken(TokenKind::Error, Loc, "'");
  }
  uint32_t Start = Pos;
  while (Pos < Text.size() &&
         (std::isalnum((unsigned char)peek()) || peek() == '_'))
    ++Pos;
  return makeToken(TokenKind::TypeVar, Loc, Text.substr(Start, Pos - Start));
}

Token Lexer::lex() {
  skipTrivia();
  SourceLoc Loc = getLoc();
  if (Pos >= Text.size())
    return makeToken(TokenKind::Eof, Loc, "");

  char C = peek();
  if (std::isalpha((unsigned char)C) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit((unsigned char)C))
    return lexNumber(Loc);
  if (C == '"')
    return lexString(Loc);
  if (C == '\'')
    return lexTypeVar(Loc);

  ++Pos;
  switch (C) {
  case '{':
    return makeToken(TokenKind::LBrace, Loc, "{");
  case '}':
    return makeToken(TokenKind::RBrace, Loc, "}");
  case '(':
    return makeToken(TokenKind::LParen, Loc, "(");
  case ')':
    return makeToken(TokenKind::RParen, Loc, ")");
  case '[':
    return makeToken(TokenKind::LBracket, Loc, "[");
  case ']':
    return makeToken(TokenKind::RBracket, Loc, "]");
  case ';':
    return makeToken(TokenKind::Semicolon, Loc, ";");
  case ':':
    return makeToken(TokenKind::Colon, Loc, ":");
  case ',':
    return makeToken(TokenKind::Comma, Loc, ",");
  case '.':
    return makeToken(TokenKind::Dot, Loc, ".");
  case '+':
    return makeToken(TokenKind::Plus, Loc, "+");
  case '*':
    return makeToken(TokenKind::Star, Loc, "*");
  case '/':
    return makeToken(TokenKind::Slash, Loc, "/");
  case '%':
    return makeToken(TokenKind::Percent, Loc, "%");
  case '-':
    if (match('>'))
      return makeToken(TokenKind::Arrow, Loc, "->");
    return makeToken(TokenKind::Minus, Loc, "-");
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqEq, Loc, "==");
    if (match('>'))
      return makeToken(TokenKind::FatArrow, Loc, "=>");
    return makeToken(TokenKind::Assign, Loc, "=");
  case '<':
    if (match('='))
      return makeToken(TokenKind::LessEq, Loc, "<=");
    return makeToken(TokenKind::Less, Loc, "<");
  case '>':
    if (match('='))
      return makeToken(TokenKind::GreaterEq, Loc, ">=");
    return makeToken(TokenKind::Greater, Loc, ">");
  case '!':
    if (match('='))
      return makeToken(TokenKind::NotEq, Loc, "!=");
    return makeToken(TokenKind::Not, Loc, "!");
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc, "&&");
    break;
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc, "||");
    return makeToken(TokenKind::Pipe, Loc, "|");
  default:
    break;
  }
  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  return makeToken(TokenKind::Error, Loc, std::string(1, C));
}
