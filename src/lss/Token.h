//===- Token.h - LSS token definitions --------------------------*- C++ -*-===//
///
/// \file
/// Token kinds produced by the LSS lexer. The token set covers the full LSS
/// surface used in the paper's figures: module declarations, parameters,
/// ports, userpoints, imperative control flow, connections (`->`), type
/// variables (`'a`), and disjunctive type annotations (`|`).
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_LSS_TOKEN_H
#define LIBERTY_LSS_TOKEN_H

#include "support/SourceMgr.h"

#include <cstdint>
#include <string>

namespace liberty {
namespace lss {

enum class TokenKind {
  Eof,
  Error,

  Identifier, ///< e.g. delays
  TypeVar,    ///< e.g. 'a (spelling excludes the quote)
  IntLiteral,
  FloatLiteral,
  StringLiteral,

  // Keywords.
  KwModule,
  KwParameter,
  KwInport,
  KwOutport,
  KwInstance,
  KwVar,
  KwRuntime,
  KwEvent,
  KwUserpoint,
  KwConstrain,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwNew,
  KwReturn,
  KwBreak,
  KwContinue,
  KwStruct,
  KwEnum,
  KwRef,
  KwTrue,
  KwFalse,
  KwInt,
  KwBool,
  KwFloat,
  KwString,

  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semicolon,
  Colon,
  Comma,
  Dot,
  Assign,     ///< =
  Arrow,      ///< ->
  FatArrow,   ///< =>
  Pipe,       ///< |
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Less,
  Greater,
  LessEq,
  GreaterEq,
  EqEq,
  NotEq,
  AmpAmp,
  PipePipe,
  Not,
};

/// Returns a human-readable name for \p Kind, used in parse diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token. \c Spelling carries the text for identifiers and
/// literals (string literals are stored unescaped).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Spelling;
  int64_t IntValue = 0;
  double FloatValue = 0.0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace lss
} // namespace liberty

#endif // LIBERTY_LSS_TOKEN_H
