//===- Parser.cpp - LSS recursive-descent parser ---------------------------===//

#include "lss/Parser.h"

#include "support/Casting.h"

#include <cassert>

using namespace liberty;
using namespace liberty::lss;

Parser::Parser(uint32_t BufferId, ASTContext &Ctx, DiagnosticEngine &Diags)
    : Ctx(Ctx), Diags(Diags), Lex(BufferId, Diags) {
  CurTok = Lex.lex();
}

void Parser::consume() {
  CurTok = Lex.lex();
  ++NumConsumed;
}

/// Keywords that can only begin a declaration/statement — safe tokens to
/// resynchronize on after a parse error without consuming them.
static bool isDeclKeyword(TokenKind K) {
  switch (K) {
  case TokenKind::KwModule:
  case TokenKind::KwParameter:
  case TokenKind::KwInport:
  case TokenKind::KwOutport:
  case TokenKind::KwInstance:
  case TokenKind::KwVar:
  case TokenKind::KwRuntime:
  case TokenKind::KwEvent:
  case TokenKind::KwConstrain:
    return true;
  default:
    return false;
  }
}

namespace {
/// RAII increment of the parser's recursion-depth counter.
struct DepthGuard {
  unsigned &Depth;
  explicit DepthGuard(unsigned &Depth) : Depth(Depth) { ++Depth; }
  ~DepthGuard() { --Depth; }
};
} // namespace

/// The recursive-descent productions consume call stack proportional to the
/// input's nesting depth, so depth is bounded: past the cap the offending
/// construct is diagnosed and panic-mode recovery takes over. 512 levels is
/// far beyond any real specification (fuzzers reach it routinely —
/// fuzz/regressions/deep-nesting.lss).
static constexpr unsigned MaxNestingDepth = 512;

bool Parser::atMaxDepth(SourceLoc Loc) {
  if (Depth <= MaxNestingDepth)
    return false;
  Diags.error(Loc, "construct nested more than " +
                       std::to_string(MaxNestingDepth) +
                       " levels deep; simplify the input");
  return true;
}

bool Parser::consumeIf(TokenKind K) {
  if (!cur().is(K))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (consumeIf(K))
    return true;
  Diags.error(cur().Loc, std::string("expected ") + tokenKindName(K) +
                             " in " + Context + ", found " +
                             tokenKindName(cur().Kind));
  return false;
}

/// Panic-mode recovery: skips tokens until just past the next ';', or up to
/// (not past) a '}', a declaration keyword, or EOF. Syncing on declaration
/// keywords means one bad statement costs at most the tokens up to the next
/// declaration, so a single malformed line still yields diagnostics for
/// everything after it. When tokens were actually discarded, a note marks
/// where parsing resumed.
void Parser::skipToRecoveryPoint() {
  unsigned Discarded = 0;
  auto NoteResume = [&] {
    if (Discarded >= 2)
      Diags.note(cur().Loc, "discarded " + std::to_string(Discarded) +
                                " tokens while recovering; parsing resumed "
                                "here");
  };
  while (!cur().is(TokenKind::Eof)) {
    if (cur().is(TokenKind::Semicolon)) {
      consume();
      ++Discarded;
      NoteResume();
      return;
    }
    if (cur().is(TokenKind::RBrace) || isDeclKeyword(cur().Kind)) {
      NoteResume();
      return;
    }
    consume();
    ++Discarded;
  }
}

SpecFile Parser::parseFile() {
  SpecFile File;
  while (!cur().is(TokenKind::Eof) && !Diags.errorLimitReached()) {
    unsigned Before = NumConsumed;
    if (cur().is(TokenKind::KwModule)) {
      if (ModuleDecl *M = parseModuleDecl())
        File.Modules.push_back(M);
    } else if (Stmt *S = parseStmt()) {
      File.TopLevel.push_back(S);
    }
    ensureProgress(Before);
  }
  return File;
}

std::vector<Stmt *> Parser::parseBslBody() {
  std::vector<Stmt *> Body;
  while (!cur().is(TokenKind::Eof) && !Diags.errorLimitReached()) {
    unsigned Before = NumConsumed;
    if (Stmt *S = parseStmt())
      Body.push_back(S);
    ensureProgress(Before);
  }
  return Body;
}

/// Guarantees forward progress in a parse loop: if the last production
/// neither consumed a token nor will the loop's own condition end (e.g. a
/// stray '}' at the top level that every recovery point refuses to eat),
/// diagnose and consume the offender. Without this a single unexpected
/// token could stall parseFile forever.
void Parser::ensureProgress(unsigned NumConsumedBefore) {
  if (NumConsumed != NumConsumedBefore || cur().is(TokenKind::Eof))
    return;
  Diags.error(cur().Loc, std::string("unexpected ") +
                             tokenKindName(cur().Kind) + "; skipping it");
  consume();
}

ModuleDecl *Parser::parseModuleDecl() {
  SourceLoc Loc = cur().Loc;
  assert(cur().is(TokenKind::KwModule));
  consume();
  if (!cur().is(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected module name after 'module'");
    skipToRecoveryPoint();
    return nullptr;
  }
  std::string Name = cur().Spelling;
  consume();
  if (!expect(TokenKind::LBrace, "module declaration")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  std::vector<Stmt *> Body;
  while (!cur().is(TokenKind::RBrace) && !cur().is(TokenKind::Eof) &&
         !Diags.errorLimitReached()) {
    unsigned Before = NumConsumed;
    if (Stmt *S = parseStmt())
      Body.push_back(S);
    ensureProgress(Before);
  }
  expect(TokenKind::RBrace, "module declaration");
  consumeIf(TokenKind::Semicolon); // Trailing ';' is optional.
  return Ctx.create<ModuleDecl>(std::move(Name), std::move(Body), Loc);
}

Stmt *Parser::parseStmt() {
  DepthGuard Guard(Depth);
  if (atMaxDepth(cur().Loc))
    return nullptr;
  switch (cur().Kind) {
  case TokenKind::KwParameter:
    return parseParamDecl();
  case TokenKind::KwInport:
    return parsePortDecl(/*IsInput=*/true);
  case TokenKind::KwOutport:
    return parsePortDecl(/*IsInput=*/false);
  case TokenKind::KwInstance:
    return parseInstanceDecl();
  case TokenKind::KwVar:
    consume();
    return parseVarDecl(/*IsRuntime=*/false);
  case TokenKind::KwRuntime: {
    consume();
    if (!expect(TokenKind::KwVar, "runtime variable declaration")) {
      skipToRecoveryPoint();
      return nullptr;
    }
    return parseVarDecl(/*IsRuntime=*/true);
  }
  case TokenKind::KwEvent:
    return parseEventDecl();
  case TokenKind::KwConstrain:
    return parseConstrain();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwBreak: {
    SourceLoc Loc = cur().Loc;
    consume();
    expect(TokenKind::Semicolon, "break statement");
    return Ctx.create<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLoc Loc = cur().Loc;
    consume();
    expect(TokenKind::Semicolon, "continue statement");
    return Ctx.create<ContinueStmt>(Loc);
  }
  case TokenKind::Semicolon:
    consume(); // Stray empty statement.
    return nullptr;
  default:
    return parseSimpleStmt(/*RequireSemicolon=*/true);
  }
}

Stmt *Parser::parseParamDecl() {
  SourceLoc Loc = cur().Loc;
  assert(cur().is(TokenKind::KwParameter));
  consume();
  if (!cur().is(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected parameter name");
    skipToRecoveryPoint();
    return nullptr;
  }
  std::string Name = cur().Spelling;
  consume();

  TypeExpr *Ty = nullptr;
  Expr *Default = nullptr;
  std::unique_ptr<UserpointSig> Sig;

  if (consumeIf(TokenKind::Assign)) {
    // Figure 5 syntax: parameter name = default : type;
    Default = parseExpr();
    if (!Default || !expect(TokenKind::Colon, "parameter declaration")) {
      skipToRecoveryPoint();
      return nullptr;
    }
    Ty = parseTypeExpr();
  } else if (consumeIf(TokenKind::Colon)) {
    if (cur().is(TokenKind::KwUserpoint)) {
      Sig = parseUserpointSig();
      if (!Sig) {
        skipToRecoveryPoint();
        return nullptr;
      }
      if (consumeIf(TokenKind::Assign))
        Default = parseExpr();
    } else {
      Ty = parseTypeExpr();
      if (consumeIf(TokenKind::Assign))
        Default = parseExpr();
    }
  } else {
    Diags.error(cur().Loc, "expected ':' or '=' in parameter declaration");
    skipToRecoveryPoint();
    return nullptr;
  }
  if (!Sig && !Ty) {
    skipToRecoveryPoint();
    return nullptr;
  }
  expect(TokenKind::Semicolon, "parameter declaration");
  return Ctx.create<ParamDeclStmt>(std::move(Name), Ty, Default,
                                   std::move(Sig), Loc);
}

std::unique_ptr<UserpointSig> Parser::parseUserpointSig() {
  assert(cur().is(TokenKind::KwUserpoint));
  consume();
  if (!expect(TokenKind::LParen, "userpoint signature"))
    return nullptr;
  auto Sig = std::make_unique<UserpointSig>();
  if (!cur().is(TokenKind::FatArrow)) {
    while (true) {
      if (!cur().is(TokenKind::Identifier)) {
        Diags.error(cur().Loc, "expected argument name in userpoint signature");
        return nullptr;
      }
      std::string ArgName = cur().Spelling;
      consume();
      if (!expect(TokenKind::Colon, "userpoint signature"))
        return nullptr;
      TypeExpr *ArgTy = parseTypeExpr();
      if (!ArgTy)
        return nullptr;
      Sig->Args.emplace_back(std::move(ArgName), ArgTy);
      if (!consumeIf(TokenKind::Comma))
        break;
    }
  }
  if (!expect(TokenKind::FatArrow, "userpoint signature"))
    return nullptr;
  Sig->Ret = parseTypeExpr();
  if (!Sig->Ret)
    return nullptr;
  if (!expect(TokenKind::RParen, "userpoint signature"))
    return nullptr;
  return Sig;
}

Stmt *Parser::parsePortDecl(bool IsInput) {
  SourceLoc Loc = cur().Loc;
  consume();
  if (!cur().is(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected port name");
    skipToRecoveryPoint();
    return nullptr;
  }
  std::string Name = cur().Spelling;
  consume();
  if (!expect(TokenKind::Colon, "port declaration")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  TypeExpr *Ty = parseTypeExpr();
  if (!Ty) {
    skipToRecoveryPoint();
    return nullptr;
  }
  expect(TokenKind::Semicolon, "port declaration");
  return Ctx.create<PortDeclStmt>(IsInput, std::move(Name), Ty, Loc);
}

Stmt *Parser::parseInstanceDecl() {
  SourceLoc Loc = cur().Loc;
  assert(cur().is(TokenKind::KwInstance));
  consume();
  if (!cur().is(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected instance name");
    skipToRecoveryPoint();
    return nullptr;
  }
  std::string Name = cur().Spelling;
  consume();
  if (!expect(TokenKind::Colon, "instance declaration")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  if (!cur().is(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected module name in instance declaration");
    skipToRecoveryPoint();
    return nullptr;
  }
  std::string ModuleName = cur().Spelling;
  consume();
  expect(TokenKind::Semicolon, "instance declaration");
  return Ctx.create<InstanceDeclStmt>(std::move(Name), std::move(ModuleName),
                                      Loc);
}

Stmt *Parser::parseVarDecl(bool IsRuntime) {
  SourceLoc Loc = cur().Loc;
  if (!cur().is(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected variable name");
    skipToRecoveryPoint();
    return nullptr;
  }
  std::string Name = cur().Spelling;
  consume();
  if (!expect(TokenKind::Colon, "variable declaration")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  TypeExpr *Ty = parseTypeExpr();
  if (!Ty) {
    skipToRecoveryPoint();
    return nullptr;
  }
  Expr *Init = nullptr;
  if (consumeIf(TokenKind::Assign)) {
    Init = parseExpr();
    if (!Init) {
      skipToRecoveryPoint();
      return nullptr;
    }
  }
  expect(TokenKind::Semicolon, "variable declaration");
  return Ctx.create<VarDeclStmt>(std::move(Name), Ty, Init, IsRuntime, Loc);
}

Stmt *Parser::parseEventDecl() {
  SourceLoc Loc = cur().Loc;
  assert(cur().is(TokenKind::KwEvent));
  consume();
  if (!cur().is(TokenKind::Identifier)) {
    Diags.error(cur().Loc, "expected event name");
    skipToRecoveryPoint();
    return nullptr;
  }
  std::string Name = cur().Spelling;
  consume();
  expect(TokenKind::Semicolon, "event declaration");
  return Ctx.create<EventDeclStmt>(std::move(Name), Loc);
}

Stmt *Parser::parseConstrain() {
  SourceLoc Loc = cur().Loc;
  assert(cur().is(TokenKind::KwConstrain));
  consume();
  if (!cur().is(TokenKind::TypeVar)) {
    Diags.error(cur().Loc, "expected type variable after 'constrain'");
    skipToRecoveryPoint();
    return nullptr;
  }
  std::string VarName = cur().Spelling;
  consume();
  if (!expect(TokenKind::Colon, "constrain statement")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  TypeExpr *Scheme = parseTypeExpr();
  if (!Scheme) {
    skipToRecoveryPoint();
    return nullptr;
  }
  expect(TokenKind::Semicolon, "constrain statement");
  return Ctx.create<ConstrainStmt>(std::move(VarName), Scheme, Loc);
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = cur().Loc;
  assert(cur().is(TokenKind::KwIf));
  consume();
  if (!expect(TokenKind::LParen, "if statement")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  Expr *Cond = parseExpr();
  if (!Cond || !expect(TokenKind::RParen, "if statement")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  Stmt *Then = parseStmt();
  if (!Then)
    return nullptr;
  Stmt *Else = nullptr;
  if (consumeIf(TokenKind::KwElse)) {
    Else = parseStmt();
    if (!Else)
      return nullptr;
  }
  return Ctx.create<IfStmt>(Cond, Then, Else, Loc);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = cur().Loc;
  assert(cur().is(TokenKind::KwFor));
  consume();
  if (!expect(TokenKind::LParen, "for statement")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  Stmt *Init = nullptr;
  if (!cur().is(TokenKind::Semicolon))
    Init = parseSimpleStmt(/*RequireSemicolon=*/false);
  if (!expect(TokenKind::Semicolon, "for statement")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  Expr *Cond = nullptr;
  if (!cur().is(TokenKind::Semicolon)) {
    Cond = parseExpr();
    if (!Cond) {
      skipToRecoveryPoint();
      return nullptr;
    }
  }
  if (!expect(TokenKind::Semicolon, "for statement")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  Stmt *Step = nullptr;
  if (!cur().is(TokenKind::RParen))
    Step = parseSimpleStmt(/*RequireSemicolon=*/false);
  if (!expect(TokenKind::RParen, "for statement")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  return Ctx.create<ForStmt>(Init, Cond, Step, Body, Loc);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = cur().Loc;
  assert(cur().is(TokenKind::KwWhile));
  consume();
  if (!expect(TokenKind::LParen, "while statement")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  Expr *Cond = parseExpr();
  if (!Cond || !expect(TokenKind::RParen, "while statement")) {
    skipToRecoveryPoint();
    return nullptr;
  }
  Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  return Ctx.create<WhileStmt>(Cond, Body, Loc);
}

Stmt *Parser::parseBlock() {
  SourceLoc Loc = cur().Loc;
  assert(cur().is(TokenKind::LBrace));
  consume();
  std::vector<Stmt *> Body;
  while (!cur().is(TokenKind::RBrace) && !cur().is(TokenKind::Eof) &&
         !Diags.errorLimitReached()) {
    unsigned Before = NumConsumed;
    if (Stmt *S = parseStmt())
      Body.push_back(S);
    ensureProgress(Before);
  }
  expect(TokenKind::RBrace, "block");
  return Ctx.create<BlockStmt>(std::move(Body), Loc);
}

Stmt *Parser::parseReturn() {
  SourceLoc Loc = cur().Loc;
  assert(cur().is(TokenKind::KwReturn));
  consume();
  Expr *Value = nullptr;
  if (!cur().is(TokenKind::Semicolon)) {
    Value = parseExpr();
    if (!Value) {
      skipToRecoveryPoint();
      return nullptr;
    }
  }
  expect(TokenKind::Semicolon, "return statement");
  return Ctx.create<ReturnStmt>(Value, Loc);
}

Stmt *Parser::parseSimpleStmt(bool RequireSemicolon) {
  SourceLoc Loc = cur().Loc;
  Expr *LHS = parseExpr();
  if (!LHS) {
    skipToRecoveryPoint();
    return nullptr;
  }
  Stmt *Result = nullptr;
  if (consumeIf(TokenKind::Assign)) {
    Expr *RHS = parseExpr();
    if (!RHS) {
      skipToRecoveryPoint();
      return nullptr;
    }
    Result = Ctx.create<AssignStmt>(LHS, RHS, Loc);
  } else if (consumeIf(TokenKind::Arrow)) {
    Expr *To = parseExpr();
    if (!To) {
      skipToRecoveryPoint();
      return nullptr;
    }
    TypeExpr *Annotation = nullptr;
    if (consumeIf(TokenKind::Colon)) {
      Annotation = parseTypeExpr();
      if (!Annotation) {
        skipToRecoveryPoint();
        return nullptr;
      }
    }
    Result = Ctx.create<ConnectStmt>(LHS, To, Annotation, Loc);
  } else {
    Result = Ctx.create<ExprStmt>(LHS, Loc);
  }
  if (RequireSemicolon)
    expect(TokenKind::Semicolon, "statement");
  return Result;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binding strengths for the binary operators; higher binds tighter.
static int binaryPrecedence(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::EqEq:
  case TokenKind::NotEq:
    return 3;
  case TokenKind::Less:
  case TokenKind::Greater:
  case TokenKind::LessEq:
  case TokenKind::GreaterEq:
    return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 6;
  default:
    return -1;
  }
}

static BinaryOp binaryOpFor(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return BinaryOp::Or;
  case TokenKind::AmpAmp:
    return BinaryOp::And;
  case TokenKind::EqEq:
    return BinaryOp::Eq;
  case TokenKind::NotEq:
    return BinaryOp::Ne;
  case TokenKind::Less:
    return BinaryOp::Lt;
  case TokenKind::Greater:
    return BinaryOp::Gt;
  case TokenKind::LessEq:
    return BinaryOp::Le;
  case TokenKind::GreaterEq:
    return BinaryOp::Ge;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Rem;
  default:
    assert(false && "not a binary operator");
    return BinaryOp::Add;
  }
}

Expr *Parser::parseExpr() {
  Expr *LHS = parseUnary();
  if (!LHS)
    return nullptr;
  return parseBinaryRHS(1, LHS);
}

Expr *Parser::parseBinaryRHS(int MinPrec, Expr *LHS) {
  while (true) {
    int Prec = binaryPrecedence(cur().Kind);
    if (Prec < MinPrec)
      return LHS;
    TokenKind OpKind = cur().Kind;
    SourceLoc OpLoc = cur().Loc;
    consume();
    Expr *RHS = parseUnary();
    if (!RHS)
      return nullptr;
    int NextPrec = binaryPrecedence(cur().Kind);
    if (NextPrec > Prec) {
      RHS = parseBinaryRHS(Prec + 1, RHS);
      if (!RHS)
        return nullptr;
    }
    LHS = Ctx.create<BinaryExpr>(binaryOpFor(OpKind), LHS, RHS, OpLoc);
  }
}

Expr *Parser::parseUnary() {
  // The depth guard lives here rather than in parseExpr: unary chains
  // (`!!…!x`) recurse through parseUnary directly, and every other
  // expression recursion (parens, calls, indices) passes through it too.
  DepthGuard Guard(Depth);
  if (atMaxDepth(cur().Loc))
    return nullptr;
  if (cur().is(TokenKind::Minus)) {
    SourceLoc Loc = cur().Loc;
    consume();
    Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Ctx.create<UnaryExpr>(UnaryOp::Neg, Operand, Loc);
  }
  if (cur().is(TokenKind::Not)) {
    SourceLoc Loc = cur().Loc;
    consume();
    Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Ctx.create<UnaryExpr>(UnaryOp::Not, Operand, Loc);
  }
  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  if (!E)
    return nullptr;
  while (true) {
    if (cur().is(TokenKind::Dot)) {
      SourceLoc Loc = cur().Loc;
      consume();
      if (!cur().is(TokenKind::Identifier)) {
        Diags.error(cur().Loc, "expected member name after '.'");
        return nullptr;
      }
      std::string Member = cur().Spelling;
      consume();
      E = Ctx.create<MemberExpr>(E, std::move(Member), Loc);
      continue;
    }
    if (cur().is(TokenKind::LBracket)) {
      SourceLoc Loc = cur().Loc;
      consume();
      Expr *Index = parseExpr();
      if (!Index || !expect(TokenKind::RBracket, "index expression"))
        return nullptr;
      E = Ctx.create<IndexExpr>(E, Index, Loc);
      continue;
    }
    return E;
  }
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::IntLiteral: {
    int64_t V = cur().IntValue;
    consume();
    return Ctx.create<IntLitExpr>(V, Loc);
  }
  case TokenKind::FloatLiteral: {
    double V = cur().FloatValue;
    consume();
    return Ctx.create<FloatLitExpr>(V, Loc);
  }
  case TokenKind::StringLiteral: {
    std::string V = cur().Spelling;
    consume();
    return Ctx.create<StringLitExpr>(std::move(V), Loc);
  }
  case TokenKind::KwTrue:
    consume();
    return Ctx.create<BoolLitExpr>(true, Loc);
  case TokenKind::KwFalse:
    consume();
    return Ctx.create<BoolLitExpr>(false, Loc);
  case TokenKind::Identifier: {
    std::string Name = cur().Spelling;
    consume();
    if (cur().is(TokenKind::LParen)) {
      consume();
      std::vector<Expr *> Args;
      if (!cur().is(TokenKind::RParen)) {
        while (true) {
          Expr *Arg = parseExpr();
          if (!Arg)
            return nullptr;
          Args.push_back(Arg);
          if (!consumeIf(TokenKind::Comma))
            break;
        }
      }
      if (!expect(TokenKind::RParen, "call expression"))
        return nullptr;
      return Ctx.create<CallExpr>(std::move(Name), std::move(Args), Loc);
    }
    return Ctx.create<IdentExpr>(std::move(Name), Loc);
  }
  case TokenKind::LParen: {
    consume();
    Expr *E = parseExpr();
    if (!E || !expect(TokenKind::RParen, "parenthesized expression"))
      return nullptr;
    return E;
  }
  case TokenKind::KwInt:
  case TokenKind::KwFloat:
  case TokenKind::KwBool:
  case TokenKind::KwString: {
    // Conversion calls spell the type keyword: int(x), float(x), str-like.
    std::string Name = cur().is(TokenKind::KwInt)     ? "int"
                       : cur().is(TokenKind::KwFloat) ? "float"
                       : cur().is(TokenKind::KwBool)  ? "bool"
                                                      : "string";
    consume();
    if (!expect(TokenKind::LParen, "conversion call"))
      return nullptr;
    Expr *Arg = parseExpr();
    if (!Arg || !expect(TokenKind::RParen, "conversion call"))
      return nullptr;
    return Ctx.create<CallExpr>(std::move(Name), std::vector<Expr *>{Arg},
                                Loc);
  }
  case TokenKind::KwNew: {
    consume();
    if (!expect(TokenKind::KwInstance, "new-instance expression"))
      return nullptr;
    if (!expect(TokenKind::LBracket, "new-instance expression"))
      return nullptr;
    Expr *Size = parseExpr();
    if (!Size || !expect(TokenKind::RBracket, "new-instance expression"))
      return nullptr;
    if (!expect(TokenKind::LParen, "new-instance expression"))
      return nullptr;
    if (!cur().is(TokenKind::Identifier)) {
      Diags.error(cur().Loc, "expected module name in new-instance expression");
      return nullptr;
    }
    std::string ModuleName = cur().Spelling;
    consume();
    if (!expect(TokenKind::Comma, "new-instance expression"))
      return nullptr;
    Expr *NameExpr = parseExpr();
    if (!NameExpr || !expect(TokenKind::RParen, "new-instance expression"))
      return nullptr;
    return Ctx.create<NewInstanceArrayExpr>(Size, std::move(ModuleName),
                                            NameExpr, Loc);
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(cur().Kind));
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Type expressions
//===----------------------------------------------------------------------===//

TypeExpr *Parser::parseTypeExpr() {
  DepthGuard Guard(Depth);
  if (atMaxDepth(cur().Loc))
    return nullptr;
  SourceLoc Loc = cur().Loc;
  TypeExpr *First = parseTypePostfix();
  if (!First)
    return nullptr;
  if (!cur().is(TokenKind::Pipe))
    return First;
  std::vector<TypeExpr *> Alts;
  Alts.push_back(First);
  while (consumeIf(TokenKind::Pipe)) {
    TypeExpr *Alt = parseTypePostfix();
    if (!Alt)
      return nullptr;
    Alts.push_back(Alt);
  }
  return Ctx.create<DisjunctTypeExpr>(std::move(Alts), Loc);
}

TypeExpr *Parser::parseTypePostfix() {
  TypeExpr *T = parseTypeAtom();
  if (!T)
    return nullptr;
  while (cur().is(TokenKind::LBracket)) {
    SourceLoc Loc = cur().Loc;
    consume();
    Expr *Size = nullptr;
    if (!cur().is(TokenKind::RBracket)) {
      Size = parseExpr();
      if (!Size)
        return nullptr;
    }
    if (!expect(TokenKind::RBracket, "array type"))
      return nullptr;
    T = Ctx.create<ArrayTypeExpr>(T, Size, Loc);
  }
  return T;
}

TypeExpr *Parser::parseTypeAtom() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::KwInt:
    consume();
    return Ctx.create<BasicTypeExpr>(BasicTypeExpr::Basic::Int, Loc);
  case TokenKind::KwBool:
    consume();
    return Ctx.create<BasicTypeExpr>(BasicTypeExpr::Basic::Bool, Loc);
  case TokenKind::KwFloat:
    consume();
    return Ctx.create<BasicTypeExpr>(BasicTypeExpr::Basic::Float, Loc);
  case TokenKind::KwString:
    consume();
    return Ctx.create<BasicTypeExpr>(BasicTypeExpr::Basic::String, Loc);
  case TokenKind::TypeVar: {
    std::string Name = cur().Spelling;
    consume();
    return Ctx.create<VarTypeExpr>(std::move(Name), Loc);
  }
  case TokenKind::KwStruct: {
    consume();
    if (!expect(TokenKind::LBrace, "struct type"))
      return nullptr;
    std::vector<StructTypeExpr::Field> Fields;
    while (!cur().is(TokenKind::RBrace) && !cur().is(TokenKind::Eof)) {
      if (!cur().is(TokenKind::Identifier)) {
        Diags.error(cur().Loc, "expected field name in struct type");
        return nullptr;
      }
      std::string FieldName = cur().Spelling;
      consume();
      if (!expect(TokenKind::Colon, "struct type"))
        return nullptr;
      TypeExpr *FieldTy = parseTypeExpr();
      if (!FieldTy)
        return nullptr;
      Fields.emplace_back(std::move(FieldName), FieldTy);
      if (!consumeIf(TokenKind::Semicolon))
        break;
    }
    if (!expect(TokenKind::RBrace, "struct type"))
      return nullptr;
    return Ctx.create<StructTypeExpr>(std::move(Fields), Loc);
  }
  case TokenKind::KwInstance: {
    consume();
    if (!expect(TokenKind::KwRef, "instance-ref type"))
      return nullptr;
    return Ctx.create<InstanceRefTypeExpr>(Loc);
  }
  case TokenKind::LParen: {
    consume();
    TypeExpr *T = parseTypeExpr();
    if (!T || !expect(TokenKind::RParen, "parenthesized type"))
      return nullptr;
    return T;
  }
  default:
    Diags.error(Loc, std::string("expected type, found ") +
                         tokenKindName(cur().Kind));
    return nullptr;
  }
}
