//===- AST.h - LSS abstract syntax tree -------------------------*- C++ -*-===//
///
/// \file
/// AST for the Liberty Structural Specification Language. Nodes are
/// kind-tagged (LLVM-style `classof`) and owned by an ASTContext arena.
///
/// The same expression/statement nodes serve two roles:
///  - LSS module bodies, evaluated at *compile time* by the elaboration
///    interpreter (src/interp), and
///  - BSL userpoint bodies, evaluated at *simulation time* by the mini-BSL
///    engine (src/bsl). `return` statements are only legal in the latter.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_LSS_AST_H
#define LIBERTY_LSS_AST_H

#include "support/SourceMgr.h"

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace liberty {
namespace lss {

class Expr;
class Stmt;

/// Root of the AST class hierarchy; exists only so the ASTContext arena can
/// own heterogeneous nodes.
class ASTNode {
public:
  virtual ~ASTNode();
};

//===----------------------------------------------------------------------===//
// Type expressions
//===----------------------------------------------------------------------===//

/// Syntactic type annotation (the paper's "type scheme" grammar, Section 5):
///   t* ::= int | bool | float | string | 'a | t*[n] | struct{...}
///        | (t1*|...|tn*) | instance ref
class TypeExpr : public ASTNode {
public:
  enum class Kind { Basic, Var, Array, Struct, Disjunct, InstanceRef };

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }

  void print(std::ostream &OS) const;

protected:
  TypeExpr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

/// One of the built-in ground types.
class BasicTypeExpr : public TypeExpr {
public:
  enum class Basic { Int, Bool, Float, String };

  BasicTypeExpr(Basic B, SourceLoc Loc)
      : TypeExpr(Kind::Basic, Loc), B(B) {}

  Basic getBasicKind() const { return B; }

  static bool classof(const TypeExpr *T) { return T->getKind() == Kind::Basic; }

private:
  Basic B;
};

/// A type variable, e.g. 'a. The spelling excludes the leading quote.
class VarTypeExpr : public TypeExpr {
public:
  VarTypeExpr(std::string Name, SourceLoc Loc)
      : TypeExpr(Kind::Var, Loc), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  static bool classof(const TypeExpr *T) { return T->getKind() == Kind::Var; }

private:
  std::string Name;
};

/// An array type t[n]. The size expression may be null ("[]"), meaning the
/// extent is determined elsewhere (e.g. an instance-ref array sized by use).
class ArrayTypeExpr : public TypeExpr {
public:
  ArrayTypeExpr(TypeExpr *Elem, Expr *SizeExpr, SourceLoc Loc)
      : TypeExpr(Kind::Array, Loc), Elem(Elem), SizeExpr(SizeExpr) {}

  TypeExpr *getElem() const { return Elem; }
  Expr *getSizeExpr() const { return SizeExpr; }

  static bool classof(const TypeExpr *T) { return T->getKind() == Kind::Array; }

private:
  TypeExpr *Elem;
  Expr *SizeExpr;
};

/// struct { i1 : t1; ...; in : tn; }
class StructTypeExpr : public TypeExpr {
public:
  using Field = std::pair<std::string, TypeExpr *>;

  StructTypeExpr(std::vector<Field> Fields, SourceLoc Loc)
      : TypeExpr(Kind::Struct, Loc), Fields(std::move(Fields)) {}

  const std::vector<Field> &getFields() const { return Fields; }

  static bool classof(const TypeExpr *T) {
    return T->getKind() == Kind::Struct;
  }

private:
  std::vector<Field> Fields;
};

/// A disjunctive type scheme (t1 | ... | tn): the entity must statically
/// take exactly one of the alternatives (component overloading, Section 4.4).
class DisjunctTypeExpr : public TypeExpr {
public:
  DisjunctTypeExpr(std::vector<TypeExpr *> Alts, SourceLoc Loc)
      : TypeExpr(Kind::Disjunct, Loc), Alts(std::move(Alts)) {}

  const std::vector<TypeExpr *> &getAlternatives() const { return Alts; }

  static bool classof(const TypeExpr *T) {
    return T->getKind() == Kind::Disjunct;
  }

private:
  std::vector<TypeExpr *> Alts;
};

/// The elaboration-time type `instance ref` used for variables holding
/// sub-instances (Figure 8, line 7).
class InstanceRefTypeExpr : public TypeExpr {
public:
  explicit InstanceRefTypeExpr(SourceLoc Loc)
      : TypeExpr(Kind::InstanceRef, Loc) {}

  static bool classof(const TypeExpr *T) {
    return T->getKind() == Kind::InstanceRef;
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  And,
  Or,
};

enum class UnaryOp { Neg, Not };

const char *binaryOpName(BinaryOp Op);

class Expr : public ASTNode {
public:
  enum class Kind {
    IntLit,
    FloatLit,
    StringLit,
    BoolLit,
    Ident,
    Member,
    Index,
    Call,
    NewInstanceArray,
    Unary,
    Binary,
  };

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }

  void print(std::ostream &OS) const;

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}

  int64_t getValue() const { return Value; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }

private:
  int64_t Value;
};

class FloatLitExpr : public Expr {
public:
  FloatLitExpr(double Value, SourceLoc Loc)
      : Expr(Kind::FloatLit, Loc), Value(Value) {}

  double getValue() const { return Value; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::FloatLit; }

private:
  double Value;
};

class StringLitExpr : public Expr {
public:
  StringLitExpr(std::string Value, SourceLoc Loc)
      : Expr(Kind::StringLit, Loc), Value(std::move(Value)) {}

  const std::string &getValue() const { return Value; }

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::StringLit;
  }

private:
  std::string Value;
};

class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, SourceLoc Loc)
      : Expr(Kind::BoolLit, Loc), Value(Value) {}

  bool getValue() const { return Value; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::BoolLit; }

private:
  bool Value;
};

class IdentExpr : public Expr {
public:
  IdentExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::Ident, Loc), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Ident; }

private:
  std::string Name;
};

/// base.field — sub-instance parameter/port access, or port attributes such
/// as `in.width`.
class MemberExpr : public Expr {
public:
  MemberExpr(Expr *Base, std::string Member, SourceLoc Loc)
      : Expr(Kind::Member, Loc), Base(Base), Member(std::move(Member)) {}

  Expr *getBase() const { return Base; }
  const std::string &getMember() const { return Member; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Member; }

private:
  Expr *Base;
  std::string Member;
};

/// base[index] — array element or port-instance selection.
class IndexExpr : public Expr {
public:
  IndexExpr(Expr *Base, Expr *Index, SourceLoc Loc)
      : Expr(Kind::Index, Loc), Base(Base), Index(Index) {}

  Expr *getBase() const { return Base; }
  Expr *getIndex() const { return Index; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Index; }

private:
  Expr *Base;
  Expr *Index;
};

/// callee(arg, ...) — builtins such as LSS_connect_bus and the BSL library.
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<Expr *> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &getCallee() const { return Callee; }
  const std::vector<Expr *> &getArgs() const { return Args; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<Expr *> Args;
};

/// new instance[n](module, "basename") — creates an array of sub-instances
/// (Figure 8, line 8).
class NewInstanceArrayExpr : public Expr {
public:
  NewInstanceArrayExpr(Expr *SizeExpr, std::string ModuleName, Expr *NameExpr,
                       SourceLoc Loc)
      : Expr(Kind::NewInstanceArray, Loc), SizeExpr(SizeExpr),
        ModuleName(std::move(ModuleName)), NameExpr(NameExpr) {}

  Expr *getSizeExpr() const { return SizeExpr; }
  const std::string &getModuleName() const { return ModuleName; }
  Expr *getNameExpr() const { return NameExpr; }

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::NewInstanceArray;
  }

private:
  Expr *SizeExpr;
  std::string ModuleName;
  Expr *NameExpr;
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, Expr *Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(Operand) {}

  UnaryOp getOp() const { return Op; }
  Expr *getOperand() const { return Operand; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  UnaryOp Op;
  Expr *Operand;
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, Expr *LHS, Expr *RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOp getOp() const { return Op; }
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt : public ASTNode {
public:
  enum class Kind {
    ParamDecl,
    PortDecl,
    InstanceDecl,
    VarDecl,
    EventDecl,
    Constrain,
    If,
    For,
    While,
    Block,
    Assign,
    Connect,
    ExprStmt,
    Return,
    Break,
    Continue,
  };

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }

  void print(std::ostream &OS, unsigned Indent = 0) const;

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

/// Signature of a userpoint parameter:
///   userpoint(arg1:t1, arg2:t2 => tr)
struct UserpointSig {
  std::vector<std::pair<std::string, TypeExpr *>> Args;
  TypeExpr *Ret = nullptr;
};

/// parameter NAME : TYPE;           (required, no default)
/// parameter NAME = EXPR : TYPE;    (with default, Figure 5 syntax)
/// parameter NAME : TYPE = EXPR;    (accepted alternative)
/// parameter NAME : userpoint(... => t) [= "bsl code"];
class ParamDeclStmt : public Stmt {
public:
  ParamDeclStmt(std::string Name, TypeExpr *Ty, Expr *Default,
                std::unique_ptr<UserpointSig> Sig, SourceLoc Loc)
      : Stmt(Kind::ParamDecl, Loc), Name(std::move(Name)), Ty(Ty),
        Default(Default), Sig(std::move(Sig)) {}

  const std::string &getName() const { return Name; }
  TypeExpr *getType() const { return Ty; }
  Expr *getDefault() const { return Default; }
  bool isUserpoint() const { return Sig != nullptr; }
  const UserpointSig *getUserpointSig() const { return Sig.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::ParamDecl; }

private:
  std::string Name;
  TypeExpr *Ty;
  Expr *Default;
  std::unique_ptr<UserpointSig> Sig;
};

/// inport NAME : TYPE;  /  outport NAME : TYPE;
class PortDeclStmt : public Stmt {
public:
  PortDeclStmt(bool IsInput, std::string Name, TypeExpr *Ty, SourceLoc Loc)
      : Stmt(Kind::PortDecl, Loc), IsInput(IsInput), Name(std::move(Name)),
        Ty(Ty) {}

  bool isInput() const { return IsInput; }
  const std::string &getName() const { return Name; }
  TypeExpr *getType() const { return Ty; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::PortDecl; }

private:
  bool IsInput;
  std::string Name;
  TypeExpr *Ty;
};

/// instance NAME : MODULE;
class InstanceDeclStmt : public Stmt {
public:
  InstanceDeclStmt(std::string Name, std::string ModuleName, SourceLoc Loc)
      : Stmt(Kind::InstanceDecl, Loc), Name(std::move(Name)),
        ModuleName(std::move(ModuleName)) {}

  const std::string &getName() const { return Name; }
  const std::string &getModuleName() const { return ModuleName; }

  static bool classof(const Stmt *S) {
    return S->getKind() == Kind::InstanceDecl;
  }

private:
  std::string Name;
  std::string ModuleName;
};

/// var NAME : TYPE [= EXPR];          (elaboration-time variable)
/// runtime var NAME : TYPE [= EXPR];  (simulation-time state, Section 4.3)
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(std::string Name, TypeExpr *Ty, Expr *Init, bool IsRuntime,
              SourceLoc Loc)
      : Stmt(Kind::VarDecl, Loc), Name(std::move(Name)), Ty(Ty), Init(Init),
        IsRuntime(IsRuntime) {}

  const std::string &getName() const { return Name; }
  TypeExpr *getType() const { return Ty; }
  Expr *getInit() const { return Init; }
  bool isRuntime() const { return IsRuntime; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::VarDecl; }

private:
  std::string Name;
  TypeExpr *Ty;
  Expr *Init;
  bool IsRuntime;
};

/// event NAME;  — a declared instrumentation join point (Section 4.5).
class EventDeclStmt : public Stmt {
public:
  EventDeclStmt(std::string Name, SourceLoc Loc)
      : Stmt(Kind::EventDecl, Loc), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::EventDecl; }

private:
  std::string Name;
};

/// constrain 'a : (t1|t2|...);  — adds a module-level type constraint tying
/// a type variable to a disjunctive scheme (component overloading).
class ConstrainStmt : public Stmt {
public:
  ConstrainStmt(std::string VarName, TypeExpr *Scheme, SourceLoc Loc)
      : Stmt(Kind::Constrain, Loc), VarName(std::move(VarName)),
        Scheme(Scheme) {}

  const std::string &getVarName() const { return VarName; }
  TypeExpr *getScheme() const { return Scheme; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Constrain; }

private:
  std::string VarName;
  TypeExpr *Scheme;
};

class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<Stmt *> Body, SourceLoc Loc)
      : Stmt(Kind::Block, Loc), Body(std::move(Body)) {}

  const std::vector<Stmt *> &getBody() const { return Body; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Block; }

private:
  std::vector<Stmt *> Body;
};

class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}

  Expr *getCond() const { return Cond; }
  Stmt *getThen() const { return Then; }
  Stmt *getElse() const { return Else; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

class ForStmt : public Stmt {
public:
  ForStmt(Stmt *Init, Expr *Cond, Stmt *Step, Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::For, Loc), Init(Init), Cond(Cond), Step(Step), Body(Body) {}

  Stmt *getInit() const { return Init; }
  Expr *getCond() const { return Cond; }
  Stmt *getStep() const { return Step; }
  Stmt *getBody() const { return Body; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::For; }

private:
  Stmt *Init;
  Expr *Cond;
  Stmt *Step;
  Stmt *Body;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(Body) {}

  Expr *getCond() const { return Cond; }
  Stmt *getBody() const { return Body; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

/// LHS = RHS;  — variable assignment, sub-instance parameter assignment,
/// or internal-parameter definition (e.g. tar_file = "...").
class AssignStmt : public Stmt {
public:
  AssignStmt(Expr *LHS, Expr *RHS, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), LHS(LHS), RHS(RHS) {}

  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

private:
  Expr *LHS;
  Expr *RHS;
};

/// FROM -> TO [: TYPE];  — a structural connection, optionally annotated
/// with a type scheme (Section 5).
class ConnectStmt : public Stmt {
public:
  ConnectStmt(Expr *From, Expr *To, TypeExpr *Annotation, SourceLoc Loc)
      : Stmt(Kind::Connect, Loc), From(From), To(To), Annotation(Annotation) {}

  Expr *getFrom() const { return From; }
  Expr *getTo() const { return To; }
  TypeExpr *getAnnotation() const { return Annotation; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Connect; }

private:
  Expr *From;
  Expr *To;
  TypeExpr *Annotation;
};

class ExprStmt : public Stmt {
public:
  ExprStmt(Expr *E, SourceLoc Loc) : Stmt(Kind::ExprStmt, Loc), E(E) {}

  Expr *getExpr() const { return E; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::ExprStmt; }

private:
  Expr *E;
};

/// return [EXPR];  — legal only inside BSL userpoint bodies.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(Expr *Value, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(Value) {}

  Expr *getValue() const { return Value; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }

private:
  Expr *Value;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Continue; }
};

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

/// module NAME { ... };
class ModuleDecl : public ASTNode {
public:
  ModuleDecl(std::string Name, std::vector<Stmt *> Body, SourceLoc Loc)
      : Name(std::move(Name)), Body(std::move(Body)), Loc(Loc) {}

  const std::string &getName() const { return Name; }
  const std::vector<Stmt *> &getBody() const { return Body; }
  SourceLoc getLoc() const { return Loc; }

private:
  std::string Name;
  std::vector<Stmt *> Body;
  SourceLoc Loc;
};

/// A parsed LSS compilation: module declarations plus the top-level
/// statement list S0 (the system description).
struct SpecFile {
  std::vector<ModuleDecl *> Modules;
  std::vector<Stmt *> TopLevel;
};

/// Arena owning every AST node of a compilation.
class ASTContext {
public:
  template <typename T, typename... Args> T *create(Args &&...As) {
    auto Node = std::make_unique<T>(std::forward<Args>(As)...);
    T *Ptr = Node.get();
    Nodes.push_back(std::move(Node));
    return Ptr;
  }

private:
  std::vector<std::unique_ptr<ASTNode>> Nodes;
};

} // namespace lss
} // namespace liberty

#endif // LIBERTY_LSS_AST_H
