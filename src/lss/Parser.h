//===- Parser.h - LSS recursive-descent parser ------------------*- C++ -*-===//
///
/// \file
/// Parser for LSS specification files and for BSL userpoint bodies (which
/// share the statement/expression grammar plus `return`).
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_LSS_PARSER_H
#define LIBERTY_LSS_PARSER_H

#include "lss/AST.h"
#include "lss/Lexer.h"

namespace liberty {
namespace lss {

class Parser {
public:
  /// Parses buffer \p BufferId into \p Ctx. AST nodes live as long as Ctx.
  Parser(uint32_t BufferId, ASTContext &Ctx, DiagnosticEngine &Diags);

  /// Parses a whole LSS file: module declarations + top-level statements.
  /// On error, diagnostics are reported and the returned SpecFile contains
  /// whatever parsed successfully.
  SpecFile parseFile();

  /// Parses a BSL userpoint body: a bare statement list (with `return`).
  std::vector<Stmt *> parseBslBody();

private:
  // Token management.
  const Token &cur() const { return CurTok; }
  void consume();
  bool consumeIf(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void skipToRecoveryPoint();
  void ensureProgress(unsigned NumConsumedBefore);
  bool atMaxDepth(SourceLoc Loc);

  // Grammar productions.
  ModuleDecl *parseModuleDecl();
  Stmt *parseStmt();
  Stmt *parseParamDecl();
  Stmt *parsePortDecl(bool IsInput);
  Stmt *parseInstanceDecl();
  Stmt *parseVarDecl(bool IsRuntime);
  Stmt *parseEventDecl();
  Stmt *parseConstrain();
  Stmt *parseIf();
  Stmt *parseFor();
  Stmt *parseWhile();
  Stmt *parseBlock();
  Stmt *parseReturn();
  /// Assignment / connection / expression statement (shared by `for` headers
  /// which omit the trailing semicolon).
  Stmt *parseSimpleStmt(bool RequireSemicolon);

  Expr *parseExpr();
  Expr *parseBinaryRHS(int MinPrec, Expr *LHS);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();

  TypeExpr *parseTypeExpr();
  TypeExpr *parseTypePostfix();
  TypeExpr *parseTypeAtom();

  std::unique_ptr<UserpointSig> parseUserpointSig();

  ASTContext &Ctx;
  DiagnosticEngine &Diags;
  Lexer Lex;
  Token CurTok;
  /// Tokens consumed so far — the parse loops' forward-progress witness.
  unsigned NumConsumed = 0;
  /// Current recursion depth across the statement/expression/type
  /// productions. Recursive descent uses the call stack, so input nesting
  /// is capped (see atMaxDepth) to keep adversarial inputs from
  /// overflowing it.
  unsigned Depth = 0;
};

} // namespace lss
} // namespace liberty

#endif // LIBERTY_LSS_PARSER_H
