//===- OopSim.cpp - Structural-OOP baseline -----------------------------------===//

#include "baseline/OopSim.h"

using namespace liberty;
using namespace liberty::baseline::oop;

Component::~Component() = default;

Component *Engine::add(std::unique_ptr<Component> C) {
  Components.push_back(std::move(C));
  return Components.back().get();
}

void Engine::reset() {
  Cycle = 0;
  Evaluations = 0;
  for (auto &C : Components)
    C->init();
}

void Engine::step(uint64_t N) {
  for (uint64_t I = 0; I != N; ++I) {
    for (auto &Clear : Clearers)
      Clear();
    // Without static structure there is no schedule: sweep repeatedly so
    // values propagate through combinational chains.
    for (unsigned Sweep = 0; Sweep != MaxSweeps; ++Sweep) {
      for (auto &C : Components) {
        C->evaluate();
        ++Evaluations;
      }
    }
    for (auto &C : Components)
      C->endOfTimestep();
    ++Cycle;
  }
}
