//===- HandCodedSim.cpp - Hand-coded reference simulator ----------------------===//

#include "baseline/HandCodedSim.h"

#include "corelib/TraceGen.h"

#include <deque>
#include <optional>
#include <set>
#include <vector>

using namespace liberty;
using namespace liberty::baseline;
using corelib::MicroInstr;
using corelib::TraceGen;

namespace {

/// One functional unit's pipeline, mirroring corelib/fu exactly.
struct FuState {
  std::deque<std::pair<MicroInstr, int64_t>> Pipe;
  int EmittedIdx = -1;
  std::optional<MicroInstr> DoneNet;
  bool BusyNet = false;
};

} // namespace

PipelineResult
liberty::baseline::runHandCodedPipeline(const PipelineConfig &Config) {
  TraceGen Gen(Config.Seed, Config.MemFrac, Config.BranchFrac);

  // Architectural state mirroring each LSS component behavior.
  int64_t FetchRemaining = Config.NumInstrs;
  bool FetchStalledLast = false;
  std::vector<std::optional<MicroInstr>> DecodeHeld(Config.FetchWidth);
  std::deque<MicroInstr> Window;
  std::multiset<int64_t> BusyRegs;
  std::vector<bool> FuBusyState(Config.NumFus, false);
  std::vector<FuState> Fus(Config.NumFus);
  uint64_t Retired = 0;

  PipelineResult Result;
  for (uint64_t Cycle = 0; Cycle != Config.MaxCycles; ++Cycle) {
    // ---- Combinational phase: produce this cycle's net values. ----
    // fetch
    std::vector<std::optional<MicroInstr>> FetchNet(Config.FetchWidth);
    if (!FetchStalledLast && FetchRemaining > 0)
      for (int I = 0; I != Config.FetchWidth && FetchRemaining > 0; ++I) {
        FetchNet[I] = Gen.next();
        --FetchRemaining;
      }
    // decode
    std::vector<std::optional<MicroInstr>> UopNet = DecodeHeld;
    // issue (dispatch from state; mutates window and scoreboard)
    std::vector<std::optional<MicroInstr>> DispatchNet(Config.NumFus);
    {
      std::vector<bool> FuUsed = FuBusyState;
      std::vector<bool> Issued(Window.size(), false);
      for (size_t W = 0; W != Window.size(); ++W) {
        const MicroInstr &MI = Window[W];
        bool Ready = !BusyRegs.count(MI.Src1) && !BusyRegs.count(MI.Src2);
        if (!Ready) {
          if (Config.InOrder)
            break;
          continue;
        }
        int Fu = -1;
        for (int F = 0; F != Config.NumFus; ++F)
          if (!FuUsed[F]) {
            Fu = F;
            break;
          }
        if (Fu < 0) {
          if (Config.InOrder)
            break;
          continue;
        }
        FuUsed[Fu] = true;
        Issued[W] = true;
        DispatchNet[Fu] = MI;
      }
      std::deque<MicroInstr> Rest;
      for (size_t W = 0; W != Window.size(); ++W) {
        if (Issued[W])
          BusyRegs.insert(Window[W].Dest);
        else
          Rest.push_back(Window[W]);
      }
      Window.swap(Rest);
    }
    bool StallNet = Window.size() >= static_cast<size_t>(Config.WindowSize);
    // fus
    for (FuState &F : Fus) {
      F.EmittedIdx = -1;
      F.DoneNet.reset();
      for (size_t I = 0; I != F.Pipe.size(); ++I) {
        if (F.Pipe[I].second != 0)
          continue;
        F.DoneNet = F.Pipe[I].first;
        F.EmittedIdx = static_cast<int>(I);
        break;
      }
      F.BusyNet = Config.FuPipelined
                      ? F.Pipe.size() >=
                            static_cast<size_t>(Config.FuLatency + 2)
                      : !F.Pipe.empty();
    }

    // ---- Sequential phase: absorb this cycle's nets. ----
    FetchStalledLast = StallNet;
    for (int I = 0; I != Config.FetchWidth; ++I)
      DecodeHeld[I] = FetchNet[I];
    for (const FuState &F : Fus)
      if (F.DoneNet) {
        auto It = BusyRegs.find(F.DoneNet->Dest);
        if (It != BusyRegs.end())
          BusyRegs.erase(It);
      }
    for (int F = 0; F != Config.NumFus; ++F)
      FuBusyState[F] = Fus[F].BusyNet;
    for (int I = 0; I != Config.FetchWidth; ++I)
      if (UopNet[I])
        Window.push_back(*UopNet[I]);
    for (int F = 0; F != Config.NumFus; ++F) {
      FuState &Fu = Fus[F];
      if (Fu.EmittedIdx >= 0)
        Fu.Pipe.erase(Fu.Pipe.begin() + Fu.EmittedIdx);
      for (auto &[MI, Remaining] : Fu.Pipe)
        if (Remaining > 0)
          --Remaining;
      if (DispatchNet[F]) {
        int64_t Lat = std::max<int64_t>(Config.FuLatency, DispatchNet[F]->Lat);
        Fu.Pipe.emplace_back(*DispatchNet[F], Lat - 1);
      }
      if (Fu.DoneNet)
        ++Retired;
    }

    Result.Cycles = Cycle + 1;
    Result.Retired = Retired;
    if (Retired >= static_cast<uint64_t>(Config.NumInstrs))
      break;
  }
  return Result;
}

int64_t liberty::baseline::runHandCodedDelayChain(int Stages,
                                                  uint64_t Cycles) {
  std::vector<int64_t> Held(Stages, 0);
  int64_t SinkLast = 0;
  for (uint64_t C = 0; C != Cycles; ++C) {
    // Combinational phase: every delay drives its held value; the counter
    // source drives the cycle number; the sink observes the last stage.
    SinkLast = Held[Stages - 1];
    // Sequential phase, mirroring the generated simulator: each delay
    // latches its input net (the previous stage's *driven* value).
    for (int I = Stages - 1; I > 0; --I)
      Held[I] = Held[I - 1];
    Held[0] = static_cast<int64_t>(C);
  }
  return SinkLast;
}
