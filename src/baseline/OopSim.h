//===- OopSim.h - Structural-OOP baseline ------------------------*- C++ -*-===//
///
/// \file
/// The structural-OOP modeling baseline (paper Section 3.2, SystemC-style):
/// components are objects, structure is composed by *run-time* code, and
/// therefore nothing structural can be analyzed statically — port types
/// must be chosen by the user (template parameter), port-array extents
/// must be passed explicitly, and no static schedule exists (the engine
/// repeatedly sweeps all components to a fixpoint each cycle).
///
/// Used by bench_table1 (capability matrix), the Figure 3 test (delayn in
/// OOP style), and bench_simspeed.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_BASELINE_OOPSIM_H
#define LIBERTY_BASELINE_OOPSIM_H

#include "interp/Value.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace liberty {
namespace baseline {
namespace oop {

/// A typed wire. Structural-OOP systems fix the data type at object
/// construction; there is no inference.
template <typename T> class Signal {
public:
  bool hasValue() const { return Has; }
  const T &get() const { return V; }
  void set(const T &NewV) {
    V = NewV;
    Has = true;
  }
  void clear() { Has = false; }

private:
  T V{};
  bool Has = false;
};

class Component {
public:
  virtual ~Component();
  virtual void init() {}
  virtual void evaluate() = 0;
  virtual void endOfTimestep() {}
};

/// Run-time composition engine. No structure is known statically, so each
/// cycle sweeps every component until no signal changes (bounded passes) —
/// the cost Section 3.2 attributes to run-time composition.
class Engine {
public:
  /// Adds a component; the engine owns it.
  Component *add(std::unique_ptr<Component> C);

  /// Registers a signal for per-cycle clearing. The engine does not own it.
  template <typename T> void track(Signal<T> *S) {
    Clearers.push_back([S] { S->clear(); });
  }

  void reset();
  void step(uint64_t N = 1);
  uint64_t getCycle() const { return Cycle; }

  /// Number of evaluate() calls performed (to quantify the lack of a
  /// static schedule vs the LSS simulator).
  uint64_t getEvaluations() const { return Evaluations; }

  /// Upper bound on fixpoint sweeps per cycle.
  unsigned MaxSweeps = 4;

private:
  std::vector<std::unique_ptr<Component>> Components;
  std::vector<std::function<void()>> Clearers;
  uint64_t Cycle = 0;
  uint64_t Evaluations = 0;
};

//===----------------------------------------------------------------------===//
// A small OOP component library (what a SystemC user would hand-write)
//===----------------------------------------------------------------------===//

/// Single-cycle delay element, typed at construction.
template <typename T> class Delay : public Component {
public:
  Delay(Signal<T> *In, Signal<T> *Out, T Initial)
      : In(In), Out(Out), Held(Initial), Initial(Initial) {}

  void init() override { Held = Initial; }
  void evaluate() override { Out->set(Held); }
  void endOfTimestep() override {
    if (In->hasValue())
      Held = In->get();
  }

private:
  Signal<T> *In;
  Signal<T> *Out;
  T Held;
  T Initial;
};

/// Figure 3's delayn: an n-stage delay chain composed at run time. Note
/// everything LSS infers must be passed explicitly: the element type (as
/// the template parameter) and the stage count.
template <typename T> class DelayN : public Component {
public:
  DelayN(Engine &E, Signal<T> *In, Signal<T> *Out, int N, T Initial) {
    Signal<T> *Prev = In;
    for (int I = 0; I != N; ++I) {
      Signal<T> *Next = (I == N - 1) ? Out : makeWire(E);
      E.add(std::make_unique<Delay<T>>(Prev, Next, Initial));
      Prev = Next;
    }
  }
  void evaluate() override {} // Composition-only wrapper.

private:
  Signal<T> *makeWire(Engine &E) {
    Wires.push_back(std::make_unique<Signal<T>>());
    E.track(Wires.back().get());
    return Wires.back().get();
  }
  std::vector<std::unique_ptr<Signal<T>>> Wires;
};

/// Counter source for driving chains.
class CounterSource : public Component {
public:
  CounterSource(Signal<int64_t> *Out, Engine &E) : Out(Out), E(E) {}
  void evaluate() override { Out->set(static_cast<int64_t>(E.getCycle())); }

private:
  Signal<int64_t> *Out;
  Engine &E;
};

/// Terminal sink counting received values.
template <typename T> class Sink : public Component {
public:
  explicit Sink(Signal<T> *In) : In(In) {}
  void evaluate() override {}
  void endOfTimestep() override {
    if (In->hasValue()) {
      ++Received;
      Last = In->get();
    }
  }
  uint64_t getReceived() const { return Received; }
  const T &getLast() const { return Last; }

private:
  Signal<T> *In;
  uint64_t Received = 0;
  T Last{};
};

//===----------------------------------------------------------------------===//
// Generic (reusable) OOP components
//===----------------------------------------------------------------------===//
//
// The templates above are *custom* components: monomorphic, wired by
// pointer. A reusable component in a run-time-composed framework pays for
// its generality with boxed values and name-keyed port lookup (cf. the
// paper's discussion of Balboa and SystemC's channel interfaces). These
// classes model that cost so bench_simspeed can compare like with like:
// LSS-generated reusable components vs OOP reusable components.

namespace boxed {

using BoxedSignal = Signal<liberty::interp::Value>;

class BoxedComponent : public Component {
public:
  void bindPort(const std::string &Name, BoxedSignal *S) {
    Ports[Name] = S;
  }

protected:
  BoxedSignal *port(const std::string &Name) {
    auto It = Ports.find(Name);
    return It == Ports.end() ? nullptr : It->second;
  }

private:
  std::map<std::string, BoxedSignal *> Ports;
};

class BoxedDelay : public BoxedComponent {
public:
  explicit BoxedDelay(int64_t Initial)
      : Held(liberty::interp::Value::makeInt(Initial)), Initial(Initial) {}
  void init() override {
    Held = liberty::interp::Value::makeInt(Initial);
  }
  void evaluate() override {
    if (BoxedSignal *Out = port("out"))
      Out->set(Held);
  }
  void endOfTimestep() override {
    BoxedSignal *In = port("in");
    if (In && In->hasValue())
      Held = In->get();
  }

private:
  liberty::interp::Value Held;
  int64_t Initial;
};

class BoxedCounterSource : public BoxedComponent {
public:
  explicit BoxedCounterSource(Engine &E) : E(E) {}
  void evaluate() override {
    if (BoxedSignal *Out = port("out"))
      Out->set(liberty::interp::Value::makeInt(
          static_cast<int64_t>(E.getCycle())));
  }

private:
  Engine &E;
};

class BoxedSink : public BoxedComponent {
public:
  void evaluate() override {}
  void endOfTimestep() override {
    BoxedSignal *In = port("in");
    if (In && In->hasValue()) {
      ++Received;
      Last = In->get();
    }
  }
  uint64_t getReceived() const { return Received; }
  const liberty::interp::Value &getLast() const { return Last; }

private:
  uint64_t Received = 0;
  liberty::interp::Value Last;
};

} // namespace boxed

} // namespace oop
} // namespace baseline
} // namespace liberty

#endif // LIBERTY_BASELINE_OOPSIM_H
