//===- StaticNet.h - Static-structural baseline ------------------*- C++ -*-===//
///
/// \file
/// The static structural modeling baseline (paper Section 3.1): a netlist
/// is written out literally — every instance, every connection, every
/// parameter, every type — with no parametric or programmatic structure.
///
/// Two roles:
///  1. A tiny builder API showing what specifying a model in such a system
///     costs (used by the Table 1 capability bench and tests).
///  2. `emitFlatStaticSpec`, which flattens an elaborated LSS netlist into
///     the equivalent static specification text. Comparing its line count
///     against the LSS source reproduces Section 7's observation that the
///     LSS version of the SimpleScalar model was 35% smaller than the
///     static-structural version it replaced.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_BASELINE_STATICNET_H
#define LIBERTY_BASELINE_STATICNET_H

#include <string>

namespace liberty {

namespace netlist {
class Netlist;
}

namespace baseline {

/// Renders \p NL as a fully static structural specification: one line per
/// leaf instance, per parameter assignment, per explicit port type, and
/// per port-instance connection. Hierarchy is flattened away (a static
/// system has no parameterizable hierarchy to preserve).
std::string emitFlatStaticSpec(const netlist::Netlist &NL);

/// Number of newline-terminated, non-blank, non-comment lines in \p Text —
/// the specification-size metric used for the Table 3 comparison.
unsigned countSpecLines(const std::string &Text);

} // namespace baseline
} // namespace liberty

#endif // LIBERTY_BASELINE_STATICNET_H
