//===- StaticNet.cpp - Static-structural baseline -----------------------------===//

#include "baseline/StaticNet.h"

#include "lss/AST.h"
#include "netlist/Netlist.h"
#include "types/Type.h"

#include <sstream>

using namespace liberty;
using namespace liberty::baseline;

std::string liberty::baseline::emitFlatStaticSpec(const netlist::Netlist &NL) {
  std::ostringstream OS;
  OS << "// Static structural specification (flattened; no parametric "
        "structure)\n";

  for (const auto &Inst : NL.getInstances()) {
    if (Inst->ModuleName.empty() || !Inst->isLeaf())
      continue;
    OS << "instance " << Inst->Path << " : " << Inst->ModuleName
       << ";\n";
    for (const auto &[Name, V] : Inst->Params)
      OS << "set " << Inst->Path << "." << Name << " = " << V.str() << ";\n";
    for (const auto &[Name, UV] : Inst->Userpoints)
      OS << "set " << Inst->Path << "." << Name << " = <userpoint:"
         << UV.Code.size() << " chars>;\n";
    for (const netlist::Port &P : Inst->Ports) {
      // A static system cannot infer widths or types: both are explicit.
      OS << "setwidth " << Inst->Path << "." << P.Name << " = " << P.Width
         << ";\n";
      if (P.Resolved)
        OS << "settype " << Inst->Path << "." << P.Name << " : "
           << P.Resolved->str() << ";\n";
    }
  }

  // Flattened connections: walk each net down to leaf endpoints. Since the
  // netlist stores point-to-point connections (possibly through
  // hierarchical pass-through ports), emit them verbatim; pass-through
  // nodes become named junctions.
  for (const auto &Conn : NL.getConnections()) {
    if (!Conn->isFullyResolved())
      continue;
    OS << "connect " << Conn->From.Inst->Path << "." << Conn->From.Port << "["
       << Conn->From.Index << "] -> " << Conn->To.Inst->Path << "."
       << Conn->To.Port << "[" << Conn->To.Index << "];\n";
  }
  return OS.str();
}

unsigned liberty::baseline::countSpecLines(const std::string &Text) {
  unsigned N = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    // Trim and classify.
    size_t B = Pos, E = End;
    while (B < E && (Text[B] == ' ' || Text[B] == '\t'))
      ++B;
    while (E > B && (Text[E - 1] == ' ' || Text[E - 1] == '\t' ||
                     Text[E - 1] == '\r'))
      --E;
    bool Blank = (B == E);
    bool Comment = (E - B >= 2 && Text[B] == '/' && Text[B + 1] == '/');
    if (!Blank && !Comment)
      ++N;
    Pos = End + 1;
  }
  return N;
}
