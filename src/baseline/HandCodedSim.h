//===- HandCodedSim.h - Hand-coded reference simulator -----------*- C++ -*-===//
///
/// \file
/// A hand-coded C++ cycle simulator of the same µRISC pipeline timing
/// model that the LSS-built CPU models implement. It plays two roles from
/// the paper's evaluation:
///
///  - Validation (Model F "within a few percent of hardware CPI"): the
///    generated simulator's CPI is cross-checked against this independent
///    implementation of the same microarchitecture on the same trace.
///  - Simulation speed (Section 8: "reusable components ... at least as
///    fast as custom components"): this is the custom hand-written
///    comparator for bench_simspeed, alongside a hand-coded delay chain.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_BASELINE_HANDCODEDSIM_H
#define LIBERTY_BASELINE_HANDCODEDSIM_H

#include <cstdint>

namespace liberty {
namespace baseline {

/// Configuration mirroring the LSS model parameters.
struct PipelineConfig {
  int64_t NumInstrs = 1000;
  uint64_t Seed = 42;
  int MemFrac = 30;
  int BranchFrac = 15;
  int FetchWidth = 1;
  int WindowSize = 8;
  bool InOrder = true;
  int NumFus = 2;
  int64_t FuLatency = 1;
  bool FuPipelined = true;
  uint64_t MaxCycles = 1000000;
};

struct PipelineResult {
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
  double cpi() const { return Retired ? double(Cycles) / Retired : 0.0; }
};

/// Runs the hand-coded pipeline until all instructions retire (or
/// MaxCycles). Cycle-for-cycle equivalent to the LSS model built from
/// fetch/decode/issue/fu/rob corelib components.
PipelineResult runHandCodedPipeline(const PipelineConfig &Config);

/// Hand-coded n-stage integer delay chain driven by a cycle counter;
/// returns the sink's last received value after \p Cycles cycles (for
/// cross-checking and speed comparison with the LSS delayn model).
int64_t runHandCodedDelayChain(int Stages, uint64_t Cycles);

} // namespace baseline
} // namespace liberty

#endif // LIBERTY_BASELINE_HANDCODEDSIM_H
