//===- Models.h - The paper's models A-F -------------------------*- C++ -*-===//
///
/// \file
/// Loader and metadata for the six models of Table 3. The LSS sources live
/// in the repository's models/ directory (uarch.lss holds the shared
/// hierarchical components; <id>.lss the per-model system descriptions).
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_MODELS_MODELS_H
#define LIBERTY_MODELS_MODELS_H

#include <string>
#include <vector>

namespace liberty {

namespace driver {
class Compiler;
}

namespace models {

/// The model ids, in Table 3 order: "A" .. "F".
std::vector<std::string> modelIds();

/// Table 3's description of a model.
std::string modelDescription(const std::string &Id);

/// Absolute path of a model's LSS source file.
std::string modelLssPath(const std::string &Id);
/// Absolute path of the shared uarch.lss component file.
std::string uarchLssPath();

/// Loads the core library, the shared components, and the model's system
/// description into \p C. Does not elaborate.
bool loadModel(driver::Compiler &C, const std::string &Id);

/// Non-blank, non-comment line count of the model's own LSS source
/// (Table 3 / Section 7 size comparisons).
unsigned modelSourceLines(const std::string &Id);
/// Same for the shared uarch.lss file.
unsigned sharedSourceLines();

} // namespace models
} // namespace liberty

#endif // LIBERTY_MODELS_MODELS_H
