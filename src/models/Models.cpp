//===- Models.cpp - The paper's models A-F -------------------------------------===//

#include "models/Models.h"

#include "baseline/StaticNet.h"
#include "driver/Compiler.h"

#include <fstream>
#include <sstream>

using namespace liberty;
using namespace liberty::models;

#ifndef LIBERTY_MODELS_DIR
#define LIBERTY_MODELS_DIR "models"
#endif

std::vector<std::string> liberty::models::modelIds() {
  return {"A", "B", "C", "D", "E", "F"};
}

std::string liberty::models::modelDescription(const std::string &Id) {
  if (Id == "A")
    return "A Tomasulo-style machine for the DLX instruction set.";
  if (Id == "B")
    return "Same as A, but with a single issue window.";
  if (Id == "C")
    return "A model equivalent to the SimpleScalar simulator.";
  if (Id == "D")
    return "An out-of-order processor core for IA-64.";
  if (Id == "E")
    return "Two of the cores from D sharing a cache hierarchy.";
  if (Id == "F")
    return "A validated Itanium 2-style processor model.";
  return "(unknown model)";
}

std::string liberty::models::modelLssPath(const std::string &Id) {
  std::string Lower;
  for (char C : Id)
    Lower.push_back(static_cast<char>(std::tolower((unsigned char)C)));
  return std::string(LIBERTY_MODELS_DIR) + "/" + Lower + ".lss";
}

std::string liberty::models::uarchLssPath() {
  return std::string(LIBERTY_MODELS_DIR) + "/uarch.lss";
}

bool liberty::models::loadModel(driver::Compiler &C, const std::string &Id) {
  if (!C.addCoreLibrary())
    return false;
  if (!C.addFile(uarchLssPath()))
    return false;
  return C.addFile(modelLssPath(Id));
}

static unsigned countFileLines(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return 0;
  std::ostringstream SS;
  SS << In.rdbuf();
  return baseline::countSpecLines(SS.str());
}

unsigned liberty::models::modelSourceLines(const std::string &Id) {
  return countFileLines(modelLssPath(Id));
}

unsigned liberty::models::sharedSourceLines() {
  return countFileLines(uarchLssPath());
}
