//===- Synthetic.h - Synthetic inference workloads ---------------*- C++ -*-===//
///
/// \file
/// Constraint-system families for benchmarking and property-testing the
/// type-inference solver. Each family isolates one of the paper's three
/// heuristics: without the heuristic the search is exponential in the
/// family's size parameter; with it, (near-)linear.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_INFER_SYNTHETIC_H
#define LIBERTY_INFER_SYNTHETIC_H

#include "infer/InferenceEngine.h"

namespace liberty {
namespace netlist {
class Netlist;
}
namespace infer {

/// Shape parameters for buildSyntheticNetlist().
struct SyntheticNetlistSpec {
  /// Approximate number of leaf instances (rounded down to a multiple of
  /// Lanes).
  unsigned Instances = 1000;
  /// Independent chains; each lane is one hierarchical instance holding
  /// Instances/Lanes leaf stages connected head to tail.
  unsigned Lanes = 16;
  /// Per-port probability, in permille, that the port's scheme is the
  /// (int|float) disjunct instead of ground int. Controls how much H2
  /// forcing the solve needs; 0 makes every constraint ground.
  unsigned DisjunctPermille = 250;
  /// Seed for the deterministic per-port scheme choice.
  unsigned Seed = 0x9e3779b9u;
};

/// Builds a scaled elaboration-shaped workload directly into \p NL: Lanes
/// hierarchical instances each holding a chain of leaf stages, every stage
/// connected to the next through width-1 in/out ports, each lane anchored
/// at int so the system is always satisfiable regardless of disjunct
/// density. The result satisfies buildNetlistConstraints()'s contract
/// (resolved connection endpoints, per-port schemes) and round-trips
/// through the LSSNL serializer, so one netlist exercises elaboration id
/// assignment, constraint generation, and artifact IO at 10k+ instances.
/// Returns the number of leaf instances created.
unsigned buildSyntheticNetlist(netlist::Netlist &NL, types::TypeContext &TC,
                               const SyntheticNetlistSpec &Spec);

/// K independent overloaded pairs, adversarially ordered: all disjunctive
/// constraints precede the equalities that couple them. Plain unification
/// order (no H1) backtracks ~4^K; with H1 the equalities solve first and
/// the search collapses. Always satisfiable (both sides resolve to int).
std::vector<Constraint> makeAdversarialPairs(types::TypeContext &TC,
                                             unsigned K);

/// K independent variables, each constrained by two overlapping disjuncts
/// ((int|float) and (float|string), intersection float), with all the
/// first disjuncts ordered before all the second. With partitioning (H3)
/// each variable is a 2-constraint component; without it one 2K-deep
/// search re-enumerates ~2^K combinations before converging. Satisfiable.
std::vector<Constraint> makeIntersectionFamily(types::TypeContext &TC,
                                               unsigned K);

/// A chain of N overloaded components anchored to int at one end —
/// the "long chains of polymorphic data routing components" the paper
/// calls common. Every disjunct is *forced*; H2 resolves them all without
/// a single branch point. Satisfiable.
std::vector<Constraint> makeForcedChain(types::TypeContext &TC, unsigned N);

/// Like makeAdversarialPairs but unsatisfiable (the coupled pair's
/// disjuncts don't intersect), to measure failure-path behavior.
std::vector<Constraint> makeUnsatPairs(types::TypeContext &TC, unsigned K);

/// \p Groups variable-disjoint components, each a single H3 group whose
/// search is ~2^K: K overloaded variables chained by disjunctive struct
/// links, with an anchor at the end of the work list that invalidates
/// every assignment but the last one chronological backtracking tries
/// (all-float). H1 cannot simplify it (every constraint is disjunctive)
/// and H2 cannot force it (every alternative is viable in isolation), so
/// the whole cost lands on the per-group search — the workload the
/// parallel H3 solver is measured on. Satisfiable: every variable
/// resolves to float.
std::vector<Constraint> makeDisjointHardGroups(types::TypeContext &TC,
                                               unsigned Groups, unsigned K);

} // namespace infer
} // namespace liberty

#endif // LIBERTY_INFER_SYNTHETIC_H
