//===- Solution.cpp - Stable inference-solution round-trip -------------------===//

#include "infer/Solution.h"

#include "support/FaultInjection.h"

#include "netlist/Netlist.h"
#include "netlist/Serializer.h"
#include "types/Type.h"
#include "types/TypeContext.h"
#include "types/TypeIO.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

using namespace liberty;
using namespace liberty::infer;
using netlist::artifactEscape;
using netlist::artifactUnescape;

/// Doubles travel as their IEEE754 bit pattern: byte-stable and exact.
static std::string doubleBits(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)Bits);
  return Buf;
}

bool liberty::infer::exportSolution(const netlist::Netlist &NL,
                                    const NetlistInferenceStats &Stats,
                                    const std::vector<Diagnostic> &Diags,
                                    std::string &Out,
                                    unsigned FormatVersion) {
  if (FormatVersion < 1 || FormatVersion > CurrentLSSSOLVersion)
    return false;
  if (faultShouldFail("serialize.solution"))
    return false;
  netlist::ArtifactStrTableBuilder Tab;
  netlist::ArtifactTokenEmitter E{FormatVersion >= 2 ? &Tab : nullptr};
  // The body is rendered first so the v2 string table (first-use order)
  // is complete before the header is written.
  std::ostringstream OS;
  const SolveStats &S = Stats.Solve;
  OS << "stats " << (S.Success ? 1 : 0) << ' ' << (S.HitLimit ? 1 : 0) << ' '
     << (S.HitDeadline ? 1 : 0) << ' ' << S.UnifySteps << ' '
     << S.BranchPoints << ' ' << S.NumConstraints << ' ' << S.NumDisjunctive
     << ' ' << S.NumComponents << ' ' << S.ThreadsUsed << ' ' << S.NumUnsolved
     << '\n';
  OS << "nstats " << Stats.NumPorts << ' ' << Stats.NumPolymorphicPorts << ' '
     << Stats.NumDefaulted << '\n';
  // v3 zeroes the per-group wall-time bits: a spliced incremental solve
  // replays cached group stats, and only a time-free artifact can be
  // byte-identical to the cold compile it splices from.
  for (const GroupStats &G : S.Groups)
    OS << "group " << G.NumConstraints << ' ' << G.UnifySteps << ' '
       << G.BranchPoints << ' '
       << doubleBits(FormatVersion >= 3 ? 0.0 : G.WallMs) << ' '
       << (G.Success ? 1 : 0) << ' ' << (G.HitLimit ? 1 : 0) << ' '
       << (G.HitDeadline ? 1 : 0) << '\n';
  if (FormatVersion >= 3)
    for (size_t G = 0; G != S.GroupMembers.size(); ++G) {
      if (S.GroupMembers[G].empty())
        continue;
      OS << "gm " << G << ' ' << S.GroupMembers[G].size();
      for (unsigned Id : S.GroupMembers[G])
        OS << ' ' << Id;
      OS << '\n';
    }
  for (const Diagnostic &D : Diags) {
    if (D.Level == DiagLevel::Error)
      return false; // Failed solves are never cached.
    OS << "diag " << (D.Level == DiagLevel::Warning ? 1 : 0) << ' '
       << D.Loc.BufferId << ' ' << D.Loc.Offset << ' ' << E.tok(D.Message)
       << '\n';
  }
  const auto &Instances = NL.getInstances();
  for (size_t I = 0; I != Instances.size(); ++I) {
    const auto &Ports = Instances[I]->Ports;
    for (size_t P = 0; P != Ports.size(); ++P) {
      if (!Ports[P].Resolved)
        continue;
      OS << "p " << I << ' ' << P << ' ' << E.tok(Ports[P].Resolved->str());
      if (FormatVersion >= 3) {
        // Group column is biased by one (0 = no group) so the record stays
        // unsigned; the defaulting count drives warning replay on splice.
        auto It = Stats.PortGroups.find({unsigned(I), unsigned(P)});
        if (It == Stats.PortGroups.end())
          OS << " 0 0";
        else
          OS << ' ' << unsigned(It->second.first + 1) << ' '
             << It->second.second;
      }
      OS << '\n';
    }
  }
  OS << "end\n";

  std::ostringstream Head;
  Head << "LSSSOL " << FormatVersion << '\n';
  if (FormatVersion >= 2) {
    Head << "strtab " << Tab.strings().size() << '\n';
    for (const std::string &Str : Tab.strings())
      Head << "s " << artifactEscape(Str) << '\n';
  }
  Out = Head.str() + OS.str();
  return true;
}

namespace {

/// Minimal checked field reader (mirrors the Serializer's; small enough
/// that sharing would couple the two formats for no gain).
struct Fields {
  std::vector<std::string_view> F;

  /// Space-splits without copying; fields view the line (which views the
  /// artifact text). Allocation-free: this is the cache's warm path.
  explicit Fields(std::string_view Line) {
    size_t I = 0, N = Line.size();
    while (I < N) {
      while (I < N && (Line[I] == ' ' || Line[I] == '\t' || Line[I] == '\r'))
        ++I;
      size_t Start = I;
      while (I < N && Line[I] != ' ' && Line[I] != '\t' && Line[I] != '\r')
        ++I;
      if (I > Start)
        F.push_back(Line.substr(Start, I - Start));
    }
  }

  bool u64(size_t I, uint64_t &Out) const {
    if (I >= F.size() || F[I].empty())
      return false;
    uint64_t Acc = 0;
    for (char C : F[I]) {
      if (C < '0' || C > '9')
        return false;
      if (Acc > (UINT64_MAX - 9) / 10)
        return false; // Overflow: reject rather than wrap.
      Acc = Acc * 10 + uint64_t(C - '0');
    }
    Out = Acc;
    return true;
  }
  bool u32(size_t I, unsigned &Out) const {
    uint64_t V;
    if (!u64(I, V) || V > UINT32_MAX)
      return false;
    Out = unsigned(V);
    return true;
  }
  bool boolean(size_t I, bool &Out) const {
    if (I >= F.size() || (F[I] != "0" && F[I] != "1"))
      return false;
    Out = F[I] == "1";
    return true;
  }
  // Adapter surface for netlist::ArtifactFieldDecoder (v1/v2 string
  // slots).
  size_t size() const { return F.size(); }
  std::string_view raw(size_t I) const { return F[I]; }
  bool str(size_t I, std::string &Out) const {
    return I < F.size() && artifactUnescape(F[I], Out);
  }
  bool dbl(size_t I, double &Out) const {
    if (I >= F.size() || F[I].size() != 16)
      return false;
    uint64_t Bits = 0;
    for (char C : F[I]) {
      int D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else
        return false;
      Bits = (Bits << 4) | unsigned(D);
    }
    std::memcpy(&Out, &Bits, sizeof(Out));
    return true;
  }
};

} // namespace

bool liberty::infer::importSolution(const std::string &Text,
                                    netlist::Netlist &NL,
                                    types::TypeContext &TC,
                                    NetlistInferenceStats &StatsOut,
                                    std::vector<Diagnostic> &DiagsOut) {
  if (faultShouldFail("deserialize.solution"))
    return false;
  size_t LinePos = 0;
  auto nextLine = [&](std::string_view &Line) {
    if (LinePos >= Text.size())
      return false;
    size_t E = Text.find('\n', LinePos);
    if (E == std::string::npos) {
      Line = std::string_view(Text).substr(LinePos);
      LinePos = Text.size();
    } else {
      Line = std::string_view(Text).substr(LinePos, E - LinePos);
      LinePos = E + 1;
    }
    return true;
  };

  std::string_view Line;
  unsigned Version;
  if (!nextLine(Line))
    return false;
  if (Line == "LSSSOL 1")
    Version = 1;
  else if (Line == "LSSSOL 2")
    Version = 2;
  else if (Line == "LSSSOL 3")
    Version = 3;
  else
    return false;

  // v2: the header string table precedes all records.
  std::vector<std::string> Strtab;
  if (Version >= 2) {
    if (!nextLine(Line))
      return false;
    Fields H(Line);
    unsigned N;
    if (H.F.size() != 2 || H.F[0] != "strtab" || !H.u32(1, N))
      return false;
    if (size_t(N) > Text.size())
      return false; // More entries than bytes: malformed.
    Strtab.reserve(N);
    for (unsigned I = 0; I != N; ++I) {
      if (!nextLine(Line))
        return false;
      Fields SL(Line);
      std::string Str;
      if (SL.F.size() != 2 || SL.F[0] != "s" || !SL.str(1, Str))
        return false;
      Strtab.push_back(std::move(Str));
    }
  }

  NetlistInferenceStats Stats;
  std::vector<Diagnostic> Diags;
  // Resolved types are staged and committed only once the whole artifact
  // parsed, so a truncated entry cannot leave the netlist half-typed.
  std::vector<std::pair<netlist::Port *, const types::Type *>> Resolved;
  std::map<std::string, const types::Type *> VarMap;
  const auto &Instances = NL.getInstances();
  bool SawStats = false, SawEnd = false;

  while (nextLine(Line)) {
    Fields L(Line);
    if (L.F.empty())
      return false;
    netlist::ArtifactFieldDecoder<Fields> Dec{
        L, Version >= 2 ? &Strtab : nullptr};
    std::string_view Kind = L.F[0];
    if (Kind == "end") {
      SawEnd = true;
      break;
    } else if (Kind == "stats") {
      SolveStats &S = Stats.Solve;
      if (L.F.size() != 11 || !L.boolean(1, S.Success) ||
          !L.boolean(2, S.HitLimit) || !L.boolean(3, S.HitDeadline) ||
          !L.u64(4, S.UnifySteps) || !L.u64(5, S.BranchPoints) ||
          !L.u32(6, S.NumConstraints) || !L.u32(7, S.NumDisjunctive) ||
          !L.u32(8, S.NumComponents) || !L.u32(9, S.ThreadsUsed) ||
          !L.u32(10, S.NumUnsolved))
        return false;
      SawStats = true;
    } else if (Kind == "nstats") {
      if (L.F.size() != 4 || !L.u32(1, Stats.NumPorts) ||
          !L.u32(2, Stats.NumPolymorphicPorts) ||
          !L.u32(3, Stats.NumDefaulted))
        return false;
    } else if (Kind == "group") {
      GroupStats G;
      if (L.F.size() != 8 || !L.u32(1, G.NumConstraints) ||
          !L.u64(2, G.UnifySteps) || !L.u64(3, G.BranchPoints) ||
          !L.dbl(4, G.WallMs) || !L.boolean(5, G.Success) ||
          !L.boolean(6, G.HitLimit) || !L.boolean(7, G.HitDeadline))
        return false;
      Stats.Solve.Groups.push_back(G);
    } else if (Kind == "gm") {
      unsigned G, N;
      if (Version < 3 || L.F.size() < 3 || !L.u32(1, G) || !L.u32(2, N) ||
          L.F.size() != size_t(N) + 3 || G >= Stats.Solve.Groups.size())
        return false;
      if (Stats.Solve.GroupMembers.size() < Stats.Solve.Groups.size())
        Stats.Solve.GroupMembers.resize(Stats.Solve.Groups.size());
      std::vector<unsigned> &Ids = Stats.Solve.GroupMembers[G];
      for (unsigned I = 0; I != N; ++I) {
        unsigned Id;
        if (!L.u32(3 + I, Id) || Id >= Instances.size())
          return false;
        Ids.push_back(Id);
      }
    } else if (Kind == "diag") {
      Diagnostic D;
      uint64_t Level;
      if (L.F.size() != 5 || !L.u64(1, Level) || Level > 1 ||
          !L.u32(2, D.Loc.BufferId) || !L.u32(3, D.Loc.Offset) ||
          !Dec.str(4, D.Message))
        return false;
      D.Level = Level == 1 ? DiagLevel::Warning : DiagLevel::Note;
      Diags.push_back(std::move(D));
    } else if (Kind == "p") {
      uint64_t InstIdx, PortIdx;
      std::string TypeText;
      size_t Want = Version >= 3 ? 6 : 4;
      if (L.F.size() != Want || !L.u64(1, InstIdx) || !L.u64(2, PortIdx) ||
          !Dec.str(3, TypeText))
        return false;
      if (InstIdx >= Instances.size() ||
          PortIdx >= Instances[InstIdx]->Ports.size())
        return false;
      if (Version >= 3) {
        unsigned GroupBiased, NumDefaulted;
        if (!L.u32(4, GroupBiased) || !L.u32(5, NumDefaulted))
          return false;
        if (GroupBiased) {
          if (GroupBiased > Stats.Solve.Groups.size())
            return false;
          Stats.PortGroups[{unsigned(InstIdx), unsigned(PortIdx)}] = {
              int(GroupBiased) - 1, NumDefaulted};
        }
      }
      const types::Type *T = types::parseTypeText(TypeText, TC, VarMap);
      if (!T)
        return false;
      Resolved.emplace_back(&Instances[InstIdx]->Ports[PortIdx], T);
    } else {
      return false;
    }
  }
  if (!SawEnd || !SawStats)
    return false;

  for (auto &[P, T] : Resolved)
    P->Resolved = T;
  StatsOut = std::move(Stats);
  DiagsOut = std::move(Diags);
  return true;
}
