//===- Synthetic.cpp - Synthetic inference workloads ---------------------------===//

#include "infer/Synthetic.h"

#include "netlist/Netlist.h"
#include "types/Type.h"

#include <algorithm>

using namespace liberty;
using namespace liberty::infer;
using types::Type;

std::vector<Constraint>
liberty::infer::makeAdversarialPairs(types::TypeContext &TC, unsigned K) {
  std::vector<Constraint> Cs;
  std::vector<const Type *> As, Bs;
  const Type *IntFloat = TC.getDisjunct({TC.getInt(), TC.getFloat()});
  const Type *FloatInt = TC.getDisjunct({TC.getFloat(), TC.getInt()});
  for (unsigned I = 0; I != K; ++I) {
    As.push_back(TC.freshVar("a" + std::to_string(I)));
    Bs.push_back(TC.freshVar("b" + std::to_string(I)));
    // Opposite preference orders: the naive solver's first guesses clash.
    Cs.push_back(Constraint{As.back(), IntFloat, SourceLoc(), "pair-a", ""});
    Cs.push_back(Constraint{Bs.back(), FloatInt, SourceLoc(), "pair-b", ""});
  }
  for (unsigned I = 0; I != K; ++I)
    Cs.push_back(Constraint{As[I], Bs[I], SourceLoc(), "pair-eq", ""});
  return Cs;
}

std::vector<Constraint>
liberty::infer::makeIntersectionFamily(types::TypeContext &TC, unsigned K) {
  std::vector<Constraint> Cs;
  const Type *IntFloat = TC.getDisjunct({TC.getInt(), TC.getFloat()});
  const Type *FloatString = TC.getDisjunct({TC.getFloat(), TC.getString()});
  std::vector<const Type *> Vs;
  for (unsigned I = 0; I != K; ++I) {
    Vs.push_back(TC.freshVar("v" + std::to_string(I)));
    Cs.push_back(Constraint{Vs.back(), IntFloat, SourceLoc(), "isect-1", ""});
  }
  for (unsigned I = 0; I != K; ++I)
    Cs.push_back(Constraint{Vs[I], FloatString, SourceLoc(), "isect-2", ""});
  return Cs;
}

std::vector<Constraint>
liberty::infer::makeForcedChain(types::TypeContext &TC, unsigned N) {
  std::vector<Constraint> Cs;
  const Type *IntFloat = TC.getDisjunct({TC.getInt(), TC.getFloat()});
  const Type *Prev = TC.freshVar("c0");
  Cs.push_back(Constraint{Prev, TC.getInt(), SourceLoc(), "anchor", ""});
  for (unsigned I = 1; I <= N; ++I) {
    const Type *Next = TC.freshVar("c" + std::to_string(I));
    Cs.push_back(Constraint{Next, IntFloat, SourceLoc(), "chain-overload", ""});
    Cs.push_back(Constraint{Prev, Next, SourceLoc(), "chain-link", ""});
    Prev = Next;
  }
  return Cs;
}

std::vector<Constraint>
liberty::infer::makeDisjointHardGroups(types::TypeContext &TC, unsigned Groups,
                                       unsigned K) {
  std::vector<Constraint> Cs;
  const Type *IntFloat = TC.getDisjunct({TC.getInt(), TC.getFloat()});
  const Type *FloatString = TC.getDisjunct({TC.getFloat(), TC.getString()});
  const Type *LinkAlts = TC.getDisjunct(
      {TC.getStruct({{"a", TC.getInt()}, {"b", TC.getInt()}}),
       TC.getStruct({{"a", TC.getFloat()}, {"b", TC.getFloat()}})});
  for (unsigned G = 0; G != Groups; ++G) {
    // A pseudo instance path per group so budget-exhaustion diagnostics
    // (which list the paths of unsolved groups) are testable on synthetic
    // systems too.
    std::string Path = "synthetic.g" + std::to_string(G);
    std::vector<const Type *> Vs;
    Vs.reserve(K);
    for (unsigned I = 0; I != K; ++I)
      Vs.push_back(
          TC.freshVar("g" + std::to_string(G) + "v" + std::to_string(I)));
    // Per-variable overload, int-first: the greedy search starts all-int.
    for (unsigned I = 0; I != K; ++I)
      Cs.push_back(
          Constraint{Vs[I], IntFloat, SourceLoc(), "hard-choice", Path});
    // Disjunctive links force neighbors to agree and keep the component
    // connected without letting H2 prune anything.
    for (unsigned I = 0; I + 1 != K; ++I)
      Cs.push_back(
          Constraint{TC.getStruct({{"a", Vs[I]}, {"b", Vs[I + 1]}}), LinkAlts,
                     SourceLoc(), "hard-link", Path});
    // The anchor sits at the end of the work list, so the all-float
    // solution is the last of the ~2^K assignments tried.
    Cs.push_back(Constraint{Vs[K - 1], FloatString, SourceLoc(),
                            "hard-anchor", Path});
  }
  return Cs;
}

std::vector<Constraint>
liberty::infer::makeUnsatPairs(types::TypeContext &TC, unsigned K) {
  std::vector<Constraint> Cs;
  const Type *IntBool = TC.getDisjunct({TC.getInt(), TC.getBool()});
  const Type *FloatString = TC.getDisjunct({TC.getFloat(), TC.getString()});
  std::vector<const Type *> As, Bs;
  for (unsigned I = 0; I != K; ++I) {
    As.push_back(TC.freshVar("ua" + std::to_string(I)));
    Bs.push_back(TC.freshVar("ub" + std::to_string(I)));
    Cs.push_back(Constraint{As.back(), IntBool, SourceLoc(), "unsat-a", ""});
    Cs.push_back(Constraint{Bs.back(), FloatString, SourceLoc(), "unsat-b", ""});
  }
  for (unsigned I = 0; I != K; ++I)
    Cs.push_back(Constraint{As[I], Bs[I], SourceLoc(), "unsat-eq", ""});
  return Cs;
}

unsigned
liberty::infer::buildSyntheticNetlist(netlist::Netlist &NL,
                                      types::TypeContext &TC,
                                      const SyntheticNetlistSpec &Spec) {
  const unsigned Lanes = std::max(1u, Spec.Lanes);
  const unsigned Stages = std::max(1u, Spec.Instances / Lanes);
  const Type *IntFloat = TC.getDisjunct({TC.getInt(), TC.getFloat()});
  // xorshift32: deterministic for a given Seed, cheap enough to vanish
  // against the instance-creation cost being benchmarked.
  uint32_t State = Spec.Seed ? Spec.Seed : 1u;
  auto NextPermille = [&State]() {
    State ^= State << 13;
    State ^= State >> 17;
    State ^= State << 5;
    return State % 1000u;
  };
  auto PickScheme = [&](bool Anchor) -> const Type * {
    if (Anchor)
      return TC.getInt();
    return NextPermille() < Spec.DisjunctPermille ? IntFloat : TC.getInt();
  };
  auto AddPort = [](netlist::InstanceNode *Inst, const char *Name,
                    netlist::PortDirection Dir,
                    const Type *Scheme) {
    netlist::Port P;
    P.Name = Name;
    P.Dir = Dir;
    P.Scheme = Scheme;
    P.Width = 1;
    P.WidthInferred = true;
    Inst->Ports.push_back(std::move(P));
  };
  unsigned Created = 0;
  for (unsigned L = 0; L != Lanes; ++L) {
    netlist::InstanceNode *Lane = NL.createInstance(
        NL.getRoot(), "lane" + std::to_string(L), nullptr, SourceLoc());
    netlist::InstanceNode *Prev = nullptr;
    for (unsigned S = 0; S != Stages; ++S) {
      netlist::InstanceNode *Stage = NL.createInstance(
          Lane, "s" + std::to_string(S), nullptr, SourceLoc());
      ++Created;
      // Stage 0 is the lane's int-typed source anchor: whatever mixture of
      // disjunctive schemes the chain carries, propagation from the anchor
      // keeps every lane satisfiable (int is in every alternative set).
      if (S != 0)
        AddPort(Stage, "in", netlist::PortDirection::In, PickScheme(false));
      AddPort(Stage, "out", netlist::PortDirection::Out, PickScheme(S == 0));
      if (Prev) {
        netlist::Connection *Conn = NL.createConnection(SourceLoc());
        Conn->From = netlist::PortRef{Prev, "out", 0, -1};
        Conn->To = netlist::PortRef{Stage, "in", 0, -1};
      }
      Prev = Stage;
    }
  }
  NL.freezeIds();
  return Created;
}
