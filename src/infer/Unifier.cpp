//===- Unifier.cpp - Structural unification with rollback -------------------===//

#include "infer/Unifier.h"

#include "types/Type.h"

#include <cassert>

using namespace liberty;
using namespace liberty::infer;
using types::Type;

const Type *Unifier::getBinding(uint32_t VarId) const {
  return VarId < Bindings.size() ? Bindings[VarId] : nullptr;
}

const Type *Unifier::find(const Type *T) const {
  while (T->isVar()) {
    const Type *Bound = getBinding(T->getVarId());
    if (!Bound)
      return T;
    T = Bound;
  }
  return T;
}

void Unifier::bind(uint32_t VarId, const Type *T) {
  if (VarId >= Bindings.size())
    Bindings.resize(VarId + 1, nullptr);
  assert(!Bindings[VarId] && "rebinding a bound variable");
  Bindings[VarId] = T;
  Trail.push_back(VarId);
}

void Unifier::seedFrom(const Unifier &Base) {
  Bindings = Base.Bindings;
  Trail.clear();
  Steps = 0;
  LastFailure.clear();
}

void Unifier::rollback(Checkpoint C) {
  assert(C <= Trail.size() && "rollback past the trail");
  while (Trail.size() > C) {
    Bindings[Trail.back()] = nullptr;
    Trail.pop_back();
  }
}

bool Unifier::occurs(uint32_t VarId, const Type *T) const {
  T = find(T);
  switch (T->getKind()) {
  case Type::Kind::Var:
    return T->getVarId() == VarId;
  case Type::Kind::Array:
    return occurs(VarId, T->getElem());
  case Type::Kind::Struct:
    for (const auto &[Name, FieldTy] : T->getFields())
      if (occurs(VarId, FieldTy))
        return true;
    return false;
  case Type::Kind::Disjunct:
    for (const Type *Alt : T->getAlternatives())
      if (occurs(VarId, Alt))
        return true;
    return false;
  default:
    return false;
  }
}

bool Unifier::unifyStructural(const Type *A, const Type *B,
                              std::vector<TypePair> &Deferred) {
  ++Steps;
  A = find(A);
  B = find(B);
  if (A == B)
    return true;

  // A disjunct cannot be unified locally: the solver must choose an
  // alternative. Defer the pair. (Checked before variable binding so a
  // variable is never bound to a disjunctive scheme.)
  if (A->isDisjunct() || B->isDisjunct()) {
    Deferred.push_back(TypePair{A, B});
    return true;
  }

  if (A->isVar()) {
    if (occurs(A->getVarId(), B)) {
      LastFailure = "occurs check failed: " + A->str() + " in " + B->str();
      return false;
    }
    bind(A->getVarId(), B);
    return true;
  }
  if (B->isVar()) {
    if (occurs(B->getVarId(), A)) {
      LastFailure = "occurs check failed: " + B->str() + " in " + A->str();
      return false;
    }
    bind(B->getVarId(), A);
    return true;
  }

  if (A->getKind() != B->getKind()) {
    LastFailure = "cannot unify " + A->str() + " with " + B->str();
    return false;
  }

  switch (A->getKind()) {
  case Type::Kind::Int:
  case Type::Kind::Bool:
  case Type::Kind::Float:
  case Type::Kind::String:
    return true;
  case Type::Kind::Array:
    if (A->getArraySize() != B->getArraySize()) {
      LastFailure = "array extents differ: " + A->str() + " vs " + B->str();
      return false;
    }
    return unifyStructural(A->getElem(), B->getElem(), Deferred);
  case Type::Kind::Struct: {
    const auto &FA = A->getFields();
    const auto &FB = B->getFields();
    if (FA.size() != FB.size()) {
      LastFailure = "struct field counts differ: " + A->str() + " vs " +
                    B->str();
      return false;
    }
    for (unsigned I = 0; I != FA.size(); ++I) {
      if (FA[I].first != FB[I].first) {
        LastFailure = "struct field names differ: " + A->str() + " vs " +
                      B->str();
        return false;
      }
      if (!unifyStructural(FA[I].second, FB[I].second, Deferred))
        return false;
    }
    return true;
  }
  case Type::Kind::Var:
  case Type::Kind::Disjunct:
    break; // Handled above.
  }
  assert(false && "unreachable unification case");
  return false;
}

const Type *Unifier::resolveDeep(const Type *T) {
  T = find(T);
  switch (T->getKind()) {
  case Type::Kind::Int:
  case Type::Kind::Bool:
  case Type::Kind::Float:
  case Type::Kind::String:
  case Type::Kind::Var:
    return T;
  case Type::Kind::Array: {
    const Type *Elem = resolveDeep(T->getElem());
    if (Elem == T->getElem())
      return T;
    return TC.getArray(Elem, T->getArraySize());
  }
  case Type::Kind::Struct: {
    bool Changed = false;
    std::vector<std::pair<std::string, const Type *>> Fields;
    Fields.reserve(T->getFields().size());
    for (const auto &[Name, FieldTy] : T->getFields()) {
      const Type *R = resolveDeep(FieldTy);
      Changed |= (R != FieldTy);
      Fields.emplace_back(Name, R);
    }
    return Changed ? TC.getStruct(std::move(Fields)) : T;
  }
  case Type::Kind::Disjunct: {
    bool Changed = false;
    std::vector<const Type *> Alts;
    Alts.reserve(T->getAlternatives().size());
    for (const Type *Alt : T->getAlternatives()) {
      const Type *R = resolveDeep(Alt);
      Changed |= (R != Alt);
      Alts.push_back(R);
    }
    return Changed ? TC.getDisjunct(std::move(Alts)) : T;
  }
  }
  return T;
}

void Unifier::collectUnboundVars(const Type *T,
                                 std::vector<uint32_t> &Out) const {
  T = find(T);
  switch (T->getKind()) {
  case Type::Kind::Var:
    Out.push_back(T->getVarId());
    return;
  case Type::Kind::Array:
    collectUnboundVars(T->getElem(), Out);
    return;
  case Type::Kind::Struct:
    for (const auto &[Name, FieldTy] : T->getFields())
      collectUnboundVars(FieldTy, Out);
    return;
  case Type::Kind::Disjunct:
    for (const Type *Alt : T->getAlternatives())
      collectUnboundVars(Alt, Out);
    return;
  default:
    return;
  }
}
