//===- InferenceEngine.cpp - LSS type inference ------------------------------===//

#include "infer/InferenceEngine.h"

#include "netlist/Netlist.h"
#include "support/PhaseTimer.h"
#include "support/ThreadPool.h"
#include "types/Type.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <list>
#include <map>
#include <numeric>

using namespace liberty;
using namespace liberty::infer;
using types::Type;

std::string Constraint::renderContext() const {
  if (!Context.empty() || !Inst)
    return Context;
  switch (Origin) {
  case ConstraintOriginKind::PortAnnotation:
    return "annotation of port '" +
           Inst->Ports[static_cast<size_t>(PortIdx)].Name +
           "' on instance '" + Inst->Path + "'";
  case ConstraintOriginKind::ConstrainStmt:
    return "constrain statement of instance '" + Inst->Path + "'";
  case ConstraintOriginKind::Connection:
    return "connection";
  case ConstraintOriginKind::ConnAnnotation:
    return "connection annotation";
  case ConstraintOriginKind::None:
    break;
  }
  return Context;
}

const std::string &Constraint::instancePath() const {
  if (!InstancePath.empty() || !Inst)
    return InstancePath;
  return Inst->Path;
}

/// Total number of alternatives across every disjunct node in \p T —
/// the "how overloaded is this constraint" figure reported when a group
/// exhausts its budget.
static unsigned countAlternatives(const Type *T) {
  switch (T->getKind()) {
  case Type::Kind::Disjunct: {
    unsigned N = T->getAlternatives().size();
    for (const Type *Alt : T->getAlternatives())
      N += countAlternatives(Alt);
    return N;
  }
  case Type::Kind::Array:
    return countAlternatives(T->getElem());
  case Type::Kind::Struct: {
    unsigned N = 0;
    for (const auto &[Name, FieldTy] : T->getFields())
      N += countAlternatives(FieldTy);
    return N;
  }
  default:
    return 0;
  }
}

/// True if a disjunct node occurs anywhere in \p T (syntactically; the
/// caller resolves bindings as needed).
static bool containsDisjunct(const Type *T) {
  switch (T->getKind()) {
  case Type::Kind::Disjunct:
    return true;
  case Type::Kind::Array:
    return containsDisjunct(T->getElem());
  case Type::Kind::Struct:
    for (const auto &[Name, FieldTy] : T->getFields())
      if (containsDisjunct(FieldTy))
        return true;
    return false;
  default:
    return false;
  }
}

bool InferenceEngine::overBudget(const Unifier &WU, const SolveOptions &Opts,
                                 SolveStats &Stats) const {
  if (WU.getSteps() > Opts.MaxSteps) {
    Stats.HitLimit = true;
    return true;
  }
  // The wall-clock deadline is polled at a coarse step granularity so the
  // common (no-deadline) hot path never reads the clock.
  if (HasDeadline && (WU.getSteps() & 0x3FF) == 0 &&
      std::chrono::steady_clock::now() > Deadline) {
    Stats.HitDeadline = true;
    return true;
  }
  return false;
}

bool InferenceEngine::solveList(Unifier &WU, std::vector<TypePair> Work,
                                const SolveOptions &Opts, SolveStats &Stats,
                                unsigned Depth) {
  for (size_t I = 0; I < Work.size(); ++I) {
    if (overBudget(WU, Opts, Stats))
      return false;
    const Type *A = WU.find(Work[I].A);
    const Type *B = WU.find(Work[I].B);
    if (A->isDisjunct() || B->isDisjunct()) {
      const Type *D = A->isDisjunct() ? A : B;
      const Type *O = A->isDisjunct() ? B : A;
      ++Stats.BranchPoints;
      for (const Type *Alt : D->getAlternatives()) {
        Unifier::Checkpoint CP = WU.checkpoint();
        std::vector<TypePair> Rest;
        Rest.reserve(Work.size() - I);
        Rest.push_back(TypePair{Alt, O});
        Rest.insert(Rest.end(), Work.begin() + I + 1, Work.end());
        if (solveList(WU, std::move(Rest), Opts, Stats, Depth + 1))
          return true;
        WU.rollback(CP);
        if (overBudget(WU, Opts, Stats))
          return false;
      }
      return false;
    }
    std::vector<TypePair> Deferred;
    if (!WU.unifyStructural(A, B, Deferred))
      return false;
    Work.insert(Work.begin() + I + 1, Deferred.begin(), Deferred.end());
  }
  return true;
}

SolveStats InferenceEngine::solve(const std::vector<Constraint> &Constraints,
                                  const SolveOptions &Opts,
                                  const SpliceRequest *Splice) {
  SolveStats Stats;
  Stats.NumConstraints = Constraints.size();
  if (Splice && Splice->Queries)
    Stats.QueryGroups.assign(Splice->Queries->size(), -1);
  uint64_t StepsBefore = U.getSteps();

  // Arm the wall-clock deadline before any work (and before group workers
  // start, so they read HasDeadline/Deadline without synchronization).
  HasDeadline = Opts.DeadlineMs != 0;
  if (HasDeadline)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(Opts.DeadlineMs);

  auto Fail = [&](const std::string &Msg, SourceLoc Loc) {
    Stats.Success = false;
    Stats.FailMessage = Msg;
    Stats.FailLoc = Loc;
    Stats.UnifySteps = U.getSteps() - StepsBefore;
    return Stats;
  };
  auto BudgetMessage = [&Stats]() -> std::string {
    return Stats.HitDeadline && !Stats.HitLimit
               ? "type inference exceeded its wall-clock deadline"
               : "type inference exceeded its work budget";
  };

  // Pending disjunctive work. Provenance stays a pointer to the original
  // constraint — contexts and instance paths are rendered only on the
  // (cold) failure paths, never copied per work item.
  struct PendingItem {
    TypePair P;
    const Constraint *From = nullptr;
  };
  std::list<PendingItem> Pending;

  if (Opts.ReorderSimpleFirst) {
    // Heuristic 1: unify the non-disjunctive constraints up front. They can
    // never branch, and their bindings prune disjuncts later.
    for (const Constraint &C : Constraints) {
      if (containsDisjunct(C.A) || containsDisjunct(C.B)) {
        ++Stats.NumDisjunctive;
        Pending.push_back(PendingItem{{C.A, C.B}, &C});
        continue;
      }
      std::vector<TypePair> Deferred;
      if (!U.unifyStructural(C.A, C.B, Deferred))
        return Fail(U.getLastFailure() + " (" + C.renderContext() + ")",
                    C.Loc);
      assert(Deferred.empty() && "non-disjunctive constraint deferred work");
    }
  } else {
    for (const Constraint &C : Constraints) {
      if (containsDisjunct(C.A) || containsDisjunct(C.B))
        ++Stats.NumDisjunctive;
      Pending.push_back(PendingItem{{C.A, C.B}, &C});
    }
  }

  if (Opts.ForcedDisjunctElimination) {
    // Heuristic 2: solve forced disjuncts without recursion. Trial-unify
    // each alternative in isolation; prune the impossible ones; commit when
    // exactly one remains.
    bool Progress = true;
    while (Progress && !Pending.empty()) {
      Progress = false;
      for (auto It = Pending.begin(); It != Pending.end();) {
        if (overBudget(U, Opts, Stats))
          return Fail(BudgetMessage(), It->From->Loc);
        const Type *A = U.find(It->P.A);
        const Type *B = U.find(It->P.B);
        if (!A->isDisjunct() && !B->isDisjunct()) {
          // The constraint became simple under current bindings: solve it
          // directly, queueing any nested disjuncts it exposes.
          std::vector<TypePair> Deferred;
          if (!U.unifyStructural(A, B, Deferred))
            return Fail(U.getLastFailure() + " (" +
                            It->From->renderContext() + ")",
                        It->From->Loc);
          for (const TypePair &D : Deferred)
            Pending.push_back(PendingItem{D, It->From});
          It = Pending.erase(It);
          Progress = true;
          continue;
        }
        const Type *D = A->isDisjunct() ? A : B;
        const Type *O = A->isDisjunct() ? B : A;
        std::vector<const Type *> Viable;
        for (const Type *Alt : D->getAlternatives()) {
          Unifier::Checkpoint CP = U.checkpoint();
          bool Ok = solveList(U, {TypePair{Alt, O}}, Opts, Stats, 0);
          U.rollback(CP);
          if (Ok)
            Viable.push_back(Alt);
        }
        if (Viable.empty())
          return Fail("no alternative of " + D->str() + " is compatible "
                      "with " + O->str() + " (" +
                      It->From->renderContext() + ")",
                      It->From->Loc);
        if (Viable.size() == 1) {
          bool Ok =
              solveList(U, {TypePair{Viable.front(), O}}, Opts, Stats, 0);
          assert(Ok && "forced alternative no longer unifiable");
          (void)Ok;
          It = Pending.erase(It);
          Progress = true;
          continue;
        }
        if (Viable.size() < D->getAlternatives().size()) {
          // Shrink the disjunct to the viable alternatives.
          It->P = TypePair{TC.getDisjunct(Viable), O};
          Progress = true;
        }
        ++It;
      }
    }
  }

  // Collect the residual (genuinely ambiguous) disjunctive constraints.
  std::vector<PendingItem> Residual(Pending.begin(), Pending.end());

  if (Residual.empty()) {
    Stats.Success = true;
    Stats.UnifySteps = U.getSteps() - StepsBefore;
    return Stats;
  }

  if (!Opts.Partition) {
    std::vector<TypePair> Work;
    Work.reserve(Residual.size());
    for (const PendingItem &P : Residual)
      Work.push_back(P.P);
    Stats.NumComponents = 1;
    if (!solveList(U, std::move(Work), Opts, Stats, 0))
      return Fail(Stats.HitLimit || Stats.HitDeadline
                      ? BudgetMessage()
                      : "no consistent assignment for overloaded components",
                  Residual.front().From->Loc);
    Stats.Success = true;
    Stats.UnifySteps = U.getSteps() - StepsBefore;
    return Stats;
  }

  // Heuristic 3: partition the residual constraints into variable-disjoint
  // components and search each independently.
  unsigned N = Residual.size();
  std::vector<unsigned> Rep(N);
  std::iota(Rep.begin(), Rep.end(), 0u);
  std::function<unsigned(unsigned)> FindRep = [&](unsigned X) {
    while (Rep[X] != X)
      X = Rep[X] = Rep[Rep[X]];
    return X;
  };
  // Type-variable ids are dense (TypeContext mints them 0,1,2,...), so
  // ownership is a flat array indexed by id — no per-variable map nodes or
  // string/int hashing on this path.
  constexpr unsigned NoOwner = ~0u;
  std::vector<unsigned> VarOwner(TC.getNumVars(), NoOwner);
  std::vector<uint32_t> Vars;
  for (unsigned I = 0; I != N; ++I) {
    Vars.clear();
    U.collectUnboundVars(Residual[I].P.A, Vars);
    U.collectUnboundVars(Residual[I].P.B, Vars);
    for (uint32_t V : Vars) {
      unsigned &Owner = VarOwner[V];
      if (Owner == NoOwner)
        Owner = I;
      else
        Rep[FindRep(I)] = FindRep(Owner);
    }
  }
  // Group members by root. Scanning constraints in ascending order and
  // numbering each component at its root's first appearance yields members
  // in ascending order and components ordered by first (lowest-index)
  // member — the same deterministic group order the ordered-map + sort
  // version produced, in one linear pass.
  std::vector<unsigned> ComponentOf(N, NoOwner);
  std::vector<std::vector<unsigned>> Components;
  for (unsigned I = 0; I != N; ++I) {
    unsigned Root = FindRep(I);
    if (ComponentOf[Root] == NoOwner) {
      ComponentOf[Root] = unsigned(Components.size());
      Components.emplace_back();
    }
    Components[ComponentOf[Root]].push_back(I);
  }
  Stats.NumComponents = Components.size();

  // Group membership: the sorted, deduped instance ids each group's
  // constraints mention (both endpoints for connection constraints). A
  // group with a provenance-free (synthetic) constraint has no reliable
  // member set and is never offered for splicing.
  const unsigned NumGroups = unsigned(Components.size());
  std::vector<std::vector<unsigned>> Members(NumGroups);
  std::vector<bool> MembersKnown(NumGroups, true);
  for (unsigned G = 0; G != NumGroups; ++G) {
    for (unsigned I : Components[G]) {
      const Constraint *C = Residual[I].From;
      if (!C->Inst) {
        MembersKnown[G] = false;
        continue;
      }
      Members[G].push_back(unsigned(C->Inst->Id));
      if (C->Inst2)
        Members[G].push_back(unsigned(C->Inst2->Id));
    }
  }

  // Query attribution: which group does each queried (port) variable's
  // resolution depend on? Groups reached from the same query are linked —
  // they must splice or search together, because resolving that query
  // reads bindings from all of them — and the query's own instance joins
  // each group's member set (editing the instance must dirty the group).
  std::vector<unsigned> GroupRep(NumGroups);
  std::iota(GroupRep.begin(), GroupRep.end(), 0u);
  std::function<unsigned(unsigned)> FindGroupRep = [&](unsigned X) {
    while (GroupRep[X] != X)
      X = GroupRep[X] = GroupRep[GroupRep[X]];
    return X;
  };
  if (Splice && Splice->Queries) {
    Stats.QueryGroups.assign(Splice->Queries->size(), -1);
    std::vector<uint32_t> QVars;
    for (size_t Q = 0; Q != Splice->Queries->size(); ++Q) {
      const SpliceQuery &SQ = (*Splice->Queries)[Q];
      if (!SQ.Var)
        continue;
      QVars.clear();
      U.collectUnboundVars(SQ.Var, QVars);
      int First = -1;
      for (uint32_t V : QVars) {
        if (V >= VarOwner.size() || VarOwner[V] == NoOwner)
          continue;
        unsigned G = ComponentOf[FindRep(VarOwner[V])];
        if (First < 0)
          First = int(G);
        else if (unsigned(First) != G)
          GroupRep[FindGroupRep(unsigned(First))] = FindGroupRep(G);
        Members[G].push_back(SQ.InstId);
      }
      Stats.QueryGroups[Q] = First;
    }
  }
  for (unsigned G = 0; G != NumGroups; ++G) {
    if (!MembersKnown[G]) {
      Members[G].clear();
      continue;
    }
    std::sort(Members[G].begin(), Members[G].end());
    Members[G].erase(std::unique(Members[G].begin(), Members[G].end()),
                     Members[G].end());
  }
  Stats.GroupMembers = Members;

  // Splice decision: the oracle is consulted per group; a group splices
  // only if every group linked to it was also accepted (mixed closures
  // search live, so a spliced group's bindings are never read).
  std::vector<bool> Spliced(NumGroups, false);
  std::vector<GroupStats> CachedGS(NumGroups);
  if (Splice && Splice->Oracle) {
    std::vector<bool> RootOk(NumGroups, true);
    for (unsigned G = 0; G != NumGroups; ++G) {
      bool Offered = !Members[G].empty() &&
                     Splice->Oracle(G, Members[G], CachedGS[G]) &&
                     CachedGS[G].Success && !CachedGS[G].HitLimit &&
                     !CachedGS[G].HitDeadline &&
                     CachedGS[G].NumConstraints == Components[G].size();
      if (!Offered)
        RootOk[FindGroupRep(G)] = false;
    }
    for (unsigned G = 0; G != NumGroups; ++G)
      Spliced[G] = RootOk[FindGroupRep(G)];
  }
  Stats.GroupSpliced = Spliced;

  // The groups touch disjoint unbound variables, so each one searches on a
  // scratch unifier seeded with the shared bindings and never contends
  // with its siblings; the shared unifier is read-only until the join.
  // Running them on a pool therefore needs no locks on the unification hot
  // path, and merging outcomes in group order makes bindings, statistics,
  // and failure diagnostics bit-identical to the serial (--j1) schedule.
  struct GroupOutcome {
    bool Ran = false;
    bool Ok = false;
    SolveStats Local; ///< BranchPoints / HitLimit from this group only.
    uint64_t Steps = 0;
    double WallMs = 0.0;
    std::vector<std::pair<uint32_t, const Type *>> NewBindings;
  };
  std::vector<GroupOutcome> Outcomes(Components.size());

  // Each group gets the budget that remains after the serial phases.
  SolveOptions GroupOpts = Opts;
  GroupOpts.MaxSteps =
      Opts.MaxSteps > U.getSteps() ? Opts.MaxSteps - U.getSteps() : 0;

  auto SolveGroup = [&](unsigned G) {
    std::vector<TypePair> Work;
    Work.reserve(Components[G].size());
    for (unsigned I : Components[G])
      Work.push_back(Residual[I].P);
    GroupOutcome &Out = Outcomes[G];
    auto Start = std::chrono::steady_clock::now();
    Unifier Scratch(TC);
    Scratch.seedFrom(U);
    Out.Ok = solveList(Scratch, std::move(Work), GroupOpts, Out.Local, 0);
    Out.Steps = Scratch.getSteps();
    if (Out.Ok) {
      Out.NewBindings.reserve(Scratch.getTrail().size());
      for (uint32_t V : Scratch.getTrail())
        Out.NewBindings.emplace_back(V, Scratch.lookup(V));
    }
    Out.WallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    Out.Ran = true;
  };

  unsigned Threads =
      Opts.NumThreads ? Opts.NumThreads : ThreadPool::getHardwareParallelism();
  if (Threads > 1 && Components.size() > 1) {
    // Pool size ignores splicing so ThreadsUsed (a reported statistic) is
    // identical between a cold solve and an incremental one.
    ThreadPool Pool(std::min<unsigned>(Threads, Components.size()));
    Stats.ThreadsUsed = Pool.getThreadCount();
    for (unsigned G = 0; G != Components.size(); ++G)
      if (!Spliced[G])
        Pool.async([&SolveGroup, G] { SolveGroup(G); });
    Pool.wait();
  } else {
    Stats.ThreadsUsed = 1;
    for (unsigned G = 0; G != Components.size(); ++G) {
      if (Spliced[G])
        continue;
      SolveGroup(G);
      const GroupOutcome &Out = Outcomes[G];
      // A group that ran out of budget (or past the deadline) degrades
      // gracefully — the remaining independent groups are still solved.
      // Only genuine unsatisfiability stops the run, exactly like the
      // merge below.
      if (!Out.Ok && !Out.Local.HitLimit && !Out.Local.HitDeadline)
        break; // Later groups stay un-run, exactly like the merge below.
    }
  }

  // Deterministic join: visit groups in index order, fold their statistics
  // and commit their bindings. A group that failed by exhausting its
  // budget/deadline is recorded (with the instance paths and disjunct
  // counts its constraints mention) and skipped — later groups still
  // commit, so one pathological group cannot take down the whole solve.
  // A genuinely unsatisfiable group stops the merge (parallel runs may
  // have solved later groups speculatively — their results are discarded
  // so both schedules report the same totals and diagnostic).
  uint64_t GroupSteps = 0;
  for (unsigned G = 0; G != Components.size(); ++G) {
    if (Spliced[G]) {
      // Spliced group: fold the cached (cold-identical) statistics so the
      // merged totals — and therefore the exported solution — are
      // byte-identical to a cold solve. Its variables stay free in U; the
      // cached per-port resolutions stand in for them.
      GroupSteps += CachedGS[G].UnifySteps;
      Stats.BranchPoints += CachedGS[G].BranchPoints;
      Stats.Groups.push_back(CachedGS[G]);
      continue;
    }
    const GroupOutcome &Out = Outcomes[G];
    if (!Out.Ran)
      break; // Serial early-exit: a preceding group was unsatisfiable.
    GroupSteps += Out.Steps;
    Stats.BranchPoints += Out.Local.BranchPoints;
    Stats.HitLimit |= Out.Local.HitLimit;
    Stats.HitDeadline |= Out.Local.HitDeadline;
    GroupStats GS;
    GS.NumConstraints = Components[G].size();
    GS.UnifySteps = Out.Steps;
    GS.BranchPoints = Out.Local.BranchPoints;
    GS.WallMs = Out.WallMs;
    GS.Success = Out.Ok;
    GS.HitLimit = Out.Local.HitLimit;
    GS.HitDeadline = Out.Local.HitDeadline;
    if (!Out.Ok && (Out.Local.HitLimit || Out.Local.HitDeadline)) {
      // Budget exhaustion: capture the group's provenance for the
      // structured diagnostic, leave its variables free, and keep going.
      GS.FirstLoc = Residual[Components[G].front()].From->Loc;
      for (unsigned I : Components[G]) {
        GS.NumDisjunctAlternatives += countAlternatives(Residual[I].P.A) +
                                      countAlternatives(Residual[I].P.B);
        const std::string &Path = Residual[I].From->instancePath();
        if (!Path.empty() && GS.InstancePaths.size() < 8 &&
            std::find(GS.InstancePaths.begin(), GS.InstancePaths.end(),
                      Path) == GS.InstancePaths.end())
          GS.InstancePaths.push_back(Path);
      }
      ++Stats.NumUnsolved;
      Stats.Groups.push_back(std::move(GS));
      continue;
    }
    Stats.Groups.push_back(std::move(GS));
    if (!Out.Ok) {
      Stats.Success = false;
      Stats.FailMessage = "no consistent assignment for overloaded components";
      Stats.FailLoc = Residual[Components[G].front()].From->Loc;
      Stats.UnifySteps = (U.getSteps() - StepsBefore) + GroupSteps;
      return Stats;
    }
    for (const auto &[VarId, Binding] : Out.NewBindings)
      U.adopt(VarId, Binding);
  }

  Stats.UnifySteps = (U.getSteps() - StepsBefore) + GroupSteps;
  if (Stats.NumUnsolved) {
    Stats.Success = false;
    Stats.FailMessage = BudgetMessage();
    for (const GroupStats &GS : Stats.Groups)
      if (!GS.Success) {
        Stats.FailLoc = GS.FirstLoc;
        break;
      }
    return Stats;
  }
  Stats.Success = true;
  return Stats;
}

//===----------------------------------------------------------------------===//
// Netlist integration
//===----------------------------------------------------------------------===//

std::vector<Constraint>
liberty::infer::buildNetlistConstraints(netlist::Netlist &NL,
                                        types::TypeContext &TC) {
  // Freeze the dense id layer: endpoint PortIdx resolution below replaces
  // the per-connection by-name port scans, and diagnostics-only strings
  // (contexts, instance paths) are rendered lazily from the dense origin,
  // so this loop allocates nothing per constraint beyond the vector slot.
  NL.freezeIds();
  std::vector<Constraint> Cs;
  auto MakeConstraint = [](const Type *A, const Type *B, SourceLoc Loc,
                           ConstraintOriginKind Kind,
                           const netlist::InstanceNode *Inst,
                           int PortIdx = -1,
                           const netlist::InstanceNode *Inst2 = nullptr) {
    Constraint C;
    C.A = A;
    C.B = B;
    C.Loc = Loc;
    C.Origin = Kind;
    C.Inst = Inst;
    C.Inst2 = Inst2;
    C.PortIdx = PortIdx;
    return C;
  };
  // One fresh variable per port; the port's annotated scheme constrains it.
  for (const auto &Inst : NL.getInstances()) {
    for (size_t PI = 0; PI != Inst->Ports.size(); ++PI) {
      netlist::Port &P = Inst->Ports[PI];
      P.InferVar = TC.freshVar(P.Name);
      if (P.Scheme)
        Cs.push_back(MakeConstraint(P.InferVar, P.Scheme, P.Loc,
                                    ConstraintOriginKind::PortAnnotation,
                                    Inst.get(), int(PI)));
    }
    for (const auto &[LHS, RHS] : Inst->ExtraConstraints)
      Cs.push_back(MakeConstraint(LHS, RHS, Inst->Loc,
                                  ConstraintOriginKind::ConstrainStmt,
                                  Inst.get()));
  }
  // Connected ports share a type (modulo unresolved endpoints, which were
  // already diagnosed during elaboration). Endpoint ports are reached by
  // the PortIdx freezeIds() resolved, not a by-name scan.
  for (const auto &Conn : NL.getConnections()) {
    if (!Conn->isFullyResolved())
      continue;
    if (Conn->From.PortIdx < 0 || Conn->To.PortIdx < 0)
      continue;
    netlist::Port &PF = Conn->From.Inst->Ports[size_t(Conn->From.PortIdx)];
    netlist::Port &PT = Conn->To.Inst->Ports[size_t(Conn->To.PortIdx)];
    if (!PF.InferVar || !PT.InferVar)
      continue;
    Cs.push_back(MakeConstraint(PF.InferVar, PT.InferVar, Conn->Loc,
                                ConstraintOriginKind::Connection,
                                Conn->From.Inst, -1, Conn->To.Inst));
    if (Conn->Annotation)
      Cs.push_back(MakeConstraint(PF.InferVar, Conn->Annotation, Conn->Loc,
                                  ConstraintOriginKind::ConnAnnotation,
                                  Conn->From.Inst, -1, Conn->To.Inst));
  }
  return Cs;
}

/// Replaces any residual type variables (unconstrained polymorphism) with
/// int and residual disjuncts (unconstrained overloading) with their first
/// alternative, counting the substitutions.
static const Type *groundDefault(const Type *T, types::TypeContext &TC,
                                 unsigned &NumDefaulted) {
  switch (T->getKind()) {
  case Type::Kind::Int:
  case Type::Kind::Bool:
  case Type::Kind::Float:
  case Type::Kind::String:
    return T;
  case Type::Kind::Var:
    ++NumDefaulted;
    return TC.getInt();
  case Type::Kind::Disjunct:
    ++NumDefaulted;
    return groundDefault(T->getAlternatives().front(), TC, NumDefaulted);
  case Type::Kind::Array:
    return TC.getArray(groundDefault(T->getElem(), TC, NumDefaulted),
                       T->getArraySize());
  case Type::Kind::Struct: {
    std::vector<std::pair<std::string, const Type *>> Fields;
    for (const auto &[Name, FieldTy] : T->getFields())
      Fields.emplace_back(Name, groundDefault(FieldTy, TC, NumDefaulted));
    return TC.getStruct(std::move(Fields));
  }
  }
  return T;
}

NetlistInferenceStats
liberty::infer::inferNetlistTypes(netlist::Netlist &NL, types::TypeContext &TC,
                                  DiagnosticEngine &Diags,
                                  const SolveOptions &Opts,
                                  PhaseTimer *Timer,
                                  const NetlistSpliceHooks *Hooks) {
  NetlistInferenceStats Stats;
  std::vector<Constraint> Cs;
  {
    PhaseTimer::Scope Scope(Timer, "constraint-gen");
    Cs = buildNetlistConstraints(NL, TC);
  }
  // Group attribution is requested for every port variable on every solve:
  // it is what LSSSOL v3 persists, and a cold compile must record exactly
  // what a later incremental compile will need.
  std::vector<SpliceQuery> Queries;
  for (const auto &Inst : NL.getInstances())
    for (const netlist::Port &P : Inst->Ports)
      if (P.InferVar)
        Queries.push_back(SpliceQuery{P.InferVar, unsigned(Inst->Id)});
  SpliceRequest Req;
  Req.Queries = &Queries;
  if (Hooks)
    Req.Oracle = Hooks->Oracle;
  InferenceEngine Engine(TC);
  {
    PhaseTimer::Scope Scope(Timer, "solve");
    Stats.Solve = Engine.solve(Cs, Opts, &Req);
  }
  if (Timer) {
    Timer->setCounter("constraint-gen", "constraints", Cs.size());
    Timer->setCounter("solve", "unify_steps", Stats.Solve.UnifySteps);
    Timer->setCounter("solve", "branch_points", Stats.Solve.BranchPoints);
    Timer->setCounter("solve", "groups", Stats.Solve.NumComponents);
    Timer->setCounter("solve", "threads", Stats.Solve.ThreadsUsed);
  }
  if (!Stats.Solve.Success) {
    if (Stats.Solve.NumUnsolved == 0) {
      // Genuine unsatisfiability: one diagnostic, nothing written back.
      Diags.error(Stats.Solve.FailLoc,
                  "type inference failed: " + Stats.Solve.FailMessage);
      return Stats;
    }
    // Budget/deadline exhaustion degraded gracefully: every other group
    // was still solved and committed. Name each unsolved group with the
    // instances and overload degree that made it pathological.
    for (unsigned G = 0; G != Stats.Solve.Groups.size(); ++G) {
      const GroupStats &GS = Stats.Solve.Groups[G];
      if (GS.Success)
        continue;
      if (!GS.HitLimit && !GS.HitDeadline) {
        // A genuinely unsatisfiable group encountered after a budget
        // failure; it stopped the merge with the usual diagnostic.
        Diags.error(Stats.Solve.FailLoc,
                    "type inference failed: " + Stats.Solve.FailMessage);
        continue;
      }
      std::string Why = GS.HitDeadline && !GS.HitLimit
                            ? "exceeded its wall-clock deadline"
                            : "exceeded its work budget";
      Diags.error(GS.FirstLoc,
                  "type inference failed: " + Why + " on group " +
                      std::to_string(G) + " (" +
                      std::to_string(GS.NumConstraints) + " constraints, " +
                      std::to_string(GS.NumDisjunctAlternatives) +
                      " disjunct alternatives); other groups were still "
                      "solved");
      for (const std::string &Path : GS.InstancePaths)
        Diags.note(GS.FirstLoc, "involves instance '" + Path + "'");
    }
    return Stats;
  }
  size_t QI = 0; // Aligned with Queries (same instance/port traversal).
  for (const auto &Inst : NL.getInstances()) {
    for (size_t PI = 0; PI != Inst->Ports.size(); ++PI) {
      netlist::Port &P = Inst->Ports[PI];
      if (!P.InferVar)
        continue;
      int Group = QI < Stats.Solve.QueryGroups.size()
                      ? Stats.Solve.QueryGroups[QI]
                      : -1;
      ++QI;
      ++Stats.NumPorts;
      if (P.Scheme && !P.Scheme->isGround())
        ++Stats.NumPolymorphicPorts;
      unsigned PortDefaulted = 0;
      bool SplicedPort = Group >= 0 &&
                         size_t(Group) < Stats.Solve.GroupSpliced.size() &&
                         Stats.Solve.GroupSpliced[size_t(Group)];
      if (SplicedPort) {
        // The port's group search was skipped: its variables are free in
        // the unifier, so the resolution comes from the cached record —
        // including the defaulting count and warning the cold run made.
        PortSpliceData D;
        if (!Hooks || !Hooks->Port ||
            !Hooks->Port(unsigned(Inst->Id), unsigned(PI), D) || !D.Resolved) {
          Stats.SpliceBroken = true;
          continue;
        }
        P.Resolved = D.Resolved;
        PortDefaulted = D.NumDefaulted;
        Stats.NumDefaulted += D.NumDefaulted;
        if (D.NumDefaulted && P.Width > 0)
          Diags.warning(P.Loc, "type of port '" + P.Name + "' on instance '" +
                                   Inst->Path +
                                   "' is unconstrained; defaulting to " +
                                   D.Resolved->str());
      } else {
        const Type *R = Engine.resolve(P.InferVar);
        if (!R->isGround()) {
          unsigned Before = Stats.NumDefaulted;
          R = groundDefault(R, TC, Stats.NumDefaulted);
          PortDefaulted = Stats.NumDefaulted - Before;
          if (PortDefaulted && P.Width > 0)
            Diags.warning(P.Loc, "type of port '" + P.Name +
                                     "' on instance '" + Inst->Path +
                                     "' is unconstrained; defaulting to " +
                                     R->str());
        }
        P.Resolved = R;
      }
      if (Group >= 0)
        Stats.PortGroups[{unsigned(Inst->Id), unsigned(PI)}] = {Group,
                                                                PortDefaulted};
    }
  }
  return Stats;
}
