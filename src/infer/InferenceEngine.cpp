//===- InferenceEngine.cpp - LSS type inference ------------------------------===//

#include "infer/InferenceEngine.h"

#include "netlist/Netlist.h"
#include "types/Type.h"

#include <cassert>
#include <list>
#include <map>
#include <numeric>

using namespace liberty;
using namespace liberty::infer;
using types::Type;

/// True if a disjunct node occurs anywhere in \p T (syntactically; the
/// caller resolves bindings as needed).
static bool containsDisjunct(const Type *T) {
  switch (T->getKind()) {
  case Type::Kind::Disjunct:
    return true;
  case Type::Kind::Array:
    return containsDisjunct(T->getElem());
  case Type::Kind::Struct:
    for (const auto &[Name, FieldTy] : T->getFields())
      if (containsDisjunct(FieldTy))
        return true;
    return false;
  default:
    return false;
  }
}

bool InferenceEngine::overBudget(const SolveOptions &Opts,
                                 SolveStats &Stats) const {
  if (U.getSteps() <= Opts.MaxSteps)
    return false;
  Stats.HitLimit = true;
  return true;
}

bool InferenceEngine::solveList(std::vector<TypePair> Work,
                                const SolveOptions &Opts, SolveStats &Stats,
                                unsigned Depth) {
  for (size_t I = 0; I < Work.size(); ++I) {
    if (overBudget(Opts, Stats))
      return false;
    const Type *A = U.find(Work[I].A);
    const Type *B = U.find(Work[I].B);
    if (A->isDisjunct() || B->isDisjunct()) {
      const Type *D = A->isDisjunct() ? A : B;
      const Type *O = A->isDisjunct() ? B : A;
      ++Stats.BranchPoints;
      for (const Type *Alt : D->getAlternatives()) {
        Unifier::Checkpoint CP = U.checkpoint();
        std::vector<TypePair> Rest;
        Rest.reserve(Work.size() - I);
        Rest.push_back(TypePair{Alt, O});
        Rest.insert(Rest.end(), Work.begin() + I + 1, Work.end());
        if (solveList(std::move(Rest), Opts, Stats, Depth + 1))
          return true;
        U.rollback(CP);
        if (overBudget(Opts, Stats))
          return false;
      }
      return false;
    }
    std::vector<TypePair> Deferred;
    if (!U.unifyStructural(A, B, Deferred))
      return false;
    Work.insert(Work.begin() + I + 1, Deferred.begin(), Deferred.end());
  }
  return true;
}

SolveStats InferenceEngine::solve(const std::vector<Constraint> &Constraints,
                                  const SolveOptions &Opts) {
  SolveStats Stats;
  Stats.NumConstraints = Constraints.size();
  uint64_t StepsBefore = U.getSteps();

  auto Fail = [&](const std::string &Msg, SourceLoc Loc) {
    Stats.Success = false;
    Stats.FailMessage = Msg;
    Stats.FailLoc = Loc;
    Stats.UnifySteps = U.getSteps() - StepsBefore;
    return Stats;
  };

  // Pending disjunctive work, with provenance for diagnostics.
  struct PendingItem {
    TypePair P;
    SourceLoc Loc;
    std::string Context;
  };
  std::list<PendingItem> Pending;

  if (Opts.ReorderSimpleFirst) {
    // Heuristic 1: unify the non-disjunctive constraints up front. They can
    // never branch, and their bindings prune disjuncts later.
    for (const Constraint &C : Constraints) {
      if (containsDisjunct(C.A) || containsDisjunct(C.B)) {
        ++Stats.NumDisjunctive;
        Pending.push_back(PendingItem{{C.A, C.B}, C.Loc, C.Context});
        continue;
      }
      std::vector<TypePair> Deferred;
      if (!U.unifyStructural(C.A, C.B, Deferred))
        return Fail(U.getLastFailure() + " (" + C.Context + ")", C.Loc);
      assert(Deferred.empty() && "non-disjunctive constraint deferred work");
    }
  } else {
    for (const Constraint &C : Constraints) {
      if (containsDisjunct(C.A) || containsDisjunct(C.B))
        ++Stats.NumDisjunctive;
      Pending.push_back(PendingItem{{C.A, C.B}, C.Loc, C.Context});
    }
  }

  if (Opts.ForcedDisjunctElimination) {
    // Heuristic 2: solve forced disjuncts without recursion. Trial-unify
    // each alternative in isolation; prune the impossible ones; commit when
    // exactly one remains.
    bool Progress = true;
    while (Progress && !Pending.empty()) {
      Progress = false;
      for (auto It = Pending.begin(); It != Pending.end();) {
        if (overBudget(Opts, Stats))
          return Fail("type inference exceeded its work budget", It->Loc);
        const Type *A = U.find(It->P.A);
        const Type *B = U.find(It->P.B);
        if (!A->isDisjunct() && !B->isDisjunct()) {
          // The constraint became simple under current bindings: solve it
          // directly, queueing any nested disjuncts it exposes.
          std::vector<TypePair> Deferred;
          if (!U.unifyStructural(A, B, Deferred))
            return Fail(U.getLastFailure() + " (" + It->Context + ")",
                        It->Loc);
          for (const TypePair &D : Deferred)
            Pending.push_back(PendingItem{D, It->Loc, It->Context});
          It = Pending.erase(It);
          Progress = true;
          continue;
        }
        const Type *D = A->isDisjunct() ? A : B;
        const Type *O = A->isDisjunct() ? B : A;
        std::vector<const Type *> Viable;
        for (const Type *Alt : D->getAlternatives()) {
          Unifier::Checkpoint CP = U.checkpoint();
          bool Ok = solveList({TypePair{Alt, O}}, Opts, Stats, 0);
          U.rollback(CP);
          if (Ok)
            Viable.push_back(Alt);
        }
        if (Viable.empty())
          return Fail("no alternative of " + D->str() + " is compatible "
                      "with " + O->str() + " (" + It->Context + ")",
                      It->Loc);
        if (Viable.size() == 1) {
          bool Ok = solveList({TypePair{Viable.front(), O}}, Opts, Stats, 0);
          assert(Ok && "forced alternative no longer unifiable");
          (void)Ok;
          It = Pending.erase(It);
          Progress = true;
          continue;
        }
        if (Viable.size() < D->getAlternatives().size()) {
          // Shrink the disjunct to the viable alternatives.
          It->P = TypePair{TC.getDisjunct(Viable), O};
          Progress = true;
        }
        ++It;
      }
    }
  }

  // Collect the residual (genuinely ambiguous) disjunctive constraints.
  std::vector<PendingItem> Residual(Pending.begin(), Pending.end());

  if (Residual.empty()) {
    Stats.Success = true;
    Stats.UnifySteps = U.getSteps() - StepsBefore;
    return Stats;
  }

  if (!Opts.Partition) {
    std::vector<TypePair> Work;
    Work.reserve(Residual.size());
    for (const PendingItem &P : Residual)
      Work.push_back(P.P);
    Stats.NumComponents = 1;
    if (!solveList(std::move(Work), Opts, Stats, 0))
      return Fail(Stats.HitLimit
                      ? "type inference exceeded its work budget"
                      : "no consistent assignment for overloaded components",
                  Residual.front().Loc);
    Stats.Success = true;
    Stats.UnifySteps = U.getSteps() - StepsBefore;
    return Stats;
  }

  // Heuristic 3: partition the residual constraints into variable-disjoint
  // components and search each independently.
  unsigned N = Residual.size();
  std::vector<unsigned> Rep(N);
  std::iota(Rep.begin(), Rep.end(), 0u);
  std::function<unsigned(unsigned)> FindRep = [&](unsigned X) {
    while (Rep[X] != X)
      X = Rep[X] = Rep[Rep[X]];
    return X;
  };
  std::map<uint32_t, unsigned> VarOwner;
  for (unsigned I = 0; I != N; ++I) {
    std::vector<uint32_t> Vars;
    U.collectUnboundVars(Residual[I].P.A, Vars);
    U.collectUnboundVars(Residual[I].P.B, Vars);
    for (uint32_t V : Vars) {
      auto [It, Inserted] = VarOwner.emplace(V, I);
      if (!Inserted)
        Rep[FindRep(I)] = FindRep(It->second);
    }
  }
  std::map<unsigned, std::vector<unsigned>> Components;
  for (unsigned I = 0; I != N; ++I)
    Components[FindRep(I)].push_back(I);
  Stats.NumComponents = Components.size();

  for (const auto &[Root, Members] : Components) {
    std::vector<TypePair> Work;
    Work.reserve(Members.size());
    for (unsigned I : Members)
      Work.push_back(Residual[I].P);
    if (!solveList(std::move(Work), Opts, Stats, 0))
      return Fail(Stats.HitLimit
                      ? "type inference exceeded its work budget"
                      : "no consistent assignment for overloaded components",
                  Residual[Members.front()].Loc);
  }

  Stats.Success = true;
  Stats.UnifySteps = U.getSteps() - StepsBefore;
  return Stats;
}

//===----------------------------------------------------------------------===//
// Netlist integration
//===----------------------------------------------------------------------===//

std::vector<Constraint>
liberty::infer::buildNetlistConstraints(netlist::Netlist &NL,
                                        types::TypeContext &TC) {
  std::vector<Constraint> Cs;
  // One fresh variable per port; the port's annotated scheme constrains it.
  for (const auto &Inst : NL.getInstances()) {
    for (netlist::Port &P : Inst->Ports) {
      P.InferVar = TC.freshVar(Inst->Path + "." + P.Name);
      if (P.Scheme)
        Cs.push_back(Constraint{P.InferVar, P.Scheme, P.Loc,
                                "annotation of port '" + P.Name +
                                    "' on instance '" + Inst->Path + "'"});
    }
    for (const auto &[LHS, RHS] : Inst->ExtraConstraints)
      Cs.push_back(Constraint{LHS, RHS, Inst->Loc,
                              "constrain statement of instance '" +
                                  Inst->Path + "'"});
  }
  // Connected ports share a type (modulo unresolved endpoints, which were
  // already diagnosed during elaboration).
  for (const auto &Conn : NL.getConnections()) {
    if (!Conn->isFullyResolved())
      continue;
    netlist::Port *PF = Conn->From.Inst->findPort(Conn->From.Port);
    netlist::Port *PT = Conn->To.Inst->findPort(Conn->To.Port);
    if (!PF || !PT || !PF->InferVar || !PT->InferVar)
      continue;
    Cs.push_back(Constraint{PF->InferVar, PT->InferVar, Conn->Loc,
                            "connection"});
    if (Conn->Annotation)
      Cs.push_back(Constraint{PF->InferVar, Conn->Annotation, Conn->Loc,
                              "connection annotation"});
  }
  return Cs;
}

/// Replaces any residual type variables (unconstrained polymorphism) with
/// int and residual disjuncts (unconstrained overloading) with their first
/// alternative, counting the substitutions.
static const Type *groundDefault(const Type *T, types::TypeContext &TC,
                                 unsigned &NumDefaulted) {
  switch (T->getKind()) {
  case Type::Kind::Int:
  case Type::Kind::Bool:
  case Type::Kind::Float:
  case Type::Kind::String:
    return T;
  case Type::Kind::Var:
    ++NumDefaulted;
    return TC.getInt();
  case Type::Kind::Disjunct:
    ++NumDefaulted;
    return groundDefault(T->getAlternatives().front(), TC, NumDefaulted);
  case Type::Kind::Array:
    return TC.getArray(groundDefault(T->getElem(), TC, NumDefaulted),
                       T->getArraySize());
  case Type::Kind::Struct: {
    std::vector<std::pair<std::string, const Type *>> Fields;
    for (const auto &[Name, FieldTy] : T->getFields())
      Fields.emplace_back(Name, groundDefault(FieldTy, TC, NumDefaulted));
    return TC.getStruct(std::move(Fields));
  }
  }
  return T;
}

NetlistInferenceStats
liberty::infer::inferNetlistTypes(netlist::Netlist &NL, types::TypeContext &TC,
                                  DiagnosticEngine &Diags,
                                  const SolveOptions &Opts) {
  NetlistInferenceStats Stats;
  std::vector<Constraint> Cs = buildNetlistConstraints(NL, TC);
  InferenceEngine Engine(TC);
  Stats.Solve = Engine.solve(Cs, Opts);
  if (!Stats.Solve.Success) {
    Diags.error(Stats.Solve.FailLoc,
                "type inference failed: " + Stats.Solve.FailMessage);
    return Stats;
  }
  for (const auto &Inst : NL.getInstances()) {
    for (netlist::Port &P : Inst->Ports) {
      if (!P.InferVar)
        continue;
      ++Stats.NumPorts;
      if (P.Scheme && !P.Scheme->isGround())
        ++Stats.NumPolymorphicPorts;
      const Type *R = Engine.resolve(P.InferVar);
      if (!R->isGround()) {
        unsigned Before = Stats.NumDefaulted;
        R = groundDefault(R, TC, Stats.NumDefaulted);
        if (Stats.NumDefaulted != Before && P.Width > 0)
          Diags.warning(P.Loc, "type of port '" + P.Name + "' on instance '" +
                                   Inst->Path +
                                   "' is unconstrained; defaulting to " +
                                   R->str());
      }
      P.Resolved = R;
    }
  }
  return Stats;
}
