//===- Unifier.h - Structural unification with rollback ---------*- C++ -*-===//
///
/// \file
/// Trail-based unifier over types::Type terms. Disjunctive schemes are not
/// unified here: when a disjunct meets another term, the pair is *deferred*
/// to the caller (the solver branches over alternatives). Bindings can be
/// rolled back to a checkpoint, which is what makes the exponential search
/// over disjuncts and the trial-unification heuristics affordable.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_INFER_UNIFIER_H
#define LIBERTY_INFER_UNIFIER_H

#include "types/TypeContext.h"

#include <cstdint>
#include <string>
#include <vector>

namespace liberty {
namespace infer {

/// An equality between two type terms, pending solution.
struct TypePair {
  const types::Type *A = nullptr;
  const types::Type *B = nullptr;
};

class Unifier {
public:
  explicit Unifier(types::TypeContext &TC) : TC(TC) {}

  /// Follows variable bindings at the top level only.
  const types::Type *find(const types::Type *T) const;

  /// Substitutes bindings everywhere; unbound variables remain.
  const types::Type *resolveDeep(const types::Type *T);

  /// Structurally unifies \p A and \p B. Nested (disjunct, other) pairs are
  /// appended to \p Deferred and treated as locally satisfied; the caller
  /// must branch over them. Returns false on a hard mismatch (bindings made
  /// before the failure remain; callers roll back via checkpoints).
  bool unifyStructural(const types::Type *A, const types::Type *B,
                       std::vector<TypePair> &Deferred);

  using Checkpoint = size_t;
  Checkpoint checkpoint() const { return Trail.size(); }
  void rollback(Checkpoint C);

  /// Copies \p Base's bindings into this unifier and clears the trail and
  /// step counter. Used by the parallel H3 solver: each variable-disjoint
  /// group searches on a scratch unifier seeded from the shared one, so
  /// the shared binding store is never written concurrently.
  void seedFrom(const Unifier &Base);

  /// The variable ids bound since construction/seedFrom, in binding order.
  /// Together with lookup() this is how a scratch unifier's results are
  /// harvested after a group solve.
  const std::vector<uint32_t> &getTrail() const { return Trail; }

  /// The binding of \p VarId, or null if unbound.
  const types::Type *lookup(uint32_t VarId) const {
    return getBinding(VarId);
  }

  /// Commits an externally computed binding (from a scratch unifier's
  /// trail) into this unifier. \p VarId must be unbound here.
  void adopt(uint32_t VarId, const types::Type *T) { bind(VarId, T); }

  /// Collects the ids of unbound variables occurring in \p T (after
  /// resolving bindings) into \p Out.
  void collectUnboundVars(const types::Type *T,
                          std::vector<uint32_t> &Out) const;

  uint64_t getSteps() const { return Steps; }

  /// Human-readable description of the last hard mismatch.
  const std::string &getLastFailure() const { return LastFailure; }

private:
  bool occurs(uint32_t VarId, const types::Type *T) const;
  void bind(uint32_t VarId, const types::Type *T);
  const types::Type *getBinding(uint32_t VarId) const;

  types::TypeContext &TC;
  std::vector<const types::Type *> Bindings; ///< Indexed by variable id.
  std::vector<uint32_t> Trail;
  uint64_t Steps = 0;
  std::string LastFailure;
};

} // namespace infer
} // namespace liberty

#endif // LIBERTY_INFER_UNIFIER_H
