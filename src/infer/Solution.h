//===- Solution.h - Stable inference-solution round-trip --------*- C++ -*-===//
///
/// \file
/// Byte-stable text serialization of a solved type assignment: every
/// resolved port type, the solver statistics, and the inference-phase
/// warnings (defaulting notes). This is the "solution" artifact of the
/// content-addressed compile cache (docs/API.md): a warm compile that
/// reloaded the elaborated netlist imports the solution and skips the
/// solver entirely, while still reporting the cold run's statistics and
/// diagnostics verbatim.
///
/// Format contract ("LSSSOL 2", current — the loader also accepts v1):
/// line oriented; every string (diagnostic messages, resolved type texts)
/// is interned into a header string table ("strtab N" + "s <%XX-escaped>"
/// lines, first-use order) and referenced by decimal id, so a type shared
/// by thousands of ports is stored once; ports referenced by dense
/// (instance, port) index into the creation-order netlist traversal.
/// "LSSSOL 1" is the same record grammar with strings %XX-escaped in
/// place. Because serial and parallel solves produce bit-identical
/// bindings (SolveOptions::NumThreads contract), the exported artifact is
/// byte-identical across --jobs settings — a regression test diffs the two.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_INFER_SOLUTION_H
#define LIBERTY_INFER_SOLUTION_H

#include "infer/InferenceEngine.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace liberty {

namespace netlist {
class Netlist;
}

namespace infer {

/// The LSSSOL version exportSolution writes by default. v3 (incremental
/// recompilation, docs/INCREMENTAL.md) extends v2 with per-group member
/// instance ids ("gm" records) and per-port group/defaulting columns on
/// the "p" records, and zeroes the per-group wall-time bits so an
/// incrementally spliced solution is byte-identical to a cold one. The
/// loader still accepts v1 and v2.
constexpr unsigned CurrentLSSSOLVersion = 3;

/// Renders the resolved port types of \p NL plus \p Stats and the
/// inference-phase diagnostics \p Diags as an LSSSOL artifact
/// (\p FormatVersion 2 = interned string table, 1 = legacy). Returns
/// false if \p Diags contains an error (failed solves are never cached).
bool exportSolution(const netlist::Netlist &NL,
                    const NetlistInferenceStats &Stats,
                    const std::vector<Diagnostic> &Diags, std::string &Out,
                    unsigned FormatVersion = CurrentLSSSOLVersion);

/// Parses an LSSSOL 1, 2, or 3 artifact and writes each recorded resolved type back
/// into \p NL's ports. Types are rebuilt in \p TC; statistics and replayed
/// diagnostics land in \p StatsOut / \p DiagsOut. Returns false — leaving
/// the netlist's resolved types unspecified — on any malformed input or
/// index out of range.
bool importSolution(const std::string &Text, netlist::Netlist &NL,
                    types::TypeContext &TC, NetlistInferenceStats &StatsOut,
                    std::vector<Diagnostic> &DiagsOut);

} // namespace infer
} // namespace liberty

#endif // LIBERTY_INFER_SOLUTION_H
