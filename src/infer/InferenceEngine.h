//===- InferenceEngine.h - LSS type inference -------------------*- C++ -*-===//
///
/// \file
/// The LSS type-inference solver (paper Section 5). The problem — assign a
/// basic type to every type variable under equality constraints where
/// schemes may be *disjunctive* — is NP-complete; the solver is a modified
/// unification algorithm that recurses over disjuncts, made practical by
/// three heuristics the paper describes:
///
///   H1  Reorder so non-disjunctive constraints are solved first (they never
///       branch and their bindings prune later disjuncts).
///   H2  Forced-disjunct elimination: trial-unify each alternative; prune
///       alternatives that fail in isolation; commit when exactly one
///       survives — all without recursion.
///   H3  Divide and conquer: partition the residual disjunctive constraints
///       into variable-disjoint groups and search each group independently,
///       replacing one exponential in the total by a sum of exponentials in
///       the (small) group sizes.
///
/// Each heuristic can be toggled, which is how bench_inference reproduces
/// the paper's "several seconds vs more than 12 hours" comparison as a
/// work-count curve.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_INFER_INFERENCEENGINE_H
#define LIBERTY_INFER_INFERENCEENGINE_H

#include "infer/Unifier.h"
#include "support/Diagnostics.h"

#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace liberty {

class PhaseTimer;

namespace netlist {
class Netlist;
class InstanceNode;
}

namespace infer {

/// Where a netlist constraint came from. Rendered into diagnostic text
/// lazily (renderContext), so the hot constraint-generation path never
/// builds strings for the overwhelmingly common case of constraints that
/// unify cleanly.
enum class ConstraintOriginKind : uint8_t {
  None,           ///< Synthetic/test constraint; Context carries the text.
  PortAnnotation, ///< Port scheme vs the port's inference variable.
  ConstrainStmt,  ///< `constrain` statement of an instance.
  Connection,     ///< Two connected ports share a type.
  ConnAnnotation, ///< Connection's explicit type annotation.
};

/// One equality constraint with provenance for diagnostics.
struct Constraint {
  const types::Type *A = nullptr;
  const types::Type *B = nullptr;
  SourceLoc Loc;
  /// Pre-rendered context for synthetic producers (tests, benches). Empty
  /// for netlist constraints, whose context is rendered on demand from
  /// the dense origin fields below.
  std::string Context;
  /// Hierarchical path of the instance this constraint came from (empty for
  /// synthetic systems). Budget-exhaustion diagnostics name the instances
  /// of the group that could not be solved. Netlist constraints leave this
  /// empty and carry Inst instead.
  std::string InstancePath;
  /// Dense origin: kind + the instance (and port index, for
  /// PortAnnotation) it came from. Only read on failure paths.
  ConstraintOriginKind Origin = ConstraintOriginKind::None;
  const netlist::InstanceNode *Inst = nullptr;
  /// Second endpoint instance for Connection/ConnAnnotation constraints
  /// (the `->` target side). Incremental recompilation uses it to decide
  /// which H3 groups an edited instance invalidates.
  const netlist::InstanceNode *Inst2 = nullptr;
  int PortIdx = -1;

  /// Diagnostic context text: Context if pre-rendered, else built from the
  /// dense origin. Cold path only.
  std::string renderContext() const;
  /// Hierarchical path of the originating instance ("" if unknown).
  const std::string &instancePath() const;
};

struct SolveOptions {
  bool ReorderSimpleFirst = true;      ///< Heuristic 1.
  bool ForcedDisjunctElimination = true; ///< Heuristic 2.
  bool Partition = true;               ///< Heuristic 3.
  uint64_t MaxSteps = 500000000;       ///< Work cap (unify steps).
  /// Wall-clock deadline for the whole solve in milliseconds; 0 disables.
  /// Unlike MaxSteps this is inherently nondeterministic — use it as an
  /// operational backstop (lssc --infer-deadline-ms), not in differential
  /// tests.
  uint64_t DeadlineMs = 0;
  /// Worker threads for the H3 group search: 1 solves the groups serially
  /// (the `--j1` path), N > 1 dispatches them to a thread pool, and 0
  /// picks one worker per hardware thread. Because the groups are
  /// variable-disjoint they never contend on bindings, and results are
  /// merged in deterministic group order, so every setting produces
  /// bit-identical bindings and statistics.
  unsigned NumThreads = 1;

  static SolveOptions naive() {
    SolveOptions O;
    O.ReorderSimpleFirst = false;
    O.ForcedDisjunctElimination = false;
    O.Partition = false;
    return O;
  }

  static SolveOptions parallel(unsigned Threads = 0) {
    SolveOptions O;
    O.NumThreads = Threads;
    return O;
  }
};

/// Per-group observability for one H3 component search. Groups are indexed
/// in deterministic order (by their first residual constraint), which is
/// also the order their results are merged, so these records are identical
/// whether the groups ran serially or in parallel.
struct GroupStats {
  unsigned NumConstraints = 0;
  uint64_t UnifySteps = 0;
  uint64_t BranchPoints = 0;
  double WallMs = 0.0; ///< Wall time of this group's search in isolation.
  bool Success = false;
  bool HitLimit = false;    ///< Failed by exhausting the step budget.
  bool HitDeadline = false; ///< Failed by exceeding the wall-clock deadline.
  /// Filled for unsolved groups only: the distinct instance paths the
  /// group's constraints mention (capped at 8), the total number of
  /// alternatives across its disjunctive constraints, and the location of
  /// its first constraint — the payload of the structured
  /// budget-exhaustion diagnostic.
  std::vector<std::string> InstancePaths;
  unsigned NumDisjunctAlternatives = 0;
  SourceLoc FirstLoc;
};

/// One port-resolution query for H3 group attribution: the port's
/// inference variable plus the dense creation id of the instance it lives
/// on. solve() records, per query, which group the query's resolution
/// depends on, and folds the instance into that group's member set.
struct SpliceQuery {
  const types::Type *Var = nullptr;
  unsigned InstId = 0;
};

/// Decides, per H3 group, whether a cached solution may be spliced in
/// place of searching the group. Receives the group index and its sorted,
/// deduped member instance ids; returns true — filling \p Out with the
/// cached group statistics — to splice. Groups whose cached stats report
/// failure or a constraint-count mismatch are searched live regardless.
using GroupSpliceOracle = std::function<bool(
    unsigned Group, const std::vector<unsigned> &MemberInsts,
    GroupStats &Out)>;

/// Incremental-solve request handed to InferenceEngine::solve. Queries are
/// always allowed (attribution is cheap and what a cold compile persists);
/// the oracle is only set on the incremental path.
struct SpliceRequest {
  const std::vector<SpliceQuery> *Queries = nullptr;
  GroupSpliceOracle Oracle;
};

struct SolveStats {
  bool Success = false;
  bool HitLimit = false;
  bool HitDeadline = false; ///< The wall-clock deadline expired.
  uint64_t UnifySteps = 0;
  uint64_t BranchPoints = 0;
  unsigned NumConstraints = 0;
  unsigned NumDisjunctive = 0;
  unsigned NumComponents = 0; ///< H3 groups actually searched.
  unsigned ThreadsUsed = 1;   ///< Pool size the group search ran with.
  /// Groups left unsolved by budget/deadline exhaustion. Unlike a genuine
  /// unsatisfiability (which stops the merge at the first failed group),
  /// running out of budget degrades gracefully: every other group is still
  /// solved and committed, and only these groups' variables stay free.
  unsigned NumUnsolved = 0;
  std::vector<GroupStats> Groups; ///< One entry per searched H3 group.
  /// Filled when solve() received a SpliceRequest with queries: per query,
  /// the index of the H3 group the query's resolution depends on, or -1.
  /// Queries whose variables span several groups get the lowest group and
  /// the groups are linked (they splice or search together).
  std::vector<int> QueryGroups;
  /// Sorted, deduped instance ids each group's constraints (and attributed
  /// query ports) mention. Empty when unknown (synthetic constraints
  /// without instance provenance) — such groups never splice.
  std::vector<std::vector<unsigned>> GroupMembers;
  /// Per group: true when its search was skipped and cached statistics
  /// were spliced in (incremental recompilation).
  std::vector<bool> GroupSpliced;
  std::string FailMessage;
  SourceLoc FailLoc;
};

class InferenceEngine {
public:
  explicit InferenceEngine(types::TypeContext &TC) : TC(TC), U(TC) {}

  /// Solves \p Constraints. On success the engine's unifier holds the
  /// satisfying bindings; query them with resolve(). \p Splice, when
  /// non-null, requests H3 group attribution for its queries and (when its
  /// oracle is set) per-group solution splicing — see docs/INCREMENTAL.md.
  SolveStats solve(const std::vector<Constraint> &Constraints,
                   const SolveOptions &Opts,
                   const SpliceRequest *Splice = nullptr);

  /// Deep-resolves \p T through the current bindings.
  const types::Type *resolve(const types::Type *T) { return U.resolveDeep(T); }

  Unifier &getUnifier() { return U; }

private:
  /// Depth-first search over disjunct alternatives on \p WU, which is the
  /// engine's own unifier for the serial phases and a per-group scratch
  /// unifier during the (possibly parallel) H3 group search.
  bool solveList(Unifier &WU, std::vector<TypePair> Work,
                 const SolveOptions &Opts, SolveStats &Stats, unsigned Depth);
  /// True when \p WU exhausted the step budget or the solve deadline
  /// passed; flags the condition on \p Stats. Safe to call concurrently
  /// from group workers (the deadline is set once before they start).
  bool overBudget(const Unifier &WU, const SolveOptions &Opts,
                  SolveStats &Stats) const;

  types::TypeContext &TC;
  Unifier U;
  /// Absolute deadline for the current solve() (steady clock); only valid
  /// while HasDeadline.
  std::chrono::steady_clock::time_point Deadline;
  bool HasDeadline = false;
};

/// Result of running inference over a whole netlist.
struct NetlistInferenceStats {
  SolveStats Solve;
  unsigned NumPorts = 0;
  unsigned NumPolymorphicPorts = 0; ///< Ports whose scheme had variables.
  unsigned NumDefaulted = 0; ///< Unconstrained variables defaulted to int.
  /// Per resolved port whose resolution depends on an H3 group:
  /// (instance id, port index) -> (group index, defaulting substitutions
  /// its resolution made). Persisted by LSSSOL v3 so a later incremental
  /// compile can splice the port without re-running the group search.
  std::map<std::pair<unsigned, unsigned>, std::pair<int, unsigned>>
      PortGroups;
  /// Set when a splice oracle accepted a group but the cached per-port
  /// record backing it was missing; the caller must fall back to a cold
  /// solve (the netlist's resolved types are incomplete). Never set on
  /// non-incremental compiles.
  bool SpliceBroken = false;
};

/// Cached resolution of one port in a spliced group: final (post-default)
/// type plus the defaulting-substitution count its cold resolution made.
struct PortSpliceData {
  const types::Type *Resolved = nullptr;
  unsigned NumDefaulted = 0;
};

/// Incremental-solve hooks for inferNetlistTypes. Oracle gates per-group
/// splicing; Port supplies the cached resolution for each port of a
/// spliced group (return false if the record is missing — the run is then
/// marked SpliceBroken).
struct NetlistSpliceHooks {
  GroupSpliceOracle Oracle;
  std::function<bool(unsigned InstId, unsigned PortIdx, PortSpliceData &Out)>
      Port;
};

/// Generates constraints from \p NL (port schemes, connections, connection
/// annotations, `constrain` statements), solves them, and writes each
/// port's resolved ground type back into the netlist. Errors (unsolvable
/// constraints) are reported through \p Diags. When \p Timer is non-null
/// the constraint-gen and solve phases are recorded on it, with unify-step
/// and group counters.
NetlistInferenceStats inferNetlistTypes(netlist::Netlist &NL,
                                        types::TypeContext &TC,
                                        DiagnosticEngine &Diags,
                                        const SolveOptions &Opts,
                                        PhaseTimer *Timer = nullptr,
                                        const NetlistSpliceHooks *Hooks =
                                            nullptr);

/// Builds (without solving) the constraint system for \p NL. Exposed so
/// benches can measure the solver on real model constraint systems.
std::vector<Constraint> buildNetlistConstraints(netlist::Netlist &NL,
                                                types::TypeContext &TC);

} // namespace infer
} // namespace liberty

#endif // LIBERTY_INFER_INFERENCEENGINE_H
