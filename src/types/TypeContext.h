//===- TypeContext.h - Type arena and conversion ----------------*- C++ -*-===//
///
/// \file
/// Allocates and (for scalars) uniques Types, mints fresh type variables,
/// and converts syntactic lss::TypeExpr annotations into semantic Types.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_TYPES_TYPECONTEXT_H
#define LIBERTY_TYPES_TYPECONTEXT_H

#include "types/Type.h"

#include <functional>
#include <map>
#include <memory>
#include <optional>

namespace liberty {

class DiagnosticEngine;
struct SourceLoc;

namespace lss {
class TypeExpr;
class Expr;
}

namespace types {

class TypeContext {
public:
  TypeContext();

  const Type *getInt() const { return IntTy; }
  const Type *getBool() const { return BoolTy; }
  const Type *getFloat() const { return FloatTy; }
  const Type *getString() const { return StringTy; }

  const Type *getArray(const Type *Elem, int64_t Size);
  const Type *
  getStruct(std::vector<std::pair<std::string, const Type *>> Fields);
  const Type *getDisjunct(std::vector<const Type *> Alternatives);

  /// Mints a fresh type variable. \p NameHint is the source spelling (e.g.
  /// "a" for 'a); the printed name also carries the unique id.
  const Type *freshVar(const std::string &NameHint);

  /// Number of variables minted so far; variable ids are in [0, count).
  uint32_t getNumVars() const { return NextVarId; }

  /// Callback used to evaluate array-extent expressions inside type
  /// annotations (extents may reference structural parameters).
  using SizeEvaluator =
      std::function<std::optional<int64_t>(const lss::Expr *)>;

  /// Converts a syntactic annotation to a semantic Type. Type-variable
  /// spellings are resolved through \p VarMap, minting fresh variables for
  /// unseen spellings (so all ports of one module instance share its
  /// variables). Returns null and reports through \p Diags on error.
  const Type *convert(const lss::TypeExpr *TE,
                      std::map<std::string, const Type *> &VarMap,
                      const SizeEvaluator &EvalSize, DiagnosticEngine &Diags);

private:
  Type *create(Type::Kind K);

  std::vector<std::unique_ptr<Type>> Arena;
  const Type *IntTy;
  const Type *BoolTy;
  const Type *FloatTy;
  const Type *StringTy;
  uint32_t NextVarId = 0;
};

} // namespace types
} // namespace liberty

#endif // LIBERTY_TYPES_TYPECONTEXT_H
