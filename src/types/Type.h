//===- Type.h - LSS type terms ----------------------------------*- C++ -*-===//
///
/// \file
/// The semantic type representation used by the inference engine and the
/// simulator. One arena-allocated `Type` class covers the paper's whole
/// grammar (Section 5):
///
///   Basic types   t  ::= int | bool | float | string | t[n] | struct{...}
///   Type schemes  t* ::= a | t | t*[n] | struct{i:t*;...} | (t1*|...|tn*)
///
/// Ground types and schemes share the representation; a scheme is simply a
/// Type containing Var or Disjunct nodes. The unifier (src/infer) resolves
/// Var nodes through a binding store, never mutating Types themselves.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_TYPES_TYPE_H
#define LIBERTY_TYPES_TYPE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace liberty {
namespace types {

class Type {
public:
  enum class Kind {
    Int,
    Bool,
    Float,
    String,
    Array,    ///< t[n], fixed extent
    Struct,   ///< struct { name : t; ... }
    Var,      ///< a type variable (scheme only)
    Disjunct, ///< (t1 | ... | tn) — exactly one alternative statically
  };

  Kind getKind() const { return K; }

  bool isVar() const { return K == Kind::Var; }
  bool isDisjunct() const { return K == Kind::Disjunct; }
  bool isScalar() const {
    return K == Kind::Int || K == Kind::Bool || K == Kind::Float ||
           K == Kind::String;
  }

  /// True if no Var or Disjunct occurs anywhere in this type.
  bool isGround() const;

  /// For Var types: the globally unique variable id.
  uint32_t getVarId() const;
  /// For Var types: a display name such as "'a#3".
  const std::string &getVarName() const;

  /// For Array types.
  const Type *getElem() const;
  int64_t getArraySize() const;

  /// For Struct types.
  const std::vector<std::pair<std::string, const Type *>> &getFields() const;

  /// For Disjunct types.
  const std::vector<const Type *> &getAlternatives() const;

  /// Renders the type in LSS syntax, e.g. "int[4]" or "(int|float)".
  std::string str() const;

private:
  friend class TypeContext;

  explicit Type(Kind K) : K(K) {}

  Kind K;
  // Var:
  uint32_t VarId = 0;
  std::string VarName;
  // Array:
  const Type *Elem = nullptr;
  int64_t ArraySize = 0;
  // Struct:
  std::vector<std::pair<std::string, const Type *>> Fields;
  // Disjunct:
  std::vector<const Type *> Alternatives;
};

/// Structural equality ignoring nothing — two types are equal iff they have
/// identical shape (Var nodes compare by id).
bool structurallyEqual(const Type *A, const Type *B);

} // namespace types
} // namespace liberty

#endif // LIBERTY_TYPES_TYPE_H
