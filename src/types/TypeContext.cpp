//===- TypeContext.cpp - Type arena and conversion -------------------------===//

#include "types/TypeContext.h"

#include "lss/AST.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"

using namespace liberty;
using namespace liberty::types;

TypeContext::TypeContext() {
  IntTy = create(Type::Kind::Int);
  BoolTy = create(Type::Kind::Bool);
  FloatTy = create(Type::Kind::Float);
  StringTy = create(Type::Kind::String);
}

Type *TypeContext::create(Type::Kind K) {
  Arena.push_back(std::unique_ptr<Type>(new Type(K)));
  return Arena.back().get();
}

const Type *TypeContext::getArray(const Type *Elem, int64_t Size) {
  Type *T = create(Type::Kind::Array);
  T->Elem = Elem;
  T->ArraySize = Size;
  return T;
}

const Type *TypeContext::getStruct(
    std::vector<std::pair<std::string, const Type *>> Fields) {
  Type *T = create(Type::Kind::Struct);
  T->Fields = std::move(Fields);
  return T;
}

const Type *
TypeContext::getDisjunct(std::vector<const Type *> Alternatives) {
  Type *T = create(Type::Kind::Disjunct);
  T->Alternatives = std::move(Alternatives);
  return T;
}

const Type *TypeContext::freshVar(const std::string &NameHint) {
  Type *T = create(Type::Kind::Var);
  T->VarId = NextVarId++;
  T->VarName = NameHint + "#" + std::to_string(T->VarId);
  return T;
}

const Type *TypeContext::convert(const lss::TypeExpr *TE,
                                 std::map<std::string, const Type *> &VarMap,
                                 const SizeEvaluator &EvalSize,
                                 DiagnosticEngine &Diags) {
  using lss::TypeExpr;
  switch (TE->getKind()) {
  case TypeExpr::Kind::Basic: {
    switch (cast<lss::BasicTypeExpr>(TE)->getBasicKind()) {
    case lss::BasicTypeExpr::Basic::Int:
      return getInt();
    case lss::BasicTypeExpr::Basic::Bool:
      return getBool();
    case lss::BasicTypeExpr::Basic::Float:
      return getFloat();
    case lss::BasicTypeExpr::Basic::String:
      return getString();
    }
    return nullptr;
  }
  case TypeExpr::Kind::Var: {
    const std::string &Name = cast<lss::VarTypeExpr>(TE)->getName();
    auto It = VarMap.find(Name);
    if (It != VarMap.end())
      return It->second;
    const Type *Fresh = freshVar(Name);
    VarMap.emplace(Name, Fresh);
    return Fresh;
  }
  case TypeExpr::Kind::Array: {
    const auto *A = cast<lss::ArrayTypeExpr>(TE);
    const Type *Elem = convert(A->getElem(), VarMap, EvalSize, Diags);
    if (!Elem)
      return nullptr;
    if (!A->getSizeExpr()) {
      Diags.error(TE->getLoc(),
                  "array type in a data annotation requires an extent");
      return nullptr;
    }
    std::optional<int64_t> Size = EvalSize(A->getSizeExpr());
    if (!Size) {
      Diags.error(TE->getLoc(), "cannot evaluate array extent");
      return nullptr;
    }
    if (*Size < 0) {
      Diags.error(TE->getLoc(), "array extent must be non-negative");
      return nullptr;
    }
    return getArray(Elem, *Size);
  }
  case TypeExpr::Kind::Struct: {
    const auto *S = cast<lss::StructTypeExpr>(TE);
    std::vector<std::pair<std::string, const Type *>> Fields;
    for (const auto &[Name, FieldTE] : S->getFields()) {
      const Type *FieldTy = convert(FieldTE, VarMap, EvalSize, Diags);
      if (!FieldTy)
        return nullptr;
      Fields.emplace_back(Name, FieldTy);
    }
    return getStruct(std::move(Fields));
  }
  case TypeExpr::Kind::Disjunct: {
    const auto *D = cast<lss::DisjunctTypeExpr>(TE);
    std::vector<const Type *> Alts;
    for (const lss::TypeExpr *AltTE : D->getAlternatives()) {
      const Type *Alt = convert(AltTE, VarMap, EvalSize, Diags);
      if (!Alt)
        return nullptr;
      Alts.push_back(Alt);
    }
    return getDisjunct(std::move(Alts));
  }
  case TypeExpr::Kind::InstanceRef:
    Diags.error(TE->getLoc(),
                "'instance ref' is not a data type; it may only type "
                "elaboration variables");
    return nullptr;
  }
  return nullptr;
}
