//===- TypeIO.h - Textual type round-trip -----------------------*- C++ -*-===//
///
/// \file
/// Parses the textual type rendering produced by Type::str() back into
/// arena-allocated Types. This is the type leg of the content-addressed
/// artifact cache: resolved port types and polymorphic schemes are stored
/// as text inside serialized netlist / inference-solution artifacts and
/// reconstructed in a fresh TypeContext on reload.
///
/// The grammar is exactly what Type::str() emits:
///
///   type   := base ("[" int "]")*
///   base   := "int" | "bool" | "float" | "string"
///           | "struct{" (ident ":" type ";")* "}"
///           | "(" type ("|" type)* ")"
///           | "'" varname
///
/// Type variables are resolved through a caller-provided map keyed by the
/// serialized variable token (e.g. "a#17"), so variable sharing within one
/// artifact survives the round-trip even though the fresh context mints new
/// variable ids.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_TYPES_TYPEIO_H
#define LIBERTY_TYPES_TYPEIO_H

#include <map>
#include <string>

namespace liberty {
namespace types {

class Type;
class TypeContext;

/// Parses \p Text (a Type::str() rendering) into \p TC. Variable tokens are
/// looked up in \p VarMap; unseen tokens mint fresh variables and are added
/// to the map so later occurrences alias the same Type. Returns null on any
/// syntax error (never crashes, never throws): malformed cache entries must
/// degrade to a cache miss.
const Type *parseTypeText(const std::string &Text, TypeContext &TC,
                          std::map<std::string, const Type *> &VarMap);

} // namespace types
} // namespace liberty

#endif // LIBERTY_TYPES_TYPEIO_H
