//===- Type.cpp - LSS type terms -------------------------------------------===//

#include "types/Type.h"

#include <cassert>

using namespace liberty;
using namespace liberty::types;

bool Type::isGround() const {
  switch (K) {
  case Kind::Int:
  case Kind::Bool:
  case Kind::Float:
  case Kind::String:
    return true;
  case Kind::Var:
  case Kind::Disjunct:
    return false;
  case Kind::Array:
    return Elem->isGround();
  case Kind::Struct:
    for (const auto &[Name, FieldTy] : Fields)
      if (!FieldTy->isGround())
        return false;
    return true;
  }
  return false;
}

uint32_t Type::getVarId() const {
  assert(K == Kind::Var && "not a type variable");
  return VarId;
}

const std::string &Type::getVarName() const {
  assert(K == Kind::Var && "not a type variable");
  return VarName;
}

const Type *Type::getElem() const {
  assert(K == Kind::Array && "not an array type");
  return Elem;
}

int64_t Type::getArraySize() const {
  assert(K == Kind::Array && "not an array type");
  return ArraySize;
}

const std::vector<std::pair<std::string, const Type *>> &
Type::getFields() const {
  assert(K == Kind::Struct && "not a struct type");
  return Fields;
}

const std::vector<const Type *> &Type::getAlternatives() const {
  assert(K == Kind::Disjunct && "not a disjunctive type");
  return Alternatives;
}

std::string Type::str() const {
  switch (K) {
  case Kind::Int:
    return "int";
  case Kind::Bool:
    return "bool";
  case Kind::Float:
    return "float";
  case Kind::String:
    return "string";
  case Kind::Var:
    return "'" + VarName;
  case Kind::Array:
    return Elem->str() + "[" + std::to_string(ArraySize) + "]";
  case Kind::Struct: {
    std::string S = "struct{";
    for (const auto &[Name, FieldTy] : Fields)
      S += Name + ":" + FieldTy->str() + ";";
    return S + "}";
  }
  case Kind::Disjunct: {
    std::string S = "(";
    for (unsigned I = 0; I != Alternatives.size(); ++I) {
      if (I)
        S += "|";
      S += Alternatives[I]->str();
    }
    return S + ")";
  }
  }
  return "<invalid>";
}

bool liberty::types::structurallyEqual(const Type *A, const Type *B) {
  if (A == B)
    return true;
  if (A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case Type::Kind::Int:
  case Type::Kind::Bool:
  case Type::Kind::Float:
  case Type::Kind::String:
    return true; // Same kind, scalar => equal.
  case Type::Kind::Var:
    return A->getVarId() == B->getVarId();
  case Type::Kind::Array:
    return A->getArraySize() == B->getArraySize() &&
           structurallyEqual(A->getElem(), B->getElem());
  case Type::Kind::Struct: {
    const auto &FA = A->getFields();
    const auto &FB = B->getFields();
    if (FA.size() != FB.size())
      return false;
    for (unsigned I = 0; I != FA.size(); ++I)
      if (FA[I].first != FB[I].first ||
          !structurallyEqual(FA[I].second, FB[I].second))
        return false;
    return true;
  }
  case Type::Kind::Disjunct: {
    const auto &DA = A->getAlternatives();
    const auto &DB = B->getAlternatives();
    if (DA.size() != DB.size())
      return false;
    for (unsigned I = 0; I != DA.size(); ++I)
      if (!structurallyEqual(DA[I], DB[I]))
        return false;
    return true;
  }
  }
  return false;
}
