//===- TypeIO.cpp - Textual type round-trip ----------------------------------===//

#include "types/TypeIO.h"

#include "types/Type.h"
#include "types/TypeContext.h"

#include <cctype>
#include <cstdlib>

using namespace liberty;
using namespace liberty::types;

namespace {

/// Recursive-descent parser over the Type::str() grammar. Every production
/// checks bounds and returns null on the first malformed byte; the caller
/// treats that as a corrupted cache entry.
class TypeTextParser {
public:
  TypeTextParser(const std::string &Text, TypeContext &TC,
                 std::map<std::string, const Type *> &VarMap)
      : Text(Text), TC(TC), VarMap(VarMap) {}

  const Type *parse() {
    const Type *T = parseType();
    // The whole string must be consumed: trailing garbage means the entry
    // was truncated or spliced.
    if (!T || Pos != Text.size())
      return nullptr;
    return T;
  }

private:
  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return atEnd() ? '\0' : Text[Pos]; }
  bool consume(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  bool consumeWord(const char *W) {
    size_t Len = std::char_traits<char>::length(W);
    if (Text.compare(Pos, Len, W) != 0)
      return false;
    Pos += Len;
    return true;
  }

  /// ident := [A-Za-z_][A-Za-z0-9_]*  (struct field names)
  bool parseIdent(std::string &Out) {
    size_t Start = Pos;
    if (atEnd() || !(std::isalpha((unsigned char)peek()) || peek() == '_'))
      return false;
    while (!atEnd() &&
           (std::isalnum((unsigned char)peek()) || peek() == '_'))
      ++Pos;
    Out = Text.substr(Start, Pos - Start);
    return true;
  }

  /// varname := [A-Za-z0-9_#]+  (NameHint "#" id, as freshVar spells it)
  bool parseVarName(std::string &Out) {
    size_t Start = Pos;
    while (!atEnd() && (std::isalnum((unsigned char)peek()) ||
                        peek() == '_' || peek() == '#'))
      ++Pos;
    if (Pos == Start)
      return false;
    Out = Text.substr(Start, Pos - Start);
    return true;
  }

  bool parseInt(int64_t &Out) {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (!atEnd() && std::isdigit((unsigned char)peek()))
      ++Pos;
    if (Pos == Start || (Text[Start] == '-' && Pos == Start + 1))
      return false;
    Out = std::strtoll(Text.substr(Start, Pos - Start).c_str(), nullptr, 10);
    return true;
  }

  const Type *parseType() {
    if (Depth > MaxDepth)
      return nullptr; // Hostile nesting in a mutated entry.
    ++Depth;
    const Type *T = parseBase();
    // Array suffixes bind left-to-right: int[2][3] is (int[2])[3].
    while (T && consume('[')) {
      int64_t Size = 0;
      if (!parseInt(Size) || !consume(']') || Size < 0) {
        --Depth;
        return nullptr;
      }
      T = TC.getArray(T, Size);
    }
    --Depth;
    return T;
  }

  const Type *parseBase() {
    switch (peek()) {
    case 'i':
      return consumeWord("int") ? TC.getInt() : nullptr;
    case 'b':
      return consumeWord("bool") ? TC.getBool() : nullptr;
    case 'f':
      return consumeWord("float") ? TC.getFloat() : nullptr;
    case '\'': {
      ++Pos;
      std::string Name;
      if (!parseVarName(Name))
        return nullptr;
      auto [It, Inserted] = VarMap.emplace(Name, nullptr);
      if (Inserted) {
        // Strip the "#id" suffix for the hint; the fresh variable gets a
        // new unique id in this context.
        size_t Hash = Name.find('#');
        It->second = TC.freshVar(Name.substr(0, Hash));
      }
      return It->second;
    }
    case 's': {
      if (consumeWord("string"))
        return TC.getString();
      if (!consumeWord("struct{"))
        return nullptr;
      std::vector<std::pair<std::string, const Type *>> Fields;
      while (!consume('}')) {
        std::string Field;
        if (!parseIdent(Field) || !consume(':'))
          return nullptr;
        const Type *FT = parseType();
        if (!FT || !consume(';'))
          return nullptr;
        Fields.emplace_back(std::move(Field), FT);
      }
      return TC.getStruct(std::move(Fields));
    }
    case '(': {
      ++Pos;
      std::vector<const Type *> Alts;
      do {
        const Type *A = parseType();
        if (!A)
          return nullptr;
        Alts.push_back(A);
      } while (consume('|'));
      if (!consume(')') || Alts.empty())
        return nullptr;
      return TC.getDisjunct(std::move(Alts));
    }
    default:
      return nullptr;
    }
  }

  static constexpr unsigned MaxDepth = 200;

  const std::string &Text;
  TypeContext &TC;
  std::map<std::string, const Type *> &VarMap;
  size_t Pos = 0;
  unsigned Depth = 0;
};

} // namespace

const Type *
liberty::types::parseTypeText(const std::string &Text, TypeContext &TC,
                              std::map<std::string, const Type *> &VarMap) {
  return TypeTextParser(Text, TC, VarMap).parse();
}
