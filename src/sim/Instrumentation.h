//===- Instrumentation.h - AOP-style data collection ------------*- C++ -*-===//
///
/// \file
/// The aspect-oriented instrumentation layer (paper Section 4.5): models
/// emit events — declared events plus an automatic event whenever a value
/// is sent on a port — and user collectors fill these join points without
/// modifying any component. Collectors match on (instance-path pattern,
/// event name); a trailing '*' in the pattern matches any suffix.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SIM_INSTRUMENTATION_H
#define LIBERTY_SIM_INSTRUMENTATION_H

#include "interp/Value.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace liberty {
namespace sim {

/// One emitted event occurrence.
struct Event {
  const std::string *InstancePath = nullptr;
  const std::string *Name = nullptr; ///< "port:<name>" for automatic events.
  uint64_t Cycle = 0;
  const interp::Value *Payload = nullptr;
};

using CollectorFn = std::function<void(const Event &)>;

class Instrumentation {
public:
  /// Attaches \p Fn to every event whose instance path matches
  /// \p PathPattern and whose name matches \p EventPattern. Patterns are
  /// exact strings, optionally ending in '*' (prefix match); "*" matches
  /// everything.
  void attach(std::string PathPattern, std::string EventPattern,
              CollectorFn Fn);

  /// Convenience collector counting matching occurrences; returns a
  /// reference to the counter, valid for the lifetime of this object.
  uint64_t &attachCounter(std::string PathPattern, std::string EventPattern);

  /// Called by the simulator at each join point.
  void emit(const Event &E);

  bool empty() const { return Collectors.empty(); }
  uint64_t totalEmitted() const { return NumEmitted; }

  /// Incremented on every attach. The simulator compares this across
  /// cycles so a collector attached mid-run forces one exhaustive cycle,
  /// refreshing the replay records selective evaluation serves events
  /// from.
  unsigned getVersion() const { return Version; }

  static bool matches(const std::string &Pattern, const std::string &Text);

private:
  struct Entry {
    std::string PathPattern;
    std::string EventPattern;
    CollectorFn Fn;
  };
  std::vector<Entry> Collectors;
  std::vector<std::unique_ptr<uint64_t>> Counters;
  uint64_t NumEmitted = 0;
  unsigned Version = 0;
};

} // namespace sim
} // namespace liberty

#endif // LIBERTY_SIM_INSTRUMENTATION_H
