//===- SimRuntime.h - Per-instance simulation record ------------*- C++ -*-===//
///
/// \file
/// The definition of Simulator::Runtime, the per-instance record through
/// which leaf behaviors see the simulation (it implements
/// bsl::BehaviorContext over the simulator's dense net array and the
/// instance's slot tables). Historically a Simulator.cpp-private class; it
/// lives in this internal header so the compiled-kernel lowering
/// (sim/KernelBuilder) and the kernel interpreter (sim/CompiledKernel) can
/// read the same slot tables the interpreted engines use. Not part of the
/// public sim/ API — include Simulator.h instead.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SIM_SIMRUNTIME_H
#define LIBERTY_SIM_SIMRUNTIME_H

#include "sim/Simulator.h"

#include <map>
#include <mutex>

namespace liberty {
namespace sim {

class Simulator::Runtime : public bsl::BehaviorContext {
public:
  Runtime(Simulator &Sim, netlist::InstanceNode *Node)
      : Sim(Sim), Node(Node), Stats(&Sim.Activity) {}

  Simulator &Sim;
  netlist::InstanceNode *Node;
  /// Null for hierarchical instances (which may still carry userpoints and
  /// runtime variables).
  std::unique_ptr<bsl::LeafBehavior> Behavior;

  /// One entry per declared port, addressed by the dense port id that
  /// bindPort() hands out. Components have a handful of ports, so the
  /// name-based accessors scan this linearly; the id-based accessors index
  /// it directly. The table never changes after construct(), so pointers
  /// into it (EventName) are stable.
  struct PortSlot {
    std::string Name;
    std::vector<int> Nets;   ///< Net id per port instance (-1 unconnected).
    std::string EventName;   ///< "port:<name>" for outputs, "" for inputs.
    bool IsOutput = false;
  };
  std::vector<PortSlot> PortSlots;

  /// Behavior state and BSL runtime variables, lowered from a string map
  /// to dense slots resolved at bind time.
  bsl::StateTable StateVars;

  int findPortId(const std::string &Port) const {
    for (size_t I = 0; I != PortSlots.size(); ++I)
      if (PortSlots[I].Name == Port)
        return int(I);
    return -1;
  }
  PortSlot &addSlot(const std::string &Port) {
    PortSlots.emplace_back();
    PortSlots.back().Name = Port;
    return PortSlots.back();
  }

  struct CompiledUserpoint {
    const lss::UserpointSig *Sig = nullptr;
    std::unique_ptr<bsl::BslProgram> Prog;
  };
  std::map<std::string, CompiledUserpoint> Userpoints;
  int ScheduleNode = -1;

  /// Behavior declares hasPureEvaluate(): sends are a function of input
  /// net values only, so the selective engine may skip evaluate() in
  /// quiescent cycles.
  bool Pure = false;
  /// Net ids this leaf drives / reads (deduplicated, for the selective
  /// engine's per-group preparation and absence passes).
  std::vector<int> OutputNets;
  std::vector<int> InputNets;
  /// The automatic port events evaluate() emitted last time it ran, as
  /// (event-name, net-id) pairs. Recorded only while instrumentation is
  /// attached and the runtime is pure; replayed when the group is skipped
  /// so collectors see a bit-identical event stream.
  std::vector<std::pair<const std::string *, int>> LastSends;

  /// Where activity counters go. Points at the simulator-global stats for
  /// the serial engine; the wavefront engine repoints it at the executing
  /// worker's shard before each evaluation.
  ActivityStats *Stats;
  /// The owning schedule group's fixpoint-dirty flag (&Sim.GroupDirty[G]);
  /// points at OwnDirty for runtimes outside the schedule.
  char *FixpointDirty = &OwnDirty;
  char OwnDirty = 0;
  /// The owning group's event buffer when the wavefront engine is active,
  /// else null (events are emitted directly).
  std::vector<BufferedEvent> *Buf = nullptr;

  void resetState() {
    // Blank values but keep slot identities: state ids bound in init() and
    // Value pointers handed out by findState() survive the reset.
    StateVars.resetValues();
    for (const netlist::RuntimeVar &RV : Node->RuntimeVars)
      StateVars[RV.Name] = RV.Init;
  }

  // BehaviorContext implementation.
  int getWidth(const std::string &Port) const override {
    // For leaves the slot table is authoritative (its length is the
    // inferred width); hierarchical runtimes fall back to the netlist.
    if (int Id = findPortId(Port); Id >= 0)
      return int(PortSlots[size_t(Id)].Nets.size());
    const netlist::Port *P = Node->findPort(Port);
    return P ? P->Width : 0;
  }

  const types::Type *getPortType(const std::string &Port) const override {
    const netlist::Port *P = Node->findPort(Port);
    return P ? P->Resolved : nullptr;
  }

  const interp::Value *getInput(const std::string &Port,
                                int Index) const override {
    return getInput(findPortId(Port), Index);
  }

  void setOutput(const std::string &Port, int Index,
                 interp::Value V) override {
    setOutput(findPortId(Port), Index, std::move(V));
  }

  int bindPort(const std::string &Port) const override {
    return findPortId(Port);
  }

  int getWidth(int PortId) const override {
    if (PortId < 0 || PortId >= int(PortSlots.size()))
      return 0;
    return int(PortSlots[size_t(PortId)].Nets.size());
  }

  const interp::Value *getInput(int PortId, int Index) const override {
    if (PortId < 0 || PortId >= int(PortSlots.size()))
      return nullptr;
    const PortSlot &PS = PortSlots[size_t(PortId)];
    if (Index < 0 || Index >= int(PS.Nets.size()))
      return nullptr;
    int NetId = PS.Nets[size_t(Index)];
    if (NetId < 0)
      return nullptr;
    const Net &N = Sim.Nets[NetId];
    return N.Has ? &N.V : nullptr;
  }

  void setOutput(int PortId, int Index, interp::Value V) override {
    if (PortId < 0 || PortId >= int(PortSlots.size()))
      return; // Unconnected port: the value vanishes.
    PortSlot &PS = PortSlots[size_t(PortId)];
    if (Index < 0 || Index >= int(PS.Nets.size()))
      return;
    int NetId = PS.Nets[size_t(Index)];
    if (NetId < 0)
      return;
    Net &N = Sim.Nets[NetId];
    ++Stats->NetWrites;
    if (!N.Has) {
      // First send this evaluation round. The group dirty flag feeds the
      // cyclic groups' fixpoint test and must fire on presence appearing
      // even if the value matches, preserving the iteration counts of
      // exhaustive evaluation. DirtyCycle, by contrast, only stamps
      // observable cross-cycle change (value differs, or the net was
      // absent last cycle).
      *FixpointDirty = 1;
      if (!N.PrevHas || !N.V.equals(V)) {
        N.V = std::move(V);
        N.DirtyCycle = Sim.Cycle;
        ++Stats->NetChanges;
      }
      N.Has = true;
    } else if (!N.V.equals(V)) {
      // Re-send with a different value (fixpoint iteration).
      N.V = std::move(V);
      N.DirtyCycle = Sim.Cycle;
      *FixpointDirty = 1;
      ++Stats->NetChanges;
    }
    if (!Sim.Instr.empty() && PS.IsOutput) {
      if (Sim.BufferEvents) {
        BufferedEvent BE;
        BE.InstancePath = &Node->Path;
        BE.Name = &PS.EventName;
        BE.Cycle = Sim.Cycle;
        BE.Payload = N.V;
        Buf->push_back(std::move(BE));
      } else {
        Event E;
        E.InstancePath = &Node->Path;
        E.Name = &PS.EventName;
        E.Cycle = Sim.Cycle;
        E.Payload = &N.V;
        Sim.Instr.emit(E);
      }
      if (Pure)
        LastSends.emplace_back(&PS.EventName, NetId);
    }
  }

  const interp::Value *getParam(const std::string &Name) const override {
    auto It = Node->Params.find(Name);
    return It == Node->Params.end() ? nullptr : &It->second;
  }

  bool hasUserpoint(const std::string &Name) const override {
    return Userpoints.count(Name) != 0;
  }

  interp::Value callUserpoint(const std::string &Name,
                              std::vector<interp::Value> Args) override {
    auto It = Userpoints.find(Name);
    if (It == Userpoints.end() || !It->second.Prog)
      return interp::Value();
    bsl::BslEnv Env;
    if (const lss::UserpointSig *Sig = It->second.Sig) {
      unsigned N = std::min(Args.size(), Sig->Args.size());
      for (unsigned I = 0; I != N; ++I)
        Env.Args[Sig->Args[I].first] = std::move(Args[I]);
    }
    Env.RuntimeVars = &StateVars;
    Env.Params = &Node->Params;
    if (Sim.Pool) {
      // Wavefront engine: the diagnostic engine is not thread-safe, so
      // userpoint execution (which may report runtime errors) is
      // serialized. Userpoint-bearing behaviors are rare on the hot path.
      std::lock_guard<std::mutex> Lock(Sim.DiagsMutex);
      return runUserpointLocked(It->second, Env);
    }
    return runUserpointLocked(It->second, Env);
  }

  interp::Value runUserpointLocked(CompiledUserpoint &CU, bsl::BslEnv &Env) {
    unsigned ErrorsBefore = Sim.Diags.getNumErrors();
    interp::Value Result = CU.Prog->run(Env, Sim.Diags);
    if (Sim.Diags.getNumErrors() != ErrorsBefore)
      Sim.RuntimeErrors.store(true, std::memory_order_relaxed);
    return Result;
  }

  interp::Value &state(const std::string &Name) override {
    return StateVars[Name];
  }

  int bindState(const std::string &Name) override {
    return StateVars.bind(Name);
  }

  interp::Value &state(int StateId) override { return StateVars.slot(StateId); }

  void emitEvent(const std::string &EventName, interp::Value Payload) override {
    if (Sim.Instr.empty())
      return;
    if (Sim.BufferEvents) {
      // The name may be a caller temporary, so the buffered record owns a
      // copy (NameStore); the payload is copied regardless.
      BufferedEvent BE;
      BE.InstancePath = &Node->Path;
      BE.NameStore = EventName;
      BE.Cycle = Sim.Cycle;
      BE.Payload = std::move(Payload);
      Buf->push_back(std::move(BE));
      return;
    }
    Event E;
    E.InstancePath = &Node->Path;
    E.Name = &EventName;
    E.Cycle = Sim.Cycle;
    E.Payload = &Payload;
    Sim.Instr.emit(E);
  }

  uint64_t getCycle() const override { return Sim.Cycle; }

  const std::string &getInstancePath() const override { return Node->Path; }
};

} // namespace sim
} // namespace liberty

#endif // LIBERTY_SIM_SIMRUNTIME_H
