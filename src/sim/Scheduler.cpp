//===- Scheduler.cpp - Static concurrency scheduling -------------------------===//

#include "sim/Scheduler.h"

#include <algorithm>
#include <cassert>

using namespace liberty;
using namespace liberty::sim;

namespace {

/// Assigns each group its ASAP (longest-path) depth in the condensation:
/// level 0 for groups with no predecessors, otherwise one more than the
/// deepest predecessor. A single ascending sweep suffices because Tarjan's
/// condensation order puts every edge source at a smaller group index than
/// its target, so a group's level is final before any of its successors
/// are relaxed. The DFS order interleaves independent chains, so levels
/// are deliberately NOT contiguous index ranges — ASAP packing is what
/// lets a wide netlist present all its independent groups in one level.
void assignLevels(Schedule &S, int NumNodes,
                  const std::vector<std::vector<int>> &Successors) {
  int NumGroups = int(S.Groups.size());
  std::vector<int> NodeGroup(NumNodes, -1);
  for (int G = 0; G != NumGroups; ++G)
    for (int Node : S.Groups[G])
      NodeGroup[Node] = G;

  S.GroupLevel.assign(NumGroups, 0);
  int NumLevels = NumGroups ? 1 : 0;
  for (int G = 0; G != NumGroups; ++G)
    for (int Node : S.Groups[G])
      for (int V : Successors[Node]) {
        int GV = NodeGroup[V];
        if (GV == G)
          continue; // Intra-group (cyclic) edge.
        assert(G < GV && "condensation order is not topological");
        S.GroupLevel[GV] = std::max(S.GroupLevel[GV], S.GroupLevel[G] + 1);
        NumLevels = std::max(NumLevels, S.GroupLevel[GV] + 1);
      }

  S.Levels.assign(NumLevels, {});
  for (int G = 0; G != NumGroups; ++G)
    S.Levels[S.GroupLevel[G]].push_back(G); // Ascending within each level.
  S.MaxLevel = 0;
  for (const std::vector<int> &L : S.Levels)
    S.MaxLevel = std::max(S.MaxLevel, unsigned(L.size()));
}

} // namespace

Schedule liberty::sim::computeSchedule(
    int NumNodes, const std::vector<std::vector<int>> &Successors) {
  assert(static_cast<int>(Successors.size()) == NumNodes &&
         "adjacency size mismatch");

  // Iterative Tarjan. Tarjan emits SCCs in reverse topological order of the
  // condensation, so reversing the emission order yields the schedule.
  std::vector<int> Index(NumNodes, -1), LowLink(NumNodes, 0);
  std::vector<bool> OnStack(NumNodes, false);
  std::vector<int> Stack;
  std::vector<std::vector<int>> SCCs;
  int NextIndex = 0;

  struct Frame {
    int Node;
    size_t EdgeIdx;
  };
  std::vector<Frame> CallStack;

  for (int Start = 0; Start != NumNodes; ++Start) {
    if (Index[Start] != -1)
      continue;
    CallStack.push_back(Frame{Start, 0});
    Index[Start] = LowLink[Start] = NextIndex++;
    Stack.push_back(Start);
    OnStack[Start] = true;

    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      int U = F.Node;
      if (F.EdgeIdx < Successors[U].size()) {
        int V = Successors[U][F.EdgeIdx++];
        if (Index[V] == -1) {
          Index[V] = LowLink[V] = NextIndex++;
          Stack.push_back(V);
          OnStack[V] = true;
          CallStack.push_back(Frame{V, 0});
        } else if (OnStack[V]) {
          LowLink[U] = std::min(LowLink[U], Index[V]);
        }
        continue;
      }
      // U is finished.
      if (LowLink[U] == Index[U]) {
        std::vector<int> SCC;
        while (true) {
          int W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SCC.push_back(W);
          if (W == U)
            break;
        }
        std::sort(SCC.begin(), SCC.end());
        SCCs.push_back(std::move(SCC));
      }
      CallStack.pop_back();
      if (!CallStack.empty()) {
        int Parent = CallStack.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[U]);
      }
    }
  }

  Schedule S;
  S.Groups.assign(SCCs.rbegin(), SCCs.rend());

  // Structural counts, once, at construction (not per accessor call).
  S.NumCyclic = 0;
  S.MaxGroup = 0;
  for (const auto &G : S.Groups) {
    if (G.size() > 1)
      ++S.NumCyclic;
    S.MaxGroup = std::max(S.MaxGroup, unsigned(G.size()));
  }

  assignLevels(S, NumNodes, Successors);
  return S;
}

void liberty::sim::computeGroupSummaries(
    Schedule &S, const std::vector<std::vector<int>> &NodeInputNets,
    const std::vector<bool> &NodePure) {
  S.GroupInputNets.assign(S.Groups.size(), {});
  S.GroupSkippable.assign(S.Groups.size(), false);
  S.NumSkippable = 0;
  for (size_t G = 0; G != S.Groups.size(); ++G) {
    std::vector<int> &Inputs = S.GroupInputNets[G];
    bool AllPure = true;
    for (int Node : S.Groups[G]) {
      assert(Node >= 0 &&
             static_cast<size_t>(Node) < NodeInputNets.size() &&
             "node id out of range");
      Inputs.insert(Inputs.end(), NodeInputNets[Node].begin(),
                    NodeInputNets[Node].end());
      AllPure = AllPure && NodePure[Node];
    }
    std::sort(Inputs.begin(), Inputs.end());
    Inputs.erase(std::unique(Inputs.begin(), Inputs.end()), Inputs.end());
    // Cyclic groups are never skipped: their fixpoint iteration already
    // quiesces in one settled pass, and always evaluating them keeps the
    // selective and exhaustive event streams identical.
    S.GroupSkippable[G] = S.Groups[G].size() == 1 && AllPure;
    if (S.GroupSkippable[G])
      ++S.NumSkippable;
  }
}
