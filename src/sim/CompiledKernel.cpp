//===- CompiledKernel.cpp - Flat cycle kernel interpreter ---------------------===//
///
/// \file
/// The compiled engine's per-cycle loop. Each specialized op replays the
/// corresponding corelib behavior's evaluate() body over dense net ids;
/// the write helper mirrors Runtime::setOutput exactly, minus the
/// selective-trace bookkeeping (DirtyCycle stamps, fixpoint dirty flags,
/// replay records, activity counters) that exhaustive evaluation never
/// observes. Event emission — one automatic port event per write call,
/// payload read back from the net after the write — is kept call-for-call
/// identical so traces match the serial interpreter bit for bit.
///
//===----------------------------------------------------------------------===//

#include "sim/CompiledKernel.h"

#include "sim/SimRuntime.h"

#include <sstream>

using namespace liberty;
using namespace liberty::sim;
using interp::Value;

const std::string &CompiledKernel::sinkEventName() {
  static const std::string Name = "received";
  return Name;
}

const char *CompiledKernel::opKindName(OpKind K) {
  switch (K) {
  case OpKind::Generic:
    return "generic";
  case OpKind::ConstSource:
    return "const_source";
  case OpKind::CounterSource:
    return "counter_source";
  case OpKind::Adder:
    return "adder";
  case OpKind::Fanout:
    return "fanout";
  case OpKind::DelayEval:
    return "delay_eval";
  case OpKind::Sink:
    return "sink";
  }
  return "generic";
}

const char *CompiledKernel::seqKindName(SeqKind K) {
  switch (K) {
  case SeqKind::GenericEot:
    return "eot";
  case SeqKind::DelayLatch:
    return "delay_latch";
  }
  return "eot";
}

namespace {

/// Runtime::setOutput's net-update rule for a connected net, without the
/// stats/selective bookkeeping: presence appears, and the stored value is
/// only reassigned when it observably changed (same equals() guard, so
/// Value identity churn matches the interpreter). Templated so the
/// private Simulator::Net type is named only inside the friended caller.
template <class NetT> inline void writeNet(NetT &N, const Value &V) {
  if (!N.Has) {
    if (!N.PrevHas || !N.V.equals(V))
      N.V = V;
    N.Has = true;
  } else if (!N.V.equals(V)) {
    N.V = V;
  }
}

/// writeNet for the all-integer fast path: same change-detection rule
/// (equals() on an Int value is a kind + payload compare), but the store
/// is an in-place setInt with no Value temporary.
template <class NetT> inline void writeNetInt(NetT &N, int64_t V) {
  if (!N.Has) {
    if (!N.PrevHas || !N.V.isInt() || N.V.getInt() != V)
      N.V.setInt(V);
    N.Has = true;
  } else if (!N.V.isInt() || N.V.getInt() != V) {
    N.V.setInt(V);
  }
}

} // namespace

void CompiledKernel::run(Simulator &Sim, uint64_t N) {
  // Collectors only attach between step() calls, so the emptiness test
  // hoists out of the cycle loop. The compiled engine never skips or
  // replays, so a mid-run attach needs no forced-full-cycle handling —
  // but keep the version current so a later engine-agnostic caller sees
  // consistent state.
  const bool Emit = !Sim.Instr.empty();
  Sim.LastInstrVersion = Sim.Instr.getVersion();
  const int32_t *Pool = NetPool.data();
  Simulator::Net *Nets = Sim.Nets.data();

  for (uint64_t Step = 0; Step != N; ++Step) {
    const uint64_t Cycle = Sim.Cycle;
    for (const Op &O : Ops) {
      // Prepare: snapshot last cycle's presence on the op's output nets
      // and blank it (Generic ops carry an empty range — evaluateGroup
      // prepares its own members).
      for (int32_t K = 0; K != O.Prep.Count; ++K) {
        Simulator::Net &Nt = Nets[Pool[O.Prep.Begin + K]];
        Nt.PrevHas = Nt.Has;
        Nt.Has = false;
      }
      switch (O.Kind) {
      case OpKind::Generic:
        Sim.evaluateGroup(size_t(O.Group), Sim.Activity);
        break;

      case OpKind::ConstSource:
        // Const is always makeInt(ImmA) (classifyGroup only specializes
        // integer-valued const_source params).
        for (int32_t K = 0; K != O.Out.Count; ++K) {
          Simulator::Net &Nt = Nets[Pool[O.Out.Begin + K]];
          writeNetInt(Nt, O.ImmA);
          if (Emit)
            Sim.Instr.emit(Event{O.Path, O.EventName, Cycle, &Nt.V});
        }
        break;

      case OpKind::CounterSource: {
        const int64_t CV = O.ImmA + O.ImmB * int64_t(Cycle);
        for (int32_t K = 0; K != O.Out.Count; ++K) {
          Simulator::Net &Nt = Nets[Pool[O.Out.Begin + K]];
          writeNetInt(Nt, CV);
          if (Emit)
            Sim.Instr.emit(Event{O.Path, O.EventName, Cycle, &Nt.V});
        }
        break;
      }

      case OpKind::Adder: {
        // In = {in1[0], in2[0]} (either may be -1: never fires, exactly
        // like getInput on an unconnected port). Out holds at most the
        // one connected out[0] net.
        int32_t A = Pool[O.In.Begin], B = Pool[O.In.Begin + 1];
        if (A < 0 || B < 0)
          break;
        const Simulator::Net &NA = Nets[A], &NB = Nets[B];
        if (!NA.Has || !NB.Has)
          break;
        if (NA.V.isInt() && NB.V.isInt()) {
          const int64_t Sum = NA.V.getInt() + NB.V.getInt();
          for (int32_t K = 0; K != O.Out.Count; ++K) {
            Simulator::Net &Nt = Nets[Pool[O.Out.Begin + K]];
            writeNetInt(Nt, Sum);
            if (Emit)
              Sim.Instr.emit(Event{O.Path, O.EventName, Cycle, &Nt.V});
          }
          break;
        }
        const Value Sum =
            Value::makeFloat(NA.V.getNumeric() + NB.V.getNumeric());
        for (int32_t K = 0; K != O.Out.Count; ++K) {
          Simulator::Net &Nt = Nets[Pool[O.Out.Begin + K]];
          writeNet(Nt, Sum);
          if (Emit)
            Sim.Instr.emit(Event{O.Path, O.EventName, Cycle, &Nt.V});
        }
        break;
      }

      case OpKind::Fanout: {
        int32_t InNet = Pool[O.In.Begin];
        if (InNet < 0 || !Nets[InNet].Has)
          break;
        const Value &V = Nets[InNet].V;
        if (V.isInt()) {
          const int64_t IV = V.getInt();
          for (int32_t K = 0; K != O.Out.Count; ++K) {
            Simulator::Net &Nt = Nets[Pool[O.Out.Begin + K]];
            writeNetInt(Nt, IV);
            if (Emit)
              Sim.Instr.emit(Event{O.Path, O.EventName, Cycle, &Nt.V});
          }
          break;
        }
        for (int32_t K = 0; K != O.Out.Count; ++K) {
          Simulator::Net &Nt = Nets[Pool[O.Out.Begin + K]];
          writeNet(Nt, V);
          if (Emit)
            Sim.Instr.emit(Event{O.Path, O.EventName, Cycle, &Nt.V});
        }
        break;
      }

      case OpKind::DelayEval:
        if (O.State->isInt()) {
          const int64_t SV = O.State->getInt();
          for (int32_t K = 0; K != O.Out.Count; ++K) {
            Simulator::Net &Nt = Nets[Pool[O.Out.Begin + K]];
            writeNetInt(Nt, SV);
            if (Emit)
              Sim.Instr.emit(Event{O.Path, O.EventName, Cycle, &Nt.V});
          }
          break;
        }
        for (int32_t K = 0; K != O.Out.Count; ++K) {
          Simulator::Net &Nt = Nets[Pool[O.Out.Begin + K]];
          writeNet(Nt, *O.State);
          if (Emit)
            Sim.Instr.emit(Event{O.Path, O.EventName, Cycle, &Nt.V});
        }
        break;

      case OpKind::Sink:
        // In lists the connected input nets in port-index order; the
        // declared "received" event fires per present value, after the
        // count update, exactly as Sink::evaluate does.
        for (int32_t K = 0; K != O.In.Count; ++K) {
          const Simulator::Net &Nt = Nets[Pool[O.In.Begin + K]];
          if (!Nt.Has)
            continue;
          Value &Count = *O.State;
          Count.setInt(Count.isInt() ? Count.getInt() + 1 : 1);
          if (Emit)
            Sim.Instr.emit(Event{O.Path, O.EventName, Cycle, &Nt.V});
        }
        break;
      }
    }

    // Sequential phase, in runtime index order (== runSequentialPhase),
    // then the end_of_timestep userpoints.
    for (const SeqOp &S : SeqOps) {
      if (S.Kind == SeqKind::DelayLatch) {
        if (S.InNet >= 0 && Nets[S.InNet].Has) {
          const Value &V = Nets[S.InNet].V;
          if (V.isInt())
            S.State->setInt(V.getInt());
          else
            *S.State = V;
        }
      } else {
        Simulator::Runtime *RT = Sim.Runtimes[size_t(S.RuntimeIdx)].get();
        RT->Behavior->endOfTimestep(*RT);
      }
    }
    Sim.runEndOfTimestepUserpoints();

    ++Sim.Cycle;
    ++Sim.Activity.Cycles;
  }
}

//===----------------------------------------------------------------------===//
// LSSKRN 1 serialization
//===----------------------------------------------------------------------===//

std::string CompiledKernel::serialize() const {
  std::ostringstream OS;
  OS << "LSSKRN 1\n";
  OS << "counts " << Ops.size() << " " << SeqOps.size() << " "
     << NetPool.size() << "\n";
  auto EmitRange = [&](const char *Tag, const Range &R) {
    OS << " " << Tag << " " << R.Count;
    for (int32_t K = 0; K != R.Count; ++K)
      OS << " " << NetPool[size_t(R.Begin + K)];
  };
  for (const Op &O : Ops) {
    OS << "op " << opKindName(O.Kind) << " " << O.Group << " " << O.RuntimeIdx
       << " " << O.ImmA << " " << O.ImmB;
    EmitRange("prep", O.Prep);
    EmitRange("out", O.Out);
    EmitRange("in", O.In);
    OS << "\n";
  }
  for (const SeqOp &S : SeqOps)
    OS << "seq " << seqKindName(S.Kind) << " " << S.RuntimeIdx << " "
       << S.InNet << "\n";
  OS << "end\n";
  return OS.str();
}
