//===- Scheduler.h - Static concurrency scheduling --------------*- C++ -*-===//
///
/// \file
/// Static evaluation-order scheduling for the generated simulator (the
/// paper cites this analysis as [12], Penry & August DAC'03). Leaf
/// instances form a dependency graph — an edge u→v when v combinationally
/// reads a net driven by u. The schedule is the condensation's topological
/// order; singleton groups evaluate exactly once per cycle, multi-node
/// groups (combinational cycles) iterate to a fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SIM_SCHEDULER_H
#define LIBERTY_SIM_SCHEDULER_H

#include <vector>

namespace liberty {
namespace sim {

struct Schedule {
  /// Strongly connected components in topological order; each inner vector
  /// lists node ids (in deterministic ascending order within a group).
  std::vector<std::vector<int>> Groups;

  /// Selective-trace summaries, filled by computeGroupSummaries once the
  /// caller knows each node's input nets and purity. GroupInputNets[G] is
  /// the sorted, deduplicated union of the input nets the members of
  /// group G read; GroupSkippable[G] is true when the per-cycle loop may
  /// skip G outright whenever none of those nets changed this cycle
  /// (singleton groups whose behavior has a pure evaluate — cyclic groups
  /// always iterate, so their fixpoint restores any transient state).
  std::vector<std::vector<int>> GroupInputNets;
  std::vector<bool> GroupSkippable;

  unsigned numSkippableGroups() const {
    unsigned N = 0;
    for (bool B : GroupSkippable)
      if (B)
        ++N;
    return N;
  }

  unsigned numCyclicGroups() const {
    unsigned N = 0;
    for (const auto &G : Groups)
      if (G.size() > 1)
        ++N;
    return N;
  }
  unsigned maxGroupSize() const {
    unsigned N = 0;
    for (const auto &G : Groups)
      if (G.size() > N)
        N = G.size();
    return N;
  }
};

/// Computes the schedule for a graph of \p NumNodes nodes given forward
/// adjacency \p Successors (duplicates allowed). Iterative Tarjan SCC, so
/// large graphs cannot overflow the C++ stack.
Schedule computeSchedule(int NumNodes,
                         const std::vector<std::vector<int>> &Successors);

/// Precomputes the per-group activity summaries selective-trace
/// evaluation consults each cycle. \p NodeInputNets and \p NodePure are
/// indexed by the node ids stored in \p S.Groups (callers may have
/// remapped them after computeSchedule), listing every input net a node
/// reads and whether its behavior has a pure evaluate.
void computeGroupSummaries(Schedule &S,
                           const std::vector<std::vector<int>> &NodeInputNets,
                           const std::vector<bool> &NodePure);

} // namespace sim
} // namespace liberty

#endif // LIBERTY_SIM_SCHEDULER_H
