//===- Scheduler.h - Static concurrency scheduling --------------*- C++ -*-===//
///
/// \file
/// Static evaluation-order scheduling for the generated simulator (the
/// paper cites this analysis as [12], Penry & August DAC'03). Leaf
/// instances form a dependency graph — an edge u→v when v combinationally
/// reads a net driven by u. The schedule is the condensation's topological
/// order; singleton groups evaluate exactly once per cycle, multi-node
/// groups (combinational cycles) iterate to a fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SIM_SCHEDULER_H
#define LIBERTY_SIM_SCHEDULER_H

#include <vector>

namespace liberty {
namespace sim {

struct Schedule {
  /// Strongly connected components in topological order; each inner vector
  /// lists node ids (in deterministic ascending order within a group).
  std::vector<std::vector<int>> Groups;

  unsigned numCyclicGroups() const {
    unsigned N = 0;
    for (const auto &G : Groups)
      if (G.size() > 1)
        ++N;
    return N;
  }
  unsigned maxGroupSize() const {
    unsigned N = 0;
    for (const auto &G : Groups)
      if (G.size() > N)
        N = G.size();
    return N;
  }
};

/// Computes the schedule for a graph of \p NumNodes nodes given forward
/// adjacency \p Successors (duplicates allowed). Iterative Tarjan SCC, so
/// large graphs cannot overflow the C++ stack.
Schedule computeSchedule(int NumNodes,
                         const std::vector<std::vector<int>> &Successors);

} // namespace sim
} // namespace liberty

#endif // LIBERTY_SIM_SCHEDULER_H
