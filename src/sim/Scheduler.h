//===- Scheduler.h - Static concurrency scheduling --------------*- C++ -*-===//
///
/// \file
/// Static evaluation-order scheduling for the generated simulator (the
/// paper cites this analysis as [12], Penry & August DAC'03). Leaf
/// instances form a dependency graph — an edge u→v when v combinationally
/// reads a net driven by u. The schedule is the condensation's topological
/// order; singleton groups evaluate exactly once per cycle, multi-node
/// groups (combinational cycles) iterate to a fixpoint.
///
/// On top of the linear order the scheduler assigns each group a *level*
/// for the wavefront (level-parallel) engine: groups in the same level
/// have no edges between them, and every edge source lives in a strictly
/// earlier level, so all groups of one level may evaluate concurrently
/// with a barrier between levels. Levels are ASAP (longest-path) depths
/// over the condensation — a group's level is one more than the maximum
/// level of its predecessors — which packs every independent group into
/// the earliest possible wavefront and keeps wide netlists wide even
/// though the DFS-based topological order interleaves producer/consumer
/// chains. Level membership is therefore NOT contiguous in group index;
/// the simulator restores the serial event order by buffering a whole
/// cycle's events per group and flushing them in ascending group index at
/// the end of the combinational phase.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SIM_SCHEDULER_H
#define LIBERTY_SIM_SCHEDULER_H

#include <vector>

namespace liberty {
namespace sim {

struct Schedule {
  /// Strongly connected components in topological order; each inner vector
  /// lists node ids (in deterministic ascending order within a group).
  std::vector<std::vector<int>> Groups;

  /// Wavefront levels: Levels[L] lists the group indices (ascending)
  /// evaluated concurrently as level L. Every group's predecessors (edge
  /// sources) lie in levels < L. The levels partition [0, NumGroups).
  std::vector<std::vector<int>> Levels;
  /// GroupLevel[G] is the level index of group G.
  std::vector<int> GroupLevel;

  /// Selective-trace summaries, filled by computeGroupSummaries once the
  /// caller knows each node's input nets and purity. GroupInputNets[G] is
  /// the sorted, deduplicated union of the input nets the members of
  /// group G read; GroupSkippable[G] is true when the per-cycle loop may
  /// skip G outright whenever none of those nets changed this cycle
  /// (singleton groups whose behavior has a pure evaluate — cyclic groups
  /// always iterate, so their fixpoint restores any transient state).
  std::vector<std::vector<int>> GroupInputNets;
  std::vector<bool> GroupSkippable;

  /// Cached structural counts, computed once during schedule construction
  /// (computeSchedule / computeGroupSummaries) rather than rescanned on
  /// every accessor call.
  unsigned NumSkippable = 0;
  unsigned NumCyclic = 0;
  unsigned MaxGroup = 0;
  unsigned MaxLevel = 0; ///< Widest level (group count).

  unsigned numSkippableGroups() const { return NumSkippable; }
  unsigned numCyclicGroups() const { return NumCyclic; }
  unsigned maxGroupSize() const { return MaxGroup; }
  unsigned numLevels() const { return unsigned(Levels.size()); }
  unsigned maxLevelWidth() const { return MaxLevel; }
};

/// Computes the schedule for a graph of \p NumNodes nodes given forward
/// adjacency \p Successors (duplicates allowed). Iterative Tarjan SCC, so
/// large graphs cannot overflow the C++ stack. Also assigns wavefront
/// levels and fills the cached structural counts (except NumSkippable,
/// which computeGroupSummaries owns).
Schedule computeSchedule(int NumNodes,
                         const std::vector<std::vector<int>> &Successors);

/// Precomputes the per-group activity summaries selective-trace
/// evaluation consults each cycle. \p NodeInputNets and \p NodePure are
/// indexed by the node ids stored in \p S.Groups (callers may have
/// remapped them after computeSchedule), listing every input net a node
/// reads and whether its behavior has a pure evaluate.
void computeGroupSummaries(Schedule &S,
                           const std::vector<std::vector<int>> &NodeInputNets,
                           const std::vector<bool> &NodePure);

} // namespace sim
} // namespace liberty

#endif // LIBERTY_SIM_SCHEDULER_H
