//===- CompiledKernel.h - Flat cycle kernel for the compiled engine -*- C++ -*-===//
///
/// \file
/// The compiled simulation engine's execution plan: the elaborated netlist,
/// lowered by sim/KernelBuilder into a flat structure-of-arrays program that
/// one tight loop replays every cycle. Where the interpreted engines walk
/// schedule groups and dispatch through LeafBehavior virtual calls, the
/// kernel holds:
///
///  - one Op per schedule group, in the precomputed ASAP evaluation order
///    (ascending group index — the serial engine's order);
///  - devirtualized op kinds for the hot corelib behaviors (const/counter
///    sources, adder, fanout, delay, sink), whose evaluate() bodies are
///    replayed directly over dense net ids with no virtual call, no
///    port-slot indirection, and no string hashing;
///  - a Generic kind that falls back to Simulator::evaluateGroup for
///    everything else (multi-member fixpoint groups, unspecialized
///    behaviors), so diagnostics and fixpoint semantics stay bit-identical;
///  - a sequential-phase op list with the no-op endOfTimestep calls of
///    eot-free behaviors elided and the delay latch devirtualized.
///
/// All net/runtime id lists live in one shared operand pool (NetPool) and
/// ops reference it by [Begin, Count) ranges — the structure-of-arrays
/// layout keeps the per-cycle walk cache-linear.
///
/// Semantics contract: running the kernel is bit-identical (events, final
/// net values, runtime state) to the exhaustive serial interpreter, which
/// the repo's differential tests pin to the selective and wavefront
/// engines too. The kernel intentionally does not maintain the
/// selective-trace machinery (DirtyCycle stamps, replay records) or the
/// per-evaluate activity counters — neither is observable in exhaustive
/// runs; ActivityStats under the compiled engine reports cycles and the
/// generic-op counters only.
///
/// The structural plan serializes as the byte-stable "LSSKRN 1" artifact
/// (see serialize()), cached by driver/CompileService keyed off the
/// elaboration key; KernelBuilder::load revalidates every id against the
/// live simulator before adopting a cached plan.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SIM_COMPILEDKERNEL_H
#define LIBERTY_SIM_COMPILEDKERNEL_H

#include "interp/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace liberty {
namespace sim {

class Simulator;

/// How the kernel for a compiled-engine simulator came to be, reported
/// through --stats-json.
struct KernelStats {
  bool FromCache = false;   ///< Adopted from a cached LSSKRN artifact.
  double BuildMs = 0.0;     ///< Wall time spent lowering (or validating).
  unsigned NumOps = 0;            ///< Combinational ops (== schedule groups).
  unsigned NumSpecializedOps = 0; ///< Devirtualized singleton groups.
  unsigned NumGenericOps = 0;     ///< evaluateGroup fallbacks.
  unsigned NumSeqOps = 0;         ///< Sequential-phase ops kept.
  unsigned NumSeqElided = 0;      ///< No-op endOfTimestep calls removed.
};

class CompiledKernel {
public:
  /// Combinational op kinds. Every kind except Generic replays one
  /// specific corelib behavior's evaluate() body; Generic delegates the
  /// whole group to Simulator::evaluateGroup.
  enum class OpKind : uint8_t {
    Generic = 0,
    ConstSource,   ///< corelib/const_source
    CounterSource, ///< corelib/counter_source
    Adder,         ///< corelib/adder
    Fanout,        ///< corelib/fanout
    DelayEval,     ///< corelib/delay.tar (combinational half)
    Sink,          ///< corelib/sink
  };

  /// Sequential-phase op kinds.
  enum class SeqKind : uint8_t {
    GenericEot = 0, ///< Behavior->endOfTimestep(*Runtime)
    DelayLatch,     ///< corelib/delay.tar: held <- in[0]
  };

  /// [Begin, Begin+Count) slice of NetPool.
  struct Range {
    int32_t Begin = 0;
    int32_t Count = 0;
  };

  struct Op {
    OpKind Kind = OpKind::Generic;
    int32_t Group = -1;      ///< Schedule group index (== position in Ops).
    int32_t RuntimeIdx = -1; ///< Dense runtime index (-1 for Generic).
    /// Output nets to prepare (PrevHas <- Has; Has <- false) before the
    /// body runs; empty for Generic (evaluateGroup prepares internally).
    Range Prep;
    /// Connected output nets in port-index order (writes + port events).
    Range Out;
    /// Input nets the body reads, kind-specific layout (see the runner).
    Range In;
    int64_t ImmA = 0; ///< CounterSource: start.
    int64_t ImmB = 0; ///< CounterSource: stride.
    /// ConstSource: the materialized parameter value.
    interp::Value Const;
    /// DelayEval: the "held" slot; Sink: the "received" slot. Stable
    /// across reset() (bsl::StateTable pointers survive resetValues).
    interp::Value *State = nullptr;
    /// "port:<name>" of the written output slot (automatic port events);
    /// Sink: the declared "received" event name.
    const std::string *EventName = nullptr;
    const std::string *Path = nullptr; ///< Instance path for events.
  };

  struct SeqOp {
    SeqKind Kind = SeqKind::GenericEot;
    int32_t RuntimeIdx = -1;
    int32_t InNet = -1; ///< DelayLatch: in[0] net id, or -1.
    interp::Value *State = nullptr; ///< DelayLatch: the "held" slot.
  };

  /// Runs \p N cycles of \p Sim through the kernel. \p Sim must be the
  /// simulator this kernel was built against.
  void run(Simulator &Sim, uint64_t N);

  /// Renders the structural plan as a byte-stable "LSSKRN 1" artifact.
  /// Deterministic: the same simulator always serializes to the same
  /// bytes, and a plan adopted via KernelBuilder::load re-serializes to
  /// its canonical form.
  std::string serialize() const;

  /// The declared event name Sink emits; kernel-owned so the emitted
  /// Event's name pointer has a stable address.
  static const std::string &sinkEventName();

  static const char *opKindName(OpKind K);
  static const char *seqKindName(SeqKind K);

  std::vector<Op> Ops;
  std::vector<SeqOp> SeqOps;
  std::vector<int32_t> NetPool; ///< Backing store for every Range.
  KernelStats Stats;
};

} // namespace sim
} // namespace liberty

#endif // LIBERTY_SIM_COMPILEDKERNEL_H
