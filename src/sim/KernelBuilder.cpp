//===- KernelBuilder.cpp - Netlist-to-kernel lowering -------------------------===//
///
/// \file
/// Classification, packing, and LSSKRN (de)serialization for the compiled
/// engine. Lowering is a pure function of the constructed simulator:
/// classify() recomputes the same structural plan whether called by
/// build() (fresh lowering) or load() (revalidating a cached artifact),
/// so an adopted cache entry is exactly the plan a cold build would have
/// produced — a mismatch anywhere rejects the artifact.
///
/// Devirtualization trusts behavior ids: "corelib/adder" is assumed to be
/// the in-tree Adder, etc. That holds for this repo's global registry
/// (later re-registration under a corelib id would break the contract and
/// is pinned against by the cross-engine differential tests).
///
//===----------------------------------------------------------------------===//

#include "sim/KernelBuilder.h"

#include "netlist/Serializer.h"
#include "sim/SimRuntime.h"

#include <cstring>

using namespace liberty;
using namespace liberty::sim;
using interp::Value;

using OpKind = CompiledKernel::OpKind;
using SeqKind = CompiledKernel::SeqKind;

namespace {

/// Structural-only op, before pointer materialization. This is what the
/// LSSKRN artifact stores and what classification produces; equality
/// between the two is the cache-validation test.
struct OpPlan {
  OpKind Kind = OpKind::Generic;
  int32_t Group = -1;
  int32_t RuntimeIdx = -1;
  int64_t ImmA = 0;
  int64_t ImmB = 0;
  std::vector<int32_t> Prep, Out, In;

  bool operator==(const OpPlan &O) const {
    return Kind == O.Kind && Group == O.Group && RuntimeIdx == O.RuntimeIdx &&
           ImmA == O.ImmA && ImmB == O.ImmB && Prep == O.Prep &&
           Out == O.Out && In == O.In;
  }
};

struct SeqPlan {
  SeqKind Kind = SeqKind::GenericEot;
  int32_t RuntimeIdx = -1;
  int32_t InNet = -1;

  bool operator==(const SeqPlan &O) const {
    return Kind == O.Kind && RuntimeIdx == O.RuntimeIdx && InNet == O.InNet;
  }
};

struct Plan {
  std::vector<OpPlan> Ops;
  std::vector<SeqPlan> SeqOps;
  unsigned NumSeqElided = 0;
};

int64_t nodeParamInt(const netlist::InstanceNode *Node, const char *Name,
                     int64_t Default) {
  auto It = Node->Params.find(Name);
  return It != Node->Params.end() && It->second.isInt() ? It->second.getInt()
                                                        : Default;
}

std::vector<int32_t> toI32(const std::vector<int> &V) {
  return std::vector<int32_t>(V.begin(), V.end());
}

/// Behavior ids whose endOfTimestep is the LeafBehavior no-op, verified
/// against src/corelib/CoreBehaviors.cpp — their sequential-phase calls
/// are elided from the kernel.
bool isEotFree(const std::string &Id) {
  static const char *const Free[] = {
      "corelib/const_source", "corelib/counter_source", "corelib/source",
      "corelib/bool_source",  "corelib/sink",           "corelib/adder",
      "corelib/alu",          "corelib/mux",            "corelib/demux",
      "corelib/fanout",
  };
  for (const char *F : Free)
    if (Id == F)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Classification
//===----------------------------------------------------------------------===//

namespace liberty {
namespace sim {

/// Hosts every lowering step that reads the simulator's private runtime
/// tables. A named class (unlike the file-local helpers above) so
/// Simulator can befriend it; it exists only in this translation unit.
class KernelBuilderImpl {
public:
  /// Connected net ids of \p Port in port-index order (unconnected indices
  /// dropped — their writes vanish in setOutput, preserving event order).
  static std::vector<int32_t> connectedNets(const Simulator::Runtime *RT,
                                            const char *Port) {
    std::vector<int32_t> Out;
    int Pid = RT->findPortId(Port);
    if (Pid < 0)
      return Out;
    for (int NetId : RT->PortSlots[size_t(Pid)].Nets)
      if (NetId >= 0)
        Out.push_back(NetId);
    return Out;
  }

  /// Net id of (\p Port, index 0), or -1 (absent port / zero width /
  /// unconnected — all read as "no value" and swallow writes).
  static int32_t portNet0(const Simulator::Runtime *RT, const char *Port) {
    int Pid = RT->findPortId(Port);
    if (Pid < 0)
      return -1;
    const auto &Nets = RT->PortSlots[size_t(Pid)].Nets;
    return Nets.empty() ? -1 : Nets[0];
  }

  static OpPlan classifyGroup(Simulator &Sim, size_t G);
  static Plan classify(Simulator &Sim);
  static std::unique_ptr<CompiledKernel> materialize(Simulator &Sim,
                                                     const Plan &P);
};

/// Lowers schedule group \p G to its structural op. Only singleton groups
/// with a recognized corelib behavior (and resolvable state slots — init()
/// has run, so bound slots exist) specialize; everything else stays
/// Generic and keeps the interpreter's exact fixpoint/diagnostic path.
OpPlan KernelBuilderImpl::classifyGroup(Simulator &Sim, size_t G) {
  OpPlan P;
  P.Group = int32_t(G);
  const std::vector<int> &Group = Sim.Sched.Groups[G];
  if (Group.size() != 1)
    return P;
  int RTIdx = Group.front();
  Simulator::Runtime *RT = Sim.Runtimes[size_t(RTIdx)].get();
  if (!RT->Behavior)
    return P;
  const std::string &Id = RT->Node->BehaviorId;

  OpPlan S;
  S.Group = int32_t(G);
  S.RuntimeIdx = int32_t(RTIdx);
  S.Prep = toI32(RT->OutputNets);
  if (Id == "corelib/const_source") {
    S.Kind = OpKind::ConstSource;
    S.ImmA = nodeParamInt(RT->Node, "value", 0);
    S.Out = connectedNets(RT, "out");
    return S;
  }
  if (Id == "corelib/counter_source") {
    S.Kind = OpKind::CounterSource;
    S.ImmA = nodeParamInt(RT->Node, "start", 0);
    S.ImmB = nodeParamInt(RT->Node, "stride", 1);
    S.Out = connectedNets(RT, "out");
    return S;
  }
  if (Id == "corelib/adder") {
    S.Kind = OpKind::Adder;
    S.In = {portNet0(RT, "in1"), portNet0(RT, "in2")};
    // Adder::evaluate writes out[0] only.
    if (int32_t OutNet = portNet0(RT, "out"); OutNet >= 0)
      S.Out = {OutNet};
    return S;
  }
  if (Id == "corelib/fanout") {
    S.Kind = OpKind::Fanout;
    S.In = {portNet0(RT, "in")};
    S.Out = connectedNets(RT, "out");
    return S;
  }
  if (Id == "corelib/delay.tar") {
    if (!RT->StateVars.lookup("held"))
      return P;
    S.Kind = OpKind::DelayEval;
    S.Out = connectedNets(RT, "out");
    return S;
  }
  if (Id == "corelib/sink") {
    if (!RT->StateVars.lookup("received"))
      return P;
    S.Kind = OpKind::Sink;
    S.In = connectedNets(RT, "in");
    return S;
  }
  return P;
}

Plan KernelBuilderImpl::classify(Simulator &Sim) {
  Plan P;
  P.Ops.reserve(Sim.Sched.Groups.size());
  for (size_t G = 0; G != Sim.Sched.Groups.size(); ++G)
    P.Ops.push_back(classifyGroup(Sim, G));

  // Sequential phase, in runtime index order (== runSequentialPhase).
  for (size_t RTIdx = 0; RTIdx != Sim.Runtimes.size(); ++RTIdx) {
    Simulator::Runtime *RT = Sim.Runtimes[RTIdx].get();
    if (!RT->Behavior)
      continue;
    const std::string &Id = RT->Node->BehaviorId;
    if (isEotFree(Id)) {
      ++P.NumSeqElided;
      continue;
    }
    SeqPlan S;
    S.RuntimeIdx = int32_t(RTIdx);
    if (Id == "corelib/delay.tar" && RT->StateVars.lookup("held")) {
      S.Kind = SeqKind::DelayLatch;
      S.InNet = portNet0(RT, "in");
    }
    P.SeqOps.push_back(S);
  }
  return P;
}

/// Packs a validated plan into an executable kernel, resolving state,
/// event-name, and path pointers against the live simulator. Plans come
/// from classify(), so every lookup succeeds by construction.
std::unique_ptr<CompiledKernel>
KernelBuilderImpl::materialize(Simulator &Sim, const Plan &P) {
  auto K = std::make_unique<CompiledKernel>();
  auto Pack = [&K](const std::vector<int32_t> &Ids) {
    CompiledKernel::Range R;
    R.Begin = int32_t(K->NetPool.size());
    R.Count = int32_t(Ids.size());
    K->NetPool.insert(K->NetPool.end(), Ids.begin(), Ids.end());
    return R;
  };
  K->Ops.reserve(P.Ops.size());
  for (const OpPlan &OP : P.Ops) {
    CompiledKernel::Op O;
    O.Kind = OP.Kind;
    O.Group = OP.Group;
    O.RuntimeIdx = OP.RuntimeIdx;
    O.ImmA = OP.ImmA;
    O.ImmB = OP.ImmB;
    O.Prep = Pack(OP.Prep);
    O.Out = Pack(OP.Out);
    O.In = Pack(OP.In);
    if (OP.Kind != OpKind::Generic) {
      Simulator::Runtime *RT = Sim.Runtimes[size_t(OP.RuntimeIdx)].get();
      O.Path = &RT->Node->Path;
      if (OP.Kind == OpKind::ConstSource)
        O.Const = Value::makeInt(OP.ImmA);
      if (OP.Kind == OpKind::DelayEval)
        O.State = RT->StateVars.lookup("held");
      if (OP.Kind == OpKind::Sink) {
        O.State = RT->StateVars.lookup("received");
        O.EventName = &CompiledKernel::sinkEventName();
      } else if (int Pid = RT->findPortId("out"); Pid >= 0) {
        O.EventName = &RT->PortSlots[size_t(Pid)].EventName;
      }
    } else {
      // Generic ops prepare inside evaluateGroup; drop the range so the
      // runner does not double-prepare (which would corrupt PrevHas).
      O.Prep = CompiledKernel::Range();
    }
    K->Ops.push_back(std::move(O));
    if (OP.Kind == OpKind::Generic)
      ++K->Stats.NumGenericOps;
    else
      ++K->Stats.NumSpecializedOps;
  }
  K->SeqOps.reserve(P.SeqOps.size());
  for (const SeqPlan &SP : P.SeqOps) {
    CompiledKernel::SeqOp S;
    S.Kind = SP.Kind;
    S.RuntimeIdx = SP.RuntimeIdx;
    S.InNet = SP.InNet;
    if (SP.Kind == SeqKind::DelayLatch)
      S.State =
          Sim.Runtimes[size_t(SP.RuntimeIdx)]->StateVars.lookup("held");
    K->SeqOps.push_back(S);
  }
  K->Stats.NumOps = unsigned(K->Ops.size());
  K->Stats.NumSeqOps = unsigned(K->SeqOps.size());
  K->Stats.NumSeqElided = P.NumSeqElided;
  return K;
}

} // namespace sim
} // namespace liberty

std::unique_ptr<CompiledKernel> KernelBuilder::build(Simulator &Sim) {
  return KernelBuilderImpl::materialize(Sim, KernelBuilderImpl::classify(Sim));
}

//===----------------------------------------------------------------------===//
// LSSKRN 1 parsing + revalidation
//===----------------------------------------------------------------------===//

namespace {

bool parseOpKind(std::string_view Tok, OpKind &Out) {
  for (uint8_t K = 0; K <= uint8_t(OpKind::Sink); ++K)
    if (Tok == CompiledKernel::opKindName(OpKind(K))) {
      Out = OpKind(K);
      return true;
    }
  return false;
}

bool parseSeqKind(std::string_view Tok, SeqKind &Out) {
  for (uint8_t K = 0; K <= uint8_t(SeqKind::DelayLatch); ++K)
    if (Tok == CompiledKernel::seqKindName(SeqKind(K))) {
      Out = SeqKind(K);
      return true;
    }
  return false;
}

bool parseI32(const netlist::ArtifactLineReader &L, size_t I, int32_t &Out) {
  int64_t V;
  if (!L.i64(I, V) || V < INT32_MIN || V > INT32_MAX)
    return false;
  Out = int32_t(V);
  return true;
}

/// Reads "<tag> <n> <id>*n" starting at field \p I; advances \p I past it.
bool parseIdList(const netlist::ArtifactLineReader &L, size_t &I,
                 const char *Tag, std::vector<int32_t> &Out) {
  if (I >= L.size() || L.raw(I) != Tag)
    return false;
  ++I;
  int32_t N;
  if (!parseI32(L, I, N) || N < 0 || size_t(N) > L.size() - I)
    return false;
  ++I;
  Out.reserve(size_t(N));
  for (int32_t K = 0; K != N; ++K, ++I) {
    int32_t Id;
    if (!parseI32(L, I, Id))
      return false;
    Out.push_back(Id);
  }
  return true;
}

/// Parses an LSSKRN 1 artifact into a structural plan. Purely syntactic —
/// semantic validation happens by comparing against classify()'s output.
bool parsePlan(const std::string &Text, Plan &P, size_t &PoolSize) {
  size_t Pos = 0;
  auto NextLine = [&](std::string_view &Line) {
    if (Pos >= Text.size())
      return false;
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      return false; // Every line must be newline-terminated.
    Line = std::string_view(Text).substr(Pos, End - Pos);
    Pos = End + 1;
    return true;
  };

  std::string_view Line;
  if (!NextLine(Line) || Line != "LSSKRN 1")
    return false;
  if (!NextLine(Line))
    return false;
  netlist::ArtifactLineReader Counts(Line);
  int64_t NumOps, NumSeq, DeclaredPool;
  if (Counts.size() != 4 || Counts.raw(0) != "counts" ||
      !Counts.i64(1, NumOps) || !Counts.i64(2, NumSeq) ||
      !Counts.i64(3, DeclaredPool) || NumOps < 0 || NumSeq < 0 ||
      DeclaredPool < 0)
    return false;

  size_t Pool = 0;
  while (NextLine(Line)) {
    netlist::ArtifactLineReader L(Line);
    if (L.size() == 0)
      return false;
    std::string_view Rec = L.raw(0);
    if (Rec == "end") {
      if (L.size() != 1 || Pos != Text.size())
        return false; // Trailing bytes after the terminator.
      if (P.Ops.size() != size_t(NumOps) || P.SeqOps.size() != size_t(NumSeq) ||
          Pool != size_t(DeclaredPool))
        return false;
      PoolSize = Pool;
      return true;
    }
    if (Rec == "op") {
      if (!P.SeqOps.empty())
        return false; // Ops must precede seq ops.
      OpPlan O;
      if (L.size() < 6 || !parseOpKind(L.raw(1), O.Kind) ||
          !parseI32(L, 2, O.Group) || !parseI32(L, 3, O.RuntimeIdx) ||
          !L.i64(4, O.ImmA) || !L.i64(5, O.ImmB))
        return false;
      size_t I = 6;
      if (!parseIdList(L, I, "prep", O.Prep) ||
          !parseIdList(L, I, "out", O.Out) || !parseIdList(L, I, "in", O.In) ||
          I != L.size())
        return false;
      Pool += O.Prep.size() + O.Out.size() + O.In.size();
      P.Ops.push_back(std::move(O));
      continue;
    }
    if (Rec == "seq") {
      SeqPlan S;
      if (L.size() != 4 || !parseSeqKind(L.raw(1), S.Kind) ||
          !parseI32(L, 2, S.RuntimeIdx) || !parseI32(L, 3, S.InNet))
        return false;
      P.SeqOps.push_back(S);
      continue;
    }
    return false; // Unknown record kind.
  }
  return false; // Missing "end".
}

} // namespace

std::unique_ptr<CompiledKernel> KernelBuilder::load(Simulator &Sim,
                                                    const std::string &Artifact) {
  Plan Parsed;
  size_t PoolSize = 0;
  if (!parsePlan(Artifact, Parsed, PoolSize))
    return nullptr;
  // Revalidate against the live simulator: the cached plan must be
  // exactly what lowering this simulator produces (same groups, same
  // kinds, same dense ids). This catches artifacts from a different
  // netlist/solution that happen to share the cache key, and any mutated
  // entry the envelope checksum missed.
  Plan Fresh = KernelBuilderImpl::classify(Sim);
  if (Parsed.Ops != Fresh.Ops || Parsed.SeqOps != Fresh.SeqOps)
    return nullptr;
  std::unique_ptr<CompiledKernel> K = KernelBuilderImpl::materialize(Sim, Fresh);
  K->Stats.FromCache = true;
  return K;
}
