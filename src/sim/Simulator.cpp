//===- Simulator.cpp - Generated executable simulator ------------------------===//

#include "sim/Simulator.h"

#include "types/Type.h"

#include <algorithm>
#include <cassert>

using namespace liberty;
using namespace liberty::sim;
using interp::Value;

//===----------------------------------------------------------------------===//
// Runtime: per-instance simulation record
//===----------------------------------------------------------------------===//

class Simulator::Runtime : public bsl::BehaviorContext {
public:
  Runtime(Simulator &Sim, netlist::InstanceNode *Node)
      : Sim(Sim), Node(Node) {}

  Simulator &Sim;
  netlist::InstanceNode *Node;
  /// Null for hierarchical instances (which may still carry userpoints and
  /// runtime variables).
  std::unique_ptr<bsl::LeafBehavior> Behavior;
  /// Port name -> net id per port instance (index-addressed). A flat
  /// vector: components have a handful of ports and this sits on the
  /// per-access hot path, where a linear scan beats a map.
  std::vector<std::pair<std::string, std::vector<int>>> PortNets;
  std::map<std::string, Value> StateVars;

  const std::vector<int> *findSlots(const std::string &Port) const {
    for (const auto &[Name, Slots] : PortNets)
      if (Name == Port)
        return &Slots;
    return nullptr;
  }
  std::vector<int> &addSlots(const std::string &Port) {
    PortNets.emplace_back(Port, std::vector<int>());
    return PortNets.back().second;
  }

  struct CompiledUserpoint {
    const lss::UserpointSig *Sig = nullptr;
    std::unique_ptr<bsl::BslProgram> Prog;
  };
  std::map<std::string, CompiledUserpoint> Userpoints;
  /// Precomputed "port:<name>" event names for automatic port events.
  std::vector<std::pair<std::string, std::string>> PortEventNames;
  int ScheduleNode = -1;

  /// Behavior declares hasPureEvaluate(): sends are a function of input
  /// net values only, so the selective engine may skip evaluate() in
  /// quiescent cycles.
  bool Pure = false;
  /// Net ids this leaf drives / reads (deduplicated, for the selective
  /// engine's per-group preparation and absence passes).
  std::vector<int> OutputNets;
  std::vector<int> InputNets;
  /// The automatic port events evaluate() emitted last time it ran, as
  /// (event-name, net-id) pairs. Recorded only while instrumentation is
  /// attached and the runtime is pure; replayed when the group is skipped
  /// so collectors see a bit-identical event stream.
  std::vector<std::pair<const std::string *, int>> LastSends;

  void resetState() {
    StateVars.clear();
    for (const netlist::RuntimeVar &RV : Node->RuntimeVars)
      StateVars[RV.Name] = RV.Init;
  }

  // BehaviorContext implementation.
  int getWidth(const std::string &Port) const override {
    // For leaves the slot table is authoritative (its length is the
    // inferred width); hierarchical runtimes fall back to the netlist.
    if (const std::vector<int> *Slots = findSlots(Port))
      return static_cast<int>(Slots->size());
    const netlist::Port *P = Node->findPort(Port);
    return P ? P->Width : 0;
  }

  const types::Type *getPortType(const std::string &Port) const override {
    const netlist::Port *P = Node->findPort(Port);
    return P ? P->Resolved : nullptr;
  }

  const Value *getInput(const std::string &Port, int Index) const override {
    const std::vector<int> *Slots = findSlots(Port);
    if (!Slots || Index < 0 || Index >= static_cast<int>(Slots->size()))
      return nullptr;
    int NetId = (*Slots)[Index];
    if (NetId < 0)
      return nullptr;
    const Net &N = Sim.Nets[NetId];
    return N.Has ? &N.V : nullptr;
  }

  void setOutput(const std::string &Port, int Index, Value V) override {
    const std::vector<int> *Slots = findSlots(Port);
    if (!Slots || Index < 0 || Index >= static_cast<int>(Slots->size()))
      return; // Unconnected port instance: the value vanishes.
    int NetId = (*Slots)[Index];
    if (NetId < 0)
      return;
    Net &N = Sim.Nets[NetId];
    ++Sim.Activity.NetWrites;
    if (!N.Has) {
      // First send this evaluation round. NetChanged feeds the cyclic
      // groups' fixpoint test and must fire on presence appearing even if
      // the value matches, preserving the iteration counts of exhaustive
      // evaluation. DirtyCycle, by contrast, only stamps observable
      // cross-cycle change (value differs, or the net was absent last
      // cycle).
      Sim.NetChanged = true;
      if (!N.PrevHas || !N.V.equals(V)) {
        N.V = std::move(V);
        N.DirtyCycle = Sim.Cycle;
        ++Sim.Activity.NetChanges;
      }
      N.Has = true;
    } else if (!N.V.equals(V)) {
      // Re-send with a different value (fixpoint iteration).
      N.V = std::move(V);
      N.DirtyCycle = Sim.Cycle;
      Sim.NetChanged = true;
      ++Sim.Activity.NetChanges;
    }
    if (!Sim.Instr.empty()) {
      for (const auto &[EvPort, EvName] : PortEventNames) {
        if (EvPort != Port)
          continue;
        Event E;
        E.InstancePath = &Node->Path;
        E.Name = &EvName;
        E.Cycle = Sim.Cycle;
        E.Payload = &N.V;
        Sim.Instr.emit(E);
        if (Pure)
          LastSends.emplace_back(&EvName, NetId);
        break;
      }
    }
  }

  const Value *getParam(const std::string &Name) const override {
    auto It = Node->Params.find(Name);
    return It == Node->Params.end() ? nullptr : &It->second;
  }

  bool hasUserpoint(const std::string &Name) const override {
    return Userpoints.count(Name) != 0;
  }

  Value callUserpoint(const std::string &Name,
                      std::vector<Value> Args) override {
    auto It = Userpoints.find(Name);
    if (It == Userpoints.end() || !It->second.Prog)
      return Value();
    bsl::BslEnv Env;
    if (const lss::UserpointSig *Sig = It->second.Sig) {
      unsigned N = std::min(Args.size(), Sig->Args.size());
      for (unsigned I = 0; I != N; ++I)
        Env.Args[Sig->Args[I].first] = std::move(Args[I]);
    }
    Env.RuntimeVars = &StateVars;
    Env.Params = &Node->Params;
    unsigned ErrorsBefore = Sim.Diags.getNumErrors();
    Value Result = It->second.Prog->run(Env, Sim.Diags);
    if (Sim.Diags.getNumErrors() != ErrorsBefore)
      Sim.RuntimeErrors = true;
    return Result;
  }

  Value &state(const std::string &Name) override { return StateVars[Name]; }

  void emitEvent(const std::string &EventName, Value Payload) override {
    if (Sim.Instr.empty())
      return;
    Event E;
    E.InstancePath = &Node->Path;
    E.Name = &EventName;
    E.Cycle = Sim.Cycle;
    E.Payload = &Payload;
    Sim.Instr.emit(E);
  }

  uint64_t getCycle() const override { return Sim.Cycle; }

  const std::string &getInstancePath() const override { return Node->Path; }
};

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

Simulator::Simulator(netlist::Netlist &NL, SourceMgr &SM,
                     DiagnosticEngine &Diags, Options Opts)
    : NL(NL), SM(SM), Diags(Diags), Opts(Opts) {}

Simulator::~Simulator() = default;

std::unique_ptr<Simulator> Simulator::build(netlist::Netlist &NL,
                                            SourceMgr &SM,
                                            DiagnosticEngine &Diags) {
  return build(NL, SM, Diags, Options());
}

std::unique_ptr<Simulator> Simulator::build(netlist::Netlist &NL,
                                            SourceMgr &SM,
                                            DiagnosticEngine &Diags,
                                            Options Opts) {
  std::unique_ptr<Simulator> Sim(new Simulator(NL, SM, Diags, Opts));
  if (!Sim->construct())
    return nullptr;
  Sim->reset();
  return Sim;
}

static std::string nodeKey(const netlist::InstanceNode *Inst,
                           const std::string &Port, int Index) {
  return Inst->Path + "|" + Port + "|" + std::to_string(Index);
}

bool Simulator::construct() {
  unsigned ErrorsBefore = Diags.getNumErrors();

  // 1. Enumerate port-instance nodes and union them through connections.
  std::vector<int> Parent; // Union-find over provisional node ids.
  auto FindRoot = [&](int X) {
    while (Parent[X] != X)
      X = Parent[X] = Parent[Parent[X]];
    return X;
  };
  auto GetNode = [&](const netlist::InstanceNode *Inst,
                     const std::string &Port, int Index) {
    std::string Key = nodeKey(Inst, Port, Index);
    auto [It, Inserted] = NodeToNet.emplace(Key, (int)Parent.size());
    if (Inserted)
      Parent.push_back(It->second);
    return It->second;
  };

  for (const auto &Inst : NL.getInstances())
    for (const netlist::Port &P : Inst->Ports)
      for (int I = 0; I != P.Width; ++I)
        GetNode(Inst.get(), P.Name, I);

  for (const auto &Conn : NL.getConnections()) {
    if (!Conn->isFullyResolved())
      continue;
    int A = GetNode(Conn->From.Inst, Conn->From.Port, Conn->From.Index);
    int B = GetNode(Conn->To.Inst, Conn->To.Port, Conn->To.Index);
    Parent[FindRoot(A)] = FindRoot(B);
  }

  // 2. Compress to dense net ids.
  std::map<int, int> RootToNet;
  for (auto &[Key, NodeId] : NodeToNet) {
    int Root = FindRoot(NodeId);
    auto [It, Inserted] = RootToNet.emplace(Root, (int)RootToNet.size());
    NodeId = It->second;
  }
  Nets.assign(RootToNet.size(), Net());
  Info.NumNets = Nets.size();

  // 3. Create runtimes: every leaf, plus any instance carrying userpoints
  //    or runtime variables (they participate in the userpoint phases).
  std::vector<int> LeafRuntimes;
  for (const auto &Inst : NL.getInstances()) {
    bool NeedsRuntime = Inst->isLeaf() || !Inst->Userpoints.empty() ||
                        !Inst->RuntimeVars.empty();
    if (!NeedsRuntime)
      continue;
    auto RT = std::make_unique<Runtime>(*this, Inst.get());
    if (Inst->isLeaf()) {
      RT->Behavior = bsl::BehaviorRegistry::global().create(Inst->BehaviorId);
      if (!RT->Behavior) {
        Diags.error(Inst->Loc, "no behavior registered for tar_file '" +
                                   Inst->BehaviorId + "' (instance '" +
                                   Inst->Path + "')");
        continue;
      }
      for (const netlist::Port &P : Inst->Ports) {
        std::vector<int> &Slots = RT->addSlots(P.Name);
        Slots.resize(P.Width, -1);
        for (int I = 0; I != P.Width; ++I) {
          auto It = NodeToNet.find(nodeKey(Inst.get(), P.Name, I));
          if (It != NodeToNet.end())
            Slots[I] = It->second;
        }
        if (!P.isInput())
          RT->PortEventNames.emplace_back(P.Name, "port:" + P.Name);
      }
      LeafRuntimes.push_back(Runtimes.size());
    }
    // Compile userpoints.
    for (const auto &[Name, UV] : Inst->Userpoints) {
      Runtime::CompiledUserpoint CU;
      CU.Sig = UV.Sig;
      CU.Prog = bsl::BslProgram::compile(
          UV.Code, "userpoint:" + Inst->Path + "." + Name, SM, Diags);
      if (!CU.Prog)
        Diags.note(UV.Loc, "while compiling userpoint '" + Name +
                               "' of instance '" + Inst->Path + "'");
      ++Info.NumUserpoints;
      RT->Userpoints.emplace(Name, std::move(CU));
    }
    Runtimes.push_back(std::move(RT));
  }
  Info.NumLeaves = LeafRuntimes.size();

  // 4. Determine net drivers (the unique leaf outport on each net) and
  //    collect combinational readers.
  struct Reader {
    int ScheduleNode;
    const std::string *Port;
  };
  std::vector<std::vector<Reader>> NetReaders(Nets.size());
  for (unsigned SN = 0; SN != LeafRuntimes.size(); ++SN) {
    Runtime *RT = Runtimes[LeafRuntimes[SN]].get();
    RT->ScheduleNode = SN;
    for (const netlist::Port &P : RT->Node->Ports) {
      const std::vector<int> *SlotsPtr = RT->findSlots(P.Name);
      if (!SlotsPtr)
        continue;
      for (int NetId : *SlotsPtr) {
        if (NetId < 0)
          continue;
        if (P.isInput()) {
          NetReaders[NetId].push_back(Reader{(int)SN, &P.Name});
          RT->InputNets.push_back(NetId);
          continue;
        }
        RT->OutputNets.push_back(NetId);
        Net &N = Nets[NetId];
        if (N.DriverRuntime >= 0 &&
            N.DriverRuntime != (int)LeafRuntimes[SN]) {
          Diags.error(P.Loc, "net has multiple drivers: port '" + P.Name +
                                 "' of instance '" + RT->Node->Path + "'");
          continue;
        }
        N.DriverRuntime = LeafRuntimes[SN];
      }
    }
    auto Dedup = [](std::vector<int> &V) {
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end()), V.end());
    };
    Dedup(RT->InputNets);
    Dedup(RT->OutputNets);
    RT->Pure = RT->Behavior && RT->Behavior->hasPureEvaluate();
  }

  // 5. Build the combinational dependency graph and the static schedule.
  std::vector<std::vector<int>> Successors(LeafRuntimes.size());
  for (unsigned NetId = 0; NetId != Nets.size(); ++NetId) {
    int Driver = Nets[NetId].DriverRuntime;
    if (Driver < 0)
      continue;
    int DriverSN = Runtimes[Driver]->ScheduleNode;
    for (const Reader &R : NetReaders[NetId]) {
      Runtime *RT = Runtimes[LeafRuntimes[R.ScheduleNode]].get();
      if (RT->Behavior && RT->Behavior->readsCombinationally(*R.Port))
        Successors[DriverSN].push_back(R.ScheduleNode);
    }
  }
  Sched = computeSchedule(LeafRuntimes.size(), Successors);
  // Re-express schedule nodes as runtime indices.
  for (auto &Group : Sched.Groups)
    for (int &N : Group)
      N = LeafRuntimes[N];

  // 6. Selective-trace summaries: per-group input-net unions and
  //    skippability, precomputed once so the per-cycle loop only scans a
  //    short sorted list per skippable group.
  std::vector<std::vector<int>> NodeInputNets(Runtimes.size());
  std::vector<bool> NodePure(Runtimes.size(), false);
  for (size_t RTIdx = 0; RTIdx != Runtimes.size(); ++RTIdx) {
    NodeInputNets[RTIdx] = Runtimes[RTIdx]->InputNets;
    NodePure[RTIdx] = Runtimes[RTIdx]->Pure;
  }
  computeGroupSummaries(Sched, NodeInputNets, NodePure);
  GroupEvaluated.assign(Sched.Groups.size(), 0);

  Info.NumGroups = Sched.Groups.size();
  Info.NumCyclicGroups = Sched.numCyclicGroups();
  Info.MaxGroupSize = Sched.maxGroupSize();
  Info.NumSkippableGroups = Sched.numSkippableGroups();

  return Diags.getNumErrors() == ErrorsBefore;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void Simulator::reset() {
  Cycle = 0;
  RuntimeErrors = false;
  for (Net &N : Nets) {
    N.Has = false;
    N.PrevHas = false;
    N.DirtyCycle = NeverDirty;
  }
  Activity = ActivityStats();
  Activity.Selective = Opts.Selective;
  GroupEvaluated.assign(Sched.Groups.size(), 0);
  LastInstrVersion = Instr.getVersion();
  for (auto &RT : Runtimes) {
    RT->resetState();
    RT->LastSends.clear();
  }
  for (auto &RT : Runtimes)
    if (RT->Behavior)
      RT->Behavior->init(*RT);
  runUserpointPhase("init");
}

void Simulator::runUserpointPhase(const std::string &Name) {
  for (auto &RT : Runtimes)
    if (RT->hasUserpoint(Name))
      RT->callUserpoint(Name, {});
}

void Simulator::runEndOfTimestepUserpoints() {
  // Hot path: the per-cycle phase touches only runtimes that carry the
  // userpoint (precomputed at first use).
  if (!EotRuntimesValid) {
    EotRuntimes.clear();
    for (auto &RT : Runtimes)
      if (RT->hasUserpoint("end_of_timestep"))
        EotRuntimes.push_back(RT.get());
    EotRuntimesValid = true;
  }
  for (Runtime *RT : EotRuntimes)
    RT->callUserpoint("end_of_timestep", {});
}

void Simulator::evaluateGroup(size_t GroupIdx) {
  const std::vector<int> &Group = Sched.Groups[GroupIdx];
  // Prepare the group's output nets: snapshot last cycle's presence, then
  // clear it so this evaluation starts from a blank slate. (Replaces the
  // old global per-cycle Has sweep — skipped groups keep their nets as-is,
  // carrying the previous sends forward.)
  for (int RTIdx : Group)
    for (int NetId : Runtimes[RTIdx]->OutputNets) {
      Net &N = Nets[NetId];
      N.PrevHas = N.Has;
      N.Has = false;
    }

  if (Group.size() == 1) {
    Runtime *RT = Runtimes[Group.front()].get();
    if (RT->Behavior) {
      RT->LastSends.clear();
      RT->Behavior->evaluate(*RT);
      ++Activity.LeafEvals;
    }
  } else {
    // Combinational cycle: iterate to a fixpoint, using per-write dirty
    // bits (NetChanged) as the convergence test.
    bool Converged = false;
    for (unsigned Iter = 0; Iter != Opts.MaxFixpointIters; ++Iter) {
      NetChanged = false;
      ++Activity.FixpointIters;
      for (int RTIdx : Group) {
        Runtime *RT = Runtimes[RTIdx].get();
        if (RT->Behavior) {
          RT->LastSends.clear();
          RT->Behavior->evaluate(*RT);
          ++Activity.LeafEvals;
        }
      }
      if (!NetChanged) {
        Converged = true;
        break;
      }
    }
    if (!Converged && !RuntimeErrors) {
      std::string Members;
      unsigned Listed = 0;
      for (int RTIdx : Group) {
        if (Listed == 8) {
          Members += ", ...";
          break;
        }
        if (Listed++)
          Members += ", ";
        Members += "'" + Runtimes[RTIdx]->Node->Path + "'";
      }
      Diags.error(SourceLoc(),
                  "combinational cycle did not converge within " +
                      std::to_string(Opts.MaxFixpointIters) +
                      " iterations; group members: " + Members);
      RuntimeErrors = true;
    }
  }

  // Absence pass: a net that was driven last cycle but not this one is an
  // observable change for downstream readers.
  for (int RTIdx : Group)
    for (int NetId : Runtimes[RTIdx]->OutputNets) {
      Net &N = Nets[NetId];
      if (N.PrevHas && !N.Has)
        N.DirtyCycle = Cycle;
    }

  GroupEvaluated[GroupIdx] = 1;
  ++Activity.GroupsEvaluated;
}

void Simulator::skipGroup(size_t GroupIdx) {
  ++Activity.GroupsSkipped;
  ++Activity.LeafEvalsSkipped; // Skippable groups are singletons.
  if (Instr.empty())
    return;
  // Replay the automatic port events the skipped evaluate() would have
  // emitted, in recorded order, with the carried-forward net values.
  Runtime *RT = Runtimes[Sched.Groups[GroupIdx].front()].get();
  for (const auto &[EvName, NetId] : RT->LastSends) {
    Event E;
    E.InstancePath = &RT->Node->Path;
    E.Name = EvName;
    E.Cycle = Cycle;
    E.Payload = &Nets[NetId].V;
    Instr.emit(E);
    ++Activity.EventsReplayed;
  }
}

void Simulator::step(uint64_t N) {
  for (uint64_t I = 0; I != N; ++I) {
    // A collector attached since the last cycle invalidates the replay
    // records (they only hold events recorded while instrumentation was
    // live), so force one exhaustive cycle to rebuild them.
    bool ForceFull = false;
    if (Instr.getVersion() != LastInstrVersion) {
      LastInstrVersion = Instr.getVersion();
      ForceFull = true;
    }
    for (size_t G = 0; G != Sched.Groups.size(); ++G) {
      if (Opts.Selective && !ForceFull && Sched.GroupSkippable[G] &&
          GroupEvaluated[G]) {
        bool Quiescent = true;
        for (int NetId : Sched.GroupInputNets[G])
          if (Nets[NetId].DirtyCycle == Cycle) {
            Quiescent = false;
            break;
          }
        if (Quiescent) {
          skipGroup(G);
          continue;
        }
      }
      evaluateGroup(G);
    }
    for (auto &RT : Runtimes)
      if (RT->Behavior)
        RT->Behavior->endOfTimestep(*RT);
    runEndOfTimestepUserpoints();
    ++Cycle;
    ++Activity.Cycles;
  }
}

const Value *Simulator::peekPort(const std::string &InstPath,
                                 const std::string &Port, int Index) const {
  auto It = NodeToNet.find(InstPath + "|" + Port + "|" +
                           std::to_string(Index));
  if (It == NodeToNet.end())
    return nullptr;
  const Net &N = Nets[It->second];
  return N.Has ? &N.V : nullptr;
}

interp::Value *Simulator::findState(const std::string &InstPath,
                                    const std::string &Name) {
  for (auto &RT : Runtimes) {
    if (RT->Node->Path != InstPath)
      continue;
    auto It = RT->StateVars.find(Name);
    return It == RT->StateVars.end() ? nullptr : &It->second;
  }
  return nullptr;
}
