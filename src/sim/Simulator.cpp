//===- Simulator.cpp - Generated executable simulator ------------------------===//

#include "sim/Simulator.h"

#include "sim/CompiledKernel.h"
#include "sim/KernelBuilder.h"
#include "sim/SimRuntime.h"
#include "types/Type.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>

using namespace liberty;
using namespace liberty::sim;
using interp::Value;

//===----------------------------------------------------------------------===//
// Engine selection
//===----------------------------------------------------------------------===//

const char *liberty::sim::engineName(EngineKind K) {
  switch (K) {
  case EngineKind::Auto:
    return "auto";
  case EngineKind::Interp:
    return "interp";
  case EngineKind::Selective:
    return "selective";
  case EngineKind::Wavefront:
    return "wavefront";
  case EngineKind::Compiled:
    return "compiled";
  }
  return "auto";
}

bool liberty::sim::parseEngineName(const std::string &Name, EngineKind &Out) {
  for (EngineKind K : {EngineKind::Auto, EngineKind::Interp,
                       EngineKind::Selective, EngineKind::Wavefront,
                       EngineKind::Compiled})
    if (Name == engineName(K)) {
      Out = K;
      return true;
    }
  return false;
}

/// An explicit engine wins; Auto keeps the historical flag-driven
/// selection so existing Options-only callers behave identically.
static EngineKind resolveEngine(const Simulator::Options &O) {
  if (O.Engine != EngineKind::Auto)
    return O.Engine;
  if (O.Jobs > 1)
    return EngineKind::Wavefront;
  return O.Selective ? EngineKind::Selective : EngineKind::Interp;
}


//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

Simulator::Simulator(netlist::Netlist &NL, SourceMgr &SM,
                     DiagnosticEngine &Diags, Options Opts)
    : NL(NL), SM(SM), Diags(Diags), Opts(Opts) {}

Simulator::~Simulator() = default;

std::unique_ptr<Simulator> Simulator::build(netlist::Netlist &NL,
                                            SourceMgr &SM,
                                            DiagnosticEngine &Diags) {
  return build(NL, SM, Diags, Options());
}

std::unique_ptr<Simulator> Simulator::build(netlist::Netlist &NL,
                                            SourceMgr &SM,
                                            DiagnosticEngine &Diags,
                                            Options Opts) {
  return build(NL, SM, Diags, Opts, nullptr);
}

std::unique_ptr<Simulator> Simulator::build(netlist::Netlist &NL,
                                            SourceMgr &SM,
                                            DiagnosticEngine &Diags,
                                            Options Opts,
                                            const std::string *KernelArtifact) {
  // Normalize the legacy flags to the resolved engine so the construct()
  // paths (wavefront resources, selective summaries) and reported options
  // agree with what actually runs.
  EngineKind E = resolveEngine(Opts);
  Opts.Engine = E;
  switch (E) {
  case EngineKind::Auto: // Unreachable: resolveEngine never returns Auto.
  case EngineKind::Interp:
  case EngineKind::Compiled:
    Opts.Selective = false;
    Opts.Jobs = 1;
    break;
  case EngineKind::Selective:
    Opts.Selective = true;
    Opts.Jobs = 1;
    break;
  case EngineKind::Wavefront:
    Opts.Jobs = std::max(Opts.Jobs, 2u);
    break;
  }
  std::unique_ptr<Simulator> Sim(new Simulator(NL, SM, Diags, Opts));
  Sim->ResolvedEngine = E;
  if (!Sim->construct())
    return nullptr;
  Sim->reset();
  if (E == EngineKind::Compiled) {
    // Lower after reset(): behavior init() has bound the state slots the
    // kernel caches pointers to (slot identities survive later resets).
    auto T0 = std::chrono::steady_clock::now();
    if (KernelArtifact)
      Sim->Kernel = KernelBuilder::load(*Sim, *KernelArtifact);
    bool FromCache = Sim->Kernel != nullptr;
    if (!Sim->Kernel)
      Sim->Kernel = KernelBuilder::build(*Sim);
    Sim->Kernel->Stats.FromCache = FromCache;
    Sim->Kernel->Stats.BuildMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - T0)
            .count();
  }
  return Sim;
}

const KernelStats *Simulator::getKernelStats() const {
  return Kernel ? &Kernel->Stats : nullptr;
}

bool Simulator::serializeKernel(std::string &Out) const {
  if (!Kernel)
    return false;
  Out = Kernel->serialize();
  return true;
}

bool Simulator::construct() {
  unsigned ErrorsBefore = Diags.getNumErrors();

  // 1. Freeze the netlist's dense numbering: every port instance ("node")
  //    gets a design-wide id (NodeBase + NodeOffset + index), so the
  //    union-find runs over a flat array — no string keys, no hashing.
  const uint32_t NumNodes = NL.freezeIds();
  std::vector<int> Parent(NumNodes); // Union-find over dense node ids.
  for (uint32_t I = 0; I != NumNodes; ++I)
    Parent[I] = int(I);
  auto FindRoot = [&](int X) {
    while (Parent[X] != X)
      X = Parent[X] = Parent[Parent[X]];
    return X;
  };

  for (const auto &Conn : NL.getConnections()) {
    if (!Conn->isFullyResolved())
      continue;
    const netlist::PortRef &F = Conn->From, &T = Conn->To;
    // Endpoints whose port vanished or whose index exceeds the counted
    // width were already diagnosed by elaboration; they have no node.
    if (F.PortIdx < 0 || T.PortIdx < 0 ||
        F.Index >= F.Inst->Ports[size_t(F.PortIdx)].Width ||
        T.Index >= T.Inst->Ports[size_t(T.PortIdx)].Width)
      continue;
    int A = int(netlist::Netlist::nodeIdOf(F));
    int B = int(netlist::Netlist::nodeIdOf(T));
    Parent[FindRoot(A)] = FindRoot(B);
  }

  // 2. Compress to dense net ids, numbered by first appearance in node-id
  //    order (instance creation order, then port declaration order).
  NodeNet.assign(NumNodes, -1);
  std::vector<int> RootNet(NumNodes, -1);
  int NumNets = 0;
  for (uint32_t I = 0; I != NumNodes; ++I) {
    int &RN = RootNet[size_t(FindRoot(int(I)))];
    if (RN < 0)
      RN = NumNets++;
    NodeNet[I] = RN;
  }
  Nets.assign(size_t(NumNets), Net());
  Info.NumNets = Nets.size();

  // 3. Create runtimes: every leaf, plus any instance carrying userpoints
  //    or runtime variables (they participate in the userpoint phases).
  RuntimeOfInstance.assign(NL.getInstances().size(), nullptr);
  std::vector<int> LeafRuntimes;
  for (const auto &Inst : NL.getInstances()) {
    bool NeedsRuntime = Inst->isLeaf() || !Inst->Userpoints.empty() ||
                        !Inst->RuntimeVars.empty();
    if (!NeedsRuntime)
      continue;
    auto RT = std::make_unique<Runtime>(*this, Inst.get());
    if (Inst->isLeaf()) {
      RT->Behavior = bsl::BehaviorRegistry::global().create(Inst->BehaviorId);
      if (!RT->Behavior) {
        Diags.error(Inst->Loc, "no behavior registered for tar_file '" +
                                   Inst->BehaviorId + "' (instance '" +
                                   Inst->Path + "')");
        continue;
      }
      for (const netlist::Port &P : Inst->Ports) {
        Runtime::PortSlot &PS = RT->addSlot(P.Name);
        PS.Nets.resize(P.Width, -1);
        for (int I = 0; I != P.Width; ++I)
          PS.Nets[I] = NodeNet[Inst->NodeBase + P.NodeOffset + uint32_t(I)];
        if (!P.isInput()) {
          PS.IsOutput = true;
          PS.EventName = "port:" + P.Name;
        }
      }
      LeafRuntimes.push_back(Runtimes.size());
    }
    // Compile userpoints.
    for (const auto &[Name, UV] : Inst->Userpoints) {
      Runtime::CompiledUserpoint CU;
      CU.Sig = UV.Sig;
      CU.Prog = bsl::BslProgram::compile(
          UV.Code, "userpoint:" + Inst->Path + "." + Name, SM, Diags);
      if (!CU.Prog)
        Diags.note(UV.Loc, "while compiling userpoint '" + Name +
                               "' of instance '" + Inst->Path + "'");
      ++Info.NumUserpoints;
      RT->Userpoints.emplace(Name, std::move(CU));
    }
    RuntimeOfInstance[Inst->Id] = RT.get();
    Runtimes.push_back(std::move(RT));
  }
  Info.NumLeaves = LeafRuntimes.size();

  // 4. Determine net drivers (the unique leaf outport on each net) and
  //    collect combinational readers.
  struct Reader {
    int ScheduleNode;
    const std::string *Port;
  };
  std::vector<std::vector<Reader>> NetReaders(Nets.size());
  for (unsigned SN = 0; SN != LeafRuntimes.size(); ++SN) {
    Runtime *RT = Runtimes[LeafRuntimes[SN]].get();
    RT->ScheduleNode = SN;
    for (const netlist::Port &P : RT->Node->Ports) {
      int PortId = RT->findPortId(P.Name);
      if (PortId < 0)
        continue;
      for (int NetId : RT->PortSlots[size_t(PortId)].Nets) {
        if (NetId < 0)
          continue;
        if (P.isInput()) {
          NetReaders[NetId].push_back(Reader{(int)SN, &P.Name});
          RT->InputNets.push_back(NetId);
          continue;
        }
        RT->OutputNets.push_back(NetId);
        Net &N = Nets[NetId];
        if (N.DriverRuntime >= 0 &&
            N.DriverRuntime != (int)LeafRuntimes[SN]) {
          Diags.error(P.Loc, "net has multiple drivers: port '" + P.Name +
                                 "' of instance '" + RT->Node->Path + "'");
          continue;
        }
        N.DriverRuntime = LeafRuntimes[SN];
      }
    }
    auto Dedup = [](std::vector<int> &V) {
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end()), V.end());
    };
    Dedup(RT->InputNets);
    Dedup(RT->OutputNets);
    RT->Pure = RT->Behavior && RT->Behavior->hasPureEvaluate();
  }

  // 5. Build the combinational dependency graph and the static schedule.
  std::vector<std::vector<int>> Successors(LeafRuntimes.size());
  for (unsigned NetId = 0; NetId != Nets.size(); ++NetId) {
    int Driver = Nets[NetId].DriverRuntime;
    if (Driver < 0)
      continue;
    int DriverSN = Runtimes[Driver]->ScheduleNode;
    for (const Reader &R : NetReaders[NetId]) {
      Runtime *RT = Runtimes[LeafRuntimes[R.ScheduleNode]].get();
      if (RT->Behavior && RT->Behavior->readsCombinationally(*R.Port))
        Successors[DriverSN].push_back(R.ScheduleNode);
    }
  }
  Sched = computeSchedule(LeafRuntimes.size(), Successors);
  // Re-express schedule nodes as runtime indices.
  for (auto &Group : Sched.Groups)
    for (int &N : Group)
      N = LeafRuntimes[N];

  // 6. Selective-trace summaries: per-group input-net unions and
  //    skippability, precomputed once so the per-cycle loop only scans a
  //    short sorted list per skippable group.
  std::vector<std::vector<int>> NodeInputNets(Runtimes.size());
  std::vector<bool> NodePure(Runtimes.size(), false);
  for (size_t RTIdx = 0; RTIdx != Runtimes.size(); ++RTIdx) {
    NodeInputNets[RTIdx] = Runtimes[RTIdx]->InputNets;
    NodePure[RTIdx] = Runtimes[RTIdx]->Pure;
  }
  computeGroupSummaries(Sched, NodeInputNets, NodePure);
  GroupEvaluated.assign(Sched.Groups.size(), 0);
  GroupDirty.assign(Sched.Groups.size(), 0);
  GroupOscillating.assign(Sched.Groups.size(), {});

  // 7. Wavefront engine resources. Sized before the pointer wiring below
  //    so &GroupDirty[G] / &GroupEventBufs[G] stay valid (neither vector
  //    is ever resized afterwards).
  if (Opts.Jobs > 1) {
    GroupEventBufs.assign(Sched.Groups.size(), {});
    FixpointFailed.assign(Sched.Groups.size(), 0);
    StatShards.assign(Opts.Jobs, ActivityStats());
    Pool = std::make_unique<ThreadPool>(Opts.Jobs);
  }
  for (size_t G = 0; G != Sched.Groups.size(); ++G)
    for (int RTIdx : Sched.Groups[G]) {
      Runtimes[RTIdx]->FixpointDirty = &GroupDirty[G];
      if (Opts.Jobs > 1)
        Runtimes[RTIdx]->Buf = &GroupEventBufs[G];
    }

  Info.NumGroups = Sched.Groups.size();
  Info.NumCyclicGroups = Sched.numCyclicGroups();
  Info.MaxGroupSize = Sched.maxGroupSize();
  Info.NumSkippableGroups = Sched.numSkippableGroups();
  Info.NumLevels = Sched.numLevels();
  Info.MaxLevelWidth = Sched.maxLevelWidth();

  return Diags.getNumErrors() == ErrorsBefore;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void Simulator::reset() {
  Cycle = 0;
  RuntimeErrors.store(false, std::memory_order_relaxed);
  for (Net &N : Nets) {
    N.Has = false;
    N.PrevHas = false;
    N.DirtyCycle = NeverDirty;
  }
  Activity = ActivityStats();
  Activity.Selective = Opts.Selective;
  GroupEvaluated.assign(Sched.Groups.size(), 0);
  std::fill(GroupDirty.begin(), GroupDirty.end(), 0);
  std::fill(FixpointFailed.begin(), FixpointFailed.end(), 0);
  for (auto &O : GroupOscillating)
    O.clear();
  for (auto &B : GroupEventBufs)
    B.clear();
  for (ActivityStats &S : StatShards)
    S = ActivityStats();
  BufferEvents = false;
  BypassCountdown = 0;
  LastInstrVersion = Instr.getVersion();
  for (auto &RT : Runtimes) {
    RT->resetState();
    RT->LastSends.clear();
  }
  for (auto &RT : Runtimes)
    if (RT->Behavior)
      RT->Behavior->init(*RT);
  runUserpointPhase("init");
}

void Simulator::runUserpointPhase(const std::string &Name) {
  for (auto &RT : Runtimes)
    if (RT->hasUserpoint(Name))
      RT->callUserpoint(Name, {});
}

void Simulator::runEndOfTimestepUserpoints() {
  // Hot path: the per-cycle phase touches only runtimes that carry the
  // userpoint (precomputed at first use).
  if (!EotRuntimesValid) {
    EotRuntimes.clear();
    for (auto &RT : Runtimes)
      if (RT->hasUserpoint("end_of_timestep"))
        EotRuntimes.push_back(RT.get());
    EotRuntimesValid = true;
  }
  for (Runtime *RT : EotRuntimes)
    RT->callUserpoint("end_of_timestep", {});
}

void Simulator::evaluateGroup(size_t GroupIdx, ActivityStats &A) {
  const std::vector<int> &Group = Sched.Groups[GroupIdx];
  // Prepare the group's output nets: snapshot last cycle's presence, then
  // clear it so this evaluation starts from a blank slate. (Replaces the
  // old global per-cycle Has sweep — skipped groups keep their nets as-is,
  // carrying the previous sends forward.)
  for (int RTIdx : Group)
    for (int NetId : Runtimes[RTIdx]->OutputNets) {
      Net &N = Nets[NetId];
      N.PrevHas = N.Has;
      N.Has = false;
    }

  if (Group.size() == 1) {
    Runtime *RT = Runtimes[Group.front()].get();
    if (RT->Behavior) {
      RT->Stats = &A;
      RT->LastSends.clear();
      RT->Behavior->evaluate(*RT);
      ++A.LeafEvals;
    }
  } else {
    // Combinational cycle: iterate to a fixpoint, using the group's own
    // dirty flag as the convergence test. Per-group flags (instead of a
    // simulator-global one) keep iteration counts identical when several
    // cyclic groups of the same level run on different threads.
    char &Dirty = GroupDirty[GroupIdx];
    for (int RTIdx : Group)
      Runtimes[RTIdx]->Stats = &A;
    bool Converged = false;
    // Watchdog snapshot of the group's output nets, taken before the final
    // allowed iteration: nets that still differ afterwards are the ones
    // oscillating, and the failure report names them with their values.
    std::vector<std::pair<int, interp::Value>> Watch;
    std::vector<char> WatchHas;
    for (unsigned Iter = 0; Iter != Opts.MaxFixpointIters; ++Iter) {
      Dirty = 0;
      ++A.FixpointIters;
      if (Iter + 1 == Opts.MaxFixpointIters) {
        for (int RTIdx : Group)
          for (int NetId : Runtimes[RTIdx]->OutputNets) {
            Watch.emplace_back(NetId, Nets[NetId].V);
            WatchHas.push_back(Nets[NetId].Has);
          }
      }
      for (int RTIdx : Group) {
        Runtime *RT = Runtimes[RTIdx].get();
        if (RT->Behavior) {
          RT->LastSends.clear();
          RT->Behavior->evaluate(*RT);
          ++A.LeafEvals;
        }
      }
      if (!Dirty) {
        Converged = true;
        break;
      }
    }
    if (!Converged) {
      std::vector<int> &Osc = GroupOscillating[GroupIdx];
      Osc.clear();
      for (size_t W = 0; W != Watch.size() && Osc.size() < 8; ++W) {
        const Net &N = Nets[Watch[W].first];
        if (char(N.Has) != WatchHas[W] || !N.V.equals(Watch[W].second))
          Osc.push_back(Watch[W].first);
      }
      if (Pool) {
        // Parallel phase: defer the diagnostic to the main thread, which
        // reports failures in ascending group order after the level.
        FixpointFailed[GroupIdx] = 1;
      } else if (!RuntimeErrors.load(std::memory_order_relaxed)) {
        reportFixpointFailure(GroupIdx);
        RuntimeErrors.store(true, std::memory_order_relaxed);
      }
    }
  }

  // Absence pass: a net that was driven last cycle but not this one is an
  // observable change for downstream readers.
  for (int RTIdx : Group)
    for (int NetId : Runtimes[RTIdx]->OutputNets) {
      Net &N = Nets[NetId];
      if (N.PrevHas && !N.Has)
        N.DirtyCycle = Cycle;
    }

  GroupEvaluated[GroupIdx] = 1;
  ++A.GroupsEvaluated;
}

void Simulator::reportFixpointFailure(size_t GroupIdx) {
  const std::vector<int> &Group = Sched.Groups[GroupIdx];
  std::string Members;
  unsigned Listed = 0;
  for (int RTIdx : Group) {
    if (Listed == 8) {
      Members += ", ...";
      break;
    }
    if (Listed++)
      Members += ", ";
    Members += "'" + Runtimes[RTIdx]->Node->Path + "'";
  }
  Diags.error(SourceLoc(),
              "combinational cycle did not converge within " +
                  std::to_string(Opts.MaxFixpointIters) +
                  " iterations; group members: " + Members);
  // Name the nets the watchdog saw still changing in the final iteration,
  // with the values they oscillated to — the concrete evidence for
  // debugging the cycle. Each net is named after its first port instance
  // in creation order ("path.port[index]"); cold path, so the full scan
  // over the netlist is fine.
  const std::vector<int> &Osc = GroupOscillating[GroupIdx];
  if (Osc.empty())
    return;
  std::map<int, std::string> NetName;
  for (const auto &Inst : NL.getInstances())
    for (const netlist::Port &P : Inst->Ports)
      for (int I = 0; I != P.Width; ++I) {
        int NetId = NodeNet[Inst->NodeBase + P.NodeOffset + uint32_t(I)];
        if (std::find(Osc.begin(), Osc.end(), NetId) == Osc.end() ||
            NetName.count(NetId))
          continue;
        NetName[NetId] =
            Inst->Path + "." + P.Name + "[" + std::to_string(I) + "]";
      }
  for (int NetId : Osc) {
    const Net &N = Nets[NetId];
    auto It = NetName.find(NetId);
    std::string Name = It != NetName.end() ? It->second
                                           : "net #" + std::to_string(NetId);
    Diags.note(SourceLoc(), "net '" + Name + "' was still changing; last "
                            "value: " +
                                (N.Has ? N.V.str() : "<absent>"));
  }
}

void Simulator::skipGroup(size_t GroupIdx) {
  ++Activity.GroupsSkipped;
  ++Activity.LeafEvalsSkipped; // Skippable groups are singletons.
  if (Instr.empty())
    return;
  // Replay the automatic port events the skipped evaluate() would have
  // emitted, in recorded order, with the carried-forward net values.
  Runtime *RT = Runtimes[Sched.Groups[GroupIdx].front()].get();
  for (const auto &[EvName, NetId] : RT->LastSends) {
    if (BufferEvents) {
      BufferedEvent BE;
      BE.InstancePath = &RT->Node->Path;
      BE.Name = EvName;
      BE.Cycle = Cycle;
      BE.Payload = Nets[NetId].V;
      GroupEventBufs[GroupIdx].push_back(std::move(BE));
    } else {
      Event E;
      E.InstancePath = &RT->Node->Path;
      E.Name = EvName;
      E.Cycle = Cycle;
      E.Payload = &Nets[NetId].V;
      Instr.emit(E);
    }
    ++Activity.EventsReplayed;
  }
}

void Simulator::flushCycleEvents() {
  // Ascending group index — exactly the serial engine's emission order.
  // Levels are not contiguous in group index (ASAP packing), so the flush
  // happens once per cycle over every group rather than per level.
  for (size_t G = 0; G != GroupEventBufs.size(); ++G) {
    std::vector<BufferedEvent> &Buf = GroupEventBufs[G];
    if (Buf.empty())
      continue;
    for (BufferedEvent &BE : Buf) {
      Event E;
      E.InstancePath = BE.InstancePath;
      E.Name = BE.Name ? BE.Name : &BE.NameStore;
      E.Cycle = BE.Cycle;
      E.Payload = &BE.Payload;
      Instr.emit(E);
    }
    Buf.clear();
  }
}

void Simulator::runSequentialPhase() {
  for (auto &RT : Runtimes)
    if (RT->Behavior)
      RT->Behavior->endOfTimestep(*RT);
  runEndOfTimestepUserpoints();
}

void Simulator::step(uint64_t N) {
  if (Kernel)
    Kernel->run(*this, N);
  else if (Pool)
    stepWavefront(N);
  else
    stepSerial(N);
}

void Simulator::stepSerial(uint64_t N) {
  for (uint64_t I = 0; I != N; ++I) {
    // A collector attached since the last cycle invalidates the replay
    // records (they only hold events recorded while instrumentation was
    // live), so force one exhaustive cycle to rebuild them.
    bool ForceFull = false;
    if (Instr.getVersion() != LastInstrVersion) {
      LastInstrVersion = Instr.getVersion();
      ForceFull = true;
    }
    // All-dirty bypass: while armed, suppress the quiescence scan and
    // evaluate everything — exactly the exhaustive engine's cycle, so
    // traces are unchanged and on all-active models the selective
    // engine's bookkeeping decays to one probe scan per window.
    bool Bypass = false;
    if (Opts.Selective && !ForceFull && BypassCountdown) {
      --BypassCountdown;
      Bypass = true;
      ++Activity.BypassCycles;
    }
    uint64_t Eligible = 0, Skipped = 0;
    for (size_t G = 0; G != Sched.Groups.size(); ++G) {
      if (Opts.Selective && !ForceFull && !Bypass && Sched.GroupSkippable[G] &&
          GroupEvaluated[G]) {
        ++Eligible;
        bool Quiescent = true;
        for (int NetId : Sched.GroupInputNets[G])
          if (Nets[NetId].DirtyCycle == Cycle) {
            Quiescent = false;
            break;
          }
        if (Quiescent) {
          ++Skipped;
          skipGroup(G);
          continue;
        }
      }
      evaluateGroup(G, Activity);
    }
    maybeArmBypass(Eligible, Skipped);
    runSequentialPhase();
    ++Cycle;
    ++Activity.Cycles;
  }
}

static void mergeActivity(ActivityStats &To, ActivityStats &From) {
  To.GroupsEvaluated += From.GroupsEvaluated;
  To.GroupsSkipped += From.GroupsSkipped;
  To.LeafEvals += From.LeafEvals;
  To.LeafEvalsSkipped += From.LeafEvalsSkipped;
  To.FixpointIters += From.FixpointIters;
  To.NetWrites += From.NetWrites;
  To.NetChanges += From.NetChanges;
  To.EventsReplayed += From.EventsReplayed;
  To.BypassCycles += From.BypassCycles;
  From = ActivityStats();
}

void Simulator::stepWavefront(uint64_t N) {
  for (uint64_t I = 0; I != N; ++I) {
    bool ForceFull = false;
    if (Instr.getVersion() != LastInstrVersion) {
      LastInstrVersion = Instr.getVersion();
      ForceFull = true;
    }
    const bool DoInstr = !Instr.empty();
    // All-dirty bypass, identical to stepSerial's: decided on the main
    // thread before dispatch, so stats and traces match the serial engine
    // bit for bit at any thread count.
    bool Bypass = false;
    if (Opts.Selective && !ForceFull && BypassCountdown) {
      --BypassCountdown;
      Bypass = true;
      ++Activity.BypassCycles;
    }
    uint64_t Eligible = 0, Skipped = 0;
    // Route events into per-group buffers for the whole combinational
    // phase (including main-thread skips, so replays interleave with live
    // events exactly as in the serial engine).
    BufferEvents = DoInstr;
    for (const std::vector<int> &L : Sched.Levels) {
      // Skip decisions run on the main thread before dispatch: they read
      // DirtyCycle stamps written only by strictly earlier levels (a
      // skippable group's inputs are all read combinationally, so each
      // driver has a scheduling edge and therefore a smaller level).
      LevelPending.clear();
      for (int G : L) {
        if (Opts.Selective && !ForceFull && !Bypass &&
            Sched.GroupSkippable[G] && GroupEvaluated[G]) {
          ++Eligible;
          bool Quiescent = true;
          for (int NetId : Sched.GroupInputNets[G])
            if (Nets[NetId].DirtyCycle == Cycle) {
              Quiescent = false;
              break;
            }
          if (Quiescent) {
            ++Skipped;
            skipGroup(size_t(G));
            continue;
          }
        }
        LevelPending.push_back(G);
      }
      if (LevelPending.size() == 1) {
        // Nothing to overlap: evaluate inline, counters into the global
        // stats directly.
        evaluateGroup(size_t(LevelPending.front()), Activity);
      } else if (!LevelPending.empty()) {
        // One task per worker-sized chunk, not per group: group
        // evaluations are often sub-microsecond, so per-group enqueueing
        // would drown the level in pool overhead. LevelPending stays
        // untouched until the barrier, so tasks index it directly.
        size_t NumChunks =
            std::min<size_t>(Pool->getThreadCount(), LevelPending.size());
        for (size_t Ck = 0; Ck != NumChunks; ++Ck) {
          size_t Begin = Ck * LevelPending.size() / NumChunks;
          size_t End = (Ck + 1) * LevelPending.size() / NumChunks;
          Pool->async([this, Begin, End] {
            int W = ThreadPool::currentWorkerIndex();
            assert(W >= 0 && "group task running off-pool");
            ActivityStats &A = StatShards[size_t(W)];
            for (size_t I = Begin; I != End; ++I)
              evaluateGroup(size_t(LevelPending[I]), A);
          });
        }
        Pool->wait(); // Level barrier.
      }
    }
    maybeArmBypass(Eligible, Skipped);
    if (DoInstr)
      flushCycleEvents();
    // Deferred fixpoint diagnostics, in ascending group order (the serial
    // engine's reporting order), on the main thread.
    for (size_t G = 0; G != FixpointFailed.size(); ++G)
      if (FixpointFailed[G]) {
        FixpointFailed[G] = 0;
        if (!RuntimeErrors.load(std::memory_order_relaxed)) {
          reportFixpointFailure(G);
          RuntimeErrors.store(true, std::memory_order_relaxed);
        }
      }
    BufferEvents = false;
    // Shard merge: sums are commutative, so totals are identical for any
    // thread count and any work-stealing order. Re-point every runtime's
    // stats at the merged totals first, so anything the sequential phase
    // counts lands there directly (a shard write after the merge would
    // slip to the next cycle — or be lost on the last one).
    for (auto &RT : Runtimes)
      RT->Stats = &Activity;
    for (ActivityStats &S : StatShards)
      mergeActivity(Activity, S);
    runSequentialPhase();
    ++Cycle;
    ++Activity.Cycles;
  }
}

//===----------------------------------------------------------------------===//
// Probing
//===----------------------------------------------------------------------===//

int Simulator::resolvePortNet(const std::string &InstPath,
                              const std::string &Port, int Index) const {
  const netlist::InstanceNode *Inst = NL.findByPath(InstPath);
  if (!Inst)
    return -1;
  int PI = Inst->findPortIdx(Port);
  if (PI < 0)
    return -1;
  const netlist::Port &P = Inst->Ports[size_t(PI)];
  if (Index < 0 || Index >= P.Width)
    return -1;
  return NodeNet[Inst->NodeBase + P.NodeOffset + uint32_t(Index)];
}

const Value *Simulator::peekPort(int NetId) const {
  if (NetId < 0 || NetId >= int(Nets.size()))
    return nullptr;
  const Net &N = Nets[size_t(NetId)];
  return N.Has ? &N.V : nullptr;
}

const Value *Simulator::peekPort(const std::string &InstPath,
                                 const std::string &Port, int Index) const {
  return peekPort(resolvePortNet(InstPath, Port, Index));
}

interp::Value *Simulator::findState(const std::string &InstPath,
                                    const std::string &Name) {
  const netlist::InstanceNode *Inst = NL.findByPath(InstPath);
  if (!Inst || Inst->Id >= RuntimeOfInstance.size())
    return nullptr;
  Runtime *RT = RuntimeOfInstance[Inst->Id];
  return RT ? RT->StateVars.lookup(Name) : nullptr;
}
