//===- KernelBuilder.h - Netlist-to-kernel lowering -------------*- C++ -*-===//
///
/// \file
/// Lowers a constructed Simulator into a CompiledKernel (the compiled
/// engine's flat cycle program), and rebuilds kernels from cached
/// "LSSKRN 1" artifacts. Lowering classifies each schedule group: a
/// singleton group whose behavior id names one of the devirtualized
/// corelib kinds (and whose port/state slots resolve) becomes a
/// specialized op over dense net ids; everything else becomes a Generic
/// op that delegates to Simulator::evaluateGroup, preserving fixpoint and
/// diagnostic semantics exactly.
///
/// load() trusts nothing: a cached plan is parsed with bounds-checked
/// decoding, then every op is revalidated against the live simulator's
/// schedule, behavior ids, and slot tables (the same classification the
/// fresh build performs) — any mismatch rejects the whole artifact and
/// the caller falls back to a fresh build. Mutated kernel artifacts are a
/// fuzz target (fuzz_cache).
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SIM_KERNELBUILDER_H
#define LIBERTY_SIM_KERNELBUILDER_H

#include "sim/CompiledKernel.h"

#include <memory>
#include <string>

namespace liberty {
namespace sim {

class Simulator;

class KernelBuilder {
public:
  /// Lowers \p Sim (constructed and reset, so behavior init() has bound
  /// its state slots) into a fresh kernel. Never fails: unrecognized
  /// groups lower to Generic ops.
  static std::unique_ptr<CompiledKernel> build(Simulator &Sim);

  /// Parses an "LSSKRN 1" artifact and revalidates it against \p Sim.
  /// Returns null if the artifact is malformed or structurally
  /// inconsistent with the simulator (the cache-miss path).
  static std::unique_ptr<CompiledKernel> load(Simulator &Sim,
                                              const std::string &Artifact);
};

} // namespace sim
} // namespace liberty

#endif // LIBERTY_SIM_KERNELBUILDER_H
