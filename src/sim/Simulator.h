//===- Simulator.h - Generated executable simulator -------------*- C++ -*-===//
///
/// \file
/// The back end of the LSS pipeline (paper Figure 4): combines the analyzed
/// netlist with leaf behavior implementations and userpoint code into an
/// executable simulator. LSE emitted a compiled binary; this implementation
/// builds an in-process simulator object over the same inputs (see the
/// substitution table in DESIGN.md).
///
/// Execution model: synchronous digital hardware. Each cycle has a
/// combinational phase — leaf instances evaluated in the statically
/// computed schedule, cyclic groups iterated to a fixpoint — followed by a
/// sequential phase (endOfTimestep + end_of_timestep userpoints).
///
/// Evaluation is selective-trace (activity-driven) by default: every net
/// carries a dirty stamp set only when a write actually changes its value
/// or presence, and singleton schedule groups whose behavior declares a
/// pure evaluate (LeafBehavior::hasPureEvaluate) are skipped in cycles
/// where none of their input nets changed, their previous sends carried
/// forward. See docs/ARCHITECTURE.md for the invariants.
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SIM_SIMULATOR_H
#define LIBERTY_SIM_SIMULATOR_H

#include "bsl/BehaviorRegistry.h"
#include "bsl/BslProgram.h"
#include "netlist/Netlist.h"
#include "sim/Instrumentation.h"
#include "sim/Scheduler.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace liberty {
namespace sim {

/// Per-run activity counters for the selective-trace engine, reported
/// through the --stats-json path. All counts are cumulative since the last
/// reset().
struct ActivityStats {
  bool Selective = true;      ///< Engine mode the run used.
  uint64_t Cycles = 0;        ///< Cycles stepped.
  uint64_t GroupsEvaluated = 0;
  uint64_t GroupsSkipped = 0; ///< Skippable groups left quiescent.
  uint64_t LeafEvals = 0;     ///< Behavior evaluate() calls.
  uint64_t LeafEvalsSkipped = 0;
  uint64_t FixpointIters = 0; ///< Iterations spent in cyclic groups.
  uint64_t NetWrites = 0;     ///< setOutput calls reaching a net.
  uint64_t NetChanges = 0;    ///< Writes that changed value or presence.
  uint64_t EventsReplayed = 0;///< Automatic port events served from replay.
};

class Simulator {
public:
  struct Options {
    /// Iteration cap for combinational cycles before declaring
    /// non-convergence.
    unsigned MaxFixpointIters = 64;
    /// Change-driven evaluation: skip quiescent singleton groups whose
    /// behavior has a pure evaluate. Off means exhaustive evaluation of
    /// every group every cycle (lssc --no-selective).
    bool Selective = true;
  };

  /// Structural facts about the generated simulator.
  struct BuildInfo {
    unsigned NumNets = 0;
    unsigned NumLeaves = 0;
    unsigned NumGroups = 0;
    unsigned NumCyclicGroups = 0;
    unsigned MaxGroupSize = 0;
    unsigned NumUserpoints = 0;
    unsigned NumSkippableGroups = 0;
  };

  /// Builds a simulator from an elaborated, type-inferred netlist. Returns
  /// null (with diagnostics) if a leaf behavior is missing, a userpoint
  /// fails to compile, or a net has multiple drivers. \p NL must outlive
  /// the simulator.
  static std::unique_ptr<Simulator> build(netlist::Netlist &NL, SourceMgr &SM,
                                          DiagnosticEngine &Diags);
  static std::unique_ptr<Simulator> build(netlist::Netlist &NL, SourceMgr &SM,
                                          DiagnosticEngine &Diags,
                                          Options Opts);

  ~Simulator();

  /// (Re)initializes all state and invokes init behaviors and userpoints.
  void reset();

  /// Advances \p N clock cycles.
  void step(uint64_t N = 1);

  uint64_t getCycle() const { return Cycle; }

  Instrumentation &getInstrumentation() { return Instr; }
  const BuildInfo &getBuildInfo() const { return Info; }
  const ActivityStats &getActivityStats() const { return Activity; }

  /// The value most recently driven on (instance path, output port, index),
  /// or null if none was sent this cycle / the node does not exist.
  const interp::Value *peekPort(const std::string &InstPath,
                                const std::string &Port, int Index) const;

  /// Mutable per-instance state (runtime variables and behavior state);
  /// null if the instance has no runtime record or slot.
  interp::Value *findState(const std::string &InstPath,
                           const std::string &Name);

  /// True if any diagnostics-reported runtime error occurred while
  /// stepping (the simulator keeps running best-effort).
  bool hadRuntimeErrors() const { return RuntimeErrors; }

private:
  Simulator(netlist::Netlist &NL, SourceMgr &SM, DiagnosticEngine &Diags,
            Options Opts);

  bool construct();

  /// Sentinel for "never written" in Net::DirtyCycle.
  static constexpr uint64_t NeverDirty = ~uint64_t(0);

  struct Net {
    interp::Value V;
    bool Has = false;     ///< Sent this cycle (or, mid-group, this round).
    bool PrevHas = false; ///< Sent last cycle (snapshotted pre-evaluation).
    /// Cycle of the last observable change: a write that altered the value,
    /// a send appearing after an absent cycle, or a send ceasing. The
    /// selective engine skips a group when no input net's DirtyCycle equals
    /// the current cycle.
    uint64_t DirtyCycle = NeverDirty;
    int DriverRuntime = -1; ///< Runtime index of the driving leaf, or -1.
  };

  class Runtime; // One per instance with behavior/userpoints/state.

  void evaluateGroup(size_t GroupIdx);
  void skipGroup(size_t GroupIdx);
  void runUserpointPhase(const std::string &Name);
  void runEndOfTimestepUserpoints();

  netlist::Netlist &NL;
  SourceMgr &SM;
  DiagnosticEngine &Diags;
  Options Opts;
  Instrumentation Instr;
  BuildInfo Info;

  std::vector<Net> Nets;
  std::vector<std::unique_ptr<Runtime>> Runtimes;
  /// Runtime indices of leaves, in schedule order groups.
  Schedule Sched;
  /// Map from port-instance key "path|port|index" to net id.
  std::map<std::string, int> NodeToNet;

  uint64_t Cycle = 0;
  bool RuntimeErrors = false;
  bool NetChanged = false;
  ActivityStats Activity;
  /// Per-group: has this group been evaluated at least once since reset()?
  /// A group is never skipped before its first evaluation (its replay
  /// records would be empty).
  std::vector<char> GroupEvaluated;
  /// Instrumentation version observed at the last cycle start; a mismatch
  /// forces one exhaustive cycle so freshly attached collectors see every
  /// event live and replay records are rebuilt.
  unsigned LastInstrVersion = 0;
  /// Runtimes carrying an end_of_timestep userpoint (hot-path cache).
  std::vector<Runtime *> EotRuntimes;
  bool EotRuntimesValid = false;

  friend class SimulatorTestPeer;
};

} // namespace sim
} // namespace liberty

#endif // LIBERTY_SIM_SIMULATOR_H
