//===- Simulator.h - Generated executable simulator -------------*- C++ -*-===//
///
/// \file
/// The back end of the LSS pipeline (paper Figure 4): combines the analyzed
/// netlist with leaf behavior implementations and userpoint code into an
/// executable simulator. LSE emitted a compiled binary; this implementation
/// builds an in-process simulator object over the same inputs (see the
/// substitution table in DESIGN.md).
///
/// Execution model: synchronous digital hardware. Each cycle has a
/// combinational phase — leaf instances evaluated in the statically
/// computed schedule, cyclic groups iterated to a fixpoint — followed by a
/// sequential phase (endOfTimestep + end_of_timestep userpoints).
///
/// Evaluation is selective-trace (activity-driven) by default: every net
/// carries a dirty stamp set only when a write actually changes its value
/// or presence, and singleton schedule groups whose behavior declares a
/// pure evaluate (LeafBehavior::hasPureEvaluate) are skipped in cycles
/// where none of their input nets changed, their previous sends carried
/// forward.
///
/// With Options::Jobs > 1 the combinational phase runs level-parallel
/// (wavefront): the schedule's groups are partitioned into topological
/// levels, each level's groups evaluate concurrently on a thread pool
/// with a barrier between levels, and determinism is engineered so any
/// thread count reproduces the serial engine bit for bit (see
/// docs/ARCHITECTURE.md for the invariants).
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SIM_SIMULATOR_H
#define LIBERTY_SIM_SIMULATOR_H

#include "bsl/BehaviorRegistry.h"
#include "bsl/BslProgram.h"
#include "netlist/Netlist.h"
#include "sim/Instrumentation.h"
#include "sim/Scheduler.h"
#include "support/Diagnostics.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace liberty {
namespace sim {

class CompiledKernel;
class KernelBuilder;
class KernelBuilderImpl;
struct KernelStats;

/// Which execution engine steps the simulator. Auto preserves the
/// historical flag-driven selection (Jobs > 1 -> wavefront, else
/// Selective on/off); the named kinds pin one engine explicitly
/// (lssc --sim-engine). All engines are bit-identical in traces, final
/// net values, and runtime state — pinned by the cross-engine
/// differential tests.
enum class EngineKind {
  Auto,      ///< Resolve from Selective/Jobs (legacy flags).
  Interp,    ///< Exhaustive serial interpreter.
  Selective, ///< Change-driven (activity-based) serial interpreter.
  Wavefront, ///< Level-parallel interpreter (Jobs workers).
  Compiled,  ///< Flat cycle kernel (sim/CompiledKernel).
};

/// Stable lowercase name ("interp", "compiled", ...) for CLI/stats.
const char *engineName(EngineKind K);
/// Parses an engineName() string (also accepts "auto"); returns false and
/// leaves \p Out untouched on an unknown name.
bool parseEngineName(const std::string &Name, EngineKind &Out);

/// Per-run activity counters for the selective-trace engine, reported
/// through the --stats-json path. All counts are cumulative since the last
/// reset(). Under the wavefront engine each worker accumulates into its
/// own shard, merged here at cycle end — the sums are order-independent,
/// so every thread count reports identical totals.
struct ActivityStats {
  bool Selective = true;      ///< Engine mode the run used.
  uint64_t Cycles = 0;        ///< Cycles stepped.
  uint64_t GroupsEvaluated = 0;
  uint64_t GroupsSkipped = 0; ///< Skippable groups left quiescent.
  uint64_t LeafEvals = 0;     ///< Behavior evaluate() calls.
  uint64_t LeafEvalsSkipped = 0;
  uint64_t FixpointIters = 0; ///< Iterations spent in cyclic groups.
  uint64_t NetWrites = 0;     ///< setOutput calls reaching a net.
  uint64_t NetChanges = 0;    ///< Writes that changed value or presence.
  uint64_t EventsReplayed = 0;///< Automatic port events served from replay.
  /// Cycles where the quiescence scan was suppressed because the last
  /// probe cycle found nearly every skippable group active (all-dirty
  /// bypass). Bypassed cycles evaluate every group, exactly like the
  /// exhaustive engine, so traces are unaffected.
  uint64_t BypassCycles = 0;
};

class Simulator {
public:
  struct Options {
    /// Iteration cap for combinational cycles before declaring
    /// non-convergence.
    unsigned MaxFixpointIters = 64;
    /// Change-driven evaluation: skip quiescent singleton groups whose
    /// behavior has a pure evaluate. Off means exhaustive evaluation of
    /// every group every cycle (lssc --no-selective).
    bool Selective = true;
    /// Worker threads for the wavefront (level-parallel) combinational
    /// phase (lssc --sim-jobs). 1 = the serial engine; any value produces
    /// bit-identical traces, stats, and diagnostics.
    unsigned Jobs = 1;
    /// Engine selection (lssc --sim-engine). Auto resolves from the two
    /// legacy flags above; an explicit kind wins and build() normalizes
    /// Selective/Jobs to match it.
    EngineKind Engine = EngineKind::Auto;
  };

  /// Structural facts about the generated simulator.
  struct BuildInfo {
    unsigned NumNets = 0;
    unsigned NumLeaves = 0;
    unsigned NumGroups = 0;
    unsigned NumCyclicGroups = 0;
    unsigned MaxGroupSize = 0;
    unsigned NumUserpoints = 0;
    unsigned NumSkippableGroups = 0;
    unsigned NumLevels = 0;      ///< Wavefront levels in the schedule.
    unsigned MaxLevelWidth = 0;  ///< Groups in the widest level.
  };

  /// Builds a simulator from an elaborated, type-inferred netlist. Returns
  /// null (with diagnostics) if a leaf behavior is missing, a userpoint
  /// fails to compile, or a net has multiple drivers. \p NL must outlive
  /// the simulator.
  static std::unique_ptr<Simulator> build(netlist::Netlist &NL, SourceMgr &SM,
                                          DiagnosticEngine &Diags);
  static std::unique_ptr<Simulator> build(netlist::Netlist &NL, SourceMgr &SM,
                                          DiagnosticEngine &Diags,
                                          Options Opts);
  /// As above, additionally offering a cached "LSSKRN 1" kernel artifact
  /// to adopt when the compiled engine is selected (null = build fresh).
  /// A rejected artifact silently falls back to a fresh lowering —
  /// getKernelStats()->FromCache reports what happened.
  static std::unique_ptr<Simulator> build(netlist::Netlist &NL, SourceMgr &SM,
                                          DiagnosticEngine &Diags,
                                          Options Opts,
                                          const std::string *KernelArtifact);

  ~Simulator();

  /// (Re)initializes all state and invokes init behaviors and userpoints.
  void reset();

  /// Advances \p N clock cycles.
  void step(uint64_t N = 1);

  uint64_t getCycle() const { return Cycle; }

  Instrumentation &getInstrumentation() { return Instr; }
  const Options &getOptions() const { return Opts; }
  const BuildInfo &getBuildInfo() const { return Info; }
  const ActivityStats &getActivityStats() const { return Activity; }

  /// The engine build() resolved (never Auto).
  EngineKind getEngine() const { return ResolvedEngine; }
  const char *getEngineName() const { return engineName(ResolvedEngine); }
  /// Kernel provenance and op counts; null unless the compiled engine is
  /// active.
  const KernelStats *getKernelStats() const;
  /// Renders the compiled kernel as its byte-stable "LSSKRN 1" artifact
  /// for caching; returns false (leaving \p Out untouched) unless the
  /// compiled engine is active.
  bool serializeKernel(std::string &Out) const;

  /// The value most recently driven on (instance path, output port, index),
  /// or null if none was sent this cycle / the node does not exist.
  const interp::Value *peekPort(const std::string &InstPath,
                                const std::string &Port, int Index) const;

  /// Resolved-handle probing: resolve the (path, port, index) key once,
  /// then peek by net id each cycle without rebuilding the string key.
  /// Returns -1 if the port instance does not exist.
  int resolvePortNet(const std::string &InstPath, const std::string &Port,
                     int Index) const;
  const interp::Value *peekPort(int NetId) const;

  /// Mutable per-instance state (runtime variables and behavior state);
  /// null if the instance has no runtime record or slot. The returned
  /// pointer is stable for the simulator's lifetime (including across
  /// reset()), so per-cycle probe loops may resolve it once and hold it.
  interp::Value *findState(const std::string &InstPath,
                           const std::string &Name);

  /// True if any diagnostics-reported runtime error occurred while
  /// stepping (the simulator keeps running best-effort).
  bool hadRuntimeErrors() const {
    return RuntimeErrors.load(std::memory_order_relaxed);
  }

private:
  Simulator(netlist::Netlist &NL, SourceMgr &SM, DiagnosticEngine &Diags,
            Options Opts);

  bool construct();

  /// Sentinel for "never written" in Net::DirtyCycle.
  static constexpr uint64_t NeverDirty = ~uint64_t(0);

  struct Net {
    interp::Value V;
    bool Has = false;     ///< Sent this cycle (or, mid-group, this round).
    bool PrevHas = false; ///< Sent last cycle (snapshotted pre-evaluation).
    /// Cycle of the last observable change: a write that altered the value,
    /// a send appearing after an absent cycle, or a send ceasing. The
    /// selective engine skips a group when no input net's DirtyCycle equals
    /// the current cycle.
    uint64_t DirtyCycle = NeverDirty;
    int DriverRuntime = -1; ///< Runtime index of the driving leaf, or -1.
  };

  /// One instrumentation event captured during parallel evaluation; the
  /// payload is copied so the flush can emit it after the producing level
  /// completed. Flushing in ascending group order at the end of the
  /// combinational phase makes the stream identical to the serial
  /// engine's (levels are not contiguous in group index, so a per-level
  /// flush would not be).
  struct BufferedEvent {
    const std::string *InstancePath = nullptr;
    /// Stable name pointer (automatic port events, replays); null when the
    /// name was a caller temporary and NameStore owns the copy.
    const std::string *Name = nullptr;
    std::string NameStore;
    uint64_t Cycle = 0;
    interp::Value Payload;
  };

  class Runtime; // One per instance with behavior/userpoints/state.

  void evaluateGroup(size_t GroupIdx, ActivityStats &Stats);
  void skipGroup(size_t GroupIdx);
  void stepSerial(uint64_t N);
  void stepWavefront(uint64_t N);
  void runSequentialPhase();
  void flushCycleEvents();
  void reportFixpointFailure(size_t GroupIdx);
  void runUserpointPhase(const std::string &Name);
  void runEndOfTimestepUserpoints();

  netlist::Netlist &NL;
  SourceMgr &SM;
  DiagnosticEngine &Diags;
  Options Opts;
  Instrumentation Instr;
  BuildInfo Info;

  std::vector<Net> Nets;
  std::vector<std::unique_ptr<Runtime>> Runtimes;
  /// Runtime indices of leaves, in schedule order groups.
  Schedule Sched;
  /// Dense node id (netlist::Netlist::nodeIdOf over the frozen numbering)
  /// -> net id. Flat array: probe resolution and slot wiring never build
  /// or hash string keys.
  std::vector<int> NodeNet;
  /// InstanceNode::Id -> runtime record (null for instances without one);
  /// findState resolves the path once through the netlist's interned path
  /// index, then indexes this directly.
  std::vector<Runtime *> RuntimeOfInstance;

  /// The engine resolved from Opts at build time (never Auto).
  EngineKind ResolvedEngine = EngineKind::Interp;
  /// The compiled engine's flat cycle program (sim/CompiledKernel),
  /// lowered by KernelBuilder after construct()+reset(); null for the
  /// interpreted engines. step() routes through it when set.
  std::unique_ptr<CompiledKernel> Kernel;

  uint64_t Cycle = 0;
  /// Sticky error flag; atomic because worker threads running userpoints
  /// or failing fixpoints set it during the parallel phase.
  std::atomic<bool> RuntimeErrors{false};
  /// Per-group fixpoint convergence flag (indexed by group): replaces the
  /// old simulator-global NetChanged so concurrently iterating cyclic
  /// groups don't share a flag — iteration counts stay identical at any
  /// thread count.
  std::vector<char> GroupDirty;
  ActivityStats Activity;
  /// Per-group: has this group been evaluated at least once since reset()?
  /// A group is never skipped before its first evaluation (its replay
  /// records would be empty).
  std::vector<char> GroupEvaluated;
  /// Instrumentation version observed at the last cycle start; a mismatch
  /// forces one exhaustive cycle so freshly attached collectors see every
  /// event live and replay records are rebuilt.
  unsigned LastInstrVersion = 0;
  /// All-dirty bypass (selective engines): a probe cycle that skips fewer
  /// than 1 in 8 of its eligible skippable groups arms this countdown, and
  /// while it is nonzero the per-group quiescence scan is suppressed
  /// entirely — every group evaluates, exactly as the exhaustive engine
  /// would, so the selective engine's overhead on all-active models decays
  /// to one probe scan per window. Identical logic in the serial and
  /// wavefront engines (the decision runs on the main thread), so stats
  /// stay bit-identical across thread counts.
  static constexpr uint64_t BypassWindow = 32;
  uint64_t BypassCountdown = 0;
  /// Probe-cycle accounting shared by both step loops.
  void maybeArmBypass(uint64_t Eligible, uint64_t Skipped) {
    if (Eligible && Skipped * 8 < Eligible)
      BypassCountdown = BypassWindow;
  }
  /// Runtimes carrying an end_of_timestep userpoint (hot-path cache).
  std::vector<Runtime *> EotRuntimes;
  bool EotRuntimesValid = false;

  //===--- Wavefront engine state (Opts.Jobs > 1 only) -------------------===//
  std::unique_ptr<ThreadPool> Pool;
  /// One ActivityStats shard per worker; merged into Activity after each
  /// cycle's combinational phase.
  std::vector<ActivityStats> StatShards;
  /// Per-group event buffer: workers (and the skip path) append here
  /// instead of calling Instrumentation::emit, and the main thread
  /// flushes once per cycle in ascending group order.
  std::vector<std::vector<BufferedEvent>> GroupEventBufs;
  /// True while the combinational phase of a parallel cycle runs (set and
  /// cleared by the main thread with the pool quiescent): routes events
  /// into GroupEventBufs.
  bool BufferEvents = false;
  /// Per-group "fixpoint did not converge" flags; diagnostics for them are
  /// emitted by the main thread at the end of the combinational phase, in
  /// ascending group order, so the report stream is deterministic.
  std::vector<char> FixpointFailed;
  /// Per-group watchdog capture: net ids still changing during the final
  /// fixpoint iteration of a non-converging group (capped at 8). Each slot
  /// is written only by the group's own evaluator, so parallel levels need
  /// no lock; the deferred report reads it on the main thread in the same
  /// cycle, while the nets still hold their oscillating values.
  std::vector<std::vector<int>> GroupOscillating;
  /// Serializes DiagnosticEngine access from worker threads (userpoint
  /// runtime errors). Unused when Jobs == 1.
  std::mutex DiagsMutex;
  /// Scratch for the per-level dispatch loop (group indices to evaluate).
  std::vector<int> LevelPending;

  friend class SimulatorTestPeer;
  /// The compiled engine: KernelBuilder lowers over the private slot
  /// tables; CompiledKernel::run drives Nets/Instr/Cycle directly.
  friend class CompiledKernel;
  friend class KernelBuilder;
  friend class KernelBuilderImpl;
};

} // namespace sim
} // namespace liberty

#endif // LIBERTY_SIM_SIMULATOR_H
