//===- Simulator.h - Generated executable simulator -------------*- C++ -*-===//
///
/// \file
/// The back end of the LSS pipeline (paper Figure 4): combines the analyzed
/// netlist with leaf behavior implementations and userpoint code into an
/// executable simulator. LSE emitted a compiled binary; this implementation
/// builds an in-process simulator object over the same inputs (see the
/// substitution table in DESIGN.md).
///
/// Execution model: synchronous digital hardware. Each cycle has a
/// combinational phase — leaf instances evaluated in the statically
/// computed schedule, cyclic groups iterated to a fixpoint — followed by a
/// sequential phase (endOfTimestep + end_of_timestep userpoints).
///
//===----------------------------------------------------------------------===//

#ifndef LIBERTY_SIM_SIMULATOR_H
#define LIBERTY_SIM_SIMULATOR_H

#include "bsl/BehaviorRegistry.h"
#include "bsl/BslProgram.h"
#include "netlist/Netlist.h"
#include "sim/Instrumentation.h"
#include "sim/Scheduler.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace liberty {
namespace sim {

class Simulator {
public:
  struct Options {
    /// Iteration cap for combinational cycles before declaring
    /// non-convergence.
    unsigned MaxFixpointIters = 64;
  };

  /// Structural facts about the generated simulator.
  struct BuildInfo {
    unsigned NumNets = 0;
    unsigned NumLeaves = 0;
    unsigned NumGroups = 0;
    unsigned NumCyclicGroups = 0;
    unsigned MaxGroupSize = 0;
    unsigned NumUserpoints = 0;
  };

  /// Builds a simulator from an elaborated, type-inferred netlist. Returns
  /// null (with diagnostics) if a leaf behavior is missing, a userpoint
  /// fails to compile, or a net has multiple drivers. \p NL must outlive
  /// the simulator.
  static std::unique_ptr<Simulator> build(netlist::Netlist &NL, SourceMgr &SM,
                                          DiagnosticEngine &Diags);
  static std::unique_ptr<Simulator> build(netlist::Netlist &NL, SourceMgr &SM,
                                          DiagnosticEngine &Diags,
                                          Options Opts);

  ~Simulator();

  /// (Re)initializes all state and invokes init behaviors and userpoints.
  void reset();

  /// Advances \p N clock cycles.
  void step(uint64_t N = 1);

  uint64_t getCycle() const { return Cycle; }

  Instrumentation &getInstrumentation() { return Instr; }
  const BuildInfo &getBuildInfo() const { return Info; }

  /// The value most recently driven on (instance path, output port, index),
  /// or null if none was sent this cycle / the node does not exist.
  const interp::Value *peekPort(const std::string &InstPath,
                                const std::string &Port, int Index) const;

  /// Mutable per-instance state (runtime variables and behavior state);
  /// null if the instance has no runtime record or slot.
  interp::Value *findState(const std::string &InstPath,
                           const std::string &Name);

  /// True if any diagnostics-reported runtime error occurred while
  /// stepping (the simulator keeps running best-effort).
  bool hadRuntimeErrors() const { return RuntimeErrors; }

private:
  Simulator(netlist::Netlist &NL, SourceMgr &SM, DiagnosticEngine &Diags,
            Options Opts);

  bool construct();

  struct Net {
    interp::Value V;
    bool Has = false;
    int DriverRuntime = -1; ///< Runtime index of the driving leaf, or -1.
  };

  class Runtime; // One per instance with behavior/userpoints/state.

  void evaluateGroup(const std::vector<int> &Group);
  void runUserpointPhase(const std::string &Name);
  void runEndOfTimestepUserpoints();

  netlist::Netlist &NL;
  SourceMgr &SM;
  DiagnosticEngine &Diags;
  Options Opts;
  Instrumentation Instr;
  BuildInfo Info;

  std::vector<Net> Nets;
  std::vector<std::unique_ptr<Runtime>> Runtimes;
  /// Runtime indices of leaves, in schedule order groups.
  Schedule Sched;
  /// Map from port-instance key "path|port|index" to net id.
  std::map<std::string, int> NodeToNet;

  uint64_t Cycle = 0;
  bool RuntimeErrors = false;
  bool NetChanged = false;
  /// Runtimes carrying an end_of_timestep userpoint (hot-path cache).
  std::vector<Runtime *> EotRuntimes;
  bool EotRuntimesValid = false;

  friend class SimulatorTestPeer;
};

} // namespace sim
} // namespace liberty

#endif // LIBERTY_SIM_SIMULATOR_H
