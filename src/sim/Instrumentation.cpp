//===- Instrumentation.cpp - AOP-style data collection ------------------------===//

#include "sim/Instrumentation.h"

using namespace liberty;
using namespace liberty::sim;

bool Instrumentation::matches(const std::string &Pattern,
                              const std::string &Text) {
  if (Pattern == "*")
    return true;
  if (!Pattern.empty() && Pattern.back() == '*')
    return Text.compare(0, Pattern.size() - 1, Pattern, 0,
                        Pattern.size() - 1) == 0;
  return Pattern == Text;
}

void Instrumentation::attach(std::string PathPattern, std::string EventPattern,
                             CollectorFn Fn) {
  Collectors.push_back(
      Entry{std::move(PathPattern), std::move(EventPattern), std::move(Fn)});
  ++Version;
}

uint64_t &Instrumentation::attachCounter(std::string PathPattern,
                                         std::string EventPattern) {
  Counters.push_back(std::make_unique<uint64_t>(0));
  uint64_t *Counter = Counters.back().get();
  attach(std::move(PathPattern), std::move(EventPattern),
         [Counter](const Event &) { ++*Counter; });
  return *Counter;
}

void Instrumentation::emit(const Event &E) {
  ++NumEmitted;
  for (const Entry &C : Collectors) {
    if (!matches(C.PathPattern, *E.InstancePath))
      continue;
    if (!matches(C.EventPattern, *E.Name))
      continue;
    C.Fn(E);
  }
}
