//===- bench_daemon.cpp - lssd warm-cache load test ---------------------------===//
///
/// Drives an in-process DaemonServer the way a fleet of `lssc --daemon`
/// clients would: N concurrent connections issuing a mixed hot/cold key
/// stream against the daemon's shared warm ArtifactCache.
///
/// The workload is the paper's parametric delay chain at several sizes —
/// elaboration unrolls the chain, so compile cost scales with n and the
/// artifact cache has something real to amortize (Table 3's models compile
/// in ~1ms, where socket round-trip noise would drown the signal).
///
///  1. Baseline: every chain compiled cold in-process (cache off), the way
///     plain `lssc` does.
///  2. Warm-up: one client round through the daemon pays each chain's cold
///     compile once, filling the shared cache.
///  3. Load: N client threads x M requests each. 80% of requests reuse a
///     chain's exact source (hot key -> warm cache hit); 20% append a
///     unique comment (cold key -> full compile), the "edited one file"
///     case a build farm sees.
///
/// Reports client-observed latency for hot requests vs. the cold
/// in-process baseline and writes BENCH_daemon.json. Exits 0 only when
/// every request succeeded and hot daemon requests are >=2x faster than
/// cold in-process compiles.
///
//===----------------------------------------------------------------------===//

#include "driver/CompileClient.h"
#include "driver/CompileService.h"
#include "driver/DaemonServer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace liberty;

namespace {

constexpr unsigned NumClients = 4;
constexpr unsigned RequestsPerClient = 20;
const int ChainSizes[] = {600, 800, 1000, 1200, 1400, 1600};

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// The paper's parametric n-stage delay chain (bench_delaychain's figure
/// workload): elaboration unrolls the loop into n delay instances.
std::string delayChainSpec(int N) {
  return R"(
module delayn {
  parameter n:int;
  inport in: 'a;
  outport out: 'a;
  var delays:instance ref[];
  delays = new instance[n](delay, "delays");
  in -> delays[0].in;
  var i:int;
  for (i = 1; i < n; i = i + 1) {
    delays[i-1].out -> delays[i].in;
  }
  delays[n-1].out -> out;
};
instance gen:counter_source;
instance hole:sink;
instance chain:delayn;
chain.n = )" + std::to_string(N) + R"(;
gen.out -> chain.in;
chain.out -> hole.in;
)";
}

driver::CompilerInvocation chainInvocation(int N) {
  driver::CompilerInvocation Inv;
  Inv.BuildSim = false;
  Inv.addSource("chain" + std::to_string(N) + ".lss", delayChainSpec(N));
  return Inv;
}

double percentile(std::vector<double> V, double P) {
  if (V.empty())
    return 0;
  size_t K = size_t(P * double(V.size() - 1) + 0.5);
  std::nth_element(V.begin(), V.begin() + K, V.end());
  return V[K];
}

} // namespace

int main() {
  std::string Dir = (std::filesystem::temp_directory_path() /
                     ("lss_bench_daemon_" + std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  std::string Sock = Dir + "/lssd.sock";

  std::vector<driver::CompilerInvocation> Invs;
  for (int N : ChainSizes)
    Invs.push_back(chainInvocation(N));

  // Throwaway compile: one-time process costs (behavior registration, the
  // shared parsed core library) stay out of every timing below.
  {
    driver::CompileService Warmup;
    Warmup.compile(Invs[0]);
  }

  std::printf("=== lssd daemon: warm shared cache under load ===\n\n");

  // --- 1. Cold in-process baseline (what plain lssc does). ---------------
  bool AllOk = true;
  std::vector<double> ColdMs(Invs.size());
  double ColdMean = 0;
  {
    driver::CompileService::Options SO;
    SO.CacheEnabled = false;
    std::printf("%8s %14s\n", "chain n", "cold(ms)");
    for (size_t I = 0; I != Invs.size(); ++I) {
      driver::CompileService Cold(SO);
      auto T0 = std::chrono::steady_clock::now();
      AllOk = Cold.compile(Invs[I]).Success && AllOk;
      ColdMs[I] = msSince(T0);
      ColdMean += ColdMs[I];
      std::printf("%8d %14.3f\n", ChainSizes[I], ColdMs[I]);
    }
    ColdMean /= double(Invs.size());
  }

  // --- 2. Start the daemon; warm its cache with one round. ---------------
  driver::DaemonServer::Options DO;
  DO.Address = Sock;
  DO.Service.Cache.DiskDir = Dir + "/cache";
  // Provision one worker per client: hot requests must not serialize
  // behind another client's cold compile (the deployment a shared daemon
  // is sized for).
  DO.Workers = NumClients;
  driver::DaemonServer Server(std::move(DO));
  std::string Err;
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "bench_daemon: cannot start daemon: %s\n",
                 Err.c_str());
    return 1;
  }
  {
    driver::CompileClient Warm(Sock);
    if (!Warm.connect(&Err)) {
      std::fprintf(stderr, "bench_daemon: connect failed: %s\n", Err.c_str());
      return 1;
    }
    for (const driver::CompilerInvocation &Inv : Invs)
      AllOk = Warm.compile(Inv).Success && AllOk;
  }

  // --- 3. Concurrent load, mixed hot/cold keys. --------------------------
  std::vector<double> HotMs, ColdKeyMs;
  std::mutex SampleMutex;
  std::atomic<unsigned> Failures{0};
  auto Client = [&](unsigned Tid) {
    driver::CompileClient C(Sock);
    std::string CErr;
    if (!C.connect(&CErr)) {
      ++Failures;
      return;
    }
    std::vector<double> Hot, ColdK;
    for (unsigned I = 0; I != RequestsPerClient; ++I) {
      size_t Model = (Tid + I) % Invs.size();
      bool ColdKey = I % 5 == 4; // 20%: a fresh key, as after an edit.
      driver::CompilerInvocation Inv = Invs[Model];
      if (ColdKey)
        Inv.Sources.back().Text +=
            "\n// edit t" + std::to_string(Tid) + "_" + std::to_string(I);
      auto T0 = std::chrono::steady_clock::now();
      driver::CompileClient::Result R = C.compile(Inv);
      double Ms = msSince(T0);
      if (!R.Error.empty() || !R.Success)
        ++Failures;
      (ColdKey ? ColdK : Hot).push_back(Ms);
    }
    std::lock_guard<std::mutex> Lock(SampleMutex);
    HotMs.insert(HotMs.end(), Hot.begin(), Hot.end());
    ColdKeyMs.insert(ColdKeyMs.end(), ColdK.begin(), ColdK.end());
  };
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumClients; ++T)
    Threads.emplace_back(Client, T);
  for (std::thread &T : Threads)
    T.join();
  AllOk = AllOk && Failures.load() == 0;

  driver::DaemonStats DS = Server.getStats();
  Server.requestShutdown();
  Server.wait();

  double HotMean = 0;
  for (double Ms : HotMs)
    HotMean += Ms;
  HotMean = HotMs.empty() ? 0 : HotMean / double(HotMs.size());
  double HotP50 = percentile(HotMs, 0.5), HotP95 = percentile(HotMs, 0.95);
  double ColdKeyMean = 0;
  for (double Ms : ColdKeyMs)
    ColdKeyMean += Ms;
  ColdKeyMean = ColdKeyMs.empty() ? 0 : ColdKeyMean / double(ColdKeyMs.size());
  double Speedup = HotMean > 0 ? ColdMean / HotMean : 0;

  std::printf("\n%u clients x %u requests (80%% hot / 20%% cold keys)\n",
              NumClients, RequestsPerClient);
  std::printf("cold in-process mean: %10.3f ms\n", ColdMean);
  std::printf("hot daemon mean:      %10.3f ms (p50 %.3f, p95 %.3f)\n",
              HotMean, HotP50, HotP95);
  std::printf("cold-key daemon mean: %10.3f ms\n", ColdKeyMean);
  std::printf("daemon: %llu compiles, elab cache %llu/%llu hit/miss, "
              "solve cache %llu/%llu hit/miss, %llu queue-full\n",
              (unsigned long long)DS.CompileRequests,
              (unsigned long long)DS.ElabCacheHits,
              (unsigned long long)DS.ElabCacheMisses,
              (unsigned long long)DS.SolveCacheHits,
              (unsigned long long)DS.SolveCacheMisses,
              (unsigned long long)DS.RejectedQueueFull);
  std::printf("\nwarm target: >=2x vs cold in-process; measured %.1fx -> %s\n",
              Speedup, Speedup >= 2.0 ? "ok" : "MISSED");

  // --- BENCH_daemon.json --------------------------------------------------
  driver::Json Cold = driver::Json::object();
  for (size_t I = 0; I != Invs.size(); ++I)
    Cold.set("n" + std::to_string(ChainSizes[I]), ColdMs[I]);
  driver::Json J = driver::Json::object();
  J.set("bench", "daemon")
      .set("clients", uint64_t(NumClients))
      .set("requests_per_client", uint64_t(RequestsPerClient))
      .set("cold_inprocess_ms", std::move(Cold))
      .set("cold_inprocess_mean_ms", ColdMean)
      .set("hot_daemon_mean_ms", HotMean)
      .set("hot_daemon_p50_ms", HotP50)
      .set("hot_daemon_p95_ms", HotP95)
      .set("cold_key_daemon_mean_ms", ColdKeyMean)
      .set("speedup_vs_cold", Speedup)
      .set("daemon_compiles", DS.CompileRequests)
      .set("elab_cache_hits", DS.ElabCacheHits)
      .set("solve_cache_hits", DS.SolveCacheHits)
      .set("queue_full_rejections", DS.RejectedQueueFull)
      .set("failures", uint64_t(Failures.load()))
      .set("ok", AllOk && Speedup >= 2.0);
  {
    std::ofstream Out("BENCH_daemon.json");
    Out << J.dump() << "\n";
  }

  std::filesystem::remove_all(Dir);
  std::printf("\n%s (BENCH_daemon.json written)\n",
              AllOk ? "all checks passed" : "CHECKS FAILED");
  return AllOk && Speedup >= 2.0 ? 0 : 1;
}
