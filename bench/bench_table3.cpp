//===- bench_table3.cpp - Regenerates Table 3 + Section 7's 35% claim ---------===//
///
/// Prints the model roster of Table 3 and reproduces Section 7's
/// specification-size comparison: the LSS source of each model versus the
/// equivalent fully static structural specification (obtained by
/// flattening the elaborated netlist). The paper reports a 35% line-count
/// reduction when the static SimpleScalar model (Model C) was converted to
/// LSS; flattening removes *all* parametric structure, so the measured
/// reduction here is a strict upper bound with the same direction.
///
//===----------------------------------------------------------------------===//

#include "baseline/StaticNet.h"
#include "driver/Compiler.h"
#include "models/Models.h"

#include <cstdio>
#include <iostream>

using namespace liberty;

int main() {
  std::cout << "=== Table 3: Models developed with LSS ===\n\n";
  for (const std::string &Id : models::modelIds())
    std::printf("  %s  %s\n", Id.c_str(), models::modelDescription(Id).c_str());

  std::cout << "\n=== Section 7: specification size, LSS vs static "
               "structural ===\n\n";
  std::printf("%-6s %10s %12s %12s %10s\n", "Model", "LSS LoC",
              "LSS+shared", "Static LoC", "Reduction");

  unsigned Shared = models::sharedSourceLines();
  for (const std::string &Id : models::modelIds()) {
    driver::Compiler C;
    if (!models::loadModel(C, Id) || !C.elaborate() || !C.inferTypes()) {
      std::cerr << "model " << Id << " failed:\n" << C.diagnosticsText();
      return 1;
    }
    std::string Flat = baseline::emitFlatStaticSpec(*C.getNetlist());
    unsigned StaticLines = baseline::countSpecLines(Flat);
    unsigned LssLines = models::modelSourceLines(Id);
    unsigned WithShared = LssLines + Shared;
    double Reduction =
        StaticLines ? 100.0 * (double(StaticLines) - WithShared) /
                          StaticLines
                    : 0.0;
    std::printf("%-6s %10u %12u %12u %9.0f%%\n", Id.c_str(), LssLines,
                WithShared, StaticLines, Reduction);
  }

  std::cout << "\nPaper reference: converting the static-structural "
               "SimpleScalar model to LSS reduced its line count by 35%. "
               "Flattening removes all parametric structure, so the "
               "reductions above bound that figure from above (same "
               "direction, larger magnitude).\n";
  return 0;
}
