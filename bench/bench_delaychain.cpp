//===- bench_delaychain.cpp - Figures 2/8/9: the parametric delay chain -------===//
///
/// The paper's running example: the delayn flexible hierarchical module.
/// Sweeps the chain length n, showing that a one-parameter change
/// re-elaborates arbitrarily large structures (the thing Figure 2's
/// static-structural system cannot express), and cross-checks each
/// generated simulator's output against the hand-coded chain.
///
//===----------------------------------------------------------------------===//

#include "baseline/HandCodedSim.h"
#include "driver/Compiler.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace liberty;

static std::string delayChainSpec(int N) {
  return R"(
module delayn {
  parameter n:int;
  inport in: 'a;
  outport out: 'a;
  var delays:instance ref[];
  delays = new instance[n](delay, "delays");
  in -> delays[0].in;
  var i:int;
  for (i = 1; i < n; i = i + 1) {
    delays[i-1].out -> delays[i].in;
  }
  delays[n-1].out -> out;
};
instance gen:counter_source;
instance hole:sink;
instance chain:delayn;
chain.n = )" + std::to_string(N) + R"(;
gen.out -> chain.in;
chain.out -> hole.in;
)";
}

int main() {
  std::printf("=== Figures 2/8/9: parametric n-stage delay chain ===\n\n");
  std::printf("%8s %10s %12s %12s %14s %8s\n", "n", "instances",
              "elab(ms)", "sim(ms)", "sink value", "check");

  const uint64_t Cycles = 2000;
  bool AllOk = true;
  for (int N : {1, 3, 10, 100, 1000}) {
    auto T0 = std::chrono::steady_clock::now();
    driver::CompilerInvocation Inv;
    Inv.addSource("delaychain.lss", delayChainSpec(N));
    auto C = driver::Compiler::compileForSim(Inv);
    auto T1 = std::chrono::steady_clock::now();
    if (!C) {
      std::printf("%8d compilation FAILED\n", N);
      AllOk = false;
      continue;
    }
    sim::Simulator *Sim = C->getSimulator();
    Sim->step(Cycles);
    auto T2 = std::chrono::steady_clock::now();

    const interp::Value *Out = Sim->peekPort(
        "chain.delays[" + std::to_string(N - 1) + "]", "out", 0);
    int64_t Expected = baseline::runHandCodedDelayChain(N, Cycles);
    bool Ok = Out && Out->isInt() && Out->getInt() == Expected;
    AllOk &= Ok;

    auto Ms = [](auto D) {
      return std::chrono::duration<double, std::milli>(D).count();
    };
    std::printf("%8d %10zu %12.2f %12.2f %14lld %8s\n", N,
                C->getNetlist()->getInstances().size() - 1, Ms(T1 - T0),
                Ms(T2 - T1),
                Out && Out->isInt() ? (long long)Out->getInt() : -1,
                Ok ? "ok" : "MISMATCH");
  }

  std::printf("\nA static structural system would require a hand-drawn "
              "netlist per n; a structural-OOP system builds the chain at "
              "run time but cannot analyze it statically. LSS elaborates "
              "the parametric chain at compile time and still type-infers "
              "and schedules it (paper Sections 3-4).\n");
  return AllOk ? 0 : 1;
}
