//===- bench_table2.cpp - Regenerates Table 2 ---------------------------------===//
///
/// Elaborates models A-F and prints the component-reuse metrics of the
/// paper's Table 2: instance counts, modules, library fraction, explicit
/// type instantiations with and without inference, inferred port widths,
/// and connections — followed by the paper's reference row so the shapes
/// can be compared directly.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/Stats.h"
#include "models/Models.h"

#include <cstdio>
#include <iostream>

using namespace liberty;

int main() {
  std::cout << "=== Table 2: Quantity of Component-based Reuse ===\n\n";
  driver::printTable2Header(std::cout);

  std::vector<driver::ModelStats> All;
  for (const std::string &Id : models::modelIds()) {
    driver::Compiler C;
    if (!models::loadModel(C, Id) || !C.elaborate() || !C.inferTypes()) {
      std::cerr << "model " << Id << " failed to compile:\n"
                << C.diagnosticsText();
      return 1;
    }
    driver::ModelStats S = driver::computeModelStats(
        *C.getNetlist(), C.getLibraryModules(),
        C.getNumUserTypeAnnotations(), Id);
    driver::printTable2Row(std::cout, S);
    All.push_back(S);
  }
  driver::ModelStats Total = driver::totalStats(All);
  driver::printTable2Row(std::cout, Total);

  double Reduction =
      Total.ExplicitTypesWithoutInference
          ? 100.0 *
                (Total.ExplicitTypesWithoutInference -
                 Total.ExplicitTypesWithInference) /
                Total.ExplicitTypesWithoutInference
          : 0.0;
  std::printf("\nType inference removed %.0f%% of explicit type "
              "instantiations (paper: 66%%, 679 -> 226).\n",
              Reduction);
  std::printf("Use-based specialization inferred %u port widths across %u "
              "connections (paper: 3904 widths / 12050 connections).\n",
              Total.InferredPortWidths, Total.Connections);
  std::printf("%.0f%% of the %u instances came from the component library "
              "(paper: 80%% of 1324 from a library of 22).\n",
              Total.pctFromLibrary(), Total.TotalInstances);

  std::cout << "\nPaper reference (Table 2, Total row): 1324 instances, "
               "69 hierarchical (19 non-trivial), 39 modules, 12.26 "
               "inst/module, 80% from library, 679 vs 226 explicit type "
               "instantiations, 3904 inferred widths, 12050 connections.\n";
  return 0;
}
