//===- bench_table1.cpp - Regenerates Table 1 (capability matrix) -------------===//
///
/// Probes each capability of Table 1 programmatically on the three systems
/// implemented in this repository:
///   - static structural (baseline/StaticNet: declarative, fixed netlists),
///   - structural OOP    (baseline/OopSim: run-time composition),
///   - LSS                (the full pipeline).
/// and prints the resulting matrix next to the paper's.
///
//===----------------------------------------------------------------------===//

#include "baseline/OopSim.h"
#include "driver/Compiler.h"
#include "types/Type.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace liberty;

namespace {

bool compiles(const std::string &Src) {
  driver::Compiler C;
  return C.addCoreLibrary() && C.addSource("probe.lss", Src) &&
         C.elaborate() && C.inferTypes();
}

/// LSS structural customization probe: Figure 8's parametric chain.
bool probeLssStructural() {
  return compiles(R"(
    module chainN {
      parameter n:int;
      inport in:'a; outport out:'a;
      var ds:instance ref[];
      ds = new instance[n](delay, "d");
      in -> ds[0].in;
      var i:int;
      for (i = 1; i < n; i = i + 1) { ds[i-1].out -> ds[i].in; }
      ds[n-1].out -> out;
    };
    instance g:counter_source; instance s:sink; instance c:chainN;
    c.n = 7;
    g.out -> c.in; c.out -> s.in;
  )");
}

/// LSS algorithmic customization probe: a userpoint overriding arbitration.
bool probeLssAlgorithmic() {
  return compiles(R"(
    instance g0:counter_source; instance g1:counter_source;
    instance a:arbiter; instance s:sink;
    a.policy = "return 0;";   // fixed-priority instead of round-robin
    g0.out -> a.in; g1.out -> a.in;
    a.out -> s.in;
  )");
}

/// LSS component overloading probe: the overloaded adder resolves to float
/// purely from connectivity.
bool probeLssOverloading(std::string &ResolvedOut) {
  driver::Compiler C;
  bool Ok = C.addCoreLibrary() && C.addSource("probe.lss", R"(
    instance fgen:source;
    instance a:adder; instance s:sink;
    fgen.out -> a.in1;
    fgen.out -> a.in2 : float;   // one annotation selects the family member
    a.out -> s.in;
  )") && C.elaborate() && C.inferTypes();
  if (!Ok)
    return false;
  const netlist::Port *P = C.getNetlist()->findByPath("a")->findPort("out");
  if (!P || !P->Resolved)
    return false;
  ResolvedOut = P->Resolved->str();
  return P->Resolved->getKind() == types::Type::Kind::Float;
}

/// Structural-OOP probes: run-time composition works (Figure 3) but the
/// element type and extent are explicit and nothing is statically known.
bool probeOopComposition() {
  using namespace baseline::oop;
  Engine E;
  Signal<int64_t> In, Out;
  E.track(&In);
  E.track(&Out);
  E.add(std::make_unique<CounterSource>(&In, E));
  E.add(std::make_unique<DelayN<int64_t>>(E, &In, &Out, /*N=*/5,
                                          /*Initial=*/0));
  auto *S = static_cast<Sink<int64_t> *>(
      E.add(std::make_unique<Sink<int64_t>>(&Out)));
  E.reset();
  E.step(20);
  return S->getReceived() == 20;
}

void row(const char *Capability, const char *Static, const char *Oop,
         const char *Lss, const char *Evidence) {
  std::printf("%-28s %-18s %-18s %-6s %s\n", Capability, Static, Oop, Lss,
              Evidence);
}

} // namespace

int main() {
  bool Structural = probeLssStructural();
  bool Algorithmic = probeLssAlgorithmic();
  std::string Resolved;
  bool Overloading = probeLssOverloading(Resolved);
  bool OopOk = probeOopComposition();

  std::cout << "=== Table 1: Capabilities of existing methods and systems "
               "===\n\n";
  std::printf("%-28s %-18s %-18s %-6s %s\n", "Capability", "Static",
              "Structural-OOP", "LSS", "Probe result");
  std::printf("%-28s %-18s %-18s %-6s %s\n", "", "(theory/practice)",
              "(theory/practice)", "", "");
  row("Parameters", "yes/yes", "yes/yes", "yes",
      "delay.initial_state set per instance");
  row("  Structural", "no/no", "yes/yes", Structural ? "yes" : "FAIL",
      Structural ? "chainN{n=7} elaborated to 7 delays"
                 : "probe failed");
  row("  Algorithmic", "yes/yes", "yes/yes", Algorithmic ? "yes" : "FAIL",
      Algorithmic ? "arbiter policy userpoint overridden"
                  : "probe failed");
  row("Polymorphism", "", "", "", "");
  row("  Parametric", "yes/yes", "yes/no", "yes",
      "'a on delayn resolved by inference (no user annotation)");
  std::string OverloadEvidence =
      Overloading ? "adder family member selected by connectivity: " + Resolved
                  : "probe failed";
  row("  Overloading", "no/no", "no/no", Overloading ? "yes" : "FAIL",
      OverloadEvidence.c_str());
  row("Static Analysis", "yes/yes", "no/no", "yes",
      "type inference + static concurrency schedule run on the netlist");
  row("Instrumentation", "yes/yes", "no/no", "yes",
      "AOP collectors attach on port-fire join points (see tests)");

  std::printf("\nStructural-OOP baseline (Figure 3) check: run-time "
              "composition %s — but the element type (template arg) and "
              "chain length were explicit, and no static analysis of the "
              "composed structure is possible.\n",
              OopOk ? "works" : "FAILED");

  std::cout << "\nPaper reference (Table 1): static systems lack structural "
               "parameterization; structural-OOP systems lack parametric-"
               "polymorphism-in-practice, overloading, static analysis and "
               "instrumentation; LSS provides all rows.\n";
  return (Structural && Algorithmic && Overloading && OopOk) ? 0 : 1;
}
