//===- bench_inference.cpp - Section 5's inference-cost experiment ------------===//
///
/// Reproduces the paper's central performance claim about type inference:
/// with the three heuristics "type inference completes in several seconds
/// for all cases we have observed"; without them "type inference times
/// exceeded 12 hours for most models".
///
/// Output has two parts:
///  1. A work-count table: unification steps and branch points for the
///     naive solver vs each heuristic combination, on synthetic families
///     and on the real constraint systems of models A-F. The naive solver
///     is capped; rows that hit the cap are the ">12 hours" analogue.
///  2. google-benchmark timings of the full heuristic solver (the
///     "several seconds" side), which on these systems is milliseconds.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "infer/Synthetic.h"
#include "models/Models.h"

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <functional>

using namespace liberty;
using infer::Constraint;
using infer::SolveOptions;
using infer::SolveStats;

namespace {

constexpr uint64_t NaiveCap = 20000000; // Unify-step cap for hopeless runs.

SolveOptions optsFor(bool H1, bool H2, bool H3, uint64_t Cap) {
  SolveOptions O;
  O.ReorderSimpleFirst = H1;
  O.ForcedDisjunctElimination = H2;
  O.Partition = H3;
  O.MaxSteps = Cap;
  return O;
}

void runRow(const char *Name,
            const std::function<std::vector<Constraint>(types::TypeContext &)>
                &Make) {
  struct Config {
    const char *Label;
    bool H1, H2, H3;
  };
  const Config Configs[] = {
      {"naive", false, false, false},
      {"H1", true, false, false},
      {"H1+H2", true, true, false},
      {"H1+H2+H3", true, true, true},
  };
  std::printf("%-24s", Name);
  for (const Config &C : Configs) {
    types::TypeContext TC;
    std::vector<Constraint> Cs = Make(TC);
    infer::InferenceEngine E(TC);
    SolveStats S = E.solve(Cs, optsFor(C.H1, C.H2, C.H3, NaiveCap));
    if (S.HitLimit)
      std::printf(" %14s", ">cap");
    else
      std::printf(" %11" PRIu64 "/%-3" PRIu64,
                  S.UnifySteps, S.BranchPoints);
  }
  std::printf("\n");
}

std::vector<Constraint> modelConstraints(const std::string &Id,
                                         driver::Compiler &C) {
  if (!models::loadModel(C, Id) || !C.elaborate())
    return {};
  return infer::buildNetlistConstraints(*C.getNetlist(),
                                        C.getTypeContext());
}

void printComparisonTable() {
  std::printf("=== Inference work: unify-steps/branch-points per heuristic "
              "set (cap=%" PRIu64 ") ===\n\n",
              NaiveCap);
  std::printf("%-24s %15s %15s %15s %15s\n", "workload", "naive", "H1",
              "H1+H2", "H1+H2+H3");

  for (unsigned K : {4u, 6u, 8u, 10u, 12u}) {
    std::string Name = "adversarial-pairs k=" + std::to_string(K);
    runRow(Name.c_str(), [K](types::TypeContext &TC) {
      return infer::makeAdversarialPairs(TC, K);
    });
  }
  for (unsigned K : {8u, 12u, 16u, 20u}) {
    std::string Name = "intersection k=" + std::to_string(K);
    runRow(Name.c_str(), [K](types::TypeContext &TC) {
      return infer::makeIntersectionFamily(TC, K);
    });
  }
  for (unsigned N : {64u, 256u, 1024u}) {
    std::string Name = "forced-chain n=" + std::to_string(N);
    runRow(Name.c_str(), [N](types::TypeContext &TC) {
      return infer::makeForcedChain(TC, N);
    });
  }

  std::printf("\n%-24s %15s %15s %15s %15s\n", "model", "naive", "H1",
              "H1+H2", "H1+H2+H3");
  for (const std::string &Id : models::modelIds()) {
    struct Config {
      bool H1, H2, H3;
    };
    const Config Configs[] = {{false, false, false},
                              {true, false, false},
                              {true, true, false},
                              {true, true, true}};
    std::printf("%-24s", ("model " + Id).c_str());
    for (const Config &Cfg : Configs) {
      driver::Compiler C;
      std::vector<Constraint> Cs = modelConstraints(Id, C);
      infer::InferenceEngine E(C.getTypeContext());
      SolveStats S = E.solve(Cs, optsFor(Cfg.H1, Cfg.H2, Cfg.H3, NaiveCap));
      if (S.HitLimit)
        std::printf(" %14s", ">cap");
      else
        std::printf(" %11" PRIu64 "/%-3" PRIu64, S.UnifySteps,
                    S.BranchPoints);
    }
    std::printf("\n");
  }
  std::printf("\nPaper reference: heuristic inference finishes in seconds; "
              "disabling the heuristics pushed most models past 12 hours. "
              "Rows showing '>cap' under 'naive' are that regime.\n\n");
}

//===--------------------------------------------------------------------===//
// google-benchmark: the fast (heuristic) side
//===--------------------------------------------------------------------===//

void BM_HeuristicModelInference(benchmark::State &State,
                                const std::string &Id) {
  // Elaborate once; re-solve each iteration on a fresh engine.
  driver::Compiler C;
  if (!models::loadModel(C, Id) || !C.elaborate()) {
    State.SkipWithError("model failed to elaborate");
    return;
  }
  std::vector<Constraint> Cs =
      infer::buildNetlistConstraints(*C.getNetlist(), C.getTypeContext());
  for (auto _ : State) {
    infer::InferenceEngine E(C.getTypeContext());
    SolveStats S = E.solve(Cs, SolveOptions());
    if (!S.Success)
      State.SkipWithError("unexpected inference failure");
    benchmark::DoNotOptimize(S.UnifySteps);
  }
  State.counters["constraints"] = Cs.size();
}

void BM_HeuristicForcedChain(benchmark::State &State) {
  unsigned N = State.range(0);
  for (auto _ : State) {
    types::TypeContext TC;
    std::vector<Constraint> Cs = infer::makeForcedChain(TC, N);
    infer::InferenceEngine E(TC);
    SolveStats S = E.solve(Cs, SolveOptions());
    benchmark::DoNotOptimize(S.Success);
  }
}
BENCHMARK(BM_HeuristicForcedChain)->Arg(64)->Arg(256)->Arg(1024);

} // namespace

int main(int argc, char **argv) {
  printComparisonTable();
  for (const std::string &Id : models::modelIds())
    benchmark::RegisterBenchmark(("BM_HeuristicModelInference/" + Id).c_str(),
                                 [Id](benchmark::State &S) {
                                   BM_HeuristicModelInference(S, Id);
                                 });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
