//===- bench_inference.cpp - Section 5's inference-cost experiment ------------===//
///
/// Reproduces the paper's central performance claim about type inference:
/// with the three heuristics "type inference completes in several seconds
/// for all cases we have observed"; without them "type inference times
/// exceeded 12 hours for most models".
///
/// Output has two parts:
///  1. A work-count table: unification steps and branch points for the
///     naive solver vs each heuristic combination, on synthetic families
///     and on the real constraint systems of models A-F. The naive solver
///     is capped; rows that hit the cap are the ">12 hours" analogue.
///  2. google-benchmark timings of the full heuristic solver (the
///     "several seconds" side), which on these systems is milliseconds.
///
/// With --sweep-threads it instead sweeps the H3 group search across
/// thread counts on multi-group systems (the disjoint-hard-groups family
/// and the real models), printing the wall time and speedup per thread
/// count and cross-checking that every configuration does identical work.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "infer/Synthetic.h"
#include "models/Models.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

using namespace liberty;
using infer::Constraint;
using infer::SolveOptions;
using infer::SolveStats;

namespace {

constexpr uint64_t NaiveCap = 20000000; // Unify-step cap for hopeless runs.

SolveOptions optsFor(bool H1, bool H2, bool H3, uint64_t Cap) {
  SolveOptions O;
  O.ReorderSimpleFirst = H1;
  O.ForcedDisjunctElimination = H2;
  O.Partition = H3;
  O.MaxSteps = Cap;
  return O;
}

void runRow(const char *Name,
            const std::function<std::vector<Constraint>(types::TypeContext &)>
                &Make) {
  struct Config {
    const char *Label;
    bool H1, H2, H3;
  };
  const Config Configs[] = {
      {"naive", false, false, false},
      {"H1", true, false, false},
      {"H1+H2", true, true, false},
      {"H1+H2+H3", true, true, true},
  };
  std::printf("%-24s", Name);
  for (const Config &C : Configs) {
    types::TypeContext TC;
    std::vector<Constraint> Cs = Make(TC);
    infer::InferenceEngine E(TC);
    SolveStats S = E.solve(Cs, optsFor(C.H1, C.H2, C.H3, NaiveCap));
    if (S.HitLimit)
      std::printf(" %14s", ">cap");
    else
      std::printf(" %11" PRIu64 "/%-3" PRIu64,
                  S.UnifySteps, S.BranchPoints);
  }
  std::printf("\n");
}

std::vector<Constraint> modelConstraints(const std::string &Id,
                                         driver::Compiler &C) {
  if (!models::loadModel(C, Id) || !C.elaborate())
    return {};
  return infer::buildNetlistConstraints(*C.getNetlist(),
                                        C.getTypeContext());
}

void printComparisonTable() {
  std::printf("=== Inference work: unify-steps/branch-points per heuristic "
              "set (cap=%" PRIu64 ") ===\n\n",
              NaiveCap);
  std::printf("%-24s %15s %15s %15s %15s\n", "workload", "naive", "H1",
              "H1+H2", "H1+H2+H3");

  for (unsigned K : {4u, 6u, 8u, 10u, 12u}) {
    std::string Name = "adversarial-pairs k=" + std::to_string(K);
    runRow(Name.c_str(), [K](types::TypeContext &TC) {
      return infer::makeAdversarialPairs(TC, K);
    });
  }
  for (unsigned K : {8u, 12u, 16u, 20u}) {
    std::string Name = "intersection k=" + std::to_string(K);
    runRow(Name.c_str(), [K](types::TypeContext &TC) {
      return infer::makeIntersectionFamily(TC, K);
    });
  }
  for (unsigned N : {64u, 256u, 1024u}) {
    std::string Name = "forced-chain n=" + std::to_string(N);
    runRow(Name.c_str(), [N](types::TypeContext &TC) {
      return infer::makeForcedChain(TC, N);
    });
  }

  std::printf("\n%-24s %15s %15s %15s %15s\n", "model", "naive", "H1",
              "H1+H2", "H1+H2+H3");
  for (const std::string &Id : models::modelIds()) {
    struct Config {
      bool H1, H2, H3;
    };
    const Config Configs[] = {{false, false, false},
                              {true, false, false},
                              {true, true, false},
                              {true, true, true}};
    std::printf("%-24s", ("model " + Id).c_str());
    for (const Config &Cfg : Configs) {
      driver::Compiler C;
      std::vector<Constraint> Cs = modelConstraints(Id, C);
      infer::InferenceEngine E(C.getTypeContext());
      SolveStats S = E.solve(Cs, optsFor(Cfg.H1, Cfg.H2, Cfg.H3, NaiveCap));
      if (S.HitLimit)
        std::printf(" %14s", ">cap");
      else
        std::printf(" %11" PRIu64 "/%-3" PRIu64, S.UnifySteps,
                    S.BranchPoints);
    }
    std::printf("\n");
  }
  std::printf("\nPaper reference: heuristic inference finishes in seconds; "
              "disabling the heuristics pushed most models past 12 hours. "
              "Rows showing '>cap' under 'naive' are that regime.\n\n");
}

//===--------------------------------------------------------------------===//
// --sweep-threads: the parallel H3 group search across thread counts
//===--------------------------------------------------------------------===//

/// Solves \p Make's constraint system once per thread count and reports
/// wall time + speedup over the serial (--j1) solve. The solver merges
/// group results deterministically, so unify steps, branch points, and
/// group counts must match bit-for-bit across the sweep — checked here.
void sweepRow(const char *Name,
              const std::function<std::vector<Constraint>(
                  types::TypeContext &)> &Make,
              const std::vector<unsigned> &ThreadCounts) {
  struct Sample {
    unsigned Threads;
    double WallMs;
    SolveStats Stats;
  };
  std::vector<Sample> Samples;
  for (unsigned T : ThreadCounts) {
    types::TypeContext TC;
    std::vector<Constraint> Cs = Make(TC);
    infer::InferenceEngine E(TC);
    SolveOptions O;
    O.NumThreads = T;
    auto Start = std::chrono::steady_clock::now();
    SolveStats S = E.solve(Cs, O);
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    if (!S.Success) {
      std::printf("%-26s UNEXPECTED FAILURE: %s\n", Name,
                  S.FailMessage.c_str());
      return;
    }
    Samples.push_back(Sample{T, Ms, std::move(S)});
  }

  bool Identical = true;
  for (const Sample &S : Samples)
    Identical &= S.Stats.UnifySteps == Samples.front().Stats.UnifySteps &&
                 S.Stats.BranchPoints == Samples.front().Stats.BranchPoints &&
                 S.Stats.NumComponents == Samples.front().Stats.NumComponents;

  std::printf("%-26s %6u groups %12" PRIu64 " steps |", Name,
              Samples.front().Stats.NumComponents,
              Samples.front().Stats.UnifySteps);
  for (const Sample &S : Samples)
    std::printf("  j%-2u %8.2fms (%4.2fx)", S.Threads, S.WallMs,
                S.WallMs > 0 ? Samples.front().WallMs / S.WallMs : 0.0);
  std::printf("  work %s\n", Identical ? "identical" : "DIVERGED");
}

void runThreadSweep() {
  const std::vector<unsigned> ThreadCounts = {1, 2, 4, 8};
  std::printf("=== Parallel H3 group search: thread sweep (hardware "
              "threads: %u) ===\n\n",
              liberty::ThreadPool::getHardwareParallelism());
  std::printf("Speedups are wall-time of j1 over jN; 'work identical' "
              "asserts bit-equal unify-step/branch/group counts.\n\n");

  const std::pair<unsigned, unsigned> HardConfigs[] = {
      {4, 14}, {8, 14}, {16, 12}, {8, 16}};
  for (auto [G, K] : HardConfigs) {
    std::string Name = "hard-groups g=" + std::to_string(G) +
                       " k=" + std::to_string(K);
    sweepRow(Name.c_str(), [G = G, K = K](types::TypeContext &TC) {
      return infer::makeDisjointHardGroups(TC, G, K);
    }, ThreadCounts);
  }
  for (unsigned K : {64u, 256u}) {
    std::string Name = "intersection k=" + std::to_string(K);
    sweepRow(Name.c_str(), [K](types::TypeContext &TC) {
      // H2 off leaves all K two-constraint groups for the partitioned
      // search: many tiny groups, the dispatch-overhead-bound regime.
      return infer::makeIntersectionFamily(TC, K);
    }, ThreadCounts);
  }

  std::printf("\n(real models: residual groups are few and small after "
              "H2, so these stay serial-dominated)\n");
  for (const std::string &Id : models::modelIds()) {
    std::string Name = "model " + Id;
    std::printf("%-26s", Name.c_str());
    double BaselineMs = 0;
    for (unsigned T : ThreadCounts) {
      driver::Compiler C;
      std::vector<Constraint> Cs = modelConstraints(Id, C);
      infer::InferenceEngine E(C.getTypeContext());
      SolveOptions O;
      O.NumThreads = T;
      auto Start = std::chrono::steady_clock::now();
      SolveStats S = E.solve(Cs, O);
      double Ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
      if (T == 1)
        BaselineMs = Ms;
      std::printf("  j%-2u %8.2fms (%4.2fx, %u grp)", T, Ms,
                  Ms > 0 ? BaselineMs / Ms : 0.0, S.NumComponents);
      (void)S;
    }
    std::printf("\n");
  }
  std::printf("\n");
}

//===--------------------------------------------------------------------===//
// google-benchmark: the fast (heuristic) side
//===--------------------------------------------------------------------===//

void BM_HeuristicModelInference(benchmark::State &State,
                                const std::string &Id) {
  // Elaborate once; re-solve each iteration on a fresh engine.
  driver::Compiler C;
  if (!models::loadModel(C, Id) || !C.elaborate()) {
    State.SkipWithError("model failed to elaborate");
    return;
  }
  std::vector<Constraint> Cs =
      infer::buildNetlistConstraints(*C.getNetlist(), C.getTypeContext());
  for (auto _ : State) {
    infer::InferenceEngine E(C.getTypeContext());
    SolveStats S = E.solve(Cs, SolveOptions());
    if (!S.Success)
      State.SkipWithError("unexpected inference failure");
    benchmark::DoNotOptimize(S.UnifySteps);
  }
  State.counters["constraints"] = Cs.size();
}

void BM_HeuristicForcedChain(benchmark::State &State) {
  unsigned N = State.range(0);
  for (auto _ : State) {
    types::TypeContext TC;
    std::vector<Constraint> Cs = infer::makeForcedChain(TC, N);
    infer::InferenceEngine E(TC);
    SolveStats S = E.solve(Cs, SolveOptions());
    benchmark::DoNotOptimize(S.Success);
  }
}
BENCHMARK(BM_HeuristicForcedChain)->Arg(64)->Arg(256)->Arg(1024);

} // namespace

int main(int argc, char **argv) {
  // --sweep-threads: run the parallel-solver sweep instead of the
  // heuristic-ablation table (strip the flag before benchmark::Initialize).
  bool SweepThreads = false;
  int W = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--sweep-threads") == 0)
      SweepThreads = true;
    else
      argv[W++] = argv[I];
  }
  argc = W;
  if (SweepThreads) {
    runThreadSweep();
    return 0;
  }

  printComparisonTable();
  for (const std::string &Id : models::modelIds())
    benchmark::RegisterBenchmark(("BM_HeuristicModelInference/" + Id).c_str(),
                                 [Id](benchmark::State &S) {
                                   BM_HeuristicModelInference(S, Id);
                                 });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
