//===- bench_incremental.cpp - Single-leaf edit recompile A/B/C ---------------===//
///
/// Measures what dependency-tracked incremental recompilation
/// (docs/INCREMENTAL.md) buys on the workload it is designed for: a large
/// model split one-module-per-file, where an edit touches one leaf module
/// out of hundreds. A ~10k-instance synthetic — N independent lanes, each
/// its own module in its own source, each leaving its own disjunctive H3
/// group — is compiled three ways after a single-leaf edit:
///
///   cold        — empty cache, the full pipeline from nothing;
///   full warm   — warm cache, plain compile() of the edited sources (the
///                 edit invalidates the elab/solve keys, so the whole
///                 pipeline re-runs; this is the pre-incremental best
///                 case and the baseline the speedup gate is against);
///   incremental — warm cache, compileIncremental(): re-elaborate the
///                 dirty lane, splice the rest, re-solve one group.
///
/// Acceptance gates (skipped with --smoke): the incremental compile must
/// re-solve <= 10% of the H3 groups, beat the full-warm recompile by
/// >= 3x, and store artifacts byte-identical to a never-warmed cold
/// compile of the edited project. Results go to BENCH_incremental.json
/// (override with --out FILE); --smoke shrinks the model and, like
/// bench_ir --smoke, only checks that the run works and the JSON schema
/// holds.
///
//===----------------------------------------------------------------------===//

#include "driver/CompileService.h"
#include "driver/Compiler.h"
#include "driver/CompilerInvocation.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace liberty;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// One lane: a chain of adders feeding a sink, all corelib leaves, plus an
/// overload puzzle in constrain statements. Each lane shares no type
/// variables with any other, so every lane leaves its own H3 constraint
/// groups. The puzzle is what makes a lane's group worth splicing: Depth
/// free (float|int) variables — float first, the deliberately wrong guess,
/// exactly like corelib's source — coupled only by a trailing struct
/// disjunct that every variable must satisfy as int. H1 can't pre-solve it
/// (every constraint is disjunctive) and H2 can't prune it (each
/// alternative is viable in isolation), so the solver's chronological
/// search walks ~2^Depth assignments before landing on all-int: the
/// realistic per-group inference cost an edit to any OTHER lane never pays
/// again under incremental recompilation. \p Edited perturbs the lane body
/// without changing its meaning — the single-leaf edit under measurement.
std::string laneSpec(unsigned K, unsigned Stages, unsigned Depth,
                     bool Edited) {
  std::ostringstream OS;
  OS << "module lane" << K << " {\n";
  for (unsigned I = 0; I != Stages; ++I)
    OS << "  instance a" << I << ":adder;\n";
  OS << "  instance k:sink;\n";
  for (unsigned I = 1; I != Stages; ++I)
    OS << "  a" << I - 1 << ".out -> a" << I << ".in1;\n";
  OS << "  a" << Stages - 1 << ".out -> k.in;\n";
  for (unsigned J = 0; J != Depth; ++J)
    OS << "  constrain 'u" << J << " : (float | int);\n";
  OS << "  constrain 'w : struct{";
  for (unsigned J = 0; J != Depth; ++J)
    OS << "f" << J << ":'u" << J << "; ";
  OS << "g:'gv};\n";
  // Two alternatives that differ only in the free field g, so the disjunct
  // survives type canonicalization and H1 never touches it.
  OS << "  constrain 'w : (";
  for (int Alt = 0; Alt != 2; ++Alt) {
    if (Alt)
      OS << " | ";
    OS << "struct{";
    for (unsigned J = 0; J != Depth; ++J)
      OS << "f" << J << ":int; ";
    OS << "g:" << (Alt ? "float" : "int") << "}";
  }
  OS << ");\n";
  if (Edited)
    OS << "  // edited: one leaf body changed\n";
  OS << "}\n";
  return OS.str();
}

/// The project: one source per lane module plus a top that instantiates
/// every lane — the one-module-per-file layout incremental recompilation
/// is designed around.
driver::CompilerInvocation projectInvocation(unsigned Lanes, unsigned Stages,
                                             unsigned Depth,
                                             bool EditLane0) {
  driver::CompilerInvocation Inv;
  std::ostringstream Top;
  for (unsigned K = 0; K != Lanes; ++K)
    Top << "instance m" << K << ":lane" << K << ";\n";
  Inv.addSource("top.lss", Top.str());
  for (unsigned K = 0; K != Lanes; ++K)
    Inv.addSource("lane" + std::to_string(K) + ".lss",
                  laneSpec(K, Stages, Depth, EditLane0 && K == 0));
  Inv.BuildSim = false;
  return Inv;
}

struct ScratchDir {
  std::string Path;
  explicit ScratchDir(const char *Tag) {
    Path = (std::filesystem::temp_directory_path() /
            (std::string("lss_bench_inc_") + Tag + "_" +
             std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(Path);
  }
  ~ScratchDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
};

driver::CompileService::Options diskOpts(const ScratchDir &Dir) {
  driver::CompileService::Options O;
  O.Cache.DiskDir = Dir.Path;
  return O;
}

bool artifactsFor(driver::CompileService &Svc,
                  const driver::CompilerInvocation &Inv, std::string &Elab,
                  std::string &Solve) {
  return Svc.getCache().get(
             driver::CompilerInvocation::keyString(Inv.elabKey()), "elab",
             Elab) &&
         Svc.getCache().get(
             driver::CompilerInvocation::keyString(Inv.solveKey()), "solve",
             Solve);
}

struct Results {
  unsigned Lanes = 0, Stages = 0, Instances = 0;
  double ColdMs = 0, FullWarmMs = 0, IncrementalMs = 0;
  unsigned ModulesTotal = 0, ModulesReelaborated = 0;
  unsigned InstancesTotal = 0, InstancesSpliced = 0;
  unsigned GroupsTotal = 0, GroupsResolved = 0, GroupsSpliced = 0;
  bool Used = false, ByteIdentical = false, Ok = false;

  double speedup() const {
    return IncrementalMs > 0 ? FullWarmMs / IncrementalMs : 0.0;
  }
  double pctGroupsResolved() const {
    return GroupsTotal ? 100.0 * GroupsResolved / GroupsTotal : 0.0;
  }
};

void writeJson(const std::string &Path, const Results &R, bool Smoke) {
  std::ostringstream OS;
  char Buf[1536];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\n"
      "  \"bench\": \"incremental\",\n"
      "  \"smoke\": %s,\n"
      "  \"lanes\": %u,\n"
      "  \"stages\": %u,\n"
      "  \"instances\": %u,\n"
      "  \"cold_ms\": %.3f,\n"
      "  \"full_warm_ms\": %.3f,\n"
      "  \"incremental_ms\": %.3f,\n"
      "  \"speedup_vs_full_warm\": %.2f,\n"
      "  \"modules_total\": %u,\n"
      "  \"modules_reelaborated\": %u,\n"
      "  \"instances_total\": %u,\n"
      "  \"instances_spliced\": %u,\n"
      "  \"groups_total\": %u,\n"
      "  \"groups_resolved\": %u,\n"
      "  \"groups_spliced\": %u,\n"
      "  \"pct_groups_resolved\": %.2f,\n"
      "  \"byte_identical\": %s,\n"
      "  \"ok\": %s\n"
      "}\n",
      Smoke ? "true" : "false", R.Lanes, R.Stages, R.Instances, R.ColdMs,
      R.FullWarmMs, R.IncrementalMs, R.speedup(), R.ModulesTotal,
      R.ModulesReelaborated, R.InstancesTotal, R.InstancesSpliced,
      R.GroupsTotal, R.GroupsResolved, R.GroupsSpliced,
      R.pctGroupsResolved(), R.ByteIdentical ? "true" : "false",
      R.Ok ? "true" : "false");
  OS << Buf;
  std::ofstream Out(Path);
  Out << OS.str();
}

/// Re-reads the emitted file and checks every schema key is present — the
/// bench_incremental_smoke ctest gate, so a field rename can't silently
/// produce an unparseable BENCH_incremental.json.
bool validateJson(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  const std::string Text = SS.str();
  static const char *Keys[] = {
      "\"bench\"",
      "\"smoke\"",
      "\"lanes\"",
      "\"stages\"",
      "\"instances\"",
      "\"cold_ms\"",
      "\"full_warm_ms\"",
      "\"incremental_ms\"",
      "\"speedup_vs_full_warm\"",
      "\"modules_total\"",
      "\"modules_reelaborated\"",
      "\"instances_total\"",
      "\"instances_spliced\"",
      "\"groups_total\"",
      "\"groups_resolved\"",
      "\"groups_spliced\"",
      "\"pct_groups_resolved\"",
      "\"byte_identical\"",
      "\"ok\"",
  };
  for (const char *K : Keys)
    if (Text.find(K) == std::string::npos) {
      std::fprintf(stderr, "bench_incremental: %s is missing %s\n",
                   Path.c_str(), K);
      return false;
    }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_incremental.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  Results R;
  // 100 lanes x (98 adders + sink) + 100 lane instances = 10000 instances;
  // the smoke point keeps the same shape two orders smaller. Depth sets the
  // per-lane overload-search cost (~2^Depth branches, ~10ms at 15): big
  // enough that inference dominates the full-size compile, trivial in
  // smoke.
  R.Lanes = Smoke ? 10 : 100;
  R.Stages = Smoke ? 4 : 98;
  const unsigned Depth = Smoke ? 4 : 15;
  R.Instances = R.Lanes * (R.Stages + 2);

  driver::CompilerInvocation Base =
      projectInvocation(R.Lanes, R.Stages, Depth, /*EditLane0=*/false);
  driver::CompilerInvocation Edited =
      projectInvocation(R.Lanes, R.Stages, Depth, /*EditLane0=*/true);

  std::printf("=== Incremental recompilation: single-leaf edit on %u "
              "instances (%u lanes) ===\n\n",
              R.Instances, R.Lanes);

  // Pay one-time process costs (behavior registration, the shared parsed
  // core library) outside the timings.
  {
    driver::CompileService Warmup;
    driver::CompilerInvocation Tiny = projectInvocation(1, 2, 2, false);
    if (!Warmup.compile(Tiny).Success) {
      std::fprintf(stderr, "bench_incremental: warmup compile failed\n");
      return 1;
    }
  }

  bool AllOk = true;

  // Cold, and the warm base the incremental compile will diff against.
  ScratchDir IncDir("inc");
  driver::CompileService IncSvc(diskOpts(IncDir));
  {
    auto T0 = std::chrono::steady_clock::now();
    AllOk = IncSvc.compile(Base).Success && AllOk;
    R.ColdMs = msSince(T0);
  }

  // Full warm: a second cache primed with the same base compile, then a
  // plain compile() of the edit — the edit misses every key, so this is
  // the full pipeline with a warm-but-useless cache.
  {
    ScratchDir FullDir("full");
    driver::CompileService FullSvc(diskOpts(FullDir));
    AllOk = FullSvc.compile(Base).Success && AllOk;
    auto T0 = std::chrono::steady_clock::now();
    AllOk = FullSvc.compile(Edited).Success && AllOk;
    R.FullWarmMs = msSince(T0);
  }

  // Incremental: diff against IncDir's dependency graph and splice.
  std::string IncNetlist, IncDiags;
  {
    auto T0 = std::chrono::steady_clock::now();
    driver::CompileResult CR = IncSvc.compileIncremental(Edited);
    R.IncrementalMs = msSince(T0);
    AllOk = CR.Success && AllOk;
    R.Used = CR.Incremental.Used;
    if (!CR.Incremental.Used)
      std::fprintf(stderr, "bench_incremental: fell back to a full compile "
                           "(%s)\n",
                   CR.Incremental.FallbackReason.c_str());
    R.ModulesTotal = CR.Incremental.ModulesTotal;
    R.ModulesReelaborated = CR.Incremental.ModulesReelaborated;
    R.InstancesTotal = CR.Incremental.InstancesTotal;
    R.InstancesSpliced = CR.Incremental.InstancesSpliced;
    R.GroupsTotal = CR.Incremental.GroupsTotal;
    R.GroupsResolved = CR.Incremental.GroupsResolved;
    R.GroupsSpliced = CR.Incremental.GroupsSpliced;
    if (CR.Success) {
      std::ostringstream OS;
      CR.C->getNetlist()->print(OS);
      IncNetlist = OS.str();
      IncDiags = CR.C->diagnosticsText();
    }
  }

  // Byte-identity: an independent never-warmed cold compile of the edited
  // project must store exactly the artifacts the incremental compile did.
  {
    ScratchDir ColdDir("coldctl");
    driver::CompileService ColdSvc(diskOpts(ColdDir));
    driver::CompileResult CC = ColdSvc.compile(Edited);
    AllOk = CC.Success && AllOk;
    std::string IncElab, IncSolve, ColdElab, ColdSolve;
    if (CC.Success && artifactsFor(IncSvc, Edited, IncElab, IncSolve) &&
        artifactsFor(ColdSvc, Edited, ColdElab, ColdSolve)) {
      std::ostringstream OS;
      CC.C->getNetlist()->print(OS);
      R.ByteIdentical = IncElab == ColdElab && IncSolve == ColdSolve &&
                        IncNetlist == OS.str() &&
                        IncDiags == CC.C->diagnosticsText();
    }
  }

  std::printf("%-12s %12s\n", "compile", "wall(ms)");
  std::printf("%-12s %12.3f\n", "cold", R.ColdMs);
  std::printf("%-12s %12.3f\n", "full-warm", R.FullWarmMs);
  std::printf("%-12s %12.3f   (%.1fx vs full-warm)\n", "incremental",
              R.IncrementalMs, R.speedup());
  std::printf("\nre-elaborated %u/%u modules, spliced %u/%u instances\n",
              R.ModulesReelaborated, R.ModulesTotal, R.InstancesSpliced,
              R.InstancesTotal);
  std::printf("re-solved %u/%u groups (%.1f%%), spliced %u\n",
              R.GroupsResolved, R.GroupsTotal, R.pctGroupsResolved(),
              R.GroupsSpliced);
  std::printf("artifacts byte-identical to cold: %s\n",
              R.ByteIdentical ? "yes" : "NO");

  R.Ok = AllOk && R.Used && R.ByteIdentical;
  if (!Smoke) {
    // The acceptance gates of docs/INCREMENTAL.md.
    bool GroupGate = R.GroupsTotal > 0 && R.pctGroupsResolved() <= 10.0;
    bool SpeedGate = R.speedup() >= 3.0;
    std::printf("\ngates: <=10%% groups re-solved -> %s; >=3x vs full-warm "
                "-> %s\n",
                GroupGate ? "ok" : "MISSED", SpeedGate ? "ok" : "MISSED");
    R.Ok = R.Ok && GroupGate && SpeedGate;
  }

  writeJson(OutPath, R, Smoke);
  if (!validateJson(OutPath))
    return 1;
  std::printf("\nwrote %s\n", OutPath.c_str());
  return R.Ok ? 0 : 1;
}
