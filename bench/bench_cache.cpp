//===- bench_cache.cpp - Artifact-cache cold/warm A/B -------------------------===//
///
/// Measures what the content-addressed artifact cache buys: each model is
/// compiled cold (empty cache directory) and then warm (same directory,
/// fresh service so even the in-memory LRU starts empty), reporting the
/// wall time of the compile pipeline (parse + elaborate + solve; simulator
/// construction is excluded — it is never cached) and the speedup. The
/// acceptance bar is a >=2x cold/warm ratio on the uarch-based models.
///
/// Also reports a batch A/B: all six Table 3 models compiled serially vs.
/// through CompileService::compileBatch on a thread pool.
///
/// Results (per-model cold/warm ms, per-kind artifact bytes from the
/// cache directory, batch A/B) are written to BENCH_cache.json in the
/// working directory.
///
//===----------------------------------------------------------------------===//

#include "driver/CompileService.h"
#include "models/Models.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace liberty;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// An invocation for one Table 3 model (shared uarch components + the
/// model's own system description).
bool modelInvocation(const std::string &Id, driver::CompilerInvocation &Inv) {
  Inv = driver::CompilerInvocation();
  Inv.BuildSim = false;
  return Inv.addFile(models::uarchLssPath()) &&
         Inv.addFile(models::modelLssPath(Id));
}

struct Row {
  std::string Id;
  double ColdMs = 0, WarmMs = 0;
  bool Ok = false;
};

} // namespace

int main() {
  std::string Dir = (std::filesystem::temp_directory_path() /
                     ("lss_bench_cache_" + std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(Dir);

  std::printf("=== Artifact cache: cold vs. warm compile ===\n\n");
  std::printf("%8s %12s %12s %10s\n", "model", "cold(ms)", "warm(ms)",
              "speedup");

  // One throwaway compile to pay one-time process costs (behavior
  // registration, the shared parsed core library) outside the timings.
  {
    driver::CompilerInvocation Inv;
    if (!modelInvocation("A", Inv))
      return 1;
    driver::CompileService Warmup;
    Warmup.compile(Inv);
  }

  bool AllOk = true;
  std::vector<Row> Rows;
  for (const std::string &Id : models::modelIds()) {
    Row R;
    R.Id = Id;
    driver::CompilerInvocation Inv;
    if (!modelInvocation(Id, Inv)) {
      AllOk = false;
      continue;
    }

    driver::CompileService::Options SO;
    SO.Cache.DiskDir = Dir;
    {
      driver::CompileService Cold(SO);
      auto T0 = std::chrono::steady_clock::now();
      R.Ok = Cold.compile(Inv).Success;
      R.ColdMs = msSince(T0);
    }
    {
      // A fresh service: the warm path exercises the on-disk entries, not
      // the in-memory LRU, matching a new lssc process.
      driver::CompileService Warm(SO);
      auto T0 = std::chrono::steady_clock::now();
      driver::CompileResult WR = Warm.compile(Inv);
      R.WarmMs = msSince(T0);
      R.Ok = R.Ok && WR.Success && WR.ElabFromCache && WR.SolutionFromCache;
    }
    AllOk = AllOk && R.Ok;
    std::printf("%8s %12.3f %12.3f %9.1fx%s\n", Id.c_str(), R.ColdMs, R.WarmMs,
                R.WarmMs > 0 ? R.ColdMs / R.WarmMs : 0.0,
                R.Ok ? "" : "  (FAILED)");
    Rows.push_back(R);
  }

  // Per-kind artifact footprint, read off the cache directory while it
  // still holds every model's entries ("<key>.<phase>.lssart").
  std::map<std::string, uint64_t> KindBytes;
  std::map<std::string, unsigned> KindFiles;
  for (const auto &Ent : std::filesystem::directory_iterator(Dir)) {
    if (!Ent.is_regular_file())
      continue;
    std::string Name = Ent.path().filename().string();
    if (Name.size() < 8 || Name.substr(Name.size() - 7) != ".lssart")
      continue;
    std::string Stem = Name.substr(0, Name.size() - 7);
    size_t Dot = Stem.rfind('.');
    std::string Kind = Dot == std::string::npos ? "?" : Stem.substr(Dot + 1);
    KindBytes[Kind] += uint64_t(Ent.file_size());
    KindFiles[Kind] += 1;
  }

  double ColdTotal = 0, WarmTotal = 0;
  for (const Row &R : Rows) {
    ColdTotal += R.ColdMs;
    WarmTotal += R.WarmMs;
  }
  double Speedup = WarmTotal > 0 ? ColdTotal / WarmTotal : 0.0;
  std::printf("%8s %12.3f %12.3f %9.1fx\n", "total", ColdTotal, WarmTotal,
              Speedup);
  std::printf("\nwarm target: >=2x; measured %.1fx -> %s\n", Speedup,
              Speedup >= 2.0 ? "ok" : "MISSED");

  // --- Batch compile: serial vs. thread pool (cold both times). ----------
  std::vector<driver::CompilerInvocation> Invs(models::modelIds().size());
  for (size_t I = 0; I != Invs.size(); ++I)
    if (!modelInvocation(models::modelIds()[I], Invs[I]))
      return 1;

  auto BatchMs = [&](unsigned Jobs) {
    driver::CompileService::Options SO; // In-memory only: every compile cold.
    SO.CacheEnabled = false;
    driver::CompileService Svc(SO);
    auto T0 = std::chrono::steady_clock::now();
    auto Rs = Svc.compileBatch(Invs, Jobs);
    double Ms = msSince(T0);
    for (const driver::CompileResult &R : Rs)
      AllOk = AllOk && R.Success;
    return Ms;
  };
  double SerialMs = BatchMs(1);
  double PoolMs = BatchMs(0);
  std::printf("\n=== Batch compile: %zu models ===\n", Invs.size());
  std::printf("serial: %.3f ms, pooled: %.3f ms (%.1fx)\n", SerialMs, PoolMs,
              PoolMs > 0 ? SerialMs / PoolMs : 0.0);

  std::filesystem::remove_all(Dir);

  {
    std::ostringstream JS;
    JS << "{\n  \"bench\": \"cache\",\n  \"models\": [";
    for (size_t I = 0; I != Rows.size(); ++I) {
      const Row &R = Rows[I];
      if (I)
        JS << ",";
      char Buf[256];
      std::snprintf(Buf, sizeof(Buf),
                    "\n    {\"model\": \"%s\", \"cold_ms\": %.3f, "
                    "\"warm_ms\": %.3f, \"speedup\": %.2f, \"ok\": %s}",
                    R.Id.c_str(), R.ColdMs, R.WarmMs,
                    R.WarmMs > 0 ? R.ColdMs / R.WarmMs : 0.0,
                    R.Ok ? "true" : "false");
      JS << Buf;
    }
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf),
                  "\n  ],\n  \"total\": {\"cold_ms\": %.3f, \"warm_ms\": "
                  "%.3f, \"speedup\": %.2f},\n",
                  ColdTotal, WarmTotal, Speedup);
    JS << Buf;
    JS << "  \"artifact_bytes\": {";
    bool First = true;
    for (const auto &[Kind, Bytes] : KindBytes) {
      JS << (First ? "" : ", ") << "\"" << Kind << "\": " << Bytes;
      First = false;
    }
    JS << "},\n  \"artifact_files\": {";
    First = true;
    for (const auto &[Kind, N] : KindFiles) {
      JS << (First ? "" : ", ") << "\"" << Kind << "\": " << N;
      First = false;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "},\n  \"batch\": {\"serial_ms\": %.3f, \"pooled_ms\": "
                  "%.3f, \"speedup\": %.2f}\n}\n",
                  SerialMs, PoolMs, PoolMs > 0 ? SerialMs / PoolMs : 0.0);
    JS << Buf;
    std::ofstream("BENCH_cache.json") << JS.str();
    std::printf("\nwrote BENCH_cache.json\n");
  }

  std::printf("\n%s\n", AllOk ? "all checks passed" : "CHECKS FAILED");
  return AllOk && Speedup >= 2.0 ? 0 : 1;
}
