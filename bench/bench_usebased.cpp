//===- bench_usebased.cpp - Figures 10-12: use-based specialization -----------===//
///
/// Reproduces the paper's use-based specialization experiments:
///  - Figures 10/11: the width-parameterized delayn bus. The explicit
///    variant needs a width parameter kept consistent with every
///    connection; the use-based variant infers it. Both must elaborate to
///    identical structures.
///  - Figure 12: a module that conditionally exports an arbitration-policy
///    userpoint only when its input is wider than its output.
///  - The Table 2 aggregate: how many width parameters the models get for
///    free.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "driver/Stats.h"
#include "models/Models.h"

#include <cstdio>
#include <string>

using namespace liberty;

namespace {

/// Figure 10: widths passed explicitly as a parameter.
std::string explicitWidthSpec(int N, int W) {
  return R"(
module delaynw {
  parameter n:int;
  parameter width = 1:int;
  inport in: 'a;
  outport out: 'a;
  var delays:instance ref[];
  delays = new instance[n](latchbank, "delays");
  LSS_connect_bus(in, delays[0].in, width);
  var i:int;
  for (i = 1; i < n; i = i + 1) {
    LSS_connect_bus(delays[i-1].out, delays[i].in, width);
  }
  LSS_connect_bus(delays[n-1].out, out, width);
};
module latchbank {
  inport in: 'a;
  outport out: 'a;
  LSS_assert(in.width == out.width, "latchbank widths differ");
  instance l:pipe_latch;
  LSS_connect_bus(in, l.in, in.width);
  LSS_connect_bus(l.out, out, in.width);
};
instance gen:counter_source;
instance hole:sink;
instance chain:delaynw;
chain.n = )" + std::to_string(N) + R"(;
chain.width = )" + std::to_string(W) + R"(;
var j:int;
for (j = 0; j < )" + std::to_string(W) + R"(; j = j + 1) {
  gen.out[j] -> chain.in[j];
  chain.out[j] -> hole.in[j];
}
)";
}

/// Use-based variant: the width parameter disappears; everything is
/// counted from connectivity (in.width).
std::string useBasedWidthSpec(int N, int W) {
  return R"(
module delaynw {
  parameter n:int;
  inport in: 'a;
  outport out: 'a;
  LSS_assert(in.width == out.width, "delaynw bus widths must match");
  var delays:instance ref[];
  delays = new instance[n](latchbank, "delays");
  LSS_connect_bus(in, delays[0].in, in.width);
  var i:int;
  for (i = 1; i < n; i = i + 1) {
    LSS_connect_bus(delays[i-1].out, delays[i].in, in.width);
  }
  LSS_connect_bus(delays[n-1].out, out, in.width);
};
module latchbank {
  inport in: 'a;
  outport out: 'a;
  LSS_assert(in.width == out.width, "latchbank widths differ");
  instance l:pipe_latch;
  LSS_connect_bus(in, l.in, in.width);
  LSS_connect_bus(l.out, out, in.width);
};
instance gen:counter_source;
instance hole:sink;
instance chain:delaynw;
chain.n = )" + std::to_string(N) + R"(;
var j:int;
for (j = 0; j < )" + std::to_string(W) + R"(; j = j + 1) {
  gen.out[j] -> chain.in[j];
  chain.out[j] -> hole.in[j];
}
)";
}

/// Figure 12: the arbitration policy parameter exists only when needed.
std::string conditionalArbiterSpec(int InWidth, bool SetPolicy) {
  std::string Policy =
      SetPolicy ? "c.arbitration_policy = \"return 0;\";\n" : "";
  std::string Src = R"(
module concentrator {
  inport in: 'a;
  outport out: 'a;
  if (out.width < in.width) {
    parameter arbitration_policy : userpoint(mask:int, last:int, width:int => int);
    instance arb:arbiter;
    arb.policy = arbitration_policy;
    LSS_connect_bus(in, arb.in, in.width);
    arb.out[0] -> out;
  } else {
    in -> out;
  }
};
)";
  Src += "instance c:concentrator;\ninstance s:sink;\n";
  Src += Policy;
  for (int I = 0; I != InWidth; ++I)
    Src += "instance g" + std::to_string(I) + ":counter_source;\n" +
           "g" + std::to_string(I) + ".out -> c.in;\n";
  Src += "c.out -> s.in;\n";
  return Src;
}

} // namespace

int main() {
  std::printf("=== Figures 10/11: explicit vs use-based port widths ===\n\n");
  std::printf("%6s %6s | %12s %12s | %12s %12s | %s\n", "n", "width",
              "expl insts", "expl conns", "ub insts", "ub conns",
              "extra params (explicit/use-based)");

  bool AllOk = true;
  for (auto [N, W] : {std::pair{3, 5}, {4, 8}, {8, 16}}) {
    driver::CompilerInvocation InvE, InvU;
    InvE.addSource("explicit.lss", explicitWidthSpec(N, W));
    InvU.addSource("usebased.lss", useBasedWidthSpec(N, W));
    auto CE = driver::Compiler::compileForSim(InvE);
    auto CU = driver::Compiler::compileForSim(InvU);
    if (!CE || !CU) {
      std::printf("FAILED to compile width=%d variant\n", W);
      AllOk = false;
      continue;
    }
    size_t EI = CE->getNetlist()->getInstances().size() - 1;
    size_t UI = CU->getNetlist()->getInstances().size() - 1;
    size_t EC = CE->getNetlist()->getConnections().size();
    size_t UC = CU->getNetlist()->getConnections().size();
    bool Same = EI == UI && EC == UC;
    AllOk &= Same;
    std::printf("%6d %6d | %12zu %12zu | %12zu %12zu | 1 vs 0 %s\n", N, W,
                EI, EC, UI, UC, Same ? "(identical structure)" : "MISMATCH");

    // Both variants must simulate identically.
    CE->getSimulator()->step(50);
    CU->getSimulator()->step(50);
    const interp::Value *VE = CE->getSimulator()->peekPort(
        "chain.delays[" + std::to_string(N - 1) + "].l", "out", W - 1);
    const interp::Value *VU = CU->getSimulator()->peekPort(
        "chain.delays[" + std::to_string(N - 1) + "].l", "out", W - 1);
    if (!VE || !VU || !VE->equals(*VU)) {
      std::printf("  simulation MISMATCH between variants\n");
      AllOk = false;
    }
  }

  std::printf("\n=== Figure 12: conditionally exported arbitration policy "
              "===\n\n");
  {
    // Narrowing case: policy required and used.
    driver::CompilerInvocation Inv1;
    Inv1.addSource("fig12a.lss", conditionalArbiterSpec(3, /*SetPolicy=*/true));
    auto C1 = driver::Compiler::compileForSim(Inv1);
    std::printf("in.width=3 > out.width=1, policy set:      %s\n",
                C1 ? "compiles (arbiter instantiated)" : "FAILED");
    // Pass-through case: the parameter must not even exist.
    driver::CompilerInvocation Inv2;
    Inv2.addSource("fig12b.lss",
                   conditionalArbiterSpec(1, /*SetPolicy=*/false));
    auto C2 = driver::Compiler::compileForSim(Inv2);
    std::printf("in.width=1 = out.width,  policy omitted:   %s\n",
                C2 ? "compiles (arbiter elided, no parameter demanded)"
                   : "FAILED");
    // Narrowing without a policy: must be rejected.
    driver::Compiler C3;
    bool Rejected = !(C3.addCoreLibrary() &&
                      C3.addSource("fig12c.lss",
                                   conditionalArbiterSpec(3, false)) &&
                      C3.elaborate());
    std::printf("in.width=3 > out.width=1, policy omitted:  %s\n",
                Rejected ? "rejected (policy required exactly when needed)"
                         : "WRONGLY ACCEPTED");
    AllOk &= (C1 != nullptr) && (C2 != nullptr) && Rejected;
  }

  std::printf("\n=== Table 2 aggregate: widths inferred for free ===\n\n");
  unsigned TotalWidths = 0, TotalConns = 0;
  for (const std::string &Id : models::modelIds()) {
    driver::Compiler C;
    if (!models::loadModel(C, Id) || !C.elaborate() || !C.inferTypes())
      continue;
    driver::ModelStats S = driver::computeModelStats(
        *C.getNetlist(), C.getLibraryModules(), 0, Id);
    TotalWidths += S.InferredPortWidths;
    TotalConns += S.Connections;
  }
  std::printf("models A-F: %u port widths inferred from %u connections "
              "(paper: 3904 from 12050)\n",
              TotalWidths, TotalConns);
  return AllOk ? 0 : 1;
}
