//===- bench_ir.cpp - Dense interned IR benchmark (BENCH_ir.json) -------------===//
///
/// Proves the dense interned netlist IR at scale. For synthetic workloads
/// of 1k/4k/10k leaf instances (infer::buildSyntheticNetlist) it measures:
///
///  - elaboration: netlist construction plus freezeIds() id assignment;
///  - constraint generation: the dense id-indexed generator
///    (infer::buildNetlistConstraints) against a faithful in-bench replica
///    of the old string-keyed generator (per-port path concatenation,
///    eagerly rendered context strings, by-name port scans);
///  - LSSNL artifact bytes, v1 (in-place strings) vs v2 (interned table);
///  - warm cache load: deserializeNetlist wall time on each format.
///
/// Results go to BENCH_ir.json (override with --out FILE). --smoke runs
/// only the 1k point and skips the performance acceptance gates — it is
/// the bench_smoke ctest entry, so it must stay fast and insensitive to
/// machine load — but still self-checks the emitted JSON schema. A full
/// run exits nonzero unless, at the largest size, dense constraint-gen is
/// >= 1.5x the string-keyed baseline, v2 artifacts are >= 20% smaller
/// than v1, and the v2 warm load is no slower than v1.
///
//===----------------------------------------------------------------------===//

#include "infer/InferenceEngine.h"
#include "infer/Synthetic.h"
#include "netlist/Netlist.h"
#include "netlist/Serializer.h"
#include "support/Diagnostics.h"
#include "types/TypeContext.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace liberty;
using infer::Constraint;

namespace {

double msNow() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-N wall time in milliseconds. Best-of (not mean) because the
/// quantities compared are deterministic work; the minimum is the run
/// least disturbed by the machine.
double bestOf(unsigned Reps, const std::function<void()> &Fn) {
  double Best = 1e300;
  for (unsigned I = 0; I != Reps; ++I) {
    double T0 = msNow();
    Fn();
    Best = std::min(Best, msNow() - T0);
  }
  return Best;
}

/// The pre-dense-IR constraint generator, reproduced verbatim from the
/// string-keyed implementation this PR replaced: fresh variables named by
/// a per-port "<path>.<port>" concatenation, diagnostic context strings
/// rendered eagerly for every constraint, and connection endpoints
/// resolved with by-name linear port scans. This is the baseline the
/// acceptance gate compares against.
std::vector<Constraint> buildConstraintsStringKeyed(netlist::Netlist &NL,
                                                    types::TypeContext &TC) {
  std::vector<Constraint> Cs;
  for (const auto &Inst : NL.getInstances()) {
    for (netlist::Port &P : Inst->Ports) {
      P.InferVar = TC.freshVar(Inst->Path + "." + P.Name);
      if (P.Scheme)
        Cs.push_back(Constraint{P.InferVar, P.Scheme, P.Loc,
                                "annotation of port '" + P.Name +
                                    "' on instance '" + Inst->Path + "'",
                                Inst->Path});
    }
    for (const auto &[LHS, RHS] : Inst->ExtraConstraints)
      Cs.push_back(Constraint{LHS, RHS, Inst->Loc,
                              "constrain statement of instance '" +
                                  Inst->Path + "'",
                              Inst->Path});
  }
  for (const auto &Conn : NL.getConnections()) {
    if (!Conn->isFullyResolved())
      continue;
    netlist::Port *PF = Conn->From.Inst->findPort(Conn->From.Port);
    netlist::Port *PT = Conn->To.Inst->findPort(Conn->To.Port);
    if (!PF || !PT || !PF->InferVar || !PT->InferVar)
      continue;
    Cs.push_back(Constraint{PF->InferVar, PT->InferVar, Conn->Loc,
                            "connection", Conn->From.Inst->Path});
    if (Conn->Annotation)
      Cs.push_back(Constraint{PF->InferVar, Conn->Annotation, Conn->Loc,
                              "connection annotation",
                              Conn->From.Inst->Path});
  }
  return Cs;
}

struct SizeResult {
  unsigned Instances = 0;
  unsigned Lanes = 0;
  unsigned DisjunctPermille = 0;
  unsigned Ports = 0;
  unsigned Connections = 0;
  unsigned Constraints = 0;
  double ElaborateMs = 0;
  double GenDenseMs = 0;
  double GenStringMs = 0;
  double V1Bytes = 0;
  double V2Bytes = 0;
  double LoadV1Ms = 0;
  double LoadV2Ms = 0;

  double genSpeedup() const {
    return GenDenseMs > 0 ? GenStringMs / GenDenseMs : 0;
  }
  double bytesSavedPct() const {
    return V1Bytes > 0 ? 100.0 * (V1Bytes - V2Bytes) / V1Bytes : 0;
  }
  double loadSpeedup() const {
    return LoadV2Ms > 0 ? LoadV1Ms / LoadV2Ms : 0;
  }
};

SizeResult runSize(unsigned Instances, unsigned Reps) {
  SizeResult R;
  infer::SyntheticNetlistSpec Spec;
  Spec.Instances = Instances;
  R.Instances = Instances;
  R.Lanes = Spec.Lanes;
  R.DisjunctPermille = Spec.DisjunctPermille;

  // Elaboration: build-and-discard per rep so each run pays the full
  // interning and id-assignment cost on a fresh netlist.
  R.ElaborateMs = bestOf(Reps, [&] {
    types::TypeContext TC;
    netlist::Netlist NL;
    infer::buildSyntheticNetlist(NL, TC, Spec);
  });

  types::TypeContext TC;
  netlist::Netlist NL;
  infer::buildSyntheticNetlist(NL, TC, Spec);
  for (const auto &Inst : NL.getInstances())
    R.Ports += unsigned(Inst->Ports.size());
  R.Connections = unsigned(NL.getConnections().size());

  std::vector<Constraint> Cs;
  R.GenDenseMs =
      bestOf(Reps, [&] { Cs = infer::buildNetlistConstraints(NL, TC); });
  R.Constraints = unsigned(Cs.size());
  R.GenStringMs =
      bestOf(Reps, [&] { Cs = buildConstraintsStringKeyed(NL, TC); });
  // The string-keyed pass overwrote every InferVar; regenerate densely so
  // the netlist leaves the bench in the state the real pipeline produces.
  Cs = infer::buildNetlistConstraints(NL, TC);

  std::set<std::string> LibraryModules;
  std::vector<Diagnostic> NoDiags;
  std::string V1, V2;
  if (!netlist::serializeNetlist(NL, LibraryModules, 0, NoDiags, V1, 1) ||
      !netlist::serializeNetlist(NL, LibraryModules, 0, NoDiags, V2, 2)) {
    std::fprintf(stderr, "bench_ir: serialization failed at %u instances\n",
                 Instances);
    return R;
  }
  R.V1Bytes = double(V1.size());
  R.V2Bytes = double(V2.size());

  // Interleaved A/B: alternating the formats within each rep keeps
  // machine-load drift from biasing one side of the comparison.
  auto LoadOnce = [](const std::string &Text) {
    double T0 = msNow();
    types::TypeContext LoadTC;
    netlist::SerializedCompile SC = netlist::deserializeNetlist(Text, LoadTC);
    if (!SC.NL)
      std::fprintf(stderr, "bench_ir: artifact reload failed\n");
    return msNow() - T0;
  };
  R.LoadV1Ms = R.LoadV2Ms = 1e300;
  for (unsigned I = 0; I != Reps + 2; ++I) {
    R.LoadV1Ms = std::min(R.LoadV1Ms, LoadOnce(V1));
    R.LoadV2Ms = std::min(R.LoadV2Ms, LoadOnce(V2));
  }
  return R;
}

void printRow(const SizeResult &R) {
  std::printf("%9u %9.2f %11.2f %12.2f %8.2fx %10.0f %10.0f %7.1f%% "
              "%8.2f %8.2f\n",
              R.Instances, R.ElaborateMs, R.GenDenseMs, R.GenStringMs,
              R.genSpeedup(), R.V1Bytes, R.V2Bytes, R.bytesSavedPct(),
              R.LoadV1Ms, R.LoadV2Ms);
}

void writeJson(const std::string &Path, const std::vector<SizeResult> &Rows,
               bool Smoke) {
  std::ostringstream OS;
  OS << "{\n  \"bench\": \"ir\",\n  \"smoke\": " << (Smoke ? "true" : "false")
     << ",\n  \"sizes\": [";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const SizeResult &R = Rows[I];
    if (I)
      OS << ",";
    char Buf[1024];
    std::snprintf(
        Buf, sizeof(Buf),
        "\n    {\n"
        "      \"instances\": %u,\n"
        "      \"lanes\": %u,\n"
        "      \"disjunct_permille\": %u,\n"
        "      \"ports\": %u,\n"
        "      \"connections\": %u,\n"
        "      \"constraints\": %u,\n"
        "      \"elaborate_ms\": %.3f,\n"
        "      \"constraint_gen_dense_ms\": %.3f,\n"
        "      \"constraint_gen_string_ms\": %.3f,\n"
        "      \"constraint_gen_speedup\": %.3f,\n"
        "      \"lssnl_v1_bytes\": %.0f,\n"
        "      \"lssnl_v2_bytes\": %.0f,\n"
        "      \"lssnl_bytes_saved_pct\": %.1f,\n"
        "      \"warm_load_v1_ms\": %.3f,\n"
        "      \"warm_load_v2_ms\": %.3f,\n"
        "      \"warm_load_speedup\": %.3f\n"
        "    }",
        R.Instances, R.Lanes, R.DisjunctPermille, R.Ports, R.Connections,
        R.Constraints, R.ElaborateMs, R.GenDenseMs, R.GenStringMs,
        R.genSpeedup(), R.V1Bytes, R.V2Bytes, R.bytesSavedPct(), R.LoadV1Ms,
        R.LoadV2Ms, R.loadSpeedup());
    OS << Buf;
  }
  OS << "\n  ]\n}\n";
  std::ofstream Out(Path);
  Out << OS.str();
}

/// Re-reads the emitted file and checks every schema key is present —
/// the bench_smoke ctest gate, so a field rename can't silently produce
/// an unparseable BENCH_ir.json.
bool validateJson(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  const std::string Text = SS.str();
  static const char *Keys[] = {
      "\"bench\"",                     "\"smoke\"",
      "\"sizes\"",                     "\"instances\"",
      "\"constraints\"",               "\"elaborate_ms\"",
      "\"constraint_gen_dense_ms\"",   "\"constraint_gen_string_ms\"",
      "\"constraint_gen_speedup\"",    "\"lssnl_v1_bytes\"",
      "\"lssnl_v2_bytes\"",            "\"lssnl_bytes_saved_pct\"",
      "\"warm_load_v1_ms\"",           "\"warm_load_v2_ms\"",
      "\"warm_load_speedup\"",
  };
  for (const char *K : Keys)
    if (Text.find(K) == std::string::npos) {
      std::fprintf(stderr, "bench_ir: BENCH_ir.json is missing %s\n", K);
      return false;
    }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_ir.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc)
      OutPath = argv[++I];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  std::vector<unsigned> Sizes =
      Smoke ? std::vector<unsigned>{1000}
            : std::vector<unsigned>{1000, 4000, 10000};
  const unsigned Reps = Smoke ? 2 : 5;

  std::printf("Dense interned IR benchmark (%s)\n",
              Smoke ? "smoke: 1k point only" : "1k/4k/10k");
  std::printf("%9s %9s %11s %12s %9s %10s %10s %8s %8s %8s\n", "instances",
              "elab_ms", "gen_dense", "gen_string", "speedup", "v1_bytes",
              "v2_bytes", "saved", "load_v1", "load_v2");
  std::vector<SizeResult> Rows;
  for (unsigned N : Sizes) {
    Rows.push_back(runSize(N, Reps));
    printRow(Rows.back());
  }

  writeJson(OutPath, Rows, Smoke);
  std::printf("wrote %s\n", OutPath.c_str());
  if (!validateJson(OutPath))
    return 1;

  const SizeResult &Last = Rows.back();
  bool Sane = Last.Constraints > 0 && Last.V1Bytes > 0 && Last.V2Bytes > 0 &&
              Last.GenDenseMs > 0 && Last.LoadV2Ms > 0;
  if (!Sane) {
    std::fprintf(stderr, "bench_ir: degenerate measurements\n");
    return 1;
  }
  if (Smoke)
    return 0; // Schema and sanity only; no timing gates under ctest load.

  bool Ok = true;
  if (Last.genSpeedup() < 1.5) {
    std::fprintf(stderr,
                 "FAIL: dense constraint-gen only %.2fx the string-keyed "
                 "baseline at %u instances (need >= 1.5x)\n",
                 Last.genSpeedup(), Last.Instances);
    Ok = false;
  }
  if (Last.bytesSavedPct() < 20.0) {
    std::fprintf(stderr,
                 "FAIL: LSSNL v2 only %.1f%% smaller than v1 at %u instances "
                 "(need >= 20%%)\n",
                 Last.bytesSavedPct(), Last.Instances);
    Ok = false;
  }
  if (Last.LoadV2Ms > Last.LoadV1Ms) {
    std::fprintf(stderr,
                 "FAIL: v2 warm load (%.2fms) slower than v1 (%.2fms)\n",
                 Last.LoadV2Ms, Last.LoadV1Ms);
    Ok = false;
  }
  return Ok ? 0 : 1;
}
