//===- bench_simspeed.cpp - Section 8's simulation-speed comparison -----------===//
///
/// The paper claims (Section 8, citing [12]): "reusable components in LSE
/// with LSS are at least as fast as custom components written in SystemC."
/// This bench compares cycles/second on the same delay-chain and CPU
/// workloads across:
///   - the LSS-generated simulator (static schedule, reusable components),
///   - the structural-OOP engine (run-time composition, no schedule — the
///     SystemC-analogue this repository implements), and
///   - a hand-written monomorphic C++ simulator (the absolute ceiling).
/// The paper's claim maps to LSS >= structural-OOP; the hand-coded C++
/// ceiling is reported for calibration.
///
//===----------------------------------------------------------------------===//

#include "baseline/HandCodedSim.h"
#include "baseline/OopSim.h"
#include "driver/Compiler.h"
#include "models/Models.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace liberty;

namespace {

std::string delayChainSpec(int N) {
  return R"(
module delayn {
  parameter n:int;
  inport in: 'a;
  outport out: 'a;
  var delays:instance ref[];
  delays = new instance[n](delay, "delays");
  in -> delays[0].in;
  var i:int;
  for (i = 1; i < n; i = i + 1) { delays[i-1].out -> delays[i].in; }
  delays[n-1].out -> out;
};
instance gen:counter_source;
instance hole:sink;
instance chain:delayn;
chain.n = )" + std::to_string(N) + R"(;
gen.out -> chain.in;
chain.out -> hole.in;
)";
}

void BM_LssDelayChain(benchmark::State &State) {
  int N = State.range(0);
  auto C = driver::Compiler::compileForSim("chain.lss", delayChainSpec(N));
  if (!C) {
    State.SkipWithError("compile failed");
    return;
  }
  sim::Simulator *Sim = C->getSimulator();
  for (auto _ : State)
    Sim->step(100);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LssDelayChain)->Arg(10)->Arg(100);

void BM_OopDelayChain(benchmark::State &State) {
  using namespace baseline::oop;
  int N = State.range(0);
  Engine E;
  Signal<int64_t> In, Out;
  E.track(&In);
  E.track(&Out);
  E.add(std::make_unique<CounterSource>(&In, E));
  E.add(std::make_unique<DelayN<int64_t>>(E, &In, &Out, N, int64_t(0)));
  E.add(std::make_unique<Sink<int64_t>>(&Out));
  E.reset();
  for (auto _ : State)
    E.step(100);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OopDelayChain)->Arg(10)->Arg(100);

void BM_OopBoxedDelayChain(benchmark::State &State) {
  using namespace baseline::oop;
  using namespace baseline::oop::boxed;
  int N = State.range(0);
  Engine E;
  std::vector<std::unique_ptr<BoxedSignal>> Wires;
  auto Wire = [&] {
    Wires.push_back(std::make_unique<BoxedSignal>());
    E.track(Wires.back().get());
    return Wires.back().get();
  };
  BoxedSignal *Prev = Wire();
  auto *Src = new BoxedCounterSource(E);
  Src->bindPort("out", Prev);
  E.add(std::unique_ptr<Component>(Src));
  for (int I = 0; I != N; ++I) {
    BoxedSignal *Next = Wire();
    auto *D = new BoxedDelay(0);
    D->bindPort("in", Prev);
    D->bindPort("out", Next);
    E.add(std::unique_ptr<Component>(D));
    Prev = Next;
  }
  auto *Snk = new BoxedSink();
  Snk->bindPort("in", Prev);
  E.add(std::unique_ptr<Component>(Snk));
  E.reset();
  for (auto _ : State)
    E.step(100);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OopBoxedDelayChain)->Arg(10)->Arg(100);

void BM_HandCodedDelayChain(benchmark::State &State) {
  int N = State.range(0);
  int64_t Sum = 0;
  for (auto _ : State)
    Sum += baseline::runHandCodedDelayChain(N, 100);
  benchmark::DoNotOptimize(Sum);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HandCodedDelayChain)->Arg(10)->Arg(100);

void BM_LssCpuModelC(benchmark::State &State) {
  driver::Compiler C;
  if (!models::loadModel(C, "C") || !C.elaborate() || !C.inferTypes() ||
      !C.buildSimulator()) {
    State.SkipWithError("model C failed");
    return;
  }
  sim::Simulator *Sim = C.getSimulator();
  for (auto _ : State)
    Sim->step(100);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LssCpuModelC);

void BM_HandCodedPipeline(benchmark::State &State) {
  baseline::PipelineConfig Cfg;
  Cfg.NumInstrs = 1000000000; // Effectively endless; bound by MaxCycles.
  Cfg.MaxCycles = 100;
  Cfg.FetchWidth = 4;
  Cfg.NumFus = 4;
  Cfg.WindowSize = 16;
  uint64_t Sum = 0;
  for (auto _ : State)
    Sum += baseline::runHandCodedPipeline(Cfg).Retired;
  benchmark::DoNotOptimize(Sum);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HandCodedPipeline);

} // namespace

BENCHMARK_MAIN();
