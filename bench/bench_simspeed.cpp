//===- bench_simspeed.cpp - Section 8's simulation-speed comparison -----------===//
///
/// The paper claims (Section 8, citing [12]): "reusable components in LSE
/// with LSS are at least as fast as custom components written in SystemC."
/// This bench compares cycles/second on the same delay-chain and CPU
/// workloads across:
///   - the LSS-generated simulator (static schedule, reusable components),
///   - the structural-OOP engine (run-time composition, no schedule — the
///     SystemC-analogue this repository implements), and
///   - a hand-written monomorphic C++ simulator (the absolute ceiling).
/// The paper's claim maps to LSS >= structural-OOP; the hand-coded C++
/// ceiling is reported for calibration.
///
//===----------------------------------------------------------------------===//

#include "baseline/HandCodedSim.h"
#include "baseline/OopSim.h"
#include "driver/Compiler.h"
#include "models/Models.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace liberty;

namespace {

/// --sim-engine NAME (default auto): the engine for the LSS benchmarks
/// that don't sweep engines themselves, enabling whole-suite comparisons.
/// The legacy --selective on|off and --sim-jobs N flags remain as
/// aliases; they only matter when the engine is auto (the Options
/// resolution rules then pick selective/wavefront from them, exactly as
/// lssc does).
sim::EngineKind GEngine = sim::EngineKind::Auto;

/// --selective on|off (default on): legacy alias, see GEngine.
bool GSelective = true;

/// --sim-jobs N (default 1): legacy alias, see GEngine.
unsigned GSimJobs = 1;

sim::Simulator::Options simOptions() {
  sim::Simulator::Options O;
  O.Selective = GSelective;
  O.Jobs = GSimJobs;
  O.Engine = GEngine;
  return O;
}

/// One-source invocation under the suite-wide engine options.
driver::CompilerInvocation invocationFor(const std::string &Name,
                                         std::string Text,
                                         sim::Simulator::Options O) {
  driver::CompilerInvocation Inv;
  Inv.addSource(Name, std::move(Text));
  Inv.Sim = O;
  return Inv;
}

std::string delayChainSpec(int N) {
  return R"(
module delayn {
  parameter n:int;
  inport in: 'a;
  outport out: 'a;
  var delays:instance ref[];
  delays = new instance[n](delay, "delays");
  in -> delays[0].in;
  var i:int;
  for (i = 1; i < n; i = i + 1) { delays[i-1].out -> delays[i].in; }
  delays[n-1].out -> out;
};
instance gen:counter_source;
instance hole:sink;
instance chain:delayn;
chain.n = )" + std::to_string(N) + R"(;
gen.out -> chain.in;
chain.out -> hole.in;
)";
}

void BM_LssDelayChain(benchmark::State &State) {
  int N = State.range(0);
  auto C = driver::Compiler::compileForSim(
      invocationFor("chain.lss", delayChainSpec(N), simOptions()));
  if (!C) {
    State.SkipWithError("compile failed");
    return;
  }
  sim::Simulator *Sim = C->getSimulator();
  for (auto _ : State)
    Sim->step(100);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LssDelayChain)->Arg(10)->Arg(100);

void BM_OopDelayChain(benchmark::State &State) {
  using namespace baseline::oop;
  int N = State.range(0);
  Engine E;
  Signal<int64_t> In, Out;
  E.track(&In);
  E.track(&Out);
  E.add(std::make_unique<CounterSource>(&In, E));
  E.add(std::make_unique<DelayN<int64_t>>(E, &In, &Out, N, int64_t(0)));
  E.add(std::make_unique<Sink<int64_t>>(&Out));
  E.reset();
  for (auto _ : State)
    E.step(100);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OopDelayChain)->Arg(10)->Arg(100);

void BM_OopBoxedDelayChain(benchmark::State &State) {
  using namespace baseline::oop;
  using namespace baseline::oop::boxed;
  int N = State.range(0);
  Engine E;
  std::vector<std::unique_ptr<BoxedSignal>> Wires;
  auto Wire = [&] {
    Wires.push_back(std::make_unique<BoxedSignal>());
    E.track(Wires.back().get());
    return Wires.back().get();
  };
  BoxedSignal *Prev = Wire();
  auto *Src = new BoxedCounterSource(E);
  Src->bindPort("out", Prev);
  E.add(std::unique_ptr<Component>(Src));
  for (int I = 0; I != N; ++I) {
    BoxedSignal *Next = Wire();
    auto *D = new BoxedDelay(0);
    D->bindPort("in", Prev);
    D->bindPort("out", Next);
    E.add(std::unique_ptr<Component>(D));
    Prev = Next;
  }
  auto *Snk = new BoxedSink();
  Snk->bindPort("in", Prev);
  E.add(std::unique_ptr<Component>(Snk));
  E.reset();
  for (auto _ : State)
    E.step(100);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OopBoxedDelayChain)->Arg(10)->Arg(100);

void BM_HandCodedDelayChain(benchmark::State &State) {
  int N = State.range(0);
  int64_t Sum = 0;
  for (auto _ : State)
    Sum += baseline::runHandCodedDelayChain(N, 100);
  benchmark::DoNotOptimize(Sum);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HandCodedDelayChain)->Arg(10)->Arg(100);

void BM_LssCpuModelC(benchmark::State &State) {
  driver::Compiler C;
  driver::CompilerInvocation Inv;
  Inv.Sim = simOptions();
  if (!models::loadModel(C, "C") || !C.elaborate(Inv) || !C.inferTypes(Inv) ||
      !C.buildSimulator(Inv)) {
    State.SkipWithError("model C failed");
    return;
  }
  sim::Simulator *Sim = C.getSimulator();
  for (auto _ : State)
    Sim->step(100);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LssCpuModelC);

/// A model dominated by quiescent combinational logic: one long adder
/// chain fed by a constant (never changes after cycle 0) next to a short
/// active chain fed by a counter (changes every cycle). The selective
/// engine should skip the whole quiet chain every cycle; exhaustive
/// evaluation pays for it regardless.
std::string lowActivitySpec(int QuietN, int ActiveN) {
  return R"(
module addchain {
  parameter n:int;
  inport in: 'a;
  outport out: 'a;
  var as:instance ref[];
  as = new instance[n](adder, "a");
  in -> as[0].in1;
  in -> as[0].in2;
  var i:int;
  for (i = 1; i < n; i = i + 1) {
    as[i-1].out -> as[i].in1;
    in -> as[i].in2;
  }
  as[n-1].out -> out;
};
instance quiet_src:const_source;
quiet_src.value = 3;
instance quiet_chain:addchain;
quiet_chain.n = )" + std::to_string(QuietN) + R"(;
instance quiet_sink:sink;
quiet_src.out -> quiet_chain.in;
quiet_chain.out -> quiet_sink.in;
instance act_src:counter_source;
instance act_chain:addchain;
act_chain.n = )" + std::to_string(ActiveN) + R"(;
instance act_sink:sink;
act_src.out -> act_chain.in;
act_chain.out -> act_sink.in;
)";
}

/// A/B pair for the selective engine: Arg(0) = exhaustive, Arg(1) =
/// selective. The acceptance bar is selective >= 1.3x cycles/s here.
void BM_LssLowActivity(benchmark::State &State) {
  bool Selective = State.range(0) != 0;
  sim::Simulator::Options O;
  O.Selective = Selective;
  auto C = driver::Compiler::compileForSim(
      invocationFor("lowact.lss", lowActivitySpec(200, 8), O));
  if (!C) {
    State.SkipWithError("compile failed");
    return;
  }
  sim::Simulator *Sim = C->getSimulator();
  for (auto _ : State)
    Sim->step(100);
  State.SetLabel(Selective ? "selective=on" : "selective=off");
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LssLowActivity)->Arg(0)->Arg(1);

/// A wide, embarrassingly parallel model: \p Lanes independent
/// source->adder->sink strands. ASAP level packing puts all the adders
/// (and all the sources) into one wide schedule level, so this is the
/// wavefront engine's best case and the sweep's scaling workload.
std::string wideLanesSpec(int Lanes) {
  std::string N = std::to_string(Lanes);
  return R"(
module lane {
  outport out: int;
  instance g:counter_source;
  instance a:adder;
  g.out -> a.in1;
  g.out -> a.in2;
  a.out -> out;
};
var lanes:instance ref[];
lanes = new instance[)" + N + R"(](lane, "lane");
instance s:sink;
var i:int;
for (i = 0; i < )" + N + R"(; i = i + 1) {
  lanes[i].out -> s.in[i];
}
)";
}

/// Thread-count scaling on the wide model: Arg = worker threads.
void BM_LssWideLanes(benchmark::State &State) {
  unsigned Jobs = unsigned(State.range(0));
  sim::Simulator::Options O;
  O.Selective = GSelective;
  O.Jobs = Jobs;
  auto C = driver::Compiler::compileForSim(
      invocationFor("wide.lss", wideLanesSpec(64), O));
  if (!C) {
    State.SkipWithError("compile failed");
    return;
  }
  sim::Simulator *Sim = C->getSimulator();
  for (auto _ : State)
    Sim->step(100);
  State.SetLabel("jobs=" + std::to_string(Jobs));
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LssWideLanes)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_HandCodedPipeline(benchmark::State &State) {
  baseline::PipelineConfig Cfg;
  Cfg.NumInstrs = 1000000000; // Effectively endless; bound by MaxCycles.
  Cfg.MaxCycles = 100;
  Cfg.FetchWidth = 4;
  Cfg.NumFus = 4;
  Cfg.WindowSize = 16;
  uint64_t Sum = 0;
  for (auto _ : State)
    Sum += baseline::runHandCodedPipeline(Cfg).Retired;
  benchmark::DoNotOptimize(Sum);
  State.counters["cycles/s"] = benchmark::Counter(
      100.0 * State.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HandCodedPipeline);

/// Measures steady-state cycles/s for one engine configuration on the
/// wide model: warm up, then run 200-cycle batches until ~0.25 s of wall
/// time has accumulated.
double measureWideLanes(sim::Simulator::Options O) {
  auto C = driver::Compiler::compileForSim(
      invocationFor("wide.lss", wideLanesSpec(64), O));
  if (!C)
    return -1.0;
  sim::Simulator *Sim = C->getSimulator();
  Sim->step(50); // Warmup.
  using Clock = std::chrono::steady_clock;
  uint64_t Cycles = 0;
  auto Start = Clock::now();
  double Elapsed = 0.0;
  while (Elapsed < 0.25) {
    Sim->step(200);
    Cycles += 200;
    Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
  }
  return double(Cycles) / Elapsed;
}

/// `--sweep [FILE]`: the machine-readable per-engine sweep. One row per
/// engine configuration (the wavefront engine at several thread counts),
/// each with cycles/s and its speedup over the serial interpreter — the
/// baseline every other engine is an optimization of.
int runSweep(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out) {
    std::cerr << "bench_simspeed: cannot write '" << Path << "'\n";
    return 1;
  }
  struct Config {
    sim::EngineKind Engine;
    unsigned Jobs;
  };
  const Config Configs[] = {
      {sim::EngineKind::Interp, 1},    {sim::EngineKind::Selective, 1},
      {sim::EngineKind::Wavefront, 2}, {sim::EngineKind::Wavefront, 4},
      {sim::EngineKind::Wavefront, 8}, {sim::EngineKind::Compiled, 1},
  };
  Out << "{\n  \"model\": \"wide_lanes_64\",\n  \"runs\": [";
  double Serial = 0.0;
  bool First = true;
  for (const Config &Cfg : Configs) {
    sim::Simulator::Options O;
    O.Engine = Cfg.Engine;
    O.Jobs = Cfg.Jobs;
    double Rate = measureWideLanes(O);
    if (Cfg.Engine == sim::EngineKind::Interp)
      Serial = Rate;
    if (!First)
      Out << ",";
    First = false;
    Out << "\n    {\"engine\": \"" << sim::engineName(Cfg.Engine)
        << "\", \"jobs\": " << Cfg.Jobs << ", \"selective\": "
        << (Cfg.Engine == sim::EngineKind::Selective ? "true" : "false")
        << ", \"cycles_per_s\": " << Rate << ", \"speedup_vs_serial\": "
        << (Serial > 0.0 ? Rate / Serial : 0.0) << "}";
    std::cerr << "sweep: engine=" << sim::engineName(Cfg.Engine)
              << " jobs=" << Cfg.Jobs << " -> " << uint64_t(Rate)
              << " cycles/s\n";
  }
  Out << "\n  ]\n}\n";
  std::cerr << "bench_simspeed: wrote " << Path << "\n";
  return 0;
}

} // namespace

// Custom main so the whole suite can be A/B'd with `--sim-engine NAME`
// (or the legacy `--selective on|off` / `--sim-jobs N` aliases, which
// feed the auto engine's resolution rules), and so `--sweep [FILE]` can
// emit the machine-readable per-engine scaling record (all stripped
// before Google Benchmark sees the arguments).
int main(int argc, char **argv) {
  std::vector<char *> Args;
  bool Sweep = false;
  std::string SweepPath = "BENCH_simspeed.json";
  for (int I = 0; I < argc; ++I) {
    if ((std::strcmp(argv[I], "--sim-engine") == 0 ||
         std::strcmp(argv[I], "--engine") == 0) &&
        I + 1 < argc) {
      if (!sim::parseEngineName(argv[I + 1], GEngine)) {
        std::cerr << "bench_simspeed: unknown engine '" << argv[I + 1]
                  << "' (expected interp, selective, wavefront, or "
                     "compiled)\n";
        return 1;
      }
      ++I;
      continue;
    }
    if (std::strcmp(argv[I], "--selective") == 0 && I + 1 < argc) {
      GSelective = std::strcmp(argv[I + 1], "off") != 0;
      ++I;
      continue;
    }
    if (std::strcmp(argv[I], "--sim-jobs") == 0 && I + 1 < argc) {
      GSimJobs = unsigned(std::strtoul(argv[I + 1], nullptr, 10));
      if (GSimJobs == 0)
        GSimJobs = 1;
      ++I;
      continue;
    }
    if (std::strcmp(argv[I], "--sweep") == 0) {
      Sweep = true;
      if (I + 1 < argc && argv[I + 1][0] != '-') {
        SweepPath = argv[I + 1];
        ++I;
      }
      continue;
    }
    Args.push_back(argv[I]);
  }
  if (Sweep)
    return runSweep(SweepPath);
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
