//===- InterpTest.cpp - Elaboration semantics tests ----------------------------===//
///
/// Tests the paper's evaluation semantics (Section 6.2): instantiation
/// stack discipline, pending parameter/connection contexts, use-based
/// specialization, defaults, and the error conditions the A = Ø check
/// catches.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "types/Type.h"

#include <gtest/gtest.h>

using namespace liberty;

namespace {

struct Elab {
  std::unique_ptr<driver::Compiler> C;
  bool Ok = false;
};

Elab elaborate(const std::string &Src) {
  Elab E;
  E.C = std::make_unique<driver::Compiler>();
  E.Ok = E.C->addCoreLibrary() && E.C->addSource("t.lss", Src) &&
         E.C->elaborate();
  return E;
}

Elab elaborateAndInfer(const std::string &Src) {
  Elab E = elaborate(Src);
  if (E.Ok)
    E.Ok = E.C->inferTypes();
  return E;
}

TEST(Interp, ParameterDefaultsApply) {
  auto E = elaborate("instance d:delay;");
  ASSERT_TRUE(E.Ok) << E.C->diagnosticsText();
  netlist::InstanceNode *D = E.C->getNetlist()->findByPath("d");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Params.at("initial_state").getInt(), 0);
}

TEST(Interp, ParameterOverrideAfterInstantiation) {
  // Figure 6: nominal, late-bound parameter assignment.
  auto E = elaborate("instance d:delay;\nd.initial_state = 7;");
  ASSERT_TRUE(E.Ok);
  EXPECT_EQ(E.C->getNetlist()->findByPath("d")->Params.at("initial_state")
                .getInt(),
            7);
}

TEST(Interp, AssignmentBeforeOrAfterConnectionOrderIrrelevant) {
  auto E = elaborate(R"(
instance d1:delay;
instance d2:delay;
d1.out -> d2.in;
d1.initial_state = 3;
)");
  ASSERT_TRUE(E.Ok);
  EXPECT_EQ(E.C->getNetlist()->findByPath("d1")->Params.at("initial_state")
                .getInt(),
            3);
}

TEST(Interp, UnknownParameterRejected) {
  // The A = Ø check: assignment to a non-existent parameter.
  auto E = elaborate("instance d:delay;\nd.no_such_param = 1;");
  EXPECT_FALSE(E.Ok);
  EXPECT_NE(E.C->diagnosticsText().find("no parameter named"),
            std::string::npos);
}

TEST(Interp, UnknownPortRejected) {
  auto E = elaborate(R"(
instance d1:delay;
instance d2:delay;
d1.out -> d2.no_such_port;
)");
  EXPECT_FALSE(E.Ok);
  EXPECT_NE(E.C->diagnosticsText().find("no port named"), std::string::npos);
}

TEST(Interp, ParameterTypeMismatchRejected) {
  auto E = elaborate("instance d:delay;\nd.initial_state = \"zero\";");
  EXPECT_FALSE(E.Ok);
  EXPECT_NE(E.C->diagnosticsText().find("does not match type"),
            std::string::npos);
}

TEST(Interp, RequiredParameterMissingRejected) {
  auto E = elaborate(R"(
module needsn { parameter n:int; };
instance x:needsn;
)");
  EXPECT_FALSE(E.Ok);
  EXPECT_NE(E.C->diagnosticsText().find("no value and no default"),
            std::string::npos);
}

TEST(Interp, UnknownModuleRejected) {
  auto E = elaborate("instance x:nonexistent_module;");
  EXPECT_FALSE(E.Ok);
}

TEST(Interp, DuplicateParameterAssignmentWarnsLastWins) {
  auto E = elaborate("instance d:delay;\nd.initial_state = 1;\n"
                     "d.initial_state = 2;");
  ASSERT_TRUE(E.Ok);
  EXPECT_GT(E.C->getDiags().getNumWarnings(), 0u);
  EXPECT_EQ(E.C->getNetlist()->findByPath("d")->Params.at("initial_state")
                .getInt(),
            2);
}

//===----------------------------------------------------------------------===//
// Width inference (use-based specialization)
//===----------------------------------------------------------------------===//

TEST(Interp, WidthCountsUnindexedConnections) {
  auto E = elaborate(R"(
instance g:counter_source;
instance s:sink;
g.out -> s.in;
g.out -> s.in;
g.out -> s.in;
)");
  ASSERT_TRUE(E.Ok);
  EXPECT_EQ(E.C->getNetlist()->findByPath("s")->findPort("in")->Width, 3);
  EXPECT_EQ(E.C->getNetlist()->findByPath("g")->findPort("out")->Width, 3);
}

TEST(Interp, ExplicitIndexSetsExtent) {
  auto E = elaborate(R"(
instance g:counter_source;
instance s:sink;
g.out[0] -> s.in[5];
)");
  ASSERT_TRUE(E.Ok);
  // Width is max index + 1: instances 0..4 exist but are unconnected.
  EXPECT_EQ(E.C->getNetlist()->findByPath("s")->findPort("in")->Width, 6);
}

TEST(Interp, MixedExplicitAndInferredIndices) {
  auto E = elaborate(R"(
instance g:counter_source;
instance s:sink;
g.out -> s.in[1];
g.out -> s.in;
g.out -> s.in;
)");
  ASSERT_TRUE(E.Ok);
  // The unindexed connections take the free slots 0 and 2.
  EXPECT_EQ(E.C->getNetlist()->findByPath("s")->findPort("in")->Width, 3);
}

TEST(Interp, UnconnectedPortHasZeroWidth) {
  auto E = elaborate("instance q:queue;\nq.depth = 2;");
  ASSERT_TRUE(E.Ok);
  netlist::InstanceNode *Q = E.C->getNetlist()->findByPath("q");
  EXPECT_EQ(Q->findPort("in")->Width, 0);
  EXPECT_EQ(Q->findPort("stall")->Width, 0);
}

TEST(Interp, WidthReadableInsideBody) {
  auto E = elaborate(R"(
module probe {
  inport in: 'a;
  var w:int;
  w = in.width;
  LSS_assert(w == 2, "expected width 2");
};
instance g:counter_source;
instance p:probe;
g.out -> p.in;
g.out -> p.in;
)");
  EXPECT_TRUE(E.Ok) << E.C->diagnosticsText();
}

TEST(Interp, WidthAssertFailureSurfaces) {
  auto E = elaborate(R"(
module probe {
  inport in: 'a;
  LSS_assert(in.width == 3, "want 3");
};
instance g:counter_source;
instance p:probe;
g.out -> p.in;
)");
  EXPECT_FALSE(E.Ok);
  EXPECT_NE(E.C->diagnosticsText().find("want 3"), std::string::npos);
}

TEST(Interp, ConnectBusMakesIndexedConnections) {
  auto E = elaborate(R"(
instance g:counter_source;
instance s:sink;
LSS_connect_bus(g.out, s.in, 4);
)");
  ASSERT_TRUE(E.Ok);
  EXPECT_EQ(E.C->getNetlist()->findByPath("s")->findPort("in")->Width, 4);
  EXPECT_EQ(E.C->getNetlist()->getConnections().size(), 4u);
}

TEST(Interp, DirectionErrors) {
  auto E1 = elaborate(R"(
instance g:counter_source;
instance s:sink;
s.in -> g.out;
)");
  EXPECT_FALSE(E1.Ok); // inport as source, outport as target.
}

//===----------------------------------------------------------------------===//
// Structural control flow
//===----------------------------------------------------------------------===//

TEST(Interp, InstanceArrayCreatesNamedChildren) {
  auto E = elaborate(R"(
module bank {
  parameter n:int;
  var ds:instance ref[];
  ds = new instance[n](delay, "slot");
};
instance b:bank;
b.n = 4;
)");
  ASSERT_TRUE(E.Ok);
  netlist::InstanceNode *B = E.C->getNetlist()->findByPath("b");
  ASSERT_EQ(B->Children.size(), 4u);
  EXPECT_EQ(B->Children[0]->Name, "slot[0]");
  EXPECT_EQ(B->Children[3]->Path, "b.slot[3]");
}

TEST(Interp, ZeroLengthInstanceArray) {
  auto E = elaborate(R"(
module bank {
  parameter n = 0:int;
  var ds:instance ref[];
  ds = new instance[n](delay, "slot");
};
instance b:bank;
)");
  ASSERT_TRUE(E.Ok);
  EXPECT_TRUE(E.C->getNetlist()->findByPath("b")->Children.empty());
}

TEST(Interp, NegativeInstanceArrayRejected) {
  auto E = elaborate(R"(
module bank {
  var ds:instance ref[];
  ds = new instance[0-1](delay, "slot");
};
instance b:bank;
)");
  EXPECT_FALSE(E.Ok);
}

TEST(Interp, WhileAndBreakControlStructure) {
  auto E = elaborate(R"(
module counted {
  var i:int;
  var n:int;
  i = 0;
  n = 0;
  while (true) {
    if (i >= 5) { break; }
    i = i + 1;
    n = n + i;
  }
  LSS_assert(n == 15, "sum wrong");
};
instance c:counted;
)");
  EXPECT_TRUE(E.Ok) << E.C->diagnosticsText();
}

TEST(Interp, VariableScoping) {
  auto E = elaborate(R"(
module scoped {
  var x:int = 1;
  if (true) {
    var x:int = 2;
    LSS_assert(x == 2, "inner");
  }
  LSS_assert(x == 1, "outer");
};
instance s:scoped;
)");
  EXPECT_TRUE(E.Ok) << E.C->diagnosticsText();
}

TEST(Interp, ArrayAndStructLValues) {
  auto E = elaborate(R"(
module lv {
  var a:int[] = array(3, 0);
  a[1] = 42;
  LSS_assert(a[1] == 42, "array write");
  LSS_assert(len(a) == 3, "len");
};
instance x:lv;
)");
  EXPECT_TRUE(E.Ok) << E.C->diagnosticsText();
}

TEST(Interp, ArrayIndexOutOfBoundsRejected) {
  auto E = elaborate(R"(
module bad {
  var a:int[] = array(2, 0);
  a[5] = 1;
};
instance x:bad;
)");
  EXPECT_FALSE(E.Ok);
  EXPECT_NE(E.C->diagnosticsText().find("out of bounds"), std::string::npos);
}

TEST(Interp, StringConcatAndStr) {
  auto E = elaborate(R"(
module s {
  var name:string;
  name = "slot" + str(3);
  LSS_assert(name == "slot3", "concat");
};
instance x:s;
)");
  EXPECT_TRUE(E.Ok) << E.C->diagnosticsText();
}

TEST(Interp, StepLimitCatchesInfiniteLoops) {
  driver::Compiler C;
  ASSERT_TRUE(C.addCoreLibrary());
  ASSERT_TRUE(C.addSource("loop.lss",
                          "module m { var i:int; while (true) { i = 1; } };\n"
                          "instance x:m;"));
  driver::CompilerInvocation Inv;
  Inv.Elab.MaxSteps = 10000;
  EXPECT_FALSE(C.elaborate(Inv));
  EXPECT_NE(C.diagnosticsText().find("step limit"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Use-based specialization: conditional interfaces (Figure 12)
//===----------------------------------------------------------------------===//

const char ConcentratorLss[] = R"(
module concentrator {
  inport in: 'a;
  outport out: 'a;
  if (out.width < in.width) {
    parameter arbitration_policy : userpoint(mask:int, last:int, width:int => int);
    instance arb:arbiter;
    arb.policy = arbitration_policy;
    LSS_connect_bus(in, arb.in, in.width);
    arb.out[0] -> out;
  } else {
    in -> out;
  }
};
)";

TEST(UseBased, PolicyRequiredWhenNarrowing) {
  auto E = elaborate(std::string(ConcentratorLss) + R"(
instance g0:counter_source;
instance g1:counter_source;
instance c:concentrator;
instance s:sink;
g0.out -> c.in;
g1.out -> c.in;
c.out -> s.in;
)");
  EXPECT_FALSE(E.Ok);
  EXPECT_NE(E.C->diagnosticsText().find("arbitration_policy"),
            std::string::npos);
}

TEST(UseBased, PolicyAcceptedWhenNarrowing) {
  auto E = elaborateAndInfer(std::string(ConcentratorLss) + R"(
instance g0:counter_source;
instance g1:counter_source;
instance c:concentrator;
instance s:sink;
c.arbitration_policy = "return 0;";
g0.out -> c.in;
g1.out -> c.in;
c.out -> s.in;
)");
  ASSERT_TRUE(E.Ok) << E.C->diagnosticsText();
  // The arbiter was instantiated inside the concentrator.
  EXPECT_NE(E.C->getNetlist()->findByPath("c.arb"), nullptr);
}

TEST(UseBased, PolicyNotDemandedWhenPassThrough) {
  auto E = elaborateAndInfer(std::string(ConcentratorLss) + R"(
instance g0:counter_source;
instance c:concentrator;
instance s:sink;
g0.out -> c.in;
c.out -> s.in;
)");
  ASSERT_TRUE(E.Ok) << E.C->diagnosticsText();
  // No arbiter exists in the pass-through configuration.
  EXPECT_EQ(E.C->getNetlist()->findByPath("c.arb"), nullptr);
}

TEST(UseBased, SettingPolicyOnPassThroughRejected) {
  // The parameter does not exist in the pass-through configuration, so
  // assigning it violates A = Ø.
  auto E = elaborate(std::string(ConcentratorLss) + R"(
instance g0:counter_source;
instance c:concentrator;
instance s:sink;
c.arbitration_policy = "return 0;";
g0.out -> c.in;
c.out -> s.in;
)");
  EXPECT_FALSE(E.Ok);
}

//===----------------------------------------------------------------------===//
// Hierarchy, wrapping, misc
//===----------------------------------------------------------------------===//

TEST(Interp, Figure7WrapCustomization) {
  // Component C wraps A, overriding one output path through B.
  auto E = elaborateAndInfer(R"(
module wrapped {
  inport in: int;
  outport pass: int;      // inherited path
  outport modified: int;  // overridden path
  instance a:delay;
  instance b:delay;
  in -> a.in;
  a.out -> pass;
  a.out -> b.in;
  b.out -> modified;
};
instance g:counter_source;
instance w:wrapped;
instance s1:sink;
instance s2:sink;
g.out -> w.in;
w.pass -> s1.in;
w.modified -> s2.in;
)");
  ASSERT_TRUE(E.Ok) << E.C->diagnosticsText();
  EXPECT_EQ(E.C->getNetlist()->findByPath("w")->Children.size(), 2u);
}

TEST(Interp, TarFileMarksLeaf) {
  auto E = elaborate("instance d:delay;");
  ASSERT_TRUE(E.Ok);
  netlist::InstanceNode *D = E.C->getNetlist()->findByPath("d");
  EXPECT_TRUE(D->isLeaf());
  EXPECT_EQ(D->BehaviorId, "corelib/delay.tar");
}

TEST(Interp, RuntimeVarsRecorded) {
  auto E = elaborate(R"(
module stateful {
  parameter start = 5:int;
  runtime var acc:int = start * 2;
};
instance s:stateful;
)");
  ASSERT_TRUE(E.Ok);
  netlist::InstanceNode *S = E.C->getNetlist()->findByPath("s");
  ASSERT_EQ(S->RuntimeVars.size(), 1u);
  EXPECT_EQ(S->RuntimeVars[0].Name, "acc");
  EXPECT_EQ(S->RuntimeVars[0].Init.getInt(), 10);
}

TEST(Interp, SystemUserpointsAcceptedWithoutDeclaration) {
  // init and end_of_timestep exist on every module (Section 4.3).
  auto E = elaborate(R"(
instance d:delay;
d.init = "acc = 0;";
d.end_of_timestep = "acc = acc + 1;";
)");
  ASSERT_TRUE(E.Ok) << E.C->diagnosticsText();
  netlist::InstanceNode *D = E.C->getNetlist()->findByPath("d");
  EXPECT_TRUE(D->Userpoints.count("init"));
  EXPECT_TRUE(D->Userpoints.count("end_of_timestep"));
}

TEST(Interp, EventsRecorded) {
  auto E = elaborate("instance q:queue;");
  ASSERT_TRUE(E.Ok);
  netlist::InstanceNode *Q = E.C->getNetlist()->findByPath("q");
  ASSERT_EQ(Q->Events.size(), 3u);
  EXPECT_EQ(Q->Events[0], "enqueue");
}

TEST(Interp, UserpointDefaultRetained) {
  auto E = elaborate("instance a:arbiter;");
  ASSERT_TRUE(E.Ok);
  const auto &UP =
      E.C->getNetlist()->findByPath("a")->Userpoints.at("policy");
  EXPECT_TRUE(UP.IsDefault);
  EXPECT_NE(UP.Code.find("bit(mask, c)"), std::string::npos);
}

TEST(Interp, UserpointOverride) {
  auto E = elaborate("instance a:arbiter;\na.policy = \"return 0;\";");
  ASSERT_TRUE(E.Ok);
  const auto &UP =
      E.C->getNetlist()->findByPath("a")->Userpoints.at("policy");
  EXPECT_FALSE(UP.IsDefault);
  EXPECT_EQ(UP.Code, "return 0;");
}

TEST(Interp, UserpointValueMustBeString) {
  auto E = elaborate("instance a:arbiter;\na.policy = 42;");
  EXPECT_FALSE(E.Ok);
}

TEST(Interp, RedefinitionOfInstanceNameRejected) {
  auto E = elaborate("instance d:delay;\ninstance d:delay;");
  EXPECT_FALSE(E.Ok);
}

TEST(Interp, DuplicateModuleRejected) {
  auto E = elaborate("module delay { };"); // Collides with corelib's delay.
  EXPECT_FALSE(E.Ok);
  EXPECT_NE(E.C->diagnosticsText().find("redefinition of module"),
            std::string::npos);
}

TEST(Interp, PrintBuiltinLogs) {
  auto E = elaborate(R"(
module chatty {
  print("n = ", 3);
};
instance c:chatty;
)");
  ASSERT_TRUE(E.Ok);
  const auto &Log = E.C->getInterpreter()->getPrintLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_EQ(Log[0], "n = 3");
}

} // namespace
