//===- ModelsTest.cpp - Models A-F elaborate, infer, and simulate -------------===//

#include "driver/Compiler.h"
#include "driver/Stats.h"
#include "models/Models.h"

#include <gtest/gtest.h>

using namespace liberty;

namespace {

class ModelsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelsTest, CompilesAndSimulates) {
  const std::string Id = GetParam();
  driver::Compiler C;
  ASSERT_TRUE(models::loadModel(C, Id)) << C.diagnosticsText();
  ASSERT_TRUE(C.elaborate()) << C.diagnosticsText();
  ASSERT_TRUE(C.inferTypes()) << C.diagnosticsText();

  driver::ModelStats S = driver::computeModelStats(
      *C.getNetlist(), C.getLibraryModules(), C.getNumUserTypeAnnotations(),
      Id);

  // The reuse regime Table 2 reports: models of tens-to-hundreds of
  // instances, the bulk drawn from the small component library.
  EXPECT_GE(S.TotalInstances, 40u) << "model suspiciously small";
  EXPECT_GE(S.pctFromLibrary(), 60.0);
  EXPECT_GT(S.InferredPortWidths, 0u);
  EXPECT_GT(S.Connections, S.TotalInstances / 2);
  // Inference eliminates nearly all explicit type instantiations: each
  // model keeps exactly one (the observation tap's overload selection).
  EXPECT_GT(S.ExplicitTypesWithoutInference, 20u);
  EXPECT_EQ(S.ExplicitTypesWithInference, 1u);

  sim::Simulator *Sim = C.buildSimulator();
  ASSERT_NE(Sim, nullptr) << C.diagnosticsText();

  Sim->step(200);
  EXPECT_FALSE(Sim->hadRuntimeErrors()) << C.diagnosticsText();

  // Forward progress: the core(s) retired instructions.
  const std::string CorePath = (Id == "E") ? "core0.r" : "core.r";
  interp::Value *Retired = Sim->findState(CorePath, "retired");
  ASSERT_NE(Retired, nullptr);
  ASSERT_TRUE(Retired->isInt());
  EXPECT_GT(Retired->getInt(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelsTest,
                         ::testing::Values("A", "B", "C", "D", "E", "F"),
                         [](const auto &Info) { return Info.param; });

} // namespace
